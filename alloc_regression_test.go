//go:build !race

// Allocation-regression tests pinning the node-ID hot path: the candidate
// stage (plan → getLCA → getRTF → score) runs on dense IDs end to end and
// must stay within a small allocation budget per query, so the PR 3 win
// (order-of-magnitude allocs/op reduction on the Figure 5 benchmarks)
// cannot silently erode. Ceilings are ~2x the measured values to absorb
// runtime/compiler noise while still catching a reintroduced per-posting or
// per-event allocation, which would blow past them by orders of magnitude.
//
// The file is excluded from -race builds: the race detector changes
// allocation behaviour, so CI runs these in the race-free benchmark job.

package xks

import (
	"context"
	"runtime"
	"testing"

	"xks/internal/datagen"
	"xks/internal/exec"
	"xks/internal/trace"
	"xks/internal/workload"
)

// allocEngine builds the DBLP preset used by the Figure 5 benchmarks.
func allocEngine(t *testing.T) (*Engine, []string) {
	t.Helper()
	w := workload.DBLP()
	specs, err := w.Specs(0, 400.0/20000.0)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := w.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 1, NumRecords: 400, Keywords: specs})
	return FromTree(tree), queries
}

// TestPlanStageAllocs pins the planning stage: query parse + ID posting
// lookup, plus the constant-size snapshot pin every query now resolves
// (snapshot + view + scorer headers — a fixed handful of objects, not a
// per-posting cost). The posting lists themselves are shared slices, so
// the total stays a handful of small header allocations regardless of
// posting sizes.
func TestPlanStageAllocs(t *testing.T) {
	e, queries := allocEngine(t)
	const perQueryCeiling = 40.0
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := e.plan(q); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > perQueryCeiling {
			t.Errorf("plan(%q) allocates %.0f objects per run, ceiling %d", q, allocs, int(perQueryCeiling))
		}
	}
}

// TestCandidateStageAllocs pins the candidate stage over every workload
// query: getLCA (streamed merge + ID stack), getRTF (two-pass exact-size
// dispatch) and scoring must allocate only their results — no per-posting,
// per-event or per-path-node garbage.
func TestCandidateStageAllocs(t *testing.T) {
	e, queries := allocEngine(t)
	params := e.params(Request{Rank: true})
	for _, q := range queries {
		p, err := e.plan(q)
		if err != nil {
			t.Fatalf("plan(%q): %v", q, err)
		}
		cands, _ := exec.Candidates(context.Background(), p, params, 0)
		// Budget: a fixed overhead (merger, stacks, root/count/arena
		// slices) plus a small per-candidate share (IDRTF headers and the
		// scored Candidate structs).
		ceiling := 48 + 4*float64(len(cands))
		allocs := testing.AllocsPerRun(20, func() {
			exec.Candidates(context.Background(), p, params, 0) //nolint:errcheck
		})
		if allocs > ceiling {
			t.Errorf("Candidates(%q) allocates %.0f objects per run for %d candidates, ceiling %.0f",
				q, allocs, len(cands), ceiling)
		}
	}
}

// TestTracingOffAllocs pins the observability layer's off switch: with no
// trace attached to the context, the pipeline's instrumentation hooks
// (SpanFromContext + nil-span method calls at every stage) must add zero
// allocations — the candidate stage allocates exactly what it did before
// the hooks existed. Measured per-query against the same run under a
// background context; any drift means a hook allocates on the untraced
// path.
func TestTracingOffAllocs(t *testing.T) {
	// The nil-span operations themselves must be allocation-free.
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(100, func() {
		sp := trace.SpanFromContext(ctx)
		child := sp.Child("stage")
		child.SetInt("n", 1)
		child.SetStr("s", "v")
		child.End()
		trace.ContextWithSpan(ctx, child)
	}); allocs != 0 {
		t.Fatalf("untraced span ops allocate %.0f objects per run, want 0", allocs)
	}

	// And the full candidate stage must allocate identically with and
	// without the instrumented context shape (both untraced).
	e, queries := allocEngine(t)
	params := e.params(Request{Rank: true})
	for _, q := range queries {
		p, err := e.plan(q)
		if err != nil {
			t.Fatalf("plan(%q): %v", q, err)
		}
		base := testing.AllocsPerRun(20, func() {
			exec.Candidates(ctx, p, params, 0) //nolint:errcheck
		})
		again := testing.AllocsPerRun(20, func() {
			exec.Candidates(ctx, p, params, 0) //nolint:errcheck
		})
		if base != again {
			t.Errorf("Candidates(%q) allocations unstable untraced: %.0f vs %.0f", q, base, again)
		}
	}
}

// allocBytesPerRun reports the average heap bytes one call of f allocates,
// measured over runs calls on a quiesced heap.
func allocBytesPerRun(runs int, f func()) int64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc-before.TotalAlloc) / int64(runs)
}

// TestDeferredEventsAllocBytes pins the score-without-events win: a ranked
// candidate stage that defers event materialization (what ranked+limited
// engine searches and every ranked corpus fan-out run) must allocate
// meaningfully fewer heap bytes than the eager stage, because candidates
// that will never be materialized never get their per-candidate
// keyword-event lists built — scores come from the shared accumulator
// arena. The byte dimension matters here: the eager path's cost is a few
// large event slices, not many small objects, so an object count alone
// would miss a regression.
func TestDeferredEventsAllocBytes(t *testing.T) {
	e, queries := allocEngine(t)
	eager := e.params(Request{Rank: true})
	deferred := eager
	deferred.DeferEvents = true
	var eagerBytes, deferredBytes int64
	for _, q := range queries {
		p, err := e.plan(q)
		if err != nil {
			t.Fatalf("plan(%q): %v", q, err)
		}
		eagerBytes += allocBytesPerRun(20, func() {
			exec.Candidates(context.Background(), p, eager, 0) //nolint:errcheck
		})
		deferredBytes += allocBytesPerRun(20, func() {
			exec.Candidates(context.Background(), p, deferred, 0) //nolint:errcheck
		})
	}
	if deferredBytes >= eagerBytes {
		t.Fatalf("deferred candidate stage allocates %d bytes per query mix, eager %d — no win",
			deferredBytes, eagerBytes)
	}
	// The measured win on the DBLP mix is well past half; require a fifth
	// so noise cannot mask a real regression without tripping on jitter.
	if float64(deferredBytes) > 0.8*float64(eagerBytes) {
		t.Errorf("deferred candidate stage allocates %d bytes vs eager %d (%.0f%%), want at least a 20%% reduction",
			deferredBytes, eagerBytes, 100*float64(deferredBytes)/float64(eagerBytes))
	}
}

// TestSearchAllocsPerFragment pins the full pipeline loosely: a complete
// unranked search (which materializes every fragment) must stay under a
// per-fragment allocation budget — materialization legitimately allocates
// the public FragmentNode data, but nothing proportional to postings that
// were never selected.
func TestSearchAllocsPerFragment(t *testing.T) {
	e, queries := allocEngine(t)
	for _, q := range queries {
		res, err := e.Search(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		nodes := 0
		for _, f := range res.Fragments {
			nodes += f.Len()
		}
		if nodes == 0 {
			continue
		}
		// Budget: fixed search overhead, a per-kept-node share (the
		// FragmentNode slice entries, Dewey/Matched strings), a
		// per-fragment share (fragment build arenas, grouping arrays,
		// Result slices) and a per-posting share well below one — the
		// candidate stage must stay sublinear in allocations even though
		// an unranked search materializes every fragment (unpruned
		// fragments are proportional to the posting counts, hence the
		// KeywordNodes term). Measured values sit at roughly half these
		// coefficients.
		ceiling := 128 +
			12*float64(nodes) +
			24*float64(res.Stats.NumLCAs) +
			4*float64(res.Stats.KeywordNodes)
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := e.Search(context.Background(), Request{Query: q}); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > ceiling {
			t.Errorf("Search(%q) allocates %.0f objects per run for %d kept nodes / %d LCAs / %d postings, ceiling %.0f",
				q, allocs, nodes, res.Stats.NumLCAs, res.Stats.KeywordNodes, ceiling)
		}
	}
}
