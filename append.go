package xks

import (
	"fmt"

	"xks/internal/dewey"
	"xks/internal/xmltree"
)

// AppendXML parses an XML snippet and appends it as the last child of the
// node at parentDewey (dotted form, e.g. "0.2"), updating the inverted
// index incrementally — the engine's support for the growing documents the
// axiomatic data-monotonicity property is about.
//
// Only tree-backed engines support appends (a store is a frozen shredded
// snapshot). AppendXML must not run concurrently with Search; interleave
// them from a single goroutine or add external synchronization.
func (e *Engine) AppendXML(parentDewey, snippet string) error {
	if e.tree == nil {
		return fmt.Errorf("xks: AppendXML requires a tree-backed engine")
	}
	parent, err := dewey.Parse(parentDewey)
	if err != nil {
		return fmt.Errorf("xks: bad parent code: %w", err)
	}
	sub, err := xmltree.ParseString(snippet)
	if err != nil {
		return fmt.Errorf("xks: bad snippet: %w", err)
	}
	node, err := e.tree.AppendChild(parent, treeToE(sub.Root))
	if err != nil {
		return err
	}
	// Index exactly the new nodes; each insert splices the node into the
	// node table at its pre-order position (renumbering later IDs).
	var rec func(n *xmltree.Node)
	rec = func(n *xmltree.Node) {
		e.ix.Insert(n.Code, e.an.ContentSet(n.ContentPieces()...))
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(node)
	// The ID-aligned caches (pre-order node list, content sets) are stale
	// after renumbering; rebuild them to match the new table.
	if ts, ok := e.src.(*treeSource); ok {
		ts.refresh()
	}
	e.gen.Add(1) // invalidates generation-tagged cache entries (internal/service)
	return nil
}

// treeToE converts a parsed subtree back into the builder form AppendChild
// consumes.
func treeToE(n *xmltree.Node) xmltree.E {
	e := xmltree.E{Label: n.Label, Text: n.Text}
	if len(n.Attrs) > 0 {
		e.Attrs = make([]xmltree.Attr, len(n.Attrs))
		copy(e.Attrs, n.Attrs)
	}
	for _, c := range n.Children {
		e.Kids = append(e.Kids, treeToE(c))
	}
	return e
}
