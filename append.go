package xks

import (
	"fmt"

	"xks/internal/delta"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/nid"
	"xks/internal/xmltree"
)

// AppendXML parses an XML snippet and appends it as the last child of the
// node at parentDewey (dotted form, e.g. "0.2") — the engine's support for
// the growing documents the axiomatic data-monotonicity property is about.
//
// When the parent lies on the tree's rightmost spine (its subtree ends at
// the current end of the node table — always true for the document root),
// the write takes the delta fast path: the new nodes get the next dense
// IDs at the table tail, their postings land in an immutable delta segment
// (internal/delta), and a new head is published atomically. No existing ID
// moves, no base posting list is rewritten, and the cost is proportional
// to the appended subtree, not the index. Concurrent searches are safe and
// unaffected: in-flight queries and outstanding cursors keep reading the
// snapshot they pinned.
//
// Appending anywhere else would renumber IDs, so it falls back to a full
// reindex under a new rebuild generation — correct but O(document), and
// cursors issued before it resume as ErrStaleCursor. The fallback is not
// snapshot-isolated: like the pre-delta engine, it must not race in-flight
// reads of the same engine.
//
// Only tree-backed engines support appends (a store is a frozen shredded
// snapshot).
func (e *Engine) AppendXML(parentDewey, snippet string) error {
	ts, parent, sub, err := e.prepareAppend(parentDewey, snippet)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.head.Load()
	pid, ok := h.Tab.Find(parent)
	if !ok {
		return fmt.Errorf("xks: no node at %s", parent)
	}
	if h.Tab.SubtreeEnd(pid) != nid.ID(h.Tab.Len()) {
		// Off the rightmost spine: the appended subtree would splice into
		// the middle of the pre-order, renumbering every later ID.
		if _, err := ts.appendChild(parent, treeToE(sub.Root)); err != nil {
			return err
		}
		e.republishRebuilt(ts)
		return nil
	}

	node, err := ts.appendChild(parent, treeToE(sub.Root))
	if err != nil {
		return err
	}
	// One pre-order walk of the new subtree collects everything the
	// publish needs: Dewey codes for the table tail, the segment's posting
	// lists (ascending by construction — IDs increase per node, each word
	// at most once per node), and the source-cache rows.
	start := nid.ID(h.Tab.Len())
	id := start
	var (
		codes    []dewey.Code
		nodes    []*xmltree.Node
		words    [][]string
		postings = map[string][]nid.ID{}
	)
	var rec func(n *xmltree.Node)
	rec = func(n *xmltree.Node) {
		codes = append(codes, n.Code)
		nodes = append(nodes, n)
		ws := e.an.ContentSet(n.ContentPieces()...)
		words = append(words, ws)
		for _, w := range ws {
			postings[w] = append(postings[w], id)
		}
		id++
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(node)

	tab, _, err := h.Tab.Extend(codes)
	if err == nil {
		var seg *delta.Segment
		seg, err = delta.NewSegment(start, nid.ID(tab.Len()), postings)
		if err == nil {
			ts.extend(nodes, words)
			// Copy-on-append keeps earlier heads' segment slices immutable.
			segs := append(h.Segs[:len(h.Segs):len(h.Segs)], seg)
			e.head.Store(&delta.Head{RebuildGen: h.RebuildGen, Tab: tab, Base: h.Base, Segs: segs})
			return nil
		}
	}
	// The tree already holds the new subtree but the tail publish failed
	// (unreachable through the spine check above); reindex from the tree so
	// the engine stays consistent rather than erroring half-applied.
	e.republishRebuilt(ts)
	return err
}

// AppendXMLBaseline is the pre-delta append path, retained as the
// benchmark baseline (xkbench -append): each new node is spliced into the
// node table at its pre-order position, renumbering every later ID across
// every posting list — O(index) per node. It requires a compacted engine
// (the splice mutates the base in place) and, unlike AppendXML, must not
// run concurrently with searches.
func (e *Engine) AppendXMLBaseline(parentDewey, snippet string) error {
	ts, parent, sub, err := e.prepareAppend(parentDewey, snippet)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.head.Load()
	if len(h.Segs) > 0 {
		return fmt.Errorf("xks: baseline append requires a compacted engine (pending delta segments)")
	}
	node, err := ts.appendChild(parent, treeToE(sub.Root))
	if err != nil {
		return err
	}
	var rec func(n *xmltree.Node)
	rec = func(n *xmltree.Node) {
		h.Base.Insert(n.Code, e.an.ContentSet(n.ContentPieces()...))
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(node)
	ts.refresh()
	// The splice renumbered IDs in place: publish under a new rebuild
	// generation so cursors and caches cannot read across it.
	e.head.Store(&delta.Head{RebuildGen: h.RebuildGen + 1, Tab: h.Base.Table(), Base: h.Base})
	return nil
}

// prepareAppend validates the shared preconditions of both append paths.
func (e *Engine) prepareAppend(parentDewey, snippet string) (*treeSource, dewey.Code, *xmltree.Tree, error) {
	if e.tree == nil {
		return nil, nil, nil, fmt.Errorf("xks: AppendXML requires a tree-backed engine")
	}
	ts, ok := e.src.(*treeSource)
	if !ok {
		return nil, nil, nil, fmt.Errorf("xks: AppendXML requires a tree-backed engine")
	}
	parent, err := dewey.Parse(parentDewey)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("xks: bad parent code: %w", err)
	}
	sub, err := xmltree.ParseString(snippet)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("xks: bad snippet: %w", err)
	}
	return ts, parent, sub, nil
}

// republishRebuilt reindexes the mutated tree from scratch and publishes
// it under a new rebuild generation. Caller holds e.mu.
func (e *Engine) republishRebuilt(ts *treeSource) {
	h := e.head.Load()
	ix := index.Build(e.tree, e.an)
	ts.refresh()
	e.head.Store(&delta.Head{RebuildGen: h.RebuildGen + 1, Tab: ix.Table(), Base: ix})
}

// treeToE converts a parsed subtree back into the builder form AppendChild
// consumes.
func treeToE(n *xmltree.Node) xmltree.E {
	e := xmltree.E{Label: n.Label, Text: n.Text}
	if len(n.Attrs) > 0 {
		e.Attrs = make([]xmltree.Attr, len(n.Attrs))
		copy(e.Attrs, n.Attrs)
	}
	for _, c := range n.Children {
		e.Kids = append(e.Kids, treeToE(c))
	}
	return e
}
