package xks

import (
	"context"
	"strings"
	"testing"

	"xks/internal/paperdata"
	"xks/internal/xmltree"
)

// AppendXML makes the new content searchable and produces exactly the same
// results as rebuilding the engine from scratch.
func TestAppendXMLMatchesRebuild(t *testing.T) {
	incremental := FromTree(paperdata.Publications())
	snippet := `<article>
	  <authors><author><name>Kong Liu</name></author></authors>
	  <title>Relaxed Tightest Fragments for keyword search</title>
	</article>`
	if err := incremental.AppendXML("0.2", snippet); err != nil {
		t.Fatal(err)
	}

	rebuilt := paperdata.Publications()
	sub, err := xmltree.ParseString(snippet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.AddChild(mustCode(t, "0.2"), toE(sub.Root)); err != nil {
		t.Fatal(err)
	}
	reference := FromTree(rebuilt)

	for _, q := range []string{paperdata.Q2, paperdata.Q3, "kong keyword", "liu keyword search"} {
		a, errA := incremental.Search(context.Background(), NewRequest(q, Options{Rank: true}))
		b, errB := reference.Search(context.Background(), NewRequest(q, Options{Rank: true}))
		if errA != nil || errB != nil {
			t.Fatalf("%q: %v / %v", q, errA, errB)
		}
		if len(a.Fragments) != len(b.Fragments) {
			t.Fatalf("%q: %d vs %d fragments", q, len(a.Fragments), len(b.Fragments))
		}
		for i := range a.Fragments {
			if a.Fragments[i].Root != b.Fragments[i].Root || a.Fragments[i].Len() != b.Fragments[i].Len() {
				t.Errorf("%q fragment %d: %s/%d vs %s/%d", q, i,
					a.Fragments[i].Root, a.Fragments[i].Len(),
					b.Fragments[i].Root, b.Fragments[i].Len())
			}
		}
	}
}

func mustCode(t *testing.T, s string) (c []uint32) {
	t.Helper()
	for _, part := range strings.Split(s, ".") {
		n := 0
		for _, r := range part {
			n = n*10 + int(r-'0')
		}
		c = append(c, uint32(n))
	}
	return c
}

func toE(n *xmltree.Node) xmltree.E { return treeToE(n) }

func TestAppendXMLNewKeywordBecomesSearchable(t *testing.T) {
	e := FromTree(paperdata.Team())
	if res, _ := e.Search(context.Background(), NewRequest("conley position", Options{})); res != nil && len(res.Fragments) != 0 {
		t.Fatal("conley should not match before append")
	}
	err := e.AppendXML("0.1", `<player><name>Conley</name><position>guard</position></player>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(context.Background(), NewRequest("conley position", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 || res.Fragments[0].Root != "0.1.3" {
		t.Fatalf("fragments = %+v", fragmentRoots(res))
	}
	if e.Tree().Size() != 12+3 {
		t.Errorf("tree size = %d", e.Tree().Size())
	}
}

func TestAppendXMLErrors(t *testing.T) {
	e := FromTree(paperdata.Team())
	if err := e.AppendXML("9.9", `<x/>`); err == nil {
		t.Error("append under missing parent should fail")
	}
	if err := e.AppendXML("not-a-code", `<x/>`); err == nil {
		t.Error("malformed parent code should fail")
	}
	if err := e.AppendXML("0", `not xml`); err == nil {
		t.Error("malformed snippet should fail")
	}
	se := storeEngine(t)
	if err := se.AppendXML("0", `<x/>`); err == nil {
		t.Error("store-backed append should fail")
	}
}

// Repeated appends keep data monotonicity: fragment counts never decrease
// for a fixed query.
func TestAppendXMLMonotone(t *testing.T) {
	e := FromTree(paperdata.Team())
	prev := 0
	for i := 0; i < 5; i++ {
		res, err := e.Search(context.Background(), NewRequest("grizzlies position", Options{}))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Fragments) < prev {
			t.Fatalf("append %d: results dropped from %d to %d", i, prev, len(res.Fragments))
		}
		prev = len(res.Fragments)
		err = e.AppendXML("0.1", `<player><name>New</name><position>center</position></player>`)
		if err != nil {
			t.Fatal(err)
		}
	}
}
