package xks

// Benchmarks regenerating the paper's evaluation artifacts with testing.B.
//
// Figure 5 (per-dataset runtime of MaxMatch vs ValidRTF over the query mix)
// maps to BenchmarkFigure5*; Figure 6 (CFR / APR' / Max APR) maps to
// BenchmarkFigure6*, which reports the ratios as custom benchmark metrics.
// The datasets here are the "small" presets so `go test -bench=.` stays
// fast; `cmd/xkbench` runs the full medium/large sweeps with the paper's
// repeat-and-discard timing protocol.
//
// Ablation benchmarks cover the design choices DESIGN.md calls out: the
// ELCA algorithm variants, SLCA-only vs all-LCA semantics, and the (min,max)
// cID feature vs exact content-set comparison.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xks/internal/datagen"
	"xks/internal/lca"
	"xks/internal/prune"
	"xks/internal/rtf"
	"xks/internal/workload"
)

type benchDataset struct {
	name    string
	engine  *Engine
	queries []string
}

var (
	benchOnce sync.Once
	benchSets []benchDataset
)

func benchData(b *testing.B) []benchDataset {
	b.Helper()
	benchOnce.Do(func() {
		dblpW := workload.DBLP()
		dblpSpecs, err := dblpW.Specs(0, 400.0/20000.0)
		if err != nil {
			panic(err)
		}
		dblpQs, err := dblpW.ExpandAll()
		if err != nil {
			panic(err)
		}
		dblpTree := datagen.DBLP(datagen.DBLPConfig{Seed: 1, NumRecords: 400, Keywords: dblpSpecs})

		xmW := workload.XMark()
		xmQs, err := xmW.ExpandAll()
		if err != nil {
			panic(err)
		}
		mkXMark := func(variant, items int, seed int64) *Engine {
			specs, err := xmW.Specs(variant, 120.0/20000.0)
			if err != nil {
				panic(err)
			}
			return FromTree(datagen.XMark(datagen.XMarkConfig{Seed: seed, Items: items, Keywords: specs}))
		}

		benchSets = []benchDataset{
			{name: "DBLP", engine: FromTree(dblpTree), queries: dblpQs},
			{name: "XMarkStandard", engine: mkXMark(0, 120, 2), queries: xmQs},
			{name: "XMarkData1", engine: mkXMark(1, 360, 3), queries: xmQs},
			{name: "XMarkData2", engine: mkXMark(2, 720, 4), queries: xmQs},
		}
	})
	return benchSets
}

// runQueryMix executes every workload query under the given options and
// returns the total number of fragments (kept alive so the compiler cannot
// elide the work).
func runQueryMix(b *testing.B, ds benchDataset, opts Options) int {
	total := 0
	for _, q := range ds.queries {
		res, err := ds.engine.Search(context.Background(), NewRequest(q, opts))
		if err != nil {
			b.Fatalf("%s: query %q: %v", ds.name, q, err)
		}
		total += len(res.Fragments)
	}
	return total
}

func benchFigure5(b *testing.B, idx int) {
	ds := benchData(b)[idx]
	for _, algo := range []Algorithm{MaxMatch, ValidRTF} {
		b.Run(algo.String(), func(b *testing.B) {
			opts := Options{Algorithm: algo}
			b.ReportAllocs()
			fragments := 0
			for i := 0; i < b.N; i++ {
				fragments = runQueryMix(b, ds, opts)
			}
			b.ReportMetric(float64(fragments), "fragments")
		})
	}
}

// BenchmarkFigure5DBLP regenerates Figure 5(a): the DBLP query mix under
// both algorithms.
func BenchmarkFigure5DBLP(b *testing.B) { benchFigure5(b, 0) }

// BenchmarkFigure5XMarkStandard regenerates Figure 5(b).
func BenchmarkFigure5XMarkStandard(b *testing.B) { benchFigure5(b, 1) }

// BenchmarkFigure5XMarkData1 regenerates Figure 5(c) (3× the standard
// size).
func BenchmarkFigure5XMarkData1(b *testing.B) { benchFigure5(b, 2) }

// BenchmarkFigure5XMarkData2 regenerates Figure 5(d) (6× the standard
// size).
func BenchmarkFigure5XMarkData2(b *testing.B) { benchFigure5(b, 3) }

func benchFigure6(b *testing.B, idx int) {
	ds := benchData(b)[idx]
	b.ReportAllocs()
	var cfr, aprPrime, maxAPR float64
	for i := 0; i < b.N; i++ {
		cfr, aprPrime, maxAPR = 0, 0, 0
		for _, q := range ds.queries {
			cmp, err := ds.engine.Compare(context.Background(), Request{Query: q})
			if err != nil {
				b.Fatalf("%s: %v", q, err)
			}
			cfr += cmp.Ratios.CFR
			aprPrime += cmp.Ratios.APRPrime
			maxAPR += cmp.Ratios.MaxAPR
		}
	}
	n := float64(len(ds.queries))
	b.ReportMetric(cfr/n, "meanCFR")
	b.ReportMetric(aprPrime/n, "meanAPR'")
	b.ReportMetric(maxAPR/n, "meanMaxAPR")
}

// BenchmarkFigure6DBLP regenerates Figure 6(a): effectiveness ratios on
// DBLP, reported as custom metrics.
func BenchmarkFigure6DBLP(b *testing.B) { benchFigure6(b, 0) }

// BenchmarkFigure6XMarkStandard regenerates Figure 6(b).
func BenchmarkFigure6XMarkStandard(b *testing.B) { benchFigure6(b, 1) }

// BenchmarkFigure6XMarkData1 regenerates Figure 6(c).
func BenchmarkFigure6XMarkData1(b *testing.B) { benchFigure6(b, 2) }

// BenchmarkFigure6XMarkData2 regenerates Figure 6(d).
func BenchmarkFigure6XMarkData2(b *testing.B) { benchFigure6(b, 3) }

// BenchmarkAblationSemantics compares all-LCA fragments against SLCA-only
// fragments (the restriction the paper argues is insufficient).
func BenchmarkAblationSemantics(b *testing.B) {
	ds := benchData(b)[1]
	for _, sem := range []Semantics{AllLCA, SLCAOnly} {
		b.Run(sem.String(), func(b *testing.B) {
			opts := Options{Semantics: sem}
			b.ReportAllocs()
			fragments := 0
			for i := 0; i < b.N; i++ {
				fragments = runQueryMix(b, ds, opts)
			}
			b.ReportMetric(float64(fragments), "fragments")
		})
	}
}

// BenchmarkAblationContentFeature compares the paper's (min,max) cID
// approximation against exact tree-content-set comparison in rule 2(b).
func BenchmarkAblationContentFeature(b *testing.B) {
	ds := benchData(b)[1]
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"cID", false}, {"exact", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := Options{ExactContent: mode.exact}
			b.ReportAllocs()
			fragments := 0
			for i := 0; i < b.N; i++ {
				fragments = runQueryMix(b, ds, opts)
			}
			b.ReportMetric(float64(fragments), "fragments")
		})
	}
}

// BenchmarkAblationRanking measures the overhead of the ranking extension.
func BenchmarkAblationRanking(b *testing.B) {
	ds := benchData(b)[0]
	for _, mode := range []struct {
		name string
		rank bool
	}{{"unranked", false}, {"ranked", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := Options{Rank: mode.rank}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runQueryMix(b, ds, opts)
			}
		})
	}
}

// BenchmarkIndexBuild measures engine construction (parse-free: from an
// already-built tree), which the paper's timing excludes.
func BenchmarkIndexBuild(b *testing.B) {
	w := workload.DBLP()
	specs, err := w.Specs(0, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 9, NumRecords: 400, Keywords: specs})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromTree(tree)
	}
}

// BenchmarkSingleQuery isolates one mid-frequency query end to end on the
// largest XMark dataset.
func BenchmarkSingleQuery(b *testing.B) {
	ds := benchData(b)[3]
	const q = "preventions description order"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ds.engine.Search(context.Background(), Request{Query: q}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStages isolates the four stages of Algorithm 1 on the
// xmark-standard dataset with a mid-frequency query, exposing where the
// time goes (the paper's §4.3(4) argues pruneRTF is dominated by the
// covered-key-number checks). The stages run in their production node-ID
// form (internal/nid); BenchmarkAblationELCA keeps the code-based variants
// for comparison.
func BenchmarkStages(b *testing.B) {
	ds := benchData(b)[1]
	const q = "preventions description order"
	e := ds.engine
	tab := e.Index().Table()
	p, err := e.plan(q)
	if err != nil {
		b.Fatal(err)
	}
	params := e.params(Request{})

	b.Run("getKeywordNodes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.plan(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("getLCA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lca.ELCAStackMergeIDs(tab, p.Sets)
		}
	})
	roots := lca.ELCAStackMergeIDs(tab, p.Sets)
	b.Run("getRTF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rtf.BuildIDs(tab, roots, p.Sets)
		}
	})
	rtfs := rtf.BuildIDs(tab, roots, p.Sets)
	b.Run("pruneRTF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rtfs {
				f := prune.BuildFragmentIDs(tab, r, params.LabelOf, params.ContentOf, prune.Options{})
				f.Prune(prune.ValidContributor, prune.Options{})
			}
		}
	})
}

// BenchmarkAblationELCA compares the interesting-LCA algorithms on real
// workload posting lists: the production ID stack merge against the
// code-based stack merge and the indexed-dispatch alternative.
func BenchmarkAblationELCA(b *testing.B) {
	ds := benchData(b)[3]
	const q = "preventions description order"
	tab := ds.engine.Index().Table()
	_, _, idSets, err := ds.engine.resolveIDSets(q)
	if err != nil {
		b.Fatal(err)
	}
	_, _, sets, err := ds.engine.resolveSets(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("StackMergeIDs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lca.ELCAStackMergeIDs(tab, idSets)
		}
	})
	b.Run("StackMerge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lca.ELCAStackMerge(sets)
		}
	})
	b.Run("IndexedDispatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lca.ELCAIndexedDispatch(sets)
		}
	})
}

var (
	benchCorpusOnce  sync.Once
	benchCorpus      *Corpus
	benchCorpusQuery string
)

// benchCorpusData builds a multi-document corpus (24 generated DBLP
// documents — the digital-library setting) and picks the workload query
// with the most candidates across it, so a Limit=10 selection discards
// real work.
func benchCorpusData(b *testing.B) (*Corpus, string) {
	b.Helper()
	benchCorpusOnce.Do(func() {
		w := workload.DBLP()
		specs, err := w.Specs(0, 400.0/20000.0)
		if err != nil {
			panic(err)
		}
		benchCorpus = NewCorpus()
		for i := int64(0); i < 24; i++ {
			tree := datagen.DBLP(datagen.DBLPConfig{Seed: 100 + i, NumRecords: 400, Keywords: specs})
			benchCorpus.Add(fmt.Sprintf("dblp-%d.xml", i), FromTree(tree))
		}
		best := 0
		for _, abbrev := range w.Queries {
			q, err := w.Expand(abbrev)
			if err != nil {
				panic(err)
			}
			res, err := benchCorpus.Search(context.Background(), Request{Query: q})
			if err != nil {
				panic(err)
			}
			if res.Stats.NumLCAs > best {
				best, benchCorpusQuery = res.Stats.NumLCAs, q
			}
		}
	})
	return benchCorpus, benchCorpusQuery
}

// BenchmarkCorpusTopK measures the late-materialization contract on a
// ranked, limited corpus search: the staged pipeline streams candidates
// into a bounded top-K merge and assembles exactly Limit fragments, while
// the eager baseline (the pre-refactor path, kept in
// pipeline_crosscheck_test.go) assembles every fragment in every document
// before sorting and truncating. The pipeline case also asserts the
// assembly count.
func BenchmarkCorpusTopK(b *testing.B) {
	c, q := benchCorpusData(b)
	opts := Options{Rank: true, Limit: 10}

	b.Run("pipeline", func(b *testing.B) {
		b.ReportAllocs()
		before := corpusAssembled(c)
		fragments := 0
		for i := 0; i < b.N; i++ {
			res, err := c.Search(context.Background(), NewRequest(q, opts))
			if err != nil {
				b.Fatal(err)
			}
			fragments = len(res.Fragments)
		}
		assembled := corpusAssembled(c) - before
		if max := uint64(b.N * opts.Limit); assembled > max {
			b.Fatalf("assembled %d fragments over %d iterations; late materialization allows at most %d", assembled, b.N, max)
		}
		b.ReportMetric(float64(fragments), "fragments")
	})
	b.Run("eagerBaseline", func(b *testing.B) {
		b.ReportAllocs()
		fragments := 0
		for i := 0; i < b.N; i++ {
			res, err := eagerCorpusSearch(c, q, opts)
			if err != nil {
				b.Fatal(err)
			}
			fragments = len(res.Fragments)
		}
		b.ReportMetric(float64(fragments), "fragments")
	})
}

// BenchmarkCorpusStreamFirstPage measures the streaming results API's
// early-exit contract against the buffered fan-out: a client that wants the
// first K ranked fragments of an unlimited scroll either streams
// Corpus.Fragments and breaks after K — materializing exactly K — or runs
// the buffered Corpus.Search (no limit, the pre-streaming shape) and takes
// the first K of a fully materialized result set. The stream case asserts
// the assembly count; records go into BENCH_PR5.json.
func BenchmarkCorpusStreamFirstPage(b *testing.B) {
	c, q := benchCorpusData(b)
	const K = 10
	req := Request{Query: q, Rank: true}

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		before := corpusAssembled(c)
		for i := 0; i < b.N; i++ {
			n := 0
			for _, err := range c.Fragments(context.Background(), req) {
				if err != nil {
					b.Fatal(err)
				}
				if n++; n == K {
					break
				}
			}
			if n != K {
				b.Fatalf("streamed %d fragments, want %d", n, K)
			}
		}
		if assembled := corpusAssembled(c) - before; assembled != uint64(b.N*K) {
			b.Fatalf("assembled %d fragments over %d iterations; the early break must materialize exactly %d",
				assembled, b.N, b.N*K)
		}
		b.ReportMetric(K, "fragments")
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		fragments := 0
		for i := 0; i < b.N; i++ {
			res, err := c.Search(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Fragments) < K {
				b.Fatalf("only %d fragments", len(res.Fragments))
			}
			fragments = len(res.Fragments[:K])
		}
		b.ReportMetric(float64(fragments), "fragments")
	})
}

// BenchmarkAblationSLCA compares the two SLCA strategies on the same
// posting lists.
func BenchmarkAblationSLCA(b *testing.B) {
	ds := benchData(b)[3]
	const q = "preventions description order"
	_, _, sets, err := ds.engine.resolveSets(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("IndexedLookupEager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lca.SLCA(sets)
		}
	})
	b.Run("ScanEager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lca.SLCAScanEager(sets)
		}
	})
}
