package xks

// Cancellation tests for the context-aware Request API: a done context
// aborts the staged pipeline promptly — upfront, inside the k-way merge
// loops of the candidate stage (bounded by the check interval), and between
// materialized fragments — and the corpus fan-out joins every worker
// goroutine before returning. These run under -race in CI.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"xks/internal/datagen"
	"xks/internal/workload"
)

// figure5Engine builds the DBLP preset the Figure 5 benchmarks measure
// (the same construction as allocEngine / the crosscheck engines).
func figure5Engine(t testing.TB) (*Engine, []string) {
	t.Helper()
	w := workload.DBLP()
	specs, err := w.Specs(0, 400.0/20000.0)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := w.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 1, NumRecords: 400, Keywords: specs})
	return FromTree(tree), queries
}

// richestQuery returns the workload query with the most fragments, so
// paging and mid-materialization tests have several fragments to work
// with.
func richestQuery(t testing.TB, e *Engine, queries []string) string {
	t.Helper()
	best, bestN := "", -1
	for _, q := range queries {
		res, err := e.Search(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Fragments) > bestN {
			best, bestN = q, len(res.Fragments)
		}
	}
	return best
}

// TestDeadlineAbortsFigure5ScaleSearch pins the acceptance contract of the
// Request API: a 1ms deadline aborts a Figure-5-scale search with
// context.DeadlineExceeded, while the old eager path — the deprecated
// wrapper running on context.Background() — completes the identical query.
// The test waits for the deadline to pass before dispatching so the result
// is deterministic on any machine; the mid-stage checks that bound
// cancellation latency on slower hardware are covered by
// TestCancelInsideCandidateMerge.
func TestDeadlineAbortsFigure5ScaleSearch(t *testing.T) {
	e, queries := figure5Engine(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()

	for _, q := range queries {
		if _, err := e.Search(ctx, Request{Query: q}); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Search(%q) under expired deadline: err = %v, want context.DeadlineExceeded", q, err)
		}
	}
	// The old eager path (the pre-pipeline reference implementation the
	// crosscheck tests keep) has no deadline to exceed: it completes every
	// query the deadlined Request aborted.
	for _, q := range queries {
		res, err := eagerSearch(e, q, Options{})
		if err != nil {
			t.Fatalf("eagerSearch(%q): %v", q, err)
		}
		if res == nil {
			t.Fatalf("eagerSearch(%q) returned nil result", q)
		}
	}
	// Request.Timeout is the self-contained form of the same deadline.
	req := Request{Query: queries[0], Timeout: time.Nanosecond}
	if _, err := e.Search(context.Background(), req); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Timeout request: err = %v, want nil or context.DeadlineExceeded", err)
	}
}

// tripCtx is a context whose Err starts reporting an error after a fixed
// number of Err calls, making "cancelled mid-candidate-stage" (or
// mid-materialization) deterministic: the first call (the upfront check in
// exec.Candidates) passes, the next check — inside the merge loop — trips.
// err selects what the trip reports (default context.Canceled; the
// best-effort tests use context.DeadlineExceeded).
type tripCtx struct {
	context.Context
	calls atomic.Int64
	after int64
	err   error
}

func (c *tripCtx) Err() error {
	if c.calls.Add(1) > c.after {
		if c.err != nil {
			return c.err
		}
		return context.Canceled
	}
	return nil
}

// TestCancelInsideCandidateMerge proves the candidate stage observes
// cancellation mid-stream, bounded by the check interval: on a document
// whose merged keyword stream far exceeds the interval, a context that
// trips after the upfront check aborts the search from inside the k-way
// merge with ctx.Err().
func TestCancelInsideCandidateMerge(t *testing.T) {
	// Two keywords at 4000 postings each: the merged stream (8000 events)
	// crosses the 4096-event check interval several times.
	tree := datagen.DBLP(datagen.DBLPConfig{
		Seed:       42,
		NumRecords: 2000,
		Keywords:   []datagen.KeywordSpec{{Word: "alpha", Count: 4000}, {Word: "beta", Count: 4000}},
	})
	e := FromTree(tree)
	const q = "alpha beta"

	// Sanity: the search succeeds without cancellation.
	res, err := e.Search(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) == 0 {
		t.Fatal("generated document yields no fragments; the cancellation check would be vacuous")
	}

	ctx := &tripCtx{Context: context.Background(), after: 1}
	if _, err := e.Search(ctx, Request{Query: q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from inside the candidate stage", err)
	}
	if n := ctx.calls.Load(); n < 2 {
		t.Fatalf("context checked %d times; the trip must come from a mid-stage check, not the upfront one", n)
	}

	// SLCA semantics runs a different merge loop; it must check too.
	ctx = &tripCtx{Context: context.Background(), after: 1}
	if _, err := e.Search(ctx, Request{Query: q, Semantics: SLCAOnly}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SLCA: err = %v, want context.Canceled", err)
	}
}

// corpusForCancel builds a corpus big enough that its fan-out spawns real
// workers.
func corpusForCancel(t testing.TB) (*Corpus, string) {
	t.Helper()
	w := workload.DBLP()
	specs, err := w.Specs(0, 400.0/20000.0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := w.Expand(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus()
	for i := int64(0); i < 8; i++ {
		tree := datagen.DBLP(datagen.DBLPConfig{Seed: 200 + i, NumRecords: 400, Keywords: specs})
		c.Add(fmt.Sprintf("doc%d.xml", i), FromTree(tree))
	}
	c.Workers = 4
	return c, q
}

// TestCorpusSearchCancelReturnsCtxErr covers the fan-out: a context
// cancelled before and during a corpus search surfaces ctx.Err(), not a
// partial result.
func TestCorpusSearchCancelReturnsCtxErr(t *testing.T) {
	c, q := corpusForCancel(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Search(ctx, Request{Query: q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled corpus search: err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Microsecond)
		cancel()
	}()
	if _, err := c.Search(ctx, Request{Query: q}); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v, want nil (finished first) or context.Canceled", err)
	}
	cancel()
}

// TestCorpusSearchCancelLeaksNoGoroutines asserts the fan-out joins every
// worker before returning on cancellation: after many cancelled searches
// the goroutine count settles back to its baseline.
func TestCorpusSearchCancelLeaksNoGoroutines(t *testing.T) {
	c, q := corpusForCancel(t)
	// Warm up once so lazily-started runtime goroutines are in the
	// baseline.
	if _, err := c.Search(context.Background(), Request{Query: q}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // cancelled before dispatch
		} else {
			go func() {
				time.Sleep(50 * time.Microsecond)
				cancel()
			}()
		}
		_, err := c.Search(ctx, Request{Query: q})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
		cancel()
	}

	// Let any stragglers finish; MapCtx joins its workers, so the count
	// must settle at (or below) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines: %d before, %d after cancelled searches — fan-out leaked", before, after)
	}
}

// TestBestEffortBudgetTruncatesMidMaterialization pins the BestEffort
// acceptance contract: a deadline that expires mid-materialization comes
// back as a partial page with Truncated set and a resumable cursor, where
// the identical Strict request fails with context.DeadlineExceeded. The
// tripCtx makes the expiry land inside the materialization loop
// deterministically (same allowance as TestSearchCancelBetweenFragments).
func TestBestEffortBudgetTruncatesMidMaterialization(t *testing.T) {
	e, queries := figure5Engine(t)
	q := richestQuery(t, e, queries)
	full, err := e.Search(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Fragments) < 3 {
		t.Skipf("query %q yields %d fragments; need a few to truncate between", q, len(full.Fragments))
	}
	allowance := int64(2 + len(full.Fragments)/2)

	// Strict (the default): the same mid-materialization deadline is an
	// error.
	ctx := &tripCtx{Context: context.Background(), after: allowance, err: context.DeadlineExceeded}
	if _, err := e.Search(ctx, Request{Query: q}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("strict budget: err = %v, want context.DeadlineExceeded", err)
	}

	// BestEffort: the fragments finished in time come back, marked.
	ctx = &tripCtx{Context: context.Background(), after: allowance, err: context.DeadlineExceeded}
	res, err := e.Search(ctx, Request{Query: q, Budget: BestEffort})
	if err != nil {
		t.Fatalf("best-effort budget: err = %v, want nil", err)
	}
	if !res.Truncated {
		t.Fatal("best-effort deadline did not set Truncated")
	}
	if len(res.Fragments) == 0 || len(res.Fragments) >= len(full.Fragments) {
		t.Fatalf("truncated page has %d fragments, want a non-empty strict subset of %d",
			len(res.Fragments), len(full.Fragments))
	}
	// The page is the exact prefix of the full result, and the cursor
	// resumes right after it.
	for i, f := range res.Fragments {
		if f.Root != full.Fragments[i].Root {
			t.Fatalf("fragment %d: %s, want prefix %s", i, f.Root, full.Fragments[i].Root)
		}
	}
	if res.Cursor == "" || res.NextOffset != len(res.Fragments) {
		t.Fatalf("truncated page: Cursor=%q NextOffset=%d, want resumable at %d",
			res.Cursor, res.NextOffset, len(res.Fragments))
	}
	rest, err := e.Search(context.Background(), Request{Query: q, Cursor: res.Cursor})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Fragments) + len(rest.Fragments); got != len(full.Fragments) {
		t.Fatalf("truncated page + resume = %d fragments, want %d", got, len(full.Fragments))
	}

	// A deadline already expired before the pipeline starts: BestEffort
	// returns an empty truncated page instead of an error.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-expired.Done()
	empty, err := e.Search(expired, Request{Query: q, Budget: BestEffort})
	if err != nil {
		t.Fatalf("expired best-effort: err = %v, want nil", err)
	}
	if !empty.Truncated || len(empty.Fragments) != 0 {
		t.Fatalf("expired best-effort: %d fragments truncated=%t, want 0/true", len(empty.Fragments), empty.Truncated)
	}
	// Cancellation is not softened: the caller is gone either way.
	gone, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e.Search(gone, Request{Query: q, Budget: BestEffort}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled best-effort: err = %v, want context.Canceled", err)
	}
}

// TestCorpusBestEffortBudget covers the fan-out: an expired deadline under
// BestEffort yields a truncated (possibly empty) page with no error, both
// buffered and streamed, and the truncated stream's trailer stays
// resumable.
func TestCorpusBestEffortBudget(t *testing.T) {
	c, q := corpusForCancel(t)

	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-expired.Done()
	res, err := c.Search(expired, Request{Query: q, Budget: BestEffort})
	if err != nil {
		t.Fatalf("expired best-effort corpus search: err = %v, want nil", err)
	}
	if !res.Truncated {
		t.Fatal("expired best-effort corpus search did not set Truncated")
	}
	if _, err := c.Search(expired, Request{Query: q}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("strict twin: err = %v, want context.DeadlineExceeded", err)
	}

	// Mid-materialization trip through the streaming path: the fragments
	// yielded before the deadline survive, the trailer marks truncation.
	full, err := c.Search(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Fragments) < 3 {
		t.Skipf("query %q yields %d fragments; need a few to truncate between", q, len(full.Fragments))
	}
	ctx := &tripCtx{Context: context.Background(), after: int64(1 << 30), err: context.DeadlineExceeded}
	seq, trailer := c.Stream(ctx, Request{Query: q, Budget: BestEffort})
	streamed := 0
	for _, err := range seq {
		if err != nil {
			t.Fatalf("stream yielded %v", err)
		}
		if streamed++; streamed == 2 {
			// Arm the trip: the very next Err() call — the check before
			// fragment 3 — reports an expired deadline.
			ctx.after = -1
		}
	}
	res = trailer()
	if !res.Truncated || streamed != 2 {
		t.Fatalf("truncated stream: %d fragments yielded truncated=%t, want 2/true", streamed, res.Truncated)
	}
	if res.Cursor == "" {
		t.Fatal("truncated stream issued no cursor")
	}
	rest, err := c.Search(context.Background(), Request{Query: q, Cursor: res.Cursor})
	if err != nil {
		t.Fatal(err)
	}
	if got := 2 + len(rest.Fragments); got != len(full.Fragments) {
		t.Fatalf("truncated stream + resume = %d fragments, want %d", got, len(full.Fragments))
	}
}

// TestSearchCancelBetweenFragments covers the materialization loop: a
// context cancelled after the candidate stage still aborts the search
// before assembling the remaining fragments.
func TestSearchCancelBetweenFragments(t *testing.T) {
	e, queries := figure5Engine(t)
	// Trip well after the candidate stage's checks: the upfront check plus
	// one per materialized fragment means a large allowance lands the trip
	// inside the materialization loop for a query with many fragments.
	q := richestQuery(t, e, queries)
	res, err := e.Search(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) < 3 {
		t.Skipf("query %q yields %d fragments; need a few to cancel between", q, len(res.Fragments))
	}
	before := e.assembledFragments()
	ctx := &tripCtx{Context: context.Background(), after: int64(2 + len(res.Fragments)/2)}
	if _, err := e.Search(ctx, Request{Query: q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if assembled := e.assembledFragments() - before; assembled >= uint64(len(res.Fragments)) {
		t.Fatalf("assembled %d of %d fragments despite cancellation", assembled, len(res.Fragments))
	}
}
