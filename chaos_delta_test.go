package xks

// Chaos suite for the delta subsystem: concurrent append/search/compact
// storms under -race, a compactor crash that must leave the published head
// untouched, a scripted snapshot-pin leak the pinned gauge must expose, and
// cursors resuming across compaction. Every test runs the goroutine-leak
// check; CI runs these under -race.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xks/internal/fault"
)

// TestChaosConcurrentAppendSearchCompact storms one engine with tail
// appends, searches and compactions at once: no request may error, no
// goroutine may leak, and at idle the pinned-snapshot refcount must be
// zero — every query released the snapshot it pinned.
func TestChaosConcurrentAppendSearchCompact(t *testing.T) {
	leakCheck(t)
	e, err := LoadString(deltaBaseXML)
	if err != nil {
		t.Fatal(err)
	}
	const (
		appenders = 2
		searchers = 4
		rounds    = 25
	)
	errs := make(chan error, (appenders+searchers+1)*rounds)
	var wg sync.WaitGroup
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				snip := fmt.Sprintf(`<paper><title>chaos search %d-%d</title></paper>`, i, r)
				if err := e.AppendXML("0", snip); err != nil {
					errs <- fmt.Errorf("append %d-%d: %w", i, r, err)
				}
			}
		}(i)
	}
	for i := 0; i < searchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := e.Search(context.Background(), Request{Query: "search", Rank: true, Limit: 5})
				if err != nil {
					errs <- fmt.Errorf("search: %w", err)
					continue
				}
				if len(res.Fragments) == 0 {
					errs <- fmt.Errorf("search returned no fragments mid-storm")
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := e.Compact(context.Background()); err != nil {
				errs <- fmt.Errorf("compact: %w", err)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	di := e.DeltaInfo()
	if di.PinnedSnapshots != 0 {
		t.Errorf("pinned snapshots = %d at idle, want 0 (leaked pins)", di.PinnedSnapshots)
	}
	// Every append is visible: the storm's writes all landed.
	res, err := e.Search(context.Background(), Request{Query: "chaos"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumLCAs != appenders*rounds {
		t.Errorf("post-storm search sees %d appended papers, want %d", res.Stats.NumLCAs, appenders*rounds)
	}
}

// TestChaosCorpusAppendSearchCompact is the corpus-level storm: appends to
// one document race merged searches and corpus-wide compactions.
func TestChaosCorpusAppendSearchCompact(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	grow, err := LoadString(deltaBaseXML)
	if err != nil {
		t.Fatal(err)
	}
	c.Add("grow.xml", grow)

	const rounds = 20
	errs := make(chan error, 3*rounds)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			snip := fmt.Sprintf(`<paper><title>storm search %d</title></paper>`, r)
			if err := c.AppendXML("grow.xml", "0", snip); err != nil {
				errs <- fmt.Errorf("append %d: %w", r, err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := c.Search(context.Background(), Request{Query: "search", Rank: true, Limit: 5}); err != nil {
				errs <- fmt.Errorf("search: %w", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := c.Compact(context.Background()); err != nil {
				errs <- fmt.Errorf("compact: %w", err)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if di := c.DeltaInfo(); di.PinnedSnapshots != 0 {
		t.Errorf("corpus pinned snapshots = %d at idle, want 0", di.PinnedSnapshots)
	}
}

// TestChaosCompactorCrashLeavesStateIntact injects a fault into the
// compactor between folding and publishing: the compaction fails, the
// published head keeps serving with its segments untouched, and a clean
// retry folds them all.
func TestChaosCompactorCrashLeavesStateIntact(t *testing.T) {
	leakCheck(t)
	ref := rebuiltEngine(t)
	grown := grownEngine(t)
	segs := grown.DeltaInfo().Segments

	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCompact,
		Count:  1,
		Action: fault.Action{Err: fault.ErrInjected},
	})
	n, err := grown.Compact(fault.NewContext(context.Background(), plan))
	if !errors.Is(err, fault.ErrInjected) || n != 0 {
		t.Fatalf("crashed Compact = (%d, %v), want (0, injected)", n, err)
	}
	di := grown.DeltaInfo()
	if di.Segments != segs {
		t.Fatalf("segments = %d after crashed compaction, want the untouched %d", di.Segments, segs)
	}
	if di.Compactions != 0 {
		t.Errorf("crashed compaction was recorded as published (%d)", di.Compactions)
	}
	// Nothing half-applied: the engine still serves byte-identically.
	requireSameResults(t, "post-crash", ref, grown)

	// The retry succeeds and folds everything.
	n, err = grown.Compact(context.Background())
	if err != nil || n != int(segs) {
		t.Fatalf("retry Compact = (%d, %v), want (%d, nil)", n, err, segs)
	}
	requireSameResults(t, "post-retry", ref, grown)
}

// TestChaosSnapshotPinLeakDetected scripts a refcount leak: the injected
// fault makes one search skip its snapshot release, and the pinned gauge —
// the leak detector the metrics surface exposes — must stick at one while
// fault-free searches keep balancing theirs.
func TestChaosSnapshotPinLeakDetected(t *testing.T) {
	leakCheck(t)
	e := grownEngine(t)
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointSnapshotPin,
		Count:  1,
		Action: fault.Action{Err: fault.ErrInjected},
	})
	if _, err := e.Search(fault.NewContext(context.Background(), plan), Request{Query: "search"}); err != nil {
		t.Fatalf("the pin fault must not fail the search: %v", err)
	}
	if got := e.DeltaInfo().PinnedSnapshots; got != 1 {
		t.Fatalf("pinned = %d after the scripted leak, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Search(context.Background(), Request{Query: "search"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.DeltaInfo().PinnedSnapshots; got != 1 {
		t.Fatalf("pinned = %d after fault-free searches, want the leaked 1", got)
	}
}

// TestChaosCursorResumesAcrossCompaction issues a cursor, appends, then
// compacts — the fold rewrites which structure holds the postings, so the
// resume must cut the folded base back to the cursor's snapshot and serve
// the pre-append page 2.
func TestChaosCursorResumesAcrossCompaction(t *testing.T) {
	leakCheck(t)
	e, err := LoadString(`<bib><paper><title>xml search</title></paper><paper><title>search trees</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := e.Search(context.Background(), Request{Query: "search", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if page1.Cursor == "" {
		t.Fatal("page 1 issued no cursor")
	}
	if err := e.AppendXML("0", `<paper><title>fresh search result</title></paper>`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	pinned, err := e.Search(context.Background(), Request{Query: "search", Limit: 1, Cursor: page1.Cursor})
	if err != nil {
		t.Fatalf("post-compaction resume: %v, want the pinned page 2", err)
	}
	if pinned.Stats.NumLCAs != 2 {
		t.Fatalf("resumed scroll sees %d candidates through the folded base, want the pre-append 2", pinned.Stats.NumLCAs)
	}
	for _, f := range pinned.Fragments {
		if f.Root == page1.Fragments[0].Root {
			t.Fatalf("page 2 repeated page 1's fragment %s", f.Root)
		}
	}
}
