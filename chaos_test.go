package xks

// Chaos suite: deterministic fault injection (internal/fault) against the
// corpus pipeline, asserting graceful degradation — an injected worker
// panic fails one request with ErrInternal instead of crashing the
// process, an injected store read error surfaces wrapped with the document
// name, an injected slow stage is bounded by the request deadline, and a
// deadline storm under BestEffort salvages the completed documents into a
// truncated page instead of discarding them. Every test runs a
// goroutine-leak check: no fault class may leave workers behind. CI runs
// these under -race.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xks/internal/fault"
	"xks/internal/paperdata"
)

// chaosCorpus builds a four-document corpus (copies of the paper's
// publications tree) so fan-out faults can hit one document while the
// others complete.
func chaosCorpus(tb testing.TB) *Corpus {
	tb.Helper()
	c := NewCorpus()
	for _, n := range []string{"a.xml", "b.xml", "c.xml", "d.xml"} {
		c.Add(n, FromTree(paperdata.Publications()))
	}
	return c
}

// leakCheck registers the goroutine-leak assertion for the test.
func leakCheck(t *testing.T) {
	t.Helper()
	check := fault.LeakCheck()
	t.Cleanup(func() {
		if msg := check(); msg != "" {
			t.Errorf("goroutine leak after fault injection:\n%s", msg)
		}
	})
}

// TestChaosWorkerPanicIsolated injects a panic into one document's
// candidate-stage worker: the search fails with a structured ErrInternal
// carrying the panic value and stack, the process survives, and the next
// fault-free search succeeds.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCandidates,
		Label:  "b.xml",
		Count:  1,
		Action: fault.Action{PanicMsg: "chaos: candidate worker"},
	})
	ctx := fault.NewContext(context.Background(), plan)

	_, err := c.Search(ctx, NewRequest(paperdata.Q1, Options{}))
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a wrapped *PanicError", err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "chaos: candidate worker") {
		t.Errorf("panic value = %v, want the injected message", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}

	// The same corpus still serves: the panic poisoned one request, not
	// the engine.
	res, err := c.Search(context.Background(), NewRequest(paperdata.Q1, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) == 0 {
		t.Fatal("fault-free search after the panic returned no fragments")
	}
}

// TestChaosMaterializePanicIsolated injects a panic into fragment
// assembly: the strict-budget search fails with ErrInternal, and the
// streaming path yields the same error instead of hanging or crashing.
func TestChaosMaterializePanicIsolated(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	req := NewRequest(paperdata.Q1, Options{Rank: true, Limit: 4})

	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointMaterialize,
		Count:  1,
		Action: fault.Action{PanicMsg: "chaos: assembly"},
	})
	if _, err := c.Search(fault.NewContext(context.Background(), plan), req); !errors.Is(err, ErrInternal) {
		t.Fatalf("Search err = %v, want ErrInternal", err)
	}

	// Streaming: the second materialization panics; the first fragment is
	// yielded, then the error — the loop terminates either way.
	splan := fault.NewPlan(fault.Rule{
		Point:  fault.PointMaterialize,
		After:  1,
		Count:  1,
		Action: fault.Action{PanicMsg: "chaos: assembly mid-stream"},
	})
	seq, trailer := c.Stream(fault.NewContext(context.Background(), splan), req)
	var yielded int
	var streamErr error
	for f, err := range seq {
		if err != nil {
			streamErr = err
			break
		}
		if f.Fragment == nil {
			t.Fatal("stream yielded a nil fragment without an error")
		}
		yielded++
	}
	if !errors.Is(streamErr, ErrInternal) {
		t.Fatalf("stream err = %v, want ErrInternal", streamErr)
	}
	if yielded != 1 {
		t.Fatalf("stream yielded %d fragments before the injected panic, want 1", yielded)
	}
	if tr := trailer(); tr == nil {
		t.Fatal("trailer is nil after a mid-stream panic")
	}
}

// TestChaosStoreReadFault injects a read error into one document's store
// access: the search fails with the injected sentinel wrapped under the
// document's name, so an operator can tell which shard is sick.
func TestChaosStoreReadFault(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointStoreRead,
		Label:  "c.xml",
		Count:  1,
		Action: fault.Action{Err: fault.ErrInjected},
	})
	_, err := c.Search(fault.NewContext(context.Background(), plan), NewRequest(paperdata.Q1, Options{}))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want the injected sentinel", err)
	}
	if !strings.Contains(err.Error(), "c.xml") {
		t.Errorf("err = %q, want the failing document's name in the message", err)
	}
}

// TestChaosSlowStageBoundedByDeadline injects a long delay into every
// candidate worker: a strict request's deadline cuts the delay short and
// the search returns DeadlineExceeded promptly, not after the injected
// sleep.
func TestChaosSlowStageBoundedByDeadline(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCandidates,
		Action: fault.Action{Delay: 30 * time.Second},
	})
	req := NewRequest(paperdata.Q1, Options{})
	req.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, err := c.Search(fault.NewContext(context.Background(), plan), req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("slow-stage search took %v; the deadline did not bound the injected delay", elapsed)
	}
}

// TestChaosDeadlineSalvagesCandidates pins the candidate-stage salvage
// satellite: one document's candidate stage burns the whole deadline, and
// a BestEffort search returns a truncated page salvaged from the three
// documents that completed — real fragments, real partial stats, and a
// cursor — where it previously returned an empty page.
func TestChaosDeadlineSalvagesCandidates(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCandidates,
		Label:  "d.xml",
		Action: fault.Action{UntilDeadline: true},
	})
	req := NewRequest(paperdata.Q1, Options{Rank: true, Limit: 6})
	req.Budget = BestEffort
	req.Timeout = 150 * time.Millisecond

	res, err := c.Search(fault.NewContext(context.Background(), plan), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Truncation != TruncCandidates {
		t.Fatalf("truncation = (%v, %q), want (true, %q)", res.Truncated, res.Truncation, TruncCandidates)
	}
	if len(res.Fragments) == 0 {
		t.Fatal("salvaged page is empty; completed documents were discarded")
	}
	for _, f := range res.Fragments {
		if f.Document == "d.xml" {
			t.Fatalf("salvaged page contains a fragment from the stalled document %q", f.Document)
		}
		if f.XML() == "" {
			t.Fatalf("salvaged fragment %s rendered empty", f.Root)
		}
	}
	if len(res.Stats.Keywords) == 0 {
		t.Error("salvaged result lost the query keywords (zero Stats struct)")
	}
	if res.Stats.NumLCAs == 0 {
		t.Error("salvaged result reports zero candidates despite completed documents")
	}
	if res.Cursor == "" {
		t.Error("salvaged page carries no cursor; the scroll would end silently")
	}
	// The salvaged ranked prefix must agree with the same search confined
	// to the surviving documents — salvage changes coverage, not order.
	if res.Fragments[0].Score < res.Fragments[len(res.Fragments)-1].Score {
		t.Error("salvaged page is not rank-ordered")
	}
}

// TestChaosDeadlineStorm hammers the corpus with concurrent BestEffort
// searches whose candidate stages are all forced into deadline
// exhaustion: every request must come back (salvaged or empty, never an
// error, never a hang) and no worker goroutine may leak. Run with -race.
func TestChaosDeadlineStorm(t *testing.T) {
	leakCheck(t)
	c := chaosCorpus(t)
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCandidates,
		Label:  "a.xml",
		Action: fault.Action{UntilDeadline: true},
	})

	const storm = 16
	var wg sync.WaitGroup
	errs := make(chan error, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := NewRequest(paperdata.Q1, Options{Rank: true, Limit: 4})
			req.Budget = BestEffort
			req.Timeout = 80 * time.Millisecond
			res, err := c.Search(fault.NewContext(context.Background(), plan), req)
			if err != nil {
				errs <- err
				return
			}
			if !res.Truncated {
				errs <- fmt.Errorf("storm request came back untruncated despite forced exhaustion")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
