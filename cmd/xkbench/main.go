// Command xkbench regenerates the paper's evaluation figures: the runtime
// comparison of Figure 5 and the effectiveness ratios of Figure 6, over the
// four synthetic datasets (DBLP and three XMark sizes).
//
// Usage:
//
//	xkbench                      # all four dataset panels, medium scale
//	xkbench -figure 5b           # one panel (5a..5d or 6a..6d)
//	xkbench -size large -csv     # bigger sweep, CSV output
//	xkbench -repeats 5           # the paper's 6-runs-discard-first protocol
//	xkbench -json out.json       # also write machine-readable records
//	xkbench -planner             # also sweep Auto vs fixed merge strategies
//	xkbench -open                # store cold-open sweep (v2 parse vs v3 mmap)
//	xkbench -append              # append sweep (delta vs renumbering baseline)
//	xkbench -cpuprofile cpu.out  # pprof CPU profile of the sweep
//	xkbench -memprofile mem.out  # pprof heap profile at exit
//
// -json writes every measurement as {"name", "ns_per_op", "fragments",
// "allocs_per_op", "bytes_per_op"} records ("benchmarks" array), the
// format the repo's BENCH_*.json perf trajectory accumulates. The
// allocation fields cover the full Compare operation (both pipelines) and
// are omitted for -parallel runs.
//
// -planner times each query under the cost-based planner (Strategy: Auto)
// and under each fixed strategy — the fixed query-order ScanMerge runs are
// the pre-planner baseline — and folds the planner/... records into the
// -json output next to the Figure 5 series.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"xks/internal/experiments"
)

func main() {
	var (
		figure     = flag.String("figure", "", "single figure panel to run (5a..5d, 6a..6d); empty = all")
		size       = flag.String("size", "medium", "dataset scale: small, medium or large")
		repeats    = flag.Int("repeats", 3, "timed runs per query after the discarded warm-up")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel   = flag.Int("parallel", 0, "run queries across N workers (timings become indicative; 0 = sequential)")
		planner    = flag.Bool("planner", false, "also sweep the cost-based planner (Auto) against each fixed strategy")
		openSweep  = flag.Bool("open", false, "run the store cold-open sweep (v2-heap vs v3-heap vs v3-mmap) instead of the figure panels")
		appendSw   = flag.Bool("append", false, "run the append sweep (delta path vs renumbering baseline, read p99 under a write storm) instead of the figure panels")
		jsonOut    = flag.String("json", "", "write machine-readable benchmark records to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush accumulated garbage so the profile shows live + allocated
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *appendSw {
		res, err := experiments.RunAppend(*size, 0, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table())
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, res.Records()); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *openSweep {
		res, err := experiments.RunOpen(*size, *repeats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table())
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, res.Records()); err != nil {
				fatal(err)
			}
		}
		return
	}

	specs, err := experiments.Presets(*size)
	if err != nil {
		fatal(err)
	}
	selected := specs
	if *figure != "" {
		idx, err := experiments.PresetByFigure(*figure)
		if err != nil {
			fatal(err)
		}
		selected = specs[idx : idx+1]
	}

	if *csv {
		fmt.Println("dataset,query,keywords,maxmatch_ms,validrtf_ms,rtfs,cfr,apr_prime,max_apr")
	}
	var records []experiments.BenchRecord
	for _, spec := range selected {
		var (
			res *experiments.FigureResult
			err error
		)
		if *parallel > 0 {
			res, err = experiments.RunParallel(spec, *parallel)
		} else {
			res, err = experiments.Run(spec, *repeats)
		}
		if err != nil {
			fatal(err)
		}
		if *jsonOut != "" {
			records = append(records, res.Records()...)
		}
		if *csv {
			// Skip the embedded header; it was printed once above.
			out := res.CSV()
			for i, c := range out {
				if c == '\n' {
					fmt.Print(out[i+1:])
					break
				}
			}
			continue
		}
		fmt.Println(res.Table())
		s := res.Summarize()
		fmt.Printf("summary: mean ValidRTF/MaxMatch time ratio %.2f; CFR<1 on %d/%d queries; APR'>0 on %d/%d; min MaxAPR %.3f\n\n",
			s.MeanTimeRatio, s.QueriesWithCFRBelow1, s.Queries, s.QueriesWithAPRPrimePositive, s.Queries, s.MinMaxAPR)
	}
	if *planner {
		for _, spec := range selected {
			res, err := experiments.RunPlanner(spec, *repeats)
			if err != nil {
				fatal(err)
			}
			if *jsonOut != "" {
				records = append(records, res.Records()...)
			}
			if *csv {
				continue
			}
			fmt.Println(res.Table())
			s := res.Summarize()
			fmt.Printf("planner summary: mean Auto/ScanMerge %.2f; mean Auto/best-fixed %.2f; within 10%% of best on %d/%d rows\n\n",
				s.MeanAutoVsScanMerge, s.MeanAutoVsBestFixed, s.AutoNotWorse, s.Rows)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, records); err != nil {
			fatal(err)
		}
	}
}

func writeJSON(path string, records []experiments.BenchRecord) error {
	out, err := json.MarshalIndent(struct {
		Benchmarks []experiments.BenchRecord `json:"benchmarks"`
	}{Benchmarks: records}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkbench:", err)
	os.Exit(1)
}
