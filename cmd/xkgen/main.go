// Command xkgen generates the synthetic DBLP-like and XMark-like datasets
// of the evaluation and writes them as XML.
//
// Usage:
//
//	xkgen -kind dblp  -records 3000 -out dblp.xml
//	xkgen -kind xmark -records 600 -variant 0 -out xmark.xml
//
// The -freq-factor flag scales the paper's published keyword frequencies to
// the generated size (see internal/workload).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xks/internal/datagen"
	xstats "xks/internal/stats"
	"xks/internal/workload"
	"xks/internal/xmltree"
)

func main() {
	var (
		kind    = flag.String("kind", "dblp", "dataset kind: dblp or xmark")
		records = flag.Int("records", 1000, "number of DBLP records / XMark items")
		variant = flag.Int("variant", 0, "XMark frequency column: 0=standard, 1=data1, 2=data2")
		factor  = flag.Float64("freq-factor", 0, "keyword frequency scale factor (0 = records/20000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()

	if *factor == 0 {
		*factor = float64(*records) / 20000.0
	}

	var (
		tree *xmltree.Tree
		err  error
	)
	switch *kind {
	case "dblp":
		w := workload.DBLP()
		specs, serr := w.Specs(0, *factor)
		if serr != nil {
			fatal(serr)
		}
		tree = datagen.DBLP(datagen.DBLPConfig{Seed: *seed, NumRecords: *records, Keywords: specs})
	case "xmark":
		w := workload.XMark()
		specs, serr := w.Specs(*variant, *factor)
		if serr != nil {
			fatal(serr)
		}
		tree = datagen.XMark(datagen.XMarkConfig{Seed: *seed, Items: *records, Keywords: specs})
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err = xmltree.WriteXML(w, tree.Root); err != nil {
		fatal(err)
	}
	if err = w.Flush(); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, xstats.Analyze(tree, 10).String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkgen:", err)
	os.Exit(1)
}
