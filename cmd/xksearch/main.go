// Command xksearch runs a keyword query against an XML document, a
// shredded store, or a whole directory of XML files and prints the
// meaningful fragments.
//
// Usage:
//
//	xksearch -file doc.xml [-algo validrtf|maxmatch|raw] [-slca] [-rank]
//	         [-limit N] [-offset N] [-timeout 5s]
//	         [-format ascii|xml|snippet] "keyword query"
//	xksearch -store doc.xks "keyword query"          # search a shredded store
//	xksearch -dir corpus/ -rank -limit 10 "query"    # search a directory-corpus
//
// With -dir the tool searches every *.xml file as one corpus (the same
// corpus xkserver -dir serves) and labels each fragment with its source
// document. Query terms may carry label predicates: "title:xml author:
// keyword". -limit and -offset page through large result sets (the tool
// prints the -offset of the next page); -timeout bounds the search, which
// aborts mid-pipeline with an error once exceeded; interrupting the tool
// (Ctrl-C) cancels the search the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"xks"
)

func main() {
	var (
		file    = flag.String("file", "", "XML document to search")
		storeF  = flag.String("store", "", "shredded store file to search instead of an XML document")
		dir     = flag.String("dir", "", "directory of *.xml files to search as one corpus")
		algo    = flag.String("algo", "validrtf", "pruning algorithm: validrtf, maxmatch or raw")
		slca    = flag.Bool("slca", false, "restrict fragment roots to smallest LCAs")
		rankIt  = flag.Bool("rank", false, "order fragments by relevance score")
		limit   = flag.Int("limit", 0, "maximum number of fragments (0 = all)")
		offset  = flag.Int("offset", 0, "fragments to skip before -limit applies (pagination)")
		timeout = flag.Duration("timeout", 0, "abort the search after this long (0 = no deadline)")
		format  = flag.String("format", "ascii", "output format: ascii, xml or snippet")
		exact   = flag.Bool("exact-content", false, "compare exact content sets instead of (min,max) features")
		stats   = flag.Bool("stats", false, "print search statistics")
	)
	flag.Parse()
	sources := 0
	for _, s := range []string{*file, *storeF, *dir} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xksearch -file doc.xml | -store doc.xks | -dir corpus/ [flags] \"keyword query\"")
		flag.PrintDefaults()
		os.Exit(2)
	}

	req := xks.Request{
		Query:        strings.Join(flag.Args(), " "),
		Rank:         *rankIt,
		Limit:        *limit,
		Offset:       *offset,
		Timeout:      *timeout,
		ExactContent: *exact,
	}
	switch strings.ToLower(*algo) {
	case "validrtf":
		req.Algorithm = xks.ValidRTF
	case "maxmatch":
		req.Algorithm = xks.MaxMatch
	case "raw":
		req.Algorithm = xks.RawRTF
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if *slca {
		req.Semantics = xks.SLCAOnly
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		res     *xks.CorpusResult
		showDoc bool
	)
	if *dir != "" {
		corpus, err := xks.LoadDir(*dir)
		if err != nil {
			fatal(err)
		}
		res, err = corpus.Search(ctx, req)
		if err != nil {
			fatal(err)
		}
		showDoc = true
	} else {
		var (
			engine *xks.Engine
			err    error
			name   string
		)
		if *storeF != "" {
			engine, err = xks.OpenStore(*storeF)
			name = *storeF
		} else {
			engine, err = xks.LoadFile(*file)
			name = *file
		}
		if err != nil {
			fatal(err)
		}
		single, err := engine.Search(ctx, req)
		if err != nil {
			fatal(err)
		}
		res = single.AsCorpus(name)
	}

	if *stats {
		fmt.Printf("keywords: %v\nkeyword nodes: %d\nfragments: %d\nelapsed: %v\n\n",
			res.Stats.Keywords, res.Stats.KeywordNodes, res.Stats.NumLCAs, res.Stats.Elapsed)
	}
	if len(res.Fragments) == 0 {
		fmt.Println("no fragments found")
		return
	}
	for i, f := range res.Fragments {
		kind := "LCA"
		if f.IsSLCA {
			kind = "SLCA"
		}
		fmt.Printf("--- fragment %d: root %s (%s) [%s]", req.Offset+i+1, f.Root, f.RootLabel, kind)
		if req.Rank {
			fmt.Printf(" score=%.3f", f.Score)
		}
		if showDoc {
			fmt.Printf(" doc=%s", f.Document)
		}
		fmt.Println()
		switch *format {
		case "xml":
			fmt.Print(f.XML())
		case "snippet":
			fmt.Println(f.Snippet())
		default:
			fmt.Print(f.ASCII())
		}
		fmt.Println()
	}
	if res.NextOffset >= 0 {
		fmt.Printf("more results: rerun with -offset %d\n", res.NextOffset)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xksearch:", err)
	os.Exit(1)
}
