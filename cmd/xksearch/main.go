// Command xksearch runs a keyword query against an XML document, a
// shredded store, or a whole directory of XML files and prints the
// meaningful fragments.
//
// Usage:
//
//	xksearch -file doc.xml [-algo validrtf|maxmatch|raw] [-slca] [-rank]
//	         [-strategy auto|indexed|scan] [-limit N] [-cursor tok]
//	         [-timeout 5s] [-best-effort]
//	         [-format ascii|xml|snippet] [-stream] "keyword query"
//	xksearch -store doc.xks "keyword query"          # search a shredded store
//	xksearch -dir corpus/ -rank -limit 10 "query"    # search a directory-corpus
//
// With -dir the tool searches every *.xml file as one corpus (the same
// corpus xkserver -dir serves) and labels each fragment with its source
// document. Query terms may carry label predicates: "title:xml author:
// keyword". -limit pages through large result sets: when more results
// remain the tool prints an opaque resume token, and -cursor continues the
// scroll from it (the deprecated -offset raw-offset alias still works).
// -timeout bounds the search, which aborts mid-pipeline with an error once
// exceeded — unless -best-effort is set, in which case the fragments
// finished in time are printed with a TRUNCATED marker. -stream switches
// the output to NDJSON, one fragment object per line as the pipeline
// materializes it, followed by a trailer record carrying the cursor and
// stats. Interrupting the tool (Ctrl-C) cancels the search either way.
// -explain traces the search and prints the per-stage span tree — wall
// times, candidate counts, per-document fan-out — to stderr after the
// results (the same tree /search?explain=1 returns as JSON).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"iter"
	"os"
	"os/signal"
	"strings"

	"xks"
	"xks/internal/httpapi"
	"xks/internal/service"
	"xks/internal/trace"
)

func main() {
	var (
		file    = flag.String("file", "", "XML document to search")
		storeF  = flag.String("store", "", "shredded store file to search instead of an XML document")
		dir     = flag.String("dir", "", "directory of *.xml files to search as one corpus")
		algo    = flag.String("algo", "validrtf", "pruning algorithm: validrtf, maxmatch or raw")
		strat   = flag.String("strategy", "auto", "LCA evaluation strategy: auto (cost-based planner), indexed or scan")
		slca    = flag.Bool("slca", false, "restrict fragment roots to smallest LCAs")
		rankIt  = flag.Bool("rank", false, "order fragments by relevance score")
		limit   = flag.Int("limit", 0, "maximum number of fragments (0 = all)")
		cursor  = flag.String("cursor", "", "resume a previous page from its printed cursor token")
		offset  = flag.Int("offset", 0, "deprecated: raw fragment offset; resume with -cursor instead")
		timeout = flag.Duration("timeout", 0, "abort the search after this long (0 = no deadline)")
		bestEff = flag.Bool("best-effort", false, "with -timeout: print the fragments finished in time instead of failing")
		stream  = flag.Bool("stream", false, "emit NDJSON fragments as they materialize, plus a trailer record")
		format  = flag.String("format", "ascii", "output format: ascii, xml or snippet")
		exact   = flag.Bool("exact-content", false, "compare exact content sets instead of (min,max) features")
		stats   = flag.Bool("stats", false, "print search statistics")
		explain = flag.Bool("explain", false, "trace the search and print the per-stage span tree to stderr")
	)
	flag.Parse()
	sources := 0
	for _, s := range []string{*file, *storeF, *dir} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xksearch -file doc.xml | -store doc.xks | -dir corpus/ [flags] \"keyword query\"")
		flag.PrintDefaults()
		os.Exit(2)
	}

	req := xks.Request{
		Query:        strings.Join(flag.Args(), " "),
		Rank:         *rankIt,
		Limit:        *limit,
		Offset:       *offset,
		Cursor:       xks.Cursor(*cursor),
		Timeout:      *timeout,
		ExactContent: *exact,
	}
	if *bestEff {
		req.Budget = xks.BestEffort
	}
	switch strings.ToLower(*algo) {
	case "validrtf":
		req.Algorithm = xks.ValidRTF
	case "maxmatch":
		req.Algorithm = xks.MaxMatch
	case "raw":
		req.Algorithm = xks.RawRTF
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if *slca {
		req.Semantics = xks.SLCAOnly
	}
	switch strings.ToLower(*strat) {
	case "auto":
		req.Strategy = xks.Auto
	case "indexed", "indexedeager":
		req.Strategy = xks.IndexedEager
	case "scan", "scanmerge":
		req.Strategy = xks.ScanMerge
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strat))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tr *trace.Trace
	if *explain {
		tr = trace.New("search")
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			tr.Finish()
			fmt.Fprint(os.Stderr, tr.Root().Text())
		}()
	}

	// Resolve the source into one corpus-shaped stream; buffered output
	// drains it, -stream prints each fragment the moment it materializes.
	var (
		seq     iter.Seq2[xks.CorpusFragment, error]
		trailer func() *xks.Results
		showDoc bool
	)
	if *dir != "" {
		corpus, err := xks.LoadDir(*dir)
		if err != nil {
			fatal(err)
		}
		seq, trailer = corpus.Stream(ctx, req)
		showDoc = true
	} else {
		var (
			engine *xks.Engine
			err    error
			name   string
		)
		if *storeF != "" {
			engine, err = xks.OpenStore(*storeF)
			name = *storeF
		} else {
			engine, err = xks.LoadFile(*file)
			name = *file
		}
		if err != nil {
			fatal(err)
		}
		// The same engine-to-corpus stream adapter the HTTP server uses.
		seq, trailer = service.SingleDoc{Name: name, Engine: engine}.Stream(ctx, req)
	}

	if *stream {
		streamOut(seq, trailer)
		return
	}

	var frags []xks.CorpusFragment
	for f, err := range seq {
		if err != nil {
			fatal(err)
		}
		frags = append(frags, f)
	}
	res := trailer()
	if *stats {
		fmt.Printf("keywords: %v\nkeyword nodes: %d\nfragments: %d\nelapsed: %v\n",
			res.Stats.Keywords, res.Stats.KeywordNodes, res.Stats.NumLCAs, res.Stats.Elapsed)
		st := res.Stats.Stages
		fmt.Printf("stages: plan=%v candidates=%v select=%v materialize=%v\n\n",
			st.Plan, st.Candidates, st.Select, st.Materialize)
	}
	if len(frags) == 0 && !res.Truncated {
		fmt.Println("no fragments found")
		return
	}
	for i, f := range frags {
		kind := "LCA"
		if f.IsSLCA {
			kind = "SLCA"
		}
		fmt.Printf("--- fragment %d: root %s (%s) [%s]", i+1, f.Root, f.RootLabel, kind)
		if req.Rank {
			fmt.Printf(" score=%.3f", f.Score)
		}
		if showDoc {
			fmt.Printf(" doc=%s", f.Document)
		}
		fmt.Println()
		switch *format {
		case "xml":
			fmt.Print(f.XML())
		case "snippet":
			fmt.Println(f.Snippet())
		default:
			fmt.Print(f.ASCII())
		}
		fmt.Println()
	}
	if res.Truncated {
		fmt.Println("TRUNCATED: the deadline expired before the page finished")
	}
	if res.Cursor != "" {
		fmt.Printf("more results: rerun with -cursor %s\n", res.Cursor)
	}
}

// streamOut emits the same NDJSON wire shapes the HTTP stream=1 endpoint
// serves (httpapi.Fragment lines, one httpapi.StreamTrailer record), so
// consumers parse one format regardless of transport.
func streamOut(seq iter.Seq2[xks.CorpusFragment, error], trailer func() *xks.Results) {
	enc := json.NewEncoder(os.Stdout)
	for f, err := range seq {
		if err != nil {
			fatal(err)
		}
		enc.Encode(httpapi.ToFragment(f, false))
	}
	enc.Encode(httpapi.ToStreamTrailer(trailer()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xksearch:", err)
	os.Exit(1)
}
