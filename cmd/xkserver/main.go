// Command xkserver serves keyword search over an XML document or a
// shredded store as a small JSON HTTP API (see internal/httpapi).
//
// Usage:
//
//	xkserver -file doc.xml -addr :8080
//	xkserver -store doc.xks -addr :8080
//
// Endpoints:
//
//	GET /search?q=keyword+query[&algo=validrtf|maxmatch|raw][&slca=1]
//	           [&rank=1][&limit=N][&snippets=1]
//	GET /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"xks"
	"xks/internal/httpapi"
)

func main() {
	var (
		file   = flag.String("file", "", "XML document to serve")
		storeF = flag.String("store", "", "shredded store file to serve")
		addr   = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *file == "" && *storeF == "" {
		fmt.Fprintln(os.Stderr, "usage: xkserver -file doc.xml | -store doc.xks [-addr :8080]")
		os.Exit(2)
	}
	var (
		engine *xks.Engine
		err    error
	)
	if *storeF != "" {
		engine, err = xks.OpenStore(*storeF)
	} else {
		engine, err = xks.LoadFile(*file)
	}
	if err != nil {
		log.Fatalf("xkserver: %v", err)
	}
	log.Printf("loaded: %d distinct words indexed", engine.Index().NumWords())
	log.Printf("listening on %s", *addr)
	logger := log.New(os.Stderr, "xkserver: ", log.LstdFlags)
	log.Fatal(http.ListenAndServe(*addr, httpapi.NewHandler(engine, logger)))
}
