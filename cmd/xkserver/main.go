// Command xkserver serves keyword search over an XML document, a shredded
// store, or a whole directory of XML files as a JSON HTTP API backed by
// the serving layer (internal/service): a sharded LRU query cache with
// generation-based invalidation, singleflight collapsing of concurrent
// identical queries, and live server metrics. Directory corpora execute
// queries through the staged pipeline (internal/exec) — per-document
// workers produce lightweight candidates that merge through a streaming
// top-K heap, and only the fragments a request returns are assembled.
//
// Usage:
//
//	xkserver -file doc.xml [-addr :8080] [-cache 1024]
//	xkserver -store doc.xks [-addr :8080] [-cache 1024]
//	xkserver -dir corpus/ [-addr :8080] [-cache 1024] [-workers 8]
//
// Every request runs under its own context: a disconnecting client or an
// exceeded timeout= deadline (default and cap: 30s) cancels the pipeline
// mid-stream. limit= pages through large result sets via the opaque
// generation-aware "cursor" token in responses (pass it back as cursor=;
// a cursor invalidated by an append comes back 410 Gone, and the
// deprecated offset=/"next" raw-offset pair keeps working as a shim).
// stream=1 switches /search to NDJSON chunked output — one fragment per
// line as the pipeline materializes it, a trailer record carrying the
// cursor and stats — and budget=best-effort converts a mid-page deadline
// into a truncated 200 instead of a 504.
//
// Endpoints:
//
//	GET /search?q=keyword+query[&doc=name][&algo=validrtf|maxmatch|raw]
//	           [&slca=1][&rank=1][&limit=N][&cursor=tok][&offset=N]
//	           [&timeout=dur][&budget=best-effort][&snippets=1][&stream=1]
//	GET /documents
//	GET /stats
//	GET /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"xks"
	"xks/internal/httpapi"
	"xks/internal/service"
)

func main() {
	var (
		file      = flag.String("file", "", "XML document to serve")
		storeF    = flag.String("store", "", "shredded store file to serve")
		dir       = flag.String("dir", "", "directory of *.xml files to serve as one corpus")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", 1024, "query result cache entries (0 disables caching)")
		workers   = flag.Int("workers", 0, "corpus search fan-out workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	sources := 0
	for _, s := range []string{*file, *storeF, *dir} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "usage: xkserver -file doc.xml | -store doc.xks | -dir corpus/ [-addr :8080] [-cache N] [-workers N]")
		os.Exit(2)
	}

	var searcher service.Searcher
	switch {
	case *dir != "":
		c, err := xks.LoadDir(*dir)
		if err != nil {
			log.Fatalf("xkserver: %v", err)
		}
		c.Workers = *workers
		searcher = c
		log.Printf("loaded corpus: %d documents from %s", c.Len(), *dir)
	case *storeF != "":
		engine, err := xks.OpenStore(*storeF)
		if err != nil {
			log.Fatalf("xkserver: %v", err)
		}
		searcher = service.SingleDoc{Name: filepath.Base(*storeF), Engine: engine}
		log.Printf("loaded store: %d distinct words indexed", engine.Index().NumWords())
	default:
		engine, err := xks.LoadFile(*file)
		if err != nil {
			log.Fatalf("xkserver: %v", err)
		}
		searcher = service.SingleDoc{Name: filepath.Base(*file), Engine: engine}
		log.Printf("loaded document: %d distinct words indexed", engine.Index().NumWords())
	}

	svc := service.New(searcher, service.Config{CacheSize: *cacheSize})
	if *cacheSize > 0 {
		log.Printf("query cache: %d entries", *cacheSize)
	} else {
		log.Printf("query cache: disabled")
	}
	log.Printf("listening on %s", *addr)
	logger := log.New(os.Stderr, "xkserver: ", log.LstdFlags)
	log.Fatal(http.ListenAndServe(*addr, httpapi.NewHandler(svc, logger)))
}
