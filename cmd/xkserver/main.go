// Command xkserver serves keyword search over an XML document, a shredded
// store, or a whole directory of XML files as a JSON HTTP API backed by
// the serving layer (internal/service): a sharded LRU query cache with
// generation-based invalidation, singleflight collapsing of concurrent
// identical queries, and live server metrics. Directory corpora execute
// queries through the staged pipeline (internal/exec) — per-document
// workers produce lightweight candidates that merge through a streaming
// top-K heap, and only the fragments a request returns are assembled.
//
// Usage:
//
//	xkserver -file doc.xml [-addr :8080] [-cache 1024]
//	xkserver -store doc.xks [-mmap auto|on|off] [-addr :8080] [-cache 1024]
//	xkserver -dir corpus/ [-addr :8080] [-cache 1024] [-workers 8]
//
// With -store, a format-v3 file is mapped read-only by default (-mmap
// auto): the posting payloads stay on disk and page in on demand, so cold
// open is near zero-parse. -mmap off copies the file onto the heap; -mmap
// on fails instead of falling back where mapping is unsupported. The open
// time and byte split are logged at startup and exported on /metrics as
// xks_store_open_seconds / xks_store_mapped_bytes / xks_store_heap_bytes.
//
// Every request runs under its own context: a disconnecting client or an
// exceeded timeout= deadline (default and cap: 30s) cancels the pipeline
// mid-stream. limit= pages through large result sets via the opaque
// generation-aware "cursor" token in responses (pass it back as cursor=;
// a cursor invalidated by an append comes back 410 Gone, and the
// deprecated offset=/"next" raw-offset pair keeps working as a shim).
// stream=1 switches /search to NDJSON chunked output — one fragment per
// line as the pipeline materializes it, a trailer record carrying the
// cursor and stats — and budget=best-effort converts a mid-page deadline
// into a truncated 200 instead of a 504.
//
// Observability: explain=1 on /search returns the per-stage trace span
// tree, GET /metrics serves Prometheus text exposition, and every request
// logs one structured (JSON) access line with its X-Request-Id.
// -slow-query logs the full explain tree of searches slower than the
// threshold; -debug-addr serves net/http/pprof on a separate listener.
//
// Shutdown: SIGINT/SIGTERM stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
//
// Endpoints:
//
//	GET /search?q=keyword+query[&doc=name][&algo=validrtf|maxmatch|raw]
//	           [&slca=1][&rank=1][&limit=N][&cursor=tok][&offset=N]
//	           [&timeout=dur][&budget=best-effort][&snippets=1][&stream=1]
//	           [&explain=1]
//	GET /documents
//	GET /stats
//	GET /metrics
//	GET /healthz
//	POST /append   (with -allow-writes)
//	POST /compact  (with -allow-writes)
//
// Writes: -allow-writes exposes POST /append (land an XML snippet in a
// document's write-side delta index; outstanding cursors and cached pages
// keep working, pinned to the snapshot they were issued at) and POST
// /compact (fold delta segments into the base). -compact-interval runs
// that fold on a background ticker so a write-heavy server never
// accumulates unbounded segments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"xks"
	"xks/internal/admission"
	"xks/internal/httpapi"
	"xks/internal/service"
)

func main() {
	var (
		file      = flag.String("file", "", "XML document to serve")
		storeF    = flag.String("store", "", "shredded store file to serve")
		dir       = flag.String("dir", "", "directory of *.xml files to serve as one corpus")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", 1024, "query result cache entries (0 disables caching)")
		workers   = flag.Int("workers", 0, "corpus search fan-out workers (0 = GOMAXPROCS)")
		slowQuery = flag.Duration("slow-query", 0, "log the explain trace of searches at least this slow (0 disables)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		maxInFl   = flag.Int("max-inflight", 256, "concurrently executing searches before requests queue")
		queue     = flag.Int("queue", 1024, "searches waiting for a slot before requests shed with 429 (-1 disables queueing)")
		mmapMode  = flag.String("mmap", "auto", "store-file backing with -store: auto (mmap when possible), on (require mmap), off (heap)")
		allowWr   = flag.Bool("allow-writes", false, "expose POST /append and /compact")
		compactIv = flag.Duration("compact-interval", 0, "fold delta segments into the base on this interval (0 disables; needs -allow-writes)")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	sources := 0
	for _, s := range []string{*file, *storeF, *dir} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "usage: xkserver -file doc.xml | -store doc.xks | -dir corpus/ [-addr :8080] [-cache N] [-workers N]")
		os.Exit(2)
	}

	fatal := func(err error) {
		logger.Error("xkserver: fatal", slog.String("error", err.Error()))
		os.Exit(1)
	}

	var searcher service.Searcher
	var openInfo *service.StoreOpenInfo
	switch {
	case *dir != "":
		c, err := xks.LoadDir(*dir)
		if err != nil {
			fatal(err)
		}
		c.Workers = *workers
		searcher = c
		logger.Info("loaded corpus", slog.Int("documents", c.Len()), slog.String("dir", *dir))
	case *storeF != "":
		var mode xks.StoreMode
		switch *mmapMode {
		case "auto":
			mode = xks.StoreAuto
		case "on":
			mode = xks.StoreMmap
		case "off":
			mode = xks.StoreHeap
		default:
			fatal(fmt.Errorf("invalid -mmap mode %q (want auto, on or off)", *mmapMode))
		}
		start := time.Now()
		engine, err := xks.OpenStoreMode(*storeF, mode)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		info := engine.StoreInfo()
		openInfo = &service.StoreOpenInfo{
			Seconds:     elapsed.Seconds(),
			Mode:        info.Mode,
			MappedBytes: info.MappedBytes,
			HeapBytes:   info.FileBytes - info.MappedBytes,
		}
		searcher = service.SingleDoc{Name: filepath.Base(*storeF), Engine: engine}
		logger.Info("loaded store",
			slog.Int("words", engine.Index().NumWords()),
			slog.String("mode", info.Mode),
			slog.Duration("openTime", elapsed),
			slog.Int64("mappedBytes", info.MappedBytes),
			slog.Int64("fileBytes", info.FileBytes))
	default:
		engine, err := xks.LoadFile(*file)
		if err != nil {
			fatal(err)
		}
		searcher = service.SingleDoc{Name: filepath.Base(*file), Engine: engine}
		logger.Info("loaded document", slog.Int("words", engine.Index().NumWords()))
	}

	svc := service.New(searcher, service.Config{CacheSize: *cacheSize})
	logger.Info("query cache", slog.Int("entries", *cacheSize))
	if openInfo != nil {
		svc.Metrics().SetStoreOpen(*openInfo)
	}

	if *debugAddr != "" {
		// pprof stays off the main listener so profiling endpoints are
		// never exposed wherever the API is.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", slog.String("addr", *debugAddr))
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("pprof server failed", slog.String("error", err.Error()))
			}
		}()
	}

	adm := admission.New(admission.Config{MaxInFlight: *maxInFl, MaxQueue: *queue})
	logger.Info("admission", slog.Int("maxInflight", *maxInFl), slog.Int("queue", *queue))

	srv := &http.Server{
		Addr: *addr,
		Handler: httpapi.NewHandler(svc, &httpapi.Options{
			Logger: logger, SlowQuery: *slowQuery, Admission: adm, AllowWrites: *allowWr,
		}),
	}
	if *allowWr {
		logger.Info("writes enabled", slog.Duration("compactInterval", *compactIv))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *allowWr && *compactIv > 0 {
		// Background compactor: fold accumulated delta segments on a fixed
		// cadence. Readers never notice — version tokens are unchanged by a
		// fold — so there is no coordination beyond the engines' own locks.
		go func() {
			tick := time.NewTicker(*compactIv)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					folded, err := svc.Compact(ctx)
					if err != nil {
						logger.Error("compaction failed", slog.String("error", err.Error()))
						continue
					}
					if folded > 0 {
						logger.Info("compacted", slog.Int("segmentsFolded", folded))
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", *addr))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately

	// Bounded drain: flip the front door shut first — new searches on live
	// keep-alive connections answer 503 + Connection: close and /healthz
	// turns unhealthy — then stop accepting and let in-flight and queued
	// requests (including NDJSON streams) finish before cutting the rest.
	adm.Drain()
	logger.Info("shutting down", slog.Duration("drain", *drain))
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", slog.String("error", err.Error()))
		os.Exit(1)
	}
	logger.Info("stopped")
}
