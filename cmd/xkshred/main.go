// Command xkshred shreds an XML document into the three-table binary store
// (the embedded substitute for the paper's PostgreSQL layout) or inspects
// an existing store file.
//
// Usage:
//
//	xkshred -in doc.xml -out doc.xks        # shred and persist
//	xkshred -inspect doc.xks                # table statistics
//	xkshred -inspect doc.xks -keyword xml   # posting list lookup
package main

import (
	"flag"
	"fmt"
	"os"

	"xks/internal/analysis"
	"xks/internal/store"
	"xks/internal/xmltree"
)

func main() {
	var (
		in      = flag.String("in", "", "XML document to shred")
		out     = flag.String("out", "", "store file to write")
		inspect = flag.String("inspect", "", "store file to inspect")
		keyword = flag.String("keyword", "", "with -inspect: print the posting list of this keyword")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		s, err := store.LoadFile(*inspect)
		if err != nil {
			fatal(err)
		}
		if *keyword != "" {
			posts := s.Postings(*keyword)
			fmt.Printf("keyword %q: %d nodes\n", *keyword, len(posts))
			for _, c := range posts {
				fmt.Printf("  %s (%s)\n", c, s.LabelOf(c))
			}
			return
		}
		fmt.Printf("element rows: %d\nlabel rows:   %d\nvalue rows:   %d\ndistinct keywords: %d\n",
			s.NumNodes(), s.NumLabels(), s.NumValues(), len(s.Keywords()))
	case *in != "" && *out != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		tree, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		s := store.Shred(tree, analysis.New())
		if err := s.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("shredded %d nodes into %s (%d value rows, %d labels)\n",
			s.NumNodes(), *out, s.NumValues(), s.NumLabels())
	default:
		fmt.Fprintln(os.Stderr, "usage: xkshred -in doc.xml -out doc.xks | xkshred -inspect doc.xks [-keyword w]")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xkshred:", err)
	os.Exit(1)
}
