package xks

import (
	"errors"
	"time"

	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/metrics"
	"xks/internal/prune"
	"xks/internal/rtf"
)

// Comparison is the outcome of running ValidRTF and the revised MaxMatch on
// the same query, with the §5.1 effectiveness ratios.
type Comparison struct {
	Query string
	// NumRTFs is the number of interesting LCA fragments (|A|).
	NumRTFs int
	// ValidElapsed and MaxElapsed time the two pipelines end to end
	// (LCA computation + RTF construction + pruning), mirroring Figure 5.
	ValidElapsed time.Duration
	MaxElapsed   time.Duration
	// Ratios holds CFR / APR / APR' / Max APR, mirroring Figure 6.
	Ratios metrics.Ratios
}

// Compare runs both pruning mechanisms over the same fragments and derives
// the paper's effectiveness ratios. Semantics follows opts.Semantics;
// opts.Algorithm is ignored.
func (e *Engine) Compare(queryText string, opts Options) (*Comparison, error) {
	cmp := &Comparison{Query: queryText}
	_, _, sets, err := e.resolveSets(queryText)
	if err != nil {
		var nm *index.ErrNoMatch
		if errors.As(err, &nm) {
			cmp.Ratios.CFR = 1
			return cmp, nil
		}
		return nil, err
	}
	pruneOpts := prune.Options{ExactContent: opts.ExactContent}

	// Timed ValidRTF pipeline.
	startValid := time.Now()
	roots := e.rootsFor(sets, opts)
	rtfs := rtf.Build(roots, sets)
	validResults := make([]*prune.Result, len(rtfs))
	frags := make([]*prune.Fragment, len(rtfs))
	for i, r := range rtfs {
		frags[i] = prune.BuildFragment(r, e.labelOf, e.contentOf, pruneOpts)
		validResults[i] = frags[i].Prune(prune.ValidContributor, pruneOpts)
	}
	cmp.ValidElapsed = time.Since(startValid)

	// Timed MaxMatch pipeline (recomputing LCA+RTF+construction so both
	// sides pay the same shared costs, as the paper's implementations do).
	startMax := time.Now()
	rootsM := e.rootsFor(sets, opts)
	rtfsM := rtf.Build(rootsM, sets)
	maxResults := make([]*prune.Result, len(rtfsM))
	for i, r := range rtfsM {
		f := prune.BuildFragment(r, e.labelOf, e.contentOf, pruneOpts)
		maxResults[i] = f.Prune(prune.Contributor, pruneOpts)
	}
	cmp.MaxElapsed = time.Since(startMax)

	cmp.NumRTFs = len(rtfs)
	pairs := make([]metrics.FragmentPair, len(rtfs))
	for i := range rtfs {
		pairs[i] = metrics.FragmentPair{
			Root:  rtfs[i].Root,
			Valid: validResults[i].KeepSet(),
			Max:   maxResults[i].KeepSet(),
		}
	}
	cmp.Ratios = metrics.Compute(pairs)
	return cmp, nil
}

func (e *Engine) rootsFor(sets [][]dewey.Code, opts Options) []dewey.Code {
	if opts.Semantics == SLCAOnly {
		return lca.SLCA(sets)
	}
	return lca.ELCAStackMerge(sets)
}
