package xks

import (
	"context"
	"errors"
	"time"

	"xks/internal/exec"
	"xks/internal/index"
	"xks/internal/metrics"
	"xks/internal/prune"
)

// Comparison is the outcome of running ValidRTF and the revised MaxMatch on
// the same query, with the §5.1 effectiveness ratios.
type Comparison struct {
	Query string
	// NumRTFs is the number of interesting LCA fragments (|A|).
	NumRTFs int
	// ValidElapsed and MaxElapsed time the two pipelines end to end
	// (LCA computation + RTF construction + pruning), mirroring Figure 5.
	ValidElapsed time.Duration
	MaxElapsed   time.Duration
	// Ratios holds CFR / APR / APR' / Max APR, mirroring Figure 6.
	Ratios metrics.Ratios
}

// Compare runs both pruning mechanisms over the same fragments and derives
// the paper's effectiveness ratios. Semantics follows req.Semantics;
// req.Algorithm (and the pagination window) are ignored. It drives the
// staged pipeline with every candidate selected and materialized twice —
// once per pruning mode — so both sides pay the same shared candidate-stage
// costs, as the paper's implementations do. ctx cancellation (and
// req.Timeout) aborts either pipeline between candidates with ctx.Err().
func (e *Engine) Compare(ctx context.Context, req Request) (*Comparison, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := req.applyTimeout(ctx)
	defer cancel()

	// One pinned snapshot serves both timed pipelines, so they compare the
	// same state even under concurrent appends.
	v := e.currentView()
	defer v.release()

	cmp := &Comparison{Query: req.Query}
	p, err := e.planAt(v, req.Query)
	if err != nil {
		var nm *index.ErrNoMatch
		if errors.As(err, &nm) {
			cmp.Ratios.CFR = 1
			return cmp, nil
		}
		return nil, err
	}
	params := e.paramsAt(v, req)
	params.Limit, params.Offset = 0, 0 // the ratios need every fragment

	// Timed ValidRTF pipeline.
	startValid := time.Now()
	cands, err := exec.Candidates(ctx, p, params, 0)
	if err != nil {
		return nil, err
	}
	validResults := make([]*prune.Result, len(cands))
	params.Mode = prune.ValidContributor
	for i, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		validResults[i] = exec.Materialize(c, params)
	}
	cmp.ValidElapsed = time.Since(startValid)

	// Timed MaxMatch pipeline (recomputing the candidate stage so both
	// sides are measured end to end).
	startMax := time.Now()
	candsM, err := exec.Candidates(ctx, p, params, 0)
	if err != nil {
		return nil, err
	}
	maxResults := make([]*prune.Result, len(candsM))
	params.Mode = prune.Contributor
	for i, c := range candsM {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		maxResults[i] = exec.Materialize(c, params)
	}
	cmp.MaxElapsed = time.Since(startMax)

	cmp.NumRTFs = len(cands)
	pairs := make([]metrics.FragmentPair, len(cands))
	for i := range cands {
		pairs[i] = metrics.FragmentPair{
			Root:  params.Tab.Code(cands[i].RTF.Root),
			Valid: validResults[i].Kept,
			Max:   maxResults[i].Kept,
		}
	}
	cmp.Ratios = metrics.Compute(pairs)
	return cmp, nil
}
