package xks

import (
	"errors"
	"time"

	"xks/internal/exec"
	"xks/internal/index"
	"xks/internal/metrics"
	"xks/internal/prune"
)

// Comparison is the outcome of running ValidRTF and the revised MaxMatch on
// the same query, with the §5.1 effectiveness ratios.
type Comparison struct {
	Query string
	// NumRTFs is the number of interesting LCA fragments (|A|).
	NumRTFs int
	// ValidElapsed and MaxElapsed time the two pipelines end to end
	// (LCA computation + RTF construction + pruning), mirroring Figure 5.
	ValidElapsed time.Duration
	MaxElapsed   time.Duration
	// Ratios holds CFR / APR / APR' / Max APR, mirroring Figure 6.
	Ratios metrics.Ratios
}

// Compare runs both pruning mechanisms over the same fragments and derives
// the paper's effectiveness ratios. Semantics follows opts.Semantics;
// opts.Algorithm is ignored. It drives the staged pipeline with every
// candidate selected and materialized twice — once per pruning mode — so
// both sides pay the same shared candidate-stage costs, as the paper's
// implementations do.
func (e *Engine) Compare(queryText string, opts Options) (*Comparison, error) {
	cmp := &Comparison{Query: queryText}
	p, err := e.plan(queryText)
	if err != nil {
		var nm *index.ErrNoMatch
		if errors.As(err, &nm) {
			cmp.Ratios.CFR = 1
			return cmp, nil
		}
		return nil, err
	}
	params := e.params(opts)

	// Timed ValidRTF pipeline.
	startValid := time.Now()
	cands := exec.Candidates(p, params, 0)
	validResults := make([]*prune.Result, len(cands))
	params.Mode = prune.ValidContributor
	for i, c := range cands {
		validResults[i] = exec.Materialize(c, params)
	}
	cmp.ValidElapsed = time.Since(startValid)

	// Timed MaxMatch pipeline (recomputing the candidate stage so both
	// sides are measured end to end).
	startMax := time.Now()
	candsM := exec.Candidates(p, params, 0)
	maxResults := make([]*prune.Result, len(candsM))
	params.Mode = prune.Contributor
	for i, c := range candsM {
		maxResults[i] = exec.Materialize(c, params)
	}
	cmp.MaxElapsed = time.Since(startMax)

	cmp.NumRTFs = len(cands)
	pairs := make([]metrics.FragmentPair, len(cands))
	for i := range cands {
		pairs[i] = metrics.FragmentPair{
			Root:  params.Tab.Code(cands[i].RTF.Root),
			Valid: validResults[i].Kept,
			Max:   maxResults[i].Kept,
		}
	}
	cmp.Ratios = metrics.Compute(pairs)
	return cmp, nil
}
