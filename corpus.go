package xks

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xks/internal/concurrent"
)

// Corpus searches a collection of XML documents — the digital-library
// setting the paper's introduction motivates — by fanning a query out to
// per-document engines concurrently and merging the fragments.
type Corpus struct {
	names   []string
	engines map[string]*Engine
	// Workers bounds the per-search concurrency (0 = GOMAXPROCS).
	Workers int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{engines: map[string]*Engine{}}
}

// Add registers a document engine under a name. Adding a name twice
// replaces the previous engine.
func (c *Corpus) Add(name string, e *Engine) {
	if _, dup := c.engines[name]; !dup {
		c.names = append(c.names, name)
	}
	c.engines[name] = e
}

// AddFile loads one XML file under its base name.
func (c *Corpus) AddFile(path string) error {
	e, err := LoadFile(path)
	if err != nil {
		return err
	}
	c.Add(filepath.Base(path), e)
	return nil
}

// LoadDir builds a corpus from every *.xml file in a directory.
func LoadDir(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCorpus()
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".xml") {
			continue
		}
		if err := c.AddFile(filepath.Join(dir, ent.Name())); err != nil {
			return nil, fmt.Errorf("xks: loading %s: %w", ent.Name(), err)
		}
	}
	if len(c.names) == 0 {
		return nil, fmt.Errorf("xks: no .xml files in %s", dir)
	}
	return c, nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.names) }

// Names returns the document names in insertion order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Engine returns the engine registered under name, or nil.
func (c *Corpus) Engine(name string) *Engine { return c.engines[name] }

// CorpusFragment tags a fragment with its source document.
type CorpusFragment struct {
	Document string
	*Fragment
}

// CorpusResult is the merged outcome of a corpus search.
type CorpusResult struct {
	Query     string
	Fragments []CorpusFragment
	// PerDocument counts fragments per document (documents with zero
	// matches included).
	PerDocument map[string]int
}

// Search fans the query out to every document and merges the fragments.
// With opts.Rank set, fragments are ordered by descending score across
// documents; otherwise they follow document insertion order. opts.Limit
// applies to the merged list. A keyword missing from one document simply
// yields no fragments there; the query fails only if it is unsearchable
// (e.g. all stop words).
func (c *Corpus) Search(query string, opts Options) (*CorpusResult, error) {
	perDocLimit := opts.Limit // applied after merging; keep per-doc searches complete
	docOpts := opts
	docOpts.Limit = 0

	type docOut struct {
		name string
		res  *Result
	}
	outs, err := concurrent.Map(c.names, c.Workers, func(name string) (docOut, error) {
		res, err := c.engines[name].Search(query, docOpts)
		if err != nil {
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, err)
		}
		return docOut{name: name, res: res}, nil
	})
	if err != nil {
		return nil, err
	}

	merged := &CorpusResult{Query: query, PerDocument: map[string]int{}}
	for _, o := range outs {
		merged.PerDocument[o.name] = len(o.res.Fragments)
		for _, f := range o.res.Fragments {
			merged.Fragments = append(merged.Fragments, CorpusFragment{Document: o.name, Fragment: f})
		}
	}
	if opts.Rank {
		sort.SliceStable(merged.Fragments, func(i, j int) bool {
			return merged.Fragments[i].Score > merged.Fragments[j].Score
		})
	}
	if perDocLimit > 0 && len(merged.Fragments) > perDocLimit {
		merged.Fragments = merged.Fragments[:perDocLimit]
	}
	return merged, nil
}
