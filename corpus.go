package xks

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"xks/internal/concurrent"
	"xks/internal/exec"
)

// ErrUnknownDocument is wrapped by document-filtered searches when the
// named document is not in the corpus; match it with errors.Is.
var ErrUnknownDocument = errors.New("unknown document")

// Corpus searches a collection of XML documents — the digital-library
// setting the paper's introduction motivates — by fanning a query out to
// per-document engines concurrently and merging the fragments.
type Corpus struct {
	names   []string
	engines map[string]*Engine
	// Workers bounds the per-search concurrency (0 = GOMAXPROCS).
	Workers int
	// structGen counts structural mutations (Add calls); see Generation.
	structGen atomic.Uint64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{engines: map[string]*Engine{}}
}

// Add registers a document engine under a name. Adding a name twice
// replaces the previous engine (keeping its insertion-order position).
// Add must not run concurrently with Search.
func (c *Corpus) Add(name string, e *Engine) {
	bump := uint64(1)
	if old, dup := c.engines[name]; !dup {
		c.names = append(c.names, name)
	} else {
		// The replaced engine's generation leaves the Generation sum;
		// absorb it into structGen so the total never revisits a value
		// (a repeat would let caches serve the replaced document).
		bump += old.Generation()
	}
	c.engines[name] = e
	c.structGen.Add(bump)
}

// AddFile loads one XML file under its base name.
func (c *Corpus) AddFile(path string) error {
	e, err := LoadFile(path)
	if err != nil {
		return err
	}
	c.Add(filepath.Base(path), e)
	return nil
}

// LoadDir builds a corpus from every *.xml file in a directory.
func LoadDir(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCorpus()
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".xml") {
			continue
		}
		if err := c.AddFile(filepath.Join(dir, ent.Name())); err != nil {
			return nil, fmt.Errorf("xks: loading %s: %w", ent.Name(), err)
		}
	}
	if len(c.names) == 0 {
		return nil, fmt.Errorf("xks: no .xml files in %s", dir)
	}
	return c, nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.names) }

// Names returns the document names in insertion order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Engine returns the engine registered under name, or nil.
func (c *Corpus) Engine(name string) *Engine { return c.engines[name] }

// DocumentInfo summarizes one corpus document for listings.
type DocumentInfo struct {
	Name  string `json:"name"`
	Words int    `json:"words"` // distinct indexed words
	Nodes int    `json:"nodes"` // indexed element nodes
}

// Documents lists the corpus documents, in insertion order, with index
// size summaries.
func (c *Corpus) Documents() []DocumentInfo {
	out := make([]DocumentInfo, 0, len(c.names))
	for _, n := range c.names {
		ix := c.engines[n].Index()
		out = append(out, DocumentInfo{Name: n, Words: ix.NumWords(), Nodes: ix.NumNodes()})
	}
	return out
}

// Generation reports the corpus mutation generation: the sum of every
// engine's generation plus one increment per Add. It changes whenever a
// document is added, replaced, or appended to, so caching layers can tag
// entries with it and detect staleness.
func (c *Corpus) Generation() uint64 {
	g := c.structGen.Load()
	for _, e := range c.engines {
		g += e.Generation()
	}
	return g
}

// CorpusFragment tags a fragment with its source document.
type CorpusFragment struct {
	Document string
	*Fragment
}

// CorpusResult is the merged outcome of a corpus search.
type CorpusResult struct {
	Query     string
	Fragments []CorpusFragment
	// PerDocument counts fragments per document (documents with zero
	// matches included).
	PerDocument map[string]int
	// Stats aggregates the per-document searches: Keywords are the
	// normalized query terms, KeywordNodes and NumLCAs sum over documents,
	// and Elapsed is the wall-clock time of the whole fan-out.
	Stats Stats
	// NextOffset is the Request.Offset of the next page when the merged
	// result set extends past this one, and -1 when it is exhausted.
	NextOffset int
}

// AsCorpus wraps a single-document result in the corpus result shape,
// tagging every fragment with doc.
func (r *Result) AsCorpus(doc string) *CorpusResult {
	out := &CorpusResult{
		Query:       r.Query,
		Stats:       r.Stats,
		PerDocument: map[string]int{doc: len(r.Fragments)},
		NextOffset:  r.NextOffset,
	}
	for _, f := range r.Fragments {
		out.Fragments = append(out.Fragments, CorpusFragment{Document: doc, Fragment: f})
	}
	return out
}

// Search fans the query out to every document and merges the results.
// With req.Rank set, fragments are ordered by descending score across
// documents; otherwise the merged list deterministically follows document
// insertion order (and document order within each document). req.Limit and
// req.Offset page the merged list; NextOffset reports where the following
// page starts. When req.Document is set, the search covers that document
// alone (equivalent to SearchDocument). A keyword missing from one document
// simply yields no fragments there; the query fails only if it is
// unsearchable (e.g. all stop words).
//
// Execution is staged (internal/exec): per-document workers run only the
// cheap plan and candidate stages; candidates stream into a shared merge —
// a bounded top-K heap when ranking with a limit — and fragments are
// materialized only for the merged selection. A ranked search over N
// documents with Limit=10 assembles exactly 10 fragments. Ordering is
// deterministic regardless of worker interleaving: the ranked order is a
// strict total order (score, then document insertion order, then document
// order), matching a stable score sort of the eagerly merged lists.
//
// ctx cancellation (and req.Timeout) stops the fan-out: no further
// documents are dispatched, in-flight candidate stages abandon their merge
// loops mid-stream, every worker goroutine is joined, and Search returns
// ctx.Err().
func (c *Corpus) Search(ctx context.Context, req Request) (*CorpusResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req = req.clampPaging()
	if req.Document != "" {
		return c.SearchDocument(ctx, req.Document, req)
	}
	ctx, cancel := req.applyTimeout(ctx)
	defer cancel()

	mergedLimit := req.Limit // applied to the merged selection; per-doc stages stay complete
	docReq := req
	docReq.Limit, docReq.Offset = 0, 0
	docReq.Timeout = 0 // already applied to ctx

	start := time.Now()
	type docOut struct {
		name   string
		eng    *Engine
		plan   exec.Plan
		params exec.Params
		// cands is nil in the streamed top-K path: candidates live only in
		// the bounded heap, so memory stays O(K), not O(total candidates).
		cands []*exec.Candidate
		// n is the candidate count (PerDocument / NumLCAs aggregation).
		n int
	}
	// Streaming merge: with Rank and a limit, workers offer candidates into
	// the shared bounded heap as each document's candidate stage finishes;
	// everything that falls off the heap is never materialized. The heap
	// holds the whole pagination window so the page can start at Offset; a
	// window so large it overflows int can never be reached, so that shape
	// falls through to the full-sort path (which pages safely).
	var topk *exec.TopK
	if req.Rank && mergedLimit > 0 {
		if window := req.Offset + mergedLimit; window > 0 {
			topk = exec.NewTopK(window)
		}
	}
	docIdx := make([]int, len(c.names))
	for i := range docIdx {
		docIdx[i] = i
	}
	outs, err := concurrent.MapCtx(ctx, docIdx, c.Workers, func(i int) (docOut, error) {
		name := c.names[i]
		eng := c.engines[name]
		p, cands, err := eng.searchCandidates(ctx, docReq, i)
		if err != nil {
			if ctx.Err() != nil {
				return docOut{}, err // the shared context failed; no document to blame
			}
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, err)
		}
		out := docOut{name: name, eng: eng, plan: p, params: eng.params(docReq), n: len(cands)}
		if topk != nil {
			topk.Offer(cands...)
		} else {
			out.cands = cands
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	merged := &CorpusResult{Query: req.Query, PerDocument: map[string]int{}, NextOffset: -1}
	// concurrent.MapCtx returns results in job order, so ranging over outs
	// aggregates in document insertion order regardless of which worker
	// finished first.
	for i, o := range outs {
		if i == 0 {
			merged.Stats.Keywords = o.plan.Keywords
		}
		merged.Stats.KeywordNodes += o.plan.KeywordNodes()
		merged.Stats.NumLCAs += o.n
		merged.PerDocument[o.name] = o.n
	}

	// Select across documents. Candidates are cheap handles; nothing has
	// been pruned or assembled yet. The streamed heap already holds the
	// ranked pagination window; the remaining shapes run the same Select
	// the single-document path uses, over the document-order concatenation.
	var selected []*exec.Candidate
	if topk != nil {
		selected = exec.Page(topk.Ranked(), req.Offset, mergedLimit)
	} else {
		var all []*exec.Candidate
		for _, o := range outs {
			all = append(all, o.cands...)
		}
		selected = exec.Select(all, exec.Params{Rank: req.Rank, Limit: mergedLimit, Offset: req.Offset})
	}

	// Materialize only the selection, fanned out across the same worker
	// budget (engines are immutable and concurrency-safe; job order keeps
	// the merged order deterministic).
	frags, err := concurrent.MapCtx(ctx, selected, c.Workers, func(cand *exec.Candidate) (CorpusFragment, error) {
		o := outs[cand.Doc]
		f := o.eng.materialize(cand, o.plan, o.params)
		return CorpusFragment{Document: o.name, Fragment: f}, nil
	})
	if err != nil {
		return nil, err
	}
	if len(frags) > 0 {
		merged.Fragments = frags
	}
	if n := req.Offset + len(frags); len(frags) > 0 && n < merged.Stats.NumLCAs {
		merged.NextOffset = n
	}
	merged.Stats.Elapsed = time.Since(start)
	return merged, nil
}

// SearchDocument searches a single named document of the corpus, returning
// the result in the corpus shape; req.Document is ignored in favor of name.
// The error wraps ErrUnknownDocument when name is not in the corpus.
func (c *Corpus) SearchDocument(ctx context.Context, name string, req Request) (*CorpusResult, error) {
	e := c.engines[name]
	if e == nil {
		return nil, fmt.Errorf("xks: %w: %q", ErrUnknownDocument, name)
	}
	res, err := e.Search(ctx, req)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, err // the caller's context failed; no document to blame
		}
		return nil, fmt.Errorf("xks: document %s: %w", name, err)
	}
	return res.AsCorpus(name), nil
}
