package xks

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"xks/internal/concurrent"
	"xks/internal/exec"
	"xks/internal/fault"
	"xks/internal/planner"
	"xks/internal/query"
	"xks/internal/trace"
)

// ErrUnknownDocument is wrapped by document-filtered searches when the
// named document is not in the corpus; match it with errors.Is.
var ErrUnknownDocument = errors.New("unknown document")

// Corpus searches a collection of XML documents — the digital-library
// setting the paper's introduction motivates — by fanning a query out to
// per-document engines concurrently and merging the fragments.
type Corpus struct {
	names   []string
	engines map[string]*Engine
	// Workers bounds the per-search concurrency (0 = GOMAXPROCS).
	Workers int
	// regIDs gives every registration a unique nonce (regSeq), so a
	// replaced document can never satisfy a snapshot recorded against its
	// predecessor even if the new engine happens to share a version token.
	regIDs map[string]uint64
	regSeq uint64
	// snaps remembers recently served snapshot vectors by hash, letting
	// cursors re-pin the exact per-document versions their page was issued
	// against (see resolveSnapshot).
	snaps snapRegistry
}

// docSnap pins one document inside a corpus snapshot vector: the name, the
// registration nonce (detects replacement), and the engine version token
// the snapshot serves the document at.
type docSnap struct {
	name string
	reg  uint64
	ver  uint64
}

// snapRegistry is a bounded FIFO memory of recently issued snapshot
// vectors, keyed by their hash. Eviction is what finally makes an old
// corpus cursor ErrStaleCursor: until then any append-only mutation leaves
// outstanding cursors resumable.
type snapRegistry struct {
	mu   sync.Mutex
	m    map[uint64][]docSnap
	fifo []uint64
}

// snapRegistryCap bounds remembered snapshot vectors; at a few dozen bytes
// per document entry the registry stays small while outliving any
// plausible scroll.
const snapRegistryCap = 256

func (r *snapRegistry) put(v uint64, vec []docSnap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = map[uint64][]docSnap{}
	}
	if _, ok := r.m[v]; ok {
		return
	}
	r.m[v] = vec
	r.fifo = append(r.fifo, v)
	for len(r.fifo) > snapRegistryCap {
		delete(r.m, r.fifo[0])
		r.fifo = r.fifo[1:]
	}
}

func (r *snapRegistry) get(v uint64) ([]docSnap, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vec, ok := r.m[v]
	return vec, ok
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{engines: map[string]*Engine{}, regIDs: map[string]uint64{}}
}

// Add registers a document engine under a name. Adding a name twice
// replaces the previous engine (keeping its insertion-order position);
// cursors and cached results touching the replaced document go stale,
// while those touching only other documents are unaffected. Add must not
// run concurrently with Search (AppendXML may — it mutates through the
// engine, which is concurrency-safe).
func (c *Corpus) Add(name string, e *Engine) {
	if _, dup := c.engines[name]; !dup {
		c.names = append(c.names, name)
	}
	c.engines[name] = e
	c.regSeq++
	c.regIDs[name] = c.regSeq
}

// AddFile loads one XML file under its base name.
func (c *Corpus) AddFile(path string) error {
	e, err := LoadFile(path)
	if err != nil {
		return err
	}
	c.Add(filepath.Base(path), e)
	return nil
}

// LoadDir builds a corpus from every *.xml file in a directory.
func LoadDir(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCorpus()
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".xml") {
			continue
		}
		if err := c.AddFile(filepath.Join(dir, ent.Name())); err != nil {
			return nil, fmt.Errorf("xks: loading %s: %w", ent.Name(), err)
		}
	}
	if len(c.names) == 0 {
		return nil, fmt.Errorf("xks: no .xml files in %s", dir)
	}
	return c, nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.names) }

// Names returns the document names in insertion order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Engine returns the engine registered under name, or nil.
func (c *Corpus) Engine(name string) *Engine { return c.engines[name] }

// DocumentInfo summarizes one corpus document for listings.
type DocumentInfo struct {
	Name  string `json:"name"`
	Words int    `json:"words"` // distinct indexed words
	Nodes int    `json:"nodes"` // indexed element nodes
}

// Documents lists the corpus documents, in insertion order, with index
// size summaries.
func (c *Corpus) Documents() []DocumentInfo {
	out := make([]DocumentInfo, 0, len(c.names))
	for _, n := range c.names {
		ix := c.engines[n].Index()
		out = append(out, DocumentInfo{Name: n, Words: ix.NumWords(), Nodes: ix.NumNodes()})
	}
	return out
}

// Generation reports the corpus version token: the hash of the current
// snapshot vector (every document's name, registration nonce, and engine
// version, in insertion order). It changes whenever a document is added,
// replaced, appended to, or rebuilt, so caching layers can tag entries
// with it and detect staleness. Compaction does not change it — folding
// delta segments into the base is invisible to readers.
func (c *Corpus) Generation() uint64 {
	return vectorHash(c.currentVector())
}

// VersionFor reports the version token serving layers should tag req's
// cache entry with: the full snapshot-vector hash for corpus-wide
// requests, and a document-scoped hash (name, registration nonce, engine
// version) for document-filtered ones — so appending to document A never
// invalidates cached pages that only touch document B.
func (c *Corpus) VersionFor(req Request) uint64 {
	if req.Document != "" {
		if e := c.engines[req.Document]; e != nil {
			return vectorHash([]docSnap{{name: req.Document, reg: c.regIDs[req.Document], ver: e.Generation()}})
		}
	}
	return c.Generation()
}

// currentVector snapshots the corpus as a vector of per-document pins, in
// insertion order.
func (c *Corpus) currentVector() []docSnap {
	vec := make([]docSnap, len(c.names))
	for i, n := range c.names {
		vec[i] = docSnap{name: n, reg: c.regIDs[n], ver: c.engines[n].Generation()}
	}
	return vec
}

// vectorHash condenses a snapshot vector into the uint64 version token
// cursors and caches carry (FNV-64a over every pin).
func vectorHash(vec []docSnap) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, ds := range vec {
		fmt.Fprintf(h, "%d:%s", len(ds.name), ds.name)
		for _, v := range [2]uint64{ds.reg, ds.ver} {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// resolveSnapshot is the corpus entry point's cursor-and-snapshot
// resolution: it clamps paging, builds the snapshot vector the request
// will serve (all documents, or just req.Document when filtered), records
// it in the registry, and — when the request carries a cursor — re-pins
// the exact vector the cursor's page was issued against. The returned
// request has the cursor folded into Offset; the returned version token is
// what the next page's cursor must be stamped with.
//
// A cursor goes ErrStaleCursor only when its snapshot is unresolvable: the
// registry evicted the entry, a pinned document was replaced or removed,
// or (detected later, in the engine) a renumbering rebuild discarded the
// pinned version. Appends and compactions never stale a cursor.
func (c *Corpus) resolveSnapshot(req Request) (Request, []docSnap, uint64, error) {
	req = req.clampPaging()
	var cur []docSnap
	if req.Document != "" {
		e := c.engines[req.Document]
		if e == nil {
			return req, nil, 0, fmt.Errorf("xks: %w: %q", ErrUnknownDocument, req.Document)
		}
		cur = []docSnap{{name: req.Document, reg: c.regIDs[req.Document], ver: e.Generation()}}
	} else {
		cur = c.currentVector()
	}
	curV := vectorHash(cur)
	c.snaps.put(curV, cur)
	if req.Cursor == "" {
		return req, cur, curV, nil
	}
	st, err := req.Cursor.decode()
	if err != nil {
		return req, nil, 0, err
	}
	if st.fp != req.fingerprint() {
		return req, nil, 0, ErrCursorMismatch
	}
	req.Offset, req.Cursor = st.offset, ""
	if st.gen == curV {
		return req, cur, curV, nil
	}
	vec, ok := c.snaps.get(st.gen)
	if !ok {
		return req, nil, 0, fmt.Errorf("%w: snapshot evicted from the corpus registry", ErrStaleCursor)
	}
	for _, ds := range vec {
		if e := c.engines[ds.name]; e == nil || c.regIDs[ds.name] != ds.reg {
			return req, nil, 0, fmt.Errorf("%w: document %q changed since the cursor was issued", ErrStaleCursor, ds.name)
		}
	}
	return req, vec, st.gen, nil
}

// AppendXML appends a parsed XML snippet under the identified node of the
// named document — the corpus face of Engine.AppendXML. Outstanding
// cursors and cached pages, including corpus-wide ones, keep working: they
// re-pin the snapshot they were issued against.
func (c *Corpus) AppendXML(doc, parentDewey, snippet string) error {
	e := c.engines[doc]
	if e == nil {
		return fmt.Errorf("xks: %w: %q", ErrUnknownDocument, doc)
	}
	if err := e.AppendXML(parentDewey, snippet); err != nil {
		return fmt.Errorf("xks: document %s: %w", doc, err)
	}
	return nil
}

// Compact folds every document's delta segments into its base index,
// returning the total number of segments folded. Version tokens do not
// change, so cursors and cached pages survive.
func (c *Corpus) Compact(ctx context.Context) (int, error) {
	total := 0
	for _, n := range c.names {
		folded, err := c.engines[n].Compact(ctx)
		total += folded
		if err != nil {
			return total, fmt.Errorf("xks: document %s: %w", n, err)
		}
	}
	return total, nil
}

// DeltaInfo sums the per-document delta-index counters (segments,
// postings, pinned snapshots, compactions) across the corpus.
func (c *Corpus) DeltaInfo() DeltaInfo {
	var total DeltaInfo
	for _, n := range c.names {
		di := c.engines[n].DeltaInfo()
		total.Segments += di.Segments
		total.Postings += di.Postings
		total.PinnedSnapshots += di.PinnedSnapshots
		total.Compactions += di.Compactions
		total.CompactionSeconds += di.CompactionSeconds
	}
	return total
}

// ResolveStrategy reports the strategy the planner resolves req to at the
// corpus level: the corpus-wide aggregate of the per-document decisions,
// computed from merged index statistics and summed per-term posting mass.
// Caching layers fold this into their keys so a statistics change that flips
// the plan cannot replay a page cached under a different algorithm. A
// document-filtered request delegates to that document's engine; unparseable
// queries and empty corpora fall back to the requested strategy (such
// requests error or come back empty before any algorithm runs).
func (c *Corpus) ResolveStrategy(req Request) Strategy {
	if req.Document != "" {
		if e := c.engines[req.Document]; e != nil {
			return e.ResolveStrategy(req)
		}
		return req.Strategy
	}
	if len(c.names) == 0 {
		return req.Strategy
	}
	first := c.engines[c.names[0]]
	if req.Strategy != Auto || req.Semantics != SLCAOnly {
		// Fixed strategies and ELCA semantics normalize identically in
		// every document; the first engine's resolution is the corpus's.
		return first.ResolveStrategy(req)
	}
	terms, err := query.Parse(req.Query, first.an)
	if err != nil {
		return req.Strategy
	}
	sizes := make([]int, len(terms))
	var st planner.Stats
	for _, n := range c.names {
		e := c.engines[n]
		v := e.currentView()
		st = planner.Merge(st, v.snap.Stats())
		for i, t := range terms {
			w := t.Keyword
			if w == "" {
				w = e.an.Normalize(t.Label)
			}
			sizes[i] += v.snap.Frequency(w)
		}
		v.release()
	}
	return publicStrategy(planner.Decide(sizes, st, planner.Default).Strategy)
}

// CorpusFragment tags a fragment with its source document.
type CorpusFragment struct {
	Document string
	*Fragment
}

// Results is the result envelope of the streaming API — the merged outcome
// of a corpus search, and the shape every serving layer (internal/service,
// internal/httpapi) passes around. Engine.Search produces the same envelope
// minus the per-document bookkeeping (Result); AsCorpus converts.
type Results struct {
	Query     string
	Fragments []CorpusFragment
	// Cursor is the opaque resume token of the next page when the merged
	// result set extends past this one, and empty when it is exhausted.
	// It is generation-aware: replaying it after an AppendXML or
	// Corpus.Add fails with ErrStaleCursor instead of serving a silently
	// shifted page.
	Cursor Cursor
	// Truncated reports that a BestEffort deadline expired mid-pipeline:
	// Fragments holds everything finished in time, and Cursor resumes
	// from the first fragment that was not.
	Truncated bool
	// Truncation says which stage the deadline expired in when Truncated
	// is set (TruncNone otherwise): TruncCandidates means the candidate
	// fan-out did not finish (Fragments holds a best-effort page salvaged
	// from the documents that completed; the total is unknown and the
	// cursor resumes from the page's own start), TruncMaterialize means a
	// partial page of finished fragments.
	Truncation TruncationReason
	// PerDocument counts fragments per document (documents with zero
	// matches included).
	PerDocument map[string]int
	// Stats aggregates the per-document searches: Keywords are the
	// normalized query terms, KeywordNodes and NumLCAs sum over documents,
	// and Elapsed is the wall-clock time of the whole fan-out.
	Stats Stats
	// NextOffset is the Request.Offset of the next page when the merged
	// result set extends past this one, and -1 when it is exhausted.
	//
	// Deprecated: resume with Cursor, which survives index mutation
	// checks; NextOffset remains as the raw-offset shim.
	NextOffset int
}

// CorpusResult is the pre-streaming name of the result envelope.
//
// Deprecated: use Results.
type CorpusResult = Results

// AsCorpus wraps a single-document result in the corpus result shape,
// tagging every fragment with doc.
func (r *Result) AsCorpus(doc string) *Results {
	out := &Results{
		Query:       r.Query,
		Stats:       r.Stats,
		PerDocument: map[string]int{doc: len(r.Fragments)},
		Cursor:      r.Cursor,
		Truncated:   r.Truncated,
		Truncation:  r.Truncation,
		NextOffset:  r.NextOffset,
	}
	for _, f := range r.Fragments {
		out.Fragments = append(out.Fragments, CorpusFragment{Document: doc, Fragment: f})
	}
	return out
}

// Search fans the query out to every document and merges the results.
// With req.Rank set, fragments are ordered by descending score across
// documents; otherwise the merged list deterministically follows document
// insertion order (and document order within each document). req.Limit and
// req.Offset page the merged list; NextOffset reports where the following
// page starts. When req.Document is set, the search covers that document
// alone (equivalent to SearchDocument). A keyword missing from one document
// simply yields no fragments there; the query fails only if it is
// unsearchable (e.g. all stop words).
//
// Execution is staged (internal/exec): per-document workers run only the
// cheap plan and candidate stages; candidates stream into a shared merge —
// a bounded top-K heap when ranking with a limit — and fragments are
// materialized only for the merged selection. A ranked search over N
// documents with Limit=10 assembles exactly 10 fragments. Ordering is
// deterministic regardless of worker interleaving: the ranked order is a
// strict total order (score, then document insertion order, then document
// order), matching a stable score sort of the eagerly merged lists.
//
// ctx cancellation (and req.Timeout) stops the fan-out: no further
// documents are dispatched, in-flight candidate stages abandon their merge
// loops mid-stream, every worker goroutine is joined, and Search returns
// ctx.Err(). With req.Budget set to BestEffort, a deadline that expires
// mid-materialization instead returns the fragments finished so far with
// Truncated set (materialization runs serially in that mode so partial
// work survives).
func (c *Corpus) Search(ctx context.Context, req Request) (*Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Document != "" {
		return c.SearchDocument(ctx, req.Document, req)
	}
	req, vec, gen, err := c.resolveSnapshot(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := req.applyTimeout(ctx)
	defer cancel()

	start := time.Now()
	outs, selected, merged, err := c.gather(ctx, req, vec)
	defer releaseAll(outs)
	materialize := func(cand *exec.Candidate) (CorpusFragment, error) {
		o := outs[cand.Doc]
		// The expired outer ctx (not a detached salvage one) feeds the
		// injection point so scripted deadline faults resolve immediately;
		// assembly itself never consults a context.
		f, merr := o.eng.materializeSafe(ctx, o.name, cand, o.plan, o.params)
		if merr != nil {
			return CorpusFragment{}, merr
		}
		return CorpusFragment{Document: o.name, Fragment: f}, nil
	}
	if err != nil {
		if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
			// The candidate fan-out did not finish: gather still returns the
			// envelope aggregated over the documents that completed — real
			// partial stats instead of a zero struct — plus the selection
			// salvaged from them. Materialize that page on a detached
			// context (the deadline is already spent; the work is bounded
			// by the page size) so finished candidate stages are not thrown
			// away.
			merged.Truncated = true
			merged.Truncation = TruncCandidates
			if len(selected) > 0 {
				frags, merr := concurrent.MapCtx(context.WithoutCancel(ctx), selected, c.Workers, materialize)
				if merr == nil {
					merged.Fragments = frags
				}
			}
			merged.Stats.Elapsed = time.Since(start)
			// Truncated before selection finished: the total is unknown
			// (the salvaged page covers only the completed documents), so
			// the page resumes from its own start — an empty cursor would
			// read as "exhausted" and silently end the scroll.
			truncationCursor(&merged.NextOffset, &merged.Cursor, req, gen)
			return merged, nil
		}
		return nil, err
	}

	sp := trace.SpanFromContext(ctx)
	matSp := sp.Child("materialize")
	matStart := time.Now()
	var frags []CorpusFragment
	if req.Budget == BestEffort {
		// Chunked fan-out: the same worker parallelism, with a deadline
		// check between chunks, so an expiring deadline truncates the page
		// to the chunks already finished instead of discarding everything
		// the workers produced (concurrent.MapCtx drops partial output on
		// error). Chunk size trades truncation granularity against join
		// overhead.
		chunk := c.Workers
		if chunk <= 0 {
			chunk = runtime.GOMAXPROCS(0)
		}
		chunk *= 4
		for lo := 0; lo < len(selected); lo += chunk {
			part, err := concurrent.MapCtx(ctx, selected[lo:min(lo+chunk, len(selected))], c.Workers, materialize)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					merged.Truncated = true
					merged.Truncation = TruncMaterialize
					break
				}
				return nil, err
			}
			frags = append(frags, part...)
		}
	} else {
		// Materialize only the selection, fanned out across the same worker
		// budget (engines are immutable and concurrency-safe; job order
		// keeps the merged order deterministic).
		frags, err = concurrent.MapCtx(ctx, selected, c.Workers, materialize)
		if err != nil {
			return nil, err
		}
	}
	merged.Stats.Stages.Materialize = time.Since(matStart)
	var prunedNodes int64
	for _, f := range frags {
		prunedNodes += int64(f.Pruned)
	}
	matSp.SetInt("fragments", int64(len(frags)))
	matSp.SetInt("prunedNodes", prunedNodes)
	matSp.End()
	if len(frags) > 0 {
		merged.Fragments = frags
	}
	lastDoc, lastSeq := 0, 0
	if len(frags) > 0 {
		last := selected[len(frags)-1]
		lastDoc, lastSeq = last.Doc, last.Seq
	}
	pageCursor(&merged.NextOffset, &merged.Cursor, req, gen, len(frags), merged.Stats.NumLCAs, lastDoc, lastSeq, merged.Truncated)
	merged.Stats.Elapsed = time.Since(start)
	return merged, nil
}

// docOut is one document's candidate-stage output within a corpus search.
type docOut struct {
	name   string
	eng    *Engine
	plan   exec.Plan
	params exec.Params
	// cands is nil in the streamed top-K path: candidates live only in
	// the bounded heap, so memory stays O(K), not O(total candidates).
	cands []*exec.Candidate
	// n is the candidate count (PerDocument / NumLCAs aggregation).
	n int
	// release unpins the engine snapshot this document's stage ran
	// against; the caller drops every pin once materialization is done.
	release func()
}

// releaseAll unpins every completed document's snapshot after a corpus
// search finishes with its outputs (pins are pure accounting — the
// fragments already materialized stay valid).
func releaseAll(outs []docOut) {
	for _, o := range outs {
		if o.release != nil {
			o.release()
		}
	}
}

// gather runs the cheap half of a corpus search — the per-document plan and
// candidate fan-out, the shared (top-K) merge, and selection — and returns
// the per-document outputs, the selected pagination window (nothing pruned
// or assembled yet), and the result envelope with stats and PerDocument
// filled. Search and Stream differ only in how they materialize the
// selection. req must already be cursor-resolved and clamped; vec is the
// snapshot vector resolveSnapshot pinned the request to (each document's
// candidate stage runs against its recorded engine version, so a resumed
// cursor reads exactly the state its first page did); ctx carries any
// deadline (and the trace span, when the request is traced). Completed
// entries in the returned outs hold snapshot release funcs — the caller
// must releaseAll them after materializing.
//
// On error the envelope still comes back non-nil, aggregated over the
// documents whose candidate stage completed before the failure, so a
// BestEffort truncation reports the work actually done (keywords, partial
// candidate counts, stage timings) instead of a zero Stats struct.
func (c *Corpus) gather(ctx context.Context, req Request, vec []docSnap) ([]docOut, []*exec.Candidate, *Results, error) {
	mergedLimit := req.Limit // applied to the merged selection; per-doc stages stay complete
	docReq := req
	docReq.Limit, docReq.Offset = 0, 0
	docReq.Timeout = 0 // already applied to ctx

	sp := trace.SpanFromContext(ctx)

	// Streaming merge: with Rank and a limit, workers offer candidates into
	// the shared bounded heap as each document's candidate stage finishes;
	// everything that falls off the heap is never materialized. The heap
	// holds the whole pagination window so the page can start at Offset; a
	// window so large it overflows int can never be reached, so that shape
	// falls through to the full-sort path (which pages safely).
	var topk *exec.TopK
	if req.Rank && mergedLimit > 0 {
		if window := req.Offset + mergedLimit; window > 0 {
			topk = exec.NewTopK(window)
		}
	}
	docIdx := make([]int, len(vec))
	for i := range docIdx {
		docIdx[i] = i
	}
	candSp := sp.Child("candidates")
	candStart := time.Now()
	outs, err := concurrent.MapCtx(ctx, docIdx, c.Workers, func(i int) (docOut, error) {
		name := vec[i].name
		eng := c.engines[name]
		// Chaos injection points: a scripted store-read or candidate-stage
		// fault targeted at this document fails (or panics — MapCtx recovers)
		// here, exercising the same degradation paths a real fault would.
		ferr := fault.Inject(ctx, fault.PointStoreRead, name)
		if ferr == nil {
			ferr = fault.Inject(ctx, fault.PointCandidates, name)
		}
		if ferr != nil {
			if ctx.Err() != nil {
				return docOut{}, ferr // the shared deadline expired; no document to blame
			}
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, ferr)
		}
		// Each document gets its own child span (concurrent-safe); the
		// engine's plan and the lca/rtf sub-stages hang under it.
		docSp := candSp.Child("doc:" + name)
		// With the shared top-K heap, each document materializes at most the
		// merged page: skip per-candidate event lists and hydrate the few
		// selected candidates lazily (score-without-events).
		p, params, cands, release, err := eng.searchCandidates(trace.ContextWithSpan(ctx, docSp), docReq, i, topk != nil, vec[i].ver)
		docSp.End()
		if err != nil {
			if ctx.Err() != nil {
				return docOut{}, err // the shared context failed; no document to blame
			}
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, err)
		}
		out := docOut{name: name, eng: eng, plan: p, params: params, n: len(cands), release: release}
		if topk != nil {
			topk.Offer(cands...)
		} else {
			out.cands = cands
		}
		return out, nil
	})

	merged := &Results{Query: req.Query, PerDocument: map[string]int{}, NextOffset: -1}
	// Per-document planning runs inside the concurrent fan-out, so the
	// corpus-level breakdown folds Plan into Candidates (the per-document
	// split is still visible in the trace span tree).
	merged.Stats.Stages.Candidates = time.Since(candStart)
	// concurrent.MapCtx returns results in job order, so ranging over outs
	// aggregates in document insertion order regardless of which worker
	// finished first. Under cancellation the fan-out may have died
	// mid-flight; completed entries (eng != nil) still aggregate so a
	// truncated page carries real partial stats.
	for _, o := range outs {
		if o.eng == nil {
			continue
		}
		if merged.Stats.Keywords == nil {
			merged.Stats.Keywords = o.plan.Keywords
		}
		merged.Stats.KeywordNodes += o.plan.KeywordNodes()
		merged.Stats.NumLCAs += o.n
		merged.PerDocument[o.name] = o.n
	}
	candSp.SetInt("documents", int64(len(vec)))
	candSp.SetInt("candidates", int64(merged.Stats.NumLCAs))
	candSp.End()
	if err != nil {
		if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
			// Candidate-stage salvage: the fan-out died on the deadline, but
			// every completed document's candidate set (and the shared top-K
			// heap the workers fed) is intact. Select over that partial
			// corpus so the caller can materialize an honest best-effort
			// page instead of discarding finished work. The error still
			// propagates — the caller owns the Truncated marking.
			selected := selectAcross(topk, outs, req, mergedLimit)
			merged.Stats.Selected = len(selected)
			return outs, selected, merged, err
		}
		return outs, nil, merged, err
	}

	// Select across documents. Candidates are cheap handles; nothing has
	// been pruned or assembled yet. The streamed heap already holds the
	// ranked pagination window; the remaining shapes run the same Select
	// the single-document path uses, over the document-order concatenation.
	selSp := sp.Child("select")
	selStart := time.Now()
	selected := selectAcross(topk, outs, req, mergedLimit)
	merged.Stats.Stages.Select = time.Since(selStart)
	merged.Stats.Selected = len(selected)
	selSp.SetInt("candidates", int64(merged.Stats.NumLCAs))
	selSp.SetInt("selected", int64(len(selected)))
	selSp.End()
	return outs, selected, merged, nil
}

// selectAcross runs the merged selection over the per-document candidate
// outputs: the shared top-K heap's pagination window when the streamed merge
// ran, otherwise the standard Select over the document-order concatenation
// of completed documents (o.eng == nil marks a document whose candidate
// stage did not finish; it contributed nothing).
func selectAcross(topk *exec.TopK, outs []docOut, req Request, mergedLimit int) []*exec.Candidate {
	if topk != nil {
		return exec.Page(topk.Ranked(), req.Offset, mergedLimit)
	}
	var all []*exec.Candidate
	for _, o := range outs {
		all = append(all, o.cands...)
	}
	return exec.Select(all, exec.Params{Rank: req.Rank, Limit: mergedLimit, Offset: req.Offset})
}

// Fragments is the streaming variant of Search — the corpus-level mirror of
// Engine.Fragments. The candidate fan-out and the shared top-K selection
// run eagerly (selection needs every document's candidates), but fragments
// materialize one by one as the iterator is consumed, in exactly the order
// Search returns them. Breaking out of the loop early — a disconnecting
// client, a filled page, a deadline — leaves every unvisited candidate
// unassembled: pruneRTF and node/string assembly run only for the
// fragments actually yielded. A non-nil error is yielded once (with a zero
// CorpusFragment) and ends the sequence. Callers that also need the
// envelope (cursor, stats, truncation) use Stream.
func (c *Corpus) Fragments(ctx context.Context, req Request) iter.Seq2[CorpusFragment, error] {
	seq, _ := c.Stream(ctx, req)
	return seq
}

// Stream begins a streamed corpus search: the fragment iterator plus a
// trailer. Once the loop ends (drained, broken, errored, or truncated) the
// trailer func returns the Results envelope for the fragments actually
// yielded — stats, the Truncated marker, and the Cursor resuming after the
// last yielded fragment, so an abandoned stream is still resumable. The
// yielded fragments themselves are not retained in the trailer (collect
// them from the iterator if a buffered page is needed), so consuming an
// unbounded result set stays O(1) server-side. The trailer's value is
// unspecified while the iterator is still running. Request.Document routes
// to the named document's engine stream, with the cursor validated against
// the corpus generation either way.
func (c *Corpus) Stream(ctx context.Context, req Request) (iter.Seq2[CorpusFragment, error], func() *Results) {
	res := &Results{Query: req.Query, PerDocument: map[string]int{}, NextOffset: -1}
	seq := func(yield func(CorpusFragment, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		if req.Document != "" {
			c.streamDocument(ctx, req, res, yield)
			return
		}
		req, vec, gen, err := c.resolveSnapshot(req)
		if err != nil {
			yield(CorpusFragment{}, err)
			return
		}
		ctx, cancel := req.applyTimeout(ctx)
		defer cancel()

		start := time.Now()
		defer func() { res.Stats.Elapsed = time.Since(start) }()
		outs, selected, merged, err := c.gather(ctx, req, vec)
		defer releaseAll(outs)
		if err != nil {
			if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
				// Partial stats from the documents that finished (see
				// gather) instead of an Elapsed-only zero struct, and the
				// selection salvaged from them yielded as a best-effort
				// page (assembly ignores the spent deadline; the work is
				// bounded by the page size).
				res.Stats = merged.Stats
				res.PerDocument = merged.PerDocument
				res.Truncated = true
				res.Truncation = TruncCandidates
				truncationCursor(&res.NextOffset, &res.Cursor, req, gen)
				for _, cand := range selected {
					o := outs[cand.Doc]
					cf, merr := o.eng.materializeSafe(ctx, o.name, cand, o.plan, o.params)
					if merr != nil {
						return
					}
					if !yield(CorpusFragment{Document: o.name, Fragment: cf}, nil) {
						return
					}
				}
				return
			}
			yield(CorpusFragment{}, err)
			return
		}
		res.Stats = merged.Stats
		res.PerDocument = merged.PerDocument

		sp := trace.SpanFromContext(ctx)
		matSp := sp.Child("materialize")
		yielded, lastDoc, lastSeq := 0, 0, 0
		var prunedNodes int64
		defer func() {
			matSp.SetInt("fragments", int64(yielded))
			matSp.SetInt("prunedNodes", prunedNodes)
			matSp.End()
			pageCursor(&res.NextOffset, &res.Cursor, req, gen, yielded, res.Stats.NumLCAs, lastDoc, lastSeq, res.Truncated)
		}()
		for _, cand := range selected {
			if cerr := ctx.Err(); cerr != nil {
				if req.Budget == BestEffort && errors.Is(cerr, context.DeadlineExceeded) {
					res.Truncated = true
					res.Truncation = TruncMaterialize
					return
				}
				yield(CorpusFragment{}, cerr)
				return
			}
			o := outs[cand.Doc]
			matStart := time.Now()
			f, merr := o.eng.materializeSafe(ctx, o.name, cand, o.plan, o.params)
			res.Stats.Stages.Materialize += time.Since(matStart)
			if merr != nil {
				if req.Budget == BestEffort && errors.Is(merr, context.DeadlineExceeded) {
					res.Truncated = true
					res.Truncation = TruncMaterialize
					return
				}
				yield(CorpusFragment{}, merr)
				return
			}
			cf := CorpusFragment{Document: o.name, Fragment: f}
			prunedNodes += int64(cf.Pruned)
			yielded, lastDoc, lastSeq = yielded+1, cand.Doc, cand.Seq
			if !yield(cf, nil) {
				return
			}
		}
	}
	return seq, func() *Results { return res }
}

// pinDocRequest resolves a document-filtered request's corpus cursor and
// rewrites it in the engine's own cursor dialect, pinned to the engine
// version the snapshot vector recorded for the document — so a resumed
// scroll reads exactly the state its first page did even after appends.
// The returned token is what the next page's corpus cursor must be
// stamped with.
func (c *Corpus) pinDocRequest(req Request) (Request, uint64, error) {
	req, vec, gen, err := c.resolveSnapshot(req)
	if err != nil {
		return req, 0, err
	}
	var ver uint64
	for _, ds := range vec {
		if ds.name == req.Document {
			ver = ds.ver
			break
		}
	}
	if ver == 0 {
		// A resumed corpus-wide vector that never pinned this document:
		// the document postdates the cursor.
		return req, 0, fmt.Errorf("%w: document %q is not in the cursor's snapshot", ErrStaleCursor, req.Document)
	}
	req.Cursor = encodeCursor(cursorState{gen: ver, offset: req.Offset, fp: req.fingerprint()})
	return req, gen, nil
}

// streamDocument is the Request.Document arm of Stream: the named engine's
// stream with fragments tagged and the cursor re-anchored to the corpus
// snapshot token (an engine-issued cursor would pin the engine's own
// version, which serving layers validating against the corpus could not
// honor).
func (c *Corpus) streamDocument(ctx context.Context, req Request, res *Results, yield func(CorpusFragment, error) bool) {
	name := req.Document
	req, gen, err := c.pinDocRequest(req)
	if err != nil {
		yield(CorpusFragment{}, err)
		return
	}
	seq, trailer := c.engines[name].Stream(ctx, req)
	defer func() {
		t := trailer().AsCorpus(name)
		if t.NextOffset >= 0 {
			t.Cursor = encodeCursor(cursorState{gen: gen, offset: t.NextOffset, fp: req.fingerprint()})
		}
		*res = *t
	}()
	for f, err := range seq {
		if err != nil {
			if ctx == nil || ctx.Err() == nil {
				err = fmt.Errorf("xks: document %s: %w", name, err)
			}
			yield(CorpusFragment{}, err)
			return
		}
		if !yield(CorpusFragment{Document: name, Fragment: f}, nil) {
			return
		}
	}
}

// SearchDocument searches a single named document of the corpus, returning
// the result in the corpus shape; req.Document is normalized to name (so
// cursor fingerprints stay consistent however the caller routed here). The
// error wraps ErrUnknownDocument when name is not in the corpus. Cursors
// are validated against — and issued at — the document-scoped snapshot
// token, so mutations to other corpus documents never stale them.
func (c *Corpus) SearchDocument(ctx context.Context, name string, req Request) (*Results, error) {
	req.Document = name
	req, gen, err := c.pinDocRequest(req)
	if err != nil {
		return nil, err
	}
	res, err := c.engines[name].Search(ctx, req)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, err // the caller's context failed; no document to blame
		}
		return nil, fmt.Errorf("xks: document %s: %w", name, err)
	}
	out := res.AsCorpus(name)
	if out.NextOffset >= 0 {
		// Re-anchor the engine-issued cursor to the corpus generation.
		out.Cursor = encodeCursor(cursorState{gen: gen, offset: out.NextOffset, fp: req.fingerprint()})
	}
	return out, nil
}
