package xks

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"xks/internal/concurrent"
	"xks/internal/exec"
	"xks/internal/fault"
	"xks/internal/planner"
	"xks/internal/query"
	"xks/internal/trace"
)

// ErrUnknownDocument is wrapped by document-filtered searches when the
// named document is not in the corpus; match it with errors.Is.
var ErrUnknownDocument = errors.New("unknown document")

// Corpus searches a collection of XML documents — the digital-library
// setting the paper's introduction motivates — by fanning a query out to
// per-document engines concurrently and merging the fragments.
type Corpus struct {
	names   []string
	engines map[string]*Engine
	// Workers bounds the per-search concurrency (0 = GOMAXPROCS).
	Workers int
	// structGen counts structural mutations (Add calls); see Generation.
	structGen atomic.Uint64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{engines: map[string]*Engine{}}
}

// Add registers a document engine under a name. Adding a name twice
// replaces the previous engine (keeping its insertion-order position).
// Add must not run concurrently with Search.
func (c *Corpus) Add(name string, e *Engine) {
	bump := uint64(1)
	if old, dup := c.engines[name]; !dup {
		c.names = append(c.names, name)
	} else {
		// The replaced engine's generation leaves the Generation sum;
		// absorb it into structGen so the total never revisits a value
		// (a repeat would let caches serve the replaced document).
		bump += old.Generation()
	}
	c.engines[name] = e
	c.structGen.Add(bump)
}

// AddFile loads one XML file under its base name.
func (c *Corpus) AddFile(path string) error {
	e, err := LoadFile(path)
	if err != nil {
		return err
	}
	c.Add(filepath.Base(path), e)
	return nil
}

// LoadDir builds a corpus from every *.xml file in a directory.
func LoadDir(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCorpus()
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".xml") {
			continue
		}
		if err := c.AddFile(filepath.Join(dir, ent.Name())); err != nil {
			return nil, fmt.Errorf("xks: loading %s: %w", ent.Name(), err)
		}
	}
	if len(c.names) == 0 {
		return nil, fmt.Errorf("xks: no .xml files in %s", dir)
	}
	return c, nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.names) }

// Names returns the document names in insertion order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Engine returns the engine registered under name, or nil.
func (c *Corpus) Engine(name string) *Engine { return c.engines[name] }

// DocumentInfo summarizes one corpus document for listings.
type DocumentInfo struct {
	Name  string `json:"name"`
	Words int    `json:"words"` // distinct indexed words
	Nodes int    `json:"nodes"` // indexed element nodes
}

// Documents lists the corpus documents, in insertion order, with index
// size summaries.
func (c *Corpus) Documents() []DocumentInfo {
	out := make([]DocumentInfo, 0, len(c.names))
	for _, n := range c.names {
		ix := c.engines[n].Index()
		out = append(out, DocumentInfo{Name: n, Words: ix.NumWords(), Nodes: ix.NumNodes()})
	}
	return out
}

// Generation reports the corpus mutation generation: the sum of every
// engine's generation plus one increment per Add. It changes whenever a
// document is added, replaced, or appended to, so caching layers can tag
// entries with it and detect staleness.
func (c *Corpus) Generation() uint64 {
	g := c.structGen.Load()
	for _, e := range c.engines {
		g += e.Generation()
	}
	return g
}

// ResolveStrategy reports the strategy the planner resolves req to at the
// corpus level: the corpus-wide aggregate of the per-document decisions,
// computed from merged index statistics and summed per-term posting mass.
// Caching layers fold this into their keys so a statistics change that flips
// the plan cannot replay a page cached under a different algorithm. A
// document-filtered request delegates to that document's engine; unparseable
// queries and empty corpora fall back to the requested strategy (such
// requests error or come back empty before any algorithm runs).
func (c *Corpus) ResolveStrategy(req Request) Strategy {
	if req.Document != "" {
		if e := c.engines[req.Document]; e != nil {
			return e.ResolveStrategy(req)
		}
		return req.Strategy
	}
	if len(c.names) == 0 {
		return req.Strategy
	}
	first := c.engines[c.names[0]]
	if req.Strategy != Auto || req.Semantics != SLCAOnly {
		// Fixed strategies and ELCA semantics normalize identically in
		// every document; the first engine's resolution is the corpus's.
		return first.ResolveStrategy(req)
	}
	terms, err := query.Parse(req.Query, first.an)
	if err != nil {
		return req.Strategy
	}
	sizes := make([]int, len(terms))
	var st planner.Stats
	for _, n := range c.names {
		e := c.engines[n]
		st = planner.Merge(st, e.ix.Stats())
		for i, t := range terms {
			w := t.Keyword
			if w == "" {
				w = e.an.Normalize(t.Label)
			}
			sizes[i] += e.ix.Frequency(w)
		}
	}
	return publicStrategy(planner.Decide(sizes, st, planner.Default).Strategy)
}

// CorpusFragment tags a fragment with its source document.
type CorpusFragment struct {
	Document string
	*Fragment
}

// Results is the result envelope of the streaming API — the merged outcome
// of a corpus search, and the shape every serving layer (internal/service,
// internal/httpapi) passes around. Engine.Search produces the same envelope
// minus the per-document bookkeeping (Result); AsCorpus converts.
type Results struct {
	Query     string
	Fragments []CorpusFragment
	// Cursor is the opaque resume token of the next page when the merged
	// result set extends past this one, and empty when it is exhausted.
	// It is generation-aware: replaying it after an AppendXML or
	// Corpus.Add fails with ErrStaleCursor instead of serving a silently
	// shifted page.
	Cursor Cursor
	// Truncated reports that a BestEffort deadline expired mid-pipeline:
	// Fragments holds everything finished in time, and Cursor resumes
	// from the first fragment that was not.
	Truncated bool
	// Truncation says which stage the deadline expired in when Truncated
	// is set (TruncNone otherwise): TruncCandidates means the candidate
	// fan-out did not finish (Fragments holds a best-effort page salvaged
	// from the documents that completed; the total is unknown and the
	// cursor resumes from the page's own start), TruncMaterialize means a
	// partial page of finished fragments.
	Truncation TruncationReason
	// PerDocument counts fragments per document (documents with zero
	// matches included).
	PerDocument map[string]int
	// Stats aggregates the per-document searches: Keywords are the
	// normalized query terms, KeywordNodes and NumLCAs sum over documents,
	// and Elapsed is the wall-clock time of the whole fan-out.
	Stats Stats
	// NextOffset is the Request.Offset of the next page when the merged
	// result set extends past this one, and -1 when it is exhausted.
	//
	// Deprecated: resume with Cursor, which survives index mutation
	// checks; NextOffset remains as the raw-offset shim.
	NextOffset int
}

// CorpusResult is the pre-streaming name of the result envelope.
//
// Deprecated: use Results.
type CorpusResult = Results

// AsCorpus wraps a single-document result in the corpus result shape,
// tagging every fragment with doc.
func (r *Result) AsCorpus(doc string) *Results {
	out := &Results{
		Query:       r.Query,
		Stats:       r.Stats,
		PerDocument: map[string]int{doc: len(r.Fragments)},
		Cursor:      r.Cursor,
		Truncated:   r.Truncated,
		Truncation:  r.Truncation,
		NextOffset:  r.NextOffset,
	}
	for _, f := range r.Fragments {
		out.Fragments = append(out.Fragments, CorpusFragment{Document: doc, Fragment: f})
	}
	return out
}

// Search fans the query out to every document and merges the results.
// With req.Rank set, fragments are ordered by descending score across
// documents; otherwise the merged list deterministically follows document
// insertion order (and document order within each document). req.Limit and
// req.Offset page the merged list; NextOffset reports where the following
// page starts. When req.Document is set, the search covers that document
// alone (equivalent to SearchDocument). A keyword missing from one document
// simply yields no fragments there; the query fails only if it is
// unsearchable (e.g. all stop words).
//
// Execution is staged (internal/exec): per-document workers run only the
// cheap plan and candidate stages; candidates stream into a shared merge —
// a bounded top-K heap when ranking with a limit — and fragments are
// materialized only for the merged selection. A ranked search over N
// documents with Limit=10 assembles exactly 10 fragments. Ordering is
// deterministic regardless of worker interleaving: the ranked order is a
// strict total order (score, then document insertion order, then document
// order), matching a stable score sort of the eagerly merged lists.
//
// ctx cancellation (and req.Timeout) stops the fan-out: no further
// documents are dispatched, in-flight candidate stages abandon their merge
// loops mid-stream, every worker goroutine is joined, and Search returns
// ctx.Err(). With req.Budget set to BestEffort, a deadline that expires
// mid-materialization instead returns the fragments finished so far with
// Truncated set (materialization runs serially in that mode so partial
// work survives).
func (c *Corpus) Search(ctx context.Context, req Request) (*Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Document != "" {
		return c.SearchDocument(ctx, req.Document, req)
	}
	gen := c.Generation()
	req, err := req.clampPaging().ResolveCursor(gen)
	if err != nil {
		return nil, err
	}
	ctx, cancel := req.applyTimeout(ctx)
	defer cancel()

	start := time.Now()
	outs, selected, merged, err := c.gather(ctx, req)
	materialize := func(cand *exec.Candidate) (CorpusFragment, error) {
		o := outs[cand.Doc]
		// The expired outer ctx (not a detached salvage one) feeds the
		// injection point so scripted deadline faults resolve immediately;
		// assembly itself never consults a context.
		f, merr := o.eng.materializeSafe(ctx, o.name, cand, o.plan, o.params)
		if merr != nil {
			return CorpusFragment{}, merr
		}
		return CorpusFragment{Document: o.name, Fragment: f}, nil
	}
	if err != nil {
		if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
			// The candidate fan-out did not finish: gather still returns the
			// envelope aggregated over the documents that completed — real
			// partial stats instead of a zero struct — plus the selection
			// salvaged from them. Materialize that page on a detached
			// context (the deadline is already spent; the work is bounded
			// by the page size) so finished candidate stages are not thrown
			// away.
			merged.Truncated = true
			merged.Truncation = TruncCandidates
			if len(selected) > 0 {
				frags, merr := concurrent.MapCtx(context.WithoutCancel(ctx), selected, c.Workers, materialize)
				if merr == nil {
					merged.Fragments = frags
				}
			}
			merged.Stats.Elapsed = time.Since(start)
			// Truncated before selection finished: the total is unknown
			// (the salvaged page covers only the completed documents), so
			// the page resumes from its own start — an empty cursor would
			// read as "exhausted" and silently end the scroll.
			truncationCursor(&merged.NextOffset, &merged.Cursor, req, gen)
			return merged, nil
		}
		return nil, err
	}

	sp := trace.SpanFromContext(ctx)
	matSp := sp.Child("materialize")
	matStart := time.Now()
	var frags []CorpusFragment
	if req.Budget == BestEffort {
		// Chunked fan-out: the same worker parallelism, with a deadline
		// check between chunks, so an expiring deadline truncates the page
		// to the chunks already finished instead of discarding everything
		// the workers produced (concurrent.MapCtx drops partial output on
		// error). Chunk size trades truncation granularity against join
		// overhead.
		chunk := c.Workers
		if chunk <= 0 {
			chunk = runtime.GOMAXPROCS(0)
		}
		chunk *= 4
		for lo := 0; lo < len(selected); lo += chunk {
			part, err := concurrent.MapCtx(ctx, selected[lo:min(lo+chunk, len(selected))], c.Workers, materialize)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					merged.Truncated = true
					merged.Truncation = TruncMaterialize
					break
				}
				return nil, err
			}
			frags = append(frags, part...)
		}
	} else {
		// Materialize only the selection, fanned out across the same worker
		// budget (engines are immutable and concurrency-safe; job order
		// keeps the merged order deterministic).
		frags, err = concurrent.MapCtx(ctx, selected, c.Workers, materialize)
		if err != nil {
			return nil, err
		}
	}
	merged.Stats.Stages.Materialize = time.Since(matStart)
	var prunedNodes int64
	for _, f := range frags {
		prunedNodes += int64(f.Pruned)
	}
	matSp.SetInt("fragments", int64(len(frags)))
	matSp.SetInt("prunedNodes", prunedNodes)
	matSp.End()
	if len(frags) > 0 {
		merged.Fragments = frags
	}
	lastDoc, lastSeq := 0, 0
	if len(frags) > 0 {
		last := selected[len(frags)-1]
		lastDoc, lastSeq = last.Doc, last.Seq
	}
	pageCursor(&merged.NextOffset, &merged.Cursor, req, gen, len(frags), merged.Stats.NumLCAs, lastDoc, lastSeq, merged.Truncated)
	merged.Stats.Elapsed = time.Since(start)
	return merged, nil
}

// docOut is one document's candidate-stage output within a corpus search.
type docOut struct {
	name   string
	eng    *Engine
	plan   exec.Plan
	params exec.Params
	// cands is nil in the streamed top-K path: candidates live only in
	// the bounded heap, so memory stays O(K), not O(total candidates).
	cands []*exec.Candidate
	// n is the candidate count (PerDocument / NumLCAs aggregation).
	n int
}

// gather runs the cheap half of a corpus search — the per-document plan and
// candidate fan-out, the shared (top-K) merge, and selection — and returns
// the per-document outputs, the selected pagination window (nothing pruned
// or assembled yet), and the result envelope with stats and PerDocument
// filled. Search and Stream differ only in how they materialize the
// selection. req must already be cursor-resolved and clamped; ctx carries
// any deadline (and the trace span, when the request is traced).
//
// On error the envelope still comes back non-nil, aggregated over the
// documents whose candidate stage completed before the failure, so a
// BestEffort truncation reports the work actually done (keywords, partial
// candidate counts, stage timings) instead of a zero Stats struct.
func (c *Corpus) gather(ctx context.Context, req Request) ([]docOut, []*exec.Candidate, *Results, error) {
	mergedLimit := req.Limit // applied to the merged selection; per-doc stages stay complete
	docReq := req
	docReq.Limit, docReq.Offset = 0, 0
	docReq.Timeout = 0 // already applied to ctx

	sp := trace.SpanFromContext(ctx)

	// Streaming merge: with Rank and a limit, workers offer candidates into
	// the shared bounded heap as each document's candidate stage finishes;
	// everything that falls off the heap is never materialized. The heap
	// holds the whole pagination window so the page can start at Offset; a
	// window so large it overflows int can never be reached, so that shape
	// falls through to the full-sort path (which pages safely).
	var topk *exec.TopK
	if req.Rank && mergedLimit > 0 {
		if window := req.Offset + mergedLimit; window > 0 {
			topk = exec.NewTopK(window)
		}
	}
	docIdx := make([]int, len(c.names))
	for i := range docIdx {
		docIdx[i] = i
	}
	candSp := sp.Child("candidates")
	candStart := time.Now()
	outs, err := concurrent.MapCtx(ctx, docIdx, c.Workers, func(i int) (docOut, error) {
		name := c.names[i]
		eng := c.engines[name]
		// Chaos injection points: a scripted store-read or candidate-stage
		// fault targeted at this document fails (or panics — MapCtx recovers)
		// here, exercising the same degradation paths a real fault would.
		ferr := fault.Inject(ctx, fault.PointStoreRead, name)
		if ferr == nil {
			ferr = fault.Inject(ctx, fault.PointCandidates, name)
		}
		if ferr != nil {
			if ctx.Err() != nil {
				return docOut{}, ferr // the shared deadline expired; no document to blame
			}
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, ferr)
		}
		// Each document gets its own child span (concurrent-safe); the
		// engine's plan and the lca/rtf sub-stages hang under it.
		docSp := candSp.Child("doc:" + name)
		// With the shared top-K heap, each document materializes at most the
		// merged page: skip per-candidate event lists and hydrate the few
		// selected candidates lazily (score-without-events).
		p, params, cands, err := eng.searchCandidates(trace.ContextWithSpan(ctx, docSp), docReq, i, topk != nil)
		docSp.End()
		if err != nil {
			if ctx.Err() != nil {
				return docOut{}, err // the shared context failed; no document to blame
			}
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, err)
		}
		out := docOut{name: name, eng: eng, plan: p, params: params, n: len(cands)}
		if topk != nil {
			topk.Offer(cands...)
		} else {
			out.cands = cands
		}
		return out, nil
	})

	merged := &Results{Query: req.Query, PerDocument: map[string]int{}, NextOffset: -1}
	// Per-document planning runs inside the concurrent fan-out, so the
	// corpus-level breakdown folds Plan into Candidates (the per-document
	// split is still visible in the trace span tree).
	merged.Stats.Stages.Candidates = time.Since(candStart)
	// concurrent.MapCtx returns results in job order, so ranging over outs
	// aggregates in document insertion order regardless of which worker
	// finished first. Under cancellation the fan-out may have died
	// mid-flight; completed entries (eng != nil) still aggregate so a
	// truncated page carries real partial stats.
	for _, o := range outs {
		if o.eng == nil {
			continue
		}
		if merged.Stats.Keywords == nil {
			merged.Stats.Keywords = o.plan.Keywords
		}
		merged.Stats.KeywordNodes += o.plan.KeywordNodes()
		merged.Stats.NumLCAs += o.n
		merged.PerDocument[o.name] = o.n
	}
	candSp.SetInt("documents", int64(len(c.names)))
	candSp.SetInt("candidates", int64(merged.Stats.NumLCAs))
	candSp.End()
	if err != nil {
		if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
			// Candidate-stage salvage: the fan-out died on the deadline, but
			// every completed document's candidate set (and the shared top-K
			// heap the workers fed) is intact. Select over that partial
			// corpus so the caller can materialize an honest best-effort
			// page instead of discarding finished work. The error still
			// propagates — the caller owns the Truncated marking.
			selected := selectAcross(topk, outs, req, mergedLimit)
			merged.Stats.Selected = len(selected)
			return outs, selected, merged, err
		}
		return outs, nil, merged, err
	}

	// Select across documents. Candidates are cheap handles; nothing has
	// been pruned or assembled yet. The streamed heap already holds the
	// ranked pagination window; the remaining shapes run the same Select
	// the single-document path uses, over the document-order concatenation.
	selSp := sp.Child("select")
	selStart := time.Now()
	selected := selectAcross(topk, outs, req, mergedLimit)
	merged.Stats.Stages.Select = time.Since(selStart)
	merged.Stats.Selected = len(selected)
	selSp.SetInt("candidates", int64(merged.Stats.NumLCAs))
	selSp.SetInt("selected", int64(len(selected)))
	selSp.End()
	return outs, selected, merged, nil
}

// selectAcross runs the merged selection over the per-document candidate
// outputs: the shared top-K heap's pagination window when the streamed merge
// ran, otherwise the standard Select over the document-order concatenation
// of completed documents (o.eng == nil marks a document whose candidate
// stage did not finish; it contributed nothing).
func selectAcross(topk *exec.TopK, outs []docOut, req Request, mergedLimit int) []*exec.Candidate {
	if topk != nil {
		return exec.Page(topk.Ranked(), req.Offset, mergedLimit)
	}
	var all []*exec.Candidate
	for _, o := range outs {
		all = append(all, o.cands...)
	}
	return exec.Select(all, exec.Params{Rank: req.Rank, Limit: mergedLimit, Offset: req.Offset})
}

// Fragments is the streaming variant of Search — the corpus-level mirror of
// Engine.Fragments. The candidate fan-out and the shared top-K selection
// run eagerly (selection needs every document's candidates), but fragments
// materialize one by one as the iterator is consumed, in exactly the order
// Search returns them. Breaking out of the loop early — a disconnecting
// client, a filled page, a deadline — leaves every unvisited candidate
// unassembled: pruneRTF and node/string assembly run only for the
// fragments actually yielded. A non-nil error is yielded once (with a zero
// CorpusFragment) and ends the sequence. Callers that also need the
// envelope (cursor, stats, truncation) use Stream.
func (c *Corpus) Fragments(ctx context.Context, req Request) iter.Seq2[CorpusFragment, error] {
	seq, _ := c.Stream(ctx, req)
	return seq
}

// Stream begins a streamed corpus search: the fragment iterator plus a
// trailer. Once the loop ends (drained, broken, errored, or truncated) the
// trailer func returns the Results envelope for the fragments actually
// yielded — stats, the Truncated marker, and the Cursor resuming after the
// last yielded fragment, so an abandoned stream is still resumable. The
// yielded fragments themselves are not retained in the trailer (collect
// them from the iterator if a buffered page is needed), so consuming an
// unbounded result set stays O(1) server-side. The trailer's value is
// unspecified while the iterator is still running. Request.Document routes
// to the named document's engine stream, with the cursor validated against
// the corpus generation either way.
func (c *Corpus) Stream(ctx context.Context, req Request) (iter.Seq2[CorpusFragment, error], func() *Results) {
	res := &Results{Query: req.Query, PerDocument: map[string]int{}, NextOffset: -1}
	seq := func(yield func(CorpusFragment, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		gen := c.Generation()
		if req.Document != "" {
			c.streamDocument(ctx, req, gen, res, yield)
			return
		}
		req, err := req.clampPaging().ResolveCursor(gen)
		if err != nil {
			yield(CorpusFragment{}, err)
			return
		}
		ctx, cancel := req.applyTimeout(ctx)
		defer cancel()

		start := time.Now()
		defer func() { res.Stats.Elapsed = time.Since(start) }()
		outs, selected, merged, err := c.gather(ctx, req)
		if err != nil {
			if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
				// Partial stats from the documents that finished (see
				// gather) instead of an Elapsed-only zero struct, and the
				// selection salvaged from them yielded as a best-effort
				// page (assembly ignores the spent deadline; the work is
				// bounded by the page size).
				res.Stats = merged.Stats
				res.PerDocument = merged.PerDocument
				res.Truncated = true
				res.Truncation = TruncCandidates
				truncationCursor(&res.NextOffset, &res.Cursor, req, gen)
				for _, cand := range selected {
					o := outs[cand.Doc]
					cf, merr := o.eng.materializeSafe(ctx, o.name, cand, o.plan, o.params)
					if merr != nil {
						return
					}
					if !yield(CorpusFragment{Document: o.name, Fragment: cf}, nil) {
						return
					}
				}
				return
			}
			yield(CorpusFragment{}, err)
			return
		}
		res.Stats = merged.Stats
		res.PerDocument = merged.PerDocument

		sp := trace.SpanFromContext(ctx)
		matSp := sp.Child("materialize")
		yielded, lastDoc, lastSeq := 0, 0, 0
		var prunedNodes int64
		defer func() {
			matSp.SetInt("fragments", int64(yielded))
			matSp.SetInt("prunedNodes", prunedNodes)
			matSp.End()
			pageCursor(&res.NextOffset, &res.Cursor, req, gen, yielded, res.Stats.NumLCAs, lastDoc, lastSeq, res.Truncated)
		}()
		for _, cand := range selected {
			if cerr := ctx.Err(); cerr != nil {
				if req.Budget == BestEffort && errors.Is(cerr, context.DeadlineExceeded) {
					res.Truncated = true
					res.Truncation = TruncMaterialize
					return
				}
				yield(CorpusFragment{}, cerr)
				return
			}
			o := outs[cand.Doc]
			matStart := time.Now()
			f, merr := o.eng.materializeSafe(ctx, o.name, cand, o.plan, o.params)
			res.Stats.Stages.Materialize += time.Since(matStart)
			if merr != nil {
				if req.Budget == BestEffort && errors.Is(merr, context.DeadlineExceeded) {
					res.Truncated = true
					res.Truncation = TruncMaterialize
					return
				}
				yield(CorpusFragment{}, merr)
				return
			}
			cf := CorpusFragment{Document: o.name, Fragment: f}
			prunedNodes += int64(cf.Pruned)
			yielded, lastDoc, lastSeq = yielded+1, cand.Doc, cand.Seq
			if !yield(cf, nil) {
				return
			}
		}
	}
	return seq, func() *Results { return res }
}

// streamDocument is the Request.Document arm of Stream: the named engine's
// stream with fragments tagged and the cursor re-anchored to the corpus
// generation (an engine-issued cursor would pin the engine's own counter,
// which serving layers validating against Corpus.Generation could not
// honor).
func (c *Corpus) streamDocument(ctx context.Context, req Request, gen uint64, res *Results, yield func(CorpusFragment, error) bool) {
	name := req.Document
	e := c.engines[name]
	if e == nil {
		yield(CorpusFragment{}, fmt.Errorf("xks: %w: %q", ErrUnknownDocument, name))
		return
	}
	req, err := req.clampPaging().ResolveCursor(gen)
	if err != nil {
		yield(CorpusFragment{}, err)
		return
	}
	seq, trailer := e.Stream(ctx, req)
	defer func() {
		t := trailer().AsCorpus(name)
		if t.NextOffset >= 0 {
			t.Cursor = encodeCursor(cursorState{gen: gen, offset: t.NextOffset, fp: req.fingerprint()})
		}
		*res = *t
	}()
	for f, err := range seq {
		if err != nil {
			if ctx == nil || ctx.Err() == nil {
				err = fmt.Errorf("xks: document %s: %w", name, err)
			}
			yield(CorpusFragment{}, err)
			return
		}
		if !yield(CorpusFragment{Document: name, Fragment: f}, nil) {
			return
		}
	}
}

// SearchDocument searches a single named document of the corpus, returning
// the result in the corpus shape; req.Document is normalized to name (so
// cursor fingerprints stay consistent however the caller routed here). The
// error wraps ErrUnknownDocument when name is not in the corpus. Cursors
// are validated against — and issued at — the corpus generation, matching
// what corpus-level serving layers tag their caches with.
func (c *Corpus) SearchDocument(ctx context.Context, name string, req Request) (*Results, error) {
	e := c.engines[name]
	if e == nil {
		return nil, fmt.Errorf("xks: %w: %q", ErrUnknownDocument, name)
	}
	req.Document = name
	gen := c.Generation()
	req, err := req.clampPaging().ResolveCursor(gen)
	if err != nil {
		return nil, err
	}
	res, err := e.Search(ctx, req)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, err // the caller's context failed; no document to blame
		}
		return nil, fmt.Errorf("xks: document %s: %w", name, err)
	}
	out := res.AsCorpus(name)
	if out.NextOffset >= 0 {
		// Re-anchor the engine-issued cursor to the corpus generation.
		out.Cursor = encodeCursor(cursorState{gen: gen, offset: out.NextOffset, fp: req.fingerprint()})
	}
	return out, nil
}
