package xks

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xks/internal/analysis"
	"xks/internal/paperdata"
	"xks/internal/store"
	"xks/internal/workload"
)

// TestCorpusWithStoreBackedEngines exercises a mixed corpus: one
// tree-backed document and one store-backed document (the paper's shredded
// relational layout) behind the same staged search path.
func TestCorpusWithStoreBackedEngines(t *testing.T) {
	c := NewCorpus()
	c.Add("tree.xml", FromTree(paperdata.Publications()))
	c.Add("store.xks", FromStore(store.Shred(paperdata.Publications(), analysis.New())))

	res, err := c.Search(context.Background(), NewRequest(paperdata.Q1, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDocument["tree.xml"] == 0 || res.PerDocument["store.xks"] == 0 {
		t.Fatalf("expected fragments from both documents, got %v", res.PerDocument)
	}
	if res.PerDocument["tree.xml"] != res.PerDocument["store.xks"] {
		t.Fatalf("tree and store shred the same document; fragment counts differ: %v", res.PerDocument)
	}
	byDoc := map[string][]CorpusFragment{}
	for _, f := range res.Fragments {
		byDoc[f.Document] = append(byDoc[f.Document], f)
	}
	for i, tf := range byDoc["tree.xml"] {
		sf := byDoc["store.xks"][i]
		if tf.Root != sf.Root || tf.Len() != sf.Len() {
			t.Fatalf("fragment %d: tree %s/%d nodes vs store %s/%d nodes",
				i, tf.Root, tf.Len(), sf.Root, sf.Len())
		}
		if sf.XML() == "" || sf.ASCII() == "" {
			t.Fatalf("store-backed fragment %d rendered empty", i)
		}
	}

	// Ranked + limited across the mixed corpus still materializes only the
	// selection, and store-backed fragments survive it.
	ranked, err := c.Search(context.Background(), NewRequest(paperdata.Q1, Options{Rank: true, Limit: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked.Fragments) != 2 {
		t.Fatalf("got %d fragments, want 2", len(ranked.Fragments))
	}
	for _, f := range ranked.Fragments {
		if f.XML() == "" {
			t.Fatalf("fragment %s from %s rendered empty", f.Root, f.Document)
		}
	}

	// SearchDocument still reaches the store-backed engine.
	one, err := c.SearchDocument(context.Background(), "store.xks", NewRequest(paperdata.Q1, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Fragments) == 0 {
		t.Fatal("no fragments from store-backed document")
	}
}

// TestCorpusRankedLimitedDeterministic runs the same ranked+limited search
// concurrently and repeatedly over a multi-worker corpus and asserts the
// streamed top-K merge always yields the same ordered result (run under
// -race in CI).
func TestCorpusRankedLimitedDeterministic(t *testing.T) {
	c := NewCorpus()
	for i := int64(0); i < 5; i++ {
		c.Add(fmt.Sprintf("doc%d.xml", i), crosscheckDBLPEngine(t, 10+i))
	}
	c.Workers = 4

	w := workload.DBLP()
	q, err := w.Expand(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: true, Limit: 4}

	signature := func(res *CorpusResult) string {
		s := ""
		for _, f := range res.Fragments {
			s += fmt.Sprintf("%s/%s/%.9f;", f.Document, f.Root, f.Score)
		}
		return s
	}
	base, err := c.Search(context.Background(), NewRequest(q, opts))
	if err != nil {
		t.Fatal(err)
	}
	want := signature(base)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := c.Search(context.Background(), NewRequest(q, opts))
				if err != nil {
					errs <- err
					return
				}
				if got := signature(res); got != want {
					errs <- fmt.Errorf("nondeterministic result:\n got %s\nwant %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
