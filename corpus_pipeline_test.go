package xks

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xks/internal/analysis"
	"xks/internal/paperdata"
	"xks/internal/store"
	"xks/internal/workload"
)

// TestCorpusWithStoreBackedEngines exercises a mixed corpus: one
// tree-backed document and one store-backed document (the paper's shredded
// relational layout) behind the same staged search path.
func TestCorpusWithStoreBackedEngines(t *testing.T) {
	c := NewCorpus()
	c.Add("tree.xml", FromTree(paperdata.Publications()))
	c.Add("store.xks", FromStore(store.Shred(paperdata.Publications(), analysis.New())))

	res, err := c.Search(context.Background(), NewRequest(paperdata.Q1, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDocument["tree.xml"] == 0 || res.PerDocument["store.xks"] == 0 {
		t.Fatalf("expected fragments from both documents, got %v", res.PerDocument)
	}
	if res.PerDocument["tree.xml"] != res.PerDocument["store.xks"] {
		t.Fatalf("tree and store shred the same document; fragment counts differ: %v", res.PerDocument)
	}
	byDoc := map[string][]CorpusFragment{}
	for _, f := range res.Fragments {
		byDoc[f.Document] = append(byDoc[f.Document], f)
	}
	for i, tf := range byDoc["tree.xml"] {
		sf := byDoc["store.xks"][i]
		if tf.Root != sf.Root || tf.Len() != sf.Len() {
			t.Fatalf("fragment %d: tree %s/%d nodes vs store %s/%d nodes",
				i, tf.Root, tf.Len(), sf.Root, sf.Len())
		}
		if sf.XML() == "" || sf.ASCII() == "" {
			t.Fatalf("store-backed fragment %d rendered empty", i)
		}
	}

	// Ranked + limited across the mixed corpus still materializes only the
	// selection, and store-backed fragments survive it.
	ranked, err := c.Search(context.Background(), NewRequest(paperdata.Q1, Options{Rank: true, Limit: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked.Fragments) != 2 {
		t.Fatalf("got %d fragments, want 2", len(ranked.Fragments))
	}
	for _, f := range ranked.Fragments {
		if f.XML() == "" {
			t.Fatalf("fragment %s from %s rendered empty", f.Root, f.Document)
		}
	}

	// SearchDocument still reaches the store-backed engine.
	one, err := c.SearchDocument(context.Background(), "store.xks", NewRequest(paperdata.Q1, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Fragments) == 0 {
		t.Fatal("no fragments from store-backed document")
	}
}

// TestCorpusFragmentsStreams pins the corpus-level streaming iterator: it
// yields the same fragments as Search in the same order, an early break
// materializes exactly the consumed prefix, and the trailer's cursor
// resumes after it — the tentpole late-materialization contract of the
// streaming results API.
func TestCorpusFragmentsStreams(t *testing.T) {
	c := NewCorpus()
	for i := int64(0); i < 5; i++ {
		c.Add(fmt.Sprintf("doc%d.xml", i), crosscheckDBLPEngine(t, 30+i))
	}
	c.Workers = 4
	w := workload.DBLP()
	q, err := w.Expand(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}

	for _, rank := range []bool{false, true} {
		full, err := c.Search(context.Background(), Request{Query: q, Rank: rank})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Fragments) < 4 {
			t.Skipf("query %q yields %d fragments; need a few to stream", q, len(full.Fragments))
		}

		var streamed []CorpusFragment
		for f, err := range c.Fragments(context.Background(), Request{Query: q, Rank: rank}) {
			if err != nil {
				t.Fatal(err)
			}
			streamed = append(streamed, f)
		}
		if len(streamed) != len(full.Fragments) {
			t.Fatalf("rank=%v: streamed %d fragments, Search returned %d", rank, len(streamed), len(full.Fragments))
		}
		for i := range streamed {
			if streamed[i].Document != full.Fragments[i].Document || streamed[i].Root != full.Fragments[i].Root {
				t.Fatalf("rank=%v fragment %d: streamed %s/%s vs %s/%s", rank, i,
					streamed[i].Document, streamed[i].Root, full.Fragments[i].Document, full.Fragments[i].Root)
			}
		}

		// Early break: exactly the consumed fragments are assembled — the
		// acceptance contract of the streaming API.
		before := corpusAssembled(c)
		n := 0
		seq, trailer := c.Stream(context.Background(), Request{Query: q, Rank: rank})
		for _, err := range seq {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 2 {
				break
			}
		}
		if assembled := corpusAssembled(c) - before; assembled != 2 {
			t.Fatalf("rank=%v: early break assembled %d fragments, want exactly 2", rank, assembled)
		}
		// The abandoned stream is resumable from its trailer.
		res := trailer()
		if res.Cursor == "" || res.NextOffset != 2 {
			t.Fatalf("rank=%v: abandoned stream Cursor=%q NextOffset=%d, want resumable at 2", rank, res.Cursor, res.NextOffset)
		}
		rest, err := c.Search(context.Background(), Request{Query: q, Rank: rank, Cursor: res.Cursor})
		if err != nil {
			t.Fatal(err)
		}
		if got := 2 + len(rest.Fragments); got != len(full.Fragments) {
			t.Fatalf("rank=%v: prefix + resume = %d fragments, want %d", rank, got, len(full.Fragments))
		}
	}

	// An unknown document filter surfaces through the iterator.
	var got error
	for _, err := range c.Fragments(context.Background(), Request{Query: q, Document: "absent.xml"}) {
		got = err
	}
	if !errors.Is(got, ErrUnknownDocument) {
		t.Fatalf("unknown document stream: err = %v, want ErrUnknownDocument", got)
	}
}

// TestCorpusSearchAssemblyCounts asserts exact assembly counts for the
// buffered fan-out across its selection shapes: materialization must run
// for precisely the returned page, never for candidates other documents
// already covered.
func TestCorpusSearchAssemblyCounts(t *testing.T) {
	c := NewCorpus()
	for i := int64(0); i < 5; i++ {
		c.Add(fmt.Sprintf("doc%d.xml", i), crosscheckDBLPEngine(t, 40+i))
	}
	c.Workers = 4
	// Pick the workload query with the most candidates, so every paging
	// shape below has room to overshoot if the fix regresses.
	w := workload.DBLP()
	queries, err := w.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	var (
		q     string
		total *Results
	)
	for _, cand := range queries {
		res, err := c.Search(context.Background(), Request{Query: cand})
		if err != nil {
			t.Fatal(err)
		}
		if total == nil || res.Stats.NumLCAs > total.Stats.NumLCAs {
			q, total = cand, res
		}
	}
	if total.Stats.NumLCAs < 8 {
		t.Skipf("richest query %q yields %d candidates; need several documents' worth", q, total.Stats.NumLCAs)
	}

	cases := []struct {
		name string
		req  Request
		want int
	}{
		{"ranked+limit", Request{Query: q, Rank: true, Limit: 3}, 3},
		{"ranked+limit+offset", Request{Query: q, Rank: true, Limit: 3, Offset: 2}, 3},
		{"unranked+limit", Request{Query: q, Limit: 4}, 4},
		{"unranked+limit satisfied by first docs", Request{Query: q, Limit: 2}, 2},
		{"ranked, no limit", Request{Query: q, Rank: true}, total.Stats.NumLCAs},
		{"best-effort ranked+limit", Request{Query: q, Rank: true, Limit: 3, Budget: BestEffort}, 3},
	}
	for _, tc := range cases {
		before := corpusAssembled(c)
		res, err := c.Search(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Fragments) != tc.want {
			t.Fatalf("%s: %d fragments, want %d", tc.name, len(res.Fragments), tc.want)
		}
		if assembled := int(corpusAssembled(c) - before); assembled != tc.want {
			t.Errorf("%s: assembled %d fragments for a %d-fragment page (of %d candidates)",
				tc.name, assembled, tc.want, total.Stats.NumLCAs)
		}
	}
}

// TestCorpusRankedLimitedDeterministic runs the same ranked+limited search
// concurrently and repeatedly over a multi-worker corpus and asserts the
// streamed top-K merge always yields the same ordered result (run under
// -race in CI).
func TestCorpusRankedLimitedDeterministic(t *testing.T) {
	c := NewCorpus()
	for i := int64(0); i < 5; i++ {
		c.Add(fmt.Sprintf("doc%d.xml", i), crosscheckDBLPEngine(t, 10+i))
	}
	c.Workers = 4

	w := workload.DBLP()
	q, err := w.Expand(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: true, Limit: 4}

	signature := func(res *CorpusResult) string {
		s := ""
		for _, f := range res.Fragments {
			s += fmt.Sprintf("%s/%s/%.9f;", f.Document, f.Root, f.Score)
		}
		return s
	}
	base, err := c.Search(context.Background(), NewRequest(q, opts))
	if err != nil {
		t.Fatal(err)
	}
	want := signature(base)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := c.Search(context.Background(), NewRequest(q, opts))
				if err != nil {
					errs <- err
					return
				}
				if got := signature(res); got != want {
					errs <- fmt.Errorf("nondeterministic result:\n got %s\nwant %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
