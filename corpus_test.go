package xks

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xks/internal/paperdata"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	c.Add("publications", FromTree(paperdata.Publications()))
	c.Add("team", FromTree(paperdata.Team()))
	return c
}

func TestCorpusSearchMergesDocuments(t *testing.T) {
	c := testCorpus(t)
	// "keyword" matches only the publications document.
	res, err := c.Search(context.Background(), NewRequest("liu keyword", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 {
		t.Fatalf("fragments = %d", len(res.Fragments))
	}
	for _, f := range res.Fragments {
		if f.Document != "publications" {
			t.Errorf("fragment from %s", f.Document)
		}
	}
	if res.PerDocument["publications"] != 2 || res.PerDocument["team"] != 0 {
		t.Errorf("per-document counts = %v", res.PerDocument)
	}
}

func TestCorpusSearchBothDocuments(t *testing.T) {
	c := testCorpus(t)
	// "name" matches via labels in both documents.
	res, err := c.Search(context.Background(), NewRequest("name", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDocument["publications"] == 0 || res.PerDocument["team"] == 0 {
		t.Errorf("per-document counts = %v", res.PerDocument)
	}
	// Unranked order: document insertion order.
	if res.Fragments[0].Document != "publications" {
		t.Errorf("first fragment from %s", res.Fragments[0].Document)
	}
}

func TestCorpusRankAcrossDocuments(t *testing.T) {
	c := testCorpus(t)
	res, err := c.Search(context.Background(), NewRequest("name", Options{Rank: true}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Fragments); i++ {
		if res.Fragments[i].Score > res.Fragments[i-1].Score+1e-12 {
			t.Fatalf("scores not descending at %d", i)
		}
	}
}

func TestCorpusLimitAfterMerge(t *testing.T) {
	c := testCorpus(t)
	res, err := c.Search(context.Background(), NewRequest("name", Options{Limit: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 {
		t.Errorf("limit ignored: %d", len(res.Fragments))
	}
}

func TestCorpusUnsearchableQueryFails(t *testing.T) {
	c := testCorpus(t)
	if _, err := c.Search(context.Background(), NewRequest("the of", Options{})); err == nil {
		t.Error("stop-word query should fail")
	}
}

func TestCorpusAddReplaces(t *testing.T) {
	c := testCorpus(t)
	c.Add("team", FromTree(paperdata.Publications()))
	if c.Len() != 2 {
		t.Errorf("Len = %d after replacement", c.Len())
	}
	if got := c.Names(); len(got) != 2 || got[0] != "publications" || got[1] != "team" {
		t.Errorf("Names = %v", got)
	}
	if c.Engine("team") == nil || c.Engine("absent") != nil {
		t.Error("Engine lookup broken")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.xml", `<a><t>alpha keyword</t></a>`)
	write("b.xml", `<b><t>beta keyword</t></b>`)
	write("ignored.txt", `not xml`)
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	c, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	res, err := c.Search(context.Background(), NewRequest("keyword", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDocument["a.xml"] == 0 || res.PerDocument["b.xml"] == 0 {
		t.Errorf("per-document = %v", res.PerDocument)
	}

	if _, err := LoadDir(filepath.Join(dir, "sub")); err == nil {
		t.Error("empty dir should fail")
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should fail")
	}

	write("broken.xml", `<unclosed>`)
	if _, err := LoadDir(dir); err == nil {
		t.Error("broken document should fail loading")
	}
}

func TestCorpusUnrankedOrderDeterministic(t *testing.T) {
	c := testCorpus(t)
	c.Workers = 4
	baseline, err := c.Search(context.Background(), NewRequest("name", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	// Fragments must follow document insertion order, then document order
	// within each document — on every run, regardless of worker timing.
	seenTeam := false
	for _, f := range baseline.Fragments {
		if f.Document == "team" {
			seenTeam = true
		} else if seenTeam {
			t.Fatalf("insertion order violated: %v", baseline.Fragments)
		}
	}
	for run := 0; run < 20; run++ {
		res, err := c.Search(context.Background(), NewRequest("name", Options{}))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Fragments) != len(baseline.Fragments) {
			t.Fatalf("run %d: %d fragments, want %d", run, len(res.Fragments), len(baseline.Fragments))
		}
		for i := range res.Fragments {
			if res.Fragments[i].Document != baseline.Fragments[i].Document ||
				res.Fragments[i].Root != baseline.Fragments[i].Root {
				t.Fatalf("run %d: order differs at %d", run, i)
			}
		}
	}
}

func TestCorpusSearchAggregatesStats(t *testing.T) {
	c := testCorpus(t)
	res, err := c.Search(context.Background(), NewRequest("name", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Keywords) != 1 || res.Stats.Keywords[0] != "name" {
		t.Errorf("keywords = %v", res.Stats.Keywords)
	}
	if res.Stats.NumLCAs != len(res.Fragments) {
		t.Errorf("NumLCAs = %d, fragments = %d", res.Stats.NumLCAs, len(res.Fragments))
	}
	if res.Stats.KeywordNodes == 0 || res.Stats.Elapsed <= 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestCorpusSearchDocument(t *testing.T) {
	c := testCorpus(t)
	res, err := c.SearchDocument(context.Background(), "publications", NewRequest("liu keyword", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 || res.Fragments[0].Document != "publications" {
		t.Fatalf("fragments = %+v", res.Fragments)
	}
	if res.PerDocument["publications"] != 2 {
		t.Errorf("PerDocument = %v", res.PerDocument)
	}
	if res.Stats.NumLCAs != 2 {
		t.Errorf("NumLCAs = %d", res.Stats.NumLCAs)
	}
	if _, err := c.SearchDocument(context.Background(), "absent", NewRequest("liu", Options{})); !errors.Is(err, ErrUnknownDocument) {
		t.Errorf("unknown document error = %v", err)
	}
}

func TestCorpusDocumentsAndGeneration(t *testing.T) {
	c := testCorpus(t)
	docs := c.Documents()
	if len(docs) != 2 || docs[0].Name != "publications" || docs[1].Name != "team" {
		t.Fatalf("documents = %+v", docs)
	}
	for _, d := range docs {
		if d.Words == 0 || d.Nodes == 0 {
			t.Errorf("document %s missing sizes: %+v", d.Name, d)
		}
	}
	// Generation is a snapshot-vector hash, not a counter: assert it
	// changes on every structural mutation (monotonicity is not part of the
	// contract — staleness detection is exact-token matching plus the
	// snapshot registry).
	g0 := c.Generation()
	c.Add("extra", FromTree(paperdata.Team()))
	g1 := c.Generation()
	if g1 == g0 {
		t.Error("Add must change the generation")
	}
	if err := c.Engine("extra").AppendXML("0", `<member><name>new person</name></member>`); err != nil {
		t.Fatal(err)
	}
	g2 := c.Generation()
	if g2 == g1 {
		t.Error("AppendXML on a member engine must change the corpus generation")
	}
	// Replacing an engine gets a fresh registration nonce, so the token
	// can never revisit a value the replaced document's cache entries or
	// cursors were tagged with — even though the engine contents (and thus
	// its own version token) are identical.
	c.Add("extra", FromTree(paperdata.Team()))
	g3 := c.Generation()
	if g3 == g2 || g3 == g1 || g3 == g0 {
		t.Errorf("Generation after replacement = %d revisits an earlier token (%d %d %d)", g3, g0, g1, g2)
	}
}

func TestCorpusConcurrentSafety(t *testing.T) {
	c := testCorpus(t)
	c.Workers = 4
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := c.Search(context.Background(), NewRequest("name", Options{Rank: true}))
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
