package xks

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
)

// Cursor is an opaque pagination token. A result whose set extends past the
// returned page carries the cursor of the following page; passing it back
// in Request.Cursor resumes the scroll exactly where it stopped. The token
// encodes everything that makes resumption safe under mutation:
//
//   - the snapshot version it was issued at — resuming re-pins that exact
//     snapshot, so a cursor survives concurrent appends and compactions
//     (the page boundary cannot shift: the cursor keeps reading the state
//     it was issued against) and fails as ErrStaleCursor only when the
//     snapshot is no longer resolvable (a renumbering rebuild, document
//     replacement, or corpus registry eviction);
//   - the resume position (the offset of the next unreturned fragment,
//     plus the document/sequence key of the last one yielded);
//   - a fingerprint of the order-defining request fields, so a cursor
//     cannot be replayed against a different query (ErrCursorMismatch).
//
// Clients must treat the token as opaque: its layout may change between
// versions, and decoding guarantees apply only within one process
// generation. The zero value ("") means "first page".
type Cursor string

// Sentinel cursor errors, matched with errors.Is. Serving layers map them
// to status codes: a malformed or mismatched cursor is a client error
// (400), a stale one is 410 Gone — the page boundary no longer exists and
// the scroll must restart from the first page.
var (
	// ErrBadCursor reports a token that does not decode.
	ErrBadCursor = errors.New("malformed cursor")
	// ErrStaleCursor reports a cursor whose issuing snapshot can no longer
	// be resolved. Tail appends and compactions do NOT stale a cursor —
	// resumption re-pins the snapshot it was issued at; what does is a
	// renumbering rebuild (a non-tail append), replacing or removing a
	// corpus document, or the corpus snapshot registry evicting the entry.
	ErrStaleCursor = errors.New("stale cursor")
	// ErrCursorMismatch reports a cursor replayed against a request whose
	// order-defining fields (query, document filter, algorithm, semantics,
	// ranking) differ from the one it was issued for.
	ErrCursorMismatch = errors.New("cursor issued for a different request")
)

// cursorVersion is the first byte of every encoded token; bump it when the
// payload layout changes so old tokens fail as ErrBadCursor instead of
// misparsing.
const cursorVersion = 2

// cursorState is the decoded payload of a Cursor.
type cursorState struct {
	// gen is the version token of the snapshot the cursor was issued at:
	// an engine's packed (rebuild generation, node count) pair, or a
	// corpus's snapshot-vector hash.
	gen uint64
	// offset is the resume position: the selection-order index of the
	// first fragment the next page should return. Because a cursor is
	// honored only at the exact generation it was issued at (nothing
	// mutated in between), the offset resumes the deterministic order
	// exactly.
	doc, seq int // resume key: last yielded candidate (diagnostics)
	offset   int
	// fp fingerprints the order-defining request fields.
	fp uint64
}

// encodeCursor serializes the state as a base64url token.
func encodeCursor(s cursorState) Cursor {
	buf := make([]byte, 0, 1+5*binary.MaxVarintLen64)
	buf = append(buf, cursorVersion)
	buf = binary.AppendUvarint(buf, s.gen)
	buf = binary.AppendUvarint(buf, uint64(s.offset))
	buf = binary.AppendUvarint(buf, uint64(s.doc))
	buf = binary.AppendUvarint(buf, uint64(s.seq))
	buf = binary.AppendUvarint(buf, s.fp)
	return Cursor(base64.RawURLEncoding.EncodeToString(buf))
}

// decode parses the token; every malformation comes back wrapping
// ErrBadCursor.
func (c Cursor) decode() (cursorState, error) {
	raw, err := base64.RawURLEncoding.DecodeString(string(c))
	if err != nil {
		return cursorState{}, fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	if len(raw) == 0 || raw[0] != cursorVersion {
		return cursorState{}, fmt.Errorf("%w: unknown version", ErrBadCursor)
	}
	raw = raw[1:]
	var s cursorState
	fields := []*uint64{&s.gen, nil, nil, nil, &s.fp}
	ints := []*int{nil, &s.offset, &s.doc, &s.seq, nil}
	for i := range fields {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return cursorState{}, fmt.Errorf("%w: truncated payload", ErrBadCursor)
		}
		raw = raw[n:]
		if fields[i] != nil {
			*fields[i] = v
		} else {
			if v > uint64(maxInt) {
				return cursorState{}, fmt.Errorf("%w: position overflows int", ErrBadCursor)
			}
			*ints[i] = int(v)
		}
	}
	if len(raw) != 0 {
		return cursorState{}, fmt.Errorf("%w: trailing bytes", ErrBadCursor)
	}
	return s, nil
}

const maxInt = int(^uint(0) >> 1)

// ResumePoint returns a copy of the envelope re-pointed to resume after
// the first n fragments of its page, with Fragments dropped (the consumer
// already received them): Cursor and NextOffset are recomputed for
// position req.Offset+n. A serving layer replaying a buffered page to a
// streaming consumer that stopped early uses this to hand back an honest
// trailer — the original page's cursor would skip the fragments the
// consumer never saw.
//
// The re-pointed cursor is stamped with the generation the page itself was
// issued at (decoded from its own cursor) whenever the page carries one,
// never the caller's newer snapshot: re-stamping an old page boundary with
// a fresh generation would launder a stale cursor into one that validates
// — the silent page shift cursors exist to prevent. Pages without a cursor
// (the set was exhausted when issued) fall back to gen. n at or past the
// page end keeps the page's own cursor; n == 0 returns no cursor (the
// consumer consumed nothing, so resuming is reissuing the request). req
// must be the resolved request that produced r.
func (r *Results) ResumePoint(n int, req Request, gen uint64) *Results {
	out := *r
	out.Fragments = nil
	if n >= len(r.Fragments) {
		return &out
	}
	if st, err := r.Cursor.decode(); err == nil {
		gen = st.gen
	}
	out.NextOffset, out.Cursor = -1, ""
	pageCursor(&out.NextOffset, &out.Cursor, req.clampPaging(), gen, n, r.Stats.NumLCAs, 0, 0, false)
	return &out
}

// truncationCursor stamps a resume-here cursor onto an envelope truncated
// before selection finished (a BestEffort deadline expiring in the plan or
// candidate stage): the total is unknown, but the resume position is
// exactly where this page started, so the scroll stays resumable instead
// of looking exhausted.
func truncationCursor(next *int, cursor *Cursor, req Request, gen uint64) {
	*next = req.Offset
	*cursor = encodeCursor(cursorState{gen: gen, offset: req.Offset, fp: req.fingerprint()})
}

// pageCursor stamps the next-page cursor (and the deprecated NextOffset
// shim) onto a result envelope: yielded fragments were returned starting at
// req.Offset, total is the candidate count before paging, and last is the
// final candidate materialized (nil when none were). A cursor is issued
// whenever unreturned results remain — including a truncated page that
// yielded nothing, so a best-effort client can retry from the same spot.
func pageCursor(next *int, cursor *Cursor, req Request, gen uint64, yielded, total int, lastDoc, lastSeq int, truncated bool) {
	n := req.Offset + yielded
	if n >= total || (yielded == 0 && !truncated) {
		return
	}
	*next = n
	*cursor = encodeCursor(cursorState{
		gen:    gen,
		offset: n,
		doc:    lastDoc,
		seq:    lastSeq,
		fp:     req.fingerprint(),
	})
}
