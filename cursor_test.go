package xks

// Tests for the opaque generation-aware cursor: token round-trips,
// validation failures (malformed / mismatched / stale), precedence over the
// deprecated Offset shim, and full cursor walks matching offset walks.

import (
	"context"
	"errors"
	"testing"

	"xks/internal/paperdata"
)

func TestCursorRoundTrip(t *testing.T) {
	want := cursorState{gen: 42, offset: 17, doc: 3, seq: 9, fp: 0xdeadbeefcafe}
	got, err := encodeCursor(want).decode()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	// Extremes survive.
	want = cursorState{gen: ^uint64(0), offset: maxInt, doc: 0, seq: maxInt, fp: 0}
	if got, err = encodeCursor(want).decode(); err != nil || got != want {
		t.Fatalf("extreme round trip: got %+v err %v, want %+v", got, err, want)
	}
}

func TestCursorDecodeRejectsGarbage(t *testing.T) {
	for _, tok := range []Cursor{"not base64!!", "", "AA", "zzzz", Cursor([]byte{0xff, 0x01})} {
		if _, err := tok.decode(); !errors.Is(err, ErrBadCursor) {
			t.Errorf("decode(%q): err = %v, want ErrBadCursor", tok, err)
		}
	}
	// A valid token with trailing bytes is rejected, not half-parsed.
	tok := encodeCursor(cursorState{gen: 1, offset: 2, fp: 3}) + "AA"
	if _, err := tok.decode(); !errors.Is(err, ErrBadCursor) {
		t.Errorf("trailing bytes: err = %v, want ErrBadCursor", err)
	}
}

func TestResolveCursorValidation(t *testing.T) {
	req := Request{Query: "xml keyword", Rank: true, Limit: 5}
	tok := encodeCursor(cursorState{gen: 7, offset: 10, fp: req.fingerprint()})

	// Empty cursor: the request passes through untouched.
	if got, err := req.ResolveCursor(7); err != nil || got != req {
		t.Fatalf("no cursor: %+v, %v", got, err)
	}

	// Matching generation and fingerprint: the offset folds in, the
	// cursor clears.
	withTok := req
	withTok.Cursor = tok
	got, err := withTok.ResolveCursor(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 10 || got.Cursor != "" {
		t.Fatalf("resolved: Offset=%d Cursor=%q, want 10 / empty", got.Offset, got.Cursor)
	}
	// The cursor wins over a raw Offset passed alongside it.
	withBoth := withTok
	withBoth.Offset = 3
	if got, err := withBoth.ResolveCursor(7); err != nil || got.Offset != 10 {
		t.Fatalf("cursor precedence: Offset=%d err=%v, want 10", got.Offset, err)
	}

	// Stale generation.
	if _, err := withTok.ResolveCursor(8); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("stale: err = %v, want ErrStaleCursor", err)
	}

	// Fingerprint mismatch: same token, different query / knobs.
	for _, other := range []Request{
		{Query: "different query", Rank: true, Limit: 5, Cursor: tok},
		{Query: "xml keyword", Rank: false, Limit: 5, Cursor: tok},
		{Query: "xml keyword", Rank: true, Semantics: SLCAOnly, Cursor: tok},
		{Query: "xml keyword", Rank: true, Document: "other.xml", Cursor: tok},
	} {
		if _, err := other.ResolveCursor(7); !errors.Is(err, ErrCursorMismatch) {
			t.Errorf("mismatch %+v: err = %v, want ErrCursorMismatch", other.Query, err)
		}
	}
	// The window and deadline are not part of the fingerprint: a client
	// may change the page size or timeout mid-scroll.
	resized := Request{Query: "  XML   Keyword ", Rank: true, Limit: 50, Timeout: 1, Budget: BestEffort, Cursor: tok}
	if _, err := resized.ResolveCursor(7); err != nil {
		t.Errorf("resized page: err = %v, want nil", err)
	}

	// Malformed token.
	bad := req
	bad.Cursor = "%%%"
	if _, err := bad.ResolveCursor(7); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("malformed: err = %v, want ErrBadCursor", err)
	}
}

// TestEngineCursorWalkMatchesOffsetWalk pages one engine's result set to
// exhaustion by cursor and asserts it tiles exactly like the deprecated
// offset walk and the unpaged search.
func TestEngineCursorWalkMatchesOffsetWalk(t *testing.T) {
	e, queries := figure5Engine(t)
	q := richestQuery(t, e, queries)
	for _, rank := range []bool{false, true} {
		full, err := e.Search(context.Background(), Request{Query: q, Rank: rank})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Fragments) < 3 {
			t.Skipf("query %q yields %d fragments; need a few pages", q, len(full.Fragments))
		}
		if full.Cursor != "" {
			t.Fatalf("unpaged search issued cursor %q", full.Cursor)
		}

		var pages []*Fragment
		req := Request{Query: q, Rank: rank, Limit: 2}
		for {
			res, err := e.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, res.Fragments...)
			if (res.Cursor == "") != (res.NextOffset < 0) {
				t.Fatalf("cursor %q disagrees with NextOffset %d", res.Cursor, res.NextOffset)
			}
			if res.Cursor == "" {
				break
			}
			req.Cursor = res.Cursor
		}
		if len(pages) != len(full.Fragments) {
			t.Fatalf("rank=%v: cursor walk yielded %d fragments, full search %d", rank, len(pages), len(full.Fragments))
		}
		for i := range pages {
			if pages[i].Root != full.Fragments[i].Root {
				t.Fatalf("rank=%v fragment %d: %s vs %s", rank, i, pages[i].Root, full.Fragments[i].Root)
			}
		}
	}
}

// TestCorpusCursorWalk pages the streamed corpus merge by cursor, including
// through the document-filtered route, and pins staleness after a mutation.
func TestCorpusCursorWalk(t *testing.T) {
	c, q := corpusForCancel(t)
	full, err := c.Search(context.Background(), Request{Query: q, Rank: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Fragments) < 4 {
		t.Skipf("query %q yields %d fragments; need a few pages", q, len(full.Fragments))
	}

	var pages []CorpusFragment
	req := Request{Query: q, Rank: true, Limit: 3}
	for {
		res, err := c.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, res.Fragments...)
		if res.Cursor == "" {
			break
		}
		req.Cursor = res.Cursor
	}
	if len(pages) != len(full.Fragments) {
		t.Fatalf("cursor walk yielded %d fragments, full search %d", len(pages), len(full.Fragments))
	}
	for i := range pages {
		if pages[i].Document != full.Fragments[i].Document || pages[i].Root != full.Fragments[i].Root {
			t.Fatalf("fragment %d: %s/%s vs %s/%s", i,
				pages[i].Document, pages[i].Root, full.Fragments[i].Document, full.Fragments[i].Root)
		}
	}

	// The document-filtered route issues corpus-generation cursors that
	// resume through either entrypoint.
	name := c.Names()[0]
	p1, err := c.Search(context.Background(), Request{Query: q, Document: name, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cursor != "" {
		if _, err := c.Search(context.Background(), Request{Query: q, Document: name, Limit: 1, Cursor: p1.Cursor}); err != nil {
			t.Fatalf("filtered cursor resume: %v", err)
		}
		if _, err := c.SearchDocument(context.Background(), name, Request{Query: q, Limit: 1, Cursor: p1.Cursor}); err != nil {
			t.Fatalf("SearchDocument cursor resume: %v", err)
		}
	}

	// Adding a new document between pages does NOT stale the cursor: it
	// re-pins the snapshot vector it was issued against, so the scroll
	// continues over exactly the documents its first page saw — the late
	// document is invisible to it.
	page1, err := c.Search(context.Background(), Request{Query: q, Rank: true, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if page1.Cursor == "" {
		t.Fatal("page 1 issued no cursor")
	}
	c.Add("late.xml", FromTree(paperdata.Publications()))
	pinned, err := c.Search(context.Background(), Request{Query: q, Rank: true, Limit: 3, Cursor: page1.Cursor})
	if err != nil {
		t.Fatalf("post-Add page 2: err = %v, want snapshot-pinned resume", err)
	}
	for _, f := range pinned.Fragments {
		if f.Document == "late.xml" {
			t.Fatalf("pinned scroll surfaced the late document: %+v", f)
		}
	}
	if _, ok := pinned.PerDocument["late.xml"]; ok {
		t.Fatal("pinned scroll counted the late document")
	}

	// Replacing a document the cursor pinned destroys its snapshot: the
	// cursor dies loudly instead of silently scrolling different data.
	c.Add(c.Names()[0], FromTree(paperdata.Publications()))
	if _, err := c.Search(context.Background(), Request{Query: q, Rank: true, Limit: 3, Cursor: page1.Cursor}); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("post-replace page 2: err = %v, want ErrStaleCursor", err)
	}
}

// TestAppendXMLEngineCursorLifecycle covers the single-engine mutation
// path: a tail append lands in the delta index without renumbering, so a
// pre-append cursor resumes against its pinned snapshot (the appended
// content invisible to it); only a non-tail append — a renumbering rebuild
// — makes the cursor die loudly.
func TestAppendXMLEngineCursorLifecycle(t *testing.T) {
	e, err := LoadString(`<bib><paper><title>xml search</title></paper><paper><title>search trees</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := e.Search(context.Background(), Request{Query: "search", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if page1.Cursor == "" {
		t.Fatalf("page 1 issued no cursor (%d fragments of %d)", len(page1.Fragments), page1.Stats.NumLCAs)
	}
	// The cursor works while nothing mutates...
	if _, err := e.Search(context.Background(), Request{Query: "search", Limit: 1, Cursor: page1.Cursor}); err != nil {
		t.Fatal(err)
	}
	// ...survives a tail append, serving the pre-append page 2 with the
	// fresh paper invisible...
	if err := e.AppendXML("0", `<paper><title>fresh search result</title></paper>`); err != nil {
		t.Fatal(err)
	}
	pinned, err := e.Search(context.Background(), Request{Query: "search", Limit: 1, Cursor: page1.Cursor})
	if err != nil {
		t.Fatalf("post-append: err = %v, want snapshot-pinned resume", err)
	}
	if pinned.Stats.NumLCAs != 2 {
		t.Fatalf("pinned scroll sees %d candidates, want the pre-append 2", pinned.Stats.NumLCAs)
	}
	// ...and dies after a non-tail append renumbers the document.
	if err := e.AppendXML("0.0", `<note>search aside</note>`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(context.Background(), Request{Query: "search", Limit: 1, Cursor: page1.Cursor}); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("post-rebuild: err = %v, want ErrStaleCursor", err)
	}
}
