package xks

// Crosscheck of the delta read path: an engine that grew through tail
// appends (base index + delta segments) must serve byte-identical results
// to an engine freshly built from the final document — same roots, scores,
// node lists, XML and ASCII renderings — across all three algorithms ×
// both semantics, ranked and limited, BEFORE and AFTER compaction folds
// the segments into a new base. Same at the corpus layer, where one
// document grew and another did not.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"xks/internal/paperdata"
)

const deltaBaseXML = `<bib>` +
	`<paper><title>xml keyword search</title><author><name>liu</name></author></paper>` +
	`<paper><title>relaxed tightest fragments</title><author><name>kong</name></author></paper>` +
	`</bib>`

var deltaSnippets = []string{
	`<paper><title>keyword proximity search</title><author><name>chen</name></author></paper>`,
	`<paper><title>xml fragments ranking</title><author><name>liu</name><name>kong</name></author></paper>`,
	`<paper><title>tightest search trees</title><note>keyword note on xml</note></paper>`,
}

var deltaQueries = []string{
	"keyword search",
	"liu",
	"xml fragments",
	"kong keyword",
}

// grownEngine appends every snippet under the root — each a tail append
// landing in its own delta segment.
func grownEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := LoadString(deltaBaseXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range deltaSnippets {
		if err := e.AppendXML("0", s); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// rebuiltEngine builds the reference: the final document parsed in one go.
func rebuiltEngine(t *testing.T) *Engine {
	t.Helper()
	final := strings.Replace(deltaBaseXML, "</bib>", strings.Join(deltaSnippets, "")+"</bib>", 1)
	e, err := LoadString(final)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func requireSameResults(t *testing.T, phase string, ref, grown *Engine) {
	t.Helper()
	for _, q := range deltaQueries {
		for _, opts := range crosscheckOptions() {
			label := fmt.Sprintf("%s %q %s/%s rank=%v limit=%d",
				phase, q, opts.Algorithm, opts.Semantics, opts.Rank, opts.Limit)
			want, err := ref.Search(context.Background(), NewRequest(q, opts))
			if err != nil {
				t.Fatalf("%s: rebuilt: %v", label, err)
			}
			got, err := grown.Search(context.Background(), NewRequest(q, opts))
			if err != nil {
				t.Fatalf("%s: grown: %v", label, err)
			}
			if !reflect.DeepEqual(want.Stats.Keywords, got.Stats.Keywords) {
				t.Fatalf("%s: keywords %v vs %v", label, want.Stats.Keywords, got.Stats.Keywords)
			}
			if want.Stats.KeywordNodes != got.Stats.KeywordNodes || want.Stats.NumLCAs != got.Stats.NumLCAs {
				t.Fatalf("%s: stats (%d,%d) vs (%d,%d)", label,
					want.Stats.KeywordNodes, want.Stats.NumLCAs,
					got.Stats.KeywordNodes, got.Stats.NumLCAs)
			}
			requireSameFragments(t, label, want.Fragments, got.Fragments)
		}
	}
}

func TestDeltaEngineMatchesRebuilt(t *testing.T) {
	ref := rebuiltEngine(t)
	grown := grownEngine(t)
	if di := grown.DeltaInfo(); di.Segments != int64(len(deltaSnippets)) || di.Postings == 0 {
		t.Fatalf("grown engine delta state = %+v, want %d live segments", di, len(deltaSnippets))
	}
	requireSameResults(t, "pre-compaction", ref, grown)

	folded, err := grown.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if folded != len(deltaSnippets) {
		t.Fatalf("Compact folded %d segments, want %d", folded, len(deltaSnippets))
	}
	if di := grown.DeltaInfo(); di.Segments != 0 || di.Postings != 0 || di.Compactions != 1 {
		t.Fatalf("post-compaction delta state = %+v", di)
	}
	requireSameResults(t, "post-compaction", ref, grown)

	// Compacting an already-compacted engine is a no-op.
	if n, err := grown.Compact(context.Background()); err != nil || n != 0 {
		t.Fatalf("idle Compact = (%d, %v), want (0, nil)", n, err)
	}
}

// TestDeltaCompareMatchesRebuilt extends the guarantee to the Compare
// surface (per-algorithm fragment counts and ratios), which reads through
// the same snapshot.
func TestDeltaCompareMatchesRebuilt(t *testing.T) {
	ref := rebuiltEngine(t)
	grown := grownEngine(t)
	for _, q := range deltaQueries {
		want, err := ref.Compare(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		got, err := grown.Compare(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		if want.NumRTFs != got.NumRTFs || want.Ratios != got.Ratios {
			t.Fatalf("Compare(%q): rebuilt %+v vs grown %+v", q, want.Ratios, got.Ratios)
		}
	}
}

func TestDeltaCorpusMatchesRebuilt(t *testing.T) {
	build := func(grown bool) *Corpus {
		c := NewCorpus()
		var e *Engine
		if grown {
			e = grownEngine(t)
		} else {
			e = rebuiltEngine(t)
		}
		c.Add("grow.xml", e)
		c.Add("static.xml", FromTree(paperdata.Publications()))
		return c
	}
	ref, live := build(false), build(true)

	check := func(phase string) {
		t.Helper()
		queries := append([]string{paperdata.Q1, paperdata.QLiuKeyword}, deltaQueries...)
		for _, q := range queries {
			for _, opts := range crosscheckOptions() {
				label := fmt.Sprintf("%s corpus %q %s/%s rank=%v limit=%d",
					phase, q, opts.Algorithm, opts.Semantics, opts.Rank, opts.Limit)
				want, err := ref.Search(context.Background(), NewRequest(q, opts))
				if err != nil {
					t.Fatalf("%s: rebuilt: %v", label, err)
				}
				got, err := live.Search(context.Background(), NewRequest(q, opts))
				if err != nil {
					t.Fatalf("%s: grown: %v", label, err)
				}
				if !reflect.DeepEqual(want.PerDocument, got.PerDocument) {
					t.Fatalf("%s: PerDocument %v vs %v", label, want.PerDocument, got.PerDocument)
				}
				if len(want.Fragments) != len(got.Fragments) {
					t.Fatalf("%s: %d vs %d fragments", label, len(want.Fragments), len(got.Fragments))
				}
				wf := make([]*Fragment, len(want.Fragments))
				gf := make([]*Fragment, len(got.Fragments))
				for i := range want.Fragments {
					if want.Fragments[i].Document != got.Fragments[i].Document {
						t.Fatalf("%s fragment %d: document %s vs %s", label, i,
							want.Fragments[i].Document, got.Fragments[i].Document)
					}
					wf[i] = want.Fragments[i].Fragment
					gf[i] = got.Fragments[i].Fragment
				}
				requireSameFragments(t, label, wf, gf)
			}
		}
	}

	check("pre-compaction")
	folded, err := live.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if folded != len(deltaSnippets) {
		t.Fatalf("corpus Compact folded %d segments, want %d", folded, len(deltaSnippets))
	}
	check("post-compaction")
}
