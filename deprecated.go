package xks

// The pre-Request entrypoints, kept as thin wrappers over the
// context-aware API. They exist so callers written against the old
// (query string, opts Options) signatures keep compiling and — more
// importantly — so the crosscheck tests can pin that the Request path is
// byte-identical to the behavior those signatures always had. New code
// (including everything in this repo outside the crosscheck tests; CI greps
// for it) should build a Request and call the context-aware methods.
//
// The streaming results API deprecates two more spellings without breaking
// them:
//
//   - Request.Offset / Result.NextOffset / Results.NextOffset — the raw
//     integer pagination pair. Offsets silently shift when AppendXML or
//     Corpus.Add mutate the index mid-scroll; the opaque generation-aware
//     Request.Cursor / Results.Cursor pair fails loudly (ErrStaleCursor)
//     instead. The integer fields keep working as a shim, a non-empty
//     Cursor wins over Offset, and CI grep-gates new in-repo uses of the
//     deprecated fields outside the shim internals and tests.
//   - CorpusResult — now an alias of the shared Results envelope
//     (corpus.go); existing code compiles unchanged.

import "context"

// SearchOpts runs Search with context.Background() and the Request
// equivalent of opts.
//
// Deprecated: use Search with a context.Context and a Request.
func (e *Engine) SearchOpts(queryText string, opts Options) (*Result, error) {
	return e.Search(context.Background(), NewRequest(queryText, opts))
}

// CompareOpts runs Compare with context.Background() and the Request
// equivalent of opts.
//
// Deprecated: use Compare with a context.Context and a Request.
func (e *Engine) CompareOpts(queryText string, opts Options) (*Comparison, error) {
	return e.Compare(context.Background(), NewRequest(queryText, opts))
}

// SearchOpts runs Search with context.Background() and the Request
// equivalent of opts.
//
// Deprecated: use Corpus.Search with a context.Context and a Request.
func (c *Corpus) SearchOpts(queryText string, opts Options) (*CorpusResult, error) {
	return c.Search(context.Background(), NewRequest(queryText, opts))
}

// SearchDocumentOpts runs SearchDocument with context.Background() and the
// Request equivalent of opts.
//
// Deprecated: use Corpus.SearchDocument with a context.Context and a
// Request.
func (c *Corpus) SearchDocumentOpts(name, queryText string, opts Options) (*CorpusResult, error) {
	return c.SearchDocument(context.Background(), name, NewRequest(queryText, opts))
}
