// Package xks is an XML keyword search engine implementing the ValidRTF
// algorithm of "Retrieving Meaningful Relaxed Tightest Fragments for XML
// Keyword Search" (Kong, Gilleron, Lemay — EDBT 2009), together with the
// revised MaxMatch baseline it is evaluated against.
//
// Given an XML document and a keyword query, the engine returns meaningful
// fragments: one Relaxed Tightest Fragment (RTF) per interesting LCA node
// (the ELCA semantics), pruned so that every kept node is a valid
// contributor to its parent — label-aware and content-aware filtering that
// avoids MaxMatch's false positive and redundancy problems.
//
// Basic use:
//
//	engine, err := xks.Load(file)
//	res, err := engine.Search(ctx, xks.Request{Query: "xml keyword search"})
//	for _, f := range res.Fragments {
//	    fmt.Println(f.ASCII())
//	}
//
// Every search takes a context.Context and a Request: cancelling the
// context (or setting Request.Timeout) aborts the pipeline mid-stream, and
// Request.Limit/Offset page through large result sets.
package xks

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xks/internal/analysis"
	"xks/internal/concurrent"
	"xks/internal/delta"
	"xks/internal/dewey"
	"xks/internal/exec"
	"xks/internal/fault"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/planner"
	"xks/internal/prune"
	"xks/internal/query"
	"xks/internal/rank"
	"xks/internal/rtf"
	"xks/internal/snippet"
	"xks/internal/store"
	"xks/internal/trace"
	"xks/internal/xmltree"
)

// Algorithm selects the pruning mechanism.
type Algorithm int

const (
	// ValidRTF is the paper's valid-contributor filtering (the default).
	ValidRTF Algorithm = iota
	// MaxMatch is the contributor filtering of Liu & Chen (VLDB 2008),
	// revised to operate on RTFs.
	MaxMatch
	// RawRTF disables pruning and returns whole RTFs.
	RawRTF
)

func (a Algorithm) String() string {
	switch a {
	case ValidRTF:
		return "ValidRTF"
	case MaxMatch:
		return "MaxMatch"
	case RawRTF:
		return "RawRTF"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

func (a Algorithm) mode() prune.Mode {
	switch a {
	case MaxMatch:
		return prune.Contributor
	case RawRTF:
		return prune.NoPruning
	default:
		return prune.ValidContributor
	}
}

// Semantics selects which LCA nodes root the fragments.
type Semantics int

const (
	// AllLCA roots one fragment at every interesting LCA node (the ELCA
	// semantics of the paper's getLCA — the default).
	AllLCA Semantics = iota
	// SLCAOnly restricts fragments to smallest-LCA roots, the semantics of
	// the original MaxMatch.
	SLCAOnly
)

func (s Semantics) String() string {
	if s == SLCAOnly {
		return "SLCAOnly"
	}
	return "AllLCA"
}

// Strategy selects how the LCA stage of a search is evaluated
// (Request.Strategy). Unlike Algorithm and Semantics — which change the
// answer — every strategy returns byte-identical fragments; the knob only
// decides how the work is done, and the crosscheck tests pin the
// equivalence.
type Strategy int

const (
	// Auto (the default) engages the cost-based planner: per-term posting
	// statistics order the k-way merge rarest-first, enable subtree
	// galloping in the RTF dispatch, and pick between IndexedEager and
	// ScanMerge from the estimated costs (internal/planner).
	Auto Strategy = iota
	// IndexedEager pins the paper's Indexed Lookup Eager algorithm for
	// SLCA evaluation: the rarest list drives indexed lookups into the
	// others. Runs in query order — the pre-planner behavior.
	IndexedEager
	// ScanMerge pins the scan-eager evaluation: every posting list streams
	// through the k-way merge. Runs in query order.
	ScanMerge
)

func (s Strategy) String() string {
	switch s {
	case IndexedEager:
		return "IndexedEager"
	case ScanMerge:
		return "ScanMerge"
	default:
		return "Auto"
	}
}

// plannerStrategy maps the public knob onto the planner's enum.
func (s Strategy) plannerStrategy() planner.Strategy {
	switch s {
	case IndexedEager:
		return planner.IndexedEager
	case ScanMerge:
		return planner.ScanMerge
	default:
		return planner.Auto
	}
}

// publicStrategy maps a resolved planner strategy back onto the public knob.
func publicStrategy(s planner.Strategy) Strategy {
	switch s {
	case planner.IndexedEager:
		return IndexedEager
	case planner.ScanMerge:
		return ScanMerge
	default:
		return Auto
	}
}

// Options configures one search in the pre-Request API.
//
// Deprecated: build a Request instead (NewRequest converts). Options
// remains the parameter of the deprecated *Opts entrypoints, which exist so
// pre-Request callers and the crosscheck tests keep pinning byte-identical
// behavior.
type Options struct {
	// Algorithm is the pruning mechanism (default ValidRTF).
	Algorithm Algorithm
	// Semantics picks the fragment roots (default AllLCA).
	Semantics Semantics
	// ExactContent replaces the (min,max) cID approximation of rule 2(b)
	// with exact tree-content-set comparison (ablation switch).
	ExactContent bool
	// Rank orders fragments by descending relevance score instead of
	// document order.
	Rank bool
	// Limit truncates the fragment list when positive.
	Limit int
}

// Engine is a concurrency-safe search engine over one XML document: a
// document source (the parsed tree, or the shredded store) plus its
// inverted keyword index, published as an atomically swapped delta head
// (base index + append segments; internal/delta). Reads resolve a pinned
// snapshot at entry and never block; writes (AppendXML, Compact) serialize
// on an internal mutex and publish a new head.
type Engine struct {
	tree *xmltree.Tree // nil for store-backed engines
	st   *store.Store  // nil for tree-backed engines
	src  docSource
	an   *analysis.Analyzer
	snip *snippet.Generator

	// head is the current index state; mu serializes the writers that
	// replace it. counters carries the delta subsystem's observability
	// state (pinned snapshots, compactions).
	head     atomic.Pointer[delta.Head]
	mu       sync.Mutex
	counters delta.Counters

	// assembled counts materialized fragments over the engine's lifetime —
	// the observable half of the late-materialization contract (selection
	// is cheap; only selected candidates are assembled). Tests and
	// benchmarks assert on it.
	assembled atomic.Uint64
}

// view is one query's resolved read state: a pinned snapshot plus the
// scorer whose IDF weights reflect exactly the nodes that snapshot sees.
// Callers must release it exactly once when the query finishes.
type view struct {
	snap   *delta.Snapshot
	scorer *rank.Scorer
}

func (v *view) release() { v.snap.Release() }

// viewAt resolves and pins the snapshot of head h at n nodes.
func (e *Engine) viewAt(h *delta.Head, n int) (*view, error) {
	snap, err := h.At(n, &e.counters)
	if err != nil {
		return nil, err
	}
	return &view{snap: snap, scorer: rank.NewScorerFrom(snap)}, nil
}

// currentView pins the engine's newest published state. Resolving a head
// at its own length cannot fail.
func (e *Engine) currentView() *view {
	h := e.head.Load()
	v, err := e.viewAt(h, h.Tab.Len())
	if err != nil {
		// Unreachable: a head is always a valid boundary of itself.
		panic(fmt.Sprintf("xks: head rejected its own snapshot: %v", err))
	}
	return v
}

// viewAtVersion resolves and pins the snapshot a packed version token
// names, failing with ErrStaleCursor when the token is from another
// rebuild generation (IDs were renumbered) or past the current head.
func (e *Engine) viewAtVersion(version uint64) (*view, error) {
	h := e.head.Load()
	g, n := delta.UnpackVersion(version)
	if g != h.RebuildGen {
		return nil, fmt.Errorf("%w: index was rebuilt since the cursor was issued; restart from the first page", ErrStaleCursor)
	}
	v, err := e.viewAt(h, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v; restart from the first page", ErrStaleCursor, err)
	}
	return v, nil
}

// resolveRequest resolves the request's read snapshot: cursorless requests
// pin the newest head; a cursor re-pins the exact snapshot it was issued
// against (same rebuild generation, same node count), which stays
// resolvable across later appends and compactions — only a renumbering
// rebuild (or document replacement) makes it ErrStaleCursor.
func (e *Engine) resolveRequest(req Request) (Request, *view, error) {
	req = req.clampPaging()
	if req.Cursor == "" {
		return req, e.currentView(), nil
	}
	st, err := req.Cursor.decode()
	if err != nil {
		return req, nil, err
	}
	if st.fp != req.fingerprint() {
		return req, nil, ErrCursorMismatch
	}
	v, err := e.viewAtVersion(st.gen)
	if err != nil {
		return req, nil, err
	}
	req.Offset = st.offset
	req.Cursor = ""
	return req, v, nil
}

// Load parses an XML document and builds the engine.
func Load(r io.Reader) (*Engine, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromTree(t), nil
}

// LoadString builds an engine from an XML string.
func LoadString(s string) (*Engine, error) {
	return Load(strings.NewReader(s))
}

// LoadFile builds an engine from an XML file on disk.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// FromTree builds an engine over an already-parsed tree. The tree must not
// be mutated afterwards except through the engine's own AppendXML.
func FromTree(t *xmltree.Tree) *Engine {
	an := analysis.New()
	ix := index.Build(t, an)
	e := &Engine{
		tree: t,
		src:  newTreeSource(t, an),
		an:   an,
		snip: snippet.NewGenerator(an, snippet.Options{}),
	}
	e.head.Store(&delta.Head{Tab: ix.Table(), Base: ix})
	return e
}

// FromStore builds an engine over a shredded store — the paper's actual
// architecture, where searches run off the three relational tables without
// the original document. Fragment rendering shows the element skeleton and
// content words (the store does not retain raw text).
func FromStore(st *store.Store) *Engine {
	an := analysis.New()
	ix := st.BuildIndex(an)
	e := &Engine{
		st:   st,
		src:  &storeSource{st: st},
		an:   an,
		snip: snippet.NewGenerator(an, snippet.Options{}),
	}
	e.head.Store(&delta.Head{Tab: ix.Table(), Base: ix})
	return e
}

// StoreMode selects how OpenStoreMode backs the store's memory.
type StoreMode int

const (
	// StoreAuto maps v3 files read-only where the platform supports it and
	// falls back to the heap otherwise; v1/v2 files load row-backed.
	StoreAuto StoreMode = iota
	// StoreMmap requires a memory-mapped v3 file and fails otherwise.
	StoreMmap
	// StoreHeap forces the heap path even when mmap is available.
	StoreHeap
)

func (m StoreMode) storeMode() store.OpenMode {
	switch m {
	case StoreMmap:
		return store.OpenMmap
	case StoreHeap:
		return store.OpenHeap
	default:
		return store.OpenAuto
	}
}

// OpenStore loads a store file written by store.Save / cmd/xkshred and
// builds an engine over it. v3 files open mmap-backed where the platform
// supports it (StoreAuto); use OpenStoreMode to pin the backing.
func OpenStore(path string) (*Engine, error) {
	return OpenStoreMode(path, StoreAuto)
}

// OpenStoreMode is OpenStore with an explicit memory-backing mode.
func OpenStoreMode(path string, mode StoreMode) (*Engine, error) {
	st, err := store.OpenFile(path, store.OpenOptions{Mode: mode.storeMode()})
	if err != nil {
		return nil, err
	}
	return FromStore(st), nil
}

// StoreInfo describes how a store-backed engine's data is resident.
type StoreInfo struct {
	// Mode is "rows" (v1/v2 heap structures), "v3-heap" (v3 sections in one
	// heap buffer), "v3-mmap" (v3 sections in a read-only file mapping), or
	// "memory" for tree-backed engines.
	Mode string
	// MappedBytes is the size of the read-only file mapping, 0 unless
	// Mode is "v3-mmap".
	MappedBytes int64
	// FileBytes is the on-disk size of the opened store file, 0 for
	// engines built in memory.
	FileBytes int64
}

// StoreInfo reports the engine's store backing (Mode "memory" for
// tree-backed engines).
func (e *Engine) StoreInfo() StoreInfo {
	if e.st == nil {
		return StoreInfo{Mode: "memory"}
	}
	return StoreInfo{Mode: e.st.Mode(), MappedBytes: e.st.MappedBytes(), FileBytes: e.st.FileBytes()}
}

// Close releases the engine's store mapping, if any. After Close the engine
// must not be used: a mapped store's index and fragments view unmapped
// memory. Engines without a file mapping close as a no-op.
func (e *Engine) Close() error {
	if e.st != nil {
		return e.st.Close()
	}
	return nil
}

// Tree exposes the underlying document tree (read-only); nil when the
// engine is store-backed.
func (e *Engine) Tree() *xmltree.Tree { return e.tree }

// Index exposes the underlying base inverted index (read-only). Postings
// appended since the last compaction live in delta segments on top of it;
// query paths resolve snapshots instead of reading the base directly.
func (e *Engine) Index() *index.Index { return e.head.Load().Base }

// Generation reports the engine's current version token: the packed
// (rebuild generation, node count) pair of the newest published head
// (delta.PackVersion). It grows with every append, is unchanged by
// compaction, and jumps to a fresh rebuild generation when an append
// renumbers IDs. Caching layers (internal/service) compare tokens to
// detect stale cached results; cursors embed the token to re-pin their
// issuing snapshot.
func (e *Engine) Generation() uint64 { return e.head.Load().Version() }

// DeltaInfo summarizes the delta subsystem's state for one engine (or,
// summed, a corpus): live write-side segments and postings, the
// pinned-snapshot refcount, and compaction totals. Exposed on /metrics as
// the xks_delta_* and xks_snapshots_pinned / xks_compactions_total /
// xks_compaction_seconds families.
type DeltaInfo struct {
	Segments          int64
	Postings          int64
	PinnedSnapshots   int64
	Compactions       int64
	CompactionSeconds float64
}

// DeltaInfo reports the engine's delta-subsystem state: live segment and
// posting gauges from the published head, pinned-snapshot and compaction
// totals from the engine's counters.
func (e *Engine) DeltaInfo() DeltaInfo {
	h := e.head.Load()
	info := DeltaInfo{
		Segments:          int64(len(h.Segs)),
		PinnedSnapshots:   e.counters.Pinned(),
		Compactions:       e.counters.Compactions(),
		CompactionSeconds: e.counters.CompactionSeconds(),
	}
	for _, sg := range h.Segs {
		info.Postings += int64(sg.Count)
	}
	return info
}

// Compact folds the engine's delta segments into a fresh base index and
// publishes it, returning how many segments were folded. The version token
// does not change — no IDs move, no postings appear or disappear — so
// cached results stay valid and outstanding cursors resume seamlessly;
// snapshots pinned on the old base keep reading it until released. Safe to
// run concurrently with reads; writes serialize behind it.
func (e *Engine) Compact(ctx context.Context) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.head.Load()
	if len(h.Segs) == 0 {
		return 0, nil
	}
	start := time.Now()
	folded := delta.Fold(h)
	// Chaos injection point: a compactor crash after folding but before
	// publishing must leave the published head untouched — the fold is
	// garbage-collected, nothing is half-applied.
	if err := fault.Inject(ctx, fault.PointCompact, ""); err != nil {
		return 0, err
	}
	e.head.Store(&delta.Head{RebuildGen: h.RebuildGen, Tab: h.Tab, Base: folded})
	e.counters.RecordCompaction(time.Since(start))
	return len(h.Segs), nil
}

// StageStats breaks one search's wall-clock time down by pipeline stage
// (plan → candidates → select → materialize; see internal/exec). The
// timings are recorded on every search — no tracing required, and the
// struct is a value, so the breakdown is allocation-free. For corpus
// searches Plan is folded into Candidates: per-document planning runs
// inside the concurrent candidate fan-out, so the two are not separable at
// the corpus level (the per-document split is still visible in the trace
// span tree when the request is traced). Materialize accumulates the time
// spent assembling fragments, which for streaming consumers excludes the
// time the consumer held the iterator between fragments.
type StageStats struct {
	Plan        time.Duration
	Candidates  time.Duration
	Select      time.Duration
	Materialize time.Duration
}

// TruncationReason says why a BestEffort page was cut short — the
// machine-readable counterpart of the Truncated flag, so clients and
// dashboards can distinguish a deadline that expired during the candidate
// fan-out (empty page, unknown total) from one that expired between
// materializations (partial page).
type TruncationReason string

const (
	// TruncNone: the page was not truncated.
	TruncNone TruncationReason = ""
	// TruncCandidates: the BestEffort deadline expired during the plan or
	// candidate stage, before selection finished. The total is unknown and
	// the cursor resumes from the page's own start. Single-engine pages are
	// empty; corpus pages salvage the documents whose candidate stage
	// finished in time, so the page holds a best-effort selection over that
	// partial corpus (re-running the cursor recomputes the true page).
	TruncCandidates TruncationReason = "deadline-candidates"
	// TruncMaterialize: the BestEffort deadline expired during the
	// materialize stage. The page holds every fragment that finished in
	// time and the cursor resumes after the last one.
	TruncMaterialize TruncationReason = "deadline-materialize"
)

// Stats summarizes one search execution.
type Stats struct {
	// Keywords are the normalized query keywords in mask-bit order.
	Keywords []string
	// KeywordNodes is the total number of keyword-node postings consulted.
	KeywordNodes int
	// NumLCAs is the number of fragment roots (|A| in §5.1).
	NumLCAs int
	// Selected is the number of candidates selected into the pagination
	// window — the fragments the search materializes when fully drained.
	Selected int
	// Elapsed is the wall-clock time of the LCA + RTF + prune pipeline
	// (excluding index construction, matching the paper's measurement).
	Elapsed time.Duration
	// Stages is the per-stage breakdown of Elapsed.
	Stages StageStats
}

// Result is the outcome of one single-document search: the same envelope
// shape as the corpus-level Results (fragments, cursor, truncation marker,
// stats), minus the per-document bookkeeping.
type Result struct {
	Query string
	// Request echoes the executed request with the cursor resolved: Offset
	// holds the effective window start even when the caller paged by
	// Cursor.
	Request   Request
	Fragments []*Fragment
	Stats     Stats
	// Cursor is the opaque resume token of the next page when the result
	// set extends past this one, and empty when it is exhausted.
	Cursor Cursor
	// Truncated reports that a BestEffort deadline expired mid-pipeline:
	// Fragments holds everything finished in time, and Cursor resumes
	// from the first fragment that was not.
	Truncated bool
	// Truncation says which stage the deadline expired in when Truncated
	// is set (TruncNone otherwise).
	Truncation TruncationReason
	// NextOffset is the Request.Offset of the next page when the result
	// set extends past this one, and -1 when it is exhausted.
	//
	// Deprecated: resume with Cursor, which survives index mutation
	// checks; NextOffset remains as the raw-offset shim.
	NextOffset int
}

// Search runs the staged pipeline (plan → candidates → select →
// materialize; see internal/exec) and returns the meaningful fragments.
// Query terms may carry XSearch-style label predicates ("title:xml",
// "author:"); see internal/query. A term that matches nothing yields an
// empty result (no fragment can cover the query), not an error; queries
// with no searchable term at all fail with ErrEmptyQuery.
//
// ctx cancellation (and req.Timeout) aborts the pipeline mid-stream with
// ctx.Err(): the candidate stage checks the context every few thousand
// merge events, materialization checks it between fragments. With Rank and
// Limit set, selection runs before materialization: only the candidates of
// the requested page are pruned and assembled into fragments; NextOffset
// reports where the following page starts. req.Document is ignored — a
// single engine holds one document (see Corpus for the filterable
// collection).
func (e *Engine) Search(ctx context.Context, req Request) (*Result, error) {
	seq, trailer := e.stream(ctx, req, true)
	for _, err := range seq {
		if err != nil {
			return nil, err
		}
	}
	return trailer(), nil
}

// Fragments is the streaming variant of Search: it runs plan, candidates
// and selection eagerly, then materializes fragments one by one as the
// iterator is consumed — in the same order Search returns them. Breaking
// out of the loop early leaves the remaining candidates unassembled, so a
// caller that stops after the first few fragments pays pruning and assembly
// for exactly those. A non-nil error is yielded once (with a nil fragment)
// and ends the sequence; ctx is checked before every fragment. Callers that
// also need the envelope (cursor, stats, truncation) use Stream.
func (e *Engine) Fragments(ctx context.Context, req Request) iter.Seq2[*Fragment, error] {
	// The trailer is discarded, so the stream does not retain yielded
	// fragments: consuming an unbounded result set stays O(1) server-side.
	seq, _ := e.stream(ctx, req, false)
	return seq
}

// Stream begins a streamed search: the fragment iterator plus a trailer.
// The iterator behaves exactly like Fragments — selection runs eagerly,
// materialization lazily, an early break skips pruneRTF and assembly for
// every unvisited candidate. Once the loop ends (drained, broken, errored,
// or truncated), the trailer func returns the Result envelope for the
// fragments actually yielded: stats, the Truncated marker, and the Cursor
// resuming after the last yielded fragment — so an abandoned stream is
// still resumable. The yielded fragments themselves are not retained in
// the trailer (collect them from the iterator if a buffered page is
// needed), so consuming an unbounded result set stays O(1) server-side.
// The trailer's value is unspecified while the iterator is still running.
func (e *Engine) Stream(ctx context.Context, req Request) (iter.Seq2[*Fragment, error], func() *Result) {
	return e.stream(ctx, req, false)
}

// stream is the shared core of Fragments, Stream and Search. keep selects
// whether yielded fragments accumulate in the trailer envelope: Search
// drains with keep=true (its Result carries the page); the public
// iterators pass false so streaming consumers retain nothing.
func (e *Engine) stream(ctx context.Context, req Request, keep bool) (iter.Seq2[*Fragment, error], func() *Result) {
	res := &Result{Query: req.Query, NextOffset: -1}
	seq := func(yield func(*Fragment, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		req, v, err := e.resolveRequest(req)
		if err != nil {
			yield(nil, err)
			return
		}
		// gen is the snapshot's version: cursors issued from this page
		// re-pin exactly this state, whatever is appended meanwhile.
		gen := v.snap.Version()
		release := v.release
		// Chaos injection point: a scripted snapshot-pin fault makes the
		// engine skip the release — the refcount-leak scenario the chaos
		// suite proves the pinned gauge detects.
		if ferr := fault.Inject(ctx, fault.PointSnapshotPin, ""); ferr != nil {
			release = func() {}
		}
		defer release()
		res.Request = req
		ctx, cancel := req.applyTimeout(ctx)
		defer cancel()

		// One child span per stage when the request is traced; a nil span
		// (the untraced common case) makes every call below a free no-op.
		sp := trace.SpanFromContext(ctx)

		// Chaos injection point: a scripted store-read fault fails the
		// search here, before planning touches the document source.
		if err := fault.Inject(ctx, fault.PointStoreRead, ""); err != nil {
			yield(nil, err)
			return
		}

		planSp := sp.Child("plan")
		planStart := time.Now()
		p, err := e.planAt(v, req.Query)
		if err == nil {
			p.Decision = e.decideAt(v, req, p)
		}
		res.Stats.Stages.Plan = time.Since(planStart)
		res.Stats.Keywords = p.Keywords
		planSp.SetInt("keywordNodes", int64(p.KeywordNodes()))
		planSp.SetInt("terms", int64(len(p.Keywords)))
		if err == nil {
			stampPlan(planSp, p)
		}
		stampSnapshot(planSp, v, &e.counters)
		planSp.End()
		if err != nil {
			var nm *index.ErrNoMatch
			if errors.As(err, &nm) {
				return
			}
			yield(nil, err)
			return
		}
		res.Stats.KeywordNodes = p.KeywordNodes()

		start := time.Now()
		defer func() { res.Stats.Elapsed = time.Since(start) }()
		params := e.paramsAt(v, req)
		candSp := sp.Child("candidates")
		cands, err := safeCandidates(trace.ContextWithSpan(ctx, candSp), "", p, params, 0)
		res.Stats.Stages.Candidates = time.Since(start)
		candSp.End()
		if err != nil {
			if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
				// Truncated before selection finished: the total is
				// unknown, but the page is still resumable from its own
				// start — an empty cursor here would read as "exhausted"
				// and silently end the scroll.
				res.Truncated = true
				res.Truncation = TruncCandidates
				truncationCursor(&res.NextOffset, &res.Cursor, req, gen)
				return
			}
			yield(nil, err)
			return
		}
		total := len(cands)
		selSp := sp.Child("select")
		selStart := time.Now()
		selected := exec.Select(cands, params)
		res.Stats.Stages.Select = time.Since(selStart)
		selSp.SetInt("candidates", int64(total))
		selSp.SetInt("selected", int64(len(selected)))
		selSp.End()
		res.Stats.NumLCAs = total
		res.Stats.Selected = len(selected)

		matSp := sp.Child("materialize")
		yielded, lastDoc, lastSeq := 0, 0, 0
		var prunedNodes int64
		defer func() {
			matSp.SetInt("fragments", int64(yielded))
			matSp.SetInt("prunedNodes", prunedNodes)
			matSp.End()
			pageCursor(&res.NextOffset, &res.Cursor, req, gen, yielded, total, lastDoc, lastSeq, res.Truncated)
		}()
		for _, c := range selected {
			if err := ctx.Err(); err != nil {
				if req.Budget == BestEffort && errors.Is(err, context.DeadlineExceeded) {
					res.Truncated = true
					res.Truncation = TruncMaterialize
					return
				}
				yield(nil, err)
				return
			}
			matStart := time.Now()
			f, merr := e.materializeSafe(ctx, "", c, p, params)
			res.Stats.Stages.Materialize += time.Since(matStart)
			if merr != nil {
				if req.Budget == BestEffort && errors.Is(merr, context.DeadlineExceeded) {
					res.Truncated = true
					res.Truncation = TruncMaterialize
					return
				}
				yield(nil, merr)
				return
			}
			prunedNodes += int64(f.Pruned)
			if keep {
				res.Fragments = append(res.Fragments, f)
			}
			yielded, lastDoc, lastSeq = yielded+1, c.Doc, c.Seq
			if !yield(f, nil) {
				return
			}
		}
	}
	return seq, func() *Result { return res }
}

// planAt runs the planning stage over one resolved snapshot: the query
// parsed and resolved to ID posting sets over the snapshot's node table.
// On *index.ErrNoMatch the returned plan still carries the display
// keywords.
func (e *Engine) planAt(v *view, queryText string) (exec.Plan, error) {
	words, idfWords, sets, err := e.resolveIDSetsAt(v, queryText)
	return exec.Plan{Keywords: words, IDFWords: idfWords, Sets: sets}, err
}

// decideAt resolves the planner decision for one planned query: fixed
// strategies map straight through (query order, no galloping — the baseline
// behavior), Auto consults the snapshot's statistics and the calibrated
// cost model. ELCA semantics always evaluates via the stack merge — there
// is no indexed variant — so the resolved strategy is normalized to
// ScanMerge there, keeping explain output and cache keys honest.
func (e *Engine) decideAt(v *view, req Request, p exec.Plan) planner.Decision {
	var d planner.Decision
	if req.Strategy != Auto {
		d = planner.Fixed(req.Strategy.plannerStrategy())
	} else {
		sizes := make([]int, len(p.Sets))
		for i, s := range p.Sets {
			sizes[i] = len(s)
		}
		d = planner.Decide(sizes, v.snap.Stats(), planner.Default)
	}
	if req.Semantics != SLCAOnly {
		d.Strategy = planner.ScanMerge
	}
	return d
}

// ResolveStrategy reports the strategy the planner resolves req to against
// the engine's current statistics. Caching layers fold this into their keys
// so a statistics refresh that flips the plan cannot replay a page cached
// under a different algorithm. Planning errors (unparseable query, no
// postings) fall back to the requested strategy — such requests error or
// come back empty before any algorithm runs.
func (e *Engine) ResolveStrategy(req Request) Strategy {
	v := e.currentView()
	defer v.release()
	var p exec.Plan
	if req.Strategy == Auto {
		var err error
		p, err = e.planAt(v, req.Query)
		if err != nil {
			return req.Strategy
		}
	}
	return publicStrategy(e.decideAt(v, req, p).Strategy)
}

// stampPlan annotates a plan span with the planner's decision — the chosen
// algorithm, the merge order, and the model's cost estimates, next to the
// actual event counters the downstream stages report.
func stampPlan(sp *trace.Span, p exec.Plan) {
	d := p.Decision
	sp.SetStr("algorithm", d.Strategy.String())
	sp.SetStr("termOrder", d.OrderString(len(p.Sets)))
	sp.SetInt("estScan", int64(d.EstScan))
	sp.SetInt("estIndexed", int64(d.EstIndexed))
}

// stampSnapshot annotates a plan span with the resolved snapshot's shape —
// which state the query is reading (version, visible nodes), how much
// write-side delta it merges, and the engine's compaction count — next to
// the planner decision.
func stampSnapshot(sp *trace.Span, v *view, c *delta.Counters) {
	sp.SetInt("snapshotVersion", int64(v.snap.Version()))
	sp.SetInt("snapshotNodes", int64(v.snap.NumNodes()))
	sp.SetInt("deltaSegments", int64(v.snap.Segments()))
	sp.SetInt("deltaPostings", int64(v.snap.DeltaPostings()))
	sp.SetInt("compactions", c.Compactions())
}

// paramsAt maps the public request onto pipeline parameters, closing over
// the resolved snapshot's node table and scorer plus the engine's document
// source.
func (e *Engine) paramsAt(v *view, req Request) exec.Params {
	tab := v.snap.Table()
	scorer := v.scorer
	return exec.Params{
		Tab:      tab,
		SLCAOnly: req.Semantics == SLCAOnly,
		Mode:     req.Algorithm.mode(),
		Prune:    prune.Options{ExactContent: req.ExactContent},
		Rank:     req.Rank,
		Limit:    req.Limit,
		Offset:   req.Offset,
		Score: func(root nid.ID, events []lca.IDEvent, words []string) float64 {
			return scorer.ScoreIDs(tab, root, events, words)
		},
		Incremental: scorer.Incremental,
		// A ranked, limited search materializes only one page: skip
		// per-candidate event lists and hydrate the selected few lazily.
		DeferEvents: req.Rank && req.Limit > 0,
		LabelOf:     e.src.labelOfID,
		ContentOf:   e.src.contentOfID,
	}
}

// safeCandidates runs the candidate stage under panic isolation and the
// chaos harness's candidates injection point: a panicking merge (or an
// injected fault) surfaces as this stage's error — a *PanicError wrapping
// ErrInternal for panics — instead of unwinding through the iterator into
// the caller. label is the document name for corpus searches, "" for
// single-engine ones.
func safeCandidates(ctx context.Context, label string, p exec.Plan, params exec.Params, doc int) (cands []*exec.Candidate, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = concurrent.Recovered(r)
		}
	}()
	if ferr := fault.Inject(ctx, fault.PointCandidates, label); ferr != nil {
		return nil, ferr
	}
	return exec.Candidates(ctx, p, params, doc)
}

// materializeSafe runs materialize under panic isolation and the chaos
// harness's materialize injection point: one poisoned candidate degrades
// into a structured error (a *PanicError wrapping ErrInternal) for this
// search instead of crashing the process — materialization runs inside
// iterator sequences where no http.Server recovery applies. The fragment
// assembly itself never consults ctx, so callers salvaging a truncated page
// may pass an already-expired context.
func (e *Engine) materializeSafe(ctx context.Context, label string, c *exec.Candidate, p exec.Plan, params exec.Params) (f *Fragment, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = concurrent.Recovered(r)
		}
	}()
	if ferr := fault.Inject(ctx, fault.PointMaterialize, label); ferr != nil {
		return nil, ferr
	}
	return e.materialize(c, p, params), nil
}

// searchCandidates runs the plan and candidate stages only, leaving
// selection and materialization to the caller (Corpus.Search merges
// candidates across documents before materializing). An unmatchable
// keyword yields an empty candidate list, not an error, mirroring Search;
// doc tags the candidates for corpus merges. deferEvents forces the
// score-without-events candidate stage regardless of req's own paging
// fields — corpus searches zero per-document Limit but still materialize
// only the merged top-K page. The returned Params are the ones the
// candidates were generated under; materialization must reuse them.
//
// version pins the snapshot the stages read: 0 means the newest head, any
// other value re-pins the exact state a corpus-level cursor was issued
// against. The returned release func unpins the snapshot; it is non-nil
// exactly when the error is nil, and the caller must invoke it after
// materializing — the Params close over snapshot state. On error the pin
// is already released internally (the corpus fan-out drops partial
// outputs, so a pin travelling inside an error path would leak).
func (e *Engine) searchCandidates(ctx context.Context, req Request, doc int, deferEvents bool, version uint64) (exec.Plan, exec.Params, []*exec.Candidate, func(), error) {
	var v *view
	if version == 0 {
		v = e.currentView()
	} else {
		var err error
		v, err = e.viewAtVersion(version)
		if err != nil {
			return exec.Plan{}, exec.Params{}, nil, nil, err
		}
	}
	params := e.paramsAt(v, req)
	if deferEvents && req.Rank {
		params.DeferEvents = true
	}
	sp := trace.SpanFromContext(ctx)
	planSp := sp.Child("plan")
	p, err := e.planAt(v, req.Query)
	if err == nil {
		p.Decision = e.decideAt(v, req, p)
	}
	planSp.SetInt("keywordNodes", int64(p.KeywordNodes()))
	planSp.SetInt("terms", int64(len(p.Keywords)))
	if err == nil {
		stampPlan(planSp, p)
	}
	stampSnapshot(planSp, v, &e.counters)
	planSp.End()
	if err != nil {
		var nm *index.ErrNoMatch
		if errors.As(err, &nm) {
			return p, params, nil, v.release, nil
		}
		v.release()
		return p, params, nil, nil, err
	}
	cands, err := exec.Candidates(ctx, p, params, doc)
	if err != nil {
		v.release()
		return p, params, nil, nil, err
	}
	return p, params, cands, v.release, nil
}

// resolveIDSetsAt turns the query text into per-term ID posting lists over
// one snapshot's node table. Plain keywords read straight off the merged
// base+delta lists (shared slices where no delta touches the term); label
// predicates filter postings through the document source's labels. It
// returns the display strings, the words used for IDF scoring, and the
// sets D1..Dk.
func (e *Engine) resolveIDSetsAt(v *view, queryText string) (display, idfWords []string, sets [][]nid.ID, err error) {
	terms, err := query.Parse(queryText, e.an)
	if err != nil {
		return nil, nil, nil, err
	}
	display = make([]string, len(terms))
	for i, t := range terms {
		display[i] = t.String()
	}
	idfWords = make([]string, len(terms))
	sets = make([][]nid.ID, len(terms))
	for i, t := range terms {
		word := t.Keyword
		if word == "" {
			word = e.an.Normalize(t.Label)
			if word == "" {
				// Label normalizes to nothing (stop word / punctuation):
				// nothing can match.
				return display, nil, nil, &index.ErrNoMatch{Word: t.Raw}
			}
		}
		idfWords[i] = word
		postings := v.snap.LookupIDs(word)
		if t.Label != "" {
			var filtered []nid.ID
			for _, id := range postings {
				if t.MatchesLabel(e.src.labelOfID(id)) {
					filtered = append(filtered, id)
				}
			}
			postings = filtered
		}
		if len(postings) == 0 {
			return display, nil, nil, &index.ErrNoMatch{Word: t.Raw}
		}
		sets[i] = postings
	}
	return display, idfWords, sets, nil
}

// resolveSets is the Dewey-code view of resolveIDSetsAt over the newest
// state, serving the reference/eager paths and stage benchmarks. Codes are
// zero-copy views into the node table.
func (e *Engine) resolveSets(queryText string) (display, idfWords []string, sets [][]dewey.Code, err error) {
	v := e.currentView()
	defer v.release()
	display, idfWords, idSets, err := e.resolveIDSetsAt(v, queryText)
	if err != nil {
		return display, idfWords, nil, err
	}
	tab := v.snap.Table()
	sets = make([][]dewey.Code, len(idSets))
	for i, s := range idSets {
		cs := make([]dewey.Code, len(s))
		for j, id := range s {
			cs[j] = tab.Code(id)
		}
		sets[i] = cs
	}
	return display, idfWords, sets, nil
}

func (e *Engine) labelOf(c dewey.Code) string { return e.src.labelOf(c) }

func (e *Engine) contentOf(c dewey.Code) []string { return e.src.contentOf(c) }

// materialize runs the materialization stage for one selected candidate:
// pruneRTF (via exec.Materialize) followed by node and string assembly. It
// is the only place fragments are built, so e.assembled counts exactly the
// selected candidates. Everything runs on node IDs: keyword-node masks come
// from a two-pointer merge of the (sorted) kept IDs and keyword events, and
// Dewey codes surface only as zero-copy views rendered into the public
// FragmentNode strings.
func (e *Engine) materialize(c *exec.Candidate, p exec.Plan, params exec.Params) *Fragment {
	e.assembled.Add(1)
	if c.RTF.KeywordNodes == nil && c.Roots != nil {
		// The candidate stage deferred event materialization
		// (score-without-events); hydrate this selected candidate's event
		// list by replaying the dispatch inside its subtree window.
		hydrated := *c
		hydrated.RTF = &rtf.IDRTF{
			Root:         c.RTF.Root,
			KeywordNodes: rtf.EventsFor(params.Tab, c.RTF.Root, c.Roots, p.Sets),
		}
		c = &hydrated
	}
	kept := exec.Materialize(c, params)
	tab := params.Tab
	rootCode := tab.Code(c.RTF.Root)
	f := &Fragment{
		Root:      rootCode.String(),
		RootLabel: e.src.labelOfID(c.RTF.Root),
		IsSLCA:    c.IsSLCA,
		Score:     c.Score,
		Pruned:    kept.Visited - len(kept.Kept),
		rootCode:  rootCode,
		kept:      kept.Kept,
		src:       e.src,
		words:     p.IDFWords,
		snip:      e.snip,
	}
	events := c.RTF.KeywordNodes
	j := 0
	f.Nodes = make([]FragmentNode, 0, len(kept.KeptIDs))
	var buf []byte // scratch for Dewey strings
	for i, id := range kept.KeptIDs {
		code := kept.Kept[i]
		buf = code.AppendString(buf[:0])
		fn := FragmentNode{
			Dewey: string(buf),
			Label: e.src.labelOfID(id),
			Text:  e.src.nodeTextID(id),
			Level: code.Level(),
		}
		for j < len(events) && events[j].ID < id {
			j++
		}
		if j < len(events) && events[j].ID == id {
			fn.IsKeywordNode = true
			mask := events[j].Mask
			for i, w := range p.Keywords {
				if mask&(1<<uint(i)) != 0 {
					fn.Matched = append(fn.Matched, w)
				}
			}
		}
		f.Nodes = append(f.Nodes, fn)
	}
	return f
}

// assembledFragments reports how many fragments the engine has materialized
// since construction (test/benchmark hook for the late-materialization
// contract).
func (e *Engine) assembledFragments() uint64 { return e.assembled.Load() }

// plan, params, resolveIDSets and currentScorer are the snapshot-free
// shims over the newest state, serving in-package tests and benchmarks
// that exercise one pipeline stage in isolation. The returned structures
// stay valid after the pin is released — pinning is accounting, not
// lifetime (the garbage collector owns the memory).

func (e *Engine) plan(queryText string) (exec.Plan, error) {
	v := e.currentView()
	defer v.release()
	return e.planAt(v, queryText)
}

func (e *Engine) params(req Request) exec.Params {
	v := e.currentView()
	defer v.release()
	return e.paramsAt(v, req)
}

func (e *Engine) resolveIDSets(queryText string) (display, idfWords []string, sets [][]nid.ID, err error) {
	v := e.currentView()
	defer v.release()
	return e.resolveIDSetsAt(v, queryText)
}

func (e *Engine) currentScorer() *rank.Scorer {
	v := e.currentView()
	defer v.release()
	return v.scorer
}
