// Package xks is an XML keyword search engine implementing the ValidRTF
// algorithm of "Retrieving Meaningful Relaxed Tightest Fragments for XML
// Keyword Search" (Kong, Gilleron, Lemay — EDBT 2009), together with the
// revised MaxMatch baseline it is evaluated against.
//
// Given an XML document and a keyword query, the engine returns meaningful
// fragments: one Relaxed Tightest Fragment (RTF) per interesting LCA node
// (the ELCA semantics), pruned so that every kept node is a valid
// contributor to its parent — label-aware and content-aware filtering that
// avoids MaxMatch's false positive and redundancy problems.
//
// Basic use:
//
//	engine, err := xks.Load(file)
//	res, err := engine.Search("xml keyword search", xks.Options{})
//	for _, f := range res.Fragments {
//	    fmt.Println(f.ASCII())
//	}
package xks

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/prune"
	"xks/internal/query"
	"xks/internal/rank"
	"xks/internal/rtf"
	"xks/internal/snippet"
	"xks/internal/store"
	"xks/internal/xmltree"
)

// Algorithm selects the pruning mechanism.
type Algorithm int

const (
	// ValidRTF is the paper's valid-contributor filtering (the default).
	ValidRTF Algorithm = iota
	// MaxMatch is the contributor filtering of Liu & Chen (VLDB 2008),
	// revised to operate on RTFs.
	MaxMatch
	// RawRTF disables pruning and returns whole RTFs.
	RawRTF
)

func (a Algorithm) String() string {
	switch a {
	case ValidRTF:
		return "ValidRTF"
	case MaxMatch:
		return "MaxMatch"
	case RawRTF:
		return "RawRTF"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

func (a Algorithm) mode() prune.Mode {
	switch a {
	case MaxMatch:
		return prune.Contributor
	case RawRTF:
		return prune.NoPruning
	default:
		return prune.ValidContributor
	}
}

// Semantics selects which LCA nodes root the fragments.
type Semantics int

const (
	// AllLCA roots one fragment at every interesting LCA node (the ELCA
	// semantics of the paper's getLCA — the default).
	AllLCA Semantics = iota
	// SLCAOnly restricts fragments to smallest-LCA roots, the semantics of
	// the original MaxMatch.
	SLCAOnly
)

func (s Semantics) String() string {
	if s == SLCAOnly {
		return "SLCAOnly"
	}
	return "AllLCA"
}

// Options configures one search.
type Options struct {
	// Algorithm is the pruning mechanism (default ValidRTF).
	Algorithm Algorithm
	// Semantics picks the fragment roots (default AllLCA).
	Semantics Semantics
	// ExactContent replaces the (min,max) cID approximation of rule 2(b)
	// with exact tree-content-set comparison (ablation switch).
	ExactContent bool
	// Rank orders fragments by descending relevance score instead of
	// document order.
	Rank bool
	// Limit truncates the fragment list when positive.
	Limit int
}

// Engine is an immutable, concurrency-safe search engine over one XML
// document: a document source (the parsed tree, or the shredded store)
// plus its inverted keyword index.
type Engine struct {
	tree   *xmltree.Tree // nil for store-backed engines
	src    docSource
	an     *analysis.Analyzer
	ix     *index.Index
	scorer *rank.Scorer
	snip   *snippet.Generator
	gen    atomic.Uint64 // bumped by AppendXML; see Generation
}

// Load parses an XML document and builds the engine.
func Load(r io.Reader) (*Engine, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromTree(t), nil
}

// LoadString builds an engine from an XML string.
func LoadString(s string) (*Engine, error) {
	return Load(strings.NewReader(s))
}

// LoadFile builds an engine from an XML file on disk.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// FromTree builds an engine over an already-parsed tree. The tree must not
// be mutated afterwards.
func FromTree(t *xmltree.Tree) *Engine {
	an := analysis.New()
	ix := index.Build(t, an)
	return &Engine{
		tree:   t,
		src:    &treeSource{tree: t, an: an},
		an:     an,
		ix:     ix,
		scorer: rank.NewScorer(ix),
		snip:   snippet.NewGenerator(an, snippet.Options{}),
	}
}

// FromStore builds an engine over a shredded store — the paper's actual
// architecture, where searches run off the three relational tables without
// the original document. Fragment rendering shows the element skeleton and
// content words (the store does not retain raw text).
func FromStore(st *store.Store) *Engine {
	an := analysis.New()
	ix := st.BuildIndex(an)
	return &Engine{
		src:    &storeSource{st: st},
		an:     an,
		ix:     ix,
		scorer: rank.NewScorer(ix),
		snip:   snippet.NewGenerator(an, snippet.Options{}),
	}
}

// OpenStore loads a store file written by store.Save / cmd/xkshred and
// builds an engine over it.
func OpenStore(path string) (*Engine, error) {
	st, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return FromStore(st), nil
}

// Tree exposes the underlying document tree (read-only); nil when the
// engine is store-backed.
func (e *Engine) Tree() *xmltree.Tree { return e.tree }

// Index exposes the underlying inverted index (read-only).
func (e *Engine) Index() *index.Index { return e.ix }

// Generation reports the engine's mutation generation: zero at
// construction, incremented by every successful AppendXML. Caching layers
// (internal/service) compare generations to detect stale cached results.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// Stats summarizes one search execution.
type Stats struct {
	// Keywords are the normalized query keywords in mask-bit order.
	Keywords []string
	// KeywordNodes is the total number of keyword-node postings consulted.
	KeywordNodes int
	// NumLCAs is the number of fragment roots (|A| in §5.1).
	NumLCAs int
	// Elapsed is the wall-clock time of the LCA + RTF + prune pipeline
	// (excluding index construction, matching the paper's measurement).
	Elapsed time.Duration
}

// Result is the outcome of one search.
type Result struct {
	Query     string
	Options   Options
	Fragments []*Fragment
	Stats     Stats
}

// Search runs the four-stage pipeline (getKeywordNodes → getLCA → getRTF →
// pruneRTF) and returns the meaningful fragments. Query terms may carry
// XSearch-style label predicates ("title:xml", "author:"); see
// internal/query. A term that matches nothing yields an empty result (no
// fragment can cover the query), not an error; queries with no searchable
// term at all are errors.
func (e *Engine) Search(queryText string, opts Options) (*Result, error) {
	res := &Result{Query: queryText, Options: opts}
	words, idfWords, sets, err := e.resolveSets(queryText)
	if err != nil {
		var nm *index.ErrNoMatch
		if errors.As(err, &nm) {
			res.Stats.Keywords = words
			return res, nil
		}
		return nil, err
	}
	res.Stats.Keywords = words
	for _, s := range sets {
		res.Stats.KeywordNodes += len(s)
	}

	start := time.Now()
	var roots []dewey.Code
	if opts.Semantics == SLCAOnly {
		roots = lca.SLCA(sets)
	} else {
		roots = lca.ELCAStackMerge(sets)
	}
	rtfs := rtf.Build(roots, sets)
	res.Stats.NumLCAs = len(rtfs)

	pruneOpts := prune.Options{ExactContent: opts.ExactContent}
	allRoots := make([]dewey.Code, len(rtfs))
	for i, r := range rtfs {
		allRoots[i] = r.Root
	}
	for _, r := range rtfs {
		f := prune.BuildFragment(r, e.labelOf, e.contentOf, pruneOpts)
		kept := f.Prune(opts.Algorithm.mode(), pruneOpts)
		res.Fragments = append(res.Fragments, e.assemble(r, kept, allRoots, words, idfWords))
	}
	res.Stats.Elapsed = time.Since(start)

	if opts.Rank {
		scores := make([]float64, len(res.Fragments))
		for i, f := range res.Fragments {
			scores[i] = e.scorer.Score(f.rootCode, f.events, idfWords)
			res.Fragments[i].Score = scores[i]
		}
		ordered := rank.Order(scores)
		ranked := make([]*Fragment, len(ordered))
		for i, r := range ordered {
			ranked[i] = res.Fragments[r.Index]
		}
		res.Fragments = ranked
	}
	if opts.Limit > 0 && len(res.Fragments) > opts.Limit {
		res.Fragments = res.Fragments[:opts.Limit]
	}
	return res, nil
}

// resolveSets turns the query text into per-term posting lists. Plain
// keywords read straight off the inverted index; label predicates filter
// postings through the document source's labels. It returns the display
// strings, the words used for IDF scoring, and the sets D1..Dk.
func (e *Engine) resolveSets(queryText string) (display, idfWords []string, sets [][]dewey.Code, err error) {
	terms, err := query.Parse(queryText, e.an)
	if err != nil {
		return nil, nil, nil, err
	}
	display = make([]string, len(terms))
	for i, t := range terms {
		display[i] = t.String()
	}
	idfWords = make([]string, len(terms))
	sets = make([][]dewey.Code, len(terms))
	for i, t := range terms {
		word := t.Keyword
		if word == "" {
			word = e.an.Normalize(t.Label)
			if word == "" {
				// Label normalizes to nothing (stop word / punctuation):
				// nothing can match.
				return display, nil, nil, &index.ErrNoMatch{Word: t.Raw}
			}
		}
		idfWords[i] = word
		postings := e.ix.Lookup(word)
		if t.Label != "" {
			var filtered []dewey.Code
			for _, c := range postings {
				if t.MatchesLabel(e.src.labelOf(c)) {
					filtered = append(filtered, c)
				}
			}
			postings = filtered
		}
		if len(postings) == 0 {
			return display, nil, nil, &index.ErrNoMatch{Word: t.Raw}
		}
		sets[i] = postings
	}
	return display, idfWords, sets, nil
}

func (e *Engine) labelOf(c dewey.Code) string { return e.src.labelOf(c) }

func (e *Engine) contentOf(c dewey.Code) []string { return e.src.contentOf(c) }

func (e *Engine) assemble(r *rtf.RTF, kept *prune.Result, allRoots []dewey.Code, words, idfWords []string) *Fragment {
	f := &Fragment{
		Root:      r.Root.String(),
		RootLabel: e.src.labelOf(r.Root),
		IsSLCA:    r.IsSLCA(allRoots),
		rootCode:  r.Root,
		events:    r.KeywordNodes,
		keep:      kept.KeepSet(),
		src:       e.src,
		words:     idfWords,
		snip:      e.snip,
	}
	matched := map[string]uint64{}
	for _, ev := range r.KeywordNodes {
		matched[ev.Code.Key()] = ev.Mask
	}
	for _, c := range kept.Kept {
		fn := FragmentNode{
			Dewey: c.String(),
			Label: e.src.labelOf(c),
			Text:  e.src.nodeText(c),
			Level: c.Level(),
		}
		if mask, ok := matched[c.Key()]; ok {
			fn.IsKeywordNode = true
			for i, w := range words {
				if mask&(1<<uint(i)) != 0 {
					fn.Matched = append(fn.Matched, w)
				}
			}
		}
		f.Nodes = append(f.Nodes, fn)
	}
	return f
}
