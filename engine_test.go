package xks

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xks/internal/paperdata"
	"xks/internal/xmltree"
)

func pubEngine(t *testing.T) *Engine {
	t.Helper()
	return FromTree(paperdata.Publications())
}

func teamEngine(t *testing.T) *Engine {
	t.Helper()
	return FromTree(paperdata.Team())
}

func fragmentRoots(res *Result) []string {
	out := make([]string, len(res.Fragments))
	for i, f := range res.Fragments {
		out[i] = f.Root
	}
	return out
}

func TestSearchQ3DefaultValidRTF(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q3, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 {
		t.Fatalf("fragments = %v", fragmentRoots(res))
	}
	f := res.Fragments[0]
	if f.Root != "0" || f.RootLabel != "Publications" || !f.IsSLCA {
		t.Errorf("fragment header = %+v", f)
	}
	// Figure 2(d): 8 nodes, article 0.2.1 branch pruned.
	if f.Len() != 8 {
		t.Errorf("kept %d nodes, want 8:\n%s", f.Len(), f.ASCII())
	}
	if f.Contains("0.2.1") || f.Contains("0.2.1.1") {
		t.Error("pruned branch leaked into result")
	}
	if !f.Contains("0.2.0.3.0") {
		t.Error("ref node missing")
	}
	if got := len(res.Stats.Keywords); got != 5 {
		t.Errorf("keywords = %v", res.Stats.Keywords)
	}
	// 1 (vldb) + 3 (title) + 3 (xml) + 3 (keyword) + 3 (search) postings.
	if res.Stats.NumLCAs != 1 || res.Stats.KeywordNodes != 13 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestSearchQ3MaxMatch(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q3, Options{Algorithm: MaxMatch}))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fragments[0]
	if f.Len() != 5 {
		t.Errorf("MaxMatch kept %d nodes, want 5:\n%s", f.Len(), f.ASCII())
	}
	if f.Contains("0.2.0.2") {
		t.Error("MaxMatch should discard the abstract under contributor filtering")
	}
}

func TestSearchQ3Raw(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q3, Options{Algorithm: RawRTF}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments[0].Len() != 10 {
		t.Errorf("raw RTF has %d nodes, want 10", res.Fragments[0].Len())
	}
}

func TestSearchQ2TwoFragments(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	roots := fragmentRoots(res)
	if strings.Join(roots, " ") != "0.2.0 0.2.0.3.0" {
		t.Fatalf("roots = %v", roots)
	}
	if res.Fragments[0].IsSLCA || !res.Fragments[1].IsSLCA {
		t.Error("SLCA flags wrong")
	}
}

func TestSearchQ2SLCAOnly(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{Semantics: SLCAOnly}))
	if err != nil {
		t.Fatal(err)
	}
	roots := fragmentRoots(res)
	if strings.Join(roots, " ") != "0.2.0.3.0" {
		t.Fatalf("SLCA-only roots = %v", roots)
	}
}

func TestSearchNoMatchKeywordYieldsEmpty(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest("liu zebra", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 0 {
		t.Errorf("fragments = %v", fragmentRoots(res))
	}
}

func TestSearchUnusableQueryErrors(t *testing.T) {
	e := pubEngine(t)
	if _, err := e.Search(context.Background(), NewRequest("the of and", Options{})); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("stop-word-only query: err = %v, want ErrEmptyQuery", err)
	}
	if _, err := e.Search(context.Background(), NewRequest("", Options{})); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("empty query: err = %v, want ErrEmptyQuery", err)
	}
	var b strings.Builder
	for i := 0; i < 65; i++ {
		fmt.Fprintf(&b, "kw%d ", i)
	}
	long := b.String()
	if _, err := e.Search(context.Background(), Request{Query: long}); !errors.Is(err, ErrTooManyTerms) {
		t.Errorf("65-term query: err = %v, want ErrTooManyTerms", err)
	}
}

func TestSearchRankOrdersBySpecificity(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{Rank: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 {
		t.Fatal("want 2 fragments")
	}
	// The ref fragment matches both keywords at its root; it outranks the
	// article fragment whose occurrences are deeper.
	if res.Fragments[0].Root != "0.2.0.3.0" {
		t.Errorf("top-ranked fragment = %s (scores %v, %v)",
			res.Fragments[0].Root, res.Fragments[0].Score, res.Fragments[1].Score)
	}
	if res.Fragments[0].Score <= res.Fragments[1].Score {
		t.Errorf("scores not descending: %v, %v", res.Fragments[0].Score, res.Fragments[1].Score)
	}
}

func TestSearchLimit(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{Limit: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 {
		t.Errorf("Limit ignored: %d fragments", len(res.Fragments))
	}
}

func TestFragmentRendering(t *testing.T) {
	e := teamEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q4, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fragments[0]
	ascii := f.ASCII()
	if !strings.Contains(ascii, "0.1.0 (player)") || strings.Contains(ascii, "0.1.2") {
		t.Errorf("ASCII rendering wrong:\n%s", ascii)
	}
	xmlOut := f.XML()
	if !strings.Contains(xmlOut, "<team>") || !strings.Contains(xmlOut, "guard") {
		t.Errorf("XML rendering wrong:\n%s", xmlOut)
	}
	if strings.Contains(xmlOut, "Warrick") {
		t.Errorf("pruned player leaked into XML:\n%s", xmlOut)
	}
}

func TestFragmentNodeMetadata(t *testing.T) {
	e := teamEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q4, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fragments[0]
	kns := f.KeywordNodes()
	if len(kns) != 3 {
		t.Fatalf("keyword nodes = %+v", kns)
	}
	if kns[0].Dewey != "0.0" || len(kns[0].Matched) != 1 || kns[0].Matched[0] != "grizzlies" {
		t.Errorf("first keyword node = %+v", kns[0])
	}
	for _, n := range f.Nodes {
		if n.Level != len(strings.Split(n.Dewey, "."))-1 {
			t.Errorf("level mismatch for %s", n.Dewey)
		}
	}
	if f.Contains("not a dewey") {
		t.Error("Contains on malformed code should be false")
	}
}

func TestCompareQ4(t *testing.T) {
	e := teamEngine(t)
	cmp, err := e.Compare(context.Background(), NewRequest(paperdata.Q4, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.NumRTFs != 1 {
		t.Fatalf("NumRTFs = %d", cmp.NumRTFs)
	}
	// ValidRTF prunes the duplicate forward player (2 of 9 nodes).
	if cmp.Ratios.CFR != 0 {
		t.Errorf("CFR = %v, want 0", cmp.Ratios.CFR)
	}
	want := 2.0 / 9.0
	if diff := cmp.Ratios.MaxAPR - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("MaxAPR = %v, want %v", cmp.Ratios.MaxAPR, want)
	}
	if cmp.ValidElapsed <= 0 || cmp.MaxElapsed <= 0 {
		t.Error("elapsed times not recorded")
	}
}

func TestCompareQ5Identical(t *testing.T) {
	e := teamEngine(t)
	cmp, err := e.Compare(context.Background(), NewRequest(paperdata.Q5, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratios.CFR != 1 {
		t.Errorf("CFR = %v, want 1 (both mechanisms agree on Q5)", cmp.Ratios.CFR)
	}
}

func TestCompareNoMatch(t *testing.T) {
	e := teamEngine(t)
	cmp, err := e.Compare(context.Background(), NewRequest("zebra position", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.NumRTFs != 0 || cmp.Ratios.CFR != 1 {
		t.Errorf("cmp = %+v", cmp)
	}
}

func TestLoadVariants(t *testing.T) {
	xml := `<a><b>hello keyword</b><c>keyword world</c></a>`
	e1, err := LoadString(xml)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e1.Search(context.Background(), NewRequest("hello world", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 || res.Fragments[0].Root != "0" {
		t.Errorf("fragments = %v", fragmentRoots(res))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tree().Size() != 3 {
		t.Errorf("tree size = %d", e2.Tree().Size())
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.xml")); err == nil {
		t.Error("LoadFile on absent path should fail")
	}
	if _, err := LoadString("not xml"); err == nil {
		t.Error("LoadString on garbage should fail")
	}
}

func TestEngineAccessors(t *testing.T) {
	e := pubEngine(t)
	if e.Tree() == nil || e.Index() == nil {
		t.Error("nil accessors")
	}
	if e.Index().Frequency("keyword") != 3 {
		t.Error("index not built")
	}
}

func TestAlgorithmAndSemanticsStrings(t *testing.T) {
	if ValidRTF.String() != "ValidRTF" || MaxMatch.String() != "MaxMatch" || RawRTF.String() != "RawRTF" {
		t.Error("Algorithm.String broken")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm string empty")
	}
	if AllLCA.String() != "AllLCA" || SLCAOnly.String() != "SLCAOnly" {
		t.Error("Semantics.String broken")
	}
}

func TestConcurrentSearches(t *testing.T) {
	e := pubEngine(t)
	queries := []string{paperdata.Q1, paperdata.Q2, paperdata.Q3, paperdata.QLiuKeyword}
	done := make(chan error, len(queries)*8)
	for i := 0; i < 8; i++ {
		for _, q := range queries {
			go func(q string) {
				_, err := e.Search(context.Background(), NewRequest(q, Options{Rank: true}))
				done <- err
			}(q)
		}
	}
	for i := 0; i < len(queries)*8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestExactContentOption(t *testing.T) {
	tree := xmltree.Build(xmltree.E{Label: "root", Kids: []xmltree.E{
		{Label: "tag", Text: "special"},
		{Label: "item", Text: "alpha keyword zebra"},
		{Label: "item", Text: "alpha keyword middle zebra"},
	}})
	e := FromTree(tree)
	approx, err := e.Search(context.Background(), NewRequest("special keyword", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.Search(context.Background(), NewRequest("special keyword", Options{ExactContent: true}))
	if err != nil {
		t.Fatal(err)
	}
	if approx.Fragments[0].Len() >= exact.Fragments[0].Len() {
		t.Errorf("exact mode should keep more nodes here: approx %d, exact %d",
			approx.Fragments[0].Len(), exact.Fragments[0].Len())
	}
}

func TestFragmentSnippet(t *testing.T) {
	e := pubEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Fragments {
		sn := f.Snippet()
		if !strings.Contains(sn, "[") || !strings.Contains(sn, "]") {
			t.Errorf("fragment %s snippet has no highlights: %q", f.Root, sn)
		}
		lower := strings.ToLower(sn)
		if !strings.Contains(lower, "liu") || !strings.Contains(lower, "keyword") {
			t.Errorf("fragment %s snippet misses keywords: %q", f.Root, sn)
		}
	}
}

func TestFragmentSnippetStoreBacked(t *testing.T) {
	e := storeEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	sn := res.Fragments[0].Snippet()
	if !strings.Contains(strings.ToLower(sn), "[liu]") {
		t.Errorf("store-backed snippet = %q", sn)
	}
}
