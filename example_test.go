package xks_test

import (
	"context"
	"fmt"
	"log"

	"xks"
)

const exampleDoc = `<Publications>
  <title>VLDB</title>
  <Articles>
    <article>
      <title>Match Relevant XML Keyword Search</title>
      <abstract>keyword search over XML data</abstract>
    </article>
    <article>
      <title>Skyline Query Processing</title>
    </article>
  </Articles>
</Publications>`

// The basic search loop: load a document, search, print fragment roots.
func ExampleEngine_Search() {
	engine, err := xks.LoadString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Search(context.Background(), xks.NewRequest("relevant match data", xks.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Fragments {
		fmt.Printf("%s (%s) slca=%v nodes=%d\n", f.Root, f.RootLabel, f.IsSLCA, f.Len())
	}
	// Output:
	// 0.1.0 (article) slca=true nodes=3
}

// MaxMatch's contributor rule can discard more than ValidRTF keeps.
func ExampleOptions_algorithm() {
	engine, err := xks.LoadString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	// "match" occurs only in the title, "keyword" in both title and
	// abstract: MaxMatch discards the abstract (strict keyword-set subset
	// of its sibling) while ValidRTF keeps it (unique label, rule 1).
	valid, _ := engine.Search(context.Background(), xks.NewRequest("vldb match keyword", xks.Options{}))
	maxm, _ := engine.Search(context.Background(), xks.NewRequest("vldb match keyword", xks.Options{Algorithm: xks.MaxMatch}))
	fmt.Printf("ValidRTF keeps %d nodes, MaxMatch keeps %d\n",
		valid.Fragments[0].Len(), maxm.Fragments[0].Len())
	// Output:
	// ValidRTF keeps 6 nodes, MaxMatch keeps 5
}

// Label predicates restrict a keyword to elements with a given name.
func ExampleEngine_Search_predicates() {
	engine, err := xks.LoadString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Search(context.Background(), xks.NewRequest("title:skyline query", xks.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Fragments), res.Fragments[0].Root)
	// Output:
	// 1 0.1.1.0
}

// Compare reports the paper's effectiveness ratios between the two
// algorithms.
func ExampleEngine_Compare() {
	engine, err := xks.LoadString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := engine.Compare(context.Background(), xks.NewRequest("xml keyword search", xks.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragments=%d CFR=%.1f\n", cmp.NumRTFs, cmp.Ratios.CFR)
	// Output:
	// fragments=2 CFR=1.0
}
