// Axiomatic properties: demonstrate the four properties of Liu & Chen that
// ValidRTF satisfies (§4.3(2) of the paper) by mutating a document and a
// query and watching the result set respond.
//
//	go run ./examples/axioms
package main

import (
	"context"
	"fmt"
	"log"

	"xks"
	"xks/internal/axioms"
	"xks/internal/dewey"
	"xks/internal/paperdata"
	"xks/internal/xmltree"
)

func main() {
	ctx := context.Background()
	tree := paperdata.Team()
	engine := xks.FromTree(tree)

	// Baseline: Q4 = "Grizzlies position".
	res, err := engine.Search(ctx, xks.Request{Query: paperdata.Q4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline %q: %d fragment(s)\n", paperdata.Q4, len(res.Fragments))
	fmt.Print(res.Fragments[0].ASCII())

	// Data monotonicity + consistency: add a fourth player.
	newPlayer := xmltree.E{Label: "player", Kids: []xmltree.E{
		{Label: "name", Text: "Conley"},
		{Label: "position", Text: "guard"},
	}}
	extended := tree.Clone()
	if _, err := extended.AddChild(dewey.MustParse("0.1"), newPlayer); err != nil {
		log.Fatal(err)
	}
	after, err := xks.FromTree(extended).Search(ctx, xks.Request{Query: paperdata.Q4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter inserting a player: %d fragment(s) (was %d) — data monotonicity\n",
		len(after.Fragments), len(res.Fragments))

	// Query monotonicity: extend the query.
	narrower, err := engine.Search(ctx, xks.Request{Query: paperdata.Q4 + " gassol"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding keyword \"gassol\": %d fragment(s) (was %d) — query monotonicity\n",
		len(narrower.Fragments), len(res.Fragments))

	// Run all four formal checkers.
	verdicts, err := axioms.CheckAll(tree, dewey.MustParse("0.1"), newPlayer,
		paperdata.Q4, "gassol", xks.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nformal checks:")
	for _, v := range verdicts {
		status := "PASS"
		if !v.Holds {
			status = "FAIL: " + v.Detail
		}
		fmt.Printf("  %-20s %s\n", v.Property, status)
	}
}
