// Bibliography search: generate a DBLP-like dataset, search it with ranked
// results, and demonstrate the SLCA-vs-all-LCA distinction on real-looking
// bibliographic data (the workload motivating the paper's introduction).
//
//	go run ./examples/dblp
package main

import (
	"fmt"
	"log"

	"xks"
	"xks/internal/datagen"
	"xks/internal/workload"
)

func main() {
	// Generate a 2000-record bibliography with the paper's 20 DBLP
	// keywords at frequencies scaled from the published counts.
	w := workload.DBLP()
	specs, err := w.Specs(0, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 7, NumRecords: 2000, Keywords: specs})
	engine := xks.FromTree(tree)
	fmt.Printf("dataset: %d nodes, %d records\n\n", tree.Size(), len(tree.Root.Children))

	// A typical bibliographic lookup: ranked, top three fragments.
	query := "xml keyword retrieval"
	res, err := engine.Search(query, xks.Options{Rank: true, Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q: %d fragments, showing top %d\n\n", query, res.Stats.NumLCAs, len(res.Fragments))
	for i, f := range res.Fragments {
		fmt.Printf("#%d score=%.3f root=%s (%s)\n%s\n", i+1, f.Score, f.Root, f.RootLabel, f.ASCII())
	}

	// All-LCA vs SLCA-only semantics: ancestors of smallest LCAs can carry
	// their own complete matches and are part of the answer under the
	// paper's RTF semantics.
	all, err := engine.Search("data recognition", xks.Options{})
	if err != nil {
		log.Fatal(err)
	}
	slca, err := engine.Search("data recognition", xks.Options{Semantics: xks.SLCAOnly})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\"data recognition\": %d fragments under all-LCA semantics, %d under SLCA-only\n",
		len(all.Fragments), len(slca.Fragments))

	// Per-query effectiveness of ValidRTF vs MaxMatch on this dataset.
	cmp, err := engine.Compare("data recognition", xks.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ValidRTF vs MaxMatch: CFR=%.3f, APR'=%.3f, MaxAPR=%.3f over %d fragments\n",
		cmp.Ratios.CFR, cmp.Ratios.APRPrime, cmp.Ratios.MaxAPR, cmp.NumRTFs)
}
