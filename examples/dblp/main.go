// Bibliography search: generate a DBLP-like dataset, search it with ranked
// results, page through a large result set with opaque cursors
// (Request.Cursor/Results.Cursor), stream fragments with early exit and a
// resumable trailer, bound a search with a deadline (strict and
// best-effort), and demonstrate the SLCA-vs-all-LCA distinction on
// real-looking bibliographic data (the workload motivating the paper's
// introduction).
//
//	go run ./examples/dblp
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"xks"
	"xks/internal/datagen"
	"xks/internal/workload"
)

func main() {
	ctx := context.Background()
	// Generate a 2000-record bibliography with the paper's 20 DBLP
	// keywords at frequencies scaled from the published counts.
	w := workload.DBLP()
	specs, err := w.Specs(0, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 7, NumRecords: 2000, Keywords: specs})
	engine := xks.FromTree(tree)
	fmt.Printf("dataset: %d nodes, %d records\n\n", tree.Size(), len(tree.Root.Children))

	// A typical bibliographic lookup: ranked, top three fragments.
	query := "xml keyword retrieval"
	res, err := engine.Search(ctx, xks.Request{Query: query, Rank: true, Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q: %d fragments, showing top %d\n\n", query, res.Stats.NumLCAs, len(res.Fragments))
	for i, f := range res.Fragments {
		fmt.Printf("#%d score=%.3f root=%s (%s)\n%s\n", i+1, f.Score, f.Root, f.RootLabel, f.ASCII())
	}

	// Pagination: walk a large result set page by page with the opaque
	// cursor. Each page prunes and assembles only its own fragments, and
	// the token pins the data generation — had the document been appended
	// to mid-scroll, the next page would fail with xks.ErrStaleCursor
	// instead of silently shifting.
	pageReq := xks.Request{Query: "data recognition", Rank: true, Limit: 100}
	pages, total := 0, 0
	for {
		page, err := engine.Search(ctx, pageReq)
		if err != nil {
			log.Fatal(err)
		}
		pages++
		total += len(page.Fragments)
		if page.Cursor == "" {
			break
		}
		pageReq.Cursor = page.Cursor
	}
	fmt.Printf("paged the full result set: %d fragments over %d pages of %d\n", total, pages, pageReq.Limit)

	// Streaming: fragments materialize one by one; breaking early leaves
	// the rest unassembled, and the stream's trailer still carries a
	// cursor resuming right after the last consumed fragment.
	streamed := 0
	seq, trailer := engine.Stream(ctx, xks.Request{Query: "data recognition", Rank: true})
	for _, err := range seq {
		if err != nil {
			log.Fatal(err)
		}
		if streamed++; streamed == 2 {
			break
		}
	}
	fmt.Printf("streamed %d fragments, stopped early (resumable: %t)\n", streamed, trailer().Cursor != "")

	// Deadlines: a request that cannot finish in time aborts mid-pipeline
	// with context.DeadlineExceeded instead of running to completion.
	hopeless, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	<-hopeless.Done()
	if _, err := engine.Search(hopeless, xks.Request{Query: query}); errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("deadlined search aborted with context.DeadlineExceeded")
	}
	// ... unless the request opts into best-effort delivery, which turns
	// the expired deadline into a truncated partial page.
	partial, err := engine.Search(hopeless, xks.Request{Query: query, Budget: xks.BestEffort})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-effort deadline: %d fragments, truncated=%t\n", len(partial.Fragments), partial.Truncated)

	// All-LCA vs SLCA-only semantics: ancestors of smallest LCAs can carry
	// their own complete matches and are part of the answer under the
	// paper's RTF semantics.
	all, err := engine.Search(ctx, xks.Request{Query: "data recognition"})
	if err != nil {
		log.Fatal(err)
	}
	slca, err := engine.Search(ctx, xks.Request{Query: "data recognition", Semantics: xks.SLCAOnly})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\"data recognition\": %d fragments under all-LCA semantics, %d under SLCA-only\n",
		len(all.Fragments), len(slca.Fragments))

	// Per-query effectiveness of ValidRTF vs MaxMatch on this dataset.
	cmp, err := engine.Compare(ctx, xks.Request{Query: "data recognition"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ValidRTF vs MaxMatch: CFR=%.3f, APR'=%.3f, MaxAPR=%.3f over %d fragments\n",
		cmp.Ratios.CFR, cmp.Ratios.APRPrime, cmp.Ratios.MaxAPR, cmp.NumRTFs)
}
