// Label predicates and snippets: search with XSearch-style structured
// terms ("title:xml", "author:"), show query-biased snippets, and run the
// same search off the shredded store — the paper's deployment architecture
// (shred once into tables, search forever).
//
//	go run ./examples/predicates
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xks"
	"xks/internal/datagen"
	"xks/internal/store"
	"xks/internal/workload"
	"xks/internal/xmltree"
)

func main() {
	ctx := context.Background()
	// A small bibliography with known keyword placement.
	w := workload.DBLP()
	specs, err := w.Specs(0, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 4, NumRecords: 800, Keywords: specs})
	engine := xks.FromTree(tree)

	// Plain vs predicate query: restricting "xml" to titles cuts the noise
	// from xml occurrences in citations and links.
	for _, q := range []string{"xml retrieval", "title:xml retrieval"} {
		res, err := engine.Search(ctx, xks.Request{Query: q, Rank: true, Limit: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-22q → %d fragment(s); top snippets:\n", q, res.Stats.NumLCAs)
		for _, f := range res.Fragments {
			fmt.Printf("  [%s %s] %s\n", f.Root, f.RootLabel, f.Snippet())
		}
		fmt.Println()
	}

	// Shred to disk, reopen, search the store directly.
	st := store.Shred(tree, nil)
	dir, err := os.MkdirTemp("", "xks-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "dblp.xks")
	if err := st.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("shredded store: %d element rows, %d value rows, %d bytes on disk\n",
		st.NumNodes(), st.NumValues(), info.Size())

	storeEngine, err := xks.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	res, err := storeEngine.Search(ctx, xks.Request{Query: "title:xml retrieval", Limit: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store-backed search found %d fragment(s); first rendered from tables:\n", res.Stats.NumLCAs)
	if len(res.Fragments) > 0 {
		fmt.Print(res.Fragments[0].ASCII())
	}

	// The engine accepts incremental appends; new content is immediately
	// searchable (data monotonicity in action).
	if err := engine.AppendXML("0", `<article>
	    <author>Ada Example</author>
	    <title>A fresh xml retrieval paper</title>
	  </article>`); err != nil {
		log.Fatal(err)
	}
	after, err := engine.Search(ctx, xks.Request{Query: "title:xml retrieval fresh"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter AppendXML: %d fragment(s) for the narrowed query\n", len(after.Fragments))
	_ = xmltree.E{} // keep the import explicit for readers exploring the builder API
}
