// Quickstart: load an XML document, run a keyword query, print the
// meaningful fragments.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"xks"
)

const doc = `
<Publications>
  <title>VLDB</title>
  <year>2008</year>
  <Articles>
    <article>
      <authors><author><name>Zhen Liu</name></author></authors>
      <title>Match Relevant XML Keyword Search</title>
      <abstract>We study keyword search over XML data and identify relevant matches.</abstract>
      <references>
        <ref>Z. Liu and Y. Chen. Reasoning and identifying relevant matches for XML keyword search.</ref>
      </references>
    </article>
    <article>
      <authors>
        <author><name>Raymond Wong</name></author>
        <author><name>Ada Fu</name></author>
      </authors>
      <title>Efficient Skyline Query with Variable User Preferences on Nominal Attributes</title>
      <abstract>Dynamic Skyline Query processing under changing preferences.</abstract>
    </article>
  </Articles>
</Publications>`

func main() {
	ctx := context.Background()
	engine, err := xks.LoadString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's running example Q3: every keyword must appear in each
	// returned fragment; uninteresting sibling branches are pruned away.
	query := "VLDB title XML keyword search"
	res, err := engine.Search(ctx, xks.Request{Query: query})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %q\nnormalized keywords: %v\nfragments: %d (%.3f ms)\n\n",
		query, res.Stats.Keywords, len(res.Fragments),
		float64(res.Stats.Elapsed.Microseconds())/1000.0)

	for i, f := range res.Fragments {
		kind := "LCA"
		if f.IsSLCA {
			kind = "SLCA"
		}
		fmt.Printf("--- fragment %d rooted at %s (%s) [%s]\n", i+1, f.Root, f.RootLabel, kind)
		fmt.Print(f.ASCII())
		fmt.Println("\nas XML:")
		fmt.Print(f.XML())
	}

	// Compare with the MaxMatch baseline: its contributor rule discards
	// the uniquely-labelled abstract and references branches here — the
	// false positive problem ValidRTF fixes.
	mm, err := engine.Search(ctx, xks.Request{Query: query, Algorithm: xks.MaxMatch})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nValidRTF kept %d nodes; MaxMatch kept %d:\n",
		res.Fragments[0].Len(), mm.Fragments[0].Len())
	fmt.Print(mm.Fragments[0].ASCII())
}
