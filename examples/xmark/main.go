// Auction-site search: generate an XMark-like document and show how the
// valid-contributor rule removes redundant equal-content siblings that the
// contributor rule keeps (the redundancy problem of Example 2 of the
// paper), at dataset scale.
//
//	go run ./examples/xmark
package main

import (
	"context"
	"fmt"
	"log"

	"xks"
	"xks/internal/datagen"
	"xks/internal/workload"
)

func main() {
	ctx := context.Background()
	w := workload.XMark()
	specs, err := w.Specs(int(workload.XMarkStandard), 0.02)
	if err != nil {
		log.Fatal(err)
	}
	tree := datagen.XMark(datagen.XMarkConfig{Seed: 11, Items: 500, Keywords: specs})
	engine := xks.FromTree(tree)
	fmt.Printf("dataset: %d nodes\n\n", tree.Size())

	// Run the paper's own example query "vdo" = preventions description
	// order, under both pruning mechanisms.
	query, err := w.Expand("vdo")
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := engine.Compare(ctx, xks.Request{Query: query})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q (the paper's vdo):\n", query)
	fmt.Printf("  fragments: %d\n", cmp.NumRTFs)
	fmt.Printf("  ValidRTF: %v   MaxMatch: %v\n", cmp.ValidElapsed, cmp.MaxElapsed)
	fmt.Printf("  CFR=%.3f APR'=%.3f MaxAPR=%.3f\n\n",
		cmp.Ratios.CFR, cmp.Ratios.APRPrime, cmp.Ratios.MaxAPR)

	// Show one fragment where the two mechanisms disagree.
	valid, err := engine.Search(ctx, xks.Request{Query: query})
	if err != nil {
		log.Fatal(err)
	}
	max, err := engine.Search(ctx, xks.Request{Query: query, Algorithm: xks.MaxMatch})
	if err != nil {
		log.Fatal(err)
	}
	for i := range valid.Fragments {
		v, m := valid.Fragments[i], max.Fragments[i]
		if v.Len() < m.Len() {
			fmt.Printf("fragment at %s: MaxMatch kept %d nodes, ValidRTF pruned to %d\n",
				v.Root, m.Len(), v.Len())
			fmt.Println("ValidRTF version:")
			fmt.Print(v.ASCII())
			break
		}
	}

	// Run the whole XMark query mix and report the aggregate shape.
	queries, err := w.ExpandAll()
	if err != nil {
		log.Fatal(err)
	}
	agree, prunedFurther := 0, 0
	for _, q := range queries {
		c, err := engine.Compare(ctx, xks.Request{Query: q})
		if err != nil {
			log.Fatal(err)
		}
		if c.Ratios.CFR == 1 {
			agree++
		} else {
			prunedFurther++
		}
	}
	fmt.Printf("\nacross %d XMark queries: ValidRTF pruned further on %d, identical on %d\n",
		len(queries), prunedFurther, agree)
}
