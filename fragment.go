package xks

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"xks/internal/dewey"
	"xks/internal/snippet"
)

// FragmentNode is one kept node of a meaningful fragment.
type FragmentNode struct {
	// Dewey is the node's Dewey code in dotted form, e.g. "0.2.0.1".
	Dewey string
	// Label is the element name.
	Label string
	// Text is the element's own text value, if any.
	Text string
	// Level is the node depth in the document (root = 0).
	Level int
	// IsKeywordNode reports whether the node matched query keywords.
	IsKeywordNode bool
	// Matched lists the query keywords this node matched.
	Matched []string
}

// Fragment is one meaningful RTF of a search result.
type Fragment struct {
	// Root is the Dewey code of the fragment's interesting LCA node.
	Root string
	// RootLabel is that node's element name.
	RootLabel string
	// IsSLCA reports whether the root is a smallest LCA (no interesting
	// LCA below it).
	IsSLCA bool
	// Nodes are the kept nodes in pre-order.
	Nodes []FragmentNode
	// Score is the ranking score (populated when Options.Rank is set).
	Score float64
	// Pruned is the number of nodes the pruning mechanism removed from the
	// unpruned fragment tree (so Pruned+len(Nodes) is the tree's full
	// size) — the per-fragment effectiveness number tracing reports.
	Pruned int

	rootCode dewey.Code
	// kept is the ordered (pre-order) keep-set from pruning, carried
	// through assembly so renderers never re-parse string keys; keep is
	// the same set keyed by dewey key for membership tests, built lazily
	// (via keepSet) because only renderers and Contains consult it — the
	// search hot path never pays for the map.
	kept     []dewey.Code
	keep     map[string]bool
	keepOnce sync.Once
	src      docSource
	words    []string
	snip     *snippet.Generator

	// Rendered forms are computed once and shared: fragments are cached by
	// the serving layer (internal/service) and may be rendered concurrently
	// by many requests. xmlDone publishes xmlText to WriteXML without
	// touching the Once (set inside xmlOnce.Do after xmlText is assigned).
	xmlOnce   sync.Once
	xmlText   string
	xmlDone   atomic.Bool
	asciiOnce sync.Once
	asciiText string
}

// Len returns the number of kept nodes.
func (f *Fragment) Len() int { return len(f.Nodes) }

// keepSet returns the kept codes keyed by dewey key, building the map on
// first use (fragments are shared by the serving layer's cache, hence the
// sync.Once). Fragments assembled by the eager reference path arrive with
// the map pre-filled; the production path defers it until a renderer or
// Contains asks.
func (f *Fragment) keepSet() map[string]bool {
	f.keepOnce.Do(func() {
		if f.keep != nil {
			return
		}
		m := make(map[string]bool, len(f.kept))
		var buf []byte
		for _, c := range f.kept {
			buf = c.AppendKey(buf[:0])
			m[string(buf)] = true
		}
		f.keep = m
	})
	return f.keep
}

// Contains reports whether the fragment kept the node with the given Dewey
// code (dotted form).
func (f *Fragment) Contains(deweyCode string) bool {
	c, err := dewey.Parse(deweyCode)
	if err != nil {
		return false
	}
	return f.keepSet()[c.Key()]
}

// KeywordNodes returns the kept nodes that matched query keywords.
func (f *Fragment) KeywordNodes() []FragmentNode {
	var out []FragmentNode
	for _, n := range f.Nodes {
		if n.IsKeywordNode {
			out = append(out, n)
		}
	}
	return out
}

// Snippet returns a query-biased one-line summary of the fragment: every
// query keyword shown highlighted in its surrounding text, labelled by the
// element it occurs in (in the spirit of the snippet generation work the
// paper cites as related).
func (f *Fragment) Snippet() string {
	var sources []snippet.Source
	for _, n := range f.Nodes {
		if !n.IsKeywordNode {
			continue
		}
		c, err := dewey.Parse(n.Dewey)
		if err != nil {
			continue
		}
		text := n.Text
		if text == "" {
			// Store-backed fragments have no raw text; use the content
			// words instead.
			text = strings.Join(f.src.contentOf(c), " ")
		}
		sources = append(sources, snippet.Source{Label: n.Label, Text: text})
	}
	return f.snip.Generate(sources, f.words)
}

// ASCII renders the fragment as an indented tree in the style of the
// paper's figures. Store-backed fragments show content words instead of
// raw text. The rendering is computed once and reused (fragments are
// shared by the serving layer's cache).
func (f *Fragment) ASCII() string {
	f.asciiOnce.Do(func() {
		f.asciiText = f.src.renderASCII(f.rootCode, f.kept, f.keepSet())
	})
	return f.asciiText
}

// XML serializes the fragment as an XML snippet. Store-backed fragments
// render the element skeleton with content words. The rendering is
// computed once and reused.
func (f *Fragment) XML() string {
	f.xmlOnce.Do(func() {
		f.xmlText = f.src.renderXML(f.rootCode, f.kept, f.keepSet())
		f.xmlDone.Store(true)
	})
	return f.xmlText
}

// WriteXML streams the fragment's XML rendering into w — byte-identical to
// XML(), but written incrementally so a large fragment flows straight into
// a chunked response body under the consumer's backpressure instead of
// buffering whole in memory. When the rendering was already memoized by
// XML(), the cached string is written instead of re-rendering; WriteXML
// itself does not populate the cache (a streamed fragment is typically
// rendered exactly once).
func (f *Fragment) WriteXML(w io.Writer) error {
	if f.xmlDone.Load() {
		_, err := io.WriteString(w, f.xmlText)
		return err
	}
	return f.src.renderXMLTo(w, f.rootCode, f.kept, f.keepSet())
}
