module xks

go 1.24
