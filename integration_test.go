package xks

// End-to-end invariant tests: run the full pipeline over the synthetic
// datasets and check the structural guarantees the paper's definitions
// promise, independent of any expected-output golden data.

import (
	"context"
	"strings"
	"testing"

	"xks/internal/analysis"
	"xks/internal/datagen"
	"xks/internal/store"
	"xks/internal/workload"
)

func dblpTestEngine(t *testing.T) (*Engine, []string) {
	t.Helper()
	w := workload.DBLP()
	specs, err := w.Specs(0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 21, NumRecords: 400, Keywords: specs})
	queries, err := w.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	return FromTree(tree), queries
}

func xmarkTestEngine(t *testing.T) (*Engine, []string) {
	t.Helper()
	w := workload.XMark()
	specs, err := w.Specs(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tree := datagen.XMark(datagen.XMarkConfig{Seed: 22, Items: 150, Keywords: specs})
	queries, err := w.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	return FromTree(tree), queries
}

// Invariant 1 (keyword requirement): every returned fragment covers every
// query keyword, under every algorithm and semantics.
func TestIntegrationEveryFragmentCoversQuery(t *testing.T) {
	for _, setup := range []func(*testing.T) (*Engine, []string){dblpTestEngine, xmarkTestEngine} {
		engine, queries := setup(t)
		for _, q := range queries {
			for _, opts := range []Options{
				{},
				{Algorithm: MaxMatch},
				{Algorithm: RawRTF},
				{Semantics: SLCAOnly},
			} {
				res, err := engine.Search(context.Background(), NewRequest(q, opts))
				if err != nil {
					t.Fatalf("%q: %v", q, err)
				}
				keywords := res.Stats.Keywords
				for _, f := range res.Fragments {
					covered := map[string]bool{}
					for _, n := range f.KeywordNodes() {
						for _, m := range n.Matched {
							covered[m] = true
						}
					}
					for _, k := range keywords {
						if !covered[k] {
							t.Fatalf("%q %+v: fragment %s misses keyword %q",
								q, opts, f.Root, k)
						}
					}
				}
			}
		}
	}
}

// Invariant 2 (uniqueness): fragment roots are unique and pre-order sorted;
// SLCA-only roots are a subset of the all-LCA roots.
func TestIntegrationRootUniquenessAndSLCASubset(t *testing.T) {
	engine, queries := xmarkTestEngine(t)
	for _, q := range queries {
		all, err := engine.Search(context.Background(), NewRequest(q, Options{}))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, f := range all.Fragments {
			if seen[f.Root] {
				t.Fatalf("%q: duplicate root %s", q, f.Root)
			}
			seen[f.Root] = true
		}
		slca, err := engine.Search(context.Background(), NewRequest(q, Options{Semantics: SLCAOnly}))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range slca.Fragments {
			if !seen[f.Root] {
				t.Fatalf("%q: SLCA root %s missing from all-LCA roots", q, f.Root)
			}
			if !f.IsSLCA {
				t.Fatalf("%q: SLCA-only fragment %s not flagged IsSLCA", q, f.Root)
			}
		}
		if len(slca.Fragments) > len(all.Fragments) {
			t.Fatalf("%q: more SLCA fragments than all-LCA fragments", q)
		}
	}
}

// Invariant 3 (pruning containment): ValidRTF and MaxMatch keep subsets of
// the raw RTF; the raw RTF keeps the fragment root; every kept node's
// parent within the fragment is kept (ancestor closure).
func TestIntegrationPruningContainment(t *testing.T) {
	engine, queries := dblpTestEngine(t)
	for _, q := range queries[:10] {
		raw, err := engine.Search(context.Background(), NewRequest(q, Options{Algorithm: RawRTF}))
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{ValidRTF, MaxMatch} {
			res, err := engine.Search(context.Background(), NewRequest(q, Options{Algorithm: algo}))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Fragments) != len(raw.Fragments) {
				t.Fatalf("%q/%s: fragment count differs from raw", q, algo)
			}
			for i, f := range res.Fragments {
				rawSet := map[string]bool{}
				for _, n := range raw.Fragments[i].Nodes {
					rawSet[n.Dewey] = true
				}
				if !f.Contains(f.Root) {
					t.Fatalf("%q/%s: root pruned away", q, algo)
				}
				for _, n := range f.Nodes {
					if !rawSet[n.Dewey] {
						t.Fatalf("%q/%s: node %s not in raw RTF", q, algo, n.Dewey)
					}
					if n.Dewey != f.Root {
						parent := n.Dewey[:strings.LastIndex(n.Dewey, ".")]
						if !f.Contains(parent) && parent != f.Root[:max(0, strings.LastIndex(f.Root, "."))] {
							if len(n.Dewey) > len(f.Root) && !f.Contains(parent) {
								t.Fatalf("%q/%s: kept node %s has pruned parent %s", q, algo, n.Dewey, parent)
							}
						}
					}
				}
			}
		}
	}
}

// Invariant 4: Compare's CFR is consistent with running the two searches
// separately and comparing kept node sets.
func TestIntegrationCompareConsistency(t *testing.T) {
	engine, queries := xmarkTestEngine(t)
	for _, q := range queries[:8] {
		cmp, err := engine.Compare(context.Background(), NewRequest(q, Options{}))
		if err != nil {
			t.Fatal(err)
		}
		valid, err := engine.Search(context.Background(), NewRequest(q, Options{}))
		if err != nil {
			t.Fatal(err)
		}
		maxm, err := engine.Search(context.Background(), NewRequest(q, Options{Algorithm: MaxMatch}))
		if err != nil {
			t.Fatal(err)
		}
		if cmp.NumRTFs != len(valid.Fragments) || cmp.NumRTFs != len(maxm.Fragments) {
			t.Fatalf("%q: fragment counts inconsistent", q)
		}
		same := 0
		for i := range valid.Fragments {
			a, b := valid.Fragments[i], maxm.Fragments[i]
			if a.Len() != b.Len() {
				continue
			}
			equal := true
			for j := range a.Nodes {
				if a.Nodes[j].Dewey != b.Nodes[j].Dewey {
					equal = false
					break
				}
			}
			if equal {
				same++
			}
		}
		wantCFR := 1.0
		if cmp.NumRTFs > 0 {
			wantCFR = float64(same) / float64(cmp.NumRTFs)
		}
		if diff := cmp.Ratios.CFR - wantCFR; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%q: Compare CFR %v but recomputed %v", q, cmp.Ratios.CFR, wantCFR)
		}
	}
}

// Invariant 5: shred → save → load → search gives identical fragments to
// searching the original tree, at dataset scale.
func TestIntegrationStoreRoundTripAtScale(t *testing.T) {
	engine, queries := dblpTestEngine(t)
	st := store.Shred(engine.Tree(), analysis.New())
	fromStore := FromStore(st)
	for _, q := range queries[:8] {
		a, err := engine.Search(context.Background(), NewRequest(q, Options{}))
		if err != nil {
			t.Fatal(err)
		}
		b, err := fromStore.Search(context.Background(), NewRequest(q, Options{}))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Fragments) != len(b.Fragments) {
			t.Fatalf("%q: %d vs %d fragments", q, len(a.Fragments), len(b.Fragments))
		}
		for i := range a.Fragments {
			if a.Fragments[i].Root != b.Fragments[i].Root || a.Fragments[i].Len() != b.Fragments[i].Len() {
				t.Fatalf("%q fragment %d differs", q, i)
			}
		}
	}
}

// Invariant 6: ranked results are a permutation of unranked results with
// non-increasing scores.
func TestIntegrationRankingPermutation(t *testing.T) {
	engine, queries := xmarkTestEngine(t)
	for _, q := range queries[:8] {
		plain, err := engine.Search(context.Background(), NewRequest(q, Options{}))
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := engine.Search(context.Background(), NewRequest(q, Options{Rank: true}))
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Fragments) != len(ranked.Fragments) {
			t.Fatalf("%q: ranking changed fragment count", q)
		}
		seen := map[string]bool{}
		for _, f := range plain.Fragments {
			seen[f.Root] = true
		}
		prev := -1.0
		for i, f := range ranked.Fragments {
			if !seen[f.Root] {
				t.Fatalf("%q: ranked root %s not in unranked set", q, f.Root)
			}
			if i > 0 && f.Score > prev+1e-12 {
				t.Fatalf("%q: scores not non-increasing at %d: %v > %v", q, i, f.Score, prev)
			}
			prev = f.Score
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
