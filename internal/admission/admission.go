// Package admission is the concurrency-limited, queue-bounded front door of
// the serving stack: every search acquires a slot before it may touch the
// pipeline, at most MaxInFlight searches execute at once, at most MaxQueue
// more wait for a slot, and everything beyond that is shed immediately with
// a structured error the HTTP layer maps to a fast 429/503 plus Retry-After.
//
// Shedding is the point: an overloaded server that answers "no" in
// microseconds keeps its admitted requests fast and its memory bounded,
// where an unbounded accept loop degrades every request at once. The
// ROADMAP's scatter-gather direction lists this front door as a
// prerequisite — a shard that cannot shed cannot be load-balanced around.
//
// A queued request does not wait forever: its queue wait is carved out of
// the request's own deadline (half the remaining budget, capped by
// MaxQueueWait), so a request admitted late still has time to do its work,
// and one that would not is turned away while its client is still listening.
//
// Draining (SIGTERM) flips the front door shut: new acquisitions fail with
// ErrDraining — the HTTP layer answers 503 with Connection: close — while
// requests already executing or already queued proceed to completion within
// the server's drain budget.
package admission

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Shed errors, matched with errors.Is. All three mean "not admitted, try
// elsewhere or later"; they differ in what the client should conclude.
var (
	// ErrShed reports a full queue: the server is saturated and the request
	// was rejected without waiting (HTTP 429).
	ErrShed = errors.New("admission: saturated, request shed")
	// ErrQueueTimeout reports a queue wait that exhausted the request's
	// carved-out budget before a slot freed (HTTP 503).
	ErrQueueTimeout = errors.New("admission: queue wait exceeded")
	// ErrDraining reports a server shutting down: it finishes what it has
	// but admits nothing new (HTTP 503 + Connection: close).
	ErrDraining = errors.New("admission: draining, not admitting new requests")
)

// Config sizes the front door. The zero value of a field picks its default.
type Config struct {
	// MaxInFlight bounds concurrently executing searches (default 256).
	MaxInFlight int
	// MaxQueue bounds searches waiting for a slot (default 4×MaxInFlight).
	// Zero queue capacity is expressed as -1: saturation sheds immediately.
	MaxQueue int
	// MaxQueueWait caps one request's time in the queue (default 2s); the
	// effective wait is further bounded by half the request's remaining
	// deadline budget.
	MaxQueueWait time.Duration
}

// Controller is the front door. One Controller guards one serving surface;
// its counters feed /metrics and the explain span tree.
type Controller struct {
	slots    chan struct{}
	maxQueue int64
	maxWait  time.Duration
	queued   atomic.Int64
	draining atomic.Bool

	admitted      atomic.Uint64
	queuedTotal   atomic.Uint64
	shedFull      atomic.Uint64
	shedTimeout   atomic.Uint64
	shedDraining  atomic.Uint64
	queueWaitUsec atomic.Uint64
}

// New builds a controller from cfg (see Config for defaults).
func New(cfg Config) *Controller {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.MaxQueueWait <= 0 {
		cfg.MaxQueueWait = 2 * time.Second
	}
	return &Controller{
		slots:    make(chan struct{}, cfg.MaxInFlight),
		maxQueue: int64(cfg.MaxQueue),
		maxWait:  cfg.MaxQueueWait,
	}
}

// Acquire admits one request: it returns a release func (call exactly once,
// when the request's work — including response streaming — is done) and the
// time spent queued. A request that cannot be admitted fails fast with
// ErrDraining, ErrShed, ErrQueueTimeout, or the caller's own ctx error; no
// shed path blocks, so rejection latency stays in microseconds regardless
// of load.
func (c *Controller) Acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	if c.draining.Load() {
		c.shedDraining.Add(1)
		return nil, 0, ErrDraining
	}
	// Fast path: a free slot means no queueing at all.
	select {
	case c.slots <- struct{}{}:
		c.admitted.Add(1)
		return c.release, 0, nil
	default:
	}
	// Saturated: queue if the queue has room, shed immediately otherwise.
	if c.queued.Add(1) > c.maxQueue {
		c.queued.Add(-1)
		c.shedFull.Add(1)
		return nil, 0, ErrShed
	}
	defer c.queued.Add(-1)
	c.queuedTotal.Add(1)

	// The queue wait is carved out of the request's own budget: half the
	// remaining deadline (a request admitted with no time left would only
	// be cancelled mid-pipeline), capped by the configured maximum.
	wait := c.maxWait
	if dl, ok := ctx.Deadline(); ok {
		if carve := time.Until(dl) / 2; carve < wait {
			wait = carve
		}
	}
	start := time.Now()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case c.slots <- struct{}{}:
		waited = time.Since(start)
		c.queueWaitUsec.Add(uint64(waited.Microseconds()))
		c.admitted.Add(1)
		return c.release, waited, nil
	case <-timer.C:
		c.shedTimeout.Add(1)
		return nil, time.Since(start), ErrQueueTimeout
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	}
}

func (c *Controller) release() { <-c.slots }

// Drain flips the controller into draining mode: every later Acquire fails
// with ErrDraining, while requests already executing — and waiters already
// queued, which keep their place — run to completion. Draining is one-way.
func (c *Controller) Drain() { c.draining.Store(true) }

// Draining reports whether Drain has been called.
func (c *Controller) Draining() bool { return c.draining.Load() }

// Stats is a point-in-time view of the front door.
type Stats struct {
	// InFlight and Queued are instantaneous gauges; the rest are
	// monotone counters.
	InFlight     int    `json:"inFlight"`
	Queued       int    `json:"queued"`
	Admitted     uint64 `json:"admitted"`
	QueuedTotal  uint64 `json:"queuedTotal"`
	ShedFull     uint64 `json:"shedQueueFull"`
	ShedTimeout  uint64 `json:"shedQueueTimeout"`
	ShedDraining uint64 `json:"shedDraining"`
	Draining     bool   `json:"draining"`
	MaxInFlight  int    `json:"maxInFlight"`
	MaxQueue     int    `json:"maxQueue"`
}

// Stats reads the live counters (lock-free; approximately consistent).
func (c *Controller) Stats() Stats {
	q := c.queued.Load()
	if q < 0 {
		q = 0
	}
	return Stats{
		InFlight:     len(c.slots),
		Queued:       int(q),
		Admitted:     c.admitted.Load(),
		QueuedTotal:  c.queuedTotal.Load(),
		ShedFull:     c.shedFull.Load(),
		ShedTimeout:  c.shedTimeout.Load(),
		ShedDraining: c.shedDraining.Load(),
		Draining:     c.draining.Load(),
		MaxInFlight:  cap(c.slots),
		MaxQueue:     int(c.maxQueue),
	}
}

// WritePrometheus appends the admission families to a Prometheus text
// exposition (version 0.0.4) — the HTTP layer calls it right after the
// service's own writer so one /metrics scrape covers both.
func (c *Controller) WritePrometheus(w io.Writer) {
	s := c.Stats()
	fmt.Fprintf(w, "# HELP xks_admission_admitted_total Requests admitted past the front door.\n# TYPE xks_admission_admitted_total counter\nxks_admission_admitted_total %d\n", s.Admitted)
	fmt.Fprintf(w, "# HELP xks_admission_queued_total Admission attempts that waited in the queue.\n# TYPE xks_admission_queued_total counter\nxks_admission_queued_total %d\n", s.QueuedTotal)
	fmt.Fprintf(w, "# HELP xks_admission_shed_total Requests rejected at the front door, by reason.\n# TYPE xks_admission_shed_total counter\n")
	fmt.Fprintf(w, "xks_admission_shed_total{reason=\"queue-full\"} %d\n", s.ShedFull)
	fmt.Fprintf(w, "xks_admission_shed_total{reason=\"queue-timeout\"} %d\n", s.ShedTimeout)
	fmt.Fprintf(w, "xks_admission_shed_total{reason=\"draining\"} %d\n", s.ShedDraining)
	fmt.Fprintf(w, "# HELP xks_admission_inflight Searches executing right now.\n# TYPE xks_admission_inflight gauge\nxks_admission_inflight %d\n", s.InFlight)
	fmt.Fprintf(w, "# HELP xks_admission_queue_depth Searches waiting for a slot right now.\n# TYPE xks_admission_queue_depth gauge\nxks_admission_queue_depth %d\n", s.Queued)
	drain := 0
	if s.Draining {
		drain = 1
	}
	fmt.Fprintf(w, "# HELP xks_admission_draining Whether the front door is draining (1) or serving (0).\n# TYPE xks_admission_draining gauge\nxks_admission_draining %d\n", drain)
}
