package admission

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestAcquireFastPath pins the uncontended contract: a free slot admits
// with zero queue wait, and release frees the slot for the next request.
func TestAcquireFastPath(t *testing.T) {
	c := New(Config{MaxInFlight: 2})
	release, waited, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if waited != 0 {
		t.Fatalf("fast path reported queue wait %v", waited)
	}
	if got := c.Stats().InFlight; got != 1 {
		t.Fatalf("in-flight gauge = %d, want 1", got)
	}
	release()
	if got := c.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight gauge after release = %d, want 0", got)
	}
	if s := c.Stats(); s.Admitted != 1 || s.QueuedTotal != 0 {
		t.Fatalf("stats = %+v, want admitted=1 queuedTotal=0", s)
	}
}

// TestQueueAdmitsWhenSlotFrees pins the queue path: a request arriving at
// a saturated controller waits, and is admitted — with a measured wait —
// when the in-flight request releases its slot.
func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	type got struct {
		release func()
		waited  time.Duration
		err     error
	}
	done := make(chan got, 1)
	go func() {
		r, w, err := c.Acquire(context.Background())
		done <- got{r, w, err}
	}()

	// Let the waiter reach the queue, then free the slot it is waiting for.
	for c.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	hold()
	g := <-done
	if g.err != nil {
		t.Fatal(g.err)
	}
	defer g.release()
	if s := c.Stats(); s.Admitted != 2 || s.QueuedTotal != 1 {
		t.Fatalf("stats = %+v, want admitted=2 queuedTotal=1", s)
	}
}

// TestOverloadShedIsFast pins the overload contract the ISSUE names: with
// the queue disabled and every slot held, excess requests are rejected
// with ErrShed without blocking — the shed path is a couple of atomic
// operations, so rejection latency stays far under the 10ms bound however
// saturated the server is. The median guards against scheduler blips on
// loaded CI machines; no single probe may block for real.
func TestOverloadShedIsFast(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: -1})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	const probes = 50
	lat := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		_, _, err := c.Acquire(context.Background())
		d := time.Since(start)
		if !errors.Is(err, ErrShed) {
			t.Fatalf("probe %d: err = %v, want ErrShed", i, err)
		}
		lat = append(lat, d)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if med := lat[probes/2]; med >= 10*time.Millisecond {
		t.Fatalf("median shed latency %v, want < 10ms", med)
	}
	if worst := lat[probes-1]; worst >= time.Second {
		t.Fatalf("worst shed latency %v: the shed path blocked", worst)
	}
	if s := c.Stats(); s.ShedFull != probes {
		t.Fatalf("shedQueueFull = %d, want %d", s.ShedFull, probes)
	}
}

// TestQueueTimeoutSheds pins the bounded-wait contract: a queued request
// whose configured wait expires before a slot frees fails with
// ErrQueueTimeout instead of waiting forever.
func TestQueueTimeoutSheds(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4, MaxQueueWait: 20 * time.Millisecond})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	start := time.Now()
	_, waited, err := c.Acquire(context.Background())
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if waited < 20*time.Millisecond {
		t.Fatalf("queue timeout fired after %v, before the 20ms wait", waited)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("queue timeout took %v", e)
	}
	if s := c.Stats(); s.ShedTimeout != 1 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want shedQueueTimeout=1 queued=0", s)
	}
}

// TestQueueWaitCarvedFromDeadline pins the budget carve: a request with
// 60ms of deadline left queues for at most half of it, even when the
// configured MaxQueueWait is far longer — a request admitted with no time
// to run is worse than one turned away while its client still listens.
func TestQueueWaitCarvedFromDeadline(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4, MaxQueueWait: 10 * time.Second})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = c.Acquire(ctx)
	elapsed := time.Since(start)
	// The carved wait (~30ms) expires before the 60ms deadline, so the
	// request sheds as a queue timeout, not a context error.
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if elapsed >= 60*time.Millisecond {
		t.Fatalf("carved wait took %v, at least the full 60ms deadline", elapsed)
	}
}

// TestDrainRejectsNewKeepsQueued pins the drain semantics behind SIGTERM:
// after Drain, new acquisitions fail fast with ErrDraining, while a waiter
// already queued keeps its place and is admitted when a slot frees.
func TestDrainRejectsNewKeepsQueued(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		release, _, err := c.Acquire(context.Background())
		if err == nil {
			release()
		}
		queuedErr <- err
	}()
	for c.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}

	c.Drain()
	if !c.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, _, err := c.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Acquire err = %v, want ErrDraining", err)
	}

	// The waiter queued before Drain still gets its slot.
	hold()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued waiter err = %v, want admission", err)
	}
	if s := c.Stats(); s.ShedDraining != 1 || !s.Draining {
		t.Fatalf("stats = %+v, want shedDraining=1 draining=true", s)
	}
}

// TestWritePrometheus pins the exposition families the CI smoke test and
// dashboards grep for.
func TestWritePrometheus(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: -1})
	release, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}

	var b strings.Builder
	c.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"xks_admission_admitted_total 1",
		`xks_admission_shed_total{reason="queue-full"} 1`,
		`xks_admission_shed_total{reason="queue-timeout"} 0`,
		`xks_admission_shed_total{reason="draining"} 0`,
		"xks_admission_inflight 1",
		"xks_admission_queue_depth 0",
		"xks_admission_draining 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
