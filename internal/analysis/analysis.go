// Package analysis provides the text pipeline used to derive the content set
// Cv of an XML node: tokenization, lower-casing and English stop-word
// removal.
//
// The paper tokenizes node labels, attribute values and text values, filters
// stop words with Lucene's English stop filter, and treats the remaining
// lower-cased words as the node's content. This package reproduces that
// pipeline with the standard library only: the stop list is the classic
// Lucene/Smart English list.
package analysis

import (
	"strings"
	"unicode"
)

// Analyzer turns raw text into content words. The zero value is not usable;
// construct one with New.
type Analyzer struct {
	stop       map[string]struct{}
	keepDigits bool
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithStopWords replaces the default stop list. Passing an empty slice
// disables stop-word filtering.
func WithStopWords(words []string) Option {
	return func(a *Analyzer) {
		a.stop = make(map[string]struct{}, len(words))
		for _, w := range words {
			a.stop[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithDigits keeps purely numeric tokens (they are dropped by default, the
// way the paper's shredder only records "interesting words").
func WithDigits() Option {
	return func(a *Analyzer) { a.keepDigits = true }
}

// New returns an Analyzer with the default English stop list.
func New(opts ...Option) *Analyzer {
	a := &Analyzer{stop: defaultStopSet()}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Tokens splits s into lower-cased word tokens, dropping stop words and (by
// default) purely numeric tokens. Tokens preserve input order and may
// repeat.
func (a *Analyzer) Tokens(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	a.appendTokens(&out, s)
	return out
}

// ContentSet returns the distinct content words of the given pieces of text
// (label, attribute values, text value), in unspecified order. This is the
// Cv of the paper: the word set implied in a node's label, text and
// attributes.
func (a *Analyzer) ContentSet(pieces ...string) []string {
	var toks []string
	for _, p := range pieces {
		a.appendTokens(&toks, p)
	}
	if len(toks) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Normalize lower-cases a single query keyword, returning "" if the keyword
// is a stop word or tokenizes to nothing. Multi-word input keeps only the
// first token.
func (a *Analyzer) Normalize(word string) string {
	toks := a.Tokens(word)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}

// NormalizeQuery normalizes every keyword of a whitespace-separated query,
// dropping empties and duplicates while preserving first-occurrence order.
func (a *Analyzer) NormalizeQuery(q string) []string {
	toks := a.Tokens(q)
	seen := make(map[string]struct{}, len(toks))
	var out []string
	for _, t := range toks {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// IsStopWord reports whether w (any case) is on the analyzer's stop list.
func (a *Analyzer) IsStopWord(w string) bool {
	_, ok := a.stop[strings.ToLower(w)]
	return ok
}

func (a *Analyzer) appendTokens(dst *[]string, s string) {
	start := -1
	hasLetter := false
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := strings.ToLower(s[start:end])
		start = -1
		if !hasLetter && !a.keepDigits {
			hasLetter = false
			return
		}
		hasLetter = false
		if _, stop := a.stop[tok]; stop {
			return
		}
		*dst = append(*dst, tok)
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			if unicode.IsLetter(r) {
				hasLetter = true
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
}
