package analysis

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTokensBasic(t *testing.T) {
	a := New()
	cases := []struct {
		in   string
		want []string
	}{
		{"XML Keyword Search", []string{"xml", "keyword", "search"}},
		{"Efficient Skyline Querying with Variable User Preferences on Nominal Attributes",
			[]string{"efficient", "skyline", "querying", "variable", "user", "preferences", "nominal", "attributes"}},
		{"the and of", nil},
		{"", nil},
		{"   ", nil},
		{"Liu,Chen;Wong", []string{"liu", "chen", "wong"}},
		{"foo-bar_baz", []string{"foo", "bar", "baz"}},
		{"2008", nil},                   // pure digits dropped by default
		{"VLDB 2008", []string{"vldb"}}, // year dropped, venue kept
		{"B2B x86", []string{"b2b", "x86"}},
	}
	for _, c := range cases {
		got := a.Tokens(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokensKeepDigits(t *testing.T) {
	a := New(WithDigits())
	got := a.Tokens("VLDB 2008")
	want := []string{"vldb", "2008"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestContentSetDedupsAcrossPieces(t *testing.T) {
	a := New()
	got := a.ContentSet("title", "Keyword Search", "keyword match")
	sort.Strings(got)
	want := []string{"keyword", "match", "search", "title"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentSet = %v, want %v", got, want)
	}
}

func TestContentSetEmpty(t *testing.T) {
	a := New()
	if got := a.ContentSet("", "the", "of"); got != nil {
		t.Errorf("ContentSet of stop words = %v, want nil", got)
	}
}

func TestNormalize(t *testing.T) {
	a := New()
	if got := a.Normalize("Keyword"); got != "keyword" {
		t.Errorf("Normalize = %q", got)
	}
	if got := a.Normalize("THE"); got != "" {
		t.Errorf("Normalize stop word = %q, want empty", got)
	}
	if got := a.Normalize(""); got != "" {
		t.Errorf("Normalize empty = %q", got)
	}
}

func TestNormalizeQuery(t *testing.T) {
	a := New()
	got := a.NormalizeQuery("XML the XML keyword")
	want := []string{"xml", "keyword"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeQuery = %v, want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	a := New()
	if !a.IsStopWord("The") {
		t.Error("The should be a stop word")
	}
	if a.IsStopWord("keyword") {
		t.Error("keyword should not be a stop word")
	}
}

func TestWithStopWordsOverride(t *testing.T) {
	a := New(WithStopWords([]string{"xml"}))
	got := a.Tokens("the xml keyword")
	want := []string{"the", "keyword"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens with custom stop list = %v, want %v", got, want)
	}
	empty := New(WithStopWords(nil))
	got = empty.Tokens("the keyword")
	want = []string{"the", "keyword"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens with empty stop list = %v, want %v", got, want)
	}
}

func TestDefaultStopWordsCopy(t *testing.T) {
	w := DefaultStopWords()
	if len(w) == 0 {
		t.Fatal("empty default stop list")
	}
	w[0] = "MUTATED"
	if DefaultStopWords()[0] == "MUTATED" {
		t.Error("DefaultStopWords returns shared storage")
	}
}

func TestUnicodeTokens(t *testing.T) {
	a := New()
	got := a.Tokens("Rémi Gilleron, Aurélien Lemay")
	want := []string{"rémi", "gilleron", "aurélien", "lemay"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("unicode Tokens = %v, want %v", got, want)
	}
}

// Property: tokens are lower case, non-empty, never stop words, and re-tokenizing
// a token yields the token itself (idempotence).
func TestTokensIdempotent(t *testing.T) {
	a := New()
	f := func(s string) bool {
		for _, tok := range a.Tokens(s) {
			if tok == "" || a.IsStopWord(tok) {
				return false
			}
			again := a.Tokens(tok)
			if len(again) != 1 || again[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: ContentSet returns distinct words and is invariant to piece order.
func TestContentSetDistinctAndOrderInvariant(t *testing.T) {
	a := New()
	f := func(p1, p2 string) bool {
		s1 := a.ContentSet(p1, p2)
		s2 := a.ContentSet(p2, p1)
		m := map[string]int{}
		for _, w := range s1 {
			m[w]++
			if m[w] > 1 {
				return false
			}
		}
		if len(s1) != len(s2) {
			return false
		}
		set2 := map[string]struct{}{}
		for _, w := range s2 {
			set2[w] = struct{}{}
		}
		for _, w := range s1 {
			if _, ok := set2[w]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokens(b *testing.B) {
	a := New()
	s := "Efficient Skyline Querying with Variable User Preferences on Nominal Attributes in the VLDB 2008 proceedings"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Tokens(s)
	}
}
