// Package axioms checks the four axiomatic properties of Liu & Chen (VLDB
// 2008) that §4.3(2) of the paper claims for ValidRTF:
//
//	data monotonicity    — adding a node never decreases the number of
//	                       query results;
//	query monotonicity   — adding a query keyword never increases the
//	                       number of query results;
//	data consistency     — after a data insertion, every additional result
//	                       subtree contains the new node;
//	query consistency    — after adding a keyword, every additional result
//	                       subtree contains a match to it.
//
// The checkers run a search engine before and after a mutation and return a
// structured verdict; the property-based tests drive them with randomized
// trees, insertions and keyword extensions.
package axioms

import (
	"context"
	"fmt"
	"strings"

	"xks"
	"xks/internal/dewey"
	"xks/internal/xmltree"
)

// Verdict reports one property check.
type Verdict struct {
	Property string
	Holds    bool
	Detail   string
}

func ok(property string) Verdict { return Verdict{Property: property, Holds: true} }

func fail(property, format string, args ...interface{}) Verdict {
	return Verdict{Property: property, Holds: false, Detail: fmt.Sprintf(format, args...)}
}

// resultSets extracts the kept-node sets of every fragment, keyed by
// fragment root.
func resultSets(res *xks.Result) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(res.Fragments))
	for _, f := range res.Fragments {
		set := make(map[string]bool, len(f.Nodes))
		for _, n := range f.Nodes {
			set[n.Dewey] = true
		}
		out[f.Root] = set
	}
	return out
}

// CheckDataMonotonicity verifies that a search over the extended tree
// (after inserting a subtree under parent) yields at least as many results
// as over the base tree.
func CheckDataMonotonicity(base *xmltree.Tree, parent dewey.Code, sub xmltree.E, query string, opts xks.Options) (Verdict, error) {
	const prop = "data monotonicity"
	before, after, _, err := searchAround(base, parent, sub, query, opts)
	if err != nil {
		return Verdict{}, err
	}
	if len(after.Fragments) < len(before.Fragments) {
		return fail(prop, "results dropped from %d to %d after insertion", len(before.Fragments), len(after.Fragments)), nil
	}
	return ok(prop), nil
}

// CheckDataConsistency verifies that every additional result subtree after
// a data insertion contains the newly inserted node (identified by its
// Dewey code in the extended tree).
func CheckDataConsistency(base *xmltree.Tree, parent dewey.Code, sub xmltree.E, query string, opts xks.Options) (Verdict, error) {
	const prop = "data consistency"
	before, after, inserted, err := searchAround(base, parent, sub, query, opts)
	if err != nil {
		return Verdict{}, err
	}
	beforeSets := resultSets(before)
	insertedPrefix := inserted.String()
	// "Each additional subtree which becomes (part of) a query result
	// should contain the newly inserted node": we check every result whose
	// root did not exist before the insertion. Results with pre-existing
	// roots may legitimately shrink or rebalance when the insertion
	// creates a deeper interesting LCA that absorbs their keyword nodes.
	for _, f := range after.Fragments {
		if _, existed := beforeSets[f.Root]; existed {
			continue
		}
		found := false
		for _, n := range f.Nodes {
			if n.Dewey == insertedPrefix || strings.HasPrefix(n.Dewey, insertedPrefix+".") {
				found = true
				break
			}
		}
		if !found {
			return fail(prop, "new result at %s does not contain inserted node %s", f.Root, insertedPrefix), nil
		}
	}
	return ok(prop), nil
}

// searchAround runs the query on the base tree and on a clone with sub
// inserted under parent, returning both results and the inserted node's
// code in the extended tree.
func searchAround(base *xmltree.Tree, parent dewey.Code, sub xmltree.E, query string, opts xks.Options) (*xks.Result, *xks.Result, dewey.Code, error) {
	before, err := xks.FromTree(base).Search(context.Background(), xks.NewRequest(query, opts))
	if err != nil {
		return nil, nil, nil, err
	}
	extended := base.Clone()
	node, err := extended.AddChild(parent, sub)
	if err != nil {
		return nil, nil, nil, err
	}
	after, err := xks.FromTree(extended).Search(context.Background(), xks.NewRequest(query, opts))
	if err != nil {
		return nil, nil, nil, err
	}
	return before, after, node.Code, nil
}

// CheckQueryMonotonicity verifies that extending the query with one more
// keyword yields at most as many results.
func CheckQueryMonotonicity(tree *xmltree.Tree, query, extraKeyword string, opts xks.Options) (Verdict, error) {
	const prop = "query monotonicity"
	engine := xks.FromTree(tree)
	before, err := engine.Search(context.Background(), xks.NewRequest(query, opts))
	if err != nil {
		return Verdict{}, err
	}
	after, err := engine.Search(context.Background(), xks.NewRequest(query+" "+extraKeyword, opts))
	if err != nil {
		return Verdict{}, err
	}
	if len(after.Fragments) > len(before.Fragments) {
		return fail(prop, "results grew from %d to %d after adding %q", len(before.Fragments), len(after.Fragments), extraKeyword), nil
	}
	return ok(prop), nil
}

// CheckQueryConsistency verifies that every additional result subtree after
// adding a keyword contains a match to the new keyword.
func CheckQueryConsistency(tree *xmltree.Tree, query, extraKeyword string, opts xks.Options) (Verdict, error) {
	const prop = "query consistency"
	engine := xks.FromTree(tree)
	before, err := engine.Search(context.Background(), xks.NewRequest(query, opts))
	if err != nil {
		return Verdict{}, err
	}
	after, err := engine.Search(context.Background(), xks.NewRequest(query+" "+extraKeyword, opts))
	if err != nil {
		return Verdict{}, err
	}
	beforeSets := resultSets(before)
	norm := strings.ToLower(strings.TrimSpace(extraKeyword))
	for _, f := range after.Fragments {
		if old, existed := beforeSets[f.Root]; existed && isSubset(f, old) {
			continue // shrunk or unchanged version of an old result
		}
		found := false
		for _, n := range f.KeywordNodes() {
			for _, m := range n.Matched {
				if m == norm {
					found = true
					break
				}
			}
		}
		if !found {
			return fail(prop, "new result at %s has no match for %q", f.Root, extraKeyword), nil
		}
	}
	return ok(prop), nil
}

func isSubset(f *xks.Fragment, old map[string]bool) bool {
	for _, n := range f.Nodes {
		if !old[n.Dewey] {
			return false
		}
	}
	return true
}

// CheckAll runs the four properties with the given mutation parameters and
// returns all verdicts.
func CheckAll(base *xmltree.Tree, parent dewey.Code, sub xmltree.E, query, extraKeyword string, opts xks.Options) ([]Verdict, error) {
	var out []Verdict
	v, err := CheckDataMonotonicity(base, parent, sub, query, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, v)
	v, err = CheckDataConsistency(base, parent, sub, query, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, v)
	v, err = CheckQueryMonotonicity(base, query, extraKeyword, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, v)
	v, err = CheckQueryConsistency(base, query, extraKeyword, opts)
	if err != nil {
		return nil, err
	}
	out = append(out, v)
	return out, nil
}
