package axioms

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"xks"
	"xks/internal/dewey"
	"xks/internal/paperdata"
	"xks/internal/xmltree"
)

func TestDataMonotonicityOnPaperInstance(t *testing.T) {
	tree := paperdata.Publications()
	sub := xmltree.E{Label: "article", Kids: []xmltree.E{
		{Label: "title", Text: "Another Liu keyword paper"},
	}}
	v, err := CheckDataMonotonicity(tree, dewey.MustParse("0.2"), sub, paperdata.Q2, xks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Errorf("%s failed: %s", v.Property, v.Detail)
	}
}

func TestDataConsistencyOnPaperInstance(t *testing.T) {
	tree := paperdata.Publications()
	sub := xmltree.E{Label: "article", Kids: []xmltree.E{
		{Label: "title", Text: "Liu on keyword search"},
	}}
	v, err := CheckDataConsistency(tree, dewey.MustParse("0.2"), sub, paperdata.Q2, xks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Errorf("%s failed: %s", v.Property, v.Detail)
	}
}

func TestQueryMonotonicityOnPaperInstance(t *testing.T) {
	tree := paperdata.Publications()
	v, err := CheckQueryMonotonicity(tree, "keyword", "liu", xks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Errorf("%s failed: %s", v.Property, v.Detail)
	}
}

func TestQueryConsistencyOnPaperInstance(t *testing.T) {
	tree := paperdata.Publications()
	v, err := CheckQueryConsistency(tree, "keyword", "liu", xks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Errorf("%s failed: %s", v.Property, v.Detail)
	}
}

func TestCheckAll(t *testing.T) {
	tree := paperdata.Team()
	sub := xmltree.E{Label: "player", Kids: []xmltree.E{
		{Label: "name", Text: "Gay"},
		{Label: "position", Text: "forward"},
	}}
	vs, err := CheckAll(tree, dewey.MustParse("0.1"), sub, paperdata.Q4, "gassol", xks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	for _, v := range vs {
		if !v.Holds {
			t.Errorf("%s failed: %s", v.Property, v.Detail)
		}
	}
}

// Randomized trees: labels and words drawn from small pools so collisions
// are common and the pruning rules all fire.
func randomTree(rng *rand.Rand) *xmltree.Tree {
	labels := []string{"a", "b", "c"}
	words := []string{"alpha", "beta", "gamma", "delta"}
	var gen func(depth int) xmltree.E
	gen = func(depth int) xmltree.E {
		e := xmltree.E{Label: labels[rng.Intn(len(labels))]}
		if rng.Intn(2) == 0 {
			e.Text = words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		}
		if depth < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				e.Kids = append(e.Kids, gen(depth+1))
			}
		}
		return e
	}
	root := xmltree.E{Label: "root"}
	for i := 0; i < 2+rng.Intn(3); i++ {
		root.Kids = append(root.Kids, gen(1))
	}
	return xmltree.Build(root)
}

func randomParent(rng *rand.Rand, tree *xmltree.Tree) dewey.Code {
	nodes := tree.Nodes()
	return nodes[rng.Intn(len(nodes))].Code
}

func randomSubtree(rng *rand.Rand) xmltree.E {
	words := []string{"alpha", "beta", "gamma", "delta"}
	e := xmltree.E{Label: "x", Text: words[rng.Intn(len(words))]}
	if rng.Intn(2) == 0 {
		e.Kids = append(e.Kids, xmltree.E{Label: "y", Text: words[rng.Intn(len(words))]})
	}
	return e
}

// The four properties hold across randomized trees, insertion points and
// query extensions (§4.3(2) of the paper).
func TestAxiomsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	queries := []string{"alpha", "alpha beta", "gamma delta"}
	extras := []string{"beta", "gamma", "delta"}
	trials := 0
	for i := 0; i < 300; i++ {
		tree := randomTree(rng)
		query := queries[rng.Intn(len(queries))]
		extra := extras[rng.Intn(len(extras))]
		// Skip trees where the query matches nothing (vacuous).
		engine := xks.FromTree(tree)
		res, err := engine.Search(context.Background(), xks.NewRequest(query, xks.Options{}))
		if err != nil || len(res.Fragments) == 0 {
			continue
		}
		trials++
		vs, err := CheckAll(tree, randomParent(rng, tree), randomSubtree(rng), query, extra, xks.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		for _, v := range vs {
			if !v.Holds {
				t.Fatalf("trial %d: %s failed: %s\n%s", i, v.Property, v.Detail,
					xmltree.ASCIITree(tree.Root, nil))
			}
		}
	}
	if trials < 50 {
		t.Fatalf("only %d meaningful trials", trials)
	}
}

// The same properties checked under the MaxMatch baseline, which the paper
// proved satisfies them as well.
func TestAxiomsRandomizedMaxMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	opts := xks.Options{Algorithm: xks.MaxMatch}
	trials := 0
	for i := 0; i < 150; i++ {
		tree := randomTree(rng)
		engine := xks.FromTree(tree)
		res, err := engine.Search(context.Background(), xks.NewRequest("alpha beta", opts))
		if err != nil || len(res.Fragments) == 0 {
			continue
		}
		trials++
		vs, err := CheckAll(tree, randomParent(rng, tree), randomSubtree(rng), "alpha beta", "gamma", opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			if !v.Holds {
				t.Fatalf("trial %d: %s failed under MaxMatch: %s", i, v.Property, v.Detail)
			}
		}
	}
	if trials < 20 {
		t.Fatalf("only %d meaningful trials", trials)
	}
}

func TestVerdictFormatting(t *testing.T) {
	v := fail("p", "value %d", 42)
	if v.Holds || v.Detail != "value 42" {
		t.Errorf("fail verdict = %+v", v)
	}
	if s := fmt.Sprintf("%+v", ok("p")); s == "" {
		t.Error("empty verdict formatting")
	}
}

func TestCheckersPropagateErrors(t *testing.T) {
	tree := paperdata.Team()
	// Insertion under a nonexistent parent.
	if _, err := CheckDataMonotonicity(tree, dewey.MustParse("9.9"), xmltree.E{Label: "x"}, "position", xks.Options{}); err == nil {
		t.Error("bad parent should error")
	}
	// Unsearchable query.
	if _, err := CheckQueryMonotonicity(tree, "the", "of", xks.Options{}); err == nil {
		t.Error("stop-word query should error")
	}
}
