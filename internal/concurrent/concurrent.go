// Package concurrent runs query batches across worker goroutines. The
// engine is immutable after construction, so N workers can share it; the
// experiment harness uses this to cut wall-clock time on multi-core
// machines without perturbing per-query timing (each query still times its
// own pipeline).
package concurrent

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// ErrInternal is the sentinel under every recovered panic: a worker (or any
// other isolated execution) that panicked surfaces as an error wrapping
// ErrInternal instead of crashing the process. Serving layers match it with
// errors.Is to map to 500s and count recoveries; the xks package re-exports
// it as xks.ErrInternal.
var ErrInternal = errors.New("internal error")

// PanicError is the structured form of a recovered panic: the recovered
// value plus the goroutine stack captured at the recovery site, so the
// serving layer can log the stack while clients see only a structured
// internal error. It wraps ErrInternal.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", e.Value) }

func (e *PanicError) Unwrap() error { return ErrInternal }

// Recovered wraps a recover() value into a PanicError, capturing the stack
// of the calling goroutine. Call it only from a deferred recover handler so
// the stack still shows the panic site.
func Recovered(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Result pairs a job index with its outcome.
type Result[T any] struct {
	Index int
	Value T
	Err   error
}

// Map runs fn over every job on up to workers goroutines (default
// GOMAXPROCS) and returns the results in job order. The first error is
// returned alongside the partial results; remaining jobs still run.
func Map[J, T any](jobs []J, workers int, fn func(J) (T, error)) ([]T, error) {
	return MapCtx(nil, jobs, workers, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop picking up new jobs and MapCtx returns ctx.Err() (in-flight fn calls
// still finish — fn is expected to observe ctx itself for mid-job
// cancellation). Every worker goroutine is joined before MapCtx returns, so
// a cancelled fan-out leaks nothing. A nil ctx never cancels.
//
// Panic isolation: a panicking fn does not crash the process (an unrecovered
// panic on a worker goroutine would — no http.Server recovery reaches
// here). The panic is recovered into that job's error as a *PanicError
// (wrapping ErrInternal, stack captured), so one poisoned job degrades the
// fan-out into a structured error instead of killing the server.
func MapCtx[J, T any](ctx context.Context, jobs []J, workers int, fn func(J) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	call := func(j J) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = Recovered(r)
			}
		}()
		return fn(j)
	}
	out := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			if err := ctxErr(); err != nil {
				return out, err
			}
			out[i], errs[i] = call(j)
		}
		return out, firstError(errs)
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctxErr() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				out[i], errs[i] = call(jobs[i])
			}
		}()
	}
	wg.Wait()
	if err := ctxErr(); err != nil {
		return out, err
	}
	return out, firstError(errs)
}

func firstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// ForEach is Map without per-job results.
func ForEach[J any](jobs []J, workers int, fn func(J) error) error {
	_, err := Map(jobs, workers, func(j J) (struct{}, error) {
		return struct{}{}, fn(j)
	})
	return err
}
