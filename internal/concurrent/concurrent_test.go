package concurrent

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	out, err := Map(jobs, 8, func(j int) (int, error) { return j * j, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapAllJobsRunDespiteError(t *testing.T) {
	var ran int64
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := errors.New("boom")
	_, err := Map(jobs, 4, func(j int) (int, error) {
		atomic.AddInt64(&ran, 1)
		if j == 2 {
			return 0, boom
		}
		return j, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != int64(len(jobs)) {
		t.Errorf("ran %d of %d jobs", ran, len(jobs))
	}
}

func TestMapSingleWorkerSequential(t *testing.T) {
	order := []int{}
	jobs := []int{3, 1, 4, 1, 5}
	_, err := Map(jobs, 1, func(j int) (int, error) {
		order = append(order, j) // safe: single worker
		return j, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if order[i] != jobs[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestMapZeroWorkersDefaults(t *testing.T) {
	out, err := Map([]int{1, 2, 3}, 0, func(j int) (int, error) { return j + 1, nil })
	if err != nil || len(out) != 3 || out[2] != 4 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapEmptyJobs(t *testing.T) {
	out, err := Map(nil, 4, func(j int) (int, error) { return j, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapMoreWorkersThanJobs(t *testing.T) {
	out, err := Map([]int{7}, 64, func(j int) (int, error) { return j, nil })
	if err != nil || len(out) != 1 || out[0] != 7 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	err := ForEach([]int{1, 2, 3, 4}, 2, func(j int) error {
		atomic.AddInt64(&sum, int64(j))
		return nil
	})
	if err != nil || sum != 10 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
	boom := errors.New("x")
	if err := ForEach([]int{1}, 2, func(int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkMapParallel(b *testing.B) {
	jobs := make([]int, 256)
	work := func(j int) (int, error) {
		s := 0
		for i := 0; i < 10000; i++ {
			s += i ^ j
		}
		return s, nil
	}
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Map(jobs, 1, work); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Map(jobs, 0, work); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestMapCtxRecoversWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		out, err := MapCtx(context.Background(), jobs, workers, func(j int) (int, error) {
			if j == 3 {
				panic("poisoned job")
			}
			return j * 10, nil
		})
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("workers=%d: err = %v, want ErrInternal", workers, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err %T does not unwrap to *PanicError", workers, err)
		}
		if pe.Value != "poisoned job" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError = {%v, %d stack bytes}", workers, pe.Value, len(pe.Stack))
		}
		// Other jobs still completed (partial results alongside the error).
		if workers > 1 && out[7] != 70 {
			t.Errorf("workers=%d: out[7] = %d, want 70", workers, out[7])
		}
	}
}

func TestMapCtxPanicDoesNotKillProcess(t *testing.T) {
	// A panic on a bare worker goroutine would crash the whole test binary;
	// surviving this call at workers>len-triggering parallelism is the
	// assertion.
	done := make(chan struct{})
	go func() {
		defer close(done)
		MapCtx(context.Background(), make([]int, 64), 8, func(int) (int, error) {
			panic("every job panics")
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("MapCtx did not return")
	}
}
