package datagen

import (
	"math/rand"
	"testing"

	"xks/internal/analysis"
	"xks/internal/index"
	"xks/internal/xmltree"
)

func TestDBLPDeterministic(t *testing.T) {
	cfg := DBLPConfig{Seed: 42, NumRecords: 50}
	a := DBLP(cfg)
	b := DBLP(cfg)
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	an, bn := a.Nodes(), b.Nodes()
	for i := range an {
		if an[i].Label != bn[i].Label || an[i].Text != bn[i].Text {
			t.Fatalf("node %d differs", i)
		}
	}
	c := DBLP(DBLPConfig{Seed: 43, NumRecords: 50})
	diff := false
	cn := c.Nodes()
	for i := range an {
		if i < len(cn) && an[i].Text != cn[i].Text {
			diff = true
			break
		}
	}
	if a.Size() == c.Size() && !diff {
		t.Error("different seeds should differ")
	}
}

func TestDBLPShape(t *testing.T) {
	tree := DBLP(DBLPConfig{Seed: 7, NumRecords: 200})
	if tree.Root.Label != "dblp" {
		t.Errorf("root = %q", tree.Root.Label)
	}
	if got := len(tree.Root.Children); got != 200 {
		t.Errorf("records = %d", got)
	}
	hist := tree.LabelHistogram()
	if hist["title"] != 200 {
		t.Errorf("title count = %d", hist["title"])
	}
	if hist["author"] < 200 {
		t.Errorf("author count = %d, want >= 200", hist["author"])
	}
	if tree.MaxDepth() != 2 {
		t.Errorf("DBLP depth = %d, want 2 (shallow records)", tree.MaxDepth())
	}
	kinds := hist["article"] + hist["inproceedings"] + hist["phdthesis"]
	if kinds != 200 {
		t.Errorf("record kinds sum = %d", kinds)
	}
}

func TestDBLPKeywordFrequencies(t *testing.T) {
	specs := []KeywordSpec{
		{Word: "xml", Count: 25},
		{Word: "keyword", Count: 7},
		{Word: "vldb", Count: 3},
	}
	tree := DBLP(DBLPConfig{Seed: 11, NumRecords: 300, Keywords: specs})
	ix := index.Build(tree, analysis.New())
	for _, s := range specs {
		if got := ix.Frequency(s.Word); got != s.Count {
			t.Errorf("frequency(%s) = %d, want %d", s.Word, got, s.Count)
		}
	}
}

func TestXMarkDeterministicAndShape(t *testing.T) {
	cfg := XMarkConfig{Seed: 3, Items: 60}
	a := XMark(cfg)
	b := XMark(cfg)
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ")
	}
	if a.Root.Label != "site" {
		t.Errorf("root = %q", a.Root.Label)
	}
	hist := a.LabelHistogram()
	if hist["item"] != 60 {
		t.Errorf("items = %d", hist["item"])
	}
	if hist["person"] != 60 {
		t.Errorf("people = %d (default = items)", hist["person"])
	}
	if hist["open_auction"] != 30 || hist["closed_auction"] != 15 {
		t.Errorf("auctions = %d/%d", hist["open_auction"], hist["closed_auction"])
	}
	if a.MaxDepth() < 5 {
		t.Errorf("XMark depth = %d, want >= 5 (deep records)", a.MaxDepth())
	}
	// All six regions present.
	for _, rg := range xmarkRegions {
		if hist[rg] != 1 {
			t.Errorf("region %s count = %d", rg, hist[rg])
		}
	}
}

func TestXMarkKeywordFrequencies(t *testing.T) {
	specs := []KeywordSpec{
		{Word: "particle", Count: 12},
		{Word: "dominator", Count: 56},
		{Word: "preventions", Count: 150},
	}
	tree := XMark(XMarkConfig{Seed: 5, Items: 120, Keywords: specs})
	ix := index.Build(tree, analysis.New())
	for _, s := range specs {
		if got := ix.Frequency(s.Word); got != s.Count {
			t.Errorf("frequency(%s) = %d, want %d", s.Word, got, s.Count)
		}
	}
}

func TestXMarkExplicitSizes(t *testing.T) {
	tree := XMark(XMarkConfig{Seed: 1, Items: 30, People: 10, OpenAuctions: 5, ClosedAuctions: 4, Categories: 3})
	hist := tree.LabelHistogram()
	if hist["person"] != 10 || hist["open_auction"] != 5 || hist["closed_auction"] != 4 || hist["category"] != 3 {
		t.Errorf("explicit sizes not honored: %v", hist)
	}
}

func TestVocabAvoidsKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	avoid := map[string]bool{"xml": true, "system": true}
	v := newVocab(rng, 500, avoid)
	for _, w := range v.words {
		if avoid[w] {
			t.Fatalf("vocabulary contains avoided word %q", w)
		}
	}
	if len(v.words) != 500 {
		t.Errorf("vocab size = %d", len(v.words))
	}
}

func TestVocabZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	v := newVocab(rng, 1000, nil)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[v.word()]++
	}
	// The most frequent word should be much more common than the median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Errorf("head of distribution too flat: max count %d", max)
	}
}

func TestInjectDistinctSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	root := xmltree.E{Label: "r"}
	for i := 0; i < 50; i++ {
		root.Kids = append(root.Kids, xmltree.E{Label: "t", Text: "base"})
	}
	inject(rng, &root, []KeywordSpec{{Word: "zap", Count: 20}})
	hit := 0
	for _, k := range root.Kids {
		if k.Text != "base" {
			if k.Text != "base zap" {
				t.Errorf("unexpected slot text %q", k.Text)
			}
			hit++
		}
	}
	if hit != 20 {
		t.Errorf("injected %d slots, want 20", hit)
	}
}

func TestInjectCapsAtSlotCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	root := xmltree.E{Label: "r", Kids: []xmltree.E{
		{Label: "t", Text: "a"}, {Label: "t", Text: "b"},
	}}
	inject(rng, &root, []KeywordSpec{{Word: "zap", Count: 10}, {Word: "ignored", Count: 0}})
	for _, k := range root.Kids {
		if k.Text != "a zap" && k.Text != "b zap" {
			t.Errorf("slot %q missed capped injection", k.Text)
		}
	}
}

func TestInjectNoSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	root := xmltree.E{Label: "r"}
	inject(rng, &root, []KeywordSpec{{Word: "zap", Count: 3}}) // must not panic
}

func TestSamplePartialDistinctSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(n)
		got := samplePartial(rng, n, k)
		if len(got) != k {
			t.Fatalf("len = %d, want %d", len(got), k)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("not strictly sorted: %v", got)
			}
		}
		for _, x := range got {
			if x < 0 || x >= n {
				t.Fatalf("out of range: %v", got)
			}
		}
	}
}

func BenchmarkDBLP(b *testing.B) {
	cfg := DBLPConfig{Seed: 1, NumRecords: 500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DBLP(cfg)
	}
}

func BenchmarkXMark(b *testing.B) {
	cfg := XMarkConfig{Seed: 1, Items: 120}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XMark(cfg)
	}
}
