package datagen

import (
	"fmt"
	"math/rand"

	"xks/internal/xmltree"
)

// DBLPConfig sizes the synthetic bibliography.
type DBLPConfig struct {
	// Seed drives every random choice; equal configs generate equal trees.
	Seed int64
	// NumRecords is the number of bibliographic records (articles,
	// inproceedings, phdtheses).
	NumRecords int
	// Keywords places the query keywords at the requested node counts.
	Keywords []KeywordSpec
	// VocabSize is the background vocabulary size (default 2000).
	VocabSize int
}

// DBLP generates a DBLP-shaped document: a flat sequence of shallow,
// regular bibliographic records under a single root — the structure that
// makes the paper's DBLP fragments "self-complete" (APR′ = 0): siblings
// under a record have distinct labels, and same-label siblings (authors)
// rarely share keyword sets.
func DBLP(cfg DBLPConfig) *xmltree.Tree {
	if cfg.NumRecords <= 0 {
		cfg.NumRecords = 1000
	}
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 2000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := newVocab(rng, cfg.VocabSize, avoidSet(cfg.Keywords))

	venues := make([]string, 20)
	for i := range venues {
		venues[i] = v.name() + " " + v.name()
	}

	root := xmltree.E{Label: "dblp"}
	root.Kids = make([]xmltree.E, 0, cfg.NumRecords)
	for i := 0; i < cfg.NumRecords; i++ {
		root.Kids = append(root.Kids, dblpRecord(rng, v, venues, i))
	}
	inject(rng, &root, cfg.Keywords)
	return xmltree.Build(root)
}

func dblpRecord(rng *rand.Rand, v *vocab, venues []string, seq int) xmltree.E {
	kind := "article"
	switch rng.Intn(10) {
	case 0, 1, 2:
		kind = "inproceedings"
	case 3:
		kind = "phdthesis"
	}
	rec := xmltree.E{
		Label: kind,
		Attrs: []xmltree.Attr{
			{Name: "key", Value: fmt.Sprintf("rec/%s/%d", kind, seq)},
			{Name: "mdate", Value: fmt.Sprintf("2003-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))},
		},
	}
	nAuthors := 1 + rng.Intn(3)
	for a := 0; a < nAuthors; a++ {
		rec.Kids = append(rec.Kids, xmltree.E{Label: "author", Text: v.name() + " " + v.name()})
	}
	rec.Kids = append(rec.Kids, xmltree.E{Label: "title", Text: v.text(4 + rng.Intn(7))})
	if kind == "article" {
		rec.Kids = append(rec.Kids,
			xmltree.E{Label: "journal", Text: venues[rng.Intn(len(venues))]},
			xmltree.E{Label: "volume", Text: fmt.Sprintf("vol%d", 1+rng.Intn(40))},
		)
	} else if kind == "inproceedings" {
		rec.Kids = append(rec.Kids,
			xmltree.E{Label: "booktitle", Text: venues[rng.Intn(len(venues))]},
		)
	}
	rec.Kids = append(rec.Kids, xmltree.E{Label: "year", Text: fmt.Sprintf("y%d", 1985+rng.Intn(20))})
	if rng.Intn(3) == 0 {
		rec.Kids = append(rec.Kids, xmltree.E{Label: "pages", Text: fmt.Sprintf("p%d-p%d", rng.Intn(500), rng.Intn(500)+500)})
	}
	if rng.Intn(2) == 0 {
		rec.Kids = append(rec.Kids, xmltree.E{Label: "ee", Text: "doi " + v.word() + " " + v.word()})
	}
	if rng.Intn(4) == 0 {
		rec.Kids = append(rec.Kids, xmltree.E{Label: "cite", Text: v.text(3 + rng.Intn(4))})
	}
	return rec
}
