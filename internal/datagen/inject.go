package datagen

import (
	"math/rand"
	"sort"
	"strings"

	"xks/internal/xmltree"
)

// KeywordSpec requests that Word occur in the content of exactly Count
// distinct nodes of the generated document (matching the paper's habit of
// quoting per-keyword frequencies next to each keyword).
type KeywordSpec struct {
	Word  string
	Count int
}

// avoidSet collects the keyword strings so the background vocabulary never
// produces them accidentally.
func avoidSet(specs []KeywordSpec) map[string]bool {
	out := make(map[string]bool, len(specs))
	for _, s := range specs {
		out[strings.ToLower(s.Word)] = true
	}
	return out
}

// slotCollector gathers pointers to the text-bearing elements of a document
// under construction, so keywords can be injected after the structure is
// built but before the tree is frozen.
type slotCollector struct {
	slots []*xmltree.E
}

func (sc *slotCollector) add(e *xmltree.E) { sc.slots = append(sc.slots, e) }

// collect walks an element and registers every element with text.
func (sc *slotCollector) collect(e *xmltree.E) {
	if e.Text != "" {
		sc.add(e)
	}
	for i := range e.Kids {
		sc.collect(&e.Kids[i])
	}
}

// inject appends each keyword to Count distinct slots, chosen uniformly
// without replacement. If Count exceeds the slot count it is capped (the
// generators size their documents so this does not happen in practice).
// Injection into distinct slots keeps index.Frequency(word) == Count, since
// the content set of a node deduplicates words.
func inject(rng *rand.Rand, root *xmltree.E, specs []KeywordSpec) {
	sc := &slotCollector{}
	sc.collect(root)
	if len(sc.slots) == 0 {
		return
	}
	for _, spec := range specs {
		count := spec.Count
		if count > len(sc.slots) {
			count = len(sc.slots)
		}
		if count <= 0 {
			continue
		}
		for _, idx := range samplePartial(rng, len(sc.slots), count) {
			slot := sc.slots[idx]
			slot.Text = slot.Text + " " + spec.Word
		}
	}
}

// samplePartial draws k distinct indexes from [0,n) with a partial
// Fisher-Yates shuffle, returning them sorted for deterministic injection
// order.
func samplePartial(rng *rand.Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:k]
	sort.Ints(out)
	return out
}
