// Package datagen generates the synthetic DBLP-like and XMark-like
// documents used by the experiment harness — the substitutes for the
// paper's dblp20040213 (197.6 MB) and the three XMark files (111/335/670
// MB), which are not available offline.
//
// Both generators are deterministic given their seed, reproduce the
// structural shape that drives the paper's findings (DBLP: shallow, regular
// bibliographic records; XMark: deep auction-site records with long
// repetitive description text), and place the paper's query keywords at
// controlled frequencies so the workload of §5.1 can be replayed at any
// scale.
package datagen

import (
	"math/rand"
	"strings"
)

// vocab is a deterministic background-word source with a Zipf-like skew, so
// generated text has realistic repetition without ever colliding with the
// query keywords.
type vocab struct {
	words   []string
	phrases []string
	rng     *rand.Rand
}

var syllables = []string{
	"ba", "co", "di", "fu", "ga", "hi", "jo", "ka", "lu", "me",
	"no", "pi", "qua", "ri", "so", "tu", "ve", "wa", "xi", "zo",
	"bra", "cle", "dro", "fle", "gri", "klo", "pra", "ste", "tri", "vlo",
}

// commonWords seed the head of the distribution with real-looking terms
// (none of them paper query keywords or stop words).
var commonWords = []string{
	"system", "model", "network", "analysis", "approach", "design",
	"performance", "evaluation", "distributed", "parallel", "database",
	"index", "structure", "language", "logic", "graph", "optimal",
	"learning", "adaptive", "framework", "protocol", "storage", "engine",
	"stream", "service", "mobile", "secure", "robust", "scalable",
	"temporal", "spatial", "relational", "object", "web", "page",
	"cluster", "cache", "memory", "processor", "compiler", "runtime",
}

// newVocab builds a vocabulary of size words, excluding every word in the
// avoid set (the query keywords).
func newVocab(rng *rand.Rand, size int, avoid map[string]bool) *vocab {
	v := &vocab{rng: rng}
	seen := map[string]bool{}
	add := func(w string) {
		if avoid[w] || seen[w] || w == "" {
			return
		}
		seen[w] = true
		v.words = append(v.words, w)
	}
	for _, w := range commonWords {
		add(w)
	}
	for len(v.words) < size {
		n := 2 + rng.Intn(3)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(syllables[rng.Intn(len(syllables))])
		}
		add(b.String())
	}
	// A small pool of whole sentences, mimicking XMark's habit of
	// assembling description text from a tiny repetitive word pool: many
	// text nodes end up with identical content sets, which is what gives
	// MaxMatch its redundancy problem on synthetic data.
	for i := 0; i < 24; i++ {
		v.phrases = append(v.phrases, v.text(6+rng.Intn(10)))
	}
	return v
}

// phrase returns one sentence from the fixed pool, so repeated calls often
// produce identical text.
func (v *vocab) phrase() string {
	return v.phrases[v.rng.Intn(len(v.phrases))]
}

// phraseText concatenates n pool sentences.
func (v *vocab) phraseText(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = v.phrase()
	}
	return strings.Join(parts, " ")
}

// word draws one word with a Zipf-ish skew: low indexes are much more
// likely than high ones.
func (v *vocab) word() string {
	// Squaring a uniform variate skews the distribution toward 0.
	u := v.rng.Float64()
	idx := int(u * u * float64(len(v.words)))
	if idx >= len(v.words) {
		idx = len(v.words) - 1
	}
	return v.words[idx]
}

// text produces n space-separated background words.
func (v *vocab) text(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.word())
	}
	return b.String()
}

// name produces a capitalized synthetic proper name.
func (v *vocab) name() string {
	w := v.words[v.rng.Intn(len(v.words))]
	return strings.ToUpper(w[:1]) + w[1:]
}
