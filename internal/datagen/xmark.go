package datagen

import (
	"fmt"
	"math/rand"

	"xks/internal/xmltree"
)

// XMarkConfig sizes the synthetic auction site.
type XMarkConfig struct {
	// Seed drives every random choice; equal configs generate equal trees.
	Seed int64
	// Items is the number of items across the six regions. People, open
	// and closed auctions, and categories scale from it with XMark's
	// characteristic proportions when left zero.
	Items          int
	People         int
	OpenAuctions   int
	ClosedAuctions int
	Categories     int
	// Keywords places the query keywords at the requested node counts.
	Keywords []KeywordSpec
	// VocabSize is the background vocabulary size (default 3000).
	VocabSize int
}

// withDefaults fills the dependent sizes with XMark's proportions
// (people ≈ items, open auctions ≈ items/2, closed ≈ items/4,
// categories ≈ items/20).
func (cfg XMarkConfig) withDefaults() XMarkConfig {
	if cfg.Items <= 0 {
		cfg.Items = 400
	}
	if cfg.People <= 0 {
		cfg.People = cfg.Items
	}
	if cfg.OpenAuctions <= 0 {
		cfg.OpenAuctions = cfg.Items / 2
	}
	if cfg.ClosedAuctions <= 0 {
		cfg.ClosedAuctions = cfg.Items / 4
	}
	if cfg.Categories <= 0 {
		cfg.Categories = cfg.Items/20 + 1
	}
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 3000
	}
	return cfg
}

var xmarkRegions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// XMark generates an auction document with the XMark schema shape: deep
// item/auction records whose long description text repeats background
// words heavily — the structure that leaves MaxMatch with redundant
// same-label siblings (the paper's Figure 6(b–d): APR′ > 0 everywhere).
func XMark(cfg XMarkConfig) *xmltree.Tree {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := newVocab(rng, cfg.VocabSize, avoidSet(cfg.Keywords))

	root := xmltree.E{Label: "site"}

	// Regions with items.
	regions := xmltree.E{Label: "regions"}
	perRegion := cfg.Items / len(xmarkRegions)
	itemSeq := 0
	for _, rg := range xmarkRegions {
		region := xmltree.E{Label: rg}
		n := perRegion
		if rg == xmarkRegions[len(xmarkRegions)-1] {
			n = cfg.Items - perRegion*(len(xmarkRegions)-1)
		}
		for i := 0; i < n; i++ {
			region.Kids = append(region.Kids, xmarkItem(rng, v, itemSeq, cfg.Categories))
			itemSeq++
		}
		regions.Kids = append(regions.Kids, region)
	}
	root.Kids = append(root.Kids, regions)

	// Categories.
	cats := xmltree.E{Label: "categories"}
	for i := 0; i < cfg.Categories; i++ {
		cats.Kids = append(cats.Kids, xmltree.E{
			Label: "category",
			Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("category%d", i)}},
			Kids: []xmltree.E{
				{Label: "name", Text: v.name()},
				{Label: "description", Kids: []xmltree.E{
					{Label: "text", Text: v.phrase()},
				}},
			},
		})
	}
	root.Kids = append(root.Kids, cats)

	// People.
	people := xmltree.E{Label: "people"}
	for i := 0; i < cfg.People; i++ {
		people.Kids = append(people.Kids, xmarkPerson(rng, v, i))
	}
	root.Kids = append(root.Kids, people)

	// Open auctions.
	open := xmltree.E{Label: "open_auctions"}
	for i := 0; i < cfg.OpenAuctions; i++ {
		open.Kids = append(open.Kids, xmarkOpenAuction(rng, v, i, cfg))
	}
	root.Kids = append(root.Kids, open)

	// Closed auctions.
	closed := xmltree.E{Label: "closed_auctions"}
	for i := 0; i < cfg.ClosedAuctions; i++ {
		closed.Kids = append(closed.Kids, xmarkClosedAuction(rng, v, i, cfg))
	}
	root.Kids = append(root.Kids, closed)

	inject(rng, &root, cfg.Keywords)
	return xmltree.Build(root)
}

func xmarkItem(rng *rand.Rand, v *vocab, seq, nCats int) xmltree.E {
	item := xmltree.E{
		Label: "item",
		Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("item%d", seq)}},
		Kids: []xmltree.E{
			{Label: "location", Text: v.name()},
			{Label: "quantity", Text: fmt.Sprintf("q%d", 1+rng.Intn(5))},
			{Label: "name", Text: v.text(2 + rng.Intn(3))},
			{Label: "payment", Text: "money wire " + v.word()},
			{Label: "description", Kids: []xmltree.E{
				{Label: "parlist", Kids: []xmltree.E{
					{Label: "listitem", Text: v.phrase()},
					{Label: "listitem", Text: v.phrase()},
				}},
			}},
			{Label: "shipping", Text: "ships worldwide " + v.word()},
		},
	}
	for c := 0; c < 1+rng.Intn(2); c++ {
		item.Kids = append(item.Kids, xmltree.E{
			Label: "incategory",
			Attrs: []xmltree.Attr{{Name: "category", Value: fmt.Sprintf("category%d", rng.Intn(nCats))}},
		})
	}
	return item
}

func xmarkPerson(rng *rand.Rand, v *vocab, seq int) xmltree.E {
	p := xmltree.E{
		Label: "person",
		Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("person%d", seq)}},
		Kids: []xmltree.E{
			{Label: "name", Text: v.name() + " " + v.name()},
			{Label: "emailaddress", Text: "mailto " + v.word()},
		},
	}
	if rng.Intn(2) == 0 {
		p.Kids = append(p.Kids, xmltree.E{Label: "phone", Text: fmt.Sprintf("ph%d", rng.Intn(1000000))})
	}
	if rng.Intn(2) == 0 {
		p.Kids = append(p.Kids, xmltree.E{Label: "address", Kids: []xmltree.E{
			{Label: "street", Text: v.text(2)},
			{Label: "city", Text: v.name()},
			{Label: "country", Text: v.name()},
			{Label: "zipcode", Text: fmt.Sprintf("z%d", rng.Intn(100000))},
		}})
	}
	profile := xmltree.E{Label: "profile", Kids: []xmltree.E{
		{Label: "education", Text: v.word()},
		{Label: "business", Text: "yes " + v.word()},
	}}
	for i := 0; i < rng.Intn(3); i++ {
		profile.Kids = append(profile.Kids, xmltree.E{
			Label: "interest",
			Attrs: []xmltree.Attr{{Name: "category", Value: fmt.Sprintf("category%d", rng.Intn(10))}},
		})
	}
	p.Kids = append(p.Kids, profile)
	return p
}

func xmarkOpenAuction(rng *rand.Rand, v *vocab, seq int, cfg XMarkConfig) xmltree.E {
	a := xmltree.E{
		Label: "open_auction",
		Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("open_auction%d", seq)}},
		Kids: []xmltree.E{
			{Label: "initial", Text: fmt.Sprintf("amt%d", 1+rng.Intn(200))},
		},
	}
	for b := 0; b < 1+rng.Intn(4); b++ {
		a.Kids = append(a.Kids, xmltree.E{Label: "bidder", Kids: []xmltree.E{
			{Label: "date", Text: fmt.Sprintf("d%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))},
			{Label: "personref", Attrs: []xmltree.Attr{{Name: "person", Value: fmt.Sprintf("person%d", rng.Intn(cfg.People))}}},
			{Label: "increase", Text: fmt.Sprintf("inc%d", 1+rng.Intn(50))},
		}})
	}
	a.Kids = append(a.Kids,
		xmltree.E{Label: "current", Text: fmt.Sprintf("amt%d", 200+rng.Intn(400))},
		xmltree.E{Label: "itemref", Attrs: []xmltree.Attr{{Name: "item", Value: fmt.Sprintf("item%d", rng.Intn(cfg.Items))}}},
		xmltree.E{Label: "seller", Attrs: []xmltree.Attr{{Name: "person", Value: fmt.Sprintf("person%d", rng.Intn(cfg.People))}}},
		xmltree.E{Label: "annotation", Kids: []xmltree.E{
			{Label: "author", Attrs: []xmltree.Attr{{Name: "person", Value: fmt.Sprintf("person%d", rng.Intn(cfg.People))}}},
			{Label: "description", Kids: []xmltree.E{
				{Label: "text", Text: v.phraseText(1 + rng.Intn(2))},
			}},
		}},
		xmltree.E{Label: "interval", Kids: []xmltree.E{
			{Label: "start", Text: fmt.Sprintf("s%02d", 1+rng.Intn(12))},
			{Label: "end", Text: fmt.Sprintf("e%02d", 1+rng.Intn(12))},
		}},
	)
	return a
}

func xmarkClosedAuction(rng *rand.Rand, v *vocab, seq int, cfg XMarkConfig) xmltree.E {
	return xmltree.E{
		Label: "closed_auction",
		Kids: []xmltree.E{
			{Label: "seller", Attrs: []xmltree.Attr{{Name: "person", Value: fmt.Sprintf("person%d", rng.Intn(cfg.People))}}},
			{Label: "buyer", Attrs: []xmltree.Attr{{Name: "person", Value: fmt.Sprintf("person%d", rng.Intn(cfg.People))}}},
			{Label: "itemref", Attrs: []xmltree.Attr{{Name: "item", Value: fmt.Sprintf("item%d", rng.Intn(cfg.Items))}}},
			{Label: "price", Text: fmt.Sprintf("amt%d", 50+rng.Intn(500))},
			{Label: "date", Text: fmt.Sprintf("d%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))},
			{Label: "annotation", Kids: []xmltree.E{
				{Label: "description", Kids: []xmltree.E{
					{Label: "text", Text: v.phraseText(1 + rng.Intn(2))},
				}},
			}},
		},
	}
}
