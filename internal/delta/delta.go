// Package delta is the write-optimized side index behind snapshot-isolated
// reads: the LSM-style discipline that makes appends cheap and readers
// immortal.
//
// The base index (internal/index) stays immutable. Each append lands as a
// Segment — a mini posting map over the contiguous ID range the append
// added at the tail of the node table — and the engine publishes a new
// Head (base + segment list + extended table header) with one atomic
// pointer store. Because tail appends preserve "ID order == pre-order",
// merging base and delta posting lists is pure concatenation: every base
// ID precedes every segment ID and later segments start where earlier ones
// end, so the k-way merge machinery downstream sees one sorted logical
// list per term and needs no changes.
//
// A Snapshot is a read view resolved from a Head at a node count n: the
// table truncated to its first n rows, base lists cut at the first ID >= n,
// and exactly the segments whose ranges fall inside n. Any node count that
// was ever published as a head remains resolvable from every later head of
// the same rebuild generation — appends only grow the tail, and compaction
// (Fold) rewrites which structure holds the postings but never renumbers an
// ID — which is what lets cursors and caches pin a snapshot instead of
// dying whenever anything changed. Snapshots are refcounted (pinned) for
// observability and leak detection; the memory itself is reclaimed by the
// garbage collector once the last pinned snapshot referencing a retired
// epoch is released.
package delta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xks/internal/index"
	"xks/internal/nid"
	"xks/internal/planner"
)

// ErrNoSnapshot reports a version that no head can resolve: a different
// rebuild generation (the table was renumbered by a non-tail append or a
// document replacement) or a node count that never was a published
// boundary. Callers surface it as a stale cursor.
var ErrNoSnapshot = errors.New("delta: no snapshot at requested version")

// PackVersion encodes a (rebuild generation, node count) pair as one uint64
// version token: the high 32 bits count renumbering rebuilds, the low 32
// bits the table length. Within one rebuild generation the version grows
// with every append and is untouched by compaction, so a version uniquely
// names a logical index state.
func PackVersion(rebuildGen uint64, n int) uint64 {
	return rebuildGen<<32 | uint64(uint32(n))
}

// UnpackVersion splits a version token back into its parts.
func UnpackVersion(v uint64) (rebuildGen uint64, n int) {
	return v >> 32, int(v & 0xffffffff)
}

// Segment is one append batch's postings: an immutable mini-index over the
// contiguous ID range [Start, End) that a single append added at the tail
// of the node table. Posting lists are strictly ascending and confined to
// the range; the map must not be mutated after construction.
type Segment struct {
	Start    nid.ID
	End      nid.ID
	Postings map[string][]nid.ID
	// Count is the total posting entries across all words.
	Count int
}

// NewSegment validates and wraps one append batch. Every posting must lie
// in [start, end) and every list must be strictly ascending — the tail
// invariant concatenation-merging relies on.
func NewSegment(start, end nid.ID, postings map[string][]nid.ID) (*Segment, error) {
	if end < start {
		return nil, fmt.Errorf("delta: inverted segment range [%d, %d)", start, end)
	}
	count := 0
	for w, ids := range postings {
		for i, id := range ids {
			if id < start || id >= end {
				return nil, fmt.Errorf("delta: posting %d of %q outside segment [%d, %d)", id, w, start, end)
			}
			if i > 0 && ids[i-1] >= id {
				return nil, fmt.Errorf("delta: postings of %q not strictly ascending", w)
			}
		}
		count += len(ids)
	}
	return &Segment{Start: start, End: end, Postings: postings, Count: count}, nil
}

// Head is one engine's published index state: the immutable base index,
// the delta segments appended since the base was built (ascending, with
// seg[i].End == seg[i+1].Start), and the full node-table header covering
// base plus segments (Tab.Len() is the head's node count). Heads are
// immutable once published; the engine swaps them with an atomic pointer.
type Head struct {
	// RebuildGen counts renumbering rebuilds (non-tail appends, document
	// replacement). Snapshots never cross a rebuild: IDs changed meaning.
	RebuildGen uint64
	Tab        *nid.Table
	Base       *index.Index
	Segs       []*Segment
}

// Version returns the head's version token.
func (h *Head) Version() uint64 { return PackVersion(h.RebuildGen, h.Tab.Len()) }

// At resolves (and pins) the snapshot of this head at n nodes. n must be a
// boundary some head of this rebuild generation published: at most the
// current length, and never splitting a segment. The returned snapshot is
// pinned against c (Release unpins); pass the same Counters the engine
// reports from.
func (h *Head) At(n int, c *Counters) (*Snapshot, error) {
	if n < 0 || n > h.Tab.Len() {
		return nil, fmt.Errorf("%w: %d nodes, head has %d", ErrNoSnapshot, n, h.Tab.Len())
	}
	tab, err := h.Tab.Truncate(n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSnapshot, err)
	}
	var segs []*Segment
	for _, sg := range h.Segs {
		if sg.Start >= nid.ID(n) {
			break // segments are ascending; the rest lie past the snapshot
		}
		if sg.End > nid.ID(n) {
			return nil, fmt.Errorf("%w: %d nodes splits segment [%d, %d)", ErrNoSnapshot, n, sg.Start, sg.End)
		}
		segs = append(segs, sg)
	}
	s := &Snapshot{
		version:  PackVersion(h.RebuildGen, n),
		n:        n,
		tab:      tab,
		base:     h.Base,
		baseLen:  h.Base.Table().Len(),
		segs:     segs,
		counters: c,
	}
	if c != nil {
		c.pinned.Add(1)
	}
	return s, nil
}

// Snapshot is an immutable, pinned read view of one logical index state:
// base postings cut at the snapshot's node count plus the visible delta
// segments. It satisfies the read surface the query pipeline needs
// (LookupIDs / Frequency / NumNodes / Stats), merging base and delta
// transparently.
type Snapshot struct {
	version  uint64
	n        int
	tab      *nid.Table
	base     *index.Index
	baseLen  int
	segs     []*Segment
	counters *Counters
	release  sync.Once
}

// Version returns the packed version token the snapshot serves at.
func (s *Snapshot) Version() uint64 { return s.version }

// Table returns the node table view, with Len() == NumNodes().
func (s *Snapshot) Table() *nid.Table { return s.tab }

// NumNodes reports the indexed node count visible to the snapshot.
func (s *Snapshot) NumNodes() int {
	// The base's own count anchors store-backed shapes where indexed nodes
	// and table rows differ; tail appends add rows and indexed nodes 1:1,
	// and a base compacted past this snapshot subtracts back down.
	return s.base.NumNodes() + (s.n - s.baseLen)
}

// Segments reports how many delta segments the snapshot merges.
func (s *Snapshot) Segments() int { return len(s.segs) }

// DeltaPostings reports the total delta posting entries the snapshot sees.
func (s *Snapshot) DeltaPostings() int {
	total := 0
	for _, sg := range s.segs {
		total += sg.Count
	}
	return total
}

// LookupIDs returns the merged posting list for the word: the base list cut
// at the snapshot boundary, followed by each visible segment's list. With
// no visible delta for the word the base's shared slice is returned as-is
// (the common hot path allocates nothing); otherwise one concatenation is
// allocated. Callers must not modify the result.
func (s *Snapshot) LookupIDs(word string) []nid.ID {
	base := s.base.LookupIDs(word)
	if s.baseLen > s.n {
		base = cutAt(base, nid.ID(s.n))
	}
	if len(s.segs) == 0 {
		return base
	}
	total := len(base)
	for _, sg := range s.segs {
		total += len(sg.Postings[word])
	}
	if total == len(base) {
		return base
	}
	out := make([]nid.ID, 0, total)
	out = append(out, base...)
	for _, sg := range s.segs {
		out = append(out, sg.Postings[word]...)
	}
	return out
}

// Frequency returns the merged posting count for the word without
// materializing the list.
func (s *Snapshot) Frequency(word string) int {
	n := s.base.Frequency(word)
	if s.baseLen > s.n {
		// The base extends past the snapshot (it was compacted since):
		// count only the visible prefix.
		n = len(cutAt(s.base.LookupIDs(word), nid.ID(s.n)))
	}
	for _, sg := range s.segs {
		n += len(sg.Postings[word])
	}
	return n
}

// Stats returns planner statistics for the merged view: the base's
// statistics with the delta segments' node and posting mass overlaid.
func (s *Snapshot) Stats() planner.Stats {
	st := s.base.Stats()
	if len(s.segs) == 0 {
		return st
	}
	var postings, maxPostings, words int
	for _, sg := range s.segs {
		postings += sg.Count
		words += len(sg.Postings)
		for _, ids := range sg.Postings {
			if len(ids) > maxPostings {
				maxPostings = len(ids)
			}
		}
	}
	return planner.Overlay(st, s.n-s.baseLen, words, postings, maxPostings)
}

// Release unpins the snapshot. Idempotent; after the last release of the
// last snapshot referencing a retired epoch, the garbage collector reclaims
// that epoch's structures.
func (s *Snapshot) Release() {
	s.release.Do(func() {
		if s.counters != nil {
			s.counters.pinned.Add(-1)
		}
	})
}

// cutAt returns the prefix of the (sorted) list strictly below n.
func cutAt(list []nid.ID, n nid.ID) []nid.ID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= n })
	return list[:i]
}

// Fold merges the head's delta segments into a fresh base index over the
// head's full table — the compactor's core. Posting lists no segment
// touched are shared with the old base (zero copy, zero writes — pinned
// snapshots may be reading them concurrently); each touched word gets one
// freshly allocated concatenation. The old base remains valid and
// immutable for every pinned snapshot. With no segments the base is
// returned unchanged.
func Fold(h *Head) *index.Index {
	if len(h.Segs) == 0 {
		return h.Base
	}
	touched := map[string][][]nid.ID{}
	for _, sg := range h.Segs {
		for w, ids := range sg.Postings {
			touched[w] = append(touched[w], ids) // segments ascend, so parts do too
		}
	}
	merged := make(map[string][]nid.ID, h.Base.NumWords()+len(touched))
	for _, w := range h.Base.Words() {
		merged[w] = h.Base.LookupIDs(w)
	}
	for w, parts := range touched {
		base := merged[w]
		total := len(base)
		for _, p := range parts {
			total += len(p)
		}
		out := make([]nid.ID, 0, total)
		out = append(out, base...)
		for _, p := range parts {
			out = append(out, p...)
		}
		merged[w] = out
	}
	numNodes := h.Base.NumNodes() + (h.Tab.Len() - h.Base.Table().Len())
	return index.FromSortedIDPostings(h.Tab, merged, numNodes, h.Base.Analyzer())
}

// Counters aggregates the delta subsystem's observability state for one
// engine: the pinned-snapshot refcount and compaction totals. Segment and
// posting gauges are derived from the live head instead of counted here.
type Counters struct {
	pinned       atomic.Int64
	compactions  atomic.Int64
	compactNanos atomic.Int64
}

// Pinned reports the snapshots currently pinned (resolved, not yet
// released). A value stuck above zero while the engine is idle is a leak.
func (c *Counters) Pinned() int64 { return c.pinned.Load() }

// Compactions reports how many folds have been published.
func (c *Counters) Compactions() int64 { return c.compactions.Load() }

// CompactionSeconds reports the total wall time spent folding.
func (c *Counters) CompactionSeconds() float64 {
	return float64(c.compactNanos.Load()) / float64(time.Second)
}

// RecordCompaction accounts one published fold.
func (c *Counters) RecordCompaction(d time.Duration) {
	c.compactions.Add(1)
	c.compactNanos.Add(int64(d))
}
