package delta

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/nid"
)

func codes(ss ...string) []dewey.Code {
	out := make([]dewey.Code, len(ss))
	for i, s := range ss {
		out[i] = dewey.MustParse(s)
	}
	return out
}

func ids(ns ...nid.ID) []nid.ID { return ns }

// testHead builds a 3-node base ("0", "0.0", "0.1") with base postings and
// two tail segments extending the table to 7 nodes.
func testHead(t *testing.T) *Head {
	t.Helper()
	baseTab := nid.FromCodes(codes("0", "0.0", "0.1"))
	base := index.FromSortedIDPostings(baseTab, map[string][]nid.ID{
		"alpha": ids(1),
		"beta":  ids(1, 2),
	}, baseTab.Len(), analysis.New())
	tab, _, err := baseTab.Extend(codes("0.2", "0.2.0"))
	if err != nil {
		t.Fatal(err)
	}
	seg1, err := NewSegment(3, 5, map[string][]nid.ID{
		"alpha": ids(4),
		"gamma": ids(3, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, _, err = tab.Extend(codes("0.3", "0.3.0"))
	if err != nil {
		t.Fatal(err)
	}
	seg2, err := NewSegment(5, 7, map[string][]nid.ID{
		"beta": ids(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Head{Tab: tab, Base: base, Segs: []*Segment{seg1, seg2}}
}

func TestVersionPacking(t *testing.T) {
	for _, c := range []struct {
		gen uint64
		n   int
	}{{0, 0}, {0, 7}, {3, 1 << 20}, {1 << 30, 0xffffffff}} {
		v := PackVersion(c.gen, c.n)
		g, n := UnpackVersion(v)
		if g != c.gen || n != c.n {
			t.Errorf("round trip (%d, %d) -> %d -> (%d, %d)", c.gen, c.n, v, g, n)
		}
	}
	h := testHead(t)
	if g, n := UnpackVersion(h.Version()); g != 0 || n != 7 {
		t.Errorf("head version = (%d, %d), want (0, 7)", g, n)
	}
}

func TestNewSegmentValidation(t *testing.T) {
	cases := map[string]struct {
		start, end nid.ID
		postings   map[string][]nid.ID
	}{
		"inverted range":  {5, 3, nil},
		"posting below":   {3, 5, map[string][]nid.ID{"w": ids(2)}},
		"posting at end":  {3, 5, map[string][]nid.ID{"w": ids(5)}},
		"not ascending":   {3, 6, map[string][]nid.ID{"w": ids(4, 3)}},
		"duplicate entry": {3, 6, map[string][]nid.ID{"w": ids(4, 4)}},
	}
	for name, c := range cases {
		if _, err := NewSegment(c.start, c.end, c.postings); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	sg, err := NewSegment(3, 6, map[string][]nid.ID{"a": ids(3, 5), "b": ids(4)})
	if err != nil {
		t.Fatal(err)
	}
	if sg.Count != 3 {
		t.Errorf("Count = %d, want 3", sg.Count)
	}
}

func TestHeadAtBoundaries(t *testing.T) {
	h := testHead(t)
	var c Counters
	// Every published boundary resolves: 3 (base), 5 (base+seg1), 7 (all).
	for _, n := range []int{3, 5, 7} {
		s, err := h.At(n, &c)
		if err != nil {
			t.Fatalf("At(%d): %v", n, err)
		}
		if s.NumNodes() != n || s.Table().Len() != n {
			t.Errorf("At(%d): NumNodes=%d Len=%d", n, s.NumNodes(), s.Table().Len())
		}
		s.Release()
	}
	// Splitting a segment fails; so do out-of-range counts.
	for _, n := range []int{4, 6, -1, 8} {
		if _, err := h.At(n, &c); !errors.Is(err, ErrNoSnapshot) {
			t.Errorf("At(%d): err = %v, want ErrNoSnapshot", n, err)
		}
	}
	if got := c.Pinned(); got != 0 {
		t.Errorf("pinned = %d after releasing everything", got)
	}
}

func TestSnapshotMergesBaseAndSegments(t *testing.T) {
	h := testHead(t)
	full, err := h.At(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string][]nid.ID{
		"alpha":   ids(1, 4),
		"beta":    ids(1, 2, 6),
		"gamma":   ids(3, 4),
		"missing": nil,
	}
	for w, want := range checks {
		got := full.LookupIDs(w)
		if len(got) != len(want) {
			t.Fatalf("LookupIDs(%q) = %v, want %v", w, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("LookupIDs(%q) = %v, want %v", w, got, want)
			}
		}
		if f := full.Frequency(w); f != len(want) {
			t.Errorf("Frequency(%q) = %d, want %d", w, f, len(want))
		}
	}
	if full.Segments() != 2 || full.DeltaPostings() != 4 {
		t.Errorf("Segments=%d DeltaPostings=%d, want 2/4", full.Segments(), full.DeltaPostings())
	}

	// A mid-history snapshot sees only segment 1.
	mid, err := h.At(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mid.LookupIDs("beta"); len(got) != 2 {
		t.Errorf("mid beta = %v, want the base pair only", got)
	}
	if got := mid.LookupIDs("gamma"); len(got) != 2 {
		t.Errorf("mid gamma = %v", got)
	}

	// The no-delta hot path returns the base's shared slice untouched.
	baseOnly, err := h.At(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := h.Base.LookupIDs("beta")
	if got := baseOnly.LookupIDs("beta"); len(got) != 2 || &got[0] != &shared[0] {
		t.Error("base-only snapshot did not share the base posting slice")
	}
	if st := baseOnly.Stats(); !reflect.DeepEqual(st, h.Base.Stats()) {
		t.Errorf("base-only Stats = %+v, want the base's own", st)
	}
}

func TestSnapshotStatsOverlayDelta(t *testing.T) {
	h := testHead(t)
	s, err := h.At(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, got := h.Base.Stats(), s.Stats()
	if got.Nodes != base.Nodes+4 {
		t.Errorf("Nodes = %d, want base+4 = %d", got.Nodes, base.Nodes+4)
	}
	if got.Postings != base.Postings+4 {
		t.Errorf("Postings = %d, want base+4 = %d", got.Postings, base.Postings+4)
	}
	if got.MaxPostings < 2 {
		t.Errorf("MaxPostings = %d, want at least the largest delta list", got.MaxPostings)
	}
}

// TestFoldMatchesSnapshot: the compacted base serves exactly what the
// pre-compaction head's full snapshot served, word for word, and shares
// untouched posting slices with the old base.
func TestFoldMatchesSnapshot(t *testing.T) {
	h := testHead(t)
	before, err := h.At(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	folded := Fold(h)
	if folded.NumNodes() != 7 || folded.Table().Len() != 7 {
		t.Fatalf("folded NumNodes=%d Len=%d, want 7/7", folded.NumNodes(), folded.Table().Len())
	}
	for _, w := range []string{"alpha", "beta", "gamma"} {
		want, got := before.LookupIDs(w), folded.LookupIDs(w)
		if len(want) != len(got) {
			t.Fatalf("folded %q = %v, want %v", w, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("folded %q = %v, want %v", w, got, want)
			}
		}
	}
	// The old base is untouched and still serves its own view.
	if got := h.Base.LookupIDs("beta"); len(got) != 2 {
		t.Errorf("old base mutated: beta = %v", got)
	}

	// A post-compaction head can still resolve pre-compaction boundaries:
	// the base list is cut at the snapshot's node count.
	compacted := &Head{Tab: h.Tab, Base: folded}
	old, err := compacted.At(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := old.LookupIDs("beta"); len(got) != 2 || got[1] != 2 {
		t.Errorf("pre-compaction view through folded base: beta = %v", got)
	}
	if got := old.LookupIDs("gamma"); len(got) != 0 {
		t.Errorf("pre-compaction view sees post-cut postings: gamma = %v", got)
	}
	if f := old.Frequency("alpha"); f != 1 {
		t.Errorf("pre-compaction Frequency(alpha) = %d, want 1", f)
	}
	if old.NumNodes() != 3 {
		t.Errorf("pre-compaction NumNodes = %d, want 3", old.NumNodes())
	}

	// Folding a segment-free head is the identity.
	if again := Fold(compacted); again != folded {
		t.Error("Fold without segments did not return the base itself")
	}
}

func TestCountersPinAndCompaction(t *testing.T) {
	var c Counters
	h := testHead(t)
	s1, err := h.At(7, &c)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.At(3, &c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pinned() != 2 {
		t.Fatalf("pinned = %d, want 2", c.Pinned())
	}
	s1.Release()
	s1.Release() // idempotent
	if c.Pinned() != 1 {
		t.Fatalf("pinned = %d after one release, want 1", c.Pinned())
	}
	s2.Release()
	if c.Pinned() != 0 {
		t.Fatalf("pinned = %d, want 0", c.Pinned())
	}
	c.RecordCompaction(1500 * time.Millisecond)
	c.RecordCompaction(500 * time.Millisecond)
	if c.Compactions() != 2 {
		t.Errorf("compactions = %d", c.Compactions())
	}
	if got := c.CompactionSeconds(); got < 1.99 || got > 2.01 {
		t.Errorf("compaction seconds = %f, want 2", got)
	}
}
