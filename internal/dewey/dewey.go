// Package dewey implements Dewey codes for XML trees.
//
// A Dewey code identifies a node by the path of child ordinals from the
// root, e.g. "0.2.0.1" (Tatarinov & Viglas, SIGMOD 2002). Dewey codes are
// compatible with pre-order document numbering: node u precedes node v in a
// pre-order left-to-right depth-first traversal exactly when
// Compare(u, v) < 0. The code of an ancestor is a proper prefix of the code
// of each of its descendants, which makes ancestor tests and lowest common
// ancestor computation (longest common prefix) cheap. This is the node
// identity used throughout the ValidRTF reproduction.
package dewey

import (
	"fmt"
	"strconv"
	"strings"
)

// Code is a Dewey code: the sequence of child ordinals on the path from the
// root to a node. The root itself is conventionally Code{0}. The zero value
// (nil) is not a valid node code; it compares before every valid code and is
// an ancestor of nothing.
type Code []uint32

// Parse converts the textual form "0.2.0.1" into a Code.
func Parse(s string) (Code, error) {
	if s == "" {
		return nil, fmt.Errorf("dewey: empty code")
	}
	parts := strings.Split(s, ".")
	c := make(Code, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dewey: bad component %q in %q: %v", p, s, err)
		}
		c[i] = uint32(n)
	}
	return c, nil
}

// MustParse is Parse that panics on malformed input. It is intended for
// tests and package-level literals.
func MustParse(s string) Code {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the code in the dotted form used in the paper, e.g.
// "0.2.0.1". The nil code renders as "ε". Rendered into one presized byte
// buffer (components are almost always short), since the fragment assembly
// hot path stringifies every kept node.
func (c Code) String() string {
	if len(c) == 0 {
		return "ε"
	}
	return string(c.AppendString(make([]byte, 0, len(c)*3)))
}

// AppendString appends the dotted form of c to b and returns the extended
// buffer, letting callers that stringify many codes (fragment assembly)
// reuse one scratch buffer — a single retained allocation per string.
func (c Code) AppendString(b []byte) []byte {
	for i, v := range c {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, uint64(v), 10)
	}
	return b
}

// Key returns a compact string usable as a map key. Unlike String it is not
// human-oriented; two codes have equal keys exactly when Equal reports true.
// Keys also sort in pre-order (each component is big-endian fixed width).
func (c Code) Key() string {
	return string(c.AppendKey(make([]byte, 0, len(c)*4)))
}

// AppendKey appends the Key form of c to b and returns the extended buffer,
// letting callers that key many codes reuse one scratch buffer instead of
// allocating per Key call.
func (c Code) AppendKey(b []byte) []byte {
	for _, v := range c {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return b
}

// FromKey reverses Key.
func FromKey(k string) (Code, error) {
	if len(k)%4 != 0 {
		return nil, fmt.Errorf("dewey: key length %d not a multiple of 4", len(k))
	}
	c := make(Code, len(k)/4)
	for i := range c {
		c[i] = uint32(k[4*i])<<24 | uint32(k[4*i+1])<<16 | uint32(k[4*i+2])<<8 | uint32(k[4*i+3])
	}
	return c, nil
}

// Clone returns an independent copy of c.
func (c Code) Clone() Code {
	if c == nil {
		return nil
	}
	out := make(Code, len(c))
	copy(out, c)
	return out
}

// Level reports the depth of the node: the root (Code{0}) is level 0.
func (c Code) Level() int {
	if len(c) == 0 {
		return -1
	}
	return len(c) - 1
}

// Compare orders codes in pre-order (document order): component-wise
// numeric, with a prefix ordering before its extensions. It returns -1, 0 or
// +1.
func Compare(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether a and b denote the same node.
func Equal(a, b Code) bool { return Compare(a, b) == 0 }

// IsAncestorOf reports whether a is a proper ancestor of b (a ≺a b in the
// paper's notation): a is a strict prefix of b.
func (c Code) IsAncestorOf(b Code) bool {
	if len(c) >= len(b) {
		return false
	}
	for i, v := range c {
		if b[i] != v {
			return false
		}
	}
	return true
}

// IsAncestorOrSelf reports whether c is an ancestor of b or equal to b.
func (c Code) IsAncestorOrSelf(b Code) bool {
	if len(c) > len(b) {
		return false
	}
	for i, v := range c {
		if b[i] != v {
			return false
		}
	}
	return true
}

// Parent returns the code of the parent node, or nil for the root (or a nil
// code). The result aliases c (a prefix sub-slice); callers needing an
// independent copy must Clone it.
func (c Code) Parent() Code {
	if len(c) <= 1 {
		return nil
	}
	return c[:len(c)-1]
}

// Child returns the code of the i-th child of c.
func (c Code) Child(i uint32) Code {
	out := make(Code, len(c)+1)
	copy(out, c)
	out[len(c)] = i
	return out
}

// LCA returns the lowest common ancestor of a and b: their longest common
// prefix. If either code is nil the result is nil. The result aliases a (a
// prefix sub-slice); codes are treated as immutable throughout the engine,
// so no defensive copy is made.
func LCA(a, b Code) Code {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i == 0 {
		return nil // distinct roots: no common ancestor (cannot happen in one tree)
	}
	return a[:i]
}

// LCAAll returns the lowest common ancestor of all given codes. With no
// arguments it returns nil; with one it returns that code itself. The
// result aliases the first code (a prefix sub-slice).
func LCAAll(codes ...Code) Code {
	if len(codes) == 0 {
		return nil
	}
	acc := codes[0]
	for _, c := range codes[1:] {
		acc = LCA(acc, c)
		if acc == nil {
			return nil
		}
	}
	return acc
}

// CommonPrefixLen returns the number of leading components a and b share.
func CommonPrefixLen(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Sort orders a slice of codes in pre-order, in place.
func Sort(cs []Code) {
	sortCodes(cs)
}

func sortCodes(cs []Code) {
	// Insertion sort for tiny slices, quicksort otherwise. Implemented by
	// hand to keep the package dependency-free and allocation-free.
	if len(cs) < 12 {
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && Compare(cs[j-1], cs[j]) > 0; j-- {
				cs[j-1], cs[j] = cs[j], cs[j-1]
			}
		}
		return
	}
	pivot := cs[len(cs)/2]
	lo, hi := 0, len(cs)-1
	for lo <= hi {
		for Compare(cs[lo], pivot) < 0 {
			lo++
		}
		for Compare(cs[hi], pivot) > 0 {
			hi--
		}
		if lo <= hi {
			cs[lo], cs[hi] = cs[hi], cs[lo]
			lo++
			hi--
		}
	}
	sortCodes(cs[:hi+1])
	sortCodes(cs[lo:])
}

// SearchGE returns the index of the first code in the pre-order-sorted slice
// cs that is >= c, or len(cs) if all codes precede c.
func SearchGE(cs []Code, c Code) int {
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(cs[mid], c) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SearchLE returns the index of the last code in the pre-order-sorted slice
// cs that is <= c, or -1 if all codes follow c.
func SearchLE(cs []Code, c Code) int {
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(cs[mid], c) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Dedup removes duplicate codes from a pre-order-sorted slice, in place,
// returning the shortened slice.
func Dedup(cs []Code) []Code {
	if len(cs) == 0 {
		return cs
	}
	out := cs[:1]
	for _, c := range cs[1:] {
		if !Equal(out[len(out)-1], c) {
			out = append(out, c)
		}
	}
	return out
}
