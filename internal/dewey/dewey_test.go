package dewey

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want Code
		ok   bool
	}{
		{"0", Code{0}, true},
		{"0.2.0.1", Code{0, 2, 0, 1}, true},
		{"10.20.30", Code{10, 20, 30}, true},
		{"", nil, false},
		{"0..1", nil, false},
		{"a.b", nil, false},
		{"-1", nil, false},
		{"4294967296", nil, false}, // out of uint32 range
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok && err != nil {
			t.Errorf("Parse(%q) unexpected error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("Parse(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
		if got.String() != c.in {
			t.Errorf("String round trip: %q != %q", got.String(), c.in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not a code")
}

func TestNilString(t *testing.T) {
	if got := Code(nil).String(); got != "ε" {
		t.Errorf("nil code String() = %q", got)
	}
}

func TestCompare(t *testing.T) {
	ordered := []string{"0", "0.0", "0.0.0", "0.0.1", "0.1", "0.2", "0.2.0", "0.2.0.1", "0.2.1", "0.10", "1"}
	for i := range ordered {
		for j := range ordered {
			a, b := MustParse(ordered[i]), MustParse(ordered[j])
			got := Compare(a, b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s,%s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAncestor(t *testing.T) {
	cases := []struct {
		a, b       string
		anc, ancOS bool
	}{
		{"0", "0.2.0.1", true, true},
		{"0.2", "0.2.0.1", true, true},
		{"0.2.0.1", "0.2.0.1", false, true},
		{"0.2.0.1", "0.2", false, false},
		{"0.1", "0.2.0", false, false},
		{"0.2.0", "0.2.1", false, false},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.IsAncestorOf(b); got != c.anc {
			t.Errorf("%s.IsAncestorOf(%s) = %v, want %v", a, b, got, c.anc)
		}
		if got := a.IsAncestorOrSelf(b); got != c.ancOS {
			t.Errorf("%s.IsAncestorOrSelf(%s) = %v, want %v", a, b, got, c.ancOS)
		}
	}
}

func TestLCA(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"0.2.0.1", "0.2.0.3", "0.2.0"},
		{"0.2.0.1", "0.2.0.1", "0.2.0.1"},
		{"0.2.0.1", "0.2", "0.2"},
		{"0.0", "0.2.0.3.0", "0"},
		{"0", "0", "0"},
	}
	for _, c := range cases {
		got := LCA(MustParse(c.a), MustParse(c.b))
		if got.String() != c.want {
			t.Errorf("LCA(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	if LCA(nil, MustParse("0.1")) != nil {
		t.Error("LCA(nil, x) should be nil")
	}
}

func TestLCAAll(t *testing.T) {
	got := LCAAll(MustParse("0.2.0.0.0.0"), MustParse("0.2.0.1"), MustParse("0.2.0.2"))
	if got.String() != "0.2.0" {
		t.Errorf("LCAAll = %s, want 0.2.0", got)
	}
	if LCAAll() != nil {
		t.Error("LCAAll() should be nil")
	}
	one := LCAAll(MustParse("0.1.2"))
	if one.String() != "0.1.2" {
		t.Errorf("LCAAll(x) = %s", one)
	}
}

func TestParentChildLevel(t *testing.T) {
	c := MustParse("0.2.0")
	if got := c.Parent().String(); got != "0.2" {
		t.Errorf("Parent = %s", got)
	}
	if got := c.Child(3).String(); got != "0.2.0.3" {
		t.Errorf("Child = %s", got)
	}
	if MustParse("0").Parent() != nil {
		t.Error("root Parent should be nil")
	}
	if got := MustParse("0").Level(); got != 0 {
		t.Errorf("root Level = %d", got)
	}
	if got := c.Level(); got != 2 {
		t.Errorf("Level = %d", got)
	}
	if got := Code(nil).Level(); got != -1 {
		t.Errorf("nil Level = %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := MustParse("0.1.2")
	d := c.Clone()
	d[2] = 9
	if c[2] != 2 {
		t.Error("Clone shares storage with original")
	}
	if Code(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestChildDoesNotAliasParentStorage(t *testing.T) {
	c := MustParse("0.1")
	a := c.Child(0)
	b := c.Child(1)
	if !Equal(a, MustParse("0.1.0")) || !Equal(b, MustParse("0.1.1")) {
		t.Fatalf("children corrupted: %s %s", a, b)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "0.2.0.1", "4294967295.0.7"} {
		c := MustParse(s)
		back, err := FromKey(c.Key())
		if err != nil {
			t.Fatalf("FromKey error: %v", err)
		}
		if !Equal(back, c) {
			t.Errorf("Key round trip %s -> %s", c, back)
		}
	}
	if _, err := FromKey("abc"); err == nil {
		t.Error("FromKey on odd-length key should fail")
	}
}

func TestKeyOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := randomCode(rng)
		b := randomCode(rng)
		cmpKeys := 0
		ka, kb := a.Key(), b.Key()
		if ka < kb {
			cmpKeys = -1
		} else if ka > kb {
			cmpKeys = 1
		}
		if got := Compare(a, b); got != cmpKeys {
			t.Fatalf("Compare(%s,%s)=%d but key order %d", a, b, got, cmpKeys)
		}
	}
}

func randomCode(rng *rand.Rand) Code {
	n := 1 + rng.Intn(6)
	c := make(Code, n)
	for i := range c {
		c[i] = uint32(rng.Intn(5))
	}
	return c
}

func TestSortMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		a := make([]Code, n)
		for i := range a {
			a[i] = randomCode(rng)
		}
		b := make([]Code, n)
		copy(b, a)
		Sort(a)
		sort.Slice(b, func(i, j int) bool { return Compare(b[i], b[j]) < 0 })
		for i := range a {
			if !Equal(a[i], b[i]) {
				t.Fatalf("trial %d: Sort mismatch at %d: %s vs %s", trial, i, a[i], b[i])
			}
		}
	}
}

func TestSearchGE(t *testing.T) {
	cs := []Code{MustParse("0.0"), MustParse("0.1"), MustParse("0.1.2"), MustParse("0.3")}
	cases := []struct {
		q    string
		want int
	}{
		{"0", 0},
		{"0.0", 0},
		{"0.0.5", 1},
		{"0.1", 1},
		{"0.1.2", 2},
		{"0.2", 3},
		{"0.3", 3},
		{"0.4", 4},
	}
	for _, c := range cases {
		if got := SearchGE(cs, MustParse(c.q)); got != c.want {
			t.Errorf("SearchGE(%s) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestSearchLE(t *testing.T) {
	cs := []Code{MustParse("0.0"), MustParse("0.1"), MustParse("0.1.2"), MustParse("0.3")}
	cases := []struct {
		q    string
		want int
	}{
		{"0", -1},
		{"0.0", 0},
		{"0.0.5", 0},
		{"0.1", 1},
		{"0.1.2", 2},
		{"0.2", 2},
		{"0.3", 3},
		{"0.4", 3},
	}
	for _, c := range cases {
		if got := SearchLE(cs, MustParse(c.q)); got != c.want {
			t.Errorf("SearchLE(%s) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestDedup(t *testing.T) {
	cs := []Code{MustParse("0.0"), MustParse("0.0"), MustParse("0.1"), MustParse("0.1"), MustParse("0.1"), MustParse("0.2")}
	got := Dedup(cs)
	if len(got) != 3 {
		t.Fatalf("Dedup len = %d, want 3", len(got))
	}
	if Dedup(nil) != nil {
		t.Error("Dedup(nil) should be nil")
	}
}

// Property: LCA is commutative, idempotent and is an ancestor-or-self of both
// arguments.
func TestLCAProperties(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := codeFromBytes(aRaw)
		b := codeFromBytes(bRaw)
		l := LCA(a, b)
		l2 := LCA(b, a)
		if !Equal(l, l2) {
			return false
		}
		if l == nil {
			return len(a) == 0 || len(b) == 0 || a[0] != b[0]
		}
		return l.IsAncestorOrSelf(a) && l.IsAncestorOrSelf(b) && Equal(LCA(l, a), l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare defines a total order consistent with ancestor
// relations: an ancestor always precedes its descendants.
func TestAncestorPrecedesDescendant(t *testing.T) {
	f := func(raw []uint8, extra []uint8) bool {
		a := codeFromBytes(raw)
		if len(a) == 0 {
			return true
		}
		b := a.Clone()
		for _, e := range extra {
			b = append(b, uint32(e%4))
		}
		if len(extra) == 0 {
			return Compare(a, b) == 0
		}
		return a.IsAncestorOf(b) && Compare(a, b) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func codeFromBytes(raw []uint8) Code {
	if len(raw) > 8 {
		raw = raw[:8]
	}
	c := make(Code, 0, len(raw)+1)
	c = append(c, 0) // shared root, as in a real document
	for _, r := range raw {
		c = append(c, uint32(r%4))
	}
	return c
}

func BenchmarkCompare(b *testing.B) {
	x := MustParse("0.2.0.1.5.3.2")
	y := MustParse("0.2.0.1.5.3.4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(x, y)
	}
}

func BenchmarkLCA(b *testing.B) {
	x := MustParse("0.2.0.1.5.3.2")
	y := MustParse("0.2.0.4.5.3.4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LCA(x, y)
	}
}

func BenchmarkSearchGE(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cs := make([]Code, 10000)
	for i := range cs {
		cs[i] = randomCode(rng)
	}
	Sort(cs)
	q := MustParse("2.1.0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchGE(cs, q)
	}
}
