// Package exec is the staged query-execution pipeline behind Engine.Search
// and Corpus.Search — the plan/execute split of the database world applied
// to the paper's four-stage algorithm:
//
//	plan        — the parsed query resolved to posting sets D1..Dk
//	              (Engine.resolveSets; carried here as a Plan value)
//	candidates  — getLCA → getRTF on node IDs (internal/nid), producing
//	              one lightweight scored Candidate per fragment root:
//	              root ID, keyword events, score — no node
//	              materialization, no strings
//	select      — top-K under (score desc, doc asc, seq asc) when ranking
//	              with a limit (a bounded heap, streamable across
//	              concurrent per-document producers), full ordering when
//	              ranking without one, document order otherwise
//	materialize — the expensive per-fragment work (pruneRTF: BuildFragment
//	              + Prune, then node/string assembly in the xks package),
//	              run only for the selected candidates
//
// The late-materialization contract: a Candidate is cheap — selection
// consults only the fragment root and its keyword events (scoring needs
// nothing else), so pruning and assembly costs scale with the number of
// *returned* fragments, not the number of matching fragments. Ranked
// corpus search over N documents with Limit=10 prunes and assembles
// exactly 10 fragments. Unranked and unlimited searches select every
// candidate in document order, so their materialized output is identical
// to the pre-pipeline eager path (crosschecked in the xks tests).
//
// The streaming consumers (Engine.Stream, Corpus.Fragments/Stream, the
// NDJSON HTTP path) drive the same stages with one difference: the
// materialize stage runs lazily, one candidate per iterator step, so an
// early break — client disconnect, page boundary, best-effort deadline —
// pays pruning and assembly for exactly the fragments yielded. Candidate
// Doc/Seq double as the cursor resume key the xks package embeds in its
// opaque pagination tokens.
package exec

import (
	"context"
	"sort"
	"sync"

	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/planner"
	"xks/internal/prune"
	"xks/internal/rank"
	"xks/internal/rtf"
	"xks/internal/trace"
)

// scoreCheckInterval is the number of candidates scored between context
// checks in the candidate stage (the per-event checks inside the merge
// loops live in internal/lca and internal/rtf).
const scoreCheckInterval = 256

// Plan is the resolved form of one query: the display keywords, the words
// used for IDF scoring, and the posting sets D1..Dk as node-ID lists over
// the owning document's node table, all in mask-bit order. An empty Sets
// means the query cannot match (some keyword had no postings).
type Plan struct {
	Keywords []string
	IDFWords []string
	Sets     [][]nid.ID
	// Decision is the planner's resolved plan for this query: evaluation
	// strategy, merge order, dispatch galloping. The zero value preserves
	// the pre-planner behavior (indexed SLCA, query order, no galloping),
	// so callers that never plan — tests, benchmarks — are unaffected.
	Decision planner.Decision
}

// KeywordNodes returns the total number of postings the plan consulted.
func (p Plan) KeywordNodes() int {
	n := 0
	for _, s := range p.Sets {
		n += len(s)
	}
	return n
}

// Params configures candidate generation, selection and materialization for
// one search. Tab/LabelOf/ContentOf/Score close over the owning engine's
// node table, document source and scorer.
type Params struct {
	// Tab is the document's node table; every ID in the plan's posting
	// sets, the candidates and the pruning results refers into it.
	Tab *nid.Table
	// SLCAOnly restricts fragment roots to smallest LCAs.
	SLCAOnly bool
	// Mode is the pruning mechanism applied at materialization.
	Mode prune.Mode
	// Prune tunes pruning (exact content comparison).
	Prune prune.Options
	// Rank enables scoring and score-ordered selection.
	Rank bool
	// Limit bounds the selected candidates when positive.
	Limit int
	// Offset skips that many candidates of the selection order before the
	// limit applies — the pagination window is [Offset, Offset+Limit).
	Offset int
	// Score rates one fragment root from its keyword events (required when
	// Rank is set).
	Score func(root nid.ID, events []lca.IDEvent, words []string) float64
	// Incremental returns a per-query incremental scorer; together with
	// DeferEvents it enables the score-without-events candidate stage.
	Incremental func(words []string) *rank.IncrementalScorer
	// DeferEvents drops per-candidate keyword-event lists during ranked
	// candidate generation (scores are accumulated during dispatch
	// instead); materialization hydrates events lazily for the few
	// selected candidates via rtf.EventsFor. Set when only a bounded page
	// of a ranked search will ever be materialized.
	DeferEvents bool
	// LabelOf and ContentOf resolve node labels and content word sets for
	// the pruning step.
	LabelOf   prune.IDLabelFunc
	ContentOf prune.IDContentFunc
}

// Candidate is one fragment root surviving the candidate stage: everything
// selection needs, nothing materialization produces. Doc and Seq make the
// ranking order a strict total order, so selection is deterministic no
// matter how concurrent producers interleave.
type Candidate struct {
	// Doc is the document's insertion index within a corpus search (0 for
	// single-document searches).
	Doc int
	// Seq is the candidate's document-order position within its document.
	Seq int
	// RTF holds the fragment root and its keyword events, in ID form.
	// Under Params.DeferEvents its KeywordNodes is nil; Roots then carries
	// what lazy hydration needs.
	RTF *rtf.IDRTF
	// Roots is the full interesting-LCA list of the candidate's query
	// (shared across the document's candidates), kept only when events
	// were deferred: rtf.EventsFor needs every root — covering or not —
	// to replay the dispatch inside the candidate's subtree.
	Roots []nid.ID
	// IsSLCA reports whether the root is a smallest LCA.
	IsSLCA bool
	// Score is the ranking score (zero unless Params.Rank).
	Score float64
}

// better reports whether c precedes o in ranked order: score descending,
// ties broken by document insertion order then document order — exactly the
// order of the pre-pipeline stable sort over eagerly merged fragments.
func (c *Candidate) better(o *Candidate) bool {
	if c.Score != o.Score {
		return c.Score > o.Score
	}
	if c.Doc != o.Doc {
		return c.Doc < o.Doc
	}
	return c.Seq < o.Seq
}

// Candidates runs the candidate stage: getLCA over the plan's posting sets
// (SLCA or the ELCA stack merge), getRTF dispatch, and — when ranking —
// scoring of each root from its keyword events. doc tags the candidates for
// corpus merges.
//
// ctx is checked upfront, periodically inside the k-way merge loops of the
// LCA and RTF stages (every few thousand events), and periodically between
// scored candidates, so a cancelled or deadlined context abandons the stage
// mid-stream with ctx.Err() instead of draining the posting lists. ctx must
// not be nil; use context.Background() to run uncancellable.
func Candidates(ctx context.Context, p Plan, params Params, doc int) ([]*Candidate, error) {
	if len(p.Sets) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := params.Tab
	// Traced requests get one child span per sub-stage (getLCA, getRTF),
	// each annotated by the stage itself with its event counters; untraced
	// requests pay one nil context lookup and no allocations.
	sp := trace.SpanFromContext(ctx)
	var (
		roots []nid.ID
		err   error
	)
	d := p.Decision
	lcaSp := sp.Child("lca")
	lctx := trace.ContextWithSpan(ctx, lcaSp)
	if params.SLCAOnly {
		// The planner's strategy choice: scan the full merge, or drive
		// indexed lookups from the rarest list (the legacy default).
		if d.Strategy == planner.ScanMerge {
			roots, err = lca.SLCAScanMergeIDsCtx(lctx, t, p.Sets, d.Order)
		} else {
			roots, err = lca.SLCAIDsCtx(lctx, t, p.Sets)
		}
	} else {
		roots, err = lca.ELCAStackMergeIDsOrderedCtx(lctx, t, p.Sets, d.Order)
	}
	lcaSp.End()
	if err != nil {
		return nil, err
	}
	rtfSp := sp.Child("rtf")
	rctx := trace.ContextWithSpan(ctx, rtfSp)
	if params.DeferEvents && params.Rank && params.Incremental != nil {
		// Score-without-events: one dispatch pass folds every event into
		// per-root accumulators; selected candidates hydrate their event
		// lists lazily at materialization (rtf.EventsFor via Roots).
		scored, serr := rtf.BuildScoredIDsCtx(rctx, t, roots, p.Sets,
			params.Incremental(p.IDFWords), d.Order, d.Skip)
		rtfSp.End()
		if serr != nil {
			return nil, serr
		}
		hulls := make([]rtf.IDRTF, len(scored))
		out := make([]*Candidate, len(scored))
		for i, s := range scored {
			isSLCA := !(i+1 < len(scored) && t.IsAncestorOf(s.Root, scored[i+1].Root))
			hulls[i].Root = s.Root
			out[i] = &Candidate{Doc: doc, Seq: i, RTF: &hulls[i], Roots: roots, IsSLCA: isSLCA, Score: s.Score}
		}
		sp.SetInt("candidates", int64(len(out)))
		return out, nil
	}
	rtfs, err := rtf.BuildIDsPlanned(rctx, t, roots, p.Sets, d.Order, d.Skip)
	rtfSp.End()
	if err != nil {
		return nil, err
	}
	out := make([]*Candidate, len(rtfs))
	for i, r := range rtfs {
		if i%scoreCheckInterval == scoreCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// The kept roots are sorted and distinct, so r is an SLCA exactly
		// when the next root is not its descendant.
		isSLCA := !(i+1 < len(rtfs) && t.IsAncestorOf(r.Root, rtfs[i+1].Root))
		c := &Candidate{Doc: doc, Seq: i, RTF: r, IsSLCA: isSLCA}
		if params.Rank && params.Score != nil {
			c.Score = params.Score(r.Root, r.KeywordNodes, p.IDFWords)
		}
		out[i] = c
	}
	sp.SetInt("candidates", int64(len(out)))
	return out, nil
}

// Select applies the selection stage to one document's candidates: ranked
// searches order by descending score (via a bounded heap when a limit
// applies), unranked searches keep document order; a positive limit
// truncates either way, and a positive offset skips the first Offset
// candidates of the selection order before the limit applies — the
// pagination window [Offset, Offset+Limit) of the full ordering.
func Select(cands []*Candidate, params Params) []*Candidate {
	if !params.Rank {
		return Page(cands, params.Offset, params.Limit)
	}
	// window > 0 guards Offset+Limit overflowing int: an unreachable
	// window pages to empty through the full-sort path below.
	if window := params.Offset + params.Limit; params.Limit > 0 && window > 0 && window < len(cands) {
		t := NewTopK(window)
		t.Offer(cands...)
		return Page(t.Ranked(), params.Offset, params.Limit)
	}
	out := make([]*Candidate, len(cands))
	copy(out, cands)
	SortRanked(out)
	return Page(out, params.Offset, params.Limit)
}

// Page slices the pagination window [offset, offset+limit) out of an
// ordered candidate list; limit <= 0 means unbounded, an offset past the
// end yields an empty page.
func Page(ordered []*Candidate, offset, limit int) []*Candidate {
	if offset > 0 {
		if offset >= len(ordered) {
			return nil
		}
		ordered = ordered[offset:]
	}
	if limit > 0 && len(ordered) > limit {
		ordered = ordered[:limit]
	}
	return ordered
}

// SortRanked orders candidates best-first under the ranked total order.
func SortRanked(cands []*Candidate) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].better(cands[j]) })
}

// Materialize runs the expensive half of the pipeline for one selected
// candidate — the pruneRTF stage: constructing the annotated fragment tree
// and filtering it under params.Mode. The caller (the xks package) turns
// the ordered keep-set into a rendered Fragment.
func Materialize(c *Candidate, params Params) *prune.Result {
	f := prune.BuildFragmentIDs(params.Tab, c.RTF, params.LabelOf, params.ContentOf, params.Prune)
	return f.Prune(params.Mode, params.Prune)
}

// TopK is a bounded, concurrency-safe accumulator of the K best candidates
// under the ranked total order. Per-document workers Offer their candidates
// as they produce them; because the order is strict (Doc, Seq break every
// tie), the surviving set is independent of arrival order, so concurrent
// corpus searches stay deterministic.
type TopK struct {
	mu sync.Mutex
	k  int
	h  []*Candidate // min-heap: worst surviving candidate at the root
}

// NewTopK returns an accumulator keeping the k best candidates (k must be
// positive). The backing array grows with the candidates actually offered,
// so a huge k — e.g. a request paging far past any real result set — costs
// nothing up front.
func NewTopK(k int) *TopK {
	return &TopK{k: k, h: make([]*Candidate, 0, min(k, 1024))}
}

// Offer considers candidates for the top K.
func (t *TopK) Offer(cands ...*Candidate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range cands {
		if len(t.h) < t.k {
			t.h = append(t.h, c)
			t.up(len(t.h) - 1)
			continue
		}
		if !c.better(t.h[0]) {
			continue
		}
		t.h[0] = c
		t.down(0)
	}
}

// Ranked returns the surviving candidates best-first. The accumulator is
// drained; further Offer calls start from empty.
func (t *TopK) Ranked() []*Candidate {
	t.mu.Lock()
	out := t.h
	t.h = make([]*Candidate, 0, min(t.k, 1024))
	t.mu.Unlock()
	SortRanked(out)
	return out
}

// worse is the heap order: the root holds the candidate every other
// survivor beats.
func (t *TopK) worse(i, j int) bool { return t.h[j].better(t.h[i]) }

func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(i, p) {
			break
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

func (t *TopK) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(t.h) && t.worse(l, m) {
			m = l
		}
		if r < len(t.h) && t.worse(r, m) {
			m = r
		}
		if m == i {
			return
		}
		t.h[i], t.h[m] = t.h[m], t.h[i]
		i = m
	}
}
