package exec

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"xks/internal/dewey"
	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/prune"
)

func mkCand(doc, seq int, score float64) *Candidate {
	return &Candidate{Doc: doc, Seq: seq, Score: score}
}

func keys(cands []*Candidate) [][3]float64 {
	out := make([][3]float64, len(cands))
	for i, c := range cands {
		out[i] = [3]float64{c.Score, float64(c.Doc), float64(c.Seq)}
	}
	return out
}

func TestTopKMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var all []*Candidate
		for doc := 0; doc < 4; doc++ {
			n := rng.Intn(8)
			for seq := 0; seq < n; seq++ {
				// Coarse scores force plenty of ties, the case where the
				// (doc, seq) tie-break must match the eager stable sort.
				all = append(all, mkCand(doc, seq, float64(rng.Intn(3))))
			}
		}
		k := 1 + rng.Intn(6)

		ref := make([]*Candidate, len(all))
		copy(ref, all)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Score > ref[j].Score })
		if len(ref) > k {
			ref = ref[:k]
		}

		topk := NewTopK(k)
		// Offer in randomized chunks to simulate worker interleaving.
		perm := rng.Perm(len(all))
		for len(perm) > 0 {
			n := 1 + rng.Intn(len(perm))
			chunk := make([]*Candidate, 0, n)
			for _, idx := range perm[:n] {
				chunk = append(chunk, all[idx])
			}
			perm = perm[n:]
			topk.Offer(chunk...)
		}
		got := topk.Ranked()

		if !reflect.DeepEqual(keys(ref), keys(got)) {
			t.Fatalf("trial %d (k=%d):\n got %v\nwant %v", trial, k, keys(got), keys(ref))
		}
	}
}

func TestTopKConcurrentOfferDeterministic(t *testing.T) {
	var all []*Candidate
	for doc := 0; doc < 8; doc++ {
		for seq := 0; seq < 20; seq++ {
			all = append(all, mkCand(doc, seq, float64((doc*seq)%5)))
		}
	}
	want := make([]*Candidate, len(all))
	copy(want, all)
	SortRanked(want)
	want = want[:10]

	for trial := 0; trial < 20; trial++ {
		topk := NewTopK(10)
		var wg sync.WaitGroup
		for doc := 0; doc < 8; doc++ {
			wg.Add(1)
			go func(doc int) {
				defer wg.Done()
				topk.Offer(all[doc*20 : (doc+1)*20]...)
			}(doc)
		}
		wg.Wait()
		got := topk.Ranked()
		if !reflect.DeepEqual(keys(want), keys(got)) {
			t.Fatalf("trial %d:\n got %v\nwant %v", trial, keys(got), keys(want))
		}
	}
}

func TestSelectUnranked(t *testing.T) {
	cands := []*Candidate{mkCand(0, 0, 0), mkCand(0, 1, 0), mkCand(0, 2, 0)}
	got := Select(cands, Params{})
	if !reflect.DeepEqual(cands, got) {
		t.Fatalf("unranked select reordered candidates")
	}
	got = Select(cands, Params{Limit: 2})
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("unranked limited select: got %v", keys(got))
	}
}

func TestSelectRanked(t *testing.T) {
	cands := []*Candidate{mkCand(0, 0, 1), mkCand(0, 1, 3), mkCand(0, 2, 2), mkCand(0, 3, 3)}
	got := Select(cands, Params{Rank: true})
	wantSeqs := []int{1, 3, 2, 0} // ties by ascending seq
	for i, c := range got {
		if c.Seq != wantSeqs[i] {
			t.Fatalf("ranked select order: got %v", keys(got))
		}
	}
	got = Select(cands, Params{Rank: true, Limit: 2})
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Fatalf("ranked limited select: got %v", keys(got))
	}
	// Limit >= len falls back to the full sort.
	got = Select(cands, Params{Rank: true, Limit: 10})
	if len(got) != 4 || got[0].Seq != 1 {
		t.Fatalf("ranked oversized limit: got %v", keys(got))
	}
}

func TestSelectOffsetPaging(t *testing.T) {
	cands := []*Candidate{mkCand(0, 0, 1), mkCand(0, 1, 3), mkCand(0, 2, 2), mkCand(0, 3, 3)}
	// Ranked order is seq 1, 3, 2, 0; the [1,3) window is seq 3, 2.
	got := Select(cands, Params{Rank: true, Limit: 2, Offset: 1})
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 2 {
		t.Fatalf("ranked page: got %v", keys(got))
	}
	// Unranked paging slices document order.
	got = Select(cands, Params{Limit: 2, Offset: 2})
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("unranked page: got %v", keys(got))
	}
	// Offset past the end is an empty page; offset with no limit drops the
	// prefix.
	if got = Select(cands, Params{Rank: true, Offset: 10}); len(got) != 0 {
		t.Fatalf("past-the-end page: got %v", keys(got))
	}
	if got = Select(cands, Params{Rank: true, Offset: 3}); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("tail page: got %v", keys(got))
	}
}

// TestCandidatesAndMaterialize runs the stages end to end over a tiny
// hand-built instance: keywords a={0.0.0, 0.1.0}, b={0.0.1, 0.1.1} under
// roots 0.0 and 0.1.
func TestCandidatesAndMaterialize(t *testing.T) {
	code := dewey.MustParse
	codeSets := [][]dewey.Code{
		{code("0.0.0"), code("0.1.0")},
		{code("0.0.1"), code("0.1.1")},
	}
	var all []dewey.Code
	for _, s := range codeSets {
		all = append(all, s...)
	}
	tab := nid.FromCodes(all)
	mustID := func(c dewey.Code) nid.ID {
		id, ok := tab.Find(c)
		if !ok {
			t.Fatalf("code %s missing from table", c)
		}
		return id
	}
	sets := make([][]nid.ID, len(codeSets))
	for i, s := range codeSets {
		for _, c := range s {
			sets[i] = append(sets[i], mustID(c))
		}
	}
	p := Plan{
		Keywords: []string{"a", "b"},
		IDFWords: []string{"a", "b"},
		Sets:     sets,
	}
	labels := map[string]string{
		"0": "root", "0.0": "item", "0.1": "item",
		"0.0.0": "x", "0.0.1": "y", "0.1.0": "x", "0.1.1": "y",
	}
	params := Params{
		Tab:  tab,
		Rank: true,
		Score: func(root nid.ID, events []lca.IDEvent, words []string) float64 {
			return float64(len(events)) + 1/float64(len(tab.Code(root)))
		},
		LabelOf:   func(id nid.ID) string { return labels[tab.Code(id).String()] },
		ContentOf: func(id nid.ID) []string { return []string{labels[tab.Code(id).String()]} },
		Mode:      prune.ValidContributor,
	}
	cands, err := Candidates(context.Background(), p, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	for i, c := range cands {
		if c.Doc != 3 || c.Seq != i {
			t.Fatalf("candidate %d tagged (doc=%d, seq=%d)", i, c.Doc, c.Seq)
		}
		if !c.IsSLCA {
			t.Fatalf("candidate %d (%s) should be an SLCA", i, tab.Code(c.RTF.Root))
		}
		if c.Score == 0 {
			t.Fatalf("candidate %d unscored despite Rank", i)
		}
		res := Materialize(c, params)
		if res.Len() != 3 { // root + two keyword children
			t.Fatalf("candidate %d kept %d nodes, want 3", i, res.Len())
		}
		if !res.Contains(tab.Code(c.RTF.Root)) {
			t.Fatalf("candidate %d pruned its own root", i)
		}
		if len(res.KeptIDs) != res.Len() {
			t.Fatalf("candidate %d KeptIDs len %d != Kept len %d", i, len(res.KeptIDs), res.Len())
		}
	}
	if cands[0].RTF.Root != mustID(code("0.0")) || cands[1].RTF.Root != mustID(code("0.1")) {
		t.Fatalf("roots %s, %s", tab.Code(cands[0].RTF.Root), tab.Code(cands[1].RTF.Root))
	}
}

func TestCandidatesEmptyPlan(t *testing.T) {
	if got, err := Candidates(context.Background(), Plan{}, Params{}, 0); got != nil || err != nil {
		t.Fatalf("empty plan produced %d candidates", len(got))
	}
}

func TestPlanKeywordNodes(t *testing.T) {
	p := Plan{Sets: [][]nid.ID{{1}, {2, 3}}}
	if got := p.KeywordNodes(); got != 3 {
		t.Fatalf("KeywordNodes = %d, want 3", got)
	}
}
