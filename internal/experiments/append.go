package experiments

// The append sweep behind BENCH_PR10.json: what one tail append costs on
// the delta path (an immutable segment + one atomic head swap, O(appended
// subtree)) versus the pre-delta renumbering baseline (splice into the node
// table, rescan every posting list — O(index) per node), and what a write
// storm does to read tail latency now that readers pin snapshots instead of
// contending with writers.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"xks"
)

// AppendResult is the append sweep over one generated dataset.
type AppendResult struct {
	Dataset string
	Nodes   int

	// DeltaNs / BaselineNs are averaged wall nanoseconds per append on each
	// path; the ops counts differ because the baseline is O(index) per
	// appended node and would dominate the sweep at equal counts.
	DeltaOps    int
	DeltaNs     int64
	BaselineOps int
	BaselineNs  int64

	// ReadP99Idle / ReadP99Storm are the p99 search latencies over the same
	// query mix on a quiet engine and during a continuous append storm.
	ReadP99Idle  time.Duration
	ReadP99Storm time.Duration

	// CompactNs is the one-shot cost of folding the storm's segments;
	// SegmentsFolded is how many it merged.
	CompactNs      int64
	SegmentsFolded int
}

// Speedup is the renumbering-baseline / delta per-append ratio.
func (r *AppendResult) Speedup() float64 {
	if r.DeltaNs == 0 {
		return 0
	}
	return float64(r.BaselineNs) / float64(r.DeltaNs)
}

// appendSnippet builds the i-th appended record: a small paper whose title
// carries both a workload keyword (so reads see the writes) and a unique
// token (so every append grows the vocabulary a little, as real ingest
// does).
func appendSnippet(i int) string {
	return fmt.Sprintf(`<paper><title>incremental keyword batch%d</title><author><name>appender</name></author></paper>`, i)
}

// RunAppend generates the DBLP dataset at the given preset size and
// measures: per-append cost on the delta path vs the renumbering baseline
// (deltaOps vs baselineOps appends under the document root — both tail
// appends, the baseline's best case), then read p99 idle vs during a write
// storm, then the cost of compacting the storm's backlog.
func RunAppend(size string, deltaOps, baselineOps int) (*AppendResult, error) {
	if deltaOps < 1 {
		deltaOps = 500
	}
	if baselineOps < 1 {
		baselineOps = 15
	}
	specs, err := Presets(size)
	if err != nil {
		return nil, err
	}
	spec := specs[0] // DBLP panel
	tree, w, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	query, err := w.Expand(w.Queries[0])
	if err != nil {
		return nil, err
	}

	res := &AppendResult{Dataset: fmt.Sprintf("dblp-%s", size)}

	// Renumbering baseline: each append splices into the base in place.
	baseline := xks.FromTree(tree.Clone())
	start := time.Now()
	for i := 0; i < baselineOps; i++ {
		if err := baseline.AppendXMLBaseline("0", appendSnippet(i)); err != nil {
			return nil, fmt.Errorf("baseline append %d: %w", i, err)
		}
	}
	res.BaselineOps = baselineOps
	res.BaselineNs = time.Since(start).Nanoseconds() / int64(baselineOps)

	// Delta path: each append lands in a segment; the base never changes.
	engine := xks.FromTree(tree.Clone())
	res.Nodes = engine.Index().NumNodes()
	start = time.Now()
	for i := 0; i < deltaOps; i++ {
		if err := engine.AppendXML("0", appendSnippet(i)); err != nil {
			return nil, fmt.Errorf("delta append %d: %w", i, err)
		}
	}
	res.DeltaOps = deltaOps
	res.DeltaNs = time.Since(start).Nanoseconds() / int64(deltaOps)

	// Read tail latency: the same ranked query, idle then during sustained
	// appends running in the background. The storm is paced at a fixed
	// ingest rate (one the renumbering baseline could not sustain at the
	// large size, where each of its appends costs tens of milliseconds of
	// exclusive index time) and runs the way production does (xkserver
	// -compact-interval): a compactor folds the backlog whenever it piles
	// up, so per-query merge cost stays bounded by the segment cap instead
	// of growing with every append.
	const (
		readSamples = 120
		segmentCap  = 64
		stormPace   = 5 * time.Millisecond // 200 appends/second
	)
	if _, err := engine.Compact(context.Background()); err != nil {
		return nil, err
	}
	req := xks.Request{Query: query, Rank: true, Limit: 10}
	measure := func() (time.Duration, error) {
		lat := make([]time.Duration, 0, readSamples)
		for i := 0; i < readSamples; i++ {
			t0 := time.Now()
			if _, err := engine.Search(context.Background(), req); err != nil {
				return 0, err
			}
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100], nil
	}
	if res.ReadP99Idle, err = measure(); err != nil {
		return nil, err
	}
	var stop atomic.Bool
	stormDone := make(chan error, 1)
	go func() {
		tick := time.NewTicker(stormPace)
		defer tick.Stop()
		for i := deltaOps; !stop.Load(); i++ {
			if err := engine.AppendXML("0", appendSnippet(i)); err != nil {
				stormDone <- err
				return
			}
			if engine.DeltaInfo().Segments >= segmentCap {
				if _, err := engine.Compact(context.Background()); err != nil {
					stormDone <- err
					return
				}
			}
			<-tick.C
		}
		stormDone <- nil
	}()
	p99, merr := measure()
	stop.Store(true)
	if err := <-stormDone; err != nil {
		return nil, fmt.Errorf("write storm: %w", err)
	}
	if merr != nil {
		return nil, merr
	}
	res.ReadP99Storm = p99

	// Fold the backlog and account it.
	res.SegmentsFolded = int(engine.DeltaInfo().Segments)
	start = time.Now()
	if _, err := engine.Compact(context.Background()); err != nil {
		return nil, err
	}
	res.CompactNs = time.Since(start).Nanoseconds()
	return res, nil
}

// Records flattens the sweep into the BENCH_*.json record shape.
func (r *AppendResult) Records() []BenchRecord {
	pre := fmt.Sprintf("append/%s/", r.Dataset)
	return []BenchRecord{
		{Name: pre + "delta", NsPerOp: r.DeltaNs},
		{Name: pre + "renumber-baseline", NsPerOp: r.BaselineNs},
		{Name: pre + "read-p99-idle", NsPerOp: r.ReadP99Idle.Nanoseconds()},
		{Name: pre + "read-p99-write-storm", NsPerOp: r.ReadP99Storm.Nanoseconds()},
		{Name: pre + "compact", NsPerOp: r.CompactNs, Fragments: r.SegmentsFolded},
	}
}

// Table renders the sweep for terminal output.
func (r *AppendResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "append: %s (%d nodes)\n", r.Dataset, r.Nodes)
	fmt.Fprintf(&b, "%-22s %14s %8s\n", "path", "ns/append", "ops")
	fmt.Fprintf(&b, "%-22s %14d %8d\n", "delta", r.DeltaNs, r.DeltaOps)
	fmt.Fprintf(&b, "%-22s %14d %8d\n", "renumber-baseline", r.BaselineNs, r.BaselineOps)
	fmt.Fprintf(&b, "speedup: %.1fx\n", r.Speedup())
	fmt.Fprintf(&b, "read p99: idle %s, write storm %s\n",
		r.ReadP99Idle.Round(time.Microsecond), r.ReadP99Storm.Round(time.Microsecond))
	fmt.Fprintf(&b, "compaction: %d segments folded in %s\n",
		r.SegmentsFolded, time.Duration(r.CompactNs).Round(time.Microsecond))
	return b.String()
}
