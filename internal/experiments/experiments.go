// Package experiments regenerates the paper's evaluation artifacts:
// Figure 5 (elapsed time of MaxMatch vs ValidRTF plus the number of RTFs
// per query) and Figure 6 (CFR, APR′ and Max APR per query) over the four
// datasets — DBLP and three XMark sizes — rebuilt synthetically at a
// configurable scale.
//
// Timing follows §5.1: each query runs repeats+1 times, the first run is
// discarded, and the remaining runs are averaged.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"xks"
	"xks/internal/concurrent"
	"xks/internal/datagen"
	"xks/internal/workload"
	"xks/internal/xmltree"
)

// DatasetSpec describes one dataset of the evaluation.
type DatasetSpec struct {
	// Name labels the output (e.g. "dblp", "xmark-standard").
	Name string
	// Kind is "dblp" or "xmark".
	Kind string
	// Variant selects the frequency column for XMark (0..2); DBLP has one.
	Variant int
	// Records is the number of DBLP records or XMark items.
	Records int
	// FreqFactor scales the paper's keyword frequencies down to this
	// dataset's size.
	FreqFactor float64
	// Seed drives generation.
	Seed int64
}

// Presets returns the four datasets of §5.1 at the requested scale:
// "small" for tests, "medium" for the default harness run, "large" for a
// longer-running sweep. XMark data1/data2 keep the paper's 1:3:6 size
// ratio, and the single frequency factor keeps each variant's frequency
// column consistent with its size.
func Presets(size string) ([]DatasetSpec, error) {
	var dblpRecords, xmarkItems int
	switch size {
	case "small":
		dblpRecords, xmarkItems = 400, 120
	case "medium":
		dblpRecords, xmarkItems = 3000, 600
	case "large":
		dblpRecords, xmarkItems = 12000, 2400
	default:
		return nil, fmt.Errorf("experiments: unknown preset size %q (want small, medium or large)", size)
	}
	// Frequency factors: the generated documents are a few thousandths of
	// the paper's datasets, but keyword density (occurrences per node) is
	// kept a few times higher than a pure size scale so that per-fragment
	// sibling structure — what the pruning mechanisms disagree on —
	// remains as rich as on the full-size data.
	dblpFactor := float64(dblpRecords) / 20000.0
	xmarkFactor := float64(xmarkItems) / 20000.0
	return []DatasetSpec{
		{Name: "dblp", Kind: "dblp", Variant: 0, Records: dblpRecords, FreqFactor: dblpFactor, Seed: 1},
		{Name: "xmark-standard", Kind: "xmark", Variant: int(workload.XMarkStandard), Records: xmarkItems, FreqFactor: xmarkFactor, Seed: 2},
		{Name: "xmark-data1", Kind: "xmark", Variant: int(workload.XMarkData1), Records: xmarkItems * 3, FreqFactor: xmarkFactor, Seed: 3},
		{Name: "xmark-data2", Kind: "xmark", Variant: int(workload.XMarkData2), Records: xmarkItems * 6, FreqFactor: xmarkFactor, Seed: 4},
	}, nil
}

// PresetByFigure maps the paper's figure panel names (5a..5d, 6a..6d) to
// the dataset index within Presets.
func PresetByFigure(figure string) (int, error) {
	if len(figure) != 2 || (figure[0] != '5' && figure[0] != '6') {
		return 0, fmt.Errorf("experiments: unknown figure %q (want 5a..5d or 6a..6d)", figure)
	}
	idx := int(figure[1] - 'a')
	if idx < 0 || idx > 3 {
		return 0, fmt.Errorf("experiments: unknown figure panel %q", figure)
	}
	return idx, nil
}

// Generate materializes the dataset's tree and its workload.
func Generate(spec DatasetSpec) (*xmltree.Tree, workload.Workload, error) {
	switch spec.Kind {
	case "dblp":
		w := workload.DBLP()
		specs, err := w.Specs(spec.Variant, spec.FreqFactor)
		if err != nil {
			return nil, w, err
		}
		return datagen.DBLP(datagen.DBLPConfig{Seed: spec.Seed, NumRecords: spec.Records, Keywords: specs}), w, nil
	case "xmark":
		w := workload.XMark()
		specs, err := w.Specs(spec.Variant, spec.FreqFactor)
		if err != nil {
			return nil, w, err
		}
		return datagen.XMark(datagen.XMarkConfig{Seed: spec.Seed, Items: spec.Records, Keywords: specs}), w, nil
	default:
		return nil, workload.Workload{}, fmt.Errorf("experiments: unknown dataset kind %q", spec.Kind)
	}
}

// QueryRow is one x-axis position of Figures 5 and 6: one query's timing
// and effectiveness numbers.
type QueryRow struct {
	// Abbrev is the letter abbreviation used on the figure axis.
	Abbrev string
	// Query is the expanded keyword query.
	Query string
	// MaxMatch and ValidRTF are the averaged elapsed times.
	MaxMatch time.Duration
	ValidRTF time.Duration
	// NumRTFs is the "RTFs" line of Figure 5.
	NumRTFs int
	// CFR, APRPrime and MaxAPR are the Figure 6 series.
	CFR      float64
	APRPrime float64
	MaxAPR   float64
	// AllocsPerOp and BytesPerOp are the heap allocations of one Compare
	// operation (both pipelines end to end), averaged over the timed runs
	// — the allocation dimension of the perf trajectory. Zero when the
	// run was parallel (per-query attribution is impossible there).
	AllocsPerOp int64
	BytesPerOp  int64
}

// FigureResult holds all rows for one dataset panel.
type FigureResult struct {
	Spec     DatasetSpec
	Nodes    int
	Rows     []QueryRow
	Workload workload.Workload
}

// Run generates the dataset and executes the full query mix, producing the
// data behind one panel of Figure 5 and one of Figure 6. repeats is the
// number of timed runs after the discarded warm-up (the paper uses 5).
func Run(spec DatasetSpec, repeats int) (*FigureResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	tree, w, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	engine := xks.FromTree(tree)
	res := &FigureResult{Spec: spec, Nodes: tree.Size(), Workload: w}
	for _, abbrev := range w.Queries {
		query, err := w.Expand(abbrev)
		if err != nil {
			return nil, err
		}
		row := QueryRow{Abbrev: abbrev, Query: query}
		// Warm-up run, discarded per §5.1.
		first, err := engine.Compare(context.Background(), xks.Request{Query: query})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s query %q: %w", spec.Name, abbrev, err)
		}
		row.NumRTFs = first.NumRTFs
		row.CFR = first.Ratios.CFR
		row.APRPrime = first.Ratios.APRPrime
		row.MaxAPR = first.Ratios.MaxAPR
		var sumValid, sumMax time.Duration
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		for i := 0; i < repeats; i++ {
			cmp, err := engine.Compare(context.Background(), xks.Request{Query: query})
			if err != nil {
				return nil, err
			}
			sumValid += cmp.ValidElapsed
			sumMax += cmp.MaxElapsed
		}
		runtime.ReadMemStats(&msAfter)
		row.AllocsPerOp = int64(msAfter.Mallocs-msBefore.Mallocs) / int64(repeats)
		row.BytesPerOp = int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / int64(repeats)
		row.ValidRTF = sumValid / time.Duration(repeats)
		row.MaxMatch = sumMax / time.Duration(repeats)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunParallel generates the dataset and executes the query mix across
// worker goroutines (0 = GOMAXPROCS). Effectiveness ratios are identical to
// Run's; per-query times come from a single run each and are indicative
// only (parallel execution perturbs timing), so use Run for Figure 5 and
// RunParallel when only the Figure 6 series matter.
func RunParallel(spec DatasetSpec, workers int) (*FigureResult, error) {
	tree, w, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	engine := xks.FromTree(tree)
	res := &FigureResult{Spec: spec, Nodes: tree.Size(), Workload: w}
	rows, err := concurrent.Map(w.Queries, workers, func(abbrev string) (QueryRow, error) {
		queryText, err := w.Expand(abbrev)
		if err != nil {
			return QueryRow{}, err
		}
		cmp, err := engine.Compare(context.Background(), xks.Request{Query: queryText})
		if err != nil {
			return QueryRow{}, fmt.Errorf("experiments: %s query %q: %w", spec.Name, abbrev, err)
		}
		return QueryRow{
			Abbrev:   abbrev,
			Query:    queryText,
			MaxMatch: cmp.MaxElapsed,
			ValidRTF: cmp.ValidElapsed,
			NumRTFs:  cmp.NumRTFs,
			CFR:      cmp.Ratios.CFR,
			APRPrime: cmp.Ratios.APRPrime,
			MaxAPR:   cmp.Ratios.MaxAPR,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the result in the layout of the paper's figures: the
// Figure 5 series (times, RTFs) and Figure 6 series (CFR, APR', Max APR)
// side by side, one query per row.
func (r *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %d nodes (records=%d, seed=%d)\n",
		r.Spec.Name, r.Nodes, r.Spec.Records, r.Spec.Seed)
	fmt.Fprintf(&b, "%-10s %-9s %-9s %6s %7s %7s %7s  %s\n",
		"query", "MaxM(ms)", "Valid(ms)", "RTFs", "CFR", "APR'", "MaxAPR", "keywords")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-9.3f %-9.3f %6d %7.3f %7.3f %7.3f  %s\n",
			row.Abbrev,
			float64(row.MaxMatch.Microseconds())/1000.0,
			float64(row.ValidRTF.Microseconds())/1000.0,
			row.NumRTFs, row.CFR, row.APRPrime, row.MaxAPR, row.Query)
	}
	return b.String()
}

// CSV renders the rows as comma-separated values with a header.
func (r *FigureResult) CSV() string {
	var b strings.Builder
	b.WriteString("dataset,query,keywords,maxmatch_ms,validrtf_ms,rtfs,cfr,apr_prime,max_apr\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%q,%.3f,%.3f,%d,%.4f,%.4f,%.4f\n",
			r.Spec.Name, row.Abbrev, row.Query,
			float64(row.MaxMatch.Microseconds())/1000.0,
			float64(row.ValidRTF.Microseconds())/1000.0,
			row.NumRTFs, row.CFR, row.APRPrime, row.MaxAPR)
	}
	return b.String()
}

// BenchRecord is one machine-readable benchmark measurement, the unit of
// the repo's BENCH_*.json perf trajectory: a slash-separated name
// (dataset/query/algorithm), the averaged per-operation time, the fragment
// count the operation produced, and — when measured — the allocation
// profile (objects and bytes per operation).
type BenchRecord struct {
	Name      string `json:"name"`
	NsPerOp   int64  `json:"ns_per_op"`
	Fragments int    `json:"fragments"`
	// AllocsPerOp and BytesPerOp cover the full Compare operation (both
	// pipelines); they are attributed to both of a query's records and
	// omitted (zero) for parallel runs.
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
}

// Records flattens a panel into benchmark records, two per query (one per
// algorithm).
func (r *FigureResult) Records() []BenchRecord {
	out := make([]BenchRecord, 0, 2*len(r.Rows))
	for _, row := range r.Rows {
		out = append(out,
			BenchRecord{
				Name:        fmt.Sprintf("%s/%s/MaxMatch", r.Spec.Name, row.Abbrev),
				NsPerOp:     row.MaxMatch.Nanoseconds(),
				Fragments:   row.NumRTFs,
				AllocsPerOp: row.AllocsPerOp,
				BytesPerOp:  row.BytesPerOp,
			},
			BenchRecord{
				Name:        fmt.Sprintf("%s/%s/ValidRTF", r.Spec.Name, row.Abbrev),
				NsPerOp:     row.ValidRTF.Nanoseconds(),
				Fragments:   row.NumRTFs,
				AllocsPerOp: row.AllocsPerOp,
				BytesPerOp:  row.BytesPerOp,
			})
	}
	return out
}

// Summary reports panel-level aggregates used to check the paper's claims:
// the time ratio between the two algorithms and the CFR/APR' aggregates.
type Summary struct {
	Dataset string
	// MeanTimeRatio is mean(ValidRTF / MaxMatch) across queries.
	MeanTimeRatio float64
	// QueriesWithCFRBelow1 counts queries where ValidRTF pruned further.
	QueriesWithCFRBelow1 int
	// QueriesWithAPRPrimePositive counts queries with APR' > 0.
	QueriesWithAPRPrimePositive int
	// MinMaxAPR is the smallest Max APR across queries with any pruning.
	MinMaxAPR float64
	Queries   int
}

// Summarize aggregates a panel.
func (r *FigureResult) Summarize() Summary {
	s := Summary{Dataset: r.Spec.Name, Queries: len(r.Rows), MinMaxAPR: 2}
	ratioSum := 0.0
	for _, row := range r.Rows {
		if row.MaxMatch > 0 {
			ratioSum += float64(row.ValidRTF) / float64(row.MaxMatch)
		} else {
			ratioSum += 1
		}
		if row.CFR < 1 {
			s.QueriesWithCFRBelow1++
		}
		if row.APRPrime > 0 {
			s.QueriesWithAPRPrimePositive++
		}
		if row.MaxAPR > 0 && row.MaxAPR < s.MinMaxAPR {
			s.MinMaxAPR = row.MaxAPR
		}
	}
	if len(r.Rows) > 0 {
		s.MeanTimeRatio = ratioSum / float64(len(r.Rows))
	}
	if s.MinMaxAPR > 1 {
		s.MinMaxAPR = 0
	}
	return s
}
