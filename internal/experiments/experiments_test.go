package experiments

import (
	"strings"
	"testing"

	"xks/internal/workload"
)

func TestPresets(t *testing.T) {
	for _, size := range []string{"small", "medium", "large"} {
		specs, err := Presets(size)
		if err != nil {
			t.Fatalf("%s: %v", size, err)
		}
		if len(specs) != 4 {
			t.Fatalf("%s: %d specs", size, len(specs))
		}
		if specs[0].Kind != "dblp" {
			t.Errorf("first preset should be dblp")
		}
		// XMark sizes keep the 1:3:6 ratio.
		if specs[2].Records != specs[1].Records*3 || specs[3].Records != specs[1].Records*6 {
			t.Errorf("%s: xmark ratio broken: %d %d %d", size, specs[1].Records, specs[2].Records, specs[3].Records)
		}
		// Same frequency factor across XMark variants.
		if specs[1].FreqFactor != specs[2].FreqFactor || specs[2].FreqFactor != specs[3].FreqFactor {
			t.Errorf("%s: xmark frequency factors differ", size)
		}
	}
	if _, err := Presets("gigantic"); err == nil {
		t.Error("unknown preset size should fail")
	}
}

func TestPresetByFigure(t *testing.T) {
	cases := map[string]int{"5a": 0, "5b": 1, "5c": 2, "5d": 3, "6a": 0, "6d": 3}
	for fig, want := range cases {
		got, err := PresetByFigure(fig)
		if err != nil || got != want {
			t.Errorf("PresetByFigure(%s) = %d, %v", fig, got, err)
		}
	}
	for _, bad := range []string{"", "7a", "5e", "55", "figure5a"} {
		if _, err := PresetByFigure(bad); err == nil {
			t.Errorf("PresetByFigure(%q) should fail", bad)
		}
	}
}

func TestGenerateDBLP(t *testing.T) {
	specs, _ := Presets("small")
	tree, w, err := Generate(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Label != "dblp" || w.Name != "dblp" {
		t.Errorf("wrong dataset: %s / %s", tree.Root.Label, w.Name)
	}
}

func TestGenerateXMark(t *testing.T) {
	specs, _ := Presets("small")
	tree, w, err := Generate(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Label != "site" || w.Name != "xmark" {
		t.Errorf("wrong dataset: %s / %s", tree.Root.Label, w.Name)
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, _, err := Generate(DatasetSpec{Kind: "unknown"}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, _, err := Generate(DatasetSpec{Kind: "xmark", Variant: 9, Records: 10, FreqFactor: 1}); err == nil {
		t.Error("bad variant should fail")
	}
}

func TestRunSmallDBLP(t *testing.T) {
	specs, _ := Presets("small")
	res, err := Run(specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.DBLP()
	if len(res.Rows) != len(w.Queries) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(w.Queries))
	}
	for _, row := range res.Rows {
		if row.ValidRTF <= 0 || row.MaxMatch <= 0 {
			t.Errorf("query %s: times not recorded (%v / %v)", row.Abbrev, row.ValidRTF, row.MaxMatch)
		}
		if row.CFR < 0 || row.CFR > 1 {
			t.Errorf("query %s: CFR out of range: %v", row.Abbrev, row.CFR)
		}
		if row.MaxAPR < 0 || row.MaxAPR > 1 || row.APRPrime < 0 || row.APRPrime > 1 {
			t.Errorf("query %s: APR out of range: %v / %v", row.Abbrev, row.APRPrime, row.MaxAPR)
		}
	}
	table := res.Table()
	if !strings.Contains(table, "dblp") || !strings.Contains(table, "CFR") {
		t.Errorf("table header missing:\n%s", table)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "dataset,query") || strings.Count(csv, "\n") != len(res.Rows)+1 {
		t.Errorf("csv malformed:\n%s", csv)
	}
	sum := res.Summarize()
	if sum.Queries != len(res.Rows) || sum.MeanTimeRatio <= 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestRunSmallXMarkShape(t *testing.T) {
	specs, _ := Presets("small")
	res, err := Run(specs[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summarize()
	// The paper's XMark claim: ValidRTF prunes further on (nearly) every
	// query — CFR < 1 on most queries of the mix.
	if sum.QueriesWithCFRBelow1 < len(res.Rows)/2 {
		t.Errorf("too few queries with CFR<1: %d of %d", sum.QueriesWithCFRBelow1, len(res.Rows))
	}
	// Runtime parity: same order of magnitude on average.
	if sum.MeanTimeRatio > 5 || sum.MeanTimeRatio < 0.2 {
		t.Errorf("time ratio out of parity band: %v", sum.MeanTimeRatio)
	}
}

func TestRunRepeatsClamped(t *testing.T) {
	specs, _ := Presets("small")
	spec := specs[0]
	spec.Records = 100
	spec.FreqFactor = 0.005
	if _, err := Run(spec, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelMatchesSequentialRatios(t *testing.T) {
	specs, _ := Presets("small")
	spec := specs[1]
	seq, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		a, b := seq.Rows[i], par.Rows[i]
		if a.Abbrev != b.Abbrev || a.NumRTFs != b.NumRTFs ||
			a.CFR != b.CFR || a.APRPrime != b.APRPrime || a.MaxAPR != b.MaxAPR {
			t.Errorf("row %s differs: %+v vs %+v", a.Abbrev, a, b)
		}
	}
}

func TestRunPlannerSmallDBLP(t *testing.T) {
	specs, _ := Presets("small")
	res, err := RunPlanner(specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.DBLP()
	wantRows := len(w.Queries) * len(plannerShapes())
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if row.Auto <= 0 || row.ScanMerge <= 0 || row.IndexedEager <= 0 {
			t.Errorf("%s/%s: times not recorded (%v / %v / %v)",
				row.Abbrev, row.Shape, row.Auto, row.ScanMerge, row.IndexedEager)
		}
		if row.Chosen == "" || row.Chosen == "Auto" {
			t.Errorf("%s/%s: unresolved chosen strategy %q", row.Abbrev, row.Shape, row.Chosen)
		}
		if strings.Contains(row.Shape, "elca") && row.Chosen != "ScanMerge" {
			t.Errorf("%s/%s: ELCA must resolve to ScanMerge, got %s", row.Abbrev, row.Shape, row.Chosen)
		}
	}
	recs := res.Records()
	if len(recs) != 3*len(res.Rows) {
		t.Fatalf("records = %d, want %d", len(recs), 3*len(res.Rows))
	}
	for _, r := range recs {
		if !strings.HasPrefix(r.Name, "planner/dblp/") || r.NsPerOp <= 0 {
			t.Errorf("bad record %+v", r)
		}
	}
	table := res.Table()
	if !strings.Contains(table, "chosen") || !strings.Contains(table, "slca-rank-top10") {
		t.Errorf("table malformed:\n%s", table)
	}
	sum := res.Summarize()
	if sum.Rows != len(res.Rows) || sum.MeanAutoVsScanMerge <= 0 || sum.MeanAutoVsBestFixed <= 0 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestRunOpen pins the cold-open sweep's shape: all heap rows present,
// the v2 parse measurably slower than the v3 section reader, and records
// named for the BENCH trajectory.
func TestRunOpen(t *testing.T) {
	res, err := RunOpen("small", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]OpenRow{}
	for _, r := range res.Rows {
		rows[r.Mode] = r
	}
	v2, ok2 := rows["v2-heap"]
	v3, ok3 := rows["v3-heap"]
	if !ok2 || !ok3 {
		t.Fatalf("missing heap rows in %+v", res.Rows)
	}
	if v2.Open <= 0 || v3.Open <= 0 || v2.FileBytes == 0 || v3.FileBytes == 0 {
		t.Fatalf("unmeasured rows: %+v / %+v", v2, v3)
	}
	if v3.Open >= v2.Open {
		t.Errorf("v3-heap open (%v) not faster than v2 parse (%v)", v3.Open, v2.Open)
	}
	if m, ok := rows["v3-mmap"]; ok {
		if m.MappedBytes != m.FileBytes || m.MappedBytes == 0 {
			t.Errorf("v3-mmap row %+v: mapped bytes must equal file size", m)
		}
	}
	for _, r := range res.Records() {
		if !strings.HasPrefix(r.Name, "open/dblp-small/") || r.NsPerOp <= 0 {
			t.Errorf("bad record %+v", r)
		}
	}
	if table := res.Table(); !strings.Contains(table, "v2-heap") {
		t.Errorf("table malformed:\n%s", table)
	}
}
