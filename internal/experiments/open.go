package experiments

// The cold-open sweep behind BENCH_PR9.json: how long it takes to go from
// a store file on disk to a queryable Store, and how many bytes land on
// the heap doing it, across the three backings — the v2 row format (full
// parse), v3 copied to the heap, and v3 mapped read-only (near zero-parse;
// postings stay on disk until a query touches them).

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"xks/internal/analysis"
	"xks/internal/store"
)

// OpenRow is one backing's averaged cold-open measurement.
type OpenRow struct {
	// Mode is the store backing: "v2-heap", "v3-heap" or "v3-mmap".
	Mode string
	// Open is the averaged wall time of store.OpenFile.
	Open time.Duration
	// HeapBytes is the averaged heap growth across the open (resident
	// bytes the process pays up front); MappedBytes is the read-only
	// mapping the OS pages in on demand instead.
	HeapBytes   int64
	MappedBytes int64
	// FileBytes is the store file's size in this format.
	FileBytes int64
}

// OpenResult is the cold-open sweep over one generated dataset.
type OpenResult struct {
	Dataset string
	Nodes   int
	Rows    []OpenRow
}

// RunOpen generates the DBLP dataset at the given preset size, persists it
// in the v2 row format and the v3 section format, and measures the
// cold-open cost of each backing, averaged over repeats runs (after one
// discarded warm-up so file-system caching is equal for all modes). The
// v3-mmap row is omitted on platforms without mmap support.
func RunOpen(size string, repeats int) (*OpenResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	specs, err := Presets(size)
	if err != nil {
		return nil, err
	}
	spec := specs[0] // DBLP panel
	tree, _, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	s := store.Shred(tree, analysis.New())

	dir, err := os.MkdirTemp("", "xks-open")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	v3path := filepath.Join(dir, "v3.xks")
	if err := s.SaveFile(v3path); err != nil {
		return nil, err
	}
	v2path := filepath.Join(dir, "v2.xks")
	f, err := os.Create(v2path)
	if err != nil {
		return nil, err
	}
	if err := s.SaveLegacy(f, 2); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	res := &OpenResult{Dataset: fmt.Sprintf("dblp-%s", size), Nodes: s.NumNodes()}
	modes := []struct {
		name string
		path string
		opts store.OpenOptions
	}{
		{"v2-heap", v2path, store.OpenOptions{}},
		{"v3-heap", v3path, store.OpenOptions{Mode: store.OpenHeap}},
		{"v3-mmap", v3path, store.OpenOptions{Mode: store.OpenMmap}},
	}
	for _, m := range modes {
		row, err := measureOpen(m.name, m.path, m.opts, repeats)
		if err != nil {
			if m.name == "v3-mmap" {
				continue // platform without mmap; the heap rows still stand
			}
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureOpen times repeats cold opens of one backing after a discarded
// warm-up, reading the heap growth of each open through a quiesced GC.
func measureOpen(name, path string, opts store.OpenOptions, repeats int) (OpenRow, error) {
	row := OpenRow{Mode: name}
	for i := 0; i <= repeats; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		st, err := store.OpenFile(path, opts)
		if err != nil {
			return row, fmt.Errorf("open %s: %w", name, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if i > 0 { // discard the warm-up run
			row.Open += elapsed
			if after.HeapAlloc > before.HeapAlloc {
				row.HeapBytes += int64(after.HeapAlloc - before.HeapAlloc)
			}
		}
		row.MappedBytes = st.MappedBytes()
		row.FileBytes = st.FileBytes()
		if err := st.Close(); err != nil {
			return row, err
		}
	}
	row.Open /= time.Duration(repeats)
	row.HeapBytes /= int64(repeats)
	return row, nil
}

// Records flattens the sweep into the BENCH_*.json record shape: open time
// as ns_per_op, up-front resident (heap) bytes as bytes_per_op.
func (r *OpenResult) Records() []BenchRecord {
	out := make([]BenchRecord, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, BenchRecord{
			Name:       fmt.Sprintf("open/%s/%s", r.Dataset, row.Mode),
			NsPerOp:    row.Open.Nanoseconds(),
			BytesPerOp: row.HeapBytes,
		})
	}
	return out
}

// Table renders the sweep for terminal output.
func (r *OpenResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cold open: %s (%d nodes)\n", r.Dataset, r.Nodes)
	fmt.Fprintf(&b, "%-8s %12s %14s %14s %12s\n", "mode", "open", "heap bytes", "mapped bytes", "file bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %12s %14d %14d %12d\n",
			row.Mode, row.Open.Round(time.Microsecond), row.HeapBytes, row.MappedBytes, row.FileBytes)
	}
	return b.String()
}
