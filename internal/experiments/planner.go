package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xks"
)

// plannerShape is one request shape of the planner sweep: the paging and
// semantics knobs matter because the cost model's crossover shifts with
// them (ranked top-K pages defer event materialization; ELCA always
// evaluates via the stack merge).
type plannerShape struct {
	Name string
	Req  xks.Request
}

func plannerShapes() []plannerShape {
	return []plannerShape{
		{Name: "slca-rank-top10", Req: xks.Request{Semantics: xks.SLCAOnly, Rank: true, Limit: 10}},
		{Name: "slca-all", Req: xks.Request{Semantics: xks.SLCAOnly}},
		{Name: "elca-rank-top10", Req: xks.Request{Rank: true, Limit: 10}},
	}
}

// PlannerRow is one (query, shape) cell of the planner sweep: the averaged
// elapsed time under the cost-based planner (Auto) and under each fixed
// strategy, plus the strategy Auto resolved to.
type PlannerRow struct {
	Abbrev string
	Query  string
	Shape  string
	// Chosen is the strategy the cost model resolved Auto to for this
	// query; fixed-strategy times measure both sides of that choice.
	Chosen string
	// Auto, ScanMerge and IndexedEager are the averaged elapsed times of
	// the full Search under the respective Request.Strategy.
	Auto         time.Duration
	ScanMerge    time.Duration
	IndexedEager time.Duration
	// Fragments is the page size every strategy returned; RunPlanner
	// fails if the strategies disagree (they are output-identical knobs).
	Fragments int
}

// PlannerResult holds the planner sweep for one dataset.
type PlannerResult struct {
	Spec  DatasetSpec
	Nodes int
	Rows  []PlannerRow
}

// RunPlanner generates the dataset and times the workload's query mix under
// Auto (the cost-based planner) and under each fixed strategy, over the
// request shapes the planner's crossover depends on. The fixed ScanMerge
// runs are the pre-planner baseline: query-order merges, no galloping.
// Timing follows the Figure 5 protocol — repeats+1 runs, first discarded,
// rest averaged. Any fragment-count disagreement between strategies is an
// error: strategy selection must never change answers.
func RunPlanner(spec DatasetSpec, repeats int) (*PlannerResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	tree, w, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	engine := xks.FromTree(tree)
	res := &PlannerResult{Spec: spec, Nodes: tree.Size()}
	for _, abbrev := range w.Queries {
		query, err := w.Expand(abbrev)
		if err != nil {
			return nil, err
		}
		for _, shape := range plannerShapes() {
			req := shape.Req
			req.Query = query
			row := PlannerRow{
				Abbrev: abbrev, Query: query, Shape: shape.Name,
				Chosen: engine.ResolveStrategy(req).String(),
			}
			counted := false
			for _, strat := range []xks.Strategy{xks.Auto, xks.ScanMerge, xks.IndexedEager} {
				req.Strategy = strat
				// Warm-up run, discarded per §5.1.
				first, err := engine.Search(context.Background(), req)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s %s/%s strategy %v: %w",
						spec.Name, abbrev, shape.Name, strat, err)
				}
				if !counted {
					row.Fragments = len(first.Fragments)
					counted = true
				} else if n := len(first.Fragments); n != row.Fragments {
					return nil, fmt.Errorf("experiments: %s %s/%s: strategy %v returned %d fragments, others %d",
						spec.Name, abbrev, shape.Name, strat, n, row.Fragments)
				}
				var sum time.Duration
				for i := 0; i < repeats; i++ {
					start := time.Now()
					if _, err := engine.Search(context.Background(), req); err != nil {
						return nil, err
					}
					sum += time.Since(start)
				}
				avg := sum / time.Duration(repeats)
				switch strat {
				case xks.Auto:
					row.Auto = avg
				case xks.ScanMerge:
					row.ScanMerge = avg
				case xks.IndexedEager:
					row.IndexedEager = avg
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Records flattens the sweep into benchmark records, three per row (one per
// strategy), named planner/<dataset>/<query>/<shape>/<strategy>.
func (r *PlannerResult) Records() []BenchRecord {
	out := make([]BenchRecord, 0, 3*len(r.Rows))
	for _, row := range r.Rows {
		prefix := fmt.Sprintf("planner/%s/%s/%s", r.Spec.Name, row.Abbrev, row.Shape)
		out = append(out,
			BenchRecord{Name: prefix + "/auto", NsPerOp: row.Auto.Nanoseconds(), Fragments: row.Fragments},
			BenchRecord{Name: prefix + "/scanmerge", NsPerOp: row.ScanMerge.Nanoseconds(), Fragments: row.Fragments},
			BenchRecord{Name: prefix + "/indexedeager", NsPerOp: row.IndexedEager.Nanoseconds(), Fragments: row.Fragments},
		)
	}
	return out
}

// Table renders the sweep one (query, shape) row at a time, fixed-strategy
// baselines next to Auto and the strategy Auto chose.
func (r *PlannerResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# planner %s: %d nodes (records=%d, seed=%d)\n",
		r.Spec.Name, r.Nodes, r.Spec.Records, r.Spec.Seed)
	fmt.Fprintf(&b, "%-10s %-16s %-9s %-9s %-9s %6s  %s\n",
		"query", "shape", "auto(ms)", "scan(ms)", "eager(ms)", "frags", "chosen")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-16s %-9.3f %-9.3f %-9.3f %6d  %s\n",
			row.Abbrev, row.Shape,
			float64(row.Auto.Microseconds())/1000.0,
			float64(row.ScanMerge.Microseconds())/1000.0,
			float64(row.IndexedEager.Microseconds())/1000.0,
			row.Fragments, row.Chosen)
	}
	return b.String()
}

// PlannerSummary aggregates one dataset's sweep: how Auto compares against
// the fixed query-order ScanMerge baseline and against the best fixed
// strategy per row (the regret of the cost model's choices).
type PlannerSummary struct {
	Dataset string
	Rows    int
	// MeanAutoVsScanMerge is mean(Auto / ScanMerge) across rows; < 1 means
	// the planner beats the pre-planner baseline on average.
	MeanAutoVsScanMerge float64
	// MeanAutoVsBestFixed is mean(Auto / min(ScanMerge, IndexedEager));
	// close to 1 means the model rarely picks the slower side.
	MeanAutoVsBestFixed float64
	// AutoNotWorse counts rows where Auto ran within 10% of the best fixed
	// strategy.
	AutoNotWorse int
}

// Summarize aggregates the sweep.
func (r *PlannerResult) Summarize() PlannerSummary {
	s := PlannerSummary{Dataset: r.Spec.Name, Rows: len(r.Rows)}
	var vsScan, vsBest float64
	for _, row := range r.Rows {
		best := row.ScanMerge
		if row.IndexedEager < best {
			best = row.IndexedEager
		}
		if row.ScanMerge > 0 {
			vsScan += float64(row.Auto) / float64(row.ScanMerge)
		} else {
			vsScan++
		}
		if best > 0 {
			ratio := float64(row.Auto) / float64(best)
			vsBest += ratio
			if ratio <= 1.10 {
				s.AutoNotWorse++
			}
		} else {
			vsBest++
			s.AutoNotWorse++
		}
	}
	if len(r.Rows) > 0 {
		s.MeanAutoVsScanMerge = vsScan / float64(len(r.Rows))
		s.MeanAutoVsBestFixed = vsBest / float64(len(r.Rows))
	}
	return s
}
