// Package fault is the deterministic fault-injection harness behind the
// chaos test suite: named injection points compiled into the serving stack
// (the per-document candidate fan-out, fragment materialization, store
// reads, the admission front door) that do nothing in production and fire
// scripted failures — delays, errors, panics, forced deadline exhaustion —
// when a test installs a Plan on the request context.
//
// The harness is deterministic by construction: a Rule fires on exact hit
// counts (skip the first After matches, then fire Count times), never on
// randomness or wall-clock races, so a chaos test that kills the third
// document's candidate stage kills exactly that one, every run.
//
// Cost when off: injection points call Inject, whose fast path is a single
// atomic load (no context lookup, no allocation) until the first
// Activate/NewContext of the process — production servers never activate
// the harness, so the hot pipeline pays one predictable branch per stage,
// not per event.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Point names one injection site in the serving stack.
type Point string

const (
	// PointCandidates fires inside the candidate stage — for corpus
	// searches, inside each per-document worker (Label is the document
	// name), before getLCA runs.
	PointCandidates Point = "candidates"
	// PointMaterialize fires before each fragment materialization (Label is
	// the document name for corpus searches, "" for single-engine ones).
	PointMaterialize Point = "materialize"
	// PointStoreRead fires where the engine reads its document source,
	// modeling a failed store/disk read during planning.
	PointStoreRead Point = "store-read"
	// PointAdmission fires between admission and execution in the HTTP
	// handler, inside the admitted slot — holding it for the action's
	// duration, which is how the overload tests congest the server
	// deterministically.
	PointAdmission Point = "admission"
	// PointCompact fires inside Engine.Compact between folding the delta
	// segments and publishing the merged head — a crash there must leave
	// the published state untouched (the fold is discarded, nothing
	// half-applied).
	PointCompact Point = "compact"
	// PointSnapshotPin fires when a query pins its snapshot; an injected
	// failure makes the engine skip the release (a scripted refcount leak),
	// which the chaos suite uses to prove the pinned-snapshots gauge
	// detects leaks.
	PointSnapshotPin Point = "snapshot-pin"
)

// ErrInjected is the default error of Action{Err: nil, Fail: true}
// injections and the sentinel chaos tests match to tell an injected
// failure from a real one.
var ErrInjected = errors.New("fault: injected failure")

// Action is what a matched rule does, applied in field order: first the
// delay (or deadline exhaustion), then the panic, then the error.
type Action struct {
	// Delay sleeps before proceeding; the sleep observes the context, so an
	// expiring deadline cuts it short and the injection returns ctx.Err().
	Delay time.Duration
	// UntilDeadline blocks until the request context is done and returns
	// ctx.Err() — forced deadline exhaustion, exactly at this point.
	UntilDeadline bool
	// PanicMsg, when non-empty, panics with this message — the injected
	// worker panic the isolation layer must recover.
	PanicMsg string
	// Err, when non-nil, is returned from the injection point verbatim (the
	// instrumented site propagates it as the stage's failure).
	Err error
}

// Rule scripts one injection: fire Action at Point, optionally only where
// the site's label (e.g. the document name) matches, skipping the first
// After hits and firing at most Count times (Count 0 = every later hit).
type Rule struct {
	Point  Point
	Label  string // "" matches any label
	After  int
	Count  int
	Action Action
}

type ruleState struct {
	Rule
	hits atomic.Int64
}

// Plan is an installed set of rules. One Plan is safe for concurrent use;
// its hit counters are shared across every request carrying it, which is
// what lets a test say "the third candidate stage anywhere dies".
type Plan struct {
	rules []*ruleState
}

// NewPlan builds a plan from rules; rules are tried in order and the first
// match fires.
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{rules: make([]*ruleState, len(rules))}
	for i, r := range rules {
		p.rules[i] = &ruleState{Rule: r}
	}
	return p
}

// active gates the context lookup: zero until the first plan of the
// process is installed, so production Inject calls cost one atomic load.
var active atomic.Bool

type planKey struct{}

// NewContext returns ctx carrying the plan and activates the harness
// process-wide (activation is sticky: the fast path stays off only until
// the first chaos test runs). A nil plan returns ctx unchanged.
func NewContext(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	active.Store(true)
	return context.WithValue(ctx, planKey{}, p)
}

// planFrom extracts the installed plan, or nil.
func planFrom(ctx context.Context) *Plan {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(planKey{}).(*Plan)
	return p
}

// Inject is the injection point: instrumented sites call it with their
// point name and label and propagate a non-nil error as that stage's
// failure. With no plan installed it returns nil after one atomic load.
// A matched rule's action may sleep (context-aware), panic (the isolation
// layer's job to recover), or return an error.
func Inject(ctx context.Context, pt Point, label string) error {
	if !active.Load() {
		return nil
	}
	p := planFrom(ctx)
	if p == nil {
		return nil
	}
	for _, r := range p.rules {
		if r.Point != pt || (r.Label != "" && r.Label != label) {
			continue
		}
		n := r.hits.Add(1)
		if n <= int64(r.After) {
			continue
		}
		if r.Count > 0 && n > int64(r.After+r.Count) {
			continue
		}
		return r.apply(ctx)
	}
	return nil
}

// apply runs one matched action.
func (r *ruleState) apply(ctx context.Context) error {
	a := r.Action
	if a.UntilDeadline {
		<-ctx.Done()
		return ctx.Err()
	}
	if a.Delay > 0 {
		t := time.NewTimer(a.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if a.PanicMsg != "" {
		panic(fmt.Sprintf("fault: injected panic: %s", a.PanicMsg))
	}
	return a.Err
}
