package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInjectNoPlanIsNil(t *testing.T) {
	if err := Inject(context.Background(), PointCandidates, "doc"); err != nil {
		t.Fatalf("no plan: err = %v", err)
	}
	if err := Inject(nil, PointCandidates, ""); err != nil {
		t.Fatalf("nil ctx: err = %v", err)
	}
}

func TestInjectErrorRule(t *testing.T) {
	ctx := NewContext(context.Background(), NewPlan(
		Rule{Point: PointStoreRead, Action: Action{Err: ErrInjected}},
	))
	if err := Inject(ctx, PointStoreRead, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Other points are unaffected.
	if err := Inject(ctx, PointCandidates, ""); err != nil {
		t.Fatalf("unmatched point: err = %v", err)
	}
}

func TestInjectHitWindowIsDeterministic(t *testing.T) {
	// Skip 2 hits, fire exactly 1.
	ctx := NewContext(context.Background(), NewPlan(
		Rule{Point: PointCandidates, After: 2, Count: 1, Action: Action{Err: ErrInjected}},
	))
	got := make([]bool, 5)
	for i := range got {
		got[i] = Inject(ctx, PointCandidates, "any") != nil
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d fired=%t, want %t (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestInjectLabelFilter(t *testing.T) {
	ctx := NewContext(context.Background(), NewPlan(
		Rule{Point: PointCandidates, Label: "b.xml", Action: Action{Err: ErrInjected}},
	))
	if err := Inject(ctx, PointCandidates, "a.xml"); err != nil {
		t.Fatalf("wrong label fired: %v", err)
	}
	if err := Inject(ctx, PointCandidates, "b.xml"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching label: err = %v", err)
	}
}

func TestInjectPanics(t *testing.T) {
	ctx := NewContext(context.Background(), NewPlan(
		Rule{Point: PointMaterialize, Action: Action{PanicMsg: "poisoned document"}},
	))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "poisoned document") {
			t.Fatalf("panic = %v", r)
		}
	}()
	Inject(ctx, PointMaterialize, "")
}

func TestInjectDelayObservesContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ctx = NewContext(ctx, NewPlan(
		Rule{Point: PointAdmission, Action: Action{Delay: 10 * time.Second}},
	))
	start := time.Now()
	err := Inject(ctx, PointAdmission, "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("delay did not observe the context")
	}
}

func TestInjectUntilDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ctx = NewContext(ctx, NewPlan(
		Rule{Point: PointCandidates, Action: Action{UntilDeadline: true}},
	))
	if err := Inject(ctx, PointCandidates, ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestLeakCheckCatchesLeak(t *testing.T) {
	check := LeakCheck()
	stop := make(chan struct{})
	go func() { <-stop }()
	// The blocked goroutine above must be reported... but without waiting
	// the full grace period in the happy-path suite, use a shortened probe:
	// LeakCheck's check blocks ~2s when leaking, so only assert the
	// non-empty dump, then release the goroutine and assert clean.
	if dump := check(); dump == "" {
		t.Fatal("leak not detected")
	}
	close(stop)
	if dump := check(); dump != "" {
		t.Fatalf("clean state reported as leak:\n%s", dump)
	}
}
