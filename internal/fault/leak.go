package fault

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"time"
)

// LeakCheck snapshots the goroutine count and returns a check func the
// chaos tests defer (or register with t.Cleanup): it waits for the count
// to fall back to the snapshot — workers joining, queue waiters draining,
// http keep-alives idling out — and returns a goroutine dump when it does
// not within two seconds. The empty return string means no leak.
//
// The check tolerates nothing above the starting count: every fault class
// the chaos suite injects must leave zero goroutines behind, which is the
// acceptance bar for panic isolation and admission shedding.
func LeakCheck() func() string {
	before := runtime.NumGoroutine()
	return func() string {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				var buf bytes.Buffer
				pprof.Lookup("goroutine").WriteTo(&buf, 1)
				return buf.String()
			}
			time.Sleep(5 * time.Millisecond)
		}
		return ""
	}
}
