// Package httpapi exposes a service.Service — engine- or corpus-backed,
// with caching, singleflight, and metrics — as a small JSON HTTP API, used
// by cmd/xkserver and testable with net/http/httptest. Each request is
// parsed into an xks.Request and executed under the request's own context
// (r.Context(), optionally tightened by a timeout= deadline): a client that
// disconnects or times out cancels the pipeline mid-stream. Search
// execution is the staged pipeline of internal/exec: rank=1&limit=N
// requests prune and assemble only the N returned fragments, and the
// per-fragment XML below is rendered once per cached result, not once per
// request.
//
// Endpoints:
//
//	GET /search?q=keyword+query[&doc=name][&algo=validrtf|maxmatch|raw]
//	           [&slca=1][&rank=1][&limit=N][&cursor=tok][&offset=N]
//	           [&timeout=dur][&budget=best-effort][&snippets=1][&stream=1]
//	           [&explain=1]
//	GET /documents
//	GET /stats
//	GET /metrics
//	GET /healthz
//	POST /append  {"doc": name, "parent": dewey, "xml": snippet}
//	POST /compact
//
// Writes: the POST endpoints exist only when Options.AllowWrites is set
// (404 otherwise). /append lands the snippet in the named document's
// write-side delta index — outstanding cursors and cached pages keep
// working, pinned to the snapshot they were issued at — and /compact folds
// accumulated delta segments into the base without changing version
// tokens. Both answer JSON.
//
// Error mapping: malformed parameters and unsearchable queries
// (xks.ErrEmptyQuery, xks.ErrTooManyTerms) are 400, an unknown doc=
// (xks.ErrUnknownDocument) is 404, a search that exceeds its deadline is
// 504, a cursor that does not decode or was issued for a different query
// (xks.ErrBadCursor, xks.ErrCursorMismatch) is 400, and a cursor
// invalidated by an index mutation (xks.ErrStaleCursor) is 410 Gone with a
// restart hint — the scroll must begin again from the first page.
//
// Pagination: responses whose result set extends past the returned page
// carry an opaque "cursor" token; pass it back as cursor= to resume. The
// token pins the data generation, so a page boundary can never silently
// shift under a concurrent append. The "next"/offset= raw-offset pair
// remains as a deprecated shim. With budget=best-effort, a deadline that
// expires mid-page returns the fragments finished so far with
// "truncated":true (plus a machine-readable "truncation" reason naming the
// stage the deadline expired in, and a cursor to resume) instead of a 504.
//
// Streaming: stream=1 switches /search to NDJSON chunked output — one
// fragment object per line, written (and flushed, when the ResponseWriter
// supports http.Flusher) as the pipeline materializes it, with no page
// buffering; the final line is a trailer record ({"trailer":true, ...})
// carrying the cursor, stats, and the truncation marker. A mid-stream
// failure appears as a trailer with an "error" field, since the 200 status
// is already on the wire.
//
// Observability: explain=1 attaches a trace (internal/trace) to the
// request and returns the finished span tree — per-stage wall times,
// candidate counts, cache disposition, per-document fan-out — as the
// "explain" field of the response (or of the NDJSON trailer with
// stream=1). GET /metrics serves the service counters, the request-latency
// histogram, and the per-stage pipeline histograms in the Prometheus text
// exposition format — the same atomics /stats reports as JSON. Every
// request carries an X-Request-Id (the caller's, or a generated one), and
// when Options.Logger is set each request emits one structured access
// line; Options.SlowQuery additionally traces every search and logs the
// full explain tree for those slower than the threshold.
package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"xks"
	"xks/internal/admission"
	"xks/internal/fault"
	"xks/internal/service"
	"xks/internal/trace"
)

// MaxTimeout caps the timeout= parameter so a client cannot pin a worker
// arbitrarily long; it is also the implicit deadline when none is given.
const MaxTimeout = 30 * time.Second

// MaxPageParam caps limit= and offset= so a crafted request cannot ask the
// pipeline for an absurd pagination window.
const MaxPageParam = 1 << 20

// Options configures the optional observability surfaces of the handler.
// The zero value (and a nil *Options) disables them all: no access log, no
// slow-query log — explain=1 and /metrics are always available.
type Options struct {
	// Logger receives one structured access line per request, plus
	// slow-query reports and JSON encoding failures. nil disables logging.
	Logger *slog.Logger
	// SlowQuery, when positive, traces every /search request and logs the
	// full explain tree (via Logger) for those that take at least this
	// long end to end.
	SlowQuery time.Duration
	// Admission, when non-nil, gates /search behind the concurrency-limited,
	// queue-bounded front door: shed requests answer 429/503 with
	// Retry-After in microseconds, a draining server answers 503 with
	// Connection: close (and /healthz flips unhealthy), and the admission
	// counters ride along on /metrics and the explain span tree.
	Admission *admission.Controller
	// AllowWrites enables the POST /append and /compact endpoints; off by
	// default so a plain read-only server exposes no mutation surface.
	AllowWrites bool
}

// Fragment is the JSON shape of one result fragment.
type Fragment struct {
	Document  string  `json:"document,omitempty"`
	Root      string  `json:"root"`
	RootLabel string  `json:"rootLabel"`
	IsSLCA    bool    `json:"isSlca"`
	Score     float64 `json:"score,omitempty"`
	Snippet   string  `json:"snippet,omitempty"`
	XML       string  `json:"xml"`
	Nodes     int     `json:"nodes"`
}

// Response is the JSON shape of a search response.
type Response struct {
	Query     string   `json:"query"`
	Keywords  []string `json:"keywords"`
	NumLCAs   int      `json:"numLcas"`
	ElapsedMS float64  `json:"elapsedMs"`
	Cached    bool     `json:"cached"`
	Offset    int      `json:"offset,omitempty"`
	// Cursor is the opaque, generation-aware resume token of the next
	// page; pass it back as cursor=. Empty when the result set is
	// exhausted.
	Cursor string `json:"cursor,omitempty"`
	// Truncated reports a best-effort deadline expiring mid-page: the
	// fragments below are everything that finished in time.
	Truncated bool `json:"truncated,omitempty"`
	// Truncation names the stage the deadline expired in when Truncated is
	// set: "deadline-candidates" (empty page, unknown total) or
	// "deadline-materialize" (partial page of finished fragments).
	Truncation string `json:"truncation,omitempty"`
	// Next is the offset= of the next page.
	//
	// Deprecated: resume with Cursor, which fails loudly (410) instead of
	// shifting silently when the index mutates mid-scroll.
	Next        string         `json:"next,omitempty"`
	PerDocument map[string]int `json:"perDocument,omitempty"`
	Fragments   []Fragment     `json:"fragments"`
	// Explain is the finished trace span tree, present with explain=1.
	Explain *trace.SpanJSON `json:"explain,omitempty"`
}

// StreamTrailer is the final NDJSON record of a stream=1 search — the
// envelope for the fragment lines above it. Error is set when the stream
// failed after the 200 status was already committed.
type StreamTrailer struct {
	Trailer    bool     `json:"trailer"` // always true; marks the record
	Cursor     string   `json:"cursor,omitempty"`
	Next       string   `json:"next,omitempty"` // deprecated offset shim
	Truncated  bool     `json:"truncated,omitempty"`
	Truncation string   `json:"truncation,omitempty"`
	Keywords   []string `json:"keywords,omitempty"`
	NumLCAs    int      `json:"numLcas"`
	ElapsedMS  float64  `json:"elapsedMs"`
	Error      string   `json:"error,omitempty"`
	// Explain is the finished trace span tree, present with explain=1.
	Explain *trace.SpanJSON `json:"explain,omitempty"`
}

// DocumentsResponse is the JSON shape of /documents.
type DocumentsResponse struct {
	Documents []xks.DocumentInfo `json:"documents"`
}

// AppendRequest is the JSON body of POST /append: append the parsed XML
// snippet under the node identified by the Dewey code parent (e.g. "0.2")
// in the named document (doc may be empty on a single-document server).
type AppendRequest struct {
	Doc    string `json:"doc"`
	Parent string `json:"parent"`
	XML    string `json:"xml"`
}

// AppendResponse is the JSON shape of a successful POST /append.
type AppendResponse struct {
	OK bool `json:"ok"`
	// Generation is the corpus version token after the append.
	Generation uint64 `json:"generation"`
}

// CompactResponse is the JSON shape of a successful POST /compact.
type CompactResponse struct {
	OK             bool `json:"ok"`
	SegmentsFolded int  `json:"segmentsFolded"`
}

// maxAppendBody bounds the POST /append body (the XML snippet plus JSON
// framing) so a client cannot stream an unbounded document at the decoder.
const maxAppendBody = 8 << 20

// StatsResponse is the JSON shape of /stats.
type StatsResponse struct {
	Documents    int              `json:"documents"`
	Generation   uint64           `json:"generation"`
	CacheEntries int              `json:"cacheEntries"`
	Server       service.Snapshot `json:"server"`
}

// parseRequest builds the xks.Request from the query parameters; the error
// message is returned to the client with a 400.
func parseRequest(r *http.Request) (xks.Request, bool, error) {
	q := r.URL.Query()
	req := xks.Request{Query: q.Get("q"), Document: q.Get("doc")}
	if req.Query == "" {
		return req, false, fmt.Errorf(`missing "q" parameter: %w`, xks.ErrEmptyQuery)
	}
	switch q.Get("algo") {
	case "", "validrtf":
	case "maxmatch":
		req.Algorithm = xks.MaxMatch
	case "raw":
		req.Algorithm = xks.RawRTF
	default:
		return req, false, errors.New("unknown algo")
	}
	if q.Get("slca") == "1" {
		req.Semantics = xks.SLCAOnly
	}
	switch q.Get("strategy") {
	case "", "auto":
	case "indexed", "indexedeager":
		req.Strategy = xks.IndexedEager
	case "scan", "scanmerge":
		req.Strategy = xks.ScanMerge
	default:
		return req, false, errors.New("unknown strategy")
	}
	if q.Get("rank") == "1" {
		req.Rank = true
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 || n > MaxPageParam {
			return req, false, errors.New("bad limit")
		}
		req.Limit = n
	}
	if o := q.Get("offset"); o != "" {
		n, err := strconv.Atoi(o)
		if err != nil || n < 0 || n > MaxPageParam {
			return req, false, errors.New("bad offset")
		}
		req.Offset = n
	}
	if cur := q.Get("cursor"); cur != "" {
		req.Cursor = xks.Cursor(cur)
	}
	switch q.Get("budget") {
	case "", "strict":
	case "best-effort", "besteffort":
		req.Budget = xks.BestEffort
	default:
		return req, false, errors.New("bad budget")
	}
	if d := q.Get("timeout"); d != "" {
		t, err := time.ParseDuration(d)
		if err != nil || t <= 0 {
			return req, false, errors.New("bad timeout")
		}
		req.Timeout = min(t, MaxTimeout)
	}
	return req, q.Get("snippets") == "1", nil
}

// status maps a search error to its HTTP status: 404 for unknown documents,
// 504 for deadline-exceeded pipelines, 410 for cursors invalidated by an
// index mutation (the error text carries the restart hint), 400 for
// everything else (bad query shapes — xks.ErrEmptyQuery,
// xks.ErrTooManyTerms, malformed predicates — and malformed or mismatched
// cursors).
func status(err error) int {
	switch {
	case errors.Is(err, xks.ErrUnknownDocument):
		return http.StatusNotFound
	case errors.Is(err, xks.ErrStaleCursor):
		return http.StatusGone
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, xks.ErrInternal):
		// A recovered pipeline panic: the request failed, the server did
		// not. The stack went to the log, not the client.
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// errorBody is the client-facing error text: recovered panics are replaced
// by an opaque line (the stack and panic value stay in the server log).
func errorBody(err error) string {
	if errors.Is(err, xks.ErrInternal) {
		return "internal error"
	}
	return err.Error()
}

// logInternal emits the structured error line for a recovered panic — the
// one place the captured stack surfaces.
func logInternal(logger *slog.Logger, ctx context.Context, err error) {
	if logger == nil || !errors.Is(err, xks.ErrInternal) {
		return
	}
	attrs := []slog.Attr{
		slog.String("requestId", requestID(ctx)),
		slog.String("error", err.Error()),
	}
	var pe *xks.PanicError
	if errors.As(err, &pe) {
		attrs = append(attrs, slog.String("stack", string(pe.Stack)))
	}
	logger.LogAttrs(ctx, slog.LevelError, "panic recovered", attrs...)
}

// reqMeta is the per-request bookkeeping the handlers fill in for the
// access line: the request ID and the serving dispositions worth logging.
type reqMeta struct {
	id        string
	cached    bool
	truncated bool
}

type metaKey struct{}

// metaFrom returns the request's bookkeeping record, or nil outside the
// middleware (e.g. a handler invoked directly in tests).
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

// requestID returns the request's ID, or "" outside the middleware.
func requestID(ctx context.Context) string {
	if m := metaFrom(ctx); m != nil {
		return m.id
	}
	return ""
}

// newRequestID generates a 16-hex-digit random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and byte count for the access
// line. It always implements http.Flusher — delegating when the wrapped
// writer supports it, no-op otherwise — so the NDJSON streaming path keeps
// its per-fragment flushes through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObservability wraps the router with the request-ID middleware and,
// when logger is non-nil, one structured access line per request.
func withObservability(next http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		meta := &reqMeta{id: r.Header.Get("X-Request-Id")}
		if meta.id == "" {
			meta.id = newRequestID()
		}
		w.Header().Set("X-Request-Id", meta.id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), metaKey{}, meta)))
		if logger == nil {
			return
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("requestId", meta.id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("query", r.URL.RawQuery),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", time.Since(start)),
			slog.Bool("cached", meta.cached),
			slog.Bool("truncated", meta.truncated),
		)
	})
}

// NewHandler builds the API router over the service. opts may be nil (no
// access or slow-query logging; explain=1 and /metrics work regardless).
func NewHandler(svc *service.Service, opts *Options) http.Handler {
	if opts == nil {
		opts = &Options{}
	}
	logger := opts.Logger
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Admission != nil && opts.Admission.Draining() {
			// Tell load balancers to route elsewhere while in-flight and
			// queued requests finish.
			w.Header().Set("Connection", "close")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/documents", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, logger, DocumentsResponse{Documents: svc.Documents()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, logger, StatsResponse{
			Documents:    len(svc.Documents()),
			Generation:   svc.Generation(),
			CacheEntries: svc.CacheLen(),
			Server:       svc.Metrics().Snapshot(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		svc.WritePrometheus(w)
		if opts.Admission != nil {
			opts.Admission.WritePrometheus(w)
		}
	})
	if opts.AllowWrites {
		mux.HandleFunc("/append", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			var body AppendRequest
			if err := json.NewDecoder(io.LimitReader(r.Body, maxAppendBody)).Decode(&body); err != nil {
				http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
				return
			}
			if body.XML == "" {
				http.Error(w, `missing "xml" field`, http.StatusBadRequest)
				return
			}
			if err := svc.Append(body.Doc, body.Parent, body.XML); err != nil {
				http.Error(w, errorBody(err), status(err))
				return
			}
			writeJSON(w, logger, AppendResponse{OK: true, Generation: svc.Generation()})
		})
		mux.HandleFunc("/compact", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			folded, err := svc.Compact(r.Context())
			if err != nil {
				http.Error(w, errorBody(err), http.StatusInternalServerError)
				return
			}
			writeJSON(w, logger, CompactResponse{OK: true, SegmentsFolded: folded})
		})
	}
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		req, withSnippets, err := parseRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Apply the deadline here, at the serving boundary, so it holds for
		// any Searcher behind the service; engines then see Timeout == 0
		// and simply inherit this context.
		timeout := req.Timeout
		if timeout == 0 {
			timeout = MaxTimeout
		}
		req.Timeout = 0
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		// explain=1 returns the span tree to the client; a slow-query
		// threshold traces every search so the ones that cross it can be
		// logged with their full breakdown.
		explain := r.URL.Query().Get("explain") == "1"
		var tr *trace.Trace
		if explain || opts.SlowQuery > 0 {
			tr = trace.New("search")
			tr.Root().SetStr("algorithm", req.Algorithm.String())
			tr.Root().SetStr("strategy", req.Strategy.String())
			ctx = trace.NewContext(ctx, tr)
		}
		defer func() {
			if tr == nil || opts.SlowQuery <= 0 || logger == nil {
				return
			}
			if d := time.Since(start); d >= opts.SlowQuery {
				logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query",
					slog.String("requestId", requestID(r.Context())),
					slog.String("query", req.Query),
					slog.Duration("duration", d),
					slog.String("explain", tr.Root().Text()),
				)
			}
		}()

		// Admission: acquire an execution slot (or shed) before any
		// pipeline work. The slot is held until the handler — including
		// response streaming — returns.
		if adm := opts.Admission; adm != nil {
			release, waited, aerr := adm.Acquire(ctx)
			if aerr != nil {
				if errors.Is(aerr, context.Canceled) {
					return // the client went away while queued
				}
				code := http.StatusServiceUnavailable
				switch {
				case errors.Is(aerr, admission.ErrShed):
					code = http.StatusTooManyRequests
				case errors.Is(aerr, context.DeadlineExceeded):
					code = http.StatusGatewayTimeout
				case errors.Is(aerr, admission.ErrDraining):
					// Make the client re-dial: the next connection lands on
					// a live server, not this draining one.
					w.Header().Set("Connection", "close")
				}
				w.Header().Set("Retry-After", "1")
				http.Error(w, aerr.Error(), code)
				return
			}
			defer release()
			if tr != nil {
				st := adm.Stats()
				asp := tr.Root()
				asp.SetInt("admissionWaitUs", waited.Microseconds())
				asp.SetInt("admissionInflight", int64(st.InFlight))
				asp.SetInt("admissionQueued", int64(st.Queued))
			}
		}
		// Chaos injection point: overload tests congest the server by
		// holding admitted slots here, between admission and execution.
		if ferr := fault.Inject(ctx, fault.PointAdmission, ""); ferr != nil {
			http.Error(w, errorBody(ferr), status(ferr))
			return
		}

		if r.URL.Query().Get("stream") == "1" {
			streamSearch(ctx, w, svc, logger, req, withSnippets, explain, tr)
			return
		}

		res, cached, err := svc.Search(ctx, req)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// The client went away; there is no one to answer.
				return
			}
			logInternal(logger, r.Context(), err)
			http.Error(w, errorBody(err), status(err))
			return
		}
		if m := metaFrom(r.Context()); m != nil {
			m.cached, m.truncated = cached, res.Truncated
		}
		if res.Truncation != "" {
			tr.Root().SetStr("truncation", string(res.Truncation))
		}
		resp := Response{
			Query:       req.Query,
			Keywords:    res.Stats.Keywords,
			NumLCAs:     res.Stats.NumLCAs,
			ElapsedMS:   float64(res.Stats.Elapsed.Microseconds()) / 1000.0,
			Cached:      cached,
			Offset:      req.Offset,
			Cursor:      string(res.Cursor),
			Truncated:   res.Truncated,
			Truncation:  string(res.Truncation),
			PerDocument: res.PerDocument,
		}
		if res.NextOffset >= 0 {
			resp.Next = strconv.Itoa(res.NextOffset)
		}
		for _, f := range res.Fragments {
			resp.Fragments = append(resp.Fragments, ToFragment(f, withSnippets))
		}
		if explain {
			tr.Finish()
			resp.Explain = tr.Root().JSON()
		}
		writeJSON(w, logger, resp)
	})
	return withObservability(mux, logger)
}

// streamSearch serves /search?stream=1: NDJSON chunked output driven
// directly off the service's fragment iterator — one fragment per line,
// flushed as it materializes, then one StreamTrailer record. Errors before
// the first fragment still map to proper status codes (400/404/410/504);
// a failure after bytes are on the wire becomes a trailer with its "error"
// field set. With explain set, the trailer carries tr's finished span tree.
func streamSearch(ctx context.Context, w http.ResponseWriter, svc *service.Service, logger *slog.Logger, req xks.Request, withSnippets, explain bool, tr *trace.Trace) {
	seq, trailer := svc.Stream(ctx, req)
	var (
		enc     *json.Encoder
		flusher http.Flusher
		wrote   bool
	)
	begin := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
		enc = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
		wrote = true
	}
	for f, err := range seq {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return // the client went away; there is no one to answer
			}
			logInternal(logger, ctx, err)
			if !wrote {
				http.Error(w, errorBody(err), status(err))
				return
			}
			enc.Encode(StreamTrailer{Trailer: true, Error: errorBody(err)})
			flush(flusher)
			return
		}
		if !wrote {
			begin()
		}
		if err := writeFragmentLine(w, f, withSnippets); err != nil {
			// The connection is gone mid-line; nothing left to answer.
			return
		}
		flush(flusher)
	}
	if !wrote {
		begin()
	}
	t := trailer()
	if m := metaFrom(ctx); m != nil {
		m.truncated = t.Truncated
	}
	if t.Truncation != "" {
		tr.Root().SetStr("truncation", string(t.Truncation))
	}
	st := ToStreamTrailer(t)
	if explain {
		tr.Finish()
		st.Explain = tr.Root().JSON()
	}
	enc.Encode(st)
	flush(flusher)
}

func flush(f http.Flusher) {
	if f != nil {
		f.Flush()
	}
}

// fragmentMeta is the Fragment wire shape minus the xml field — the part
// of a streamed NDJSON line that is marshaled whole; the xml value is then
// streamed behind it (writeFragmentLine), so the record stays identical to
// a marshaled Fragment without the rendering ever being buffered.
type fragmentMeta struct {
	Document  string  `json:"document,omitempty"`
	Root      string  `json:"root"`
	RootLabel string  `json:"rootLabel"`
	IsSLCA    bool    `json:"isSlca"`
	Score     float64 `json:"score,omitempty"`
	Snippet   string  `json:"snippet,omitempty"`
	Nodes     int     `json:"nodes"`
}

// writeFragmentLine writes one stream=1 NDJSON fragment record with the
// XML rendered straight into the chunked body: the metadata fields are
// marshaled normally, then the closing brace is replaced by an "xml" member
// whose string value streams through a JSON escaper under the client's
// backpressure. The bytes on the wire decode identically to
// json.Marshal(ToFragment(f, withSnippets)).
func writeFragmentLine(w io.Writer, f xks.CorpusFragment, withSnippets bool) error {
	meta := fragmentMeta{
		Document:  f.Document,
		Root:      f.Root,
		RootLabel: f.RootLabel,
		IsSLCA:    f.IsSLCA,
		Score:     f.Score,
		Nodes:     f.Len(),
	}
	if withSnippets {
		meta.Snippet = f.Snippet()
	}
	head, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if _, err := w.Write(head[:len(head)-1]); err != nil { // strip closing '}'
		return err
	}
	if _, err := io.WriteString(w, `,"xml":"`); err != nil {
		return err
	}
	esc := jsonStringEscaper{w: w}
	if err := f.WriteXML(&esc); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\"}\n")
	return err
}

// jsonStringEscaper escapes the bytes of a JSON string value on the fly:
// quotes, backslashes and control characters are escaped, valid UTF-8
// passes through untouched (encoding/json would escape <, > and & too —
// an HTML-safety measure both encodings decode identically from).
type jsonStringEscaper struct {
	w   io.Writer
	buf []byte
}

func (j *jsonStringEscaper) Write(p []byte) (int, error) {
	b := j.buf[:0]
	for _, c := range p {
		switch {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	j.buf = b[:0] // keep the grown capacity for the next chunk
	if _, err := j.w.Write(b); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ToFragment converts one result fragment to its NDJSON/JSON wire shape —
// the single source of the fragment format, shared by the buffered
// response, the stream=1 endpoint, and cmd/xksearch's -stream output.
func ToFragment(f xks.CorpusFragment, withSnippets bool) Fragment {
	out := Fragment{
		Document:  f.Document,
		Root:      f.Root,
		RootLabel: f.RootLabel,
		IsSLCA:    f.IsSLCA,
		Score:     f.Score,
		XML:       f.XML(),
		Nodes:     f.Len(),
	}
	if withSnippets {
		out.Snippet = f.Snippet()
	}
	return out
}

// ToStreamTrailer builds the NDJSON trailer record for a stream's envelope
// — the single source of the trailer format, shared with cmd/xksearch.
func ToStreamTrailer(t *xks.Results) StreamTrailer {
	tr := StreamTrailer{
		Trailer:    true,
		Cursor:     string(t.Cursor),
		Truncated:  t.Truncated,
		Truncation: string(t.Truncation),
		Keywords:   t.Stats.Keywords,
		NumLCAs:    t.Stats.NumLCAs,
		ElapsedMS:  float64(t.Stats.Elapsed.Microseconds()) / 1000.0,
	}
	if t.NextOffset >= 0 {
		tr.Next = strconv.Itoa(t.NextOffset)
	}
	return tr
}

func writeJSON(w http.ResponseWriter, logger *slog.Logger, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && logger != nil {
		logger.Warn("httpapi: encode failed", slog.String("error", err.Error()))
	}
}
