// Package httpapi exposes a service.Service — engine- or corpus-backed,
// with caching, singleflight, and metrics — as a small JSON HTTP API, used
// by cmd/xkserver and testable with net/http/httptest. Search execution is
// the staged pipeline of internal/exec: rank=1&limit=N requests prune and
// assemble only the N returned fragments, and the per-fragment XML below
// is rendered once per cached result, not once per request.
//
// Endpoints:
//
//	GET /search?q=keyword+query[&doc=name][&algo=validrtf|maxmatch|raw]
//	           [&slca=1][&rank=1][&limit=N][&snippets=1]
//	GET /documents
//	GET /stats
//	GET /healthz
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"xks"
	"xks/internal/service"
)

// Fragment is the JSON shape of one result fragment.
type Fragment struct {
	Document  string  `json:"document,omitempty"`
	Root      string  `json:"root"`
	RootLabel string  `json:"rootLabel"`
	IsSLCA    bool    `json:"isSlca"`
	Score     float64 `json:"score,omitempty"`
	Snippet   string  `json:"snippet,omitempty"`
	XML       string  `json:"xml"`
	Nodes     int     `json:"nodes"`
}

// Response is the JSON shape of a search response.
type Response struct {
	Query       string         `json:"query"`
	Keywords    []string       `json:"keywords"`
	NumLCAs     int            `json:"numLcas"`
	ElapsedMS   float64        `json:"elapsedMs"`
	Cached      bool           `json:"cached"`
	PerDocument map[string]int `json:"perDocument,omitempty"`
	Fragments   []Fragment     `json:"fragments"`
}

// DocumentsResponse is the JSON shape of /documents.
type DocumentsResponse struct {
	Documents []xks.DocumentInfo `json:"documents"`
}

// StatsResponse is the JSON shape of /stats.
type StatsResponse struct {
	Documents    int              `json:"documents"`
	Generation   uint64           `json:"generation"`
	CacheEntries int              `json:"cacheEntries"`
	Server       service.Snapshot `json:"server"`
}

// NewHandler builds the API router over the service. logger may be nil.
func NewHandler(svc *service.Service, logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/documents", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, logger, DocumentsResponse{Documents: svc.Documents()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, logger, StatsResponse{
			Documents:    len(svc.Documents()),
			Generation:   svc.Generation(),
			CacheEntries: svc.CacheLen(),
			Server:       svc.Metrics().Snapshot(),
		})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
			return
		}
		opts := xks.Options{}
		switch r.URL.Query().Get("algo") {
		case "", "validrtf":
		case "maxmatch":
			opts.Algorithm = xks.MaxMatch
		case "raw":
			opts.Algorithm = xks.RawRTF
		default:
			http.Error(w, "unknown algo", http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("slca") == "1" {
			opts.Semantics = xks.SLCAOnly
		}
		if r.URL.Query().Get("rank") == "1" {
			opts.Rank = true
		}
		if l := r.URL.Query().Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			opts.Limit = n
		}
		withSnippets := r.URL.Query().Get("snippets") == "1"
		doc := r.URL.Query().Get("doc")

		res, cached, err := svc.Search(q, doc, opts)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, xks.ErrUnknownDocument) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		resp := Response{
			Query:       q,
			Keywords:    res.Stats.Keywords,
			NumLCAs:     res.Stats.NumLCAs,
			ElapsedMS:   float64(res.Stats.Elapsed.Microseconds()) / 1000.0,
			Cached:      cached,
			PerDocument: res.PerDocument,
		}
		for _, f := range res.Fragments {
			out := Fragment{
				Document:  f.Document,
				Root:      f.Root,
				RootLabel: f.RootLabel,
				IsSLCA:    f.IsSLCA,
				Score:     f.Score,
				XML:       f.XML(),
				Nodes:     f.Len(),
			}
			if withSnippets {
				out.Snippet = f.Snippet()
			}
			resp.Fragments = append(resp.Fragments, out)
		}
		writeJSON(w, logger, resp)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, logger *log.Logger, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && logger != nil {
		logger.Printf("httpapi: encode: %v", err)
	}
}
