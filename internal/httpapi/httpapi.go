// Package httpapi exposes an engine as a small JSON HTTP API, used by
// cmd/xkserver and testable with net/http/httptest.
//
// Endpoints:
//
//	GET /search?q=keyword+query[&algo=validrtf|maxmatch|raw][&slca=1]
//	           [&rank=1][&limit=N][&snippets=1]
//	GET /healthz
package httpapi

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"xks"
)

// Fragment is the JSON shape of one result fragment.
type Fragment struct {
	Root      string  `json:"root"`
	RootLabel string  `json:"rootLabel"`
	IsSLCA    bool    `json:"isSlca"`
	Score     float64 `json:"score,omitempty"`
	Snippet   string  `json:"snippet,omitempty"`
	XML       string  `json:"xml"`
	Nodes     int     `json:"nodes"`
}

// Response is the JSON shape of a search response.
type Response struct {
	Query     string     `json:"query"`
	Keywords  []string   `json:"keywords"`
	NumLCAs   int        `json:"numLcas"`
	ElapsedMS float64    `json:"elapsedMs"`
	Fragments []Fragment `json:"fragments"`
}

// NewHandler builds the API router over the engine. logger may be nil.
func NewHandler(engine *xks.Engine, logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
			return
		}
		opts := xks.Options{}
		switch r.URL.Query().Get("algo") {
		case "", "validrtf":
		case "maxmatch":
			opts.Algorithm = xks.MaxMatch
		case "raw":
			opts.Algorithm = xks.RawRTF
		default:
			http.Error(w, "unknown algo", http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("slca") == "1" {
			opts.Semantics = xks.SLCAOnly
		}
		if r.URL.Query().Get("rank") == "1" {
			opts.Rank = true
		}
		if l := r.URL.Query().Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			opts.Limit = n
		}
		withSnippets := r.URL.Query().Get("snippets") == "1"

		res, err := engine.Search(q, opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := Response{
			Query:     q,
			Keywords:  res.Stats.Keywords,
			NumLCAs:   res.Stats.NumLCAs,
			ElapsedMS: float64(res.Stats.Elapsed.Microseconds()) / 1000.0,
		}
		for _, f := range res.Fragments {
			out := Fragment{
				Root:      f.Root,
				RootLabel: f.RootLabel,
				IsSLCA:    f.IsSLCA,
				Score:     f.Score,
				XML:       f.XML(),
				Nodes:     f.Len(),
			}
			if withSnippets {
				out.Snippet = f.Snippet()
			}
			resp.Fragments = append(resp.Fragments, out)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil && logger != nil {
			logger.Printf("httpapi: encode: %v", err)
		}
	})
	return mux
}
