// Package httpapi exposes a service.Service — engine- or corpus-backed,
// with caching, singleflight, and metrics — as a small JSON HTTP API, used
// by cmd/xkserver and testable with net/http/httptest. Each request is
// parsed into an xks.Request and executed under the request's own context
// (r.Context(), optionally tightened by a timeout= deadline): a client that
// disconnects or times out cancels the pipeline mid-stream. Search
// execution is the staged pipeline of internal/exec: rank=1&limit=N
// requests prune and assemble only the N returned fragments, and the
// per-fragment XML below is rendered once per cached result, not once per
// request.
//
// Endpoints:
//
//	GET /search?q=keyword+query[&doc=name][&algo=validrtf|maxmatch|raw]
//	           [&slca=1][&rank=1][&limit=N][&offset=N][&timeout=dur]
//	           [&snippets=1]
//	GET /documents
//	GET /stats
//	GET /healthz
//
// Error mapping: malformed parameters and unsearchable queries
// (xks.ErrEmptyQuery, xks.ErrTooManyTerms) are 400, an unknown doc=
// (xks.ErrUnknownDocument) is 404, and a search that exceeds its deadline
// is 504. Paged responses carry a "next" cursor — the offset= of the
// following page — whenever the result set extends past the returned page.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"xks"
	"xks/internal/service"
)

// MaxTimeout caps the timeout= parameter so a client cannot pin a worker
// arbitrarily long; it is also the implicit deadline when none is given.
const MaxTimeout = 30 * time.Second

// MaxPageParam caps limit= and offset= so a crafted request cannot ask the
// pipeline for an absurd pagination window.
const MaxPageParam = 1 << 20

// Fragment is the JSON shape of one result fragment.
type Fragment struct {
	Document  string  `json:"document,omitempty"`
	Root      string  `json:"root"`
	RootLabel string  `json:"rootLabel"`
	IsSLCA    bool    `json:"isSlca"`
	Score     float64 `json:"score,omitempty"`
	Snippet   string  `json:"snippet,omitempty"`
	XML       string  `json:"xml"`
	Nodes     int     `json:"nodes"`
}

// Response is the JSON shape of a search response.
type Response struct {
	Query       string         `json:"query"`
	Keywords    []string       `json:"keywords"`
	NumLCAs     int            `json:"numLcas"`
	ElapsedMS   float64        `json:"elapsedMs"`
	Cached      bool           `json:"cached"`
	Offset      int            `json:"offset,omitempty"`
	Next        string         `json:"next,omitempty"` // offset= of the next page
	PerDocument map[string]int `json:"perDocument,omitempty"`
	Fragments   []Fragment     `json:"fragments"`
}

// DocumentsResponse is the JSON shape of /documents.
type DocumentsResponse struct {
	Documents []xks.DocumentInfo `json:"documents"`
}

// StatsResponse is the JSON shape of /stats.
type StatsResponse struct {
	Documents    int              `json:"documents"`
	Generation   uint64           `json:"generation"`
	CacheEntries int              `json:"cacheEntries"`
	Server       service.Snapshot `json:"server"`
}

// parseRequest builds the xks.Request from the query parameters; the error
// message is returned to the client with a 400.
func parseRequest(r *http.Request) (xks.Request, bool, error) {
	q := r.URL.Query()
	req := xks.Request{Query: q.Get("q"), Document: q.Get("doc")}
	if req.Query == "" {
		return req, false, fmt.Errorf(`missing "q" parameter: %w`, xks.ErrEmptyQuery)
	}
	switch q.Get("algo") {
	case "", "validrtf":
	case "maxmatch":
		req.Algorithm = xks.MaxMatch
	case "raw":
		req.Algorithm = xks.RawRTF
	default:
		return req, false, errors.New("unknown algo")
	}
	if q.Get("slca") == "1" {
		req.Semantics = xks.SLCAOnly
	}
	if q.Get("rank") == "1" {
		req.Rank = true
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 || n > MaxPageParam {
			return req, false, errors.New("bad limit")
		}
		req.Limit = n
	}
	if o := q.Get("offset"); o != "" {
		n, err := strconv.Atoi(o)
		if err != nil || n < 0 || n > MaxPageParam {
			return req, false, errors.New("bad offset")
		}
		req.Offset = n
	}
	if d := q.Get("timeout"); d != "" {
		t, err := time.ParseDuration(d)
		if err != nil || t <= 0 {
			return req, false, errors.New("bad timeout")
		}
		req.Timeout = min(t, MaxTimeout)
	}
	return req, q.Get("snippets") == "1", nil
}

// status maps a search error to its HTTP status: 404 for unknown documents,
// 504 for deadline-exceeded pipelines, 400 for everything else (bad query
// shapes — xks.ErrEmptyQuery, xks.ErrTooManyTerms, malformed predicates).
func status(err error) int {
	switch {
	case errors.Is(err, xks.ErrUnknownDocument):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// NewHandler builds the API router over the service. logger may be nil.
func NewHandler(svc *service.Service, logger *log.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/documents", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, logger, DocumentsResponse{Documents: svc.Documents()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, logger, StatsResponse{
			Documents:    len(svc.Documents()),
			Generation:   svc.Generation(),
			CacheEntries: svc.CacheLen(),
			Server:       svc.Metrics().Snapshot(),
		})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		req, withSnippets, err := parseRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Apply the deadline here, at the serving boundary, so it holds for
		// any Searcher behind the service; engines then see Timeout == 0
		// and simply inherit this context.
		timeout := req.Timeout
		if timeout == 0 {
			timeout = MaxTimeout
		}
		req.Timeout = 0
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		res, cached, err := svc.Search(ctx, req)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// The client went away; there is no one to answer.
				return
			}
			http.Error(w, err.Error(), status(err))
			return
		}
		resp := Response{
			Query:       req.Query,
			Keywords:    res.Stats.Keywords,
			NumLCAs:     res.Stats.NumLCAs,
			ElapsedMS:   float64(res.Stats.Elapsed.Microseconds()) / 1000.0,
			Cached:      cached,
			Offset:      req.Offset,
			PerDocument: res.PerDocument,
		}
		if res.NextOffset >= 0 {
			resp.Next = strconv.Itoa(res.NextOffset)
		}
		for _, f := range res.Fragments {
			out := Fragment{
				Document:  f.Document,
				Root:      f.Root,
				RootLabel: f.RootLabel,
				IsSLCA:    f.IsSLCA,
				Score:     f.Score,
				XML:       f.XML(),
				Nodes:     f.Len(),
			}
			if withSnippets {
				out.Snippet = f.Snippet()
			}
			resp.Fragments = append(resp.Fragments, out)
		}
		writeJSON(w, logger, resp)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, logger *log.Logger, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && logger != nil {
		logger.Printf("httpapi: encode: %v", err)
	}
}
