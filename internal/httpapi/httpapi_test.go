package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xks"
	"xks/internal/paperdata"
	"xks/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(
		service.SingleDoc{Name: "publications.xml", Engine: xks.FromTree(paperdata.Publications())},
		service.Config{CacheSize: 64},
	)
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)
	return srv
}

func corpusServer(t *testing.T) (*httptest.Server, *xks.Corpus) {
	t.Helper()
	c := xks.NewCorpus()
	c.Add("publications", xks.FromTree(paperdata.Publications()))
	c.Add("team", xks.FromTree(paperdata.Team()))
	svc := service.New(c, service.Config{CacheSize: 64})
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)
	return srv, c
}

func getJSON(t *testing.T, url string) (int, *Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out
}

func decodeInto(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestSearchBasic(t *testing.T) {
	srv := testServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=liu+keyword")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.NumLCAs != 2 || len(out.Fragments) != 2 {
		t.Fatalf("response = %+v", out)
	}
	if out.Fragments[0].Root != "0.2.0" || !out.Fragments[1].IsSLCA {
		t.Errorf("fragments = %+v", out.Fragments)
	}
	if out.Fragments[0].Document != "publications.xml" {
		t.Errorf("document = %q", out.Fragments[0].Document)
	}
	if !strings.Contains(out.Fragments[0].XML, "<article>") {
		t.Errorf("xml missing: %q", out.Fragments[0].XML)
	}
	if len(out.Keywords) != 2 || out.ElapsedMS < 0 {
		t.Errorf("stats = %+v", out)
	}
	if out.Cached {
		t.Error("first request should not be cached")
	}
}

func TestSearchRepeatIsCacheHit(t *testing.T) {
	srv := testServer(t)
	_, first := getJSON(t, srv.URL+"/search?q=liu+keyword")
	if first.Cached {
		t.Fatal("cold request marked cached")
	}
	_, second := getJSON(t, srv.URL+"/search?q=liu+keyword")
	if !second.Cached {
		t.Fatal("repeated request should be a cache hit")
	}
	if len(second.Fragments) != len(first.Fragments) {
		t.Errorf("cached fragments = %d, want %d", len(second.Fragments), len(first.Fragments))
	}
	var stats StatsResponse
	if code := decodeInto(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Server.CacheHits != 1 || stats.Server.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", stats.Server.CacheHits, stats.Server.CacheMisses)
	}
}

func TestSearchOptions(t *testing.T) {
	srv := testServer(t)
	// SLCA-only restricts to one fragment.
	_, slca := getJSON(t, srv.URL+"/search?q=liu+keyword&slca=1")
	if len(slca.Fragments) != 1 {
		t.Errorf("slca fragments = %d", len(slca.Fragments))
	}
	// Ranked results carry scores.
	_, ranked := getJSON(t, srv.URL+"/search?q=liu+keyword&rank=1")
	if ranked.Fragments[0].Score <= 0 {
		t.Errorf("ranked score = %v", ranked.Fragments[0].Score)
	}
	// Limit.
	_, limited := getJSON(t, srv.URL+"/search?q=liu+keyword&limit=1")
	if len(limited.Fragments) != 1 {
		t.Errorf("limited fragments = %d", len(limited.Fragments))
	}
	// Snippets on demand.
	_, snip := getJSON(t, srv.URL+"/search?q=liu+keyword&snippets=1")
	if !strings.Contains(snip.Fragments[0].Snippet, "[") {
		t.Errorf("snippet = %q", snip.Fragments[0].Snippet)
	}
	// MaxMatch algorithm selector.
	code, _ := getJSON(t, srv.URL+"/search?q=liu+keyword&algo=maxmatch")
	if code != http.StatusOK {
		t.Errorf("maxmatch status = %d", code)
	}
}

func TestSearchErrors(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		"/search",                      // missing q
		"/search?q=the+of",             // unsearchable query
		"/search?q=liu&algo=bogus",     // unknown algorithm
		"/search?q=liu&limit=notanint", // bad limit
		"/search?q=liu&limit=-3",       // negative limit
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestSearchUnknownDocumentIs404(t *testing.T) {
	srv, _ := corpusServer(t)
	resp, err := http.Get(srv.URL + "/search?q=liu&doc=absent.xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSearchDocumentFilter(t *testing.T) {
	srv, _ := corpusServer(t)
	// Corpus-wide: "name" matches both documents.
	_, all := getJSON(t, srv.URL+"/search?q=name")
	if all.PerDocument["publications"] == 0 || all.PerDocument["team"] == 0 {
		t.Fatalf("perDocument = %v", all.PerDocument)
	}
	// Filtered to one document.
	_, team := getJSON(t, srv.URL+"/search?q=name&doc=team")
	if len(team.Fragments) == 0 || len(team.Fragments) >= len(all.Fragments) {
		t.Errorf("filtered fragments = %d of %d", len(team.Fragments), len(all.Fragments))
	}
	for _, f := range team.Fragments {
		if f.Document != "team" {
			t.Errorf("fragment from %q", f.Document)
		}
	}
}

func TestDocumentsEndpoint(t *testing.T) {
	srv, _ := corpusServer(t)
	var out DocumentsResponse
	if code := decodeInto(t, srv.URL+"/documents", &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(out.Documents) != 2 {
		t.Fatalf("documents = %+v", out.Documents)
	}
	if out.Documents[0].Name != "publications" || out.Documents[1].Name != "team" {
		t.Errorf("names/order = %+v", out.Documents)
	}
	for _, d := range out.Documents {
		if d.Words == 0 || d.Nodes == 0 {
			t.Errorf("document %s missing index sizes: %+v", d.Name, d)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, c := corpusServer(t)
	getJSON(t, srv.URL+"/search?q=name")
	getJSON(t, srv.URL+"/search?q=name") // cache hit
	resp, err := http.Get(srv.URL + "/search?q=the+of")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // error request

	var out StatsResponse
	if code := decodeInto(t, srv.URL+"/stats", &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Documents != 2 {
		t.Errorf("documents = %d", out.Documents)
	}
	if out.Generation != c.Generation() {
		t.Errorf("generation = %d, want %d", out.Generation, c.Generation())
	}
	if out.CacheEntries != 1 {
		t.Errorf("cacheEntries = %d, want 1", out.CacheEntries)
	}
	s := out.Server
	if s.Requests != 3 || s.Errors != 1 || s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("server stats = %+v", s)
	}
	if s.CacheHitRate <= 0.3 || s.CacheHitRate >= 0.4 {
		t.Errorf("hit rate = %v, want 1/3", s.CacheHitRate)
	}
	if s.P50LatencyMS < 0 || s.P99LatencyMS < s.P50LatencyMS {
		t.Errorf("latency quantiles = %+v", s)
	}
}

func TestAppendInvalidatesOverHTTP(t *testing.T) {
	engine, err := xks.LoadString(`<bib><paper><title>xml search</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.SingleDoc{Name: "bib", Engine: engine}, service.Config{CacheSize: 8})
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)

	_, cold := getJSON(t, srv.URL+"/search?q=search")
	_, warm := getJSON(t, srv.URL+"/search?q=search")
	if cold.Cached || !warm.Cached {
		t.Fatalf("cold/warm cached = %t/%t", cold.Cached, warm.Cached)
	}
	if err := engine.AppendXML("0", `<paper><title>fresh search result</title></paper>`); err != nil {
		t.Fatal(err)
	}
	_, after := getJSON(t, srv.URL+"/search?q=search")
	if after.Cached {
		t.Error("append should have invalidated the cached entry")
	}
	if len(after.Fragments) <= len(warm.Fragments) {
		t.Errorf("fragments after append = %d, want > %d", len(after.Fragments), len(warm.Fragments))
	}
}

func TestSearchNoMatchIsEmptyOK(t *testing.T) {
	srv := testServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=zebra+liu")
	if code != http.StatusOK || len(out.Fragments) != 0 {
		t.Errorf("no-match response: %d %+v", code, out)
	}
}

func TestPredicateQueryOverHTTP(t *testing.T) {
	srv := testServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=title:skyline+wong")
	if code != http.StatusOK || len(out.Fragments) != 1 {
		t.Fatalf("predicate query: %d %+v", code, out)
	}
}
