package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xks"
	"xks/internal/paperdata"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(xks.FromTree(paperdata.Publications()), nil))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string) (int, *Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestSearchBasic(t *testing.T) {
	srv := testServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=liu+keyword")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.NumLCAs != 2 || len(out.Fragments) != 2 {
		t.Fatalf("response = %+v", out)
	}
	if out.Fragments[0].Root != "0.2.0" || !out.Fragments[1].IsSLCA {
		t.Errorf("fragments = %+v", out.Fragments)
	}
	if !strings.Contains(out.Fragments[0].XML, "<article>") {
		t.Errorf("xml missing: %q", out.Fragments[0].XML)
	}
	if len(out.Keywords) != 2 || out.ElapsedMS < 0 {
		t.Errorf("stats = %+v", out)
	}
}

func TestSearchOptions(t *testing.T) {
	srv := testServer(t)
	// SLCA-only restricts to one fragment.
	_, slca := getJSON(t, srv.URL+"/search?q=liu+keyword&slca=1")
	if len(slca.Fragments) != 1 {
		t.Errorf("slca fragments = %d", len(slca.Fragments))
	}
	// Ranked results carry scores.
	_, ranked := getJSON(t, srv.URL+"/search?q=liu+keyword&rank=1")
	if ranked.Fragments[0].Score <= 0 {
		t.Errorf("ranked score = %v", ranked.Fragments[0].Score)
	}
	// Limit.
	_, limited := getJSON(t, srv.URL+"/search?q=liu+keyword&limit=1")
	if len(limited.Fragments) != 1 {
		t.Errorf("limited fragments = %d", len(limited.Fragments))
	}
	// Snippets on demand.
	_, snip := getJSON(t, srv.URL+"/search?q=liu+keyword&snippets=1")
	if !strings.Contains(snip.Fragments[0].Snippet, "[") {
		t.Errorf("snippet = %q", snip.Fragments[0].Snippet)
	}
	// MaxMatch algorithm selector.
	code, _ := getJSON(t, srv.URL+"/search?q=liu+keyword&algo=maxmatch")
	if code != http.StatusOK {
		t.Errorf("maxmatch status = %d", code)
	}
}

func TestSearchErrors(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		"/search",                      // missing q
		"/search?q=the+of",             // unsearchable query
		"/search?q=liu&algo=bogus",     // unknown algorithm
		"/search?q=liu&limit=notanint", // bad limit
		"/search?q=liu&limit=-3",       // negative limit
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestSearchNoMatchIsEmptyOK(t *testing.T) {
	srv := testServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=zebra+liu")
	if code != http.StatusOK || len(out.Fragments) != 0 {
		t.Errorf("no-match response: %d %+v", code, out)
	}
}

func TestPredicateQueryOverHTTP(t *testing.T) {
	srv := testServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=title:skyline+wong")
	if code != http.StatusOK || len(out.Fragments) != 1 {
		t.Fatalf("predicate query: %d %+v", code, out)
	}
}
