package httpapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xks"
	"xks/internal/paperdata"
	"xks/internal/service"
	"xks/internal/trace"
)

// --- /metrics exposition format ---

var (
	helpLine = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	// sampleLine matches `name{labels} value` and `name value`; labels and
	// the capture groups keep the test's parser small, not fully general.
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)
)

// scrape fetches /metrics and parses it into name{labels} → value,
// validating every line against the text exposition grammar.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	samples := map[string]float64{}
	typed := map[string]string{}
	var lastFamily string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !helpLine.MatchString(line) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("duplicate TYPE for family %s", m[1])
			}
			typed[m[1]] = m[2]
			lastFamily = m[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[family] == "" {
			t.Fatalf("sample %q precedes its TYPE line", line)
		}
		if family != lastFamily {
			t.Fatalf("sample %q outside its family block (last TYPE %s)", line, lastFamily)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		key := name + m[2]
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"xks_requests_total", "xks_request_errors_total",
		"xks_cache_hits_total", "xks_cache_misses_total",
		"xks_collapsed_requests_total", "xks_streamed_requests_total",
		"xks_truncated_results_total",
		"xks_request_duration_seconds", "xks_stage_duration_seconds",
		"xks_cache_entries", "xks_corpus_documents", "xks_corpus_generation",
	} {
		if _, ok := typed[fam]; !ok {
			t.Fatalf("family %s missing from exposition", fam)
		}
	}
	return samples
}

// checkHistogram asserts the Prometheus histogram invariants for one
// series: cumulative non-decreasing buckets ending at +Inf == _count.
func checkHistogram(t *testing.T, samples map[string]float64, name, labels string) {
	t.Helper()
	sep := ""
	if labels != "" {
		sep = ","
	}
	prev := -1.0
	var inf float64
	n := 0
	for key, v := range samples {
		if !strings.HasPrefix(key, name+"_bucket{"+labels+sep+"le=") &&
			!(labels == "" && strings.HasPrefix(key, name+"_bucket{le=")) {
			continue
		}
		n++
		if strings.Contains(key, `le="+Inf"`) {
			inf = v
		}
	}
	if n == 0 {
		t.Fatalf("no buckets found for %s{%s}", name, labels)
	}
	// Re-walk in bound order to check monotonicity: extract the le values.
	var bounds []float64
	for key := range samples {
		if !strings.HasPrefix(key, name+"_bucket") || !strings.Contains(key, labels) {
			continue
		}
		le := key[strings.Index(key, `le="`)+4:]
		le = le[:strings.Index(le, `"`)]
		if le == "+Inf" {
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", key, err)
		}
		bounds = append(bounds, b)
	}
	for i := range bounds {
		for j := i + 1; j < len(bounds); j++ {
			if bounds[j] < bounds[i] {
				bounds[i], bounds[j] = bounds[j], bounds[i]
			}
		}
	}
	for _, b := range bounds {
		le := strconv.FormatFloat(b, 'g', -1, 64)
		var key string
		if labels == "" {
			key = fmt.Sprintf(`%s_bucket{le="%s"}`, name, le)
		} else {
			key = fmt.Sprintf(`%s_bucket{%s,le="%s"}`, name, labels, le)
		}
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s not cumulative: %v < %v", key, v, prev)
		}
		prev = v
	}
	if inf < prev {
		t.Fatalf("+Inf bucket of %s{%s} below last bound: %v < %v", name, labels, inf, prev)
	}
	countKey := name + "_count"
	sumKey := name + "_sum"
	if labels != "" {
		countKey += "{" + labels + "}"
		sumKey += "{" + labels + "}"
	}
	count, ok := samples[countKey]
	if !ok {
		t.Fatalf("missing %s", countKey)
	}
	if count != inf {
		t.Fatalf("%s = %v, +Inf bucket = %v; must match", countKey, count, inf)
	}
	if sum, ok := samples[sumKey]; !ok || sum < 0 {
		t.Fatalf("missing or negative %s (%v)", sumKey, sum)
	}
}

func TestMetricsExposition(t *testing.T) {
	srv, _ := corpusServer(t)

	// Drive some traffic: two identical searches (miss then hit), one
	// streamed, one error.
	for _, q := range []string{
		"/search?q=liu+keyword", "/search?q=liu+keyword",
		"/search?q=liu+keyword&stream=1&limit=1", "/search?q=liu+keyword&doc=missing",
	} {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	first := scrape(t, srv.URL)
	if first["xks_requests_total"] < 4 {
		t.Fatalf("xks_requests_total = %v, want >= 4", first["xks_requests_total"])
	}
	if first["xks_request_errors_total"] < 1 {
		t.Fatalf("xks_request_errors_total = %v, want >= 1", first["xks_request_errors_total"])
	}
	if first["xks_cache_hits_total"] < 1 {
		t.Fatalf("xks_cache_hits_total = %v, want >= 1", first["xks_cache_hits_total"])
	}
	if first["xks_streamed_requests_total"] < 1 {
		t.Fatalf("xks_streamed_requests_total = %v, want >= 1", first["xks_streamed_requests_total"])
	}
	if first["xks_corpus_documents"] != 2 {
		t.Fatalf("xks_corpus_documents = %v, want 2", first["xks_corpus_documents"])
	}

	checkHistogram(t, first, "xks_request_duration_seconds", "")
	for _, stage := range []string{"plan", "candidates", "select", "materialize"} {
		checkHistogram(t, first, "xks_stage_duration_seconds", `stage="`+stage+`"`)
	}
	// Only real executions observe stages: 1 miss + 1 streamed = 2, the
	// cache hit must not inflate the count.
	if got := first[`xks_stage_duration_seconds_count{stage="candidates"}`]; got != 2 {
		t.Fatalf(`stage count = %v, want 2 (cache hits must not observe stages)`, got)
	}

	// Counters are monotonic across scrapes (more traffic in between).
	resp, err := http.Get(srv.URL + "/search?q=liu+keyword")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	second := scrape(t, srv.URL)
	for _, c := range []string{
		"xks_requests_total", "xks_request_errors_total",
		"xks_cache_hits_total", "xks_cache_misses_total",
		"xks_collapsed_requests_total", "xks_streamed_requests_total",
		"xks_truncated_results_total", "xks_request_duration_seconds_count",
	} {
		if second[c] < first[c] {
			t.Fatalf("counter %s went backwards: %v -> %v", c, first[c], second[c])
		}
	}
	if second["xks_requests_total"] != first["xks_requests_total"]+1 {
		t.Fatalf("xks_requests_total: %v -> %v, want +1", first["xks_requests_total"], second["xks_requests_total"])
	}
}

// --- explain=1 ---

// spanNames collects every span name of an explain tree.
func spanNames(sp *trace.SpanJSON, into map[string]*trace.SpanJSON) {
	if sp == nil {
		return
	}
	into[sp.Name] = sp
	for _, c := range sp.Children {
		spanNames(c, into)
	}
}

func TestSearchExplain(t *testing.T) {
	srv, _ := corpusServer(t)
	code, out := getJSON(t, srv.URL+"/search?q=liu+keyword&rank=1&limit=2&explain=1")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Explain == nil {
		t.Fatal("explain=1 returned no explain tree")
	}
	if out.Explain.Name != "search" {
		t.Fatalf("root span %q, want search", out.Explain.Name)
	}
	if out.Explain.DurationMS < 0 {
		t.Fatalf("root duration %v", out.Explain.DurationMS)
	}
	seen := map[string]*trace.SpanJSON{}
	spanNames(out.Explain, seen)
	for _, stage := range []string{"plan", "candidates", "select", "materialize"} {
		if seen[stage] == nil {
			t.Fatalf("stage span %q missing from explain tree; got %v", stage, keys(seen))
		}
	}
	// The serving layer annotates the root: cache disposition + generation.
	if seen["search"].Attrs["cache"] == nil {
		t.Fatal("root span missing cache attr")
	}
	// Candidate counts surface on the select span.
	sel := seen["select"]
	if sel.Attrs["candidates"] == nil || sel.Attrs["selected"] == nil {
		t.Fatalf("select span missing counters: %v", sel.Attrs)
	}
	// Per-document fan-out appears under candidates.
	if seen["doc:publications"] == nil || seen["doc:team"] == nil {
		t.Fatalf("per-document spans missing: %v", keys(seen))
	}

	// Without explain=1 the field is absent.
	_, plain := getJSON(t, srv.URL+"/search?q=liu+keyword&rank=1&limit=2")
	if plain.Explain != nil {
		t.Fatal("explain tree present without explain=1")
	}
}

func TestStreamExplainTrailer(t *testing.T) {
	srv, _ := corpusServer(t)
	resp, err := http.Get(srv.URL + "/search?q=liu+keyword&stream=1&limit=2&explain=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trailer StreamTrailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Trailer bool `json:"trailer"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Trailer {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !trailer.Trailer {
		t.Fatal("no trailer record")
	}
	if trailer.Explain == nil {
		t.Fatal("stream trailer missing explain tree")
	}
	seen := map[string]*trace.SpanJSON{}
	spanNames(trailer.Explain, seen)
	for _, stage := range []string{"plan", "candidates", "select", "materialize"} {
		if seen[stage] == nil {
			t.Fatalf("stage span %q missing from stream explain; got %v", stage, keys(seen))
		}
	}
}

func keys(m map[string]*trace.SpanJSON) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// --- request-ID middleware + access log ---

func TestRequestIDAndAccessLog(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	c := xks.NewCorpus()
	c.Add("publications", xks.FromTree(paperdata.Publications()))
	svc := service.New(c, service.Config{CacheSize: 16})
	srv := httptest.NewServer(NewHandler(svc, &Options{Logger: logger}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/search?q=liu+keyword")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	generated := resp.Header.Get("X-Request-Id")
	if generated == "" {
		t.Fatal("no X-Request-Id generated")
	}

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "caller-supplied-1" {
		t.Fatalf("caller request ID not echoed: %q", got)
	}

	logs := buf.String()
	if !strings.Contains(logs, generated) {
		t.Fatalf("access log missing generated request ID %s:\n%s", generated, logs)
	}
	if !strings.Contains(logs, "caller-supplied-1") {
		t.Fatalf("access log missing caller request ID:\n%s", logs)
	}
	if !strings.Contains(logs, `"path":"/search"`) || !strings.Contains(logs, `"status":200`) {
		t.Fatalf("access log missing fields:\n%s", logs)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	c := xks.NewCorpus()
	c.Add("publications", xks.FromTree(paperdata.Publications()))
	svc := service.New(c, service.Config{})
	// A 1ns threshold makes every query slow, so the log must fire.
	srv := httptest.NewServer(NewHandler(svc, &Options{Logger: logger, SlowQuery: 1}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/search?q=liu+keyword")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	logs := buf.String()
	if !strings.Contains(logs, "slow query") {
		t.Fatalf("no slow-query line:\n%s", logs)
	}
	// The slow log carries the full explain tree, stage names included.
	for _, stage := range []string{"plan", "candidates", "select", "materialize"} {
		if !strings.Contains(logs, stage) {
			t.Fatalf("slow-query explain missing stage %q:\n%s", stage, logs)
		}
	}
}
