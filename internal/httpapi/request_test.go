package httpapi

// Tests for the Request-era API surface: typed error mapping (errors.Is on
// the sentinels behind the handler), pagination cursors, and deadline
// behavior (504).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"xks"
	"xks/internal/service"
)

// TestStatusMapping pins the error → status translation the handler relies
// on, via errors.Is against the exported sentinels.
func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrapped: %w", xks.ErrUnknownDocument), http.StatusNotFound},
		{fmt.Errorf("wrapped: %w", xks.ErrEmptyQuery), http.StatusBadRequest},
		{fmt.Errorf("wrapped: %w", xks.ErrTooManyTerms), http.StatusBadRequest},
		{fmt.Errorf("deep: %w", fmt.Errorf("wrap: %w", context.DeadlineExceeded)), http.StatusGatewayTimeout},
		{errors.New("anything else"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := status(c.err); got != c.want {
			t.Errorf("status(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestSentinelErrorsOverHTTP drives the sentinel errors end to end: the
// engine's typed failures come back as the mapped status codes, not as
// opaque 400s by accident of string formatting.
func TestSentinelErrorsOverHTTP(t *testing.T) {
	srv, _ := corpusServer(t)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// ErrEmptyQuery: all stop words.
	if code := get("/search?q=the+of+and"); code != http.StatusBadRequest {
		t.Errorf("stop-word query: status = %d, want 400", code)
	}
	// ErrTooManyTerms: 65 distinct keywords.
	long := "/search?q="
	for i := 0; i < 65; i++ {
		if i > 0 {
			long += "+"
		}
		long += "kw" + strconv.Itoa(i)
	}
	if code := get(long); code != http.StatusBadRequest {
		t.Errorf("65-term query: status = %d, want 400", code)
	}
	// ErrUnknownDocument → 404 (also covered by TestSearchUnknownDocumentIs404).
	if code := get("/search?q=liu&doc=nope"); code != http.StatusNotFound {
		t.Errorf("unknown doc: status = %d, want 404", code)
	}
	// Bad pagination/timeout parameters are 400s — including windows past
	// the MaxPageParam sanity cap.
	for _, path := range []string{"/search?q=liu&offset=-1", "/search?q=liu&offset=x", "/search?q=liu&offset=2000000000", "/search?q=liu&limit=2000000000", "/search?q=liu&timeout=bogus", "/search?q=liu&timeout=-1s"} {
		if code := get(path); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, code)
		}
	}
}

// TestPaginationCursor walks a multi-fragment result via the "next" cursor
// and asserts the pages tile the unpaged result.
func TestPaginationCursor(t *testing.T) {
	srv, _ := corpusServer(t)

	_, full := getJSON(t, srv.URL+"/search?q=name")
	if len(full.Fragments) < 2 {
		t.Fatalf("need several fragments to page, got %d", len(full.Fragments))
	}
	if full.Next != "" {
		t.Fatalf("unpaged response carries next=%q", full.Next)
	}

	var pages []Fragment
	cursor := "0"
	for {
		code, page := getJSON(t, srv.URL+"/search?q=name&limit=1&offset="+cursor)
		if code != http.StatusOK {
			t.Fatalf("page at offset %s: status %d", cursor, code)
		}
		if page.Offset != atoi(t, cursor) {
			t.Fatalf("page echoes offset %d, requested %s", page.Offset, cursor)
		}
		pages = append(pages, page.Fragments...)
		if page.Next == "" {
			break
		}
		cursor = page.Next
	}
	if len(pages) != len(full.Fragments) {
		t.Fatalf("cursor walk yielded %d fragments, full response %d", len(pages), len(full.Fragments))
	}
	for i := range pages {
		if pages[i].Root != full.Fragments[i].Root || pages[i].Document != full.Fragments[i].Document {
			t.Fatalf("fragment %d: paged %s/%s vs full %s/%s", i,
				pages[i].Document, pages[i].Root, full.Fragments[i].Document, full.Fragments[i].Root)
		}
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// stuckSearcher parks until its context ends — a stand-in for a pipeline
// slower than the request's deadline.
type stuckSearcher struct{}

func (stuckSearcher) Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (stuckSearcher) Documents() []xks.DocumentInfo { return nil }
func (stuckSearcher) Generation() uint64            { return 0 }

// TestDeadlineExceededIs504: a search that outlives its timeout= deadline
// comes back as 504 Gateway Timeout.
func TestDeadlineExceededIs504(t *testing.T) {
	svc := service.New(stuckSearcher{}, service.Config{})
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/search?q=liu&timeout=10ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// TestTimeoutParamCapped: timeout= beyond MaxTimeout is clamped, not
// honored (the parse keeps the request well-formed).
func TestTimeoutParamCapped(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/search?q=x&timeout=10h", nil)
	req, _, err := parseRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	if req.Timeout != MaxTimeout {
		t.Fatalf("Timeout = %v, want clamped to %v", req.Timeout, MaxTimeout)
	}
}
