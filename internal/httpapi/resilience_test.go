package httpapi

// Resilience tests at the HTTP boundary: the admission front door sheds
// overload fast with 429 + Retry-After while admitted requests stay
// bounded, a draining server answers 503 + Connection: close (and flips
// /healthz) while in-flight requests finish, and a recovered pipeline
// panic maps to an opaque 500 with the stack in the structured log — never
// in the response body. The fault harness (internal/fault) is installed as
// request-context middleware, the same way a chaos proxy would.

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xks"
	"xks/internal/admission"
	"xks/internal/fault"
	"xks/internal/paperdata"
	"xks/internal/service"
)

// syncBuffer is a concurrency-safe bytes.Buffer for capturing slog output
// across handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// resilienceServer builds a corpus-backed server with the given options,
// installing plan on every request context when non-nil.
func resilienceServer(t *testing.T, opts *Options, plan *fault.Plan) *httptest.Server {
	t.Helper()
	c := xks.NewCorpus()
	c.Add("publications", xks.FromTree(paperdata.Publications()))
	c.Add("team", xks.FromTree(paperdata.Team()))
	svc := service.New(c, service.Config{CacheSize: 64})
	h := NewHandler(svc, opts)
	if plan != nil {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(w, r.WithContext(fault.NewContext(r.Context(), plan)))
		})
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestOverloadShedsFastWithRetryAfter pins the overload contract: with one
// execution slot held (an injected in-slot delay) and the queue disabled,
// every further search sheds with 429 + Retry-After — and shedding is
// non-blocking, so rejection latency stays under the 10ms bound (asserted
// on the median to tolerate CI scheduler blips; no probe may block for
// real). Cache misses are forced by varying the query so probes never
// bypass admission... they don't: admission gates before the cache, so an
// identical query sheds too — asserted last.
func TestOverloadShedsFastWithRetryAfter(t *testing.T) {
	adm := admission.New(admission.Config{MaxInFlight: 1, MaxQueue: -1})
	// The congestor holds its admitted slot inside the handler until its
	// own 400ms timeout expires.
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointAdmission,
		Count:  1,
		Action: fault.Action{UntilDeadline: true},
	})
	srv := resilienceServer(t, &Options{Admission: adm}, plan)

	congested := make(chan struct{})
	go func() {
		defer close(congested)
		resp, _ := get(t, srv.URL+"/search?q=dynamic+skyline&timeout=400ms")
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("congestor status = %d, want 504 (deadline burned in-slot)", resp.StatusCode)
		}
	}()
	// Wait until the congestor holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("congestor never acquired the slot")
		}
		time.Sleep(time.Millisecond)
	}

	const probes = 20
	lat := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		resp, _ := get(t, srv.URL+"/search?q=xml+query")
		d := time.Since(start)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("probe %d: status = %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("probe %d: shed response carries no Retry-After", i)
		}
		lat = append(lat, d)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if med := lat[probes/2]; med >= 10*time.Millisecond {
		t.Errorf("median shed latency %v, want < 10ms", med)
	}
	if worst := lat[probes-1]; worst >= time.Second {
		t.Errorf("worst shed latency %v: the shed path blocked", worst)
	}
	<-congested

	if s := adm.Stats(); s.ShedFull != probes {
		t.Errorf("shedQueueFull = %d, want %d", s.ShedFull, probes)
	}
}

// TestOverloadAdmittedLatencyBounded pins the other half of the overload
// contract: requests that are admitted (queued behind two slots) all
// complete, and their p99 stays bounded by queue wait + execution — the
// front door degrades by rejecting, not by stretching admitted latency
// without limit.
func TestOverloadAdmittedLatencyBounded(t *testing.T) {
	adm := admission.New(admission.Config{MaxInFlight: 2, MaxQueue: 64})
	srv := resilienceServer(t, &Options{Admission: adm}, nil)

	const n = 24
	durs := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, _ := get(t, srv.URL+"/search?q=dynamic+skyline+query&rank=1&limit=2")
			durs[i] = time.Since(start)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("admitted request %d: status = %d, want 200", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	if p99 := durs[n-1]; p99 > 5*time.Second {
		t.Errorf("admitted p99 = %v, want bounded well under the queue-wait cap", p99)
	}
	if s := adm.Stats(); s.Admitted == 0 || s.InFlight != 0 {
		t.Errorf("stats = %+v, want every slot released", s)
	}
}

// TestDrainRejectsNewFinishesInFlight pins the xkserver SIGTERM sequence:
// Drain() makes new searches answer 503 + Connection: close and /healthz
// unhealthy, while a request already inside its slot runs to completion.
func TestDrainRejectsNewFinishesInFlight(t *testing.T) {
	adm := admission.New(admission.Config{MaxInFlight: 4})
	// The in-flight request holds its slot ~150ms across the drain flip.
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointAdmission,
		Count:  1,
		Action: fault.Action{Delay: 150 * time.Millisecond},
	})
	srv := resilienceServer(t, &Options{Admission: adm}, plan)

	type outcome struct {
		status int
		body   string
	}
	inflight := make(chan outcome, 1)
	go func() {
		resp, body := get(t, srv.URL+"/search?q=dynamic+skyline+query")
		inflight <- outcome{resp.StatusCode, body}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never acquired its slot")
		}
		time.Sleep(time.Millisecond)
	}

	adm.Drain()

	resp, body := get(t, srv.URL+"/search?q=xml+keyword")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain search status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "draining") {
		t.Errorf("post-drain body = %q, want the draining notice", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("post-drain search carries no Retry-After")
	}
	if !resp.Close && !strings.Contains(strings.ToLower(resp.Header.Get("Connection")), "close") {
		t.Error("post-drain search did not signal Connection: close")
	}

	hresp, hbody := get(t, srv.URL+"/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(hbody, "draining") {
		t.Errorf("draining /healthz = %d %q, want 503 draining", hresp.StatusCode, hbody)
	}

	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200 across the drain flip", got.status)
	}
	if !strings.Contains(got.body, "fragments") {
		t.Errorf("in-flight response lost its payload: %q", got.body)
	}
}

// TestPanicOverHTTPIs500Opaque pins the panic policy at the boundary: an
// injected worker panic answers 500 with an opaque body — the panic value
// and stack appear in the structured log, never in the response — and the
// recovered-panic counter rides the Prometheus exposition.
func TestPanicOverHTTPIs500Opaque(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCandidates,
		Count:  1,
		Action: fault.Action{PanicMsg: "chaos: secret internals"},
	})
	srv := resilienceServer(t, &Options{Logger: logger}, plan)

	resp, body := get(t, srv.URL+"/search?q=dynamic+skyline+query")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if strings.TrimSpace(body) != "internal error" {
		t.Errorf("body = %q, want the opaque internal-error line", body)
	}
	if strings.Contains(body, "secret internals") || strings.Contains(body, "goroutine") {
		t.Errorf("response leaked panic details: %q", body)
	}

	logged := logBuf.String()
	if !strings.Contains(logged, "panic recovered") {
		t.Errorf("log has no panic-recovered line:\n%s", logged)
	}
	if !strings.Contains(logged, "secret internals") || !strings.Contains(logged, "goroutine") {
		t.Errorf("log is missing the panic value or stack:\n%s", logged)
	}

	_, metrics := get(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, "xks_panic_recovered_total 1") {
		t.Errorf("metrics missing the recovered-panic count:\n%s", grepMetrics(metrics, "panic"))
	}

	// The server still serves: the panic cost one request, not the process.
	if resp, _ := get(t, srv.URL+"/search?q=dynamic+skyline+query"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic search status = %d, want 200", resp.StatusCode)
	}
}

// TestMetricsExposesResilienceFamilies pins the /metrics families the CI
// stream-smoke job greps for: the admission counters and gauges plus the
// panic and partial-resume counters, present even when all are zero.
func TestMetricsExposesResilienceFamilies(t *testing.T) {
	adm := admission.New(admission.Config{MaxInFlight: 8})
	srv := resilienceServer(t, &Options{Admission: adm}, nil)
	if resp, _ := get(t, srv.URL+"/search?q=dynamic+skyline"); resp.StatusCode != http.StatusOK {
		t.Fatalf("search failed: %d", resp.StatusCode)
	}

	_, body := get(t, srv.URL+"/metrics")
	for _, family := range []string{
		"xks_admission_admitted_total",
		"xks_admission_queued_total",
		`xks_admission_shed_total{reason="queue-full"}`,
		`xks_admission_shed_total{reason="queue-timeout"}`,
		`xks_admission_shed_total{reason="draining"}`,
		"xks_admission_inflight",
		"xks_admission_queue_depth",
		"xks_admission_draining",
		"xks_panic_recovered_total",
		"xks_partial_resumes_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(body, "xks_admission_admitted_total 1") {
		t.Errorf("admitted count not exported:\n%s", grepMetrics(body, "admission"))
	}
}

// grepMetrics filters an exposition body to lines containing substr, for
// readable failure output.
func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
