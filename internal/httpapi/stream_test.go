package httpapi

// Tests for the streaming results API over HTTP: NDJSON stream=1 output,
// opaque cursor pagination (410 on staleness, 400 on mismatch), and
// best-effort deadline truncation (200 + truncated where strict 504s).

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"xks"
	"xks/internal/datagen"
	"xks/internal/service"
)

// readNDJSON collects a stream=1 response: the fragment lines and the
// trailer record (asserted to be last, exactly once).
func readNDJSON(t *testing.T, resp *http.Response) ([]Fragment, StreamTrailer) {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var (
		frags   []Fragment
		trailer StreamTrailer
		sawTr   bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if sawTr {
			t.Fatalf("record after the trailer: %s", line)
		}
		if strings.Contains(string(line), `"trailer":true`) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer %s: %v", line, err)
			}
			sawTr = true
			continue
		}
		var f Fragment
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("fragment line %s: %v", line, err)
		}
		frags = append(frags, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTr {
		t.Fatal("stream ended without a trailer record")
	}
	return frags, trailer
}

// TestStreamNDJSON pins the stream=1 contract: one fragment object per
// line, identical content to the buffered response, and a final trailer
// record carrying the stats.
func TestStreamNDJSON(t *testing.T) {
	srv, _ := corpusServer(t)

	_, buffered := getJSON(t, srv.URL+"/search?q=name")
	resp, err := http.Get(srv.URL + "/search?q=name&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	frags, trailer := readNDJSON(t, resp)
	if len(frags) == 0 || len(frags) != len(buffered.Fragments) {
		t.Fatalf("streamed %d fragments, buffered %d", len(frags), len(buffered.Fragments))
	}
	for i := range frags {
		if frags[i].Root != buffered.Fragments[i].Root || frags[i].Document != buffered.Fragments[i].Document {
			t.Fatalf("fragment %d: %s/%s vs %s/%s", i,
				frags[i].Document, frags[i].Root, buffered.Fragments[i].Document, buffered.Fragments[i].Root)
		}
	}
	if trailer.NumLCAs != buffered.NumLCAs || trailer.Error != "" || trailer.Truncated {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.Cursor != "" {
		t.Fatalf("exhausted stream issued cursor %q", trailer.Cursor)
	}

	// An empty result set still streams: zero fragment lines, one trailer.
	resp, err = http.Get(srv.URL + "/search?q=zebra&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	frags, _ = readNDJSON(t, resp)
	if len(frags) != 0 {
		t.Fatalf("no-match stream yielded %d fragments", len(frags))
	}

	// Pre-stream failures keep their status codes: nothing was written
	// yet, so a 400 is still possible.
	resp, err = http.Get(srv.URL + "/search?q=the+of&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unsearchable stream: status = %d, want 400", resp.StatusCode)
	}
}

// TestStreamCursorWalk scrolls a limited stream page by page via the
// trailer cursor and asserts the pages tile the buffered result.
func TestStreamCursorWalk(t *testing.T) {
	srv, _ := corpusServer(t)
	_, full := getJSON(t, srv.URL+"/search?q=name")
	if len(full.Fragments) < 2 {
		t.Fatalf("need several fragments, got %d", len(full.Fragments))
	}

	var pages []Fragment
	cursor := ""
	for {
		u := srv.URL + "/search?q=name&limit=1&stream=1"
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page at cursor %q: status %d", cursor, resp.StatusCode)
		}
		frags, trailer := readNDJSON(t, resp)
		pages = append(pages, frags...)
		if trailer.Cursor == "" {
			break
		}
		cursor = trailer.Cursor
	}
	if len(pages) != len(full.Fragments) {
		t.Fatalf("cursor walk yielded %d fragments, full %d", len(pages), len(full.Fragments))
	}
	for i := range pages {
		if pages[i].Root != full.Fragments[i].Root {
			t.Fatalf("fragment %d: %s vs %s", i, pages[i].Root, full.Fragments[i].Root)
		}
	}
}

// TestCursorSurvivesAppendStaleOnRebuild covers the mutation contract end
// to end: scroll page 1, tail-append to the document, and the page-2
// cursor still works — it re-pins the snapshot it was issued at and serves
// the pre-append page 2. Only a non-tail append (a renumbering rebuild)
// kills it with 410 Gone and a restart hint.
func TestCursorSurvivesAppendStaleOnRebuild(t *testing.T) {
	engine, err := xks.LoadString(`<bib><paper><title>xml search</title></paper><paper><title>search trees</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.SingleDoc{Name: "bib", Engine: engine}, service.Config{CacheSize: 8})
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)

	code, page1 := getJSON(t, srv.URL+"/search?q=search&limit=1")
	if code != http.StatusOK || page1.Cursor == "" {
		t.Fatalf("page 1: status %d cursor %q", code, page1.Cursor)
	}
	// The cursor works before the append...
	code, before := getJSON(t, srv.URL+"/search?q=search&limit=1&cursor="+url.QueryEscape(page1.Cursor))
	if code != http.StatusOK || len(before.Fragments) != 1 {
		t.Fatalf("pre-append page 2: status %d, %d fragments", code, len(before.Fragments))
	}
	if err := engine.AppendXML("0", `<paper><title>fresh search result</title></paper>`); err != nil {
		t.Fatal(err)
	}
	// ...and still works after a tail append: the delta index kept the old
	// node IDs, so resumption re-pins the issuing snapshot and the page
	// boundary cannot shift.
	code, after := getJSON(t, srv.URL+"/search?q=search&limit=1&cursor="+url.QueryEscape(page1.Cursor))
	if code != http.StatusOK {
		t.Fatalf("post-append cursor: status = %d, want 200", code)
	}
	if len(after.Fragments) != 1 || after.Fragments[0].Root != before.Fragments[0].Root {
		t.Fatalf("pinned page 2 = %+v, want the pre-append page 2 (%s)", after.Fragments, before.Fragments[0].Root)
	}
	// A non-tail append renumbers every node: the pinned snapshot is gone
	// and the cursor is 410 Gone, with the restart hint in the body.
	if err := engine.AppendXML("0.0", `<note>search aside</note>`); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/search?q=search&limit=1&cursor=" + url.QueryEscape(page1.Cursor))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 512)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("post-rebuild cursor: status = %d, want 410", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "restart") {
		t.Errorf("410 body carries no restart hint: %q", body[:n])
	}
	// The streaming path maps it identically (the error precedes any
	// fragment, so the status is still available).
	resp, err = http.Get(srv.URL + "/search?q=search&limit=1&stream=1&cursor=" + url.QueryEscape(page1.Cursor))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("post-rebuild stream cursor: status = %d, want 410", resp.StatusCode)
	}
}

// TestCursorFingerprintMismatchIs400: the same cursor under a different
// query is a client error, not a silent mis-scroll; garbage tokens too.
func TestCursorFingerprintMismatchIs400(t *testing.T) {
	srv, _ := corpusServer(t)
	code, page1 := getJSON(t, srv.URL+"/search?q=name&limit=1")
	if code != http.StatusOK || page1.Cursor == "" {
		t.Fatalf("page 1: status %d cursor %q", code, page1.Cursor)
	}
	for _, path := range []string{
		"/search?q=liu&limit=1&cursor=" + url.QueryEscape(page1.Cursor),         // different query
		"/search?q=name&rank=1&limit=1&cursor=" + url.QueryEscape(page1.Cursor), // different order
		"/search?q=name&limit=1&cursor=garbage%21",                              // undecodable
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

// heavyServer serves a document big enough that its pipeline cannot beat a
// 1ns deadline (the merged keyword stream is thousands of events), making
// the strict-504 / best-effort-200 pair deterministic.
func heavyServer(t *testing.T) *httptest.Server {
	t.Helper()
	tree := datagen.DBLP(datagen.DBLPConfig{
		Seed:       42,
		NumRecords: 2000,
		Keywords:   []datagen.KeywordSpec{{Word: "alpha", Count: 4000}, {Word: "beta", Count: 4000}},
	})
	svc := service.New(service.SingleDoc{Name: "heavy", Engine: xks.FromTree(tree)}, service.Config{})
	srv := httptest.NewServer(NewHandler(svc, nil))
	t.Cleanup(srv.Close)
	return srv
}

// TestBestEffortBudgetIs200WhereStrict504s pins the acceptance contract
// over HTTP: the same under-deadline request that 504s by default returns
// 200 with "truncated":true under budget=best-effort — partial results for
// best-effort UIs instead of an error page.
func TestBestEffortBudgetIs200WhereStrict504s(t *testing.T) {
	srv := heavyServer(t)
	const q = "/search?q=alpha+beta&timeout=1ns"

	resp, err := http.Get(srv.URL + q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("strict deadline: status = %d, want 504", resp.StatusCode)
	}

	code, out := getJSON(t, srv.URL+q+"&budget=best-effort")
	if code != http.StatusOK {
		t.Fatalf("best-effort deadline: status = %d, want 200", code)
	}
	if !out.Truncated {
		t.Fatalf("best-effort deadline: truncated = false, response %+v", out)
	}

	// The streamed variant delivers the same truncation in its trailer.
	sresp, err := http.Get(srv.URL + q + "&budget=best-effort&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("best-effort stream: status = %d, want 200", sresp.StatusCode)
	}
	_, trailer := readNDJSON(t, sresp)
	if !trailer.Truncated || trailer.Error != "" {
		t.Fatalf("best-effort stream trailer = %+v, want truncated", trailer)
	}

	// A bogus budget value is a 400.
	resp, err = http.Get(srv.URL + "/search?q=alpha&budget=sometimes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad budget: status = %d, want 400", resp.StatusCode)
	}
}

// TestStreamedStatsCounter: streamed requests show up in /stats.
func TestStreamedStatsCounter(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/search?q=liu+keyword&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	readNDJSON(t, resp)
	var stats StatsResponse
	if code := decodeInto(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Server.Streamed != 1 {
		t.Errorf("streamed = %d, want 1", stats.Server.Streamed)
	}
}
