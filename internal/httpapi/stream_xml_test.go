package httpapi

// Tests for the streaming XML render path: the stream=1 fragment lines
// must decode identically to the buffered response even though their xml
// member is escaped on the fly (jsonStringEscaper) and rendered straight
// into the chunked body (Fragment.WriteXML) instead of being marshaled
// from a buffered string.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"xks"
	"xks/internal/analysis"
	"xks/internal/paperdata"
	"xks/internal/service"
	"xks/internal/store"
)

// TestStreamedXMLMatchesBuffered pins the streamed xml field byte-identical
// to the buffered Fragment.XML for both document sources: tree-backed
// (raw text values) and store-backed (multi-line skeleton rendering, the
// case the escaper earns its keep on).
func TestStreamedXMLMatchesBuffered(t *testing.T) {
	st := store.Shred(paperdata.Publications(), analysis.New())
	servers := map[string]*httptest.Server{"tree": testServer(t)}
	{
		svc := service.New(
			service.SingleDoc{Name: "publications.xml", Engine: xks.FromStore(st)},
			service.Config{CacheSize: 64},
		)
		srv := httptest.NewServer(NewHandler(svc, nil))
		t.Cleanup(srv.Close)
		servers["store"] = srv
	}
	for name, srv := range servers {
		_, buffered := getJSON(t, srv.URL+"/search?q=xml+keyword&snippets=1")
		if buffered == nil || len(buffered.Fragments) == 0 {
			t.Fatalf("%s: buffered search returned no fragments", name)
		}
		resp, err := http.Get(srv.URL + "/search?q=xml+keyword&snippets=1&stream=1")
		if err != nil {
			t.Fatal(err)
		}
		frags, _ := readNDJSON(t, resp)
		if len(frags) != len(buffered.Fragments) {
			t.Fatalf("%s: streamed %d fragments, buffered %d", name, len(frags), len(buffered.Fragments))
		}
		sawMultiline := false
		for i := range frags {
			want, got := buffered.Fragments[i], frags[i]
			if got.XML != want.XML {
				t.Fatalf("%s fragment %d: streamed xml differs:\n%q\n----\n%q", name, i, got.XML, want.XML)
			}
			if got.Snippet != want.Snippet || got.Nodes != want.Nodes || got.Score != want.Score {
				t.Fatalf("%s fragment %d: meta differs: %+v vs %+v", name, i, got, want)
			}
			if bytes.ContainsRune([]byte(got.XML), '\n') {
				sawMultiline = true
			}
		}
		if !sawMultiline {
			t.Fatalf("%s: no multi-line xml rendered; escaper untested", name)
		}
	}
}

// TestWriteFragmentLineWireShape pins a streamed line's bytes to decode
// into exactly the Fragment that ToFragment marshals — the two encoders
// are allowed to differ only in JSON escaping choices.
func TestWriteFragmentLineWireShape(t *testing.T) {
	e := xks.FromStore(store.Shred(paperdata.Publications(), analysis.New()))
	res, err := e.Search(t.Context(), xks.NewRequest("xml keyword", xks.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) == 0 {
		t.Fatal("no fragments")
	}
	for i := range res.Fragments {
		cf := xks.CorpusFragment{Document: "d.xml", Fragment: res.Fragments[i]}
		var line bytes.Buffer
		if err := writeFragmentLine(&line, cf, true); err != nil {
			t.Fatal(err)
		}
		raw := line.Bytes()
		if raw[len(raw)-1] != '\n' {
			t.Fatalf("fragment %d: line not newline-terminated", i)
		}
		var got Fragment
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("fragment %d: streamed line does not decode: %v\n%s", i, err, raw)
		}
		want := ToFragment(cf, true)
		if got != want {
			t.Fatalf("fragment %d: streamed line decodes to %+v, want %+v", i, got, want)
		}
	}
}

// TestJSONStringEscaper feeds the escaper adversarial byte sequences and
// checks the output is a valid JSON string body decoding back to the
// input — including chunk boundaries splitting multi-byte escapes' source
// runs.
func TestJSONStringEscaper(t *testing.T) {
	inputs := []string{
		"plain",
		`quote " backslash \ done`,
		"tab\tnewline\ncarriage\rbell\x07null\x00",
		"unicode: héllo — 漢字 ☂",
		"<script>&amp;</script>",
		"",
	}
	for _, in := range inputs {
		var buf bytes.Buffer
		esc := jsonStringEscaper{w: &buf}
		// Write in 3-byte chunks to exercise state across calls.
		for b := []byte(in); len(b) > 0; {
			n := min(3, len(b))
			if _, err := esc.Write(b[:n]); err != nil {
				t.Fatal(err)
			}
			b = b[n:]
		}
		quoted := `"` + buf.String() + `"`
		var out string
		if err := json.Unmarshal([]byte(quoted), &out); err != nil {
			t.Fatalf("input %q: escaped form %s invalid: %v", in, quoted, err)
		}
		if out != in {
			t.Fatalf("input %q round-tripped to %q via %s", in, out, quoted)
		}
	}
}
