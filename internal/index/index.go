// Package index builds the inverted keyword index used by getKeywordNodes:
// for each content word w, the pre-order-sorted list of keyword nodes whose
// content set Cv contains w (the paper's Di sets).
//
// Postings are stored as dense node IDs over a per-document node table
// (internal/nid) — 4 bytes per entry, integer pre-order comparison — and
// converted back to Dewey codes only at the compatibility accessors
// (Lookup, KeywordSets, Postings), which serve the reference/eager paths
// and tests. The index is immutable after Build and safe for concurrent
// readers.
package index

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/nid"
	"xks/internal/planner"
	"xks/internal/postings"
	"xks/internal/xmltree"
)

// Index maps content words to keyword-node posting lists over a node table.
type Index struct {
	analyzer *analysis.Analyzer
	tab      *nid.Table
	postings map[string][]nid.ID
	numNodes int

	// lazy holds block-compressed posting lists (the store's v3 load path)
	// that decode once, on first lookup. Exactly one of postings/lazy is
	// non-nil; every accessor routes through the lazy arm when set, so
	// opening a compressed store decodes nothing until a query asks.
	lazy    map[string]*lazyList
	decoded atomic.Int64 // lists decoded so far (observability + tests)

	// Planner statistics, computed lazily by Stats or installed by
	// SetStats on the store's load path. See stats.go.
	statsOnce sync.Once
	stats     planner.Stats
	statsSet  bool
}

// lazyList is one compressed posting list plus its once-decoded form.
type lazyList struct {
	list postings.List
	once sync.Once
	ids  []nid.ID
}

// decode materializes the list exactly once (concurrent lookups of the
// same term share the work) and bumps the index's decoded counter.
func (lp *lazyList) decode(counter *atomic.Int64) []nid.ID {
	lp.once.Do(func() {
		ids, err := lp.list.Decode()
		if err != nil {
			// Unreachable through the CRC-guarded store open path; degrade
			// to an empty list rather than panicking mid-query.
			ids = nil
		}
		lp.ids = ids
		counter.Add(1)
	})
	return lp.ids
}

// Build indexes every node of the tree. A node is a keyword node for w when
// w appears among the words of its label, attributes or text. The node
// table covers every tree node, with IDs equal to pre-order positions.
func Build(t *xmltree.Tree, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	ix := &Index{analyzer: a, postings: make(map[string][]nid.ID)}
	b := nid.NewBuilder(t.Size())
	t.Walk(func(n *xmltree.Node) bool {
		ix.numNodes++
		id := b.Add(n.Code)
		for _, w := range a.ContentSet(n.ContentPieces()...) {
			ix.postings[w] = append(ix.postings[w], id)
		}
		return true
	})
	ix.tab = b.Table()
	// Pre-order walk yields sorted postings already; keep the sort as a
	// defensive invariant for postings assembled by other builders.
	for _, list := range ix.postings {
		if !sortedIDs(list) {
			sortIDList(list)
		}
	}
	return ix
}

// FromPostings constructs an index directly from word → posting-list data.
// The caller's lists are copied, never sorted in place or retained, so a
// loaded index can not alias mutable caller data. The node table is the
// ancestor closure of the posting codes — exactly the nodes the pipeline
// can reach (every LCA and path node is a prefix of some keyword node).
func FromPostings(postings map[string][]dewey.Code, numNodes int, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	total := 0
	for _, list := range postings {
		total += len(list)
	}
	all := make([]dewey.Code, 0, total)
	for _, list := range postings {
		all = append(all, list...)
	}
	tab := nid.FromCodes(all)
	idPostings := make(map[string][]nid.ID, len(postings))
	for w, list := range postings {
		ids := make([]nid.ID, 0, len(list))
		for _, c := range list {
			if id, ok := tab.Find(c); ok {
				ids = append(ids, id)
			}
		}
		sortIDList(ids)
		idPostings[w] = dedupIDList(ids)
	}
	return &Index{analyzer: a, tab: tab, postings: idPostings, numNodes: numNodes}
}

// FromIDPostings constructs an index from already-resolved ID posting lists
// over an existing node table (the store's load path). Lists are sorted and
// deduplicated defensively; they are retained, not copied.
func FromIDPostings(tab *nid.Table, postings map[string][]nid.ID, numNodes int, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	for w, list := range postings {
		if !sortedIDs(list) {
			sortIDList(list)
		}
		postings[w] = dedupIDList(list)
	}
	return &Index{analyzer: a, tab: tab, postings: postings, numNodes: numNodes}
}

// FromSortedIDPostings constructs an index from posting lists the caller
// guarantees are already sorted and duplicate-free (the delta compactor's
// fold path). Unlike FromIDPostings there is no defensive pass: lists are
// retained exactly as given and never written, so they may alias posting
// lists of another live index that concurrent readers are using.
func FromSortedIDPostings(tab *nid.Table, postings map[string][]nid.ID, numNodes int, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	return &Index{analyzer: a, tab: tab, postings: postings, numNodes: numNodes}
}

// FromCompressed constructs an index over block-compressed posting lists
// without decoding any of them — the store's v3 load path. words[i] names
// lists[i]; each list decodes lazily on its first lookup and the decoded
// form is cached for the index's lifetime. The lists (and the table) may
// view mmap-ed memory; they must outlive the index.
func FromCompressed(tab *nid.Table, words []string, lists []postings.List, numNodes int, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	lazy := make(map[string]*lazyList, len(words))
	for i, w := range words {
		lazy[w] = &lazyList{list: lists[i]}
	}
	return &Index{analyzer: a, tab: tab, lazy: lazy, numNodes: numNodes}
}

// DecodedLists reports how many posting lists have been decoded so far —
// zero right after a compressed open, exactly the queried terms afterwards.
// Always zero for in-RAM indexes.
func (ix *Index) DecodedLists() int64 { return ix.decoded.Load() }

// LookupList returns the compressed posting list for the word when the
// index is compressed-backed; ok is false for in-RAM indexes and unknown
// words. Callers wanting a streaming merge build iterators from it (they
// satisfy lca.Merger's Source) instead of forcing a full decode.
func (ix *Index) LookupList(word string) (postings.List, bool) {
	lp := ix.lazy[word]
	if lp == nil {
		return postings.List{}, false
	}
	return lp.list, true
}

// eachList visits every posting list in decoded form (decoding compressed
// lists on demand), in unspecified order.
func (ix *Index) eachList(fn func(list []nid.ID)) {
	if ix.lazy != nil {
		for _, lp := range ix.lazy {
			fn(lp.decode(&ix.decoded))
		}
		return
	}
	for _, list := range ix.postings {
		fn(list)
	}
}

func sortedIDs(list []nid.ID) bool {
	for i := 1; i < len(list); i++ {
		if list[i-1] > list[i] {
			return false
		}
	}
	return true
}

func sortIDList(list []nid.ID) {
	slices.Sort(list)
}

func dedupIDList(list []nid.ID) []nid.ID {
	if len(list) == 0 {
		return list
	}
	out := list[:1]
	for _, id := range list[1:] {
		if out[len(out)-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// Analyzer returns the analyzer the index was built with.
func (ix *Index) Analyzer() *analysis.Analyzer { return ix.analyzer }

// Table returns the node table the posting IDs refer into.
func (ix *Index) Table() *nid.Table { return ix.tab }

// NumNodes returns the number of indexed nodes.
func (ix *Index) NumNodes() int { return ix.numNodes }

// NumWords returns the vocabulary size.
func (ix *Index) NumWords() int {
	if ix.lazy != nil {
		return len(ix.lazy)
	}
	return len(ix.postings)
}

// LookupIDs returns the posting list Di for the (already normalized) word
// as node IDs, or nil if the word does not occur. The returned slice is
// shared; callers must not modify it. On a compressed-backed index the
// first lookup of a term decodes its list (once; cached thereafter).
func (ix *Index) LookupIDs(word string) []nid.ID {
	if ix.lazy != nil {
		lp := ix.lazy[word]
		if lp == nil {
			return nil
		}
		return lp.decode(&ix.decoded)
	}
	return ix.postings[word]
}

// Lookup returns the posting list Di for the (already normalized) word as
// Dewey codes, or nil if the word does not occur. The code values are
// zero-copy views into the node table; callers must not modify them.
func (ix *Index) Lookup(word string) []dewey.Code {
	return ix.codesOf(ix.LookupIDs(word))
}

func (ix *Index) codesOf(ids []nid.ID) []dewey.Code {
	if ids == nil {
		return nil
	}
	out := make([]dewey.Code, len(ids))
	for i, id := range ids {
		out[i] = ix.tab.Code(id)
	}
	return out
}

// Frequency returns the number of keyword nodes containing the word. On a
// compressed-backed index this reads the list header — no decode — so the
// planner and scorer cost nothing at open time.
func (ix *Index) Frequency(word string) int {
	if ix.lazy != nil {
		if lp := ix.lazy[word]; lp != nil {
			return lp.list.Len()
		}
		return 0
	}
	return len(ix.postings[word])
}

// Words returns the vocabulary in lexical order.
func (ix *Index) Words() []string {
	out := make([]string, 0, ix.NumWords())
	if ix.lazy != nil {
		for w := range ix.lazy {
			out = append(out, w)
		}
	} else {
		for w := range ix.postings {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// ErrNoMatch reports a query keyword with an empty posting list.
type ErrNoMatch struct{ Word string }

func (e *ErrNoMatch) Error() string {
	return fmt.Sprintf("index: no node contains keyword %q", e.Word)
}

// KeywordSets normalizes the raw query keywords and returns their posting
// lists D1..Dk (as Dewey code views) in query order along with the
// normalized keywords. It fails with *ErrNoMatch if any keyword matches
// nothing (then no fragment can cover the query), and with a plain error if
// the query normalizes to nothing or to more than 64 keywords (the kList
// bitmask width).
func (ix *Index) KeywordSets(query string) (words []string, sets [][]dewey.Code, err error) {
	words, idSets, err := ix.KeywordSetIDs(query)
	if err != nil {
		return nil, nil, err
	}
	sets = make([][]dewey.Code, len(idSets))
	for i, s := range idSets {
		sets[i] = ix.codesOf(s)
	}
	return words, sets, nil
}

// KeywordSetIDs is KeywordSets in ID form: the posting lists are the shared
// ID slices, with no per-call materialization.
func (ix *Index) KeywordSetIDs(query string) (words []string, sets [][]nid.ID, err error) {
	words = ix.analyzer.NormalizeQuery(query)
	if len(words) == 0 {
		return nil, nil, fmt.Errorf("index: query %q contains no searchable keywords", query)
	}
	if len(words) > 64 {
		return nil, nil, fmt.Errorf("index: query has %d keywords; at most 64 supported", len(words))
	}
	sets = make([][]nid.ID, len(words))
	for i, w := range words {
		list := ix.LookupIDs(w)
		if len(list) == 0 {
			return nil, nil, &ErrNoMatch{Word: w}
		}
		sets[i] = list
	}
	return words, sets, nil
}

// Insert adds one node's postings incrementally (used by the engine's
// append path). The node (and any missing ancestors) is spliced into the
// node table at its pre-order position, renumbering later IDs across every
// posting list; each word's posting list then receives the new ID at its
// sorted position. Inserting an already-present (word, code) pair is a
// no-op. Not safe for use concurrently with readers.
func (ix *Index) Insert(c dewey.Code, words []string) {
	if ix.lazy != nil {
		// Compressed lists are immutable views (possibly into mmap-ed
		// memory); flatten the whole vocabulary into mutable heap lists
		// before the first mutation. In practice only tree-backed engines
		// append, so this path is defensive.
		flat := make(map[string][]nid.ID, len(ix.lazy))
		for w, lp := range ix.lazy {
			flat[w] = slices.Clone(lp.decode(&ix.decoded))
		}
		ix.postings = flat
		ix.lazy = nil
	}
	ix.numNodes++
	id, created := ix.tab.Insert(c)
	// Replay the table's renumbering on the stored IDs: for each splice
	// position, every ID at or after it shifted up by one.
	for _, pos := range created {
		for _, list := range ix.postings {
			for i, v := range list {
				if v >= pos {
					list[i] = v + 1
				}
			}
		}
	}
	for _, w := range words {
		list := ix.postings[w]
		i := sort.Search(len(list), func(j int) bool { return list[j] >= id })
		if i < len(list) && list[i] == id {
			continue
		}
		list = append(list, 0)
		copy(list[i+1:], list[i:])
		list[i] = id
		ix.postings[w] = list
	}
}

// Postings exposes a copy of the word → posting map in Dewey code form,
// used when shredding an index into the store. The code values are
// zero-copy views into the node table. On a compressed-backed index this
// decodes the full vocabulary.
func (ix *Index) Postings() map[string][]dewey.Code {
	out := make(map[string][]dewey.Code, ix.NumWords())
	if ix.lazy != nil {
		for w, lp := range ix.lazy {
			out[w] = ix.codesOf(lp.decode(&ix.decoded))
		}
		return out
	}
	for w, l := range ix.postings {
		out[w] = ix.codesOf(l)
	}
	return out
}
