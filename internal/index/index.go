// Package index builds the inverted keyword index used by getKeywordNodes:
// for each content word w, the pre-order-sorted list of Dewey codes of the
// keyword nodes whose content set Cv contains w (the paper's Di sets).
//
// The index is immutable after Build and safe for concurrent readers.
package index

import (
	"fmt"
	"sort"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/xmltree"
)

// Index maps content words to keyword-node posting lists.
type Index struct {
	analyzer *analysis.Analyzer
	postings map[string][]dewey.Code
	numNodes int
}

// Build indexes every node of the tree. A node is a keyword node for w when
// w appears among the words of its label, attributes or text.
func Build(t *xmltree.Tree, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	ix := &Index{analyzer: a, postings: make(map[string][]dewey.Code)}
	t.Walk(func(n *xmltree.Node) bool {
		ix.numNodes++
		for _, w := range a.ContentSet(n.ContentPieces()...) {
			ix.postings[w] = append(ix.postings[w], n.Code)
		}
		return true
	})
	// Pre-order walk yields pre-order postings already; keep the sort as a
	// defensive invariant for postings assembled by other builders.
	for _, list := range ix.postings {
		if !sortedPreOrder(list) {
			dewey.Sort(list)
		}
	}
	return ix
}

// FromPostings constructs an index directly from word → posting-list data,
// as when loading from the shredded store. Lists are sorted defensively.
func FromPostings(postings map[string][]dewey.Code, numNodes int, a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.New()
	}
	for _, list := range postings {
		if !sortedPreOrder(list) {
			dewey.Sort(list)
		}
	}
	return &Index{analyzer: a, postings: postings, numNodes: numNodes}
}

func sortedPreOrder(list []dewey.Code) bool {
	for i := 1; i < len(list); i++ {
		if dewey.Compare(list[i-1], list[i]) > 0 {
			return false
		}
	}
	return true
}

// Analyzer returns the analyzer the index was built with.
func (ix *Index) Analyzer() *analysis.Analyzer { return ix.analyzer }

// NumNodes returns the number of indexed nodes.
func (ix *Index) NumNodes() int { return ix.numNodes }

// NumWords returns the vocabulary size.
func (ix *Index) NumWords() int { return len(ix.postings) }

// Lookup returns the posting list Di for the (already normalized) word, or
// nil if the word does not occur. The returned slice is shared; callers must
// not modify it.
func (ix *Index) Lookup(word string) []dewey.Code {
	return ix.postings[word]
}

// Frequency returns the number of keyword nodes containing the word.
func (ix *Index) Frequency(word string) int {
	return len(ix.postings[word])
}

// Words returns the vocabulary in lexical order.
func (ix *Index) Words() []string {
	out := make([]string, 0, len(ix.postings))
	for w := range ix.postings {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// ErrNoMatch reports a query keyword with an empty posting list.
type ErrNoMatch struct{ Word string }

func (e *ErrNoMatch) Error() string {
	return fmt.Sprintf("index: no node contains keyword %q", e.Word)
}

// KeywordSets normalizes the raw query keywords and returns their posting
// lists D1..Dk in query order along with the normalized keywords. It fails
// with *ErrNoMatch if any keyword matches nothing (then no fragment can
// cover the query), and with a plain error if the query normalizes to
// nothing or to more than 64 keywords (the kList bitmask width).
func (ix *Index) KeywordSets(query string) (words []string, sets [][]dewey.Code, err error) {
	words = ix.analyzer.NormalizeQuery(query)
	if len(words) == 0 {
		return nil, nil, fmt.Errorf("index: query %q contains no searchable keywords", query)
	}
	if len(words) > 64 {
		return nil, nil, fmt.Errorf("index: query has %d keywords; at most 64 supported", len(words))
	}
	sets = make([][]dewey.Code, len(words))
	for i, w := range words {
		list := ix.postings[w]
		if len(list) == 0 {
			return nil, nil, &ErrNoMatch{Word: w}
		}
		sets[i] = list
	}
	return words, sets, nil
}

// Insert adds one node's postings incrementally (used by the engine's
// append path). The posting list of each word stays pre-order sorted via
// insertion at the binary-search position; inserting an already-present
// (word, code) pair is a no-op. Not safe for use concurrently with
// readers.
func (ix *Index) Insert(c dewey.Code, words []string) {
	ix.numNodes++
	for _, w := range words {
		list := ix.postings[w]
		i := dewey.SearchGE(list, c)
		if i < len(list) && dewey.Equal(list[i], c) {
			continue
		}
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = c
		ix.postings[w] = list
	}
}

// Postings exposes a copy of the word → posting map, used when shredding an
// index into the store. Lists are shared, not copied.
func (ix *Index) Postings() map[string][]dewey.Code {
	out := make(map[string][]dewey.Code, len(ix.postings))
	for w, l := range ix.postings {
		out[w] = l
	}
	return out
}
