package index

import (
	"errors"
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/paperdata"
	"xks/internal/xmltree"
)

func pubIndex() *Index {
	return Build(paperdata.Publications(), analysis.New())
}

func codes(ss ...string) []dewey.Code {
	out := make([]dewey.Code, len(ss))
	for i, s := range ss {
		out[i] = dewey.MustParse(s)
	}
	return out
}

func sameCodes(t *testing.T, got, want []dewey.Code, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for i := range got {
		if !dewey.Equal(got[i], want[i]) {
			t.Fatalf("%s: got %v, want %v", label, got, want)
		}
	}
}

// Example 3 of the paper: keyword node sets for "Liu" and "keyword" on the
// Figure 1(a) instance.
func TestExample3KeywordSets(t *testing.T) {
	ix := pubIndex()
	sameCodes(t, ix.Lookup("liu"), codes("0.2.0.0.0.0", "0.2.0.3.0"), "D(liu)")
	sameCodes(t, ix.Lookup("keyword"), codes("0.2.0.1", "0.2.0.2", "0.2.0.3.0"), "D(keyword)")
}

// Example 6 of the paper: keyword node sets for Q3 on Figure 1(a).
func TestExample6KeywordSets(t *testing.T) {
	ix := pubIndex()
	sameCodes(t, ix.Lookup("vldb"), codes("0.0"), "D(vldb)")
	sameCodes(t, ix.Lookup("title"), codes("0.0", "0.2.0.1", "0.2.1.1"), "D(title)")
	for _, w := range []string{"xml", "search"} {
		sameCodes(t, ix.Lookup(w), codes("0.2.0.1", "0.2.0.2", "0.2.0.3.0"), "D("+w+")")
	}
}

func TestLabelsMatchAsKeywords(t *testing.T) {
	ix := pubIndex()
	// Every "name" element matches the keyword "name" via its label.
	sameCodes(t, ix.Lookup("name"), codes("0.2.0.0.0.0", "0.2.1.0.0.0", "0.2.1.0.1.0"), "D(name)")
}

func TestAttributesMatchAsKeywords(t *testing.T) {
	tr := xmltree.Build(xmltree.E{Label: "root", Kids: []xmltree.E{
		{Label: "item", Attrs: []xmltree.Attr{{Name: "category", Value: "skyline stuff"}}},
	}})
	ix := Build(tr, nil)
	sameCodes(t, ix.Lookup("skyline"), codes("0.0"), "D(skyline) via attribute value")
	sameCodes(t, ix.Lookup("category"), codes("0.0"), "D(category) via attribute name")
}

func TestKeywordSetsQuery(t *testing.T) {
	ix := pubIndex()
	words, sets, err := ix.KeywordSets(paperdata.Q2) // "Liu keyword"
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 || words[0] != "liu" || words[1] != "keyword" {
		t.Fatalf("words = %v", words)
	}
	if len(sets) != 2 || len(sets[0]) != 2 || len(sets[1]) != 3 {
		t.Fatalf("sets = %v", sets)
	}
}

func TestKeywordSetsErrors(t *testing.T) {
	ix := pubIndex()
	if _, _, err := ix.KeywordSets("the of and"); err == nil {
		t.Error("stop-word-only query should fail")
	}
	_, _, err := ix.KeywordSets("liu zebra")
	var nm *ErrNoMatch
	if !errors.As(err, &nm) || nm.Word != "zebra" {
		t.Errorf("want ErrNoMatch{zebra}, got %v", err)
	}
	if nm.Error() == "" {
		t.Error("empty error text")
	}
}

func TestFrequencyAndStats(t *testing.T) {
	ix := pubIndex()
	if got := ix.Frequency("keyword"); got != 3 {
		t.Errorf("Frequency(keyword) = %d, want 3", got)
	}
	if got := ix.Frequency("nonexistent"); got != 0 {
		t.Errorf("Frequency(nonexistent) = %d", got)
	}
	if ix.NumNodes() != paperdata.Publications().Size() {
		t.Errorf("NumNodes = %d", ix.NumNodes())
	}
	if ix.NumWords() == 0 {
		t.Error("empty vocabulary")
	}
	words := ix.Words()
	for i := 1; i < len(words); i++ {
		if words[i-1] >= words[i] {
			t.Fatalf("Words not sorted at %d: %v", i, words)
		}
	}
	if ix.Analyzer() == nil {
		t.Error("Analyzer is nil")
	}
}

func TestPostingListsArePreOrderSorted(t *testing.T) {
	ix := pubIndex()
	for _, w := range ix.Words() {
		list := ix.Lookup(w)
		for i := 1; i < len(list); i++ {
			if dewey.Compare(list[i-1], list[i]) >= 0 {
				t.Fatalf("postings for %q not strictly pre-order sorted: %v", w, list)
			}
		}
	}
}

func TestFromPostingsSortsDefensively(t *testing.T) {
	p := map[string][]dewey.Code{
		"w": {dewey.MustParse("0.2"), dewey.MustParse("0.1")},
	}
	ix := FromPostings(p, 3, nil)
	sameCodes(t, ix.Lookup("w"), codes("0.1", "0.2"), "sorted postings")
	if ix.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", ix.NumNodes())
	}
}

func TestPostingsCopyIsShallow(t *testing.T) {
	ix := pubIndex()
	p := ix.Postings()
	delete(p, "keyword")
	if ix.Frequency("keyword") != 3 {
		t.Error("Postings map deletion affected index")
	}
}

func TestBuildNilAnalyzerDefaults(t *testing.T) {
	ix := Build(paperdata.Team(), nil)
	sameCodes(t, ix.Lookup("gassol"), codes("0.1.0.0"), "D(gassol)")
	sameCodes(t, ix.Lookup("position"), codes("0.1.0.1", "0.1.1.1", "0.1.2.1"), "D(position)")
	sameCodes(t, ix.Lookup("grizzlies"), codes("0.0"), "D(grizzlies)")
}

func BenchmarkBuild(b *testing.B) {
	tr := paperdata.Publications()
	a := analysis.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(tr, a)
	}
}

func TestInsertIncremental(t *testing.T) {
	ix := pubIndex()
	before := ix.NumNodes()
	c := dewey.MustParse("0.3")
	ix.Insert(c, []string{"zebra", "keyword"})
	if ix.NumNodes() != before+1 {
		t.Errorf("NumNodes = %d, want %d", ix.NumNodes(), before+1)
	}
	sameCodes(t, ix.Lookup("zebra"), codes("0.3"), "new word postings")
	// "keyword" postings stay sorted with the new code inserted in place.
	sameCodes(t, ix.Lookup("keyword"), codes("0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.3"), "merged postings")
	// Inserting the same pair again is a no-op for the lists.
	ix.Insert(c, []string{"keyword"})
	sameCodes(t, ix.Lookup("keyword"), codes("0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.3"), "idempotent postings")
}

func TestInsertKeepsOrderAtFront(t *testing.T) {
	ix := pubIndex()
	ix.Insert(dewey.MustParse("0.0.0"), []string{"keyword"})
	got := ix.Lookup("keyword")
	for i := 1; i < len(got); i++ {
		if dewey.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("postings unsorted after front insert: %v", got)
		}
	}
}
