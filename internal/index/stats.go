package index

import (
	"xks/internal/nid"
	"xks/internal/planner"
)

// maxDepthBuckets caps the depth histogram; deeper postings fold into the
// last bucket (matching planner.Stats.DepthHist semantics).
const maxDepthBuckets = 32

// Stats returns the planner statistics for this index. They are computed
// lazily on first use (one pass over the node table and posting lists) and
// cached; a store load that carries persisted statistics preempts the scan
// via SetStats. Statistics are advisory — plans never change answers — so
// they are deliberately not invalidated by Insert: slightly stale numbers
// after an append only cost performance, never correctness.
func (ix *Index) Stats() planner.Stats {
	ix.statsOnce.Do(func() {
		if !ix.statsSet {
			ix.stats = ix.computeStats()
			ix.statsSet = true
		}
	})
	return ix.stats
}

// SetStats installs precomputed statistics (the store's v2 load path), so
// opening a persisted index plans without rescanning posting lists. It must
// be called before the first Stats call to take effect.
func (ix *Index) SetStats(st planner.Stats) {
	ix.statsOnce.Do(func() {
		ix.stats = st
		ix.statsSet = true
	})
}

func (ix *Index) computeStats() planner.Stats {
	st := planner.Stats{
		Nodes: ix.tab.Len(),
		Words: ix.NumWords(),
		Docs:  1,
	}
	var depthSum int64
	var hist [maxDepthBuckets]int64
	maxBucket := 0
	// On compressed-backed indexes this decodes every list — the store
	// persists statistics precisely so SetStats preempts this scan; the
	// fallback only runs for hand-assembled indexes.
	ix.eachList(func(list []nid.ID) {
		st.Postings += len(list)
		if len(list) > st.MaxPostings {
			st.MaxPostings = len(list)
		}
		for _, id := range list {
			d := int(ix.tab.Depth(id))
			depthSum += int64(d)
			if d > st.MaxDepth {
				st.MaxDepth = d
			}
			b := min(d, maxDepthBuckets-1)
			hist[b]++
			if b > maxBucket {
				maxBucket = b
			}
		}
	})
	if st.Postings > 0 {
		st.AvgDepth = float64(depthSum) / float64(st.Postings)
		st.DepthHist = append([]int64(nil), hist[:maxBucket+1]...)
	}
	// Fanout: children per internal node, from the table's parent links.
	children := 0
	isParent := make([]bool, ix.tab.Len())
	for i := 0; i < ix.tab.Len(); i++ {
		p := ix.tab.Parent(nid.ID(i))
		if p >= 0 && int(p) < ix.tab.Len() && p != nid.ID(i) {
			children++
			isParent[p] = true
		}
	}
	internal := 0
	for _, b := range isParent {
		if b {
			internal++
		}
	}
	if internal > 0 {
		st.AvgFanout = float64(children) / float64(internal)
	}
	return st
}
