// ID-based variants of the getLCA stage: the production hot path runs on
// dense node IDs (internal/nid) instead of dewey.Code values. Posting lists
// are []nid.ID, the merged keyword-node stream is produced by a streaming
// k-way loser-tree merge (no materialized event slice), and LCA/ancestor
// tests are parent-chain walks on the node table, so the whole stage
// allocates only its result. The code-based implementations in lca.go are
// kept as the cross-checked reference (and for the eager baseline path).

package lca

import (
	"context"
	"slices"
	"sort"

	"xks/internal/nid"
	"xks/internal/trace"
)

// ctxCheckInterval is the number of merge events (or outer iterations)
// between context checks in the ctx-aware stage variants: frequent enough
// that cancellation lands within microseconds on real posting lists, sparse
// enough that the check never shows up in profiles.
const ctxCheckInterval = 4096

// IDEvent is one node of the merged keyword-node stream in ID form: the
// node plus the bitmask of query keywords it matches.
type IDEvent struct {
	ID   nid.ID
	Mask uint64
}

// mergeSentinel orders after every valid ID (IDs are int32).
const mergeSentinel = int64(1) << 40

// Source is a stream of strictly increasing node IDs — the shape the
// Merger consumes when posting lists are not materialized slices (e.g. the
// block-compressed lists of internal/postings, whose Iterator satisfies
// this interface structurally). Next consumes and returns the next ID;
// SeekGE discards every remaining ID below target, then consumes and
// returns the first remaining one (which may be below target only if the
// stream's head already was — callers here never ask that). Both return
// ok=false on exhaustion.
type Source interface {
	Next() (nid.ID, bool)
	SeekGE(target nid.ID) (nid.ID, bool)
}

// Merger streams the pre-order merge of k ID posting lists, OR-ing the
// masks of equal IDs — the DIL-style merged stream of XRank, without
// materializing it. It is a classic loser tree over the (sentinel-padded)
// sources: each Next pops the winner and replays one leaf-to-root path,
// O(log k) comparisons per event.
//
// Two leaf representations share the tree: materialized []nid.ID lists
// (lists/pos — the in-RAM hot path, pure slice indexing with no interface
// dispatch) and Source streams (srcs/head — compressed iterators, one
// interface call per consumed element with the current head cached in
// head[s]). Exactly one of lists/srcs is non-nil.
type Merger struct {
	lists [][]nid.ID
	pos   []int
	srcs  []Source
	head  []int64  // srcs mode: current unconsumed key per leaf; sentinel = exhausted
	bit   []uint64 // nil = bit[s] is 1<<s; else per-leaf mask bit (ordered merge)
	loser []int32  // internal nodes 1..n-1: loser of the match played there
	win   int32    // current overall winner (source index)
	n     int      // number of leaves (power of two >= len(lists))
}

// NewMerger builds a streaming merger over the pre-order-sorted posting
// lists.
func NewMerger(lists [][]nid.ID) *Merger {
	return NewMergerOrdered(lists, nil)
}

// NewMergerOrdered builds a merger whose loser-tree leaves hold the lists in
// the given order (order[leaf] = original list index — the planner's
// rarest-first permutation) while every emitted event still carries the
// original-order mask bits. Because Next coalesces all lists heading the
// same ID into one OR-ed event, the merged stream is identical for every
// leaf permutation (property-tested); the order only decides which source
// wins tournament ties. nil order means query order.
func NewMergerOrdered(lists [][]nid.ID, order []int) *Merger {
	k := len(lists)
	n := 1
	for n < k {
		n *= 2
	}
	m := &Merger{
		lists: lists,
		pos:   make([]int, k),
		loser: make([]int32, n),
		n:     n,
	}
	if order != nil && len(order) == k {
		permuted := make([][]nid.ID, k)
		bit := make([]uint64, k)
		for leaf, src := range order {
			permuted[leaf] = lists[src]
			bit[leaf] = 1 << uint(src)
		}
		m.lists = permuted
		m.bit = bit
	}
	m.rebuild()
	return m
}

// NewMergerSources builds a merger over ID streams instead of materialized
// lists — the disk-native path, where each Source is typically a
// postings.Iterator decoding a block-compressed list on demand. order has
// the same contract as in NewMergerOrdered (nil = given order). The merged
// event stream is byte-identical to a slice-backed merger over the decoded
// lists (crosscheck-tested).
func NewMergerSources(srcs []Source, order []int) *Merger {
	k := len(srcs)
	n := 1
	for n < k {
		n *= 2
	}
	m := &Merger{
		srcs:  srcs,
		head:  make([]int64, k),
		loser: make([]int32, n),
		n:     n,
	}
	if order != nil && len(order) == k {
		permuted := make([]Source, k)
		bit := make([]uint64, k)
		for leaf, src := range order {
			permuted[leaf] = srcs[src]
			bit[leaf] = 1 << uint(src)
		}
		m.srcs = permuted
		m.bit = bit
	}
	for s, src := range m.srcs {
		if v, ok := src.Next(); ok {
			m.head[s] = int64(v)
		} else {
			m.head[s] = mergeSentinel
		}
	}
	m.rebuild()
	return m
}

// rebuild replays the full tournament bottom-up from the current positions;
// win[i] is the winner of the subtree rooted at internal node i, loser[i]
// the loser of its match. O(n); allocation-free for k <= 64 (the query
// layer's term cap, since masks are uint64).
func (m *Merger) rebuild() {
	var buf [128]int32
	win := buf[:]
	if 2*m.n > len(buf) {
		win = make([]int32, 2*m.n)
	}
	for s := 0; s < m.n; s++ {
		win[m.n+s] = int32(s)
	}
	for i := m.n - 1; i >= 1; i-- {
		a, b := win[2*i], win[2*i+1]
		if m.less(a, b) {
			win[i], m.loser[i] = a, b
		} else {
			win[i], m.loser[i] = b, a
		}
	}
	m.win = win[1]
}

// SkipTo advances every source past all IDs below target and replays the
// tournament, so the next event is the first with ID >= target. The common
// case — the current winner already sits at or past target — returns
// without touching the tree, so callers can invoke it unconditionally.
func (m *Merger) SkipTo(target nid.ID) {
	if m.key(m.win) >= int64(target) {
		return
	}
	if m.srcs != nil {
		for s, src := range m.srcs {
			if m.head[s] >= int64(target) {
				continue
			}
			if v, ok := src.SeekGE(target); ok {
				m.head[s] = int64(v)
			} else {
				m.head[s] = mergeSentinel
			}
		}
	} else {
		for s, list := range m.lists {
			p := m.pos[s]
			if p < len(list) && list[p] < target {
				m.pos[s] = p + sort.Search(len(list)-p, func(i int) bool { return list[p+i] >= target })
			}
		}
	}
	m.rebuild()
}

// key returns the source's current head as an int64, or the sentinel when
// the source (or padding leaf) is exhausted.
func (m *Merger) key(s int32) int64 {
	if m.srcs != nil {
		if int(s) >= len(m.srcs) {
			return mergeSentinel
		}
		return m.head[s]
	}
	if int(s) >= len(m.lists) || m.pos[s] >= len(m.lists[s]) {
		return mergeSentinel
	}
	return int64(m.lists[s][m.pos[s]])
}

// less orders sources by current key, ties by source index (which keeps the
// merge deterministic; equal keys are coalesced by Next either way).
func (m *Merger) less(a, b int32) bool {
	ka, kb := m.key(a), m.key(b)
	return ka < kb || (ka == kb && a < b)
}

// advance pops the current winner's head and replays its path to the root.
func (m *Merger) advance() {
	s := m.win
	if m.srcs != nil {
		if v, ok := m.srcs[s].Next(); ok {
			m.head[s] = int64(v)
		} else {
			m.head[s] = mergeSentinel
		}
	} else {
		m.pos[s]++
	}
	cur := s
	for i := (m.n + int(s)) / 2; i >= 1; i /= 2 {
		if m.less(m.loser[i], cur) {
			m.loser[i], cur = cur, m.loser[i]
		}
	}
	m.win = cur
}

// Next returns the next event of the merged stream: the smallest unseen ID
// with the OR of the masks of every list it heads. ok is false when the
// stream is exhausted.
func (m *Merger) Next() (ev IDEvent, ok bool) {
	k := m.key(m.win)
	if k == mergeSentinel {
		return IDEvent{}, false
	}
	ev.ID = nid.ID(k)
	if m.bit != nil {
		for m.key(m.win) == k {
			ev.Mask |= m.bit[m.win]
			m.advance()
		}
	} else {
		for m.key(m.win) == k {
			ev.Mask |= 1 << uint(m.win)
			m.advance()
		}
	}
	return ev, true
}

// ELCAStackMergeIDs is the ID form of ELCAStackMerge: one pass over the
// streamed merge of the posting lists, maintaining the stack of path nodes
// (as IDs) from the root to the current event with residual and subtree
// masks. Identical output to ELCAStackMerge modulo representation; verified
// by cross-check tests.
func ELCAStackMergeIDs(t *nid.Table, sets [][]nid.ID) []nid.ID {
	out, _, _ := elcaStackMergeIDs(nil, t, sets, nil)
	return out
}

// ELCAStackMergeIDsCtx is ELCAStackMergeIDs with periodic cancellation
// checks inside the k-way merge loop: every ctxCheckInterval events it
// consults ctx and abandons the merge mid-stream with ctx.Err() when the
// context is done, so a cancelled search stops paying for postings it will
// never return.
func ELCAStackMergeIDsCtx(ctx context.Context, t *nid.Table, sets [][]nid.ID) ([]nid.ID, error) {
	return ELCAStackMergeIDsOrderedCtx(ctx, t, sets, nil)
}

// ELCAStackMergeIDsOrderedCtx is ELCAStackMergeIDsCtx with the planner's
// merge order feeding the loser tree (nil = query order). The output is
// independent of the order.
func ELCAStackMergeIDsOrderedCtx(ctx context.Context, t *nid.Table, sets [][]nid.ID, order []int) ([]nid.ID, error) {
	out, events, err := elcaStackMergeIDs(ctx, t, sets, order)
	if err != nil {
		return nil, err
	}
	reportMerge(ctx, events, len(out))
	return out, nil
}

// SLCAScanMergeIDs computes the SLCA set by scanning the full k-way merge —
// the Scan Eager strategy. The SLCAs are exactly the ELCAs with no ELCA
// proper descendant (any deeper all-keyword subtree would itself contain an
// SLCA, which is always an ELCA), so the stack merge result filtered through
// removeAncestorIDs equals SLCAIDs; property tests pin the equivalence.
// Preferable to the indexed variant when the keyword frequencies are of
// similar magnitude — the planner picks between the two.
func SLCAScanMergeIDs(t *nid.Table, sets [][]nid.ID) []nid.ID {
	out, _ := SLCAScanMergeIDsCtx(context.Background(), t, sets, nil)
	return out
}

// SLCAScanMergeIDsCtx is SLCAScanMergeIDs with cancellation checks and the
// planner's merge order (nil = query order).
func SLCAScanMergeIDsCtx(ctx context.Context, t *nid.Table, sets [][]nid.ID, order []int) ([]nid.ID, error) {
	elcas, events, err := elcaStackMergeIDs(ctx, t, sets, order)
	if err != nil {
		return nil, err
	}
	out := removeAncestorIDs(t, elcas)
	reportMerge(ctx, events, len(out))
	return out, nil
}

// reportMerge stamps the stage span with the merge's actual cost — one
// report per merge, never per event: the span lookup is a single context
// read, free when the request is untraced.
func reportMerge(ctx context.Context, events, roots int) {
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.SetInt("mergeEvents", int64(events))
		sp.SetInt("roots", int64(roots))
	}
}

func elcaStackMergeIDs(ctx context.Context, t *nid.Table, sets [][]nid.ID, order []int) ([]nid.ID, int, error) {
	k := len(sets)
	if k == 0 {
		return nil, 0, nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil, 0, nil
		}
	}
	full := FullMask(k)
	m := NewMergerOrdered(sets, order)

	var (
		ids      []nid.ID // ids[d] = path node at depth d
		residual []uint64
		subtree  []uint64
		result   []nid.ID
	)
	pop := func(toLen int) {
		for len(ids) > toLen {
			top := len(ids) - 1
			if residual[top] == full {
				result = append(result, ids[top])
			}
			if top >= 1 {
				subtree[top-1] |= subtree[top]
				if subtree[top] != full {
					residual[top-1] |= residual[top]
				}
			}
			ids = ids[:top]
			residual = residual[:top]
			subtree = subtree[:top]
		}
	}
	events := 0
	for n := 0; ; n++ {
		if ctx != nil && n%ctxCheckInterval == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		ev, ok := m.Next()
		if !ok {
			break
		}
		events++
		l := 0
		if len(ids) > 0 {
			l = int(t.LCADepth(ids[len(ids)-1], ev.ID)) + 1
		}
		pop(l)
		d := int(t.Depth(ev.ID))
		for len(ids) <= d {
			ids = append(ids, 0)
			residual = append(residual, 0)
			subtree = append(subtree, 0)
		}
		for i, cur := d, ev.ID; i >= l; i-- {
			ids[i] = cur
			cur = t.Parent(cur)
		}
		residual[d] |= ev.Mask
		subtree[d] |= ev.Mask
	}
	pop(0)
	sortIDs(result)
	return result, events, nil
}

// SLCAIDs is the ID form of SLCA (Indexed Lookup Eager): for every node of
// the smallest list, chain-LCA it with the closest node of every other
// list, then remove non-minimal candidates. Identical output to SLCA modulo
// representation.
func SLCAIDs(t *nid.Table, sets [][]nid.ID) []nid.ID {
	out, _ := slcaIDs(nil, t, sets)
	return out
}

// SLCAIDsCtx is SLCAIDs with periodic cancellation checks over the
// smallest-list scan, mirroring ELCAStackMergeIDsCtx.
func SLCAIDsCtx(ctx context.Context, t *nid.Table, sets [][]nid.ID) ([]nid.ID, error) {
	return slcaIDs(ctx, t, sets)
}

func slcaIDs(ctx context.Context, t *nid.Table, sets [][]nid.ID) ([]nid.ID, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil, nil
		}
	}
	smallest := 0
	for i, s := range sets {
		if len(s) < len(sets[smallest]) {
			smallest = i
		}
	}
	candidates := make([]nid.ID, 0, len(sets[smallest]))
	for n, v := range sets[smallest] {
		if ctx != nil && n%ctxCheckInterval == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		x := v
		ok := true
		for i, s := range sets {
			if i == smallest {
				continue
			}
			u := closestID(t, s, x)
			x = t.LCA(x, u)
			if x == nid.None {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, x)
		}
	}
	sortIDs(candidates)
	candidates = dedupIDs(candidates)
	out := removeAncestorIDs(t, candidates)
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.SetInt("mergeEvents", int64(len(sets[smallest])))
		sp.SetInt("roots", int64(len(out)))
	}
	return out, nil
}

// closestID returns the node of the sorted list whose LCA with x is
// deepest: one of x's two pre-order neighbours (IDs order in pre-order).
func closestID(t *nid.Table, list []nid.ID, x nid.ID) nid.ID {
	i := sort.Search(len(list), func(j int) bool { return list[j] >= x })
	switch {
	case i == len(list):
		return list[i-1]
	case i == 0:
		return list[i]
	}
	lm, rm := list[i-1], list[i]
	if t.LCADepth(lm, x) >= t.LCADepth(rm, x) {
		return lm
	}
	return rm
}

// removeAncestorIDs keeps only the nodes with no proper descendant in the
// sorted, deduplicated list.
func removeAncestorIDs(t *nid.Table, sorted []nid.ID) []nid.ID {
	out := sorted[:0]
	for i, c := range sorted {
		if i+1 < len(sorted) && t.IsAncestorOf(c, sorted[i+1]) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func sortIDs(ids []nid.ID) {
	slices.Sort(ids)
}

func dedupIDs(ids []nid.ID) []nid.ID {
	if len(ids) == 0 {
		return ids
	}
	out := ids[:1]
	for _, c := range ids[1:] {
		if out[len(out)-1] != c {
			out = append(out, c)
		}
	}
	return out
}
