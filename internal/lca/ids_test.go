package lca

import (
	"math/rand"
	"testing"

	"xks/internal/dewey"
	"xks/internal/nid"
)

// idHarness maps random code posting sets onto a node table so the ID
// implementations can be cross-checked against the code-based references.
type idHarness struct {
	tab  *nid.Table
	sets [][]nid.ID
}

func harness(t *testing.T, sets [][]dewey.Code) idHarness {
	t.Helper()
	var all []dewey.Code
	for _, s := range sets {
		all = append(all, s...)
	}
	tab := nid.FromCodes(all)
	h := idHarness{tab: tab, sets: make([][]nid.ID, len(sets))}
	for i, s := range sets {
		for _, c := range s {
			id, ok := tab.Find(c)
			if !ok {
				t.Fatalf("code %s missing from table", c)
			}
			h.sets[i] = append(h.sets[i], id)
		}
	}
	return h
}

func (h idHarness) codesOf(ids []nid.ID) []dewey.Code {
	out := make([]dewey.Code, len(ids))
	for i, id := range ids {
		out[i] = h.tab.Code(id)
	}
	return out
}

func randomCodeSets(rng *rand.Rand, k int) [][]dewey.Code {
	sets := make([][]dewey.Code, k)
	for i := range sets {
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			depth := 1 + rng.Intn(4)
			c := make(dewey.Code, depth)
			c[0] = 0
			for l := 1; l < depth; l++ {
				c[l] = uint32(rng.Intn(3))
			}
			sets[i] = append(sets[i], c)
		}
		dewey.Sort(sets[i])
		sets[i] = dewey.Dedup(sets[i])
	}
	return sets
}

func sameCodeSlices(a, b []dewey.Code) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !dewey.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestMergerMatchesMergeSets: the streaming loser-tree merge yields exactly
// the events of the materialized reference merge.
func TestMergerMatchesMergeSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		sets := randomCodeSets(rng, 1+rng.Intn(5))
		h := harness(t, sets)
		want := MergeSets(sets)
		m := NewMerger(h.sets)
		var got []Event
		for {
			ev, ok := m.Next()
			if !ok {
				break
			}
			got = append(got, Event{Code: h.tab.Code(ev.ID), Mask: ev.Mask})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !dewey.Equal(got[i].Code, want[i].Code) || got[i].Mask != want[i].Mask {
				t.Fatalf("trial %d event %d: (%s, %b) vs (%s, %b)",
					trial, i, got[i].Code, got[i].Mask, want[i].Code, want[i].Mask)
			}
		}
	}
}

// TestELCAStackMergeIDsMatchesCodes cross-checks the ID stack merge against
// the code-based implementation (itself verified against ELCANaive).
func TestELCAStackMergeIDsMatchesCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 1000; trial++ {
		sets := randomCodeSets(rng, 1+rng.Intn(4))
		h := harness(t, sets)
		want := ELCAStackMerge(sets)
		got := h.codesOf(ELCAStackMergeIDs(h.tab, h.sets))
		if !sameCodeSlices(got, want) {
			t.Fatalf("trial %d: %v vs %v (sets %v)", trial, got, want, sets)
		}
	}
}

// TestSLCAIDsMatchesCodes cross-checks the ID SLCA against the code-based
// Indexed Lookup Eager implementation.
func TestSLCAIDsMatchesCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 1000; trial++ {
		sets := randomCodeSets(rng, 1+rng.Intn(4))
		h := harness(t, sets)
		want := SLCA(sets)
		got := h.codesOf(SLCAIDs(h.tab, h.sets))
		if !sameCodeSlices(got, want) {
			t.Fatalf("trial %d: %v vs %v (sets %v)", trial, got, want, sets)
		}
	}
}

// TestMergerSingleList: the k=1 degenerate shape streams the list as-is.
func TestMergerSingleList(t *testing.T) {
	h := harness(t, [][]dewey.Code{{dewey.MustParse("0.0"), dewey.MustParse("0.1")}})
	m := NewMerger(h.sets)
	for i := 0; i < 2; i++ {
		ev, ok := m.Next()
		if !ok || ev.Mask != 1 {
			t.Fatalf("event %d: ok=%v mask=%b", i, ok, ev.Mask)
		}
	}
	if _, ok := m.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}
