// Package lca computes the LCA-based node sets that drive XML keyword
// search: SLCAs (smallest LCAs, Xu & Papakonstantinou SIGMOD 2005) and the
// paper's "interesting LCA nodes" — the ELCA semantics of the Indexed Stack
// algorithm (Xu & Papakonstantinou, EDBT 2008) used by ValidRTF's getLCA
// stage.
//
// Definitions, over keyword-node posting lists D1..Dk (pre-order sorted
// Dewey codes):
//
//   - A node v "contains all keywords" when for every i some node of Di is a
//     descendant-or-self of v.
//   - SLCA(D1..Dk): the all-containing nodes none of whose descendants is
//     all-containing.
//   - ELCA(D1..Dk) (the interesting LCAs): the nodes v such that for every
//     keyword i there is a witness x ∈ Di under v that is not under any
//     all-containing proper descendant of v. Equivalently: grouping every
//     keyword node by its lowest all-containing ancestor-or-self, v is an
//     ELCA exactly when its group covers all keywords.
//
// Three interchangeable ELCA implementations are provided and
// cross-validated by tests: ELCAStackMerge (single pass with a Dewey stack
// over the merged posting lists — the default, playing the role of the
// Indexed Stack algorithm), ELCAIndexedDispatch (SLCA + binary-search
// dispatch) and ELCANaive (direct definition; reference for tests).
package lca

import "xks/internal/dewey"

// FullMask returns the bitmask with the low k bits set: "all keywords".
func FullMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// Event is one node of the merged keyword-node stream: a Dewey code plus
// the bitmask of query keywords it matches.
type Event struct {
	Code dewey.Code
	Mask uint64
}

// MergeSets merges the posting lists D1..Dk into a single pre-order stream
// of Events, OR-ing the masks of equal codes (a node can match several
// keywords). Input lists must be pre-order sorted.
func MergeSets(sets [][]dewey.Code) []Event {
	k := len(sets)
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	out := make([]Event, 0, total)
	pos := make([]int, k)
	for {
		best := -1
		for i := 0; i < k; i++ {
			if pos[i] >= len(sets[i]) {
				continue
			}
			if best < 0 || dewey.Compare(sets[i][pos[i]], sets[best][pos[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := sets[best][pos[best]]
		var mask uint64
		for i := 0; i < k; i++ {
			if pos[i] < len(sets[i]) && dewey.Equal(sets[i][pos[i]], c) {
				mask |= 1 << uint(i)
				pos[i]++
			}
		}
		out = append(out, Event{Code: c, Mask: mask})
	}
	return out
}

// SLCA computes the smallest LCA set with the Indexed Lookup Eager
// strategy: for every node of the smallest list, chain-LCA it with the
// closest node of every other list, then remove non-minimal candidates.
// Input lists must be pre-order sorted. The result is pre-order sorted.
func SLCA(sets [][]dewey.Code) []dewey.Code {
	if len(sets) == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}
	smallest := 0
	for i, s := range sets {
		if len(s) < len(sets[smallest]) {
			smallest = i
		}
	}
	candidates := make([]dewey.Code, 0, len(sets[smallest]))
	for _, v := range sets[smallest] {
		x := v
		ok := true
		for i, s := range sets {
			if i == smallest {
				continue
			}
			u := closest(s, x)
			x = dewey.LCA(x, u)
			if x == nil {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, x)
		}
	}
	dewey.Sort(candidates)
	candidates = dewey.Dedup(candidates)
	return removeAncestors(candidates)
}

// closest returns the node of the pre-order-sorted list whose LCA with x is
// deepest: one of the two neighbours of x in pre-order.
func closest(list []dewey.Code, x dewey.Code) dewey.Code {
	i := dewey.SearchGE(list, x)
	var lm, rm dewey.Code
	if i < len(list) {
		rm = list[i]
	}
	if i > 0 {
		lm = list[i-1]
	}
	switch {
	case lm == nil:
		return rm
	case rm == nil:
		return lm
	}
	if dewey.CommonPrefixLen(lm, x) >= dewey.CommonPrefixLen(rm, x) {
		return lm
	}
	return rm
}

// removeAncestors keeps only the nodes that have no proper descendant in
// the pre-order-sorted, deduplicated list.
func removeAncestors(sorted []dewey.Code) []dewey.Code {
	out := sorted[:0]
	for i, c := range sorted {
		// In pre-order, a descendant of c (if any) appears at the next
		// distinct position.
		if i+1 < len(sorted) && c.IsAncestorOf(sorted[i+1]) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ELCAStackMerge computes the interesting LCA set in one pass over the
// merged keyword-node stream, maintaining a stack of Dewey components with
// keyword masks. A popped path node with a full residual mask is an ELCA;
// non-full masks propagate to the parent, full ones do not (the exclusion
// semantics). This is the production algorithm, standing in for the Indexed
// Stack algorithm of [12] (same output, verified against ELCANaive).
func ELCAStackMerge(sets [][]dewey.Code) []dewey.Code {
	k := len(sets)
	if k == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}
	full := FullMask(k)
	events := MergeSets(sets)

	// Each stack level carries two masks: residual (witnesses not absorbed
	// by an all-containing descendant — the ELCA test) and subtree (all
	// keywords anywhere below — the all-containing test). An all-containing
	// node absorbs its residual: nothing propagates past it, whether or not
	// it was itself reported as an ELCA.
	var (
		comps    []uint32
		residual []uint64
		subtree  []uint64
		result   []dewey.Code
	)
	pop := func(toLen int) {
		for len(comps) > toLen {
			top := len(comps) - 1
			if residual[top] == full {
				code := make(dewey.Code, len(comps))
				copy(code, comps)
				result = append(result, code)
			}
			if top >= 1 {
				subtree[top-1] |= subtree[top]
				if subtree[top] != full {
					residual[top-1] |= residual[top]
				}
			}
			comps = comps[:top]
			residual = residual[:top]
			subtree = subtree[:top]
		}
	}
	for _, ev := range events {
		l := 0
		for l < len(comps) && l < len(ev.Code) && comps[l] == ev.Code[l] {
			l++
		}
		pop(l)
		for i := l; i < len(ev.Code); i++ {
			comps = append(comps, ev.Code[i])
			residual = append(residual, 0)
			subtree = append(subtree, 0)
		}
		residual[len(residual)-1] |= ev.Mask
		subtree[len(subtree)-1] |= ev.Mask
	}
	pop(0)
	dewey.Sort(result)
	return result
}

// ELCAIndexedDispatch computes the interesting LCA set by first computing
// the SLCAs, then dispatching every keyword node to its lowest
// all-containing ancestor-or-self (a node is all-containing exactly when it
// is an ancestor-or-self of some SLCA) and keeping the dispatch targets
// whose groups cover all keywords.
func ELCAIndexedDispatch(sets [][]dewey.Code) []dewey.Code {
	k := len(sets)
	slcas := SLCA(sets)
	if len(slcas) == 0 {
		return nil
	}
	full := FullMask(k)
	groups := make(map[string]uint64)
	var order []dewey.Code
	for i, s := range sets {
		bit := uint64(1) << uint(i)
		for _, x := range s {
			p := LowestAllContaining(slcas, x)
			if p == nil {
				continue
			}
			key := p.Key()
			if _, seen := groups[key]; !seen {
				order = append(order, p)
			}
			groups[key] |= bit
		}
	}
	var out []dewey.Code
	for _, p := range order {
		if groups[p.Key()] == full {
			out = append(out, p)
		}
	}
	dewey.Sort(out)
	return out
}

// LowestAllContaining returns the deepest prefix of x that is an
// ancestor-or-self of some SLCA in the pre-order-sorted slcas list, or nil
// if none exists (only possible when slcas is empty, since the root covers
// everything). The result aliases x (a prefix sub-slice).
func LowestAllContaining(slcas []dewey.Code, x dewey.Code) dewey.Code {
	for l := len(x); l >= 1; l-- {
		p := x[:l]
		if coversSomeSLCA(slcas, p) {
			return p
		}
	}
	return nil
}

// coversSomeSLCA reports whether p is an ancestor-or-self of some SLCA.
func coversSomeSLCA(slcas []dewey.Code, p dewey.Code) bool {
	i := dewey.SearchGE(slcas, p)
	return i < len(slcas) && p.IsAncestorOrSelf(slcas[i])
}

// ELCANaive computes the interesting LCA set straight from the definition.
// It materializes the all-containing predicate for every candidate prefix
// and tests each candidate's witnesses; exponential care is not needed but
// it is O(n²·depth) and intended only as a test reference.
func ELCANaive(sets [][]dewey.Code) []dewey.Code {
	k := len(sets)
	if k == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}
	// Candidate nodes: every prefix of every keyword node.
	cands := map[string]dewey.Code{}
	for _, s := range sets {
		for _, x := range s {
			for l := 1; l <= len(x); l++ {
				p := x[:l]
				cands[p.Key()] = p.Clone()
			}
		}
	}
	containsAll := func(p dewey.Code) bool {
		for _, s := range sets {
			found := false
			for _, x := range s {
				if p.IsAncestorOrSelf(x) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	lowestAC := func(x dewey.Code) dewey.Code {
		for l := len(x); l >= 1; l-- {
			if containsAll(x[:l]) {
				return x[:l].Clone()
			}
		}
		return nil
	}
	var out []dewey.Code
	for _, v := range cands {
		if !containsAll(v) {
			continue
		}
		ok := true
		for _, s := range sets {
			witness := false
			for _, x := range s {
				if !v.IsAncestorOrSelf(x) {
					continue
				}
				if la := lowestAC(x); la != nil && dewey.Equal(la, v) {
					witness = true
					break
				}
			}
			if !witness {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	dewey.Sort(out)
	return out
}

// SLCANaive computes the SLCA set straight from the definition, as a test
// reference.
func SLCANaive(sets [][]dewey.Code) []dewey.Code {
	k := len(sets)
	if k == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}
	cands := map[string]dewey.Code{}
	for _, s := range sets {
		for _, x := range s {
			for l := 1; l <= len(x); l++ {
				p := x[:l]
				cands[p.Key()] = p.Clone()
			}
		}
	}
	containsAll := func(p dewey.Code) bool {
		for _, s := range sets {
			found := false
			for _, x := range s {
				if p.IsAncestorOrSelf(x) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	var all []dewey.Code
	for _, v := range cands {
		if containsAll(v) {
			all = append(all, v)
		}
	}
	var out []dewey.Code
	for _, v := range all {
		minimal := true
		for _, u := range all {
			if v.IsAncestorOf(u) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, v)
		}
	}
	dewey.Sort(out)
	return out
}
