package lca

import (
	"math/rand"
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/paperdata"
)

func setsFor(t *testing.T, query string, pub bool) [][]dewey.Code {
	t.Helper()
	tree := paperdata.Publications()
	if !pub {
		tree = paperdata.Team()
	}
	ix := index.Build(tree, analysis.New())
	_, sets, err := ix.KeywordSets(query)
	if err != nil {
		t.Fatalf("KeywordSets(%q): %v", query, err)
	}
	return sets
}

func codeStrings(cs []dewey.Code) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

func wantCodes(t *testing.T, got []dewey.Code, want ...string) {
	t.Helper()
	gs := codeStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %v, want %v", gs, want)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Fatalf("got %v, want %v", gs, want)
		}
	}
}

// Paper, Example 1 [SLCA vs LCA]: for Q2 on Figure 1(a) the SLCA is the ref
// node 0.2.0.3.0 and the article 0.2.0 is an additional interesting LCA.
func TestQ2SLCAAndELCA(t *testing.T) {
	sets := setsFor(t, paperdata.Q2, true)
	wantCodes(t, SLCA(sets), "0.2.0.3.0")
	for name, f := range elcaImpls() {
		wantCodes(t, f(sets), "0.2.0", "0.2.0.3.0")
		_ = name
	}
}

// Paper, Example 1/6: for Q3 the only interesting LCA (and SLCA) is the root.
func TestQ3RootOnly(t *testing.T) {
	sets := setsFor(t, paperdata.Q3, true)
	wantCodes(t, SLCA(sets), "0")
	for _, f := range elcaImpls() {
		wantCodes(t, f(sets), "0")
	}
}

// Paper, Example 2 [false positive]: for Q1 the only SLCA is article 0.2.1.
func TestQ1SLCA(t *testing.T) {
	sets := setsFor(t, paperdata.Q1, true)
	wantCodes(t, SLCA(sets), "0.2.1")
	for _, f := range elcaImpls() {
		wantCodes(t, f(sets), "0.2.1")
	}
}

// Paper, Example 2 [redundancy]: Q4 "Grizzlies position" on the team
// segment; the root is the only LCA.
func TestQ4TeamRoot(t *testing.T) {
	sets := setsFor(t, paperdata.Q4, false)
	wantCodes(t, SLCA(sets), "0")
	for _, f := range elcaImpls() {
		wantCodes(t, f(sets), "0")
	}
}

// For Q5 "Grizzlies Gassol position" only the team root contains all three
// keywords.
func TestQ5TeamRoot(t *testing.T) {
	sets := setsFor(t, paperdata.Q5, false)
	wantCodes(t, SLCA(sets), "0")
	for _, f := range elcaImpls() {
		wantCodes(t, f(sets), "0")
	}
}

// Without the team name ("Gassol position") the player node 0.1.0 is the
// only interesting LCA: the root is all-containing but its sole "Gassol"
// witness lies under the all-containing player node, so it is excluded.
func TestGassolPositionPlayerOnly(t *testing.T) {
	sets := setsFor(t, "Gassol position", false)
	wantCodes(t, SLCA(sets), "0.1.0")
	for _, f := range elcaImpls() {
		wantCodes(t, f(sets), "0.1.0")
	}
}

func elcaImpls() map[string]func([][]dewey.Code) []dewey.Code {
	return map[string]func([][]dewey.Code) []dewey.Code{
		"stack":    ELCAStackMerge,
		"dispatch": ELCAIndexedDispatch,
		"naive":    ELCANaive,
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := SLCA(nil); got != nil {
		t.Errorf("SLCA(nil) = %v", got)
	}
	empty := [][]dewey.Code{{dewey.MustParse("0.1")}, {}}
	if got := SLCA(empty); got != nil {
		t.Errorf("SLCA with empty list = %v", got)
	}
	for name, f := range elcaImpls() {
		if got := f(nil); got != nil {
			t.Errorf("%s(nil) = %v", name, got)
		}
		if got := f(empty); got != nil {
			t.Errorf("%s with empty list = %v", name, got)
		}
	}
}

func TestSingleKeyword(t *testing.T) {
	// With one keyword every keyword node is its own SLCA unless it has a
	// keyword-node descendant.
	sets := [][]dewey.Code{{
		dewey.MustParse("0.1"),
		dewey.MustParse("0.1.2"),
		dewey.MustParse("0.3"),
	}}
	wantCodes(t, SLCA(sets), "0.1.2", "0.3")
	// ELCA additionally keeps 0.1: its own occurrence is a witness not
	// contained in any all-containing descendant... 0.1 itself matches, and
	// the occurrence at 0.1 is not under 0.1.2.
	for _, f := range elcaImpls() {
		wantCodes(t, f(sets), "0.1", "0.1.2", "0.3")
	}
}

func TestMergeSets(t *testing.T) {
	sets := [][]dewey.Code{
		{dewey.MustParse("0.1"), dewey.MustParse("0.3")},
		{dewey.MustParse("0.1"), dewey.MustParse("0.2")},
	}
	ev := MergeSets(sets)
	if len(ev) != 3 {
		t.Fatalf("MergeSets len = %d, want 3", len(ev))
	}
	if ev[0].Code.String() != "0.1" || ev[0].Mask != 3 {
		t.Errorf("ev[0] = %v mask %b", ev[0].Code, ev[0].Mask)
	}
	if ev[1].Code.String() != "0.2" || ev[1].Mask != 2 {
		t.Errorf("ev[1] = %v mask %b", ev[1].Code, ev[1].Mask)
	}
	if ev[2].Code.String() != "0.3" || ev[2].Mask != 1 {
		t.Errorf("ev[2] = %v mask %b", ev[2].Code, ev[2].Mask)
	}
}

func TestFullMask(t *testing.T) {
	if FullMask(0) != 0 {
		t.Error("FullMask(0)")
	}
	if FullMask(3) != 0b111 {
		t.Error("FullMask(3)")
	}
	if FullMask(64) != ^uint64(0) {
		t.Error("FullMask(64)")
	}
	if FullMask(100) != ^uint64(0) {
		t.Error("FullMask(100)")
	}
}

func TestLowestAllContaining(t *testing.T) {
	slcas := []dewey.Code{dewey.MustParse("0.2.0.3.0")}
	cases := []struct{ x, want string }{
		{"0.2.0.3.0", "0.2.0.3.0"},   // the SLCA itself
		{"0.2.0.3.0.1", "0.2.0.3.0"}, // below the SLCA
		{"0.2.0.1", "0.2.0"},         // sibling branch: deepest common ancestor with SLCA
		{"0.0", "0"},                 // far branch: only the root covers an SLCA
	}
	for _, c := range cases {
		got := LowestAllContaining(slcas, dewey.MustParse(c.x))
		if got.String() != c.want {
			t.Errorf("LowestAllContaining(%s) = %s, want %s", c.x, got, c.want)
		}
	}
	if got := LowestAllContaining(nil, dewey.MustParse("0.1")); got != nil {
		t.Errorf("LowestAllContaining with no SLCAs = %v", got)
	}
}

// randomSets builds k random posting lists over a synthetic tree universe.
func randomSets(rng *rand.Rand, k int) [][]dewey.Code {
	sets := make([][]dewey.Code, k)
	for i := range sets {
		n := 1 + rng.Intn(6)
		m := map[string]dewey.Code{}
		for j := 0; j < n; j++ {
			depth := 1 + rng.Intn(5)
			c := make(dewey.Code, depth+1)
			c[0] = 0
			for d := 1; d <= depth; d++ {
				c[d] = uint32(rng.Intn(3))
			}
			m[c.Key()] = c
		}
		for _, c := range m {
			sets[i] = append(sets[i], c)
		}
		dewey.Sort(sets[i])
	}
	return sets
}

// Property: the three ELCA implementations agree, and SLCA agrees with its
// naive reference, over thousands of random inputs.
func TestImplementationsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		k := 1 + rng.Intn(4)
		sets := randomSets(rng, k)

		slcaFast := SLCA(sets)
		slcaRef := SLCANaive(sets)
		assertSame(t, trial, "SLCA", slcaFast, slcaRef, sets)

		stack := ELCAStackMerge(sets)
		disp := ELCAIndexedDispatch(sets)
		naive := ELCANaive(sets)
		assertSame(t, trial, "ELCA stack vs naive", stack, naive, sets)
		assertSame(t, trial, "ELCA dispatch vs naive", disp, naive, sets)
	}
}

func assertSame(t *testing.T, trial int, what string, got, want []dewey.Code, sets [][]dewey.Code) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d %s: got %v want %v (sets %v)", trial, what, codeStrings(got), codeStrings(want), sets)
	}
	for i := range got {
		if !dewey.Equal(got[i], want[i]) {
			t.Fatalf("trial %d %s: got %v want %v (sets %v)", trial, what, codeStrings(got), codeStrings(want), sets)
		}
	}
}

// Property: every SLCA is an ELCA, and every ELCA contains all keywords.
func TestSLCASubsetOfELCA(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 1000; trial++ {
		sets := randomSets(rng, 1+rng.Intn(3))
		slcas := SLCA(sets)
		elcas := ELCAStackMerge(sets)
		em := map[string]bool{}
		for _, e := range elcas {
			em[e.Key()] = true
		}
		for _, s := range slcas {
			if !em[s.Key()] {
				t.Fatalf("trial %d: SLCA %s not in ELCA set %v", trial, s, codeStrings(elcas))
			}
		}
		for _, e := range elcas {
			for i, set := range sets {
				found := false
				for _, x := range set {
					if e.IsAncestorOrSelf(x) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: ELCA %s misses keyword %d", trial, e, i)
				}
			}
		}
	}
}

// Property: SLCAs form an antichain (no SLCA is an ancestor of another).
func TestSLCAAntichain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		sets := randomSets(rng, 1+rng.Intn(3))
		slcas := SLCA(sets)
		for i := range slcas {
			for j := range slcas {
				if i != j && slcas[i].IsAncestorOf(slcas[j]) {
					t.Fatalf("trial %d: SLCA %s is ancestor of SLCA %s", trial, slcas[i], slcas[j])
				}
			}
		}
	}
}

func BenchmarkSLCA(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sets := benchmarkSets(rng, 3, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SLCA(sets)
	}
}

func BenchmarkELCAStackMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sets := benchmarkSets(rng, 3, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ELCAStackMerge(sets)
	}
}

func BenchmarkELCAIndexedDispatch(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sets := benchmarkSets(rng, 3, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ELCAIndexedDispatch(sets)
	}
}

func benchmarkSets(rng *rand.Rand, k, n int) [][]dewey.Code {
	sets := make([][]dewey.Code, k)
	for i := range sets {
		m := map[string]dewey.Code{}
		for j := 0; j < n; j++ {
			depth := 2 + rng.Intn(8)
			c := make(dewey.Code, depth+1)
			c[0] = 0
			for d := 1; d <= depth; d++ {
				c[d] = uint32(rng.Intn(10))
			}
			m[c.Key()] = c
		}
		for _, c := range m {
			sets[i] = append(sets[i], c)
		}
		dewey.Sort(sets[i])
	}
	return sets
}
