package lca

import (
	"context"
	"math/rand"
	"testing"

	"xks/internal/dewey"
	"xks/internal/nid"
)

// randomIDSets builds a random node table plus k posting lists over it.
func randomIDSets(rng *rand.Rand, nodes, k int) (*nid.Table, [][]nid.ID) {
	codes := make([]dewey.Code, 0, nodes)
	for i := 0; i < nodes; i++ {
		depth := 1 + rng.Intn(6)
		c := make(dewey.Code, depth)
		for d := range c {
			c[d] = uint32(rng.Intn(3) + 1)
		}
		codes = append(codes, c)
	}
	t := nid.FromCodes(codes)
	sets := make([][]nid.ID, k)
	for i := range sets {
		// Skewed sizes: list i holds roughly nodes/(i+1) entries.
		want := t.Len()/(i+1) + 1
		seen := map[nid.ID]bool{}
		for j := 0; j < want; j++ {
			id := nid.ID(rng.Intn(t.Len()))
			if !seen[id] {
				seen[id] = true
				sets[i] = append(sets[i], id)
			}
		}
		sortIDs(sets[i])
	}
	return t, sets
}

func drain(m *Merger) []IDEvent {
	var out []IDEvent
	for {
		ev, ok := m.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// The merged, coalesced event stream must be identical for every loser-tree
// leaf permutation: rarest-first ordering is output-neutral by construction.
func TestOrderedMergerStreamIndependentOfOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(6)
		_, sets := randomIDSets(rng, 20+rng.Intn(200), k)
		want := drain(NewMerger(sets))
		order := rng.Perm(k)
		got := drain(NewMergerOrdered(sets, order))
		if len(got) != len(want) {
			t.Fatalf("trial %d order %v: %d events, want %d", trial, order, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d order %v: event %d = %+v, want %+v", trial, order, i, got[i], want[i])
			}
		}
	}
}

// SkipTo must behave exactly like draining events below the target.
func TestMergerSkipToMatchesDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		tab, sets := randomIDSets(rng, 20+rng.Intn(150), k)
		target := nid.ID(rng.Intn(tab.Len() + 1))

		ref := NewMerger(sets)
		var want []IDEvent
		for {
			ev, ok := ref.Next()
			if !ok {
				break
			}
			if ev.ID >= target {
				want = append(want, ev)
			}
		}

		var order []int
		if rng.Intn(2) == 0 {
			order = rng.Perm(k)
		}
		m := NewMergerOrdered(sets, order)
		// Consume a random prefix (still below target) before skipping, so
		// SkipTo is exercised mid-stream, not only from the start.
		for i := rng.Intn(4); i > 0; i-- {
			ev, ok := m.Next()
			if !ok || ev.ID >= target {
				goto fresh // prefix crossed the target; restart plain
			}
		}
		m.SkipTo(target)
		if got := drain(m); !sameEvents(got, want) {
			t.Fatalf("trial %d: SkipTo(%d) stream diverged", trial, target)
		}
		continue
	fresh:
		m = NewMergerOrdered(sets, order)
		m.SkipTo(target)
		if got := drain(m); !sameEvents(got, want) {
			t.Fatalf("trial %d: SkipTo(%d) from start diverged", trial, target)
		}
	}
}

func sameEvents(a, b []IDEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Scan-merge SLCA (ELCA stack merge + minimal filter) must equal the
// indexed-eager SLCA on arbitrary inputs — the equivalence the planner's
// strategy choice rests on.
func TestSLCAScanMergeMatchesIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(5)
		tab, sets := randomIDSets(rng, 20+rng.Intn(250), k)
		want := SLCAIDs(tab, sets)
		var order []int
		if rng.Intn(2) == 0 {
			order = rng.Perm(k)
		}
		got, err := SLCAScanMergeIDsCtx(context.Background(), tab, sets, order)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d SLCAs, want %d (got %v want %v)", trial, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SLCA %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// The ordered ELCA merge must be output-identical to the query-order merge.
func TestELCAOrderedMatchesUnordered(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		tab, sets := randomIDSets(rng, 20+rng.Intn(250), k)
		want := ELCAStackMergeIDs(tab, sets)
		got, err := ELCAStackMergeIDsOrderedCtx(context.Background(), tab, sets, rng.Perm(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d ELCAs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ELCA %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}
