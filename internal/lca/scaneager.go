package lca

import "xks/internal/dewey"

// SLCAScanEager computes the smallest LCA set with the Scan Eager strategy
// of Xu & Papakonstantinou (SIGMOD 2005): a single merge scan over all
// posting lists in document order, emitting a candidate whenever the
// running LCA window closes, then removing non-minimal candidates. It is
// preferable to the indexed variant when the keyword frequencies are of
// similar magnitude; the engine uses SLCA (indexed lookup eager) by
// default and the two are property-tested equal.
func SLCAScanEager(sets [][]dewey.Code) []dewey.Code {
	if len(sets) == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}
	events := MergeSets(sets)

	// Sliding window over the merged stream: maintain, for each keyword,
	// the most recent occurrence; when all keywords have been seen, the
	// LCA of the current "closest" occurrence set is a candidate. A
	// linear scan with per-keyword last-seen codes reproduces Scan Eager's
	// behaviour without the original paper's cursor bookkeeping.
	last := make([]dewey.Code, len(sets))
	var candidates []dewey.Code
	for _, ev := range events {
		for i := range sets {
			if ev.Mask&(1<<uint(i)) != 0 {
				last[i] = ev.Code
			}
		}
		ready := true
		var acc dewey.Code
		for i := range last {
			if last[i] == nil {
				ready = false
				break
			}
			if acc == nil {
				acc = last[i].Clone()
			} else {
				acc = dewey.LCA(acc, last[i])
			}
		}
		if ready && acc != nil {
			candidates = append(candidates, acc)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	dewey.Sort(candidates)
	candidates = dewey.Dedup(candidates)
	return removeAncestors(candidates)
}
