package lca

import (
	"math/rand"
	"testing"

	"xks/internal/dewey"
)

// SLCAScanEager agrees with the naive definition over thousands of random
// inputs.
func TestScanEagerAgreesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 3000; trial++ {
		k := 1 + rng.Intn(4)
		sets := randomSets(rng, k)
		got := SLCAScanEager(sets)
		want := SLCANaive(sets)
		assertSame(t, trial, "ScanEager vs naive", got, want, sets)
	}
}

func TestScanEagerPaperQueries(t *testing.T) {
	sets := setsFor(t, "Liu keyword", true)
	wantCodes(t, SLCAScanEager(sets), "0.2.0.3.0")
	sets = setsFor(t, "VLDB title XML keyword search", true)
	wantCodes(t, SLCAScanEager(sets), "0")
}

func TestScanEagerEmpty(t *testing.T) {
	if SLCAScanEager(nil) != nil {
		t.Error("nil input")
	}
	if SLCAScanEager([][]dewey.Code{{dewey.MustParse("0.1")}, {}}) != nil {
		t.Error("empty posting list should give nil")
	}
}

func BenchmarkSLCAScanEager(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sets := benchmarkSets(rng, 3, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SLCAScanEager(sets)
	}
}
