package lca

import (
	"math/rand"
	"testing"

	"xks/internal/nid"
	"xks/internal/postings"
)

// randSets builds k random strictly increasing posting lists.
func randSets(r *rand.Rand, k int) [][]nid.ID {
	sets := make([][]nid.ID, k)
	for i := range sets {
		n := 1 + r.Intn(400)
		ids := make([]nid.ID, 0, n)
		cur := int64(r.Intn(4))
		for j := 0; j < n; j++ {
			ids = append(ids, nid.ID(cur))
			cur += 1 + int64(r.Intn(6))
		}
		sets[i] = ids
	}
	return sets
}

func compressedSources(t *testing.T, sets [][]nid.ID) []Source {
	t.Helper()
	srcs := make([]Source, len(sets))
	for i, ids := range sets {
		l, err := postings.FromBytes(postings.Encode(ids))
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = l.Iterator()
	}
	return srcs
}

// TestMergerSourcesMatchesSlices pins the srcs-backed merger byte-identical
// to the slice-backed one over the same lists: postings.Iterator is the
// Source implementation the disk-native store feeds the k-way merge.
func TestMergerSourcesMatchesSlices(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		k := 1 + r.Intn(6)
		sets := randSets(r, k)
		var order []int
		if trial%2 == 1 {
			order = r.Perm(k)
		}
		ref := NewMergerOrdered(sets, order)
		got := NewMergerSources(compressedSources(t, sets), order)
		for {
			we, wok := ref.Next()
			ge, gok := got.Next()
			if wok != gok {
				t.Fatalf("trial %d: stream length mismatch", trial)
			}
			if !wok {
				break
			}
			if we != ge {
				t.Fatalf("trial %d: event %+v != %+v", trial, ge, we)
			}
		}
	}
}

// TestMergerSourcesSkipTo pins SkipTo over compressed sources against the
// slice-backed merger under an identical skip schedule — the subtree
// galloping pattern the RTF dispatch uses.
func TestMergerSourcesSkipTo(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		k := 1 + r.Intn(5)
		sets := randSets(r, k)
		order := r.Perm(k)
		ref := NewMergerOrdered(sets, order)
		got := NewMergerSources(compressedSources(t, sets), order)
		for step := 0; ; step++ {
			if step%3 == 2 {
				// Skip both mergers to the same target past the current head.
				we, wok := ref.Next()
				ge, gok := got.Next()
				if wok != gok || (wok && we != ge) {
					t.Fatalf("trial %d: pre-skip event mismatch", trial)
				}
				if !wok {
					break
				}
				target := we.ID + nid.ID(r.Intn(40))
				ref.SkipTo(target)
				got.SkipTo(target)
				continue
			}
			we, wok := ref.Next()
			ge, gok := got.Next()
			if wok != gok {
				t.Fatalf("trial %d: stream length mismatch at step %d", trial, step)
			}
			if !wok {
				break
			}
			if we != ge {
				t.Fatalf("trial %d: event %+v != %+v", trial, ge, we)
			}
		}
	}
}
