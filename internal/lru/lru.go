// Package lru provides the sharded, generation-aware LRU cache behind the
// serving layer's query-result cache (internal/service).
//
// Keys are strings; the cache is split into power-of-two shards, each with
// its own lock, so concurrent readers on different keys rarely contend.
// Every entry carries the data generation it was computed against; a Get
// with a newer generation treats the entry as stale, evicts it, and
// reports a miss — the invalidation mechanism that lets Engine.AppendXML
// retire cached results without the cache knowing anything about engines.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a sharded LRU cache from string keys to values of type V.
// All methods are safe for concurrent use.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64
}

type shard[V any] struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type entry[V any] struct {
	key string
	gen uint64
	val V
}

// New builds a cache holding at most capacity entries in total, split over
// shards locks (rounded up to a power of two; <=0 picks 16). capacity
// must be positive; each shard holds at least one entry. The bound is
// enforced per shard (capacity distributed exactly across shards), so a
// skewed key distribution can make a hot shard evict before the cache as
// a whole is full.
func New[V any](capacity, shards int) *Cache[V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	n := nextPow2(shards)
	if n > capacity {
		n = nextPow2(capacity) / 2
		if n < 1 {
			n = 1
		}
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = capacity / n
		if i < capacity%n {
			c.shards[i].cap++
		}
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func nextPow2(n int) int {
	if n <= 0 {
		return 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fnv1a hashes the key for shard selection.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the value cached under key if it exists and was stored at
// exactly generation gen; a generation mismatch evicts the stale entry and
// reports a miss.
func (c *Cache[V]) Get(key string, gen uint64) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	ent := el.Value.(*entry[V])
	if ent.gen != gen {
		s.order.Remove(el)
		delete(s.items, key)
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	return ent.val, true
}

// Put stores val under key, tagged with the generation it was computed
// against, evicting the least recently used entry of the shard when full.
func (c *Cache[V]) Put(key string, gen uint64, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*entry[V])
		ent.gen, ent.val = gen, val
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&entry[V]{key: key, gen: gen, val: val})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*entry[V]).key)
	}
}

// Len reports the number of live entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry.
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}
