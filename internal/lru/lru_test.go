package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](8, 1)
	if _, ok := c.Get("a", 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 0, 1)
	if v, ok := c.Get("a", 0); !ok || v != 1 {
		t.Fatalf("Get = %d, %t", v, ok)
	}
	c.Put("a", 0, 2) // update in place
	if v, _ := c.Get("a", 0); v != 2 {
		t.Fatalf("updated value = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int](2, 1)
	c.Put("a", 0, 1)
	c.Put("b", 0, 2)
	c.Get("a", 0)    // a is now most recent
	c.Put("c", 0, 3) // evicts b
	if _, ok := c.Get("b", 0); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a", 0); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c", 0); !ok {
		t.Error("c should be present")
	}
}

func TestGenerationMismatchEvicts(t *testing.T) {
	c := New[string](8, 2)
	c.Put("k", 1, "v1")
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("stale generation should miss")
	}
	// The stale entry is gone even for the original generation.
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("stale entry should have been evicted")
	}
	c.Put("k", 2, "v2")
	if v, ok := c.Get("k", 2); !ok || v != "v2" {
		t.Fatalf("Get = %q, %t", v, ok)
	}
}

func TestCapacityAcrossShards(t *testing.T) {
	for _, capacity := range []int{64, 100, 7} {
		c := New[int](capacity, 8)
		for i := 0; i < 1000; i++ {
			c.Put(fmt.Sprintf("key-%d", i), 0, i)
		}
		if n := c.Len(); n > capacity {
			t.Errorf("capacity %d: Len = %d", capacity, n)
		}
	}
}

func TestShardRounding(t *testing.T) {
	// Shard count must not exceed capacity, and odd shard requests round
	// up to a power of two.
	for _, tc := range []struct{ capacity, shards int }{{1, 16}, {3, 5}, {100, 0}, {7, 7}} {
		c := New[int](tc.capacity, tc.shards)
		n := len(c.shards)
		if n&(n-1) != 0 {
			t.Errorf("New(%d,%d): %d shards, not a power of two", tc.capacity, tc.shards, n)
		}
		c.Put("x", 0, 1)
		if _, ok := c.Get("x", 0); !ok {
			t.Errorf("New(%d,%d): basic get failed", tc.capacity, tc.shards)
		}
	}
}

func TestPurge(t *testing.T) {
	c := New[int](8, 2)
	c.Put("a", 0, 1)
	c.Put("b", 0, 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get("a", 0); ok {
		t.Error("purged entry still present")
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int](128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", i%50)
				c.Put(key, uint64(i%3), i)
				c.Get(key, uint64(i%3))
				if i%100 == 0 {
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}
