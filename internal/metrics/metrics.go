// Package metrics implements the effectiveness ratios of §5.1 of the paper,
// comparing the fragments kept by ValidRTF (va) against those kept by the
// revised MaxMatch (xa) for the same interesting LCA nodes:
//
//   - CFR (common fragment ratio): |V∩X| / |A| — the share of fragments on
//     which both mechanisms agree exactly.
//   - APR (average pruning ratio): the mean, over the differing fragments,
//     of |xa−va| / |xa| — how much of each MaxMatch fragment ValidRTF prunes
//     further.
//   - Max APR: the largest per-fragment pruning ratio (the paper's "extreme
//     RTF", usually the fragment rooted near the document root).
//   - APR′: the APR recomputed after discarding the extreme fragment,
//     highlighting the pruning on regular fragments.
package metrics

import "xks/internal/dewey"

// FragmentPair holds, for one interesting LCA node, the node sets kept by
// the two mechanisms as pre-order-sorted code slices (the form pruning
// produces), so the set comparisons below are merge walks with no maps.
type FragmentPair struct {
	Root  dewey.Code
	Valid []dewey.Code // va: kept by ValidRTF, pre-order sorted
	Max   []dewey.Code // xa: kept by MaxMatch, pre-order sorted
}

// equalSets reports whether the two fragments kept exactly the same nodes.
func (p *FragmentPair) equalSets() bool {
	if len(p.Valid) != len(p.Max) {
		return false
	}
	for i := range p.Valid {
		if !dewey.Equal(p.Valid[i], p.Max[i]) {
			return false
		}
	}
	return true
}

// PruneRatio returns |xa − va| / |xa|: the share of MaxMatch's fragment
// that ValidRTF discards further. Zero when MaxMatch's fragment is empty.
func (p *FragmentPair) PruneRatio() float64 {
	if len(p.Max) == 0 {
		return 0
	}
	extra, i := 0, 0
	for _, x := range p.Max {
		for i < len(p.Valid) && dewey.Compare(p.Valid[i], x) < 0 {
			i++
		}
		if i >= len(p.Valid) || !dewey.Equal(p.Valid[i], x) {
			extra++
		}
	}
	return float64(extra) / float64(len(p.Max))
}

// Ratios aggregates the §5.1 effectiveness measures for one query.
type Ratios struct {
	// NumRTFs is |A|, the number of interesting LCA nodes / fragments.
	NumRTFs int
	// NumCommon is |V∩X|, the number of identical fragments.
	NumCommon int
	// CFR is NumCommon / NumRTFs (1 when there are no fragments).
	CFR float64
	// APR is the average pruning ratio over the differing fragments.
	APR float64
	// MaxAPR is the largest per-fragment pruning ratio.
	MaxAPR float64
	// APRPrime is the APR after discarding the extreme fragment.
	APRPrime float64
}

// Compute derives the ratios from the per-fragment pairs.
func Compute(pairs []FragmentPair) Ratios {
	r := Ratios{NumRTFs: len(pairs)}
	if len(pairs) == 0 {
		r.CFR = 1
		return r
	}
	var (
		diffRatios []float64
		maxRatio   float64
		maxIdx     = -1
	)
	for i := range pairs {
		if pairs[i].equalSets() {
			r.NumCommon++
			continue
		}
		ratio := pairs[i].PruneRatio()
		diffRatios = append(diffRatios, ratio)
		if maxIdx < 0 || ratio > maxRatio {
			maxRatio = ratio
			maxIdx = len(diffRatios) - 1
		}
	}
	r.CFR = float64(r.NumCommon) / float64(r.NumRTFs)
	if len(diffRatios) == 0 {
		return r
	}
	sum := 0.0
	for _, x := range diffRatios {
		sum += x
	}
	r.APR = sum / float64(len(diffRatios))
	r.MaxAPR = maxRatio
	if len(diffRatios) > 1 {
		r.APRPrime = (sum - maxRatio) / float64(len(diffRatios)-1)
	}
	return r
}
