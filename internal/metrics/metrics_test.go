package metrics

import (
	"math"
	"testing"

	"xks/internal/dewey"
)

func set(codes ...string) []dewey.Code {
	out := make([]dewey.Code, 0, len(codes))
	for _, c := range codes {
		out = append(out, dewey.MustParse(c))
	}
	dewey.Sort(out)
	return out
}

func pair(root string, valid, max []dewey.Code) FragmentPair {
	return FragmentPair{Root: dewey.MustParse(root), Valid: valid, Max: max}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestComputeEmpty(t *testing.T) {
	r := Compute(nil)
	if r.CFR != 1 || r.APR != 0 || r.MaxAPR != 0 || r.APRPrime != 0 {
		t.Errorf("empty ratios = %+v", r)
	}
}

func TestAllEqual(t *testing.T) {
	s := set("0", "0.1")
	r := Compute([]FragmentPair{pair("0", s, s), pair("1", set("1"), set("1"))})
	if r.CFR != 1 || r.NumCommon != 2 || r.NumRTFs != 2 {
		t.Errorf("ratios = %+v", r)
	}
	if r.APR != 0 || r.MaxAPR != 0 {
		t.Errorf("APR should be 0: %+v", r)
	}
}

func TestSingleDiffering(t *testing.T) {
	// MaxMatch kept 4 nodes, ValidRTF kept 3 of them: ratio 1/4.
	valid := set("0", "0.0", "0.1")
	max := set("0", "0.0", "0.1", "0.2")
	r := Compute([]FragmentPair{pair("0", valid, max)})
	if r.NumRTFs != 1 || r.NumCommon != 0 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if !approx(r.CFR, 0) || !approx(r.APR, 0.25) || !approx(r.MaxAPR, 0.25) {
		t.Errorf("ratios = %+v", r)
	}
	// Only one differing fragment: APR' is 0 by definition.
	if r.APRPrime != 0 {
		t.Errorf("APRPrime = %v, want 0", r.APRPrime)
	}
}

func TestExtremeDiscardedInAPRPrime(t *testing.T) {
	// Two differing fragments: ratios 0.5 (extreme) and 0.25.
	p1 := pair("0", set("0"), set("0", "0.1"))                             // 1/2
	p2 := pair("1", set("1", "1.0", "1.1"), set("1", "1.0", "1.1", "1.2")) // 1/4
	same := pair("2", set("2"), set("2"))
	r := Compute([]FragmentPair{p1, p2, same})
	if r.NumRTFs != 3 || r.NumCommon != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if !approx(r.CFR, 1.0/3) {
		t.Errorf("CFR = %v", r.CFR)
	}
	if !approx(r.MaxAPR, 0.5) {
		t.Errorf("MaxAPR = %v", r.MaxAPR)
	}
	if !approx(r.APR, (0.5+0.25)/2) {
		t.Errorf("APR = %v", r.APR)
	}
	if !approx(r.APRPrime, 0.25) {
		t.Errorf("APRPrime = %v", r.APRPrime)
	}
}

// Fragments can differ with a zero pruning ratio when ValidRTF keeps a
// superset of MaxMatch (the false-positive fix). CFR drops, APR stays 0.
func TestValidKeepsMoreThanMax(t *testing.T) {
	p := pair("0", set("0", "0.0", "0.1"), set("0", "0.0"))
	r := Compute([]FragmentPair{p})
	if r.CFR != 0 {
		t.Errorf("CFR = %v", r.CFR)
	}
	if r.APR != 0 || r.MaxAPR != 0 {
		t.Errorf("APR should be 0 when nothing is pruned further: %+v", r)
	}
}

func TestPruneRatioEmptyMax(t *testing.T) {
	p := pair("0", set("0"), nil)
	if p.PruneRatio() != 0 {
		t.Error("PruneRatio on empty Max should be 0")
	}
}

func TestEqualSetsAsymmetry(t *testing.T) {
	p := pair("0", set("0", "0.1"), set("0", "0.2"))
	if p.equalSets() {
		t.Error("sets with equal size but different members reported equal")
	}
}
