// Package nid compiles a document's Dewey-coded node set into a flat node
// table with dense document-order (pre-order) int32 IDs — the node-ID layer
// under the query pipeline.
//
// A Table stores, per node, its parent ID, its depth and the offset of its
// Dewey code inside a single shared []uint32 arena. Posting lists over IDs
// cost 4 bytes per entry (instead of a 24-byte slice header plus backing
// array per dewey.Code), pre-order comparison is integer comparison, and
// LCA/ancestor tests are short parent-chain walks that allocate nothing.
// Code(id) returns the node's Dewey code as a zero-copy sub-slice of the
// arena, so converting back to dewey.Code at the public API boundary is
// free. The design follows the node-numbering used by the Indexed Stack /
// DIL-style XML keyword systems (Xu & Papakonstantinou EDBT 2008, XRank).
//
// A Table is immutable during searches; Insert (used by the engine's append
// path) renumbers IDs and must be externally synchronized with readers,
// like the index it backs.
package nid

import (
	"fmt"

	"xks/internal/dewey"
)

// ID is a dense pre-order node identifier within one document's Table.
type ID int32

// None is the null ID (no parent, no node).
const None ID = -1

// Table is the flat node table: parallel parent/depth/offset columns over a
// shared Dewey arena. Node IDs are dense and assigned in pre-order, so
// id(a) < id(b) exactly when a precedes b in document order.
type Table struct {
	parent []ID
	depth  []int32 // root is depth 0; code length is depth+1
	off    []uint32
	arena  []uint32
}

// Len returns the number of nodes in the table.
func (t *Table) Len() int { return len(t.parent) }

// Code returns the node's Dewey code as a zero-copy sub-slice of the arena.
// Callers must not modify it.
func (t *Table) Code(i ID) dewey.Code {
	o := t.off[i]
	return dewey.Code(t.arena[o : o+uint32(t.depth[i])+1])
}

// Parent returns the node's parent ID, or None for a root.
func (t *Table) Parent(i ID) ID { return t.parent[i] }

// Depth returns the node's depth (root = 0).
func (t *Table) Depth(i ID) int32 { return t.depth[i] }

// AncestorAt returns the ancestor-or-self of i at depth d, or None when d
// exceeds the node's depth or the parent chain ends early.
func (t *Table) AncestorAt(i ID, d int32) ID {
	if d < 0 {
		return None
	}
	for i != None && t.depth[i] > d {
		i = t.parent[i]
	}
	if i == None || t.depth[i] != d {
		return None
	}
	return i
}

// IsAncestorOrSelf reports whether a is an ancestor of b or b itself.
func (t *Table) IsAncestorOrSelf(a, b ID) bool {
	return t.AncestorAt(b, t.depth[a]) == a
}

// IsAncestorOf reports whether a is a proper ancestor of b.
func (t *Table) IsAncestorOf(a, b ID) bool {
	return a != b && t.IsAncestorOrSelf(a, b)
}

// SubtreeEnd returns the ID one past the last descendant of i: because IDs
// are assigned in pre-order, i's subtree occupies exactly the contiguous
// range [i, SubtreeEnd(i)). Found by binary search over the monotone
// predicate "is no longer inside i's subtree".
func (t *Table) SubtreeEnd(i ID) ID {
	lo, hi := int(i)+1, len(t.parent)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.IsAncestorOrSelf(i, ID(mid)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ID(lo)
}

// LCA returns the lowest common ancestor of a and b (a or b itself when one
// contains the other), or None when the nodes sit under distinct roots.
func (t *Table) LCA(a, b ID) ID {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a, b = t.parent[a], t.parent[b]
		if a == None || b == None {
			return None
		}
	}
	return a
}

// LCADepth returns the depth of LCA(a, b), or -1 when there is none.
func (t *Table) LCADepth(a, b ID) int32 {
	l := t.LCA(a, b)
	if l == None {
		return -1
	}
	return t.depth[l]
}

// Find locates the node with the given Dewey code by binary search over the
// pre-order table.
func (t *Table) Find(c dewey.Code) (ID, bool) {
	i := t.searchGE(c)
	if i < len(t.parent) && dewey.Equal(t.Code(ID(i)), c) {
		return ID(i), true
	}
	return None, false
}

// searchGE returns the index of the first node whose code is >= c.
func (t *Table) searchGE(c dewey.Code) int {
	lo, hi := 0, len(t.parent)
	for lo < hi {
		mid := (lo + hi) / 2
		if dewey.Compare(t.Code(ID(mid)), c) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds the node with code c (and any missing ancestors) to the
// table, renumbering the IDs of every node at or after each insertion
// point. It returns the node's ID and the insertion positions of the newly
// created nodes in creation order (shallowest first); each position is the
// ID the node received at the moment it was inserted, so a caller keeping
// external ID references (e.g. posting lists) replays the same shifts by
// incrementing every stored ID >= pos once per created position, in order.
// When the code is already present, created is empty.
//
// Insert must not run concurrently with readers.
func (t *Table) Insert(c dewey.Code) (id ID, created []ID) {
	parent := None
	for l := 1; l <= len(c); l++ {
		prefix := c[:l]
		pos := t.searchGE(prefix)
		if pos < len(t.parent) && dewey.Equal(t.Code(ID(pos)), prefix) {
			parent = ID(pos)
			continue
		}
		t.insertAt(pos, prefix, parent)
		created = append(created, ID(pos))
		parent = ID(pos)
	}
	return parent, created
}

// insertAt splices one node into position pos. The parent, being a proper
// prefix, always precedes pos and is unaffected by the shift.
func (t *Table) insertAt(pos int, c dewey.Code, parent ID) {
	off := uint32(len(t.arena))
	t.arena = append(t.arena, c...)
	t.parent = append(t.parent, 0)
	copy(t.parent[pos+1:], t.parent[pos:])
	t.parent[pos] = parent
	t.depth = append(t.depth, 0)
	copy(t.depth[pos+1:], t.depth[pos:])
	t.depth[pos] = int32(len(c) - 1)
	t.off = append(t.off, 0)
	copy(t.off[pos+1:], t.off[pos:])
	t.off[pos] = off
	for i := range t.parent {
		if i != pos && t.parent[i] >= ID(pos) {
			t.parent[i]++
		}
	}
}

// Builder assembles a Table from codes fed in pre-order. Missing ancestors
// are synthesized, so any pre-order code stream yields an ancestor-closed
// table. Adding a code equal to the previous one returns the existing ID.
type Builder struct {
	t    Table
	prev dewey.Code
	path []ID // path[d] = ID of the current rightmost node at depth d
}

// NewBuilder returns a Builder with capacity hints for n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{t: Table{
		parent: make([]ID, 0, n),
		depth:  make([]int32, 0, n),
		off:    make([]uint32, 0, n),
	}}
}

// Add appends the node with code c, synthesizing any ancestors not yet
// present, and returns its ID. Codes must arrive in pre-order (equal to or
// after the previously added code); Add panics otherwise, since a
// mis-ordered stream would silently break the dense-ID invariant.
func (b *Builder) Add(c dewey.Code) ID {
	if len(c) == 0 {
		return None
	}
	cmp := dewey.Compare(b.prev, c)
	if cmp > 0 {
		panic("nid: Builder.Add called with out-of-order code " + c.String())
	}
	if cmp == 0 {
		return ID(len(b.t.parent) - 1)
	}
	cp := dewey.CommonPrefixLen(b.prev, c)
	for l := cp + 1; l <= len(c); l++ {
		id := ID(len(b.t.parent))
		parent := None
		if l >= 2 {
			parent = b.path[l-2]
		}
		b.t.parent = append(b.t.parent, parent)
		b.t.depth = append(b.t.depth, int32(l-1))
		b.t.off = append(b.t.off, uint32(len(b.t.arena)))
		b.t.arena = append(b.t.arena, c[:l]...)
		if len(b.path) < l {
			b.path = append(b.path, id)
		} else {
			b.path[l-1] = id
		}
	}
	b.prev = b.t.Code(ID(len(b.t.parent) - 1))
	return ID(len(b.t.parent) - 1)
}

// Table finalizes and returns the built table. The Builder must not be used
// afterwards.
func (b *Builder) Table() *Table { return &b.t }

// Columns exposes the table's parallel columns and the shared Dewey arena
// for serialization (the store's v3 writer persists them verbatim). The
// slices are the table's own backing arrays; callers must not modify them.
func (t *Table) Columns() (parent []ID, depth []int32, off, arena []uint32) {
	return t.parent, t.depth, t.off, t.arena
}

// FromColumns adopts pre-built columns without copying — the store's v3
// zero-copy load path, where the slices view an mmap-ed (or heap-loaded)
// file section. It validates the structural invariants every table
// operation relies on for memory safety — column lengths agree, parents
// precede their children with depth parent+1, roots sit at depth 0, and
// every code window stays inside the arena — so a table built from
// CRC-valid but adversarial bytes can return wrong answers, never index
// out of bounds. Deeper semantic invariants (pre-order code ordering) are
// not checked; they cost a full scan and only affect result correctness.
//
// Tables adopted this way must not be mutated via Insert while the backing
// memory is shared; Insert's append-based splicing would reallocate, which
// is safe, but the renumbering pass writes into the parent column in place.
func FromColumns(parent []ID, depth []int32, off, arena []uint32) (*Table, error) {
	n := len(parent)
	if len(depth) != n || len(off) != n {
		return nil, fmt.Errorf("nid: column lengths disagree: parent %d, depth %d, off %d", n, len(depth), len(off))
	}
	for i := 0; i < n; i++ {
		p := parent[i]
		switch {
		case p == None:
			if depth[i] != 0 {
				return nil, fmt.Errorf("nid: root node %d has depth %d", i, depth[i])
			}
		case p < 0 || int(p) >= i:
			return nil, fmt.Errorf("nid: node %d has invalid parent %d", i, p)
		case depth[i] != depth[p]+1:
			return nil, fmt.Errorf("nid: node %d depth %d under parent depth %d", i, depth[i], depth[p])
		}
		end := uint64(off[i]) + uint64(depth[i]) + 1
		if end > uint64(len(arena)) {
			return nil, fmt.Errorf("nid: node %d code window [%d,%d) exceeds arena length %d", i, off[i], end, len(arena))
		}
	}
	return &Table{parent: parent, depth: depth, off: off, arena: arena}, nil
}

// FromCodes builds a Table from an arbitrary set of codes: the input is
// copied, sorted, deduplicated and ancestor-closed. The returned table
// never aliases the caller's slices.
func FromCodes(codes []dewey.Code) *Table {
	sorted := make([]dewey.Code, len(codes))
	copy(sorted, codes)
	dewey.Sort(sorted)
	b := NewBuilder(len(sorted))
	for _, c := range sorted {
		b.Add(c)
	}
	return b.Table()
}
