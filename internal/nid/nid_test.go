package nid

import (
	"math/rand"
	"testing"

	"xks/internal/dewey"
)

func codes(ss ...string) []dewey.Code {
	out := make([]dewey.Code, len(ss))
	for i, s := range ss {
		out[i] = dewey.MustParse(s)
	}
	return out
}

// TestFromCodesClosure: the table is the sorted ancestor closure of the
// input, with pre-order IDs, correct parents and depths, and zero-copy
// codes.
func TestFromCodesClosure(t *testing.T) {
	tab := FromCodes(codes("0.2.0.1", "0.0", "0.2.0.1", "0.1.3"))
	want := []string{"0", "0.0", "0.1", "0.1.3", "0.2", "0.2.0", "0.2.0.1"}
	if tab.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(want))
	}
	for i, w := range want {
		c := tab.Code(ID(i))
		if c.String() != w {
			t.Errorf("Code(%d) = %s, want %s", i, c, w)
		}
		if got := int(tab.Depth(ID(i))); got != len(c)-1 {
			t.Errorf("Depth(%d) = %d, want %d", i, got, len(c)-1)
		}
		if len(c) == 1 {
			if tab.Parent(ID(i)) != None {
				t.Errorf("root %s should have no parent", c)
			}
		} else if pc := tab.Code(tab.Parent(ID(i))); !pc.IsAncestorOf(c) || len(pc) != len(c)-1 {
			t.Errorf("Parent(%s) = %s", c, pc)
		}
	}
	for i, w := range want {
		id, ok := tab.Find(dewey.MustParse(w))
		if !ok || id != ID(i) {
			t.Errorf("Find(%s) = (%d, %v), want (%d, true)", w, id, ok, i)
		}
	}
	if _, ok := tab.Find(dewey.MustParse("0.9")); ok {
		t.Error("Find of absent code succeeded")
	}
}

// TestTableAgainstDeweyReference fuzzes LCA/ancestor operations against the
// dewey package's code-based implementations.
func TestTableAgainstDeweyReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var all []dewey.Code
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			depth := 1 + rng.Intn(5)
			c := make(dewey.Code, depth)
			c[0] = 0
			for j := 1; j < depth; j++ {
				c[j] = uint32(rng.Intn(3))
			}
			all = append(all, c)
		}
		tab := FromCodes(all)
		for i := 0; i < tab.Len(); i++ {
			for j := 0; j < tab.Len(); j++ {
				a, b := ID(i), ID(j)
				ca, cb := tab.Code(a), tab.Code(b)
				if got, want := tab.IsAncestorOrSelf(a, b), ca.IsAncestorOrSelf(cb); got != want {
					t.Fatalf("IsAncestorOrSelf(%s, %s) = %v, want %v", ca, cb, got, want)
				}
				if got, want := tab.IsAncestorOf(a, b), ca.IsAncestorOf(cb); got != want {
					t.Fatalf("IsAncestorOf(%s, %s) = %v, want %v", ca, cb, got, want)
				}
				wantLCA := dewey.LCA(ca, cb)
				gotID := tab.LCA(a, b)
				if gotID == None {
					if wantLCA != nil {
						t.Fatalf("LCA(%s, %s) = None, want %s", ca, cb, wantLCA)
					}
					continue
				}
				if !dewey.Equal(tab.Code(gotID), wantLCA) {
					t.Fatalf("LCA(%s, %s) = %s, want %s", ca, cb, tab.Code(gotID), wantLCA)
				}
				if tab.LCADepth(a, b) != int32(len(wantLCA)-1) {
					t.Fatalf("LCADepth(%s, %s) = %d, want %d", ca, cb, tab.LCADepth(a, b), len(wantLCA)-1)
				}
			}
		}
	}
}

// TestInsertRenumbers: splicing nodes mid-table shifts IDs exactly the way
// Insert reports, and keeps the table sorted and ancestor-closed.
func TestInsertRenumbers(t *testing.T) {
	tab := FromCodes(codes("0.0", "0.2"))
	before := tab.Len() // 0, 0.0, 0.2
	if before != 3 {
		t.Fatalf("Len = %d, want 3", before)
	}
	// Insert 0.1.0: creates 0.1 and 0.1.0 between 0.0 and 0.2.
	id, created := tab.Insert(dewey.MustParse("0.1.0"))
	if len(created) != 2 {
		t.Fatalf("created = %v, want two nodes", created)
	}
	if got := tab.Code(id).String(); got != "0.1.0" {
		t.Fatalf("inserted id resolves to %s", got)
	}
	want := []string{"0", "0.0", "0.1", "0.1.0", "0.2"}
	for i, w := range want {
		if got := tab.Code(ID(i)).String(); got != w {
			t.Fatalf("after insert, Code(%d) = %s, want %s", i, got, w)
		}
	}
	// Parents stay coherent after the shift.
	if p := tab.Parent(id); tab.Code(p).String() != "0.1" {
		t.Fatalf("parent of 0.1.0 = %s", tab.Code(p))
	}
	last, ok := tab.Find(dewey.MustParse("0.2"))
	if !ok || tab.Parent(last) != 0 {
		t.Fatalf("0.2 parent broken after shift: %v %v", last, tab.Parent(last))
	}
	// Re-inserting an existing code is a no-op.
	id2, created2 := tab.Insert(dewey.MustParse("0.1.0"))
	if id2 != id || len(created2) != 0 {
		t.Fatalf("re-insert: id %d created %v", id2, created2)
	}
}

// TestBuilderOutOfOrderPanics pins the dense-ID invariant guard.
func TestBuilderOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	b := NewBuilder(2)
	b.Add(dewey.MustParse("0.1"))
	b.Add(dewey.MustParse("0.0"))
}

// TestCodeZeroCopy: Code returns stable views into one shared arena, not
// per-call copies.
func TestCodeZeroCopy(t *testing.T) {
	tab := FromCodes(codes("0.0.1", "0.0.2"))
	a, _ := tab.Find(dewey.MustParse("0.0.1"))
	c1, c2 := tab.Code(a), tab.Code(a)
	if &c1[0] != &c2[0] {
		t.Error("Code should return the same arena view on every call")
	}
}
