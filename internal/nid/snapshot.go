package nid

// Snapshot-oriented table operations. The delta-index write path extends a
// table at its tail on shared backing arrays (Extend), and snapshot reads
// view a length-bounded prefix of a later header (Truncate). Together they
// give cheap structural sharing: one append allocates only the appended
// rows, and every previously published header — or any prefix view of one —
// stays a valid immutable table, because rows below a header's length are
// never rewritten.

import (
	"fmt"

	"xks/internal/dewey"
)

// Truncate returns a view of the table restricted to its first n nodes.
// The view shares backing arrays with t: because IDs are assigned in
// pre-order and Extend only adds rows at the tail, the first n rows of any
// later header describe exactly the nodes the table held when its length
// was n. Truncate(t.Len()) returns t itself.
func (t *Table) Truncate(n int) (*Table, error) {
	if n < 0 || n > len(t.parent) {
		return nil, fmt.Errorf("nid: truncate length %d outside [0, %d]", n, len(t.parent))
	}
	if n == len(t.parent) {
		return t, nil
	}
	// Full slice expressions cap the views at their length so an append
	// through a view can never write into a longer header's rows.
	return &Table{
		parent: t.parent[:n:n],
		depth:  t.depth[:n:n],
		off:    t.off[:n:n],
		arena:  t.arena,
	}, nil
}

// Extend returns a new Table header with the given codes appended at the
// tail, assigning them the next dense pre-order IDs, and reports the IDs
// assigned. Codes must arrive in strict pre-order and the first must sort
// after the table's current last code — the rightmost-spine append
// invariant: a subtree appended as the last child of a node P with
// SubtreeEnd(P) == Len() lands entirely at the tail, so no existing ID
// moves. Each code's parent (the code minus its last component) must
// already be present, in t or earlier in codes.
//
// The returned header shares backing arrays with t where capacity allows.
// t itself, and every earlier header or Truncate view, remains a valid
// immutable snapshot. Callers must serialize Extend calls and always
// extend the newest header; readers of older headers must not read past
// their own length (every Table method honors this by construction).
func (t *Table) Extend(codes []dewey.Code) (*Table, []ID, error) {
	if len(codes) == 0 {
		return t, nil, nil
	}
	nt := &Table{parent: t.parent, depth: t.depth, off: t.off, arena: t.arena}
	var prev dewey.Code
	if n := len(t.parent); n > 0 {
		prev = t.Code(ID(n - 1))
	}
	ids := make([]ID, 0, len(codes))
	for _, c := range codes {
		if len(c) == 0 {
			return nil, nil, fmt.Errorf("nid: extend with empty code")
		}
		if dewey.Compare(prev, c) >= 0 {
			return nil, nil, fmt.Errorf("nid: extend code %s does not follow %s in pre-order", c.String(), prev.String())
		}
		parent := None
		if len(c) > 1 {
			p, ok := nt.Find(c[:len(c)-1])
			if !ok {
				return nil, nil, fmt.Errorf("nid: extend code %s has no parent in table", c.String())
			}
			parent = p
		}
		ids = append(ids, ID(len(nt.parent)))
		nt.off = append(nt.off, uint32(len(nt.arena)))
		nt.arena = append(nt.arena, c...)
		nt.parent = append(nt.parent, parent)
		nt.depth = append(nt.depth, int32(len(c)-1))
		// prev may view the pre-reallocation arena after the next append;
		// that memory is immutable, so the comparison stays valid.
		prev = nt.Code(ID(len(nt.parent) - 1))
	}
	return nt, ids, nil
}
