package nid

import (
	"testing"

	"xks/internal/dewey"
)

// TestTruncateViewsPrefix: a truncated view exposes exactly the first n
// rows, with every structural query (parent, depth, code, subtree) intact,
// and shares backing with the original.
func TestTruncateViewsPrefix(t *testing.T) {
	full := FromCodes(codes("0", "0.0", "0.0.0", "0.1", "0.1.0"))
	v, err := full.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	for i := ID(0); i < 3; i++ {
		if got, want := v.Code(i).String(), full.Code(i).String(); got != want {
			t.Errorf("code %d = %s, want %s", i, got, want)
		}
		if v.Parent(i) != full.Parent(i) {
			t.Errorf("parent %d = %d, want %d", i, v.Parent(i), full.Parent(i))
		}
	}
	// The subtree of the root ends at the view's length, not the full
	// table's: the view must not see past its boundary.
	if end := v.SubtreeEnd(0); end != 3 {
		t.Errorf("view SubtreeEnd(root) = %d, want 3", end)
	}
	if _, ok := v.Find(dewey.MustParse("0.1")); ok {
		t.Error("view resolved a code past its boundary")
	}

	// Full-length truncation is the identity.
	same, err := full.Truncate(full.Len())
	if err != nil {
		t.Fatal(err)
	}
	if same != full {
		t.Error("Truncate(Len()) did not return the table itself")
	}

	// Out-of-range lengths fail.
	if _, err := full.Truncate(-1); err == nil {
		t.Error("Truncate(-1) did not fail")
	}
	if _, err := full.Truncate(full.Len() + 1); err == nil {
		t.Error("Truncate(Len()+1) did not fail")
	}
}

// TestExtendAppendsAtTail: Extend assigns dense tail IDs, resolves
// parents across the old/new boundary, and leaves earlier headers (and
// truncated views of the result) valid.
func TestExtendAppendsAtTail(t *testing.T) {
	base := FromCodes(codes("0", "0.0", "0.0.0"))
	oldLen := base.Len()
	ext, ids, err := base.Extend(codes("0.1", "0.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("assigned IDs = %v, want [3 4]", ids)
	}
	if ext.Len() != 5 {
		t.Fatalf("extended Len = %d, want 5", ext.Len())
	}
	if p := ext.Parent(3); p != 0 {
		t.Errorf("parent of 0.1 = %d, want 0 (resolved in the old rows)", p)
	}
	if p := ext.Parent(4); p != 3 {
		t.Errorf("parent of 0.1.0 = %d, want 3 (resolved among the new rows)", p)
	}
	// The pre-extend header still describes exactly the old table.
	if base.Len() != oldLen {
		t.Fatalf("base header grew to %d", base.Len())
	}
	if end := base.SubtreeEnd(0); end != ID(oldLen) {
		t.Errorf("base SubtreeEnd(root) = %d, want %d", end, oldLen)
	}
	// A truncated view of the extension at the old boundary matches base.
	v, err := ext.Truncate(oldLen)
	if err != nil {
		t.Fatal(err)
	}
	for i := ID(0); i < ID(oldLen); i++ {
		if v.Code(i).String() != base.Code(i).String() {
			t.Fatalf("truncated view diverges from pre-extend header at %d", i)
		}
	}
}

// TestExtendRejectsInvalid: empty codes, out-of-order codes, and codes
// whose parent does not exist are all rejected.
func TestExtendRejectsInvalid(t *testing.T) {
	base := FromCodes(codes("0", "0.0"))
	cases := map[string][]dewey.Code{
		"empty code":       {dewey.Code(nil)},
		"not after tail":   codes("0.0"),
		"descending order": codes("0.2", "0.1"),
		"orphan parent":    codes("0.5.0"),
	}
	for name, cs := range cases {
		if _, _, err := base.Extend(cs); err == nil {
			t.Errorf("%s: Extend accepted %v", name, cs)
		}
	}
	// The zero-length extend is the identity.
	nt, ids, err := base.Extend(nil)
	if err != nil || nt != base || ids != nil {
		t.Errorf("empty Extend = (%v, %v, %v), want identity", nt, ids, err)
	}
}
