package nid

import (
	"math/rand"
	"testing"

	"xks/internal/dewey"
)

func TestSubtreeEndRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		codes := randomCodeSet(rng, 1+rng.Intn(120))
		tab := FromCodes(codes)
		for i := 0; i < tab.Len(); i++ {
			end := tab.SubtreeEnd(ID(i))
			// Reference: linear scan for the first non-descendant.
			want := ID(tab.Len())
			for j := i + 1; j < tab.Len(); j++ {
				if !tab.IsAncestorOrSelf(ID(i), ID(j)) {
					want = ID(j)
					break
				}
			}
			if end != want {
				t.Fatalf("trial %d: SubtreeEnd(%d) = %d, want %d", trial, i, end, want)
			}
			// Every node in [i, end) is a descendant-or-self; end is not.
			for j := ID(i); j < end; j++ {
				if !tab.IsAncestorOrSelf(ID(i), j) {
					t.Fatalf("trial %d: node %d in range but not descendant of %d", trial, j, i)
				}
			}
		}
	}
}

func randomCodeSet(rng *rand.Rand, n int) []dewey.Code {
	codes := make([]dewey.Code, 0, n)
	for i := 0; i < n; i++ {
		depth := 1 + rng.Intn(5)
		c := make(dewey.Code, depth)
		for d := range c {
			c[d] = uint32(rng.Intn(3) + 1)
		}
		codes = append(codes, c)
	}
	return codes
}
