// Package paperdata reconstructs the two XML instances of Figure 1 of the
// paper and its sample keyword queries Q1–Q5. These drive the tests that
// reproduce Figures 2, 3 and 4 and Examples 1–7.
//
// The instances are reconstructed from the Dewey codes, labels and keyword
// assignments quoted throughout the paper:
//
//   - Figure 1(a), the "Publications" instance: node 0.0 is a title node with
//     text "VLDB" (it is a keyword node for both "VLDB" and "title" in Q3);
//     node 0.2 holds two articles. Article 0.2.0 has authors/title/abstract/
//     references with the keyword placement of Examples 3 and 6; article
//     0.2.1 is the Skyline paper of Example 2 with authors Wong and Fu.
//   - Figure 1(b):(1), the basketball segment from [1]: a team "Grizzlies"
//     with three players; player 0.1.0 is Gassol (forward), 0.1.1 a guard and
//     0.1.2 another forward, giving MaxMatch its redundancy problem on Q4.
package paperdata

import "xks/internal/xmltree"

// Queries of Figure 1(b):(2), reconstructed from Examples 1, 2 and 5.
const (
	Q1 = "Wong Fu Dynamic Skyline Query"
	Q2 = "Liu keyword"
	Q3 = "VLDB title XML keyword search"
	Q4 = "Grizzlies position"
	// Q5 includes "Grizzlies": Example 2's narrative (players 0.1.1 and
	// 0.1.2 discarded as contributors, result showing Gassol in the team
	// Grizzlies) requires the fragment to be rooted at the team node, which
	// only happens when the team name is part of the query.
	Q5 = "Grizzlies Gassol position"
	// QLiuKeyword is the query of Examples 3 and 4 ("Liu Keyword"); it
	// coincides with Q2.
	QLiuKeyword = "Liu Keyword"
)

// Publications returns the Figure 1(a) instance.
//
// Dewey layout (matching every code quoted in the paper):
//
//	0           Publications
//	0.0         title   "VLDB"
//	0.1         year    "2008"
//	0.2         Articles
//	0.2.0       article
//	0.2.0.0     authors
//	0.2.0.0.0   author
//	0.2.0.0.0.0 name     "Zhen Liu"
//	0.2.0.1     title    "Match Relevant XML Keyword Search"
//	0.2.0.2     abstract "... keyword ... XML ... search ..."
//	0.2.0.3     references
//	0.2.0.3.0   ref      "Liu ... XML keyword search ..."
//	0.2.1       article
//	0.2.1.0     authors
//	0.2.1.0.0   author
//	0.2.1.0.0.0 name     "Raymond Wong"
//	0.2.1.0.1   author
//	0.2.1.0.1.0 name     "Ada Fu"
//	0.2.1.1     title    "Efficient Skyline Query with Variable User Preferences on Nominal Attributes"
//	0.2.1.2     abstract "Dynamic Skyline Query ..."
func Publications() *xmltree.Tree {
	return xmltree.Build(xmltree.E{Label: "Publications", Kids: []xmltree.E{
		{Label: "title", Text: "VLDB"},
		{Label: "year", Text: "2008"},
		{Label: "Articles", Kids: []xmltree.E{
			{Label: "article", Kids: []xmltree.E{
				{Label: "authors", Kids: []xmltree.E{
					{Label: "author", Kids: []xmltree.E{
						{Label: "name", Text: "Zhen Liu"},
					}},
				}},
				{Label: "title", Text: "Match Relevant XML Keyword Search"},
				{Label: "abstract", Text: "We study keyword search over XML data and identify relevant matches."},
				{Label: "references", Kids: []xmltree.E{
					{Label: "ref", Text: "Z. Liu and Y. Chen. Reasoning and identifying relevant matches for XML keyword search."},
				}},
			}},
			{Label: "article", Kids: []xmltree.E{
				{Label: "authors", Kids: []xmltree.E{
					{Label: "author", Kids: []xmltree.E{
						{Label: "name", Text: "Raymond Wong"},
					}},
					{Label: "author", Kids: []xmltree.E{
						{Label: "name", Text: "Ada Fu"},
					}},
				}},
				{Label: "title", Text: "Efficient Skyline Query with Variable User Preferences on Nominal Attributes"},
				{Label: "abstract", Text: "Dynamic Skyline Query processing under changing preferences."},
			}},
		}},
	}})
}

// Team returns the Figure 1(b):(1) segment borrowed from [1] (Liu & Chen).
//
// Dewey layout:
//
//	0         team
//	0.0       name    "Grizzlies"
//	0.1       players
//	0.1.0     player
//	0.1.0.0   name     "Gassol"
//	0.1.0.1   position "forward"
//	0.1.1     player
//	0.1.1.0   name     "Miller"
//	0.1.1.1   position "guard"
//	0.1.2     player
//	0.1.2.0   name     "Warrick"
//	0.1.2.1   position "forward"
func Team() *xmltree.Tree {
	return xmltree.Build(xmltree.E{Label: "team", Kids: []xmltree.E{
		{Label: "name", Text: "Grizzlies"},
		{Label: "players", Kids: []xmltree.E{
			{Label: "player", Kids: []xmltree.E{
				{Label: "name", Text: "Gassol"},
				{Label: "position", Text: "forward"},
			}},
			{Label: "player", Kids: []xmltree.E{
				{Label: "name", Text: "Miller"},
				{Label: "position", Text: "guard"},
			}},
			{Label: "player", Kids: []xmltree.E{
				{Label: "name", Text: "Warrick"},
				{Label: "position", Text: "forward"},
			}},
		}},
	}})
}
