// Package planner implements the cost-based query planner: it aggregates
// per-index statistics collected at build time, estimates the cost of the
// two SLCA evaluation strategies the engine implements, and decides — per
// query — which strategy to run and in which order the posting lists should
// feed the k-way merge.
//
// The planner never changes answers. Both strategies are proven (and
// property-tested) to produce identical results, and the rarest-first merge
// order is a pure leaf permutation of the loser tree whose coalesced event
// stream is independent of term order. The decision therefore only moves
// work around; crosscheck tests pin byte-identical fragments between Auto
// and every fixed strategy.
package planner

import (
	"math"
	"strconv"
)

// Strategy selects how the LCA stage evaluates a query.
type Strategy int

const (
	// Auto lets the planner resolve the strategy from index statistics.
	Auto Strategy = iota
	// IndexedEager drives evaluation from the rarest posting list using
	// indexed lookups into the other lists (the paper's Indexed Lookup
	// Eager algorithm). Wins when list sizes are skewed: cost is governed
	// by the smallest list, not the sum.
	IndexedEager
	// ScanMerge streams every posting list through the k-way loser-tree
	// merge (the paper's Scan Eager family). Wins when the keyword
	// frequencies are of similar magnitude: one cheap pass over the data
	// beats per-occurrence binary searches.
	ScanMerge
)

func (s Strategy) String() string {
	switch s {
	case IndexedEager:
		return "IndexedEager"
	case ScanMerge:
		return "ScanMerge"
	default:
		return "Auto"
	}
}

// Stats aggregates the per-index statistics the planner consumes. They are
// collected once per index (lazily at first use, or restored from a v2
// store without a rescan) and are advisory: plans never affect answers, so
// slightly stale statistics after an append only cost performance.
type Stats struct {
	Nodes    int // elements in the node table
	Words    int // distinct indexed keywords
	Postings int // total keyword postings across all lists

	MaxPostings int     // length of the largest posting list
	MaxDepth    int     // deepest keyword node
	AvgDepth    float64 // mean keyword-node depth
	AvgFanout   float64 // mean children per internal element

	// DepthHist counts keyword postings per node depth; the last bucket
	// absorbs deeper nodes. Probe-cost estimation uses the mean, but the
	// histogram is persisted so future models can use the shape.
	DepthHist []int64

	// Docs is the number of distinct documents the statistics cover: 1
	// for a single-document index, the engine count for corpus-merged
	// statistics.
	Docs int
}

// Merge combines statistics from two indexes (corpus aggregation): counts
// add, means are weighted by posting mass, maxima take the max.
func Merge(a, b Stats) Stats {
	if a.Docs == 0 {
		return b
	}
	if b.Docs == 0 {
		return a
	}
	out := Stats{
		Nodes:       a.Nodes + b.Nodes,
		Words:       a.Words + b.Words, // upper bound; vocabularies overlap
		Postings:    a.Postings + b.Postings,
		MaxPostings: max(a.MaxPostings, b.MaxPostings),
		MaxDepth:    max(a.MaxDepth, b.MaxDepth),
		Docs:        a.Docs + b.Docs,
	}
	if tot := a.Postings + b.Postings; tot > 0 {
		out.AvgDepth = (a.AvgDepth*float64(a.Postings) + b.AvgDepth*float64(b.Postings)) / float64(tot)
	}
	if nodes := a.Nodes + b.Nodes; nodes > 0 {
		out.AvgFanout = (a.AvgFanout*float64(a.Nodes) + b.AvgFanout*float64(b.Nodes)) / float64(nodes)
	}
	n := max(len(a.DepthHist), len(b.DepthHist))
	if n > 0 {
		out.DepthHist = make([]int64, n)
		for i := range out.DepthHist {
			if i < len(a.DepthHist) {
				out.DepthHist[i] += a.DepthHist[i]
			}
			if i < len(b.DepthHist) {
				out.DepthHist[i] += b.DepthHist[i]
			}
		}
	}
	return out
}

// Overlay folds a delta-segment summary into base statistics: counts add,
// maxima take the larger, and the averaged shape metrics (depth, fanout,
// histogram) stay the base's. Delta segments are small relative to the
// base and the statistics are advisory — they steer cost estimates, never
// answers — so the base's shape remains the better predictor. Unlike
// Merge, an overlay never changes Docs: base and delta describe the same
// document.
func Overlay(base Stats, nodes, words, postings, maxPostings int) Stats {
	base.Nodes += nodes
	base.Words += words // upper bound; base and delta vocabularies overlap
	base.Postings += postings
	base.MaxPostings = max(base.MaxPostings, maxPostings)
	return base
}

// CostModel holds the calibrated unit costs the planner plugs into its
// estimates. The constants are in arbitrary "work units" (roughly
// nanoseconds on the calibration machine); only their ratios matter for the
// crossover.
type CostModel struct {
	// ScanEvent is the cost of pushing one posting through the loser-tree
	// merge and the ELCA stack (per log2(k) comparison level).
	ScanEvent float64
	// ProbeStep is the per-level cost of one binary-search step while the
	// indexed strategy looks up the closest occurrence in another list.
	ProbeStep float64
	// ChainStep is the per-ancestor cost of the parent-chain LCA walks the
	// indexed strategy performs per probe.
	ChainStep float64
}

// Default is the cost model calibrated against `xkbench -planner` on the
// Figure-5 workload mixes (DBLP + XMark generators): the measured crossover
// has ScanMerge winning while the posting lists are within roughly an order
// of magnitude of each other and IndexedEager winning beyond that, which
// these ratios reproduce.
var Default = CostModel{
	ScanEvent: 6,
	ProbeStep: 4,
	ChainStep: 3,
}

// Decision is the planner's resolved per-query plan.
type Decision struct {
	// Strategy is the resolved evaluation strategy; never Auto.
	Strategy Strategy
	// Order is the rarest-first permutation of term indices feeding the
	// k-way merge (Order[leaf] = original term index). nil means query
	// order — the planner-off baseline.
	Order []int
	// Skip enables subtree galloping in the RTF dispatch: when an event
	// lands outside every interesting root, all merge sources jump
	// directly to the next root. Output-neutral (the skipped events
	// dispatch nowhere); enabled by Auto plans.
	Skip bool

	// EstScan and EstIndexed are the model's cost estimates (work units)
	// for the two strategies, surfaced in explain output next to the
	// actual event counters.
	EstScan    float64
	EstIndexed float64
	// Skew is the largest/smallest posting-list length ratio.
	Skew float64
}

// OrderString renders the effective merge order for explain output, e.g.
// "2,0,1". A nil Order renders as the identity (query order) over n terms.
func (d Decision) OrderString(n int) string {
	order := d.Order
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	b := make([]byte, 0, 2*len(order))
	for i, t := range order {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(t), 10)
	}
	return string(b)
}

// Fixed returns the decision for an explicitly requested strategy: that
// strategy, query order, no galloping — the exact pre-planner behavior,
// which doubles as the planner-off baseline in benchmarks.
func Fixed(s Strategy) Decision {
	if s == Auto {
		s = IndexedEager // legacy default for the SLCA path
	}
	return Decision{Strategy: s}
}

// Decide resolves an Auto plan for a query whose terms have the given
// posting-list sizes. The returned decision orders the merge rarest-first,
// enables dispatch galloping, and picks the strategy whose estimated cost
// is lower under the model.
func Decide(sizes []int, st Stats, m CostModel) Decision {
	k := len(sizes)
	d := Decision{Strategy: ScanMerge, Skip: true}
	if k == 0 {
		return d
	}

	d.Order = rarestFirst(sizes)
	minSize := sizes[d.Order[0]]
	maxSize := sizes[d.Order[k-1]]
	total := 0
	for _, n := range sizes {
		total += n
	}
	if minSize > 0 {
		d.Skew = float64(maxSize) / float64(minSize)
	}

	// Scan: every posting passes through the loser tree (log2 k comparison
	// levels) and the ELCA stack.
	levels := 1 + math.Log2(float64(max(k, 2)))
	d.EstScan = m.ScanEvent * float64(total) * levels

	// Indexed: each occurrence of the rarest term probes the k-1 other
	// lists (binary search over the list, then parent-chain LCA walks of
	// roughly the mean keyword depth).
	probe := m.ProbeStep*math.Log2(float64(max(maxSize, 2))) + m.ChainStep*max(st.AvgDepth, 1)
	d.EstIndexed = float64(minSize) * float64(max(k-1, 1)) * probe

	if k > 1 && d.EstIndexed < d.EstScan {
		d.Strategy = IndexedEager
	}
	return d
}

// rarestFirst returns term indices sorted by ascending posting-list size,
// ties broken by query position (stable).
func rarestFirst(sizes []int) []int {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: k is tiny (≤ 64) and the slice is nearly sorted for
	// typical queries.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if sizes[a] <= sizes[b] {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	return order
}
