package planner

import (
	"math/rand"
	"testing"
)

func TestRarestFirstOrdering(t *testing.T) {
	cases := []struct {
		sizes []int
		want  []int
	}{
		{[]int{5}, []int{0}},
		{[]int{10, 2, 7}, []int{1, 2, 0}},
		{[]int{3, 3, 1}, []int{2, 0, 1}}, // stable on ties
		{[]int{0, 9, 0}, []int{0, 2, 1}},
	}
	for _, c := range cases {
		d := Decide(c.sizes, Stats{AvgDepth: 4}, Default)
		if len(d.Order) != len(c.want) {
			t.Fatalf("sizes %v: order %v", c.sizes, d.Order)
		}
		for i := range c.want {
			if d.Order[i] != c.want[i] {
				t.Errorf("sizes %v: order = %v, want %v", c.sizes, d.Order, c.want)
				break
			}
		}
	}
}

func TestRarestFirstIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(12)
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = rng.Intn(1000)
		}
		order := rarestFirst(sizes)
		seen := make([]bool, k)
		for _, idx := range order {
			if idx < 0 || idx >= k || seen[idx] {
				t.Fatalf("sizes %v: order %v is not a permutation", sizes, order)
			}
			seen[idx] = true
		}
		for i := 1; i < k; i++ {
			if sizes[order[i-1]] > sizes[order[i]] {
				t.Fatalf("sizes %v: order %v not ascending", sizes, order)
			}
		}
	}
}

func TestDecideCrossover(t *testing.T) {
	st := Stats{AvgDepth: 5}
	// Similar-magnitude lists: one scan beats per-occurrence probing.
	d := Decide([]int{1000, 1200, 900}, st, Default)
	if d.Strategy != ScanMerge {
		t.Errorf("balanced lists resolved to %v, want ScanMerge (estScan=%.0f estIndexed=%.0f)",
			d.Strategy, d.EstScan, d.EstIndexed)
	}
	// Heavy skew: the rare list drives indexed lookups.
	d = Decide([]int{5, 200000, 150000}, st, Default)
	if d.Strategy != IndexedEager {
		t.Errorf("skewed lists resolved to %v, want IndexedEager (estScan=%.0f estIndexed=%.0f)",
			d.Strategy, d.EstScan, d.EstIndexed)
	}
	if d.Skew < 1000 {
		t.Errorf("Skew = %v", d.Skew)
	}
	if !d.Skip {
		t.Error("Auto decision should enable dispatch galloping")
	}
	// Single term: nothing to intersect, scan it.
	d = Decide([]int{42}, st, Default)
	if d.Strategy != ScanMerge {
		t.Errorf("single term resolved to %v", d.Strategy)
	}
}

func TestDecideMonotoneInSkew(t *testing.T) {
	// Shrinking the smallest list must never flip the decision from
	// IndexedEager back to ScanMerge (estIndexed is monotone in minSize).
	st := Stats{AvgDepth: 6}
	flipped := false
	for minSize := 100000; minSize >= 1; minSize /= 2 {
		d := Decide([]int{minSize, 100000}, st, Default)
		if d.Strategy == IndexedEager {
			flipped = true
		} else if flipped {
			t.Fatalf("decision flipped back to ScanMerge at minSize=%d", minSize)
		}
	}
	if !flipped {
		t.Fatal("no skew ever selected IndexedEager")
	}
}

func TestFixed(t *testing.T) {
	for _, s := range []Strategy{IndexedEager, ScanMerge} {
		d := Fixed(s)
		if d.Strategy != s || d.Order != nil || d.Skip {
			t.Errorf("Fixed(%v) = %+v", s, d)
		}
	}
	if d := Fixed(Auto); d.Strategy != IndexedEager {
		t.Errorf("Fixed(Auto) = %+v, want legacy IndexedEager", d)
	}
}

func TestOrderString(t *testing.T) {
	if got := (Decision{Order: []int{2, 0, 1}}).OrderString(3); got != "2,0,1" {
		t.Errorf("OrderString = %q", got)
	}
	if got := (Decision{}).OrderString(3); got != "0,1,2" {
		t.Errorf("identity OrderString = %q", got)
	}
	if got := (Decision{}).OrderString(0); got != "" {
		t.Errorf("empty OrderString = %q", got)
	}
}

func TestMerge(t *testing.T) {
	a := Stats{Nodes: 10, Words: 4, Postings: 20, MaxPostings: 9, MaxDepth: 3,
		AvgDepth: 2, AvgFanout: 1.5, DepthHist: []int64{1, 2, 17}, Docs: 1}
	b := Stats{Nodes: 30, Words: 6, Postings: 60, MaxPostings: 30, MaxDepth: 5,
		AvgDepth: 4, AvgFanout: 2.5, DepthHist: []int64{0, 0, 10, 50}, Docs: 2}
	m := Merge(a, b)
	if m.Nodes != 40 || m.Postings != 80 || m.MaxPostings != 30 || m.MaxDepth != 5 || m.Docs != 3 {
		t.Errorf("Merge = %+v", m)
	}
	wantDepth := (2.0*20 + 4.0*60) / 80
	if m.AvgDepth != wantDepth {
		t.Errorf("AvgDepth = %v, want %v", m.AvgDepth, wantDepth)
	}
	if len(m.DepthHist) != 4 || m.DepthHist[2] != 27 || m.DepthHist[3] != 50 {
		t.Errorf("DepthHist = %v", m.DepthHist)
	}
	if got := Merge(Stats{}, a); got.Nodes != a.Nodes || got.Docs != 1 {
		t.Errorf("Merge(zero, a) = %+v", got)
	}
}
