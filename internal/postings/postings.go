// Package postings implements the on-disk posting-list representation of
// the store's v3 format: delta+varint block compression with a per-block
// skip table, decoded lazily per term.
//
// A posting list is a strictly increasing sequence of node IDs
// (internal/nid). Encode splits it into blocks of BlockSize IDs; each block
// stores its values as uvarint deltas from the previous value (the previous
// block's last ID at a block boundary, -1 before the very first value, so
// every delta is >= 1). A fixed-width skip table in front of the data —
// one {last ID, byte offset} pair per block — lets an Iterator jump to the
// first block that can contain a target ID without touching the bytes in
// between, which is what makes the k-way merge's SkipTo galloping work on
// compressed lists.
//
// A List is a zero-copy view over the encoded bytes (typically a sub-slice
// of an mmap-ed store section): constructing one validates only the O(1)
// header and the O(blocks) skip table, never the varint payload, so opening
// a store with a million-term vocabulary decodes nothing. Decoding — full
// (Decode) or streaming (Iterator) — is bounds-checked and returns errors
// on malformed payloads instead of panicking; the store's section CRCs make
// such payloads unreachable through the normal open path.
package postings

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"xks/internal/nid"
)

// BlockSize is the number of IDs per compressed block. 128 keeps a block's
// decoded form inside two cache lines of int32s while making the skip table
// (8 bytes per block) a ~1.6% overhead on incompressible lists.
const BlockSize = 128

// headerSize is the fixed prefix of an encoded list: u32 count, u32 dataLen.
const headerSize = 8

// skipEntrySize is the fixed width of one skip-table entry: u32 last ID,
// u32 byte offset of the block's varint data relative to the data area.
const skipEntrySize = 8

// maxCount caps the decoded length FromBytes accepts, so a corrupted count
// field cannot drive huge allocations downstream. IDs are int32, so no
// valid list exceeds it anyway.
const maxCount = math.MaxInt32

// List is a read-only, zero-copy view of one encoded posting list. The
// zero List is valid and empty. Lists index into the caller's byte slice
// (for store-backed lists, the mapped postings section), so they stay valid
// only as long as that backing memory does.
type List struct {
	count int
	skips []byte // numBlocks * skipEntrySize bytes
	data  []byte // varint area
}

// numBlocks returns the block count for n IDs.
func numBlocks(n int) int { return (n + BlockSize - 1) / BlockSize }

// AppendEncode appends the encoded form of ids to dst and returns the
// extended slice. ids must be strictly increasing and non-negative; Encode
// panics otherwise (encoding runs at store-write time, where a mis-sorted
// list is a builder bug, not an input error).
func AppendEncode(dst []byte, ids []nid.ID) []byte {
	n := len(ids)
	nb := numBlocks(n)
	head := len(dst)
	var fixed [headerSize]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(n))
	// dataLen is back-patched once the varint area is written.
	dst = append(dst, fixed[:]...)
	skipStart := len(dst)
	dst = append(dst, make([]byte, nb*skipEntrySize)...)
	dataStart := len(dst)
	prev := int64(-1)
	var varint [binary.MaxVarintLen64]byte
	for b := 0; b < nb; b++ {
		lo, hi := b*BlockSize, min((b+1)*BlockSize, n)
		entry := dst[skipStart+b*skipEntrySize:]
		binary.LittleEndian.PutUint32(entry[0:], uint32(ids[hi-1]))
		binary.LittleEndian.PutUint32(entry[4:], uint32(len(dst)-dataStart))
		for _, id := range ids[lo:hi] {
			if int64(id) <= prev {
				panic(fmt.Sprintf("postings: Encode called with non-increasing ID %d after %d", id, prev))
			}
			w := binary.PutUvarint(varint[:], uint64(int64(id)-prev))
			dst = append(dst, varint[:w]...)
			prev = int64(id)
		}
	}
	binary.LittleEndian.PutUint32(dst[head+4:], uint32(len(dst)-dataStart))
	return dst
}

// Encode returns the encoded form of ids (see AppendEncode).
func Encode(ids []nid.ID) []byte { return AppendEncode(nil, ids) }

// EncodedLen returns the number of bytes the encoded form of a List
// occupies, so callers slicing a concatenated blob can recover section
// boundaries.
func (l List) EncodedLen() int { return headerSize + len(l.skips) + len(l.data) }

// AppendBytes appends the list's encoded form (header, skip table, varint
// data) to dst and returns the extended slice — the store's re-save path,
// which must round-trip lists it never decoded.
func (l List) AppendBytes(dst []byte) []byte {
	var fixed [headerSize]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(l.count))
	binary.LittleEndian.PutUint32(fixed[4:], uint32(len(l.data)))
	dst = append(dst, fixed[:]...)
	dst = append(dst, l.skips...)
	return append(dst, l.data...)
}

// FromBytes validates the header and skip table of an encoded list and
// returns the zero-copy view. b must hold at least the encoded bytes;
// trailing bytes are ignored (the store's postings section stores explicit
// per-term offsets, so exact slices are the normal case). The varint
// payload is not validated here — that is the per-term lazy decode's job —
// but the skip table is checked enough that Iterator block jumps can never
// index out of bounds.
func FromBytes(b []byte) (List, error) {
	if len(b) < headerSize {
		return List{}, fmt.Errorf("postings: truncated header: %d bytes", len(b))
	}
	count := binary.LittleEndian.Uint32(b[0:])
	dataLen := binary.LittleEndian.Uint32(b[4:])
	if count > maxCount {
		return List{}, fmt.Errorf("postings: count %d exceeds maximum", count)
	}
	nb := numBlocks(int(count))
	need := headerSize + nb*skipEntrySize + int(dataLen)
	if need < 0 || len(b) < need {
		return List{}, fmt.Errorf("postings: truncated list: %d bytes, need %d", len(b), need)
	}
	l := List{
		count: int(count),
		skips: b[headerSize : headerSize+nb*skipEntrySize],
		data:  b[headerSize+nb*skipEntrySize : need],
	}
	if count == 0 {
		if dataLen != 0 {
			return List{}, fmt.Errorf("postings: empty list with %d data bytes", dataLen)
		}
		return l, nil
	}
	// Skip-table invariants: block offsets start at 0, strictly increase
	// (every block holds at least one varint byte) and stay inside the data
	// area; last IDs strictly increase and fit in an int32.
	prevLast, prevOff := int64(-1), -1
	for i := 0; i < nb; i++ {
		last, off := l.skipEntry(i)
		if int64(last) <= prevLast || last > math.MaxInt32 {
			return List{}, fmt.Errorf("postings: skip table last IDs not increasing at block %d", i)
		}
		if i == 0 && off != 0 {
			return List{}, fmt.Errorf("postings: first block offset %d, want 0", off)
		}
		if (i > 0 && off <= prevOff) || off >= len(l.data) {
			return List{}, fmt.Errorf("postings: skip table offsets not increasing at block %d", i)
		}
		prevLast, prevOff = int64(last), off
	}
	return l, nil
}

// skipEntry returns block b's last ID and data offset from the skip table.
func (l List) skipEntry(b int) (last uint32, off int) {
	e := l.skips[b*skipEntrySize:]
	return binary.LittleEndian.Uint32(e[0:]), int(binary.LittleEndian.Uint32(e[4:]))
}

// Len returns the number of IDs in the list without decoding anything —
// the term-frequency read the planner and scorer issue per query.
func (l List) Len() int { return l.count }

// Blocks returns the number of compressed blocks.
func (l List) Blocks() int { return numBlocks(l.count) }

// blockBounds returns the byte range of block b inside the data area and
// the number of IDs it holds.
func (l List) blockBounds(b int) (lo, hi, n int) {
	_, lo = l.skipEntry(b)
	hi = len(l.data)
	if b+1 < l.Blocks() {
		_, hi = l.skipEntry(b + 1)
	}
	n = BlockSize
	if b == l.Blocks()-1 {
		n = l.count - b*BlockSize
	}
	return lo, hi, n
}

// blockBase returns the value preceding block b's first delta: the previous
// block's last ID, or -1 for the first block.
func (l List) blockBase(b int) int64 {
	if b == 0 {
		return -1
	}
	last, _ := l.skipEntry(b - 1)
	return int64(last)
}

// decodeBlock decodes block b into buf (len >= BlockSize), returning the
// number of IDs decoded. Malformed varints (overrun, overflow, zero delta)
// fail with an error, never a panic.
func (l List) decodeBlock(b int, buf []nid.ID) (int, error) {
	lo, hi, n := l.blockBounds(b)
	data := l.data[lo:hi]
	prev := l.blockBase(b)
	pos := 0
	for i := 0; i < n; i++ {
		delta, w := binary.Uvarint(data[pos:])
		if w <= 0 || delta == 0 || delta > math.MaxInt32+1 {
			return 0, fmt.Errorf("postings: malformed varint in block %d", b)
		}
		prev += int64(delta)
		if prev > math.MaxInt32 {
			return 0, fmt.Errorf("postings: ID overflow in block %d", b)
		}
		buf[i] = nid.ID(prev)
		pos += w
	}
	return n, nil
}

// AppendDecode appends every ID of the list to dst and returns the extended
// slice — the full per-term decode the index caches on first lookup.
func (l List) AppendDecode(dst []nid.ID) ([]nid.ID, error) {
	var buf [BlockSize]nid.ID
	for b := 0; b < l.Blocks(); b++ {
		n, err := l.decodeBlock(b, buf[:])
		if err != nil {
			return dst, err
		}
		dst = append(dst, buf[:n]...)
	}
	return dst, nil
}

// Decode returns the fully decoded list.
func (l List) Decode() ([]nid.ID, error) {
	return l.AppendDecode(make([]nid.ID, 0, l.count))
}

// Iterator streams a List in increasing ID order, decoding one block at a
// time, with skip-table-driven SeekGE. It satisfies the source interface
// lca.Merger consumes, so the k-way merge can run directly over compressed
// lists. The zero Iterator is invalid; obtain one from List.Iterator.
type Iterator struct {
	l      List
	block  int // next block to decode
	buf    [BlockSize]nid.ID
	bufLen int
	bufPos int
	err    error
}

// Iterator returns a fresh iterator positioned before the first ID.
func (l List) Iterator() *Iterator {
	return &Iterator{l: l}
}

// Reset rewinds the iterator to the start of its list, reusing the block
// buffer.
func (it *Iterator) Reset() {
	it.block, it.bufLen, it.bufPos, it.err = 0, 0, 0, nil
}

// Err returns the decode error that ended iteration early, if any. A
// drained healthy iterator returns nil.
func (it *Iterator) Err() error { return it.err }

// fill decodes the next block into the buffer; false at end of list or on
// a decode error (recorded in Err).
func (it *Iterator) fill() bool {
	if it.err != nil || it.block >= it.l.Blocks() {
		return false
	}
	n, err := it.l.decodeBlock(it.block, it.buf[:])
	if err != nil {
		it.err = err
		return false
	}
	it.block++
	it.bufLen, it.bufPos = n, 0
	return true
}

// Next consumes and returns the next ID; ok is false when the list is
// exhausted (or the payload is malformed — see Err).
func (it *Iterator) Next() (nid.ID, bool) {
	if it.bufPos >= it.bufLen && !it.fill() {
		return 0, false
	}
	v := it.buf[it.bufPos]
	it.bufPos++
	return v, true
}

// SeekGE discards every remaining ID below target, then consumes and
// returns the first remaining ID >= target — "advance past everything
// smaller, hand me the head" — jumping over whole blocks via the skip
// table. ok is false when no such ID remains.
func (it *Iterator) SeekGE(target nid.ID) (nid.ID, bool) {
	// Inside the buffered block: binary search the tail.
	if it.bufPos < it.bufLen && it.buf[it.bufLen-1] >= target {
		tail := it.buf[it.bufPos:it.bufLen]
		i := sort.Search(len(tail), func(j int) bool { return tail[j] >= target })
		it.bufPos += i + 1
		return tail[i], true
	}
	if it.bufPos < it.bufLen {
		it.bufPos = it.bufLen // whole buffered block is below target
	}
	// Jump to the first not-yet-decoded block whose last ID reaches target.
	nb := it.l.Blocks()
	b := it.block + sort.Search(nb-it.block, func(j int) bool {
		last, _ := it.l.skipEntry(it.block + j)
		return nid.ID(last) >= target
	})
	if b >= nb {
		it.block = nb
		return 0, false
	}
	it.block = b
	if !it.fill() {
		return 0, false
	}
	i := sort.Search(it.bufLen, func(j int) bool { return it.buf[j] >= target })
	// The block's last ID is >= target, so i < bufLen always holds here.
	it.bufPos = i + 1
	return it.buf[i], true
}
