package postings

import (
	"math/rand"
	"testing"

	"xks/internal/nid"
)

// randomList generates a strictly increasing ID list of length n with the
// given gap profile.
func randomList(r *rand.Rand, n, maxGap int) []nid.ID {
	out := make([]nid.ID, n)
	cur := int64(r.Intn(3))
	for i := range out {
		out[i] = nid.ID(cur)
		cur += 1 + int64(r.Intn(maxGap))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := [][]nid.ID{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		randomList(r, BlockSize, 3),
		randomList(r, BlockSize+1, 3),
		randomList(r, 2*BlockSize, 1000),
		randomList(r, 10*BlockSize+17, 7),
	}
	for ci, ids := range cases {
		enc := Encode(ids)
		l, err := FromBytes(enc)
		if err != nil {
			t.Fatalf("case %d: FromBytes: %v", ci, err)
		}
		if l.Len() != len(ids) {
			t.Fatalf("case %d: Len = %d, want %d", ci, l.Len(), len(ids))
		}
		if l.EncodedLen() != len(enc) {
			t.Fatalf("case %d: EncodedLen = %d, want %d", ci, l.EncodedLen(), len(enc))
		}
		got, err := l.Decode()
		if err != nil {
			t.Fatalf("case %d: Decode: %v", ci, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("case %d: decoded %d IDs, want %d", ci, len(got), len(ids))
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("case %d: id[%d] = %d, want %d", ci, i, got[i], ids[i])
			}
		}
		// Iterator drain matches.
		it := l.Iterator()
		for i, want := range ids {
			v, ok := it.Next()
			if !ok || v != want {
				t.Fatalf("case %d: Next[%d] = %d,%v, want %d", ci, i, v, ok, want)
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("case %d: Next past end returned ok", ci)
		}
		if it.Err() != nil {
			t.Fatalf("case %d: drained iterator Err = %v", ci, it.Err())
		}
	}
}

func TestFromBytesTrailingBytesIgnored(t *testing.T) {
	ids := []nid.ID{1, 5, 9}
	enc := append(Encode(ids), 0xAA, 0xBB)
	l, err := FromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// TestSeekGE pins SeekGE against the reference "linear scan + Next"
// implementation over random lists and random target sequences.
func TestSeekGE(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(5*BlockSize)
		ids := randomList(r, n, 1+r.Intn(20))
		l, err := FromBytes(Encode(ids))
		if err != nil {
			t.Fatal(err)
		}
		it := l.Iterator()
		pos := 0 // reference cursor into ids
		for step := 0; step < 200; step++ {
			if r.Intn(3) == 0 {
				// Interleave Next calls.
				v, ok := it.Next()
				wantOK := pos < len(ids)
				if ok != wantOK || (ok && v != ids[pos]) {
					t.Fatalf("trial %d: Next = %d,%v at pos %d", trial, v, ok, pos)
				}
				if ok {
					pos++
				}
				continue
			}
			// Monotone-ish targets with occasional backward probes.
			var target nid.ID
			if pos < len(ids) {
				target = ids[pos] + nid.ID(r.Intn(50)) - 5
			} else {
				target = ids[len(ids)-1] + 1
			}
			if target < 0 {
				target = 0
			}
			// Reference: discard remaining IDs below target, take the next.
			wp := pos
			for wp < len(ids) && ids[wp] < target {
				wp++
			}
			v, ok := it.SeekGE(target)
			if wp >= len(ids) {
				if ok {
					t.Fatalf("trial %d: SeekGE(%d) = %d, want exhausted", trial, target, v)
				}
				pos = len(ids)
				continue
			}
			// A backward target returns the head of the remaining stream.
			want := ids[wp]
			if want < target {
				want = ids[wp]
			}
			if !ok || v != want {
				t.Fatalf("trial %d: SeekGE(%d) = %d,%v, want %d", trial, target, v, ok, want)
			}
			pos = wp + 1
		}
	}
}

// TestSeekGEBackwardTarget pins the contract for targets at or below the
// consumed prefix: the head of the remaining stream comes back.
func TestSeekGEBackwardTarget(t *testing.T) {
	ids := []nid.ID{10, 20, 30, 40}
	l, _ := FromBytes(Encode(ids))
	it := l.Iterator()
	if v, _ := it.Next(); v != 10 {
		t.Fatal("first Next")
	}
	if v, ok := it.SeekGE(5); !ok || v != 20 {
		t.Fatalf("SeekGE(5) = %d,%v, want 20", v, ok)
	}
}

// TestMalformedNeverPanics drives the decoder over corrupted encodings.
func TestMalformedNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	base := Encode(randomList(r, 3*BlockSize+7, 5))
	for trial := 0; trial < 2000; trial++ {
		b := append([]byte(nil), base...)
		switch r.Intn(3) {
		case 0:
			b = b[:r.Intn(len(b))]
		case 1:
			for k := 0; k < 1+r.Intn(8); k++ {
				b[r.Intn(len(b))] ^= byte(1 + r.Intn(255))
			}
		case 2:
			b = b[:r.Intn(len(b))]
			for k := 0; len(b) > 0 && k < 4; k++ {
				b[r.Intn(len(b))] ^= byte(1 + r.Intn(255))
			}
		}
		l, err := FromBytes(b)
		if err != nil {
			continue
		}
		if _, err := l.Decode(); err != nil {
			continue
		}
		it := l.Iterator()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		it.Reset()
		for target := nid.ID(0); ; target += 37 {
			if _, ok := it.SeekGE(target); !ok {
				break
			}
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	ids := randomList(r, 64*BlockSize, 9)
	l, _ := FromBytes(Encode(ids))
	buf := make([]nid.ID, 0, len(ids))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = l.AppendDecode(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}
