package prune

import (
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/paperdata"
	"xks/internal/rtf"
	"xks/internal/xmltree"
)

// TestBuildFragmentIDsMatchesBuildFragment cross-checks the ID path-stack
// fragment builder against the code-based reference over the paper's
// running examples: identical kept sets under every mode and option, plus
// KeptIDs coherent with Kept.
func TestBuildFragmentIDsMatchesBuildFragment(t *testing.T) {
	cases := []struct {
		name  string
		tree  *xmltree.Tree
		query string
	}{
		{"publications/Q1", paperdata.Publications(), paperdata.Q1},
		{"publications/Q2", paperdata.Publications(), paperdata.Q2},
		{"publications/Q3", paperdata.Publications(), paperdata.Q3},
		{"team/Q4", paperdata.Team(), paperdata.Q4},
		{"team/Q5", paperdata.Team(), paperdata.Q5},
	}
	an := analysis.New()
	for _, tc := range cases {
		ix := index.Build(tc.tree, an)
		tab := ix.Table()
		_, sets, err := ix.KeywordSets(tc.query)
		if err != nil {
			t.Fatalf("%s: KeywordSets: %v", tc.name, err)
		}
		_, idSets, err := ix.KeywordSetIDs(tc.query)
		if err != nil {
			t.Fatalf("%s: KeywordSetIDs: %v", tc.name, err)
		}

		codeRTFs := rtf.Build(lca.ELCAStackMerge(sets), sets)
		idRTFs := rtf.BuildIDs(tab, lca.ELCAStackMergeIDs(tab, idSets), idSets)
		if len(codeRTFs) != len(idRTFs) {
			t.Fatalf("%s: %d RTFs vs %d", tc.name, len(codeRTFs), len(idRTFs))
		}

		tree := tc.tree
		labelOf := func(c dewey.Code) string { return tree.NodeAt(c).Label }
		contentOf := func(c dewey.Code) []string { return an.ContentSet(tree.NodeAt(c).ContentPieces()...) }
		idLabelOf := func(id nid.ID) string { return tree.NodeAt(tab.Code(id)).Label }
		idContentOf := func(id nid.ID) []string {
			return an.ContentSet(tree.NodeAt(tab.Code(id)).ContentPieces()...)
		}

		for _, opts := range []Options{{}, {ExactContent: true}} {
			for i := range codeRTFs {
				cf := BuildFragment(codeRTFs[i], labelOf, contentOf, opts)
				idf := BuildFragmentIDs(tab, idRTFs[i], idLabelOf, idContentOf, opts)
				if cf.Size() != idf.Size() {
					t.Fatalf("%s fragment %d: size %d vs %d", tc.name, i, idf.Size(), cf.Size())
				}
				for _, mode := range []Mode{ValidContributor, Contributor, NoPruning} {
					want := cf.Prune(mode, opts)
					got := idf.Prune(mode, opts)
					if !want.Equal(got) {
						t.Fatalf("%s fragment %d mode %s (exact=%v):\nid:   %v\ncode: %v",
							tc.name, i, mode, opts.ExactContent, got.Kept, want.Kept)
					}
					if len(got.KeptIDs) != len(got.Kept) {
						t.Fatalf("%s fragment %d: KeptIDs len %d vs Kept %d",
							tc.name, i, len(got.KeptIDs), len(got.Kept))
					}
					for j, id := range got.KeptIDs {
						if !dewey.Equal(tab.Code(id), got.Kept[j]) {
							t.Fatalf("%s fragment %d: KeptIDs[%d] resolves to %s, Kept has %s",
								tc.name, i, j, tab.Code(id), got.Kept[j])
						}
					}
				}
			}
		}
	}
}
