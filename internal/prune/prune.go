// Package prune implements the pruneRTF stage of ValidRTF (Algorithm 1 of
// the paper) and the contributor-based pruning of the revised MaxMatch
// baseline (Liu & Chen, VLDB 2008, adapted to RTFs).
//
// A Fragment is the annotated node tree of §4.1: every RTF node carries its
// Dewey code, label, kList (tree keyword set as a bitmask — its integer
// value is the paper's "key number"), and cID (the (min,max) word-pair
// feature approximating the tree content set). Children information is
// grouped per distinct label, with the sorted distinct child key numbers
// (chkList) and child cIDs (chcIDList) the pruning step consults.
//
// Prune(ValidContributor) keeps exactly the valid contributors of
// Definition 4: a child with a label unique among its siblings is always
// kept (rule 1, fixing MaxMatch's false positive problem); among same-label
// siblings, a child whose keyword set is strictly covered by a sibling's is
// discarded (rule 2a), and of several children with equal keyword sets and
// equal content only the first is kept (rule 2b, fixing the redundancy
// problem).
//
// Prune(Contributor) keeps MaxMatch's contributors: a child is discarded
// exactly when some sibling's keyword set strictly covers its own,
// regardless of labels and content.
package prune

import (
	"fmt"
	"sort"
	"strings"

	"xks/internal/dewey"
	"xks/internal/rtf"
)

// Mode selects the filtering mechanism.
type Mode int

const (
	// ValidContributor is the paper's valid-contributor filtering
	// (Definition 4), used by ValidRTF.
	ValidContributor Mode = iota
	// Contributor is MaxMatch's contributor filtering: discard a child iff
	// a sibling's keyword set strictly covers its own.
	Contributor
	// NoPruning keeps the whole RTF (the raw fragment).
	NoPruning
)

func (m Mode) String() string {
	switch m {
	case ValidContributor:
		return "ValidContributor"
	case Contributor:
		return "Contributor"
	case NoPruning:
		return "NoPruning"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options tunes pruning behaviour.
type Options struct {
	// ExactContent compares full tree content sets in rule 2b instead of
	// the (min,max) cID feature. The paper uses the cID approximation
	// (§4.1); exact comparison is provided for the ablation study.
	ExactContent bool
}

// CID is the (min,max) content feature of §4.1.
type CID struct {
	Min, Max string
}

func (c CID) String() string { return "(" + c.Min + "," + c.Max + ")" }

// Less orders cIDs lexically, Min first.
func (c CID) Less(o CID) bool {
	if c.Min != o.Min {
		return c.Min < o.Min
	}
	return c.Max < o.Max
}

// Node is the §4.1 node data structure: "Self Info" fields plus per-label
// children information.
type Node struct {
	Code  dewey.Code
	Label string
	// KList is the tree keyword set TKv as a bitmask over the query
	// keywords; its integer value is the paper's key number.
	KList uint64
	// CID is the (min,max) feature of the tree content set TCv.
	CID CID
	// IsKeywordNode reports whether the node itself matched some keyword.
	IsKeywordNode bool
	// Mask is the bitmask of keywords the node itself matches (zero for
	// pure path nodes).
	Mask uint64

	Parent   *Node
	Children []*Node // document order
	Items    []*LabelItem

	content map[string]struct{} // full tree content set (ExactContent mode)
}

// HasContentWord reports whether w is in the node's tree content set. Only
// populated when the fragment was built with exact content tracking.
func (n *Node) HasContentWord(w string) bool {
	_, ok := n.content[w]
	return ok
}

// ContentSize returns the tree content set cardinality (exact mode only).
func (n *Node) ContentSize() int { return len(n.content) }

// LabelItem groups a node's children sharing one label ("Children Info").
type LabelItem struct {
	Label string
	// Counter is the number of children with this label.
	Counter int
	// ChKList holds the sorted distinct key numbers of those children.
	ChKList []uint64
	// ChCIDs holds their sorted distinct cIDs.
	ChCIDs []CID
	// Children references the children in document order.
	Children []*Node
}

// coveredByLarger reports whether some key number in the sorted chkList is
// strictly larger than knum and a superset of it — the §4.1 bit trick for
// rule 2(a).
func (li *LabelItem) coveredByLarger(knum uint64) bool {
	i := sort.Search(len(li.ChKList), func(j int) bool { return li.ChKList[j] > knum })
	for ; i < len(li.ChKList); i++ {
		if li.ChKList[i]&knum == knum {
			return true
		}
	}
	return false
}

// LabelFunc resolves a node's label from its Dewey code.
type LabelFunc func(dewey.Code) string

// ContentFunc resolves the content word set Cv of a keyword node.
type ContentFunc func(dewey.Code) []string

// Fragment is one RTF materialized as an annotated node tree, ready for
// pruning. Build it once and prune it under several modes.
type Fragment struct {
	Root   *Node
	byKey  map[string]*Node
	source *rtf.RTF
	exact  bool
}

// BuildFragment runs the constructing step of pruneRTF: it materializes
// every node on the paths between the RTF root and its keyword nodes,
// filling the §4.1 data structure. Keyword masks and content features are
// transferred to every ancestor up to the RTF root (the paper's lines
// 11–12). labelOf must resolve every path node's label; contentOf must
// resolve each keyword node's content set.
func BuildFragment(r *rtf.RTF, labelOf LabelFunc, contentOf ContentFunc, opts Options) *Fragment {
	f := &Fragment{
		byKey:  make(map[string]*Node),
		source: r,
		exact:  opts.ExactContent,
	}
	f.Root = f.ensure(r.Root, labelOf)
	for _, ev := range r.KeywordNodes {
		// Materialize the path from the root to the keyword node.
		var prev *Node
		for l := len(r.Root); l <= len(ev.Code); l++ {
			n := f.ensure(ev.Code[:l].Clone(), labelOf)
			if prev != nil && n.Parent == nil && n != f.Root {
				n.Parent = prev
				prev.Children = append(prev.Children, n)
			}
			prev = n
		}
		kn := f.byKey[ev.Code.Key()]
		kn.IsKeywordNode = true
		kn.Mask |= ev.Mask
		words := contentOf(ev.Code)
		// Transfer keyword mask and content feature to the node and every
		// ancestor within the fragment.
		for n := kn; n != nil; n = n.Parent {
			n.KList |= ev.Mask
			mergeContent(n, words, f.exact)
		}
	}
	f.fillChildrenInfo()
	return f
}

func (f *Fragment) ensure(c dewey.Code, labelOf LabelFunc) *Node {
	if n, ok := f.byKey[c.Key()]; ok {
		return n
	}
	n := &Node{Code: c, Label: labelOf(c)}
	f.byKey[c.Key()] = n
	return n
}

func mergeContent(n *Node, words []string, exact bool) {
	for _, w := range words {
		if n.CID.Min == "" || w < n.CID.Min {
			n.CID.Min = w
		}
		if w > n.CID.Max {
			n.CID.Max = w
		}
	}
	if exact {
		if n.content == nil {
			n.content = make(map[string]struct{}, len(words))
		}
		for _, w := range words {
			n.content[w] = struct{}{}
		}
	}
}

func (f *Fragment) fillChildrenInfo() {
	for _, n := range f.byKey {
		if len(n.Children) == 0 {
			continue
		}
		// Children were appended in keyword-node order, which follows the
		// pre-order of the RTF's keyword nodes; sort defensively.
		sort.Slice(n.Children, func(i, j int) bool {
			return dewey.Compare(n.Children[i].Code, n.Children[j].Code) < 0
		})
		items := map[string]*LabelItem{}
		var order []*LabelItem
		for _, ch := range n.Children {
			li, ok := items[ch.Label]
			if !ok {
				li = &LabelItem{Label: ch.Label}
				items[ch.Label] = li
				order = append(order, li)
			}
			li.Counter++
			li.Children = append(li.Children, ch)
		}
		for _, li := range order {
			seenK := map[uint64]bool{}
			seenC := map[CID]bool{}
			for _, ch := range li.Children {
				if !seenK[ch.KList] {
					seenK[ch.KList] = true
					li.ChKList = append(li.ChKList, ch.KList)
				}
				if !seenC[ch.CID] {
					seenC[ch.CID] = true
					li.ChCIDs = append(li.ChCIDs, ch.CID)
				}
			}
			sort.Slice(li.ChKList, func(i, j int) bool { return li.ChKList[i] < li.ChKList[j] })
			sort.Slice(li.ChCIDs, func(i, j int) bool { return li.ChCIDs[i].Less(li.ChCIDs[j]) })
		}
		n.Items = order
	}
}

// NodeAt returns the fragment node with the given code, or nil.
func (f *Fragment) NodeAt(c dewey.Code) *Node { return f.byKey[c.Key()] }

// Size returns the number of nodes in the unpruned fragment.
func (f *Fragment) Size() int { return len(f.byKey) }

// Source returns the RTF the fragment was built from.
func (f *Fragment) Source() *rtf.RTF { return f.source }

// Result is the outcome of pruning a fragment under one mode: the kept node
// codes in pre-order.
type Result struct {
	Root dewey.Code
	Kept []dewey.Code
	keep map[string]bool
}

// KeepSet returns the kept codes keyed by dewey key (shared map; do not
// modify).
func (r *Result) KeepSet() map[string]bool { return r.keep }

// Contains reports whether the pruned fragment kept the node.
func (r *Result) Contains(c dewey.Code) bool { return r.keep[c.Key()] }

// Len returns the number of kept nodes.
func (r *Result) Len() int { return len(r.Kept) }

// Equal reports whether two results kept exactly the same node set.
func (r *Result) Equal(o *Result) bool {
	if len(r.Kept) != len(o.Kept) {
		return false
	}
	for i := range r.Kept {
		if !dewey.Equal(r.Kept[i], o.Kept[i]) {
			return false
		}
	}
	return true
}

// Prune applies the selected filtering mechanism (the pruning step of
// pruneRTF) and returns the kept node set. The fragment itself is not
// mutated, so several modes can be applied to the same fragment.
func (f *Fragment) Prune(mode Mode, opts Options) *Result {
	res := &Result{Root: f.Root.Code, keep: map[string]bool{}}
	// Breadth-first traversal; children of discarded nodes are never
	// visited, discarding whole subtrees.
	queue := []*Node{f.Root}
	res.keep[f.Root.Code.Key()] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var keptKids []*Node
		switch mode {
		case NoPruning:
			keptKids = n.Children
		case Contributor:
			keptKids = contributorChildren(n)
		default:
			keptKids = validContributorChildren(n, f.exact && opts.ExactContent)
		}
		for _, ch := range keptKids {
			res.keep[ch.Code.Key()] = true
			queue = append(queue, ch)
		}
	}
	for _, c := range collectCodes(res.keep) {
		res.Kept = append(res.Kept, c)
	}
	return res
}

// validContributorChildren implements lines 16–26 of Algorithm 1.
func validContributorChildren(n *Node, exact bool) []*Node {
	var out []*Node
	for _, li := range n.Items {
		if li.Counter == 1 {
			// Rule 1: unique label among siblings — always a valid
			// contributor.
			out = append(out, li.Children[0])
			continue
		}
		usedKNums := map[uint64]bool{}
		usedCIDs := map[CID]bool{}
		var keptExact []*Node
		for _, ch := range li.Children {
			knum := ch.KList
			if usedKNums[knum] {
				// Rule 2(b): equal keyword set — keep only if the content
				// differs from every kept equal-keyword sibling.
				if exact {
					if !duplicateContent(ch, keptExact) {
						out = append(out, ch)
						keptExact = append(keptExact, ch)
					}
					continue
				}
				if !usedCIDs[ch.CID] {
					out = append(out, ch)
					usedCIDs[ch.CID] = true
				}
				continue
			}
			// Rule 2(a): discard when a same-label sibling's keyword set
			// strictly covers this child's.
			if li.coveredByLarger(knum) {
				continue
			}
			out = append(out, ch)
			usedKNums[knum] = true
			usedCIDs[ch.CID] = true
			if exact {
				keptExact = append(keptExact, ch)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return dewey.Compare(out[i].Code, out[j].Code) < 0 })
	return out
}

func duplicateContent(ch *Node, kept []*Node) bool {
	for _, k := range kept {
		if k.KList != ch.KList || len(k.content) != len(ch.content) {
			continue
		}
		same := true
		for w := range ch.content {
			if _, ok := k.content[w]; !ok {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// contributorChildren implements MaxMatch's pruneMatches condition: child c
// survives iff no sibling's keyword set strictly covers dMatch(c). Labels
// and content are ignored.
func contributorChildren(n *Node) []*Node {
	var out []*Node
	for _, ch := range n.Children {
		covered := false
		for _, sib := range n.Children {
			if sib == ch {
				continue
			}
			if sib.KList != ch.KList && sib.KList&ch.KList == ch.KList {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, ch)
		}
	}
	return out
}

func collectCodes(keep map[string]bool) []dewey.Code {
	out := make([]dewey.Code, 0, len(keep))
	for k := range keep {
		c, err := dewey.FromKey(k)
		if err != nil {
			continue
		}
		out = append(out, c)
	}
	dewey.Sort(out)
	return out
}

// Sketch renders the fragment's annotated nodes for debugging, in the style
// of Figure 4(b): code, label, key number and cID per node.
func (f *Fragment) Sketch() string {
	codes := collectCodes(keysOf(f.byKey))
	var b strings.Builder
	for _, c := range codes {
		n := f.byKey[c.Key()]
		fmt.Fprintf(&b, "%s%s (%s) k=%d cID=%s", strings.Repeat("  ", len(n.Code)-len(f.Root.Code)), n.Code, n.Label, n.KList, n.CID)
		if n.IsKeywordNode {
			b.WriteString(" *")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func keysOf(m map[string]*Node) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
