// Package prune implements the pruneRTF stage of ValidRTF (Algorithm 1 of
// the paper) and the contributor-based pruning of the revised MaxMatch
// baseline (Liu & Chen, VLDB 2008, adapted to RTFs).
//
// A Fragment is the annotated node tree of §4.1: every RTF node carries its
// Dewey code, label, kList (tree keyword set as a bitmask — its integer
// value is the paper's "key number"), and cID (the (min,max) word-pair
// feature approximating the tree content set). Children information is
// grouped per distinct label, with the sorted distinct child key numbers
// (chkList) and child cIDs (chcIDList) the pruning step consults.
//
// Prune(ValidContributor) keeps exactly the valid contributors of
// Definition 4: a child with a label unique among its siblings is always
// kept (rule 1, fixing MaxMatch's false positive problem); among same-label
// siblings, a child whose keyword set is strictly covered by a sibling's is
// discarded (rule 2a), and of several children with equal keyword sets and
// equal content only the first is kept (rule 2b, fixing the redundancy
// problem).
//
// Prune(Contributor) keeps MaxMatch's contributors: a child is discarded
// exactly when some sibling's keyword set strictly covers its own,
// regardless of labels and content.
//
// Fragments are built two ways: BuildFragment from a code-based rtf.RTF
// (the reference and eager-baseline path) and BuildFragmentIDs from an
// ID-based rtf.IDRTF over a node table (the production hot path — a single
// path-stack pass with no string keys, no maps and zero-copy Dewey codes).
// Both yield identical pruning results; cross-checked by tests.
package prune

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"xks/internal/dewey"
	"xks/internal/nid"
	"xks/internal/rtf"
)

// Mode selects the filtering mechanism.
type Mode int

const (
	// ValidContributor is the paper's valid-contributor filtering
	// (Definition 4), used by ValidRTF.
	ValidContributor Mode = iota
	// Contributor is MaxMatch's contributor filtering: discard a child iff
	// a sibling's keyword set strictly covers its own.
	Contributor
	// NoPruning keeps the whole RTF (the raw fragment).
	NoPruning
)

func (m Mode) String() string {
	switch m {
	case ValidContributor:
		return "ValidContributor"
	case Contributor:
		return "Contributor"
	case NoPruning:
		return "NoPruning"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options tunes pruning behaviour.
type Options struct {
	// ExactContent compares full tree content sets in rule 2b instead of
	// the (min,max) cID feature. The paper uses the cID approximation
	// (§4.1); exact comparison is provided for the ablation study.
	ExactContent bool
}

// CID is the (min,max) content feature of §4.1.
type CID struct {
	Min, Max string
}

func (c CID) String() string { return "(" + c.Min + "," + c.Max + ")" }

// Less orders cIDs lexically, Min first.
func (c CID) Less(o CID) bool {
	if c.Min != o.Min {
		return c.Min < o.Min
	}
	return c.Max < o.Max
}

// Node is the §4.1 node data structure: "Self Info" fields plus per-label
// children information.
type Node struct {
	Code  dewey.Code
	Label string
	// ID is the node's table ID when the fragment was built over a node
	// table (BuildFragmentIDs), nid.None otherwise.
	ID nid.ID
	// KList is the tree keyword set TKv as a bitmask over the query
	// keywords; its integer value is the paper's key number.
	KList uint64
	// CID is the (min,max) feature of the tree content set TCv.
	CID CID
	// IsKeywordNode reports whether the node itself matched some keyword.
	IsKeywordNode bool
	// Mask is the bitmask of keywords the node itself matches (zero for
	// pure path nodes).
	Mask uint64

	Parent   *Node
	Children []*Node // document order
	// Items groups the children per distinct label, in first-occurrence
	// order. Stored by value (one backing array per node) to keep the
	// grouping allocation-light; iterate by index when a pointer is needed.
	Items []LabelItem

	content map[string]struct{} // full tree content set (ExactContent mode)
}

// HasContentWord reports whether w is in the node's tree content set. Only
// populated when the fragment was built with exact content tracking.
func (n *Node) HasContentWord(w string) bool {
	_, ok := n.content[w]
	return ok
}

// ContentSize returns the tree content set cardinality (exact mode only).
func (n *Node) ContentSize() int { return len(n.content) }

// LabelItem groups a node's children sharing one label ("Children Info").
type LabelItem struct {
	Label string
	// Counter is the number of children with this label.
	Counter int
	// ChKList holds the sorted distinct key numbers of those children.
	ChKList []uint64
	// ChCIDs holds their sorted distinct cIDs.
	ChCIDs []CID
	// Children references the children in document order.
	Children []*Node
}

// coveredByLarger reports whether some key number in the sorted chkList is
// strictly larger than knum and a superset of it — the §4.1 bit trick for
// rule 2(a).
func (li *LabelItem) coveredByLarger(knum uint64) bool {
	i := sort.Search(len(li.ChKList), func(j int) bool { return li.ChKList[j] > knum })
	for ; i < len(li.ChKList); i++ {
		if li.ChKList[i]&knum == knum {
			return true
		}
	}
	return false
}

// LabelFunc resolves a node's label from its Dewey code.
type LabelFunc func(dewey.Code) string

// ContentFunc resolves the content word set Cv of a keyword node.
type ContentFunc func(dewey.Code) []string

// IDLabelFunc resolves a node's label from its table ID.
type IDLabelFunc func(nid.ID) string

// IDContentFunc resolves the content word set Cv of a keyword node from its
// table ID.
type IDContentFunc func(nid.ID) []string

// Fragment is one RTF materialized as an annotated node tree, ready for
// pruning. Build it once and prune it under several modes.
type Fragment struct {
	Root     *Node
	nodes    []*Node          // every fragment node, in creation order
	byKey    map[string]*Node // code-built fragments only
	tab      *nid.Table       // ID-built fragments only
	source   *rtf.RTF         // code-built fragments only
	sourceID *rtf.IDRTF       // ID-built fragments only
	exact    bool
}

// BuildFragment runs the constructing step of pruneRTF from a code-based
// RTF: it materializes every node on the paths between the RTF root and its
// keyword nodes, filling the §4.1 data structure. Keyword masks and content
// features are transferred to every ancestor up to the RTF root (the
// paper's lines 11–12). labelOf must resolve every path node's label;
// contentOf must resolve each keyword node's content set.
func BuildFragment(r *rtf.RTF, labelOf LabelFunc, contentOf ContentFunc, opts Options) *Fragment {
	f := &Fragment{
		byKey:  make(map[string]*Node),
		source: r,
		exact:  opts.ExactContent,
	}
	f.Root = f.ensure(r.Root, labelOf)
	for _, ev := range r.KeywordNodes {
		// Materialize the path from the root to the keyword node.
		var prev *Node
		for l := len(r.Root); l <= len(ev.Code); l++ {
			n := f.ensure(ev.Code[:l].Clone(), labelOf)
			if prev != nil && n.Parent == nil && n != f.Root {
				n.Parent = prev
				prev.Children = append(prev.Children, n)
			}
			prev = n
		}
		kn := f.byKey[ev.Code.Key()]
		kn.IsKeywordNode = true
		kn.Mask |= ev.Mask
		words := contentOf(ev.Code)
		// Transfer keyword mask and content feature to the node and every
		// ancestor within the fragment.
		for n := kn; n != nil; n = n.Parent {
			n.KList |= ev.Mask
			mergeContent(n, words, f.exact)
		}
	}
	f.fillChildrenInfo()
	return f
}

// BuildFragmentIDs is the ID form of BuildFragment: a single pass over the
// RTF's keyword nodes (which arrive in pre-order) maintaining the path
// stack from the RTF root to the current node, so every path node is
// created exactly once, children land in document order, and node codes are
// zero-copy sub-slices of the table arena.
func BuildFragmentIDs(t *nid.Table, r *rtf.IDRTF, labelOf IDLabelFunc, contentOf IDContentFunc, opts Options) *Fragment {
	f := &Fragment{
		tab:      t,
		sourceID: r,
		exact:    opts.ExactContent,
	}
	// Nodes come from a chunked arena: one allocation covers many nodes,
	// and a full chunk starts a fresh one (never reallocating, so issued
	// pointers stay valid).
	arena := make([]Node, 0, len(r.KeywordNodes)*2+4)
	newNode := func() *Node {
		if len(arena) == cap(arena) {
			arena = make([]Node, 0, 2*cap(arena))
		}
		arena = append(arena, Node{})
		return &arena[len(arena)-1]
	}
	f.nodes = make([]*Node, 0, cap(arena))

	root := newNode()
	root.ID, root.Code, root.Label = r.Root, t.Code(r.Root), labelOf(r.Root)
	f.Root = root
	f.nodes = append(f.nodes, root)
	rootDepth := int(t.Depth(r.Root))

	stackBuf := [12]*Node{root}
	stack := stackBuf[:1] // path from the RTF root to the current node
	var ancBuf [12]nid.ID
	anc := ancBuf[:0] // scratch: ancestors of the current event below the shared path
	for _, ev := range r.KeywordNodes {
		top := stack[len(stack)-1]
		l := int(t.LCADepth(top.ID, ev.ID)) // depth of the deepest shared path node
		stack = stack[:l-rootDepth+1]
		anc = anc[:0]
		for cur := ev.ID; int(t.Depth(cur)) > l; cur = t.Parent(cur) {
			anc = append(anc, cur)
		}
		for j := len(anc) - 1; j >= 0; j-- {
			id := anc[j]
			parent := stack[len(stack)-1]
			n := newNode()
			n.ID, n.Code, n.Label, n.Parent = id, t.Code(id), labelOf(id), parent
			parent.Children = append(parent.Children, n)
			f.nodes = append(f.nodes, n)
			stack = append(stack, n)
		}
		kn := stack[len(stack)-1]
		kn.IsKeywordNode = true
		kn.Mask |= ev.Mask
		words := contentOf(ev.ID)
		for n := kn; n != nil; n = n.Parent {
			n.KList |= ev.Mask
			mergeContent(n, words, f.exact)
		}
	}
	f.fillChildrenInfo()
	return f
}

func (f *Fragment) ensure(c dewey.Code, labelOf LabelFunc) *Node {
	k := c.Key()
	if n, ok := f.byKey[k]; ok {
		return n
	}
	n := &Node{Code: c, Label: labelOf(c), ID: nid.None}
	f.byKey[k] = n
	f.nodes = append(f.nodes, n)
	return n
}

func mergeContent(n *Node, words []string, exact bool) {
	for _, w := range words {
		if n.CID.Min == "" || w < n.CID.Min {
			n.CID.Min = w
		}
		if w > n.CID.Max {
			n.CID.Max = w
		}
	}
	if exact {
		if n.content == nil {
			n.content = make(map[string]struct{}, len(words))
		}
		for _, w := range words {
			n.content[w] = struct{}{}
		}
	}
}

func (f *Fragment) fillChildrenInfo() {
	for _, n := range f.nodes {
		if len(n.Children) == 0 {
			continue
		}
		// Children are appended while walking keyword nodes in pre-order,
		// so they already sit in document order; verify cheaply and only
		// sort when an unsorted source (defensive) is detected.
		if !sortedNodes(n.Children) {
			sortNodesDoc(n.Children)
		}
		// Per-label grouping. The distinct labels under one node are few,
		// so linear scans beat map allocations, and all items share four
		// exact-size backing arrays (items, grouped children, key numbers,
		// cIDs) instead of growing per-item slices.
		nc := len(n.Children)
		items := make([]LabelItem, 0, min(nc, 8))
		repeated := false
		for _, ch := range n.Children {
			found := false
			for i := range items {
				if items[i].Label == ch.Label {
					items[i].Counter++
					found = true
					repeated = true
					break
				}
			}
			if !found {
				items = append(items, LabelItem{Label: ch.Label, Counter: 1})
			}
		}
		grouped := make([]*Node, nc)
		// The key-number and cID lists are only ever consulted for items
		// with several children (rules 2a/2b); when every label is unique
		// (the common shape), skip their backing arrays entirely.
		var knums []uint64
		var cids []CID
		if repeated {
			knums = make([]uint64, nc)
			cids = make([]CID, nc)
		}
		off := 0
		for i := range items {
			li := &items[i]
			c := li.Counter
			li.Children = grouped[off : off : off+c] // grows within its segment only
			if repeated {
				li.ChKList = knums[off : off : off+c]
				li.ChCIDs = cids[off : off : off+c]
			}
			off += c
		}
		for _, ch := range n.Children {
			for i := range items {
				li := &items[i]
				if li.Label != ch.Label {
					continue
				}
				li.Children = append(li.Children, ch)
				if repeated {
					if !containsU64(li.ChKList, ch.KList) {
						li.ChKList = append(li.ChKList, ch.KList)
					}
					if !containsCID(li.ChCIDs, ch.CID) {
						li.ChCIDs = append(li.ChCIDs, ch.CID)
					}
				}
				break
			}
		}
		for i := range items {
			li := &items[i]
			sortU64(li.ChKList)
			sortCIDs(li.ChCIDs)
		}
		n.Items = items
	}
}

// sortU64 and sortCIDs are allocation-free insertion sorts: child groups
// are tiny, and sort.Slice would allocate a closure and swapper per call.
func sortU64(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortCIDs(xs []CID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].Less(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func containsU64(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsCID(xs []CID, v CID) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sortedNodes(ns []*Node) bool {
	for i := 1; i < len(ns); i++ {
		if nodeLess(ns[i], ns[i-1]) {
			return false
		}
	}
	return true
}

// sortNodesDoc orders nodes in document order without the closure and
// swapper allocations of sort.Slice: insertion sort for the tiny slices
// the hot path produces, slices.SortFunc (allocation-free generics)
// otherwise.
func sortNodesDoc(ns []*Node) {
	if len(ns) < 16 {
		for i := 1; i < len(ns); i++ {
			for j := i; j > 0 && nodeLess(ns[j], ns[j-1]); j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
		return
	}
	slices.SortFunc(ns, func(a, b *Node) int {
		if nodeLess(a, b) {
			return -1
		}
		if nodeLess(b, a) {
			return 1
		}
		return 0
	})
}

// nodeLess orders fragment nodes in document order: by table ID when both
// carry one (an integer compare), by Dewey code otherwise.
func nodeLess(a, b *Node) bool {
	if a.ID != nid.None && b.ID != nid.None {
		return a.ID < b.ID
	}
	return dewey.Compare(a.Code, b.Code) < 0
}

// NodeAt returns the fragment node with the given code, or nil.
func (f *Fragment) NodeAt(c dewey.Code) *Node {
	if f.byKey != nil {
		return f.byKey[c.Key()]
	}
	for _, n := range f.nodes {
		if dewey.Equal(n.Code, c) {
			return n
		}
	}
	return nil
}

// Size returns the number of nodes in the unpruned fragment.
func (f *Fragment) Size() int { return len(f.nodes) }

// Source returns the code-based RTF the fragment was built from, or nil
// for ID-built fragments (see SourceID).
func (f *Fragment) Source() *rtf.RTF { return f.source }

// SourceID returns the ID-based RTF the fragment was built from, or nil
// for code-built fragments.
func (f *Fragment) SourceID() *rtf.IDRTF { return f.sourceID }

// Result is the outcome of pruning a fragment under one mode: the kept node
// codes in pre-order.
type Result struct {
	Root dewey.Code
	Kept []dewey.Code
	// KeptIDs parallels Kept with table IDs when the fragment was built
	// over a node table (BuildFragmentIDs); nil otherwise.
	KeptIDs []nid.ID
	// Visited is the node count of the unpruned fragment tree, so
	// Visited-len(Kept) is how many nodes the pruning mechanism removed —
	// the per-fragment effectiveness number the explain/tracing surfaces
	// report.
	Visited int
	keep    map[string]bool // lazy; see KeepSet
}

// KeepSet returns the kept codes keyed by dewey key, built lazily on first
// use (shared map; do not modify, do not call concurrently with itself).
func (r *Result) KeepSet() map[string]bool {
	if r.keep == nil {
		m := make(map[string]bool, len(r.Kept))
		var buf []byte
		for _, c := range r.Kept {
			buf = c.AppendKey(buf[:0])
			m[string(buf)] = true
		}
		r.keep = m
	}
	return r.keep
}

// Contains reports whether the pruned fragment kept the node.
func (r *Result) Contains(c dewey.Code) bool { return r.KeepSet()[c.Key()] }

// Len returns the number of kept nodes.
func (r *Result) Len() int { return len(r.Kept) }

// Equal reports whether two results kept exactly the same node set.
func (r *Result) Equal(o *Result) bool {
	if len(r.Kept) != len(o.Kept) {
		return false
	}
	for i := range r.Kept {
		if !dewey.Equal(r.Kept[i], o.Kept[i]) {
			return false
		}
	}
	return true
}

// Prune applies the selected filtering mechanism (the pruning step of
// pruneRTF) and returns the kept node set. The fragment itself is not
// mutated, so several modes can be applied to the same fragment.
func (f *Fragment) Prune(mode Mode, opts Options) *Result {
	// Breadth-first traversal; children of discarded nodes are never
	// visited, discarding whole subtrees. The kept slice doubles as the
	// BFS queue, since every visited node is kept.
	kept := make([]*Node, 1, len(f.nodes))
	kept[0] = f.Root
	for qi := 0; qi < len(kept); qi++ {
		n := kept[qi]
		switch mode {
		case NoPruning:
			kept = append(kept, n.Children...)
		case Contributor:
			kept = appendContributors(kept, n)
		default:
			kept = appendValidContributors(kept, n, f.exact && opts.ExactContent)
		}
	}
	sortNodesDoc(kept)
	res := &Result{Root: f.Root.Code, Kept: make([]dewey.Code, len(kept)), Visited: len(f.nodes)}
	if f.tab != nil {
		res.KeptIDs = make([]nid.ID, len(kept))
	}
	for i, n := range kept {
		res.Kept[i] = n.Code
		if f.tab != nil {
			res.KeptIDs[i] = n.ID
		}
	}
	return res
}

// appendValidContributors implements lines 16–26 of Algorithm 1, appending
// the surviving children of n (in document order) to out.
func appendValidContributors(out []*Node, n *Node, exact bool) []*Node {
	start := len(out)
	for ii := range n.Items {
		li := &n.Items[ii]
		if li.Counter == 1 {
			// Rule 1: unique label among siblings — always a valid
			// contributor.
			out = append(out, li.Children[0])
			continue
		}
		// Small stack buffers: sibling groups are tiny, so the seen-sets
		// stay on the stack instead of allocating per group.
		var (
			knumBuf   [16]uint64
			cidBuf    [16]CID
			usedKNums = knumBuf[:0]
			usedCIDs  = cidBuf[:0]
			keptExact []*Node
		)
		for _, ch := range li.Children {
			knum := ch.KList
			if containsU64(usedKNums, knum) {
				// Rule 2(b): equal keyword set — keep only if the content
				// differs from every kept equal-keyword sibling.
				if exact {
					if !duplicateContent(ch, keptExact) {
						out = append(out, ch)
						keptExact = append(keptExact, ch)
					}
					continue
				}
				if !containsCID(usedCIDs, ch.CID) {
					out = append(out, ch)
					usedCIDs = append(usedCIDs, ch.CID)
				}
				continue
			}
			// Rule 2(a): discard when a same-label sibling's keyword set
			// strictly covers this child's.
			if li.coveredByLarger(knum) {
				continue
			}
			out = append(out, ch)
			usedKNums = append(usedKNums, knum)
			if !containsCID(usedCIDs, ch.CID) {
				usedCIDs = append(usedCIDs, ch.CID)
			}
			if exact {
				keptExact = append(keptExact, ch)
			}
		}
	}
	if !sortedNodes(out[start:]) {
		sortNodesDoc(out[start:])
	}
	return out
}

func duplicateContent(ch *Node, kept []*Node) bool {
	for _, k := range kept {
		if k.KList != ch.KList || len(k.content) != len(ch.content) {
			continue
		}
		same := true
		for w := range ch.content {
			if _, ok := k.content[w]; !ok {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// appendContributors implements MaxMatch's pruneMatches condition: child c
// survives iff no sibling's keyword set strictly covers dMatch(c). Labels
// and content are ignored.
func appendContributors(out []*Node, n *Node) []*Node {
	for _, ch := range n.Children {
		covered := false
		for _, sib := range n.Children {
			if sib == ch {
				continue
			}
			if sib.KList != ch.KList && sib.KList&ch.KList == ch.KList {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, ch)
		}
	}
	return out
}

// Sketch renders the fragment's annotated nodes for debugging, in the style
// of Figure 4(b): code, label, key number and cID per node.
func (f *Fragment) Sketch() string {
	ordered := make([]*Node, len(f.nodes))
	copy(ordered, f.nodes)
	sortNodesDoc(ordered)
	var b strings.Builder
	for _, n := range ordered {
		fmt.Fprintf(&b, "%s%s (%s) k=%d cID=%s", strings.Repeat("  ", len(n.Code)-len(f.Root.Code)), n.Code, n.Label, n.KList, n.CID)
		if n.IsKeywordNode {
			b.WriteString(" *")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
