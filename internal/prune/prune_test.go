package prune

import (
	"strings"
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/paperdata"
	"xks/internal/rtf"
	"xks/internal/xmltree"
)

// harness builds all fragments for a query over a tree.
type harness struct {
	tree *xmltree.Tree
	an   *analysis.Analyzer
	rtfs []*rtf.RTF
}

func newHarness(t *testing.T, tree *xmltree.Tree, query string) *harness {
	t.Helper()
	an := analysis.New()
	ix := index.Build(tree, an)
	_, sets, err := ix.KeywordSets(query)
	if err != nil {
		t.Fatalf("KeywordSets(%q): %v", query, err)
	}
	return &harness{tree: tree, an: an, rtfs: rtf.Build(lca.ELCAStackMerge(sets), sets)}
}

func (h *harness) labelOf(c dewey.Code) string {
	return h.tree.NodeAt(c).Label
}

func (h *harness) contentOf(c dewey.Code) []string {
	return h.an.ContentSet(h.tree.NodeAt(c).ContentPieces()...)
}

func (h *harness) fragment(t *testing.T, i int, opts Options) *Fragment {
	t.Helper()
	if i >= len(h.rtfs) {
		t.Fatalf("only %d fragments", len(h.rtfs))
	}
	return BuildFragment(h.rtfs[i], h.labelOf, h.contentOf, opts)
}

func keptStrings(r *Result) []string {
	out := make([]string, len(r.Kept))
	for i, c := range r.Kept {
		out[i] = c.String()
	}
	return out
}

func assertKept(t *testing.T, r *Result, want ...string) {
	t.Helper()
	got := keptStrings(r)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("kept = %v, want %v", got, want)
	}
}

// Figure 3(b): the raw RTF for Q1; ValidRTF keeps all of it (rule 1 saves
// the uniquely-labelled title node — no false positive).
func TestQ1ValidRTFKeepsTitle(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q1)
	f := h.fragment(t, 0, Options{})
	res := f.Prune(ValidContributor, Options{})
	assertKept(t, res,
		"0.2.1", "0.2.1.0", "0.2.1.0.0", "0.2.1.0.0.0",
		"0.2.1.0.1", "0.2.1.0.1.0", "0.2.1.1", "0.2.1.2")
}

// Figure 3(c): MaxMatch discards the title node for Q1 (the false positive
// problem: dMatch(title) ⊂ dMatch(abstract)).
func TestQ1MaxMatchDiscardsTitle(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q1)
	f := h.fragment(t, 0, Options{})
	res := f.Prune(Contributor, Options{})
	assertKept(t, res,
		"0.2.1", "0.2.1.0", "0.2.1.0.0", "0.2.1.0.0.0",
		"0.2.1.0.1", "0.2.1.0.1.0", "0.2.1.2")
	if res.Contains(dewey.MustParse("0.2.1.1")) {
		t.Error("MaxMatch should discard the title node")
	}
}

// Figure 2(d): the meaningful RTF for Q3 after valid-contributor pruning;
// article 0.2.1 is discarded by rule 2(a), everything on the 0.2.0 branch
// and the VLDB title node are kept.
func TestQ3ValidRTFFigure2d(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q3)
	f := h.fragment(t, 0, Options{})
	res := f.Prune(ValidContributor, Options{})
	assertKept(t, res,
		"0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2", "0.2.0.3", "0.2.0.3.0")
}

// MaxMatch on the Q3 RTF additionally discards the abstract and references
// branches (their keyword sets are strict subsets of the title's),
// illustrating the false positive problem on deeper structures.
func TestQ3MaxMatchOverprunes(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q3)
	f := h.fragment(t, 0, Options{})
	res := f.Prune(Contributor, Options{})
	assertKept(t, res, "0", "0.0", "0.2", "0.2.0", "0.2.0.1")
}

// NoPruning returns the raw RTF (Figure 2(c)).
func TestQ3NoPruning(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q3)
	f := h.fragment(t, 0, Options{})
	res := f.Prune(NoPruning, Options{})
	assertKept(t, res,
		"0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2", "0.2.0.3", "0.2.0.3.0", "0.2.1", "0.2.1.1")
}

// Figure 3(d) → Example 5 [redundancy]: for Q4 ValidRTF keeps one forward
// and one guard player; MaxMatch keeps all three position branches.
func TestQ4RedundancyProblem(t *testing.T) {
	h := newHarness(t, paperdata.Team(), paperdata.Q4)
	f := h.fragment(t, 0, Options{})

	valid := f.Prune(ValidContributor, Options{})
	assertKept(t, valid, "0", "0.0", "0.1", "0.1.0", "0.1.0.1", "0.1.1", "0.1.1.1")

	max := f.Prune(Contributor, Options{})
	assertKept(t, max, "0", "0.0", "0.1",
		"0.1.0", "0.1.0.1", "0.1.1", "0.1.1.1", "0.1.2", "0.1.2.1")
}

// Figure 3(a) → Example 5 [positive example]: for Q5 both mechanisms agree
// and return the Gassol fragment inside the team.
func TestQ5PositiveExample(t *testing.T) {
	h := newHarness(t, paperdata.Team(), paperdata.Q5)
	f := h.fragment(t, 0, Options{})
	want := []string{"0", "0.0", "0.1", "0.1.0", "0.1.0.0", "0.1.0.1"}
	assertKept(t, f.Prune(ValidContributor, Options{}), want...)
	assertKept(t, f.Prune(Contributor, Options{}), want...)
}

// Q2 produces two fragments; both filtering mechanisms keep them whole
// (Figures 2(a) and 2(b)).
func TestQ2BothFragmentsStable(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q2)
	if len(h.rtfs) != 2 {
		t.Fatalf("want 2 RTFs, got %d", len(h.rtfs))
	}
	art := h.fragment(t, 0, Options{})
	assertKept(t, art.Prune(ValidContributor, Options{}),
		"0.2.0", "0.2.0.0", "0.2.0.0.0", "0.2.0.0.0.0", "0.2.0.1", "0.2.0.2")
	ref := h.fragment(t, 1, Options{})
	assertKept(t, ref.Prune(ValidContributor, Options{}), "0.2.0.3.0")
	if !art.Prune(ValidContributor, Options{}).Equal(art.Prune(Contributor, Options{})) {
		t.Error("Q2 article fragment should be identical under both mechanisms")
	}
}

// Figure 4(c)-style inspection of the constructed node data structure for
// Q3: key numbers (our bit order: bit i = query keyword i) and label items.
func TestQ3NodeDataStructure(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q3)
	f := h.fragment(t, 0, Options{})

	// Q3 = vldb(b0) title(b1) xml(b2) keyword(b3) search(b4).
	root := f.NodeAt(dewey.MustParse("0"))
	if root == nil {
		t.Fatal("root missing")
	}
	if root.KList != 0b11111 {
		t.Errorf("root kList = %b, want 11111", root.KList)
	}
	if len(root.Items) != 2 {
		t.Fatalf("root label items = %d, want 2 (title, Articles)", len(root.Items))
	}

	articles := f.NodeAt(dewey.MustParse("0.2"))
	if articles.KList != 0b11110 {
		t.Errorf("Articles kList = %b, want 11110", articles.KList)
	}
	if len(articles.Items) != 1 || articles.Items[0].Counter != 2 {
		t.Fatalf("Articles should have one label item with counter 2, got %+v", articles.Items)
	}
	chk := articles.Items[0].ChKList
	if len(chk) != 2 || chk[0] != 0b00010 || chk[1] != 0b11110 {
		t.Errorf("chkList = %b, want [10 11110]", chk)
	}
	if !articles.Items[0].coveredByLarger(0b00010) {
		t.Error("key number 2 should be covered by 30")
	}
	if articles.Items[0].coveredByLarger(0b11110) {
		t.Error("the maximal key number should not be covered")
	}

	title00 := f.NodeAt(dewey.MustParse("0.0"))
	if title00.KList != 0b00011 {
		t.Errorf("node 0.0 kList = %b, want 11", title00.KList)
	}
	if !title00.IsKeywordNode {
		t.Error("0.0 should be a keyword node")
	}
	if f.NodeAt(dewey.MustParse("0.2")).IsKeywordNode {
		t.Error("0.2 is a pure path node")
	}
}

// cID features: the team players of Q4 have the content features the paper
// derives in Example 5 (lower-cased by our analyzer).
func TestQ4CIDFeatures(t *testing.T) {
	h := newHarness(t, paperdata.Team(), paperdata.Q4)
	f := h.fragment(t, 0, Options{})
	p0 := f.NodeAt(dewey.MustParse("0.1.0"))
	if p0.CID != (CID{Min: "forward", Max: "position"}) {
		t.Errorf("player 0 cID = %s", p0.CID)
	}
	p1 := f.NodeAt(dewey.MustParse("0.1.1"))
	if p1.CID != (CID{Min: "guard", Max: "position"}) {
		t.Errorf("player 1 cID = %s", p1.CID)
	}
	p2 := f.NodeAt(dewey.MustParse("0.1.2"))
	if p2.CID != p0.CID {
		t.Errorf("players 0 and 2 should share a cID: %s vs %s", p0.CID, p2.CID)
	}
}

// ExactContent mode agrees with the cID approximation on the paper data and
// still prunes the duplicate forward player.
func TestQ4ExactContent(t *testing.T) {
	h := newHarness(t, paperdata.Team(), paperdata.Q4)
	opts := Options{ExactContent: true}
	f := h.fragment(t, 0, opts)
	res := f.Prune(ValidContributor, opts)
	assertKept(t, res, "0", "0.0", "0.1", "0.1.0", "0.1.0.1", "0.1.1", "0.1.1.1")
	p0 := f.NodeAt(dewey.MustParse("0.1.0"))
	if !p0.HasContentWord("forward") || p0.HasContentWord("guard") {
		t.Error("exact content set wrong for player 0")
	}
	if p0.ContentSize() == 0 {
		t.Error("ContentSize should be positive in exact mode")
	}
}

// The cID approximation can treat two different content sets as equal; the
// exact mode distinguishes them. This constructs two same-label siblings
// whose content sets differ only in a middle word.
func TestCIDApproximationVsExact(t *testing.T) {
	tree := xmltree.Build(xmltree.E{Label: "root", Kids: []xmltree.E{
		{Label: "tag", Text: "special"},
		{Label: "item", Text: "alpha keyword zebra"},
		{Label: "item", Text: "alpha keyword middle zebra"},
	}})
	h := newHarness(t, tree, "special keyword")
	approx := h.fragment(t, 0, Options{})
	resApprox := approx.Prune(ValidContributor, Options{})
	// Equal kLists and equal cIDs (alpha, zebra): the approximation treats
	// the second item as a duplicate even though "middle" differs.
	assertKept(t, resApprox, "0", "0.0", "0.1")

	exactOpts := Options{ExactContent: true}
	exact := h.fragment(t, 0, exactOpts)
	resExact := exact.Prune(ValidContributor, exactOpts)
	// Exact comparison sees the differing "middle" word and keeps both.
	assertKept(t, resExact, "0", "0.0", "0.1", "0.2")
}

// Root is never pruned, even as a single keyword node fragment.
func TestRootOnlyFragment(t *testing.T) {
	h := newHarness(t, paperdata.Publications(), paperdata.Q2)
	ref := h.fragment(t, 1, Options{})
	for _, mode := range []Mode{ValidContributor, Contributor, NoPruning} {
		res := ref.Prune(mode, Options{})
		if res.Len() != 1 || !res.Contains(dewey.MustParse("0.2.0.3.0")) {
			t.Errorf("mode %s: ref fragment = %v", mode, keptStrings(res))
		}
	}
}

// Discarding a child must discard its whole subtree (BFS never descends).
func TestDiscardIsRecursive(t *testing.T) {
	tree := xmltree.Build(xmltree.E{Label: "root", Kids: []xmltree.E{
		{Label: "marker", Text: "gamma"},
		{Label: "rich", Kids: []xmltree.E{
			{Label: "x", Text: "alpha"},
			{Label: "y", Text: "beta"},
		}},
		{Label: "rich", Kids: []xmltree.E{
			{Label: "x", Text: "alpha"},
		}},
	}})
	h := newHarness(t, tree, "gamma alpha beta")
	f := h.fragment(t, 0, Options{})
	res := f.Prune(ValidContributor, Options{})
	// Second "rich" ({alpha} ⊂ {alpha,beta}) goes away along with its child
	// 0.2.0, which must not be visited.
	assertKept(t, res, "0", "0.0", "0.1", "0.1.0", "0.1.1")
}

func TestResultHelpers(t *testing.T) {
	h := newHarness(t, paperdata.Team(), paperdata.Q4)
	f := h.fragment(t, 0, Options{})
	a := f.Prune(ValidContributor, Options{})
	b := f.Prune(ValidContributor, Options{})
	if !a.Equal(b) {
		t.Error("identical prunes should be Equal")
	}
	c := f.Prune(Contributor, Options{})
	if a.Equal(c) {
		t.Error("different prunes should not be Equal")
	}
	if !a.KeepSet()[dewey.MustParse("0.1.0").Key()] {
		t.Error("KeepSet missing kept node")
	}
	if a.Root.String() != "0" {
		t.Errorf("Root = %s", a.Root)
	}
}

func TestModeString(t *testing.T) {
	if ValidContributor.String() != "ValidContributor" || Contributor.String() != "Contributor" ||
		NoPruning.String() != "NoPruning" || Mode(42).String() != "Mode(42)" {
		t.Error("Mode.String broken")
	}
}

func TestFragmentAccessors(t *testing.T) {
	h := newHarness(t, paperdata.Team(), paperdata.Q4)
	f := h.fragment(t, 0, Options{})
	if f.Size() != 9 {
		t.Errorf("Size = %d, want 9", f.Size())
	}
	if f.Source() != h.rtfs[0] {
		t.Error("Source mismatch")
	}
	if f.NodeAt(dewey.MustParse("9.9")) != nil {
		t.Error("NodeAt absent should be nil")
	}
	sk := f.Sketch()
	if !strings.Contains(sk, "0.1.0 (player)") || !strings.Contains(sk, "*") {
		t.Errorf("Sketch output unexpected:\n%s", sk)
	}
}

func BenchmarkBuildAndPrune(b *testing.B) {
	tree := paperdata.Publications()
	an := analysis.New()
	ix := index.Build(tree, an)
	_, sets, err := ix.KeywordSets(paperdata.Q3)
	if err != nil {
		b.Fatal(err)
	}
	rtfs := rtf.Build(lca.ELCAStackMerge(sets), sets)
	labelOf := func(c dewey.Code) string { return tree.NodeAt(c).Label }
	contentOf := func(c dewey.Code) []string { return an.ContentSet(tree.NodeAt(c).ContentPieces()...) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := BuildFragment(rtfs[0], labelOf, contentOf, Options{})
		f.Prune(ValidContributor, Options{})
	}
}
