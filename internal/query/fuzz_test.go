package query

import (
	"strings"
	"testing"

	"xks/internal/analysis"
)

// FuzzParse checks the query parser never panics and that parsed terms are
// well formed: non-empty, normalized keywords and single-colon syntax.
func FuzzParse(f *testing.F) {
	f.Add("xml keyword search")
	f.Add("title:xml author:")
	f.Add(":a ::b c:")
	f.Add("   ")
	f.Add("label:word extra:stuff:here")
	an := analysis.New()
	f.Fuzz(func(t *testing.T, q string) {
		terms, err := Parse(q, an)
		if err != nil {
			return
		}
		if len(terms) == 0 {
			t.Fatal("Parse returned no terms without error")
		}
		for _, term := range terms {
			if term.Keyword == "" && term.Label == "" {
				t.Fatalf("empty term from %q", q)
			}
			if term.Keyword != "" {
				if term.Keyword != strings.ToLower(term.Keyword) {
					t.Fatalf("keyword not normalized: %q", term.Keyword)
				}
				if an.IsStopWord(term.Keyword) {
					t.Fatalf("stop word survived: %q", term.Keyword)
				}
			}
			if strings.Count(term.Label, ":") != 0 {
				t.Fatalf("label contains colon: %q", term.Label)
			}
		}
	})
}
