// Package query parses keyword queries with optional label predicates, the
// XSearch-style extension (Cohen et al., VLDB 2003) the paper's related
// work discusses for incorporating more information into keywords:
//
//	xml keyword             plain keywords (the paper's core query model)
//	title:xml               keyword "xml" restricted to <title> nodes
//	author:                 any <author> node (label-only predicate)
//
// Terms normalize through the same analyzer as document content, so
// matching stays consistent with the index.
package query

import (
	"errors"
	"fmt"
	"strings"

	"xks/internal/analysis"
)

// MaxTerms bounds the number of terms per query: keyword membership is
// tracked in a 64-bit mask throughout the pipeline.
const MaxTerms = 64

// Sentinel errors, matched with errors.Is. The xks package re-exports them
// so HTTP handlers can map them to status codes without string matching.
var (
	// ErrEmptyQuery reports a query with no searchable terms (empty, all
	// stop words, or unsearchable predicates).
	ErrEmptyQuery = errors.New("query contains no searchable terms")
	// ErrTooManyTerms reports a query exceeding MaxTerms terms.
	ErrTooManyTerms = errors.New("too many query terms")
)

// Term is one parsed query term.
type Term struct {
	// Keyword is the normalized keyword, or "" for a label-only term.
	Keyword string
	// Label restricts matches to nodes with this element name ("" = any).
	// Comparison is case-insensitive.
	Label string
	// Raw preserves the original token for display.
	Raw string
}

// IsLabelOnly reports whether the term matches by label alone.
func (t Term) IsLabelOnly() bool { return t.Keyword == "" && t.Label != "" }

// String renders the term in input syntax.
func (t Term) String() string {
	if t.Label == "" {
		return t.Keyword
	}
	return t.Label + ":" + t.Keyword
}

// MatchesLabel reports whether the term's label predicate accepts the
// element name.
func (t Term) MatchesLabel(label string) bool {
	return t.Label == "" || strings.EqualFold(t.Label, label)
}

// Parse splits a query into terms, normalizing keywords with the analyzer
// and dropping duplicates. It fails when nothing searchable remains or a
// token is malformed.
func Parse(q string, an *analysis.Analyzer) ([]Term, error) {
	if an == nil {
		an = analysis.New()
	}
	var out []Term
	seen := map[string]bool{}
	for _, tok := range strings.Fields(q) {
		var term Term
		term.Raw = tok
		if i := strings.IndexByte(tok, ':'); i >= 0 {
			label := strings.TrimSpace(tok[:i])
			word := strings.TrimSpace(tok[i+1:])
			if label == "" && word == "" {
				return nil, fmt.Errorf("query: malformed term %q", tok)
			}
			if strings.ContainsRune(word, ':') {
				return nil, fmt.Errorf("query: malformed term %q (multiple colons)", tok)
			}
			term.Label = label
			if word != "" {
				term.Keyword = an.Normalize(word)
				if term.Keyword == "" {
					// Keyword part was a stop word or unsearchable: the
					// term cannot match anything meaningful.
					return nil, fmt.Errorf("query: term %q has an unsearchable keyword: %w", tok, ErrEmptyQuery)
				}
			} else if label == "" {
				return nil, fmt.Errorf("query: malformed term %q", tok)
			}
		} else {
			term.Keyword = an.Normalize(tok)
			if term.Keyword == "" {
				continue // plain stop words are silently dropped
			}
		}
		key := strings.ToLower(term.Label) + ":" + term.Keyword
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, term)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("query: %q: %w", q, ErrEmptyQuery)
	}
	if len(out) > MaxTerms {
		return nil, fmt.Errorf("query: %d terms, at most %d supported: %w", len(out), MaxTerms, ErrTooManyTerms)
	}
	return out, nil
}

// HasPredicates reports whether any term carries a label predicate; plain
// queries take the fast path through the inverted index alone.
func HasPredicates(terms []Term) bool {
	for _, t := range terms {
		if t.Label != "" {
			return true
		}
	}
	return false
}
