package query

import (
	"errors"
	"testing"

	"xks/internal/analysis"
)

func TestParsePlain(t *testing.T) {
	terms, err := Parse("XML the Keyword", analysis.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || terms[0].Keyword != "xml" || terms[1].Keyword != "keyword" {
		t.Fatalf("terms = %+v", terms)
	}
	if HasPredicates(terms) {
		t.Error("plain query should have no predicates")
	}
}

func TestParseLabelPredicate(t *testing.T) {
	terms, err := Parse("title:XML author:", analysis.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 {
		t.Fatalf("terms = %+v", terms)
	}
	if terms[0].Label != "title" || terms[0].Keyword != "xml" || terms[0].IsLabelOnly() {
		t.Errorf("term 0 = %+v", terms[0])
	}
	if terms[1].Label != "author" || !terms[1].IsLabelOnly() {
		t.Errorf("term 1 = %+v", terms[1])
	}
	if !HasPredicates(terms) {
		t.Error("HasPredicates should be true")
	}
	if terms[0].String() != "title:xml" || terms[1].String() != "author:" {
		t.Errorf("String() = %q / %q", terms[0].String(), terms[1].String())
	}
}

func TestParseColonOnlyKeyword(t *testing.T) {
	terms, err := Parse(":xml", analysis.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || terms[0].Label != "" || terms[0].Keyword != "xml" {
		t.Fatalf("terms = %+v", terms)
	}
}

func TestParseErrors(t *testing.T) {
	an := analysis.New()
	for _, bad := range []string{"", "the of", ":", "a:b:c", "title:the"} {
		if _, err := Parse(bad, an); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseSentinelErrors(t *testing.T) {
	an := analysis.New()
	// Unsearchable queries wrap ErrEmptyQuery, matchable with errors.Is.
	for _, empty := range []string{"", "the of", "title:the"} {
		if _, err := Parse(empty, an); !errors.Is(err, ErrEmptyQuery) {
			t.Errorf("Parse(%q): err = %v, want ErrEmptyQuery", empty, err)
		}
	}
	// Malformed terms are plain errors, not empty-query errors.
	if _, err := Parse("a:b:c", an); err == nil || errors.Is(err, ErrEmptyQuery) {
		t.Errorf("Parse(malformed): err = %v, want a non-sentinel error", err)
	}
}

func TestParseDedup(t *testing.T) {
	terms, err := Parse("xml XML title:xml title:XML", analysis.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 {
		t.Fatalf("terms = %+v", terms)
	}
}

func TestParseTooManyTerms(t *testing.T) {
	q := ""
	for i := 0; i < 70; i++ {
		q += " word" + string(rune('a'+i%26)) + string(rune('a'+(i/26)))
	}
	if _, err := Parse(q, analysis.New()); !errors.Is(err, ErrTooManyTerms) {
		t.Errorf("65+ terms: err = %v, want ErrTooManyTerms", err)
	}
}

func TestMatchesLabel(t *testing.T) {
	cases := []struct {
		term  Term
		label string
		want  bool
	}{
		{Term{Keyword: "x"}, "anything", true},
		{Term{Keyword: "x", Label: "title"}, "title", true},
		{Term{Keyword: "x", Label: "Title"}, "title", true},
		{Term{Keyword: "x", Label: "title"}, "abstract", false},
	}
	for _, c := range cases {
		if got := c.term.MatchesLabel(c.label); got != c.want {
			t.Errorf("%+v MatchesLabel(%q) = %v", c.term, c.label, got)
		}
	}
}

func TestParseNilAnalyzer(t *testing.T) {
	terms, err := Parse("xml", nil)
	if err != nil || len(terms) != 1 {
		t.Fatalf("Parse with nil analyzer: %v %+v", err, terms)
	}
}
