package rank

import (
	"math"
	"math/rand"
	"testing"

	"xks/internal/dewey"
	"xks/internal/lca"
	"xks/internal/nid"
)

// The incremental scorer must be bit-identical to ScoreIDs when fed the same
// events in the same order — the planner's score-without-events mode depends
// on it.
func TestIncrementalMatchesScoreIDsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		words := make([]string, k)
		idf := make(map[string]float64, k)
		for i := range words {
			words[i] = string(rune('a' + i))
			idf[words[i]] = rng.Float64() * 5
		}
		s := &Scorer{
			Decay: 0.5 + rng.Float64()/2,
			IDF:   func(w string) float64 { return idf[w] },
		}

		codes := make([]dewey.Code, 0, 40)
		for i := 0; i < 40; i++ {
			depth := 1 + rng.Intn(6)
			c := make(dewey.Code, depth)
			for d := range c {
				c[d] = uint32(rng.Intn(3) + 1)
			}
			codes = append(codes, c)
		}
		tab := nid.FromCodes(codes)
		root := nid.ID(rng.Intn(tab.Len()))
		events := make([]lca.IDEvent, 1+rng.Intn(20))
		for i := range events {
			events[i] = lca.IDEvent{
				ID:   nid.ID(rng.Intn(tab.Len())),
				Mask: uint64(rng.Intn(1<<k-1) + 1),
			}
		}

		want := s.ScoreIDs(tab, root, events, words)

		inc := s.Incremental(words)
		best := make([]float64, inc.K())
		extra := make([]float64, inc.K())
		rootDepth := tab.Depth(root)
		for _, ev := range events {
			inc.Update(best, extra, int(tab.Depth(ev.ID)-rootDepth), ev.Mask)
		}
		got := inc.Finish(best, extra)

		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: incremental score %v != ScoreIDs %v (bitwise)", trial, got, want)
		}
	}
}
