// Package rank scores meaningful RTFs for result ordering — the ranking the
// paper's conclusion names as future work ("the ranking of the retrieved
// meaningful RTFs is still needed").
//
// The scorer follows the XRank intuition adapted to fragments: each keyword
// occurrence contributes the keyword's inverse document frequency, decayed
// by the occurrence's distance from the fragment root, and occurrences of
// rare keywords near the root dominate. More specific (deeper-rooted)
// fragments additionally win ties because their occurrences sit closer to
// their root.
package rank

import (
	"math"
	"sort"

	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/nid"
)

// Scorer assigns scores to fragments.
type Scorer struct {
	// Decay is the per-level attenuation of keyword occurrences below the
	// fragment root, in (0,1]. Defaults to 0.8.
	Decay float64
	// IDF returns the inverse-document-frequency weight of a keyword.
	IDF func(word string) float64
}

// IndexStats is the read surface a scorer needs from an index-like source:
// per-word document frequency and the indexed node count. Both *index.Index
// and a delta snapshot satisfy it.
type IndexStats interface {
	Frequency(word string) int
	NumNodes() int
}

// NewScorer builds a scorer whose IDF derives from the posting-list sizes
// of the given index: idf(w) = log(1 + N/df(w)).
func NewScorer(ix *index.Index) *Scorer { return NewScorerFrom(ix) }

// NewScorerFrom is NewScorer over any IndexStats source, letting snapshot
// views score with IDF weights reflecting exactly the nodes they can see —
// the same floating-point op order as an index freshly rebuilt at that
// state, so scores stay bit-identical.
func NewScorerFrom(ix IndexStats) *Scorer {
	return &Scorer{
		Decay: 0.8,
		IDF: func(word string) float64 {
			df := float64(ix.Frequency(word))
			if df == 0 {
				return 0
			}
			// NumNodes is read per call so incremental index updates
			// (index.Insert) are reflected without rebuilding the scorer.
			return math.Log1p(float64(ix.NumNodes()) / df)
		},
	}
}

// Score rates one fragment: root is the fragment root, events its keyword
// nodes with their match masks, and words the query keywords in mask-bit
// order. Higher is better.
func (s *Scorer) Score(root dewey.Code, events []lca.Event, words []string) float64 {
	decay := s.Decay
	if decay <= 0 || decay > 1 {
		decay = 0.8
	}
	// Per keyword, take the best (closest to the root) occurrence and add a
	// small bonus for additional occurrences, so a fragment with the same
	// best occurrences but more support ranks higher.
	best := make([]float64, len(words))
	extra := make([]float64, len(words))
	for _, ev := range events {
		dist := len(ev.Code) - len(root)
		if dist < 0 {
			dist = 0
		}
		w := math.Pow(decay, float64(dist))
		for i := range words {
			if ev.Mask&(1<<uint(i)) == 0 {
				continue
			}
			contrib := w * s.idf(words[i])
			if contrib > best[i] {
				extra[i] += best[i]
				best[i] = contrib
			} else {
				extra[i] += contrib
			}
		}
	}
	score := 0.0
	for i := range words {
		score += best[i] + 0.1*extra[i]
	}
	return score
}

// ScoreIDs is the ID form of Score, used by the production pipeline: node
// depths come from the table instead of code lengths. It performs exactly
// the same floating-point operations in the same order as Score, so the two
// forms produce bit-identical scores (the crosscheck tests rely on this).
func (s *Scorer) ScoreIDs(t *nid.Table, root nid.ID, events []lca.IDEvent, words []string) float64 {
	decay := s.Decay
	if decay <= 0 || decay > 1 {
		decay = 0.8
	}
	// Typical queries have a handful of keywords; keep the per-keyword
	// accumulators on the stack then (scoring runs once per candidate).
	var buf [16]float64 // zeroed per call
	var best, extra []float64
	if len(words) <= 8 {
		best = buf[:len(words):8]
		extra = buf[8 : 8+len(words)]
	} else {
		best = make([]float64, len(words))
		extra = make([]float64, len(words))
	}
	rootDepth := t.Depth(root)
	for _, ev := range events {
		dist := int(t.Depth(ev.ID) - rootDepth)
		if dist < 0 {
			dist = 0
		}
		w := math.Pow(decay, float64(dist))
		for i := range words {
			if ev.Mask&(1<<uint(i)) == 0 {
				continue
			}
			contrib := w * s.idf(words[i])
			if contrib > best[i] {
				extra[i] += best[i]
				best[i] = contrib
			} else {
				extra[i] += contrib
			}
		}
	}
	score := 0.0
	for i := range words {
		score += best[i] + 0.1*extra[i]
	}
	return score
}

// IncrementalScorer scores roots one keyword event at a time, without ever
// materializing the event list — the score-without-events dispatch mode uses
// it to fold each event into per-root accumulators as the RTF stage streams
// by. IDF weights are precomputed per query term, and Update/Finish perform
// exactly the floating-point operations ScoreIDs performs in the same order,
// so for events fed in dispatch (document) order the final score is
// bit-identical to ScoreIDs over the materialized list (pinned by tests).
type IncrementalScorer struct {
	decay float64
	idf   []float64
}

// Incremental precomputes the per-term weights for one query. words must be
// in mask-bit order.
func (s *Scorer) Incremental(words []string) *IncrementalScorer {
	decay := s.Decay
	if decay <= 0 || decay > 1 {
		decay = 0.8
	}
	idf := make([]float64, len(words))
	for i, w := range words {
		idf[i] = s.idf(w)
	}
	return &IncrementalScorer{decay: decay, idf: idf}
}

// K returns the number of query terms (the length Update expects of the
// best/extra accumulator slices).
func (sc *IncrementalScorer) K() int { return len(sc.idf) }

// Update folds one keyword event — dist levels below its root, matching the
// masked terms — into the root's accumulators (each of length K, zeroed
// before the first event).
func (sc *IncrementalScorer) Update(best, extra []float64, dist int, mask uint64) {
	if dist < 0 {
		dist = 0
	}
	w := math.Pow(sc.decay, float64(dist))
	for i := range sc.idf {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		contrib := w * sc.idf[i]
		if contrib > best[i] {
			extra[i] += best[i]
			best[i] = contrib
		} else {
			extra[i] += contrib
		}
	}
}

// Finish collapses the accumulators into the root's final score.
func (sc *IncrementalScorer) Finish(best, extra []float64) float64 {
	score := 0.0
	for i := range sc.idf {
		score += best[i] + 0.1*extra[i]
	}
	return score
}

func (s *Scorer) idf(word string) float64 {
	if s.IDF == nil {
		return 1
	}
	return s.IDF(word)
}

// Ranked pairs an index into a fragment list with its score.
type Ranked struct {
	Index int
	Score float64
}

// Order returns the fragment indices ordered by descending score, breaking
// ties by ascending index (document order).
func Order(scores []float64) []Ranked {
	out := make([]Ranked, len(scores))
	for i, s := range scores {
		out[i] = Ranked{Index: i, Score: s}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
