package rank

import (
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/paperdata"
)

func TestNewScorerIDF(t *testing.T) {
	ix := index.Build(paperdata.Publications(), analysis.New())
	s := NewScorer(ix)
	rare := s.IDF("vldb")      // frequency 1
	common := s.IDF("keyword") // frequency 3
	if rare <= common {
		t.Errorf("idf(vldb)=%v should exceed idf(keyword)=%v", rare, common)
	}
	if s.IDF("zebra") != 0 {
		t.Error("idf of absent word should be 0")
	}
}

func TestCloserOccurrenceScoresHigher(t *testing.T) {
	s := &Scorer{Decay: 0.5, IDF: func(string) float64 { return 1 }}
	words := []string{"w"}
	root := dewey.MustParse("0")
	near := s.Score(root, []lca.Event{{Code: dewey.MustParse("0.1"), Mask: 1}}, words)
	far := s.Score(root, []lca.Event{{Code: dewey.MustParse("0.1.1.1"), Mask: 1}}, words)
	if near <= far {
		t.Errorf("near=%v should exceed far=%v", near, far)
	}
}

func TestMoreSupportScoresHigher(t *testing.T) {
	s := &Scorer{Decay: 0.5, IDF: func(string) float64 { return 1 }}
	words := []string{"w"}
	root := dewey.MustParse("0")
	one := s.Score(root, []lca.Event{{Code: dewey.MustParse("0.1"), Mask: 1}}, words)
	two := s.Score(root, []lca.Event{
		{Code: dewey.MustParse("0.1"), Mask: 1},
		{Code: dewey.MustParse("0.2"), Mask: 1},
	}, words)
	if two <= one {
		t.Errorf("two occurrences %v should beat one %v", two, one)
	}
}

func TestRootOccurrenceDistanceClamped(t *testing.T) {
	s := &Scorer{Decay: 0.5, IDF: func(string) float64 { return 2 }}
	words := []string{"w"}
	root := dewey.MustParse("0.1")
	got := s.Score(root, []lca.Event{{Code: dewey.MustParse("0.1"), Mask: 1}}, words)
	if got != 2 {
		t.Errorf("score at root = %v, want 2 (no decay)", got)
	}
}

func TestBadDecayDefaults(t *testing.T) {
	s := &Scorer{Decay: -3, IDF: func(string) float64 { return 1 }}
	words := []string{"w"}
	root := dewey.MustParse("0")
	if got := s.Score(root, []lca.Event{{Code: dewey.MustParse("0.1"), Mask: 1}}, words); got <= 0 {
		t.Errorf("score with bad decay = %v", got)
	}
}

func TestNilIDFDefaultsToOne(t *testing.T) {
	s := &Scorer{Decay: 1}
	words := []string{"w"}
	root := dewey.MustParse("0")
	if got := s.Score(root, []lca.Event{{Code: dewey.MustParse("0.1"), Mask: 1}}, words); got != 1 {
		t.Errorf("score = %v, want 1", got)
	}
}

func TestOrder(t *testing.T) {
	ranked := Order([]float64{1.0, 3.0, 2.0, 3.0})
	wantIdx := []int{1, 3, 2, 0} // stable: equal scores keep document order
	for i, w := range wantIdx {
		if ranked[i].Index != w {
			t.Fatalf("Order = %+v, want indices %v", ranked, wantIdx)
		}
	}
	if len(Order(nil)) != 0 {
		t.Error("Order(nil) should be empty")
	}
}

func TestMultiKeywordScore(t *testing.T) {
	s := &Scorer{Decay: 0.5, IDF: func(w string) float64 {
		if w == "rare" {
			return 4
		}
		return 1
	}}
	words := []string{"rare", "common"}
	root := dewey.MustParse("0")
	ev := []lca.Event{
		{Code: dewey.MustParse("0.1"), Mask: 0b01},
		{Code: dewey.MustParse("0.2"), Mask: 0b10},
	}
	got := s.Score(root, ev, words)
	want := 0.5*4 + 0.5*1
	if got != want {
		t.Errorf("score = %v, want %v", got, want)
	}
}
