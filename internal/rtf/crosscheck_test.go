package rtf

import (
	"math/rand"
	"testing"

	"xks/internal/dewey"
	"xks/internal/lca"
)

// Build (the paper's getRTF over interesting LCAs) and BruteForce
// (Definitions 1–2 literally) coincide on the paper's examples, but can
// differ on adversarial inputs: rule 3 of Definition 2 excludes a keyword
// node whenever it can pair into a combination with a *lower* LCA, even when
// that lower node is all-containing but not an interesting LCA (its
// witnesses being absorbed by a deeper all-containing node). The paper's
// §4.3(1)/footnote 9 analysis assumes such lower LCAs always appear in the
// Indexed Stack output, which does not hold in that corner. getRTF's
// dispatch is the operational semantics the paper evaluates, so Build keeps
// it; this test pins down the exact relationship:
//
//  1. both produce the same fragment roots;
//  2. every brute-force partition is contained in the corresponding
//     dispatch partition (Build may additionally include keyword nodes that
//     rule 3 would exile to a non-interesting lower LCA).
func TestBuildVsDefinitionRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	strictlyLarger := 0
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(2)
		sets := randomSets(rng, k)
		fast := Build(lca.ELCAStackMerge(sets), sets)
		slow := BruteForce(sets)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: root sets differ: %v vs %v (sets %v)", trial, roots(fast), roots(slow), sets)
		}
		for i := range fast {
			if !dewey.Equal(fast[i].Root, slow[i].Root) {
				t.Fatalf("trial %d: roots differ: %v vs %v", trial, roots(fast), roots(slow))
			}
			fastSet := map[string]bool{}
			for _, ev := range fast[i].KeywordNodes {
				fastSet[ev.Code.Key()] = true
			}
			for _, ev := range slow[i].KeywordNodes {
				if !fastSet[ev.Code.Key()] {
					t.Fatalf("trial %d: brute node %s missing from dispatch partition %s", trial, ev.Code, fast[i].Root)
				}
			}
			if len(fast[i].KeywordNodes) > len(slow[i].KeywordNodes) {
				strictlyLarger++
			}
		}
	}
	if strictlyLarger == 0 {
		t.Log("no divergence observed in this run (expected a few)")
	}
}
