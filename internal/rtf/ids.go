// ID-based variant of the getRTF stage: dispatch runs on dense node IDs
// over the streamed posting-list merge, so building the per-LCA partitions
// allocates only the partitions themselves — no merged event slice, no
// string-keyed root map, no Dewey clones. The code-based Build in rtf.go is
// kept as the cross-checked reference (and for the eager baseline path).

package rtf

import (
	"context"

	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/trace"
)

// ctxCheckInterval is the number of dispatched merge events between context
// checks in BuildIDsCtx, mirroring the interval of the lca stage.
const ctxCheckInterval = 4096

// IDRTF is one relaxed tightest fragment in ID form: its root (an
// interesting LCA node) and the keyword nodes dispatched to it, in
// pre-order, each carrying the bitmask of query keywords it matches.
type IDRTF struct {
	Root         nid.ID
	KeywordNodes []lca.IDEvent
}

// Mask returns the union of the keyword masks of the fragment's keyword
// nodes.
func (r *IDRTF) Mask() uint64 {
	var m uint64
	for _, ev := range r.KeywordNodes {
		m |= ev.Mask
	}
	return m
}

// BuildIDs is the ID form of Build: given the sorted interesting LCA nodes
// and the ID posting lists D1..Dk, it dispatches every keyword node to the
// deepest LCA node that is its ancestor-or-self and returns one IDRTF per
// LCA node whose dispatched nodes cover the whole query, in pre-order of
// their roots. Identical output to Build modulo representation.
func BuildIDs(t *nid.Table, lcas []nid.ID, sets [][]nid.ID) []*IDRTF {
	out, _ := buildIDs(nil, t, lcas, sets, nil, false)
	return out
}

// BuildIDsCtx is BuildIDs with periodic cancellation checks inside both
// dispatch passes: every ctxCheckInterval merged events it consults ctx and
// abandons the build mid-stream with ctx.Err() when the context is done.
func BuildIDsCtx(ctx context.Context, t *nid.Table, lcas []nid.ID, sets [][]nid.ID) ([]*IDRTF, error) {
	return buildIDs(ctx, t, lcas, sets, nil, false)
}

// BuildIDsPlanned is BuildIDsCtx with the planner's merge order feeding the
// loser tree (nil = query order) and, when skip is set, subtree galloping:
// whenever an event lands outside every interesting LCA subtree, all merge
// sources jump directly to the next LCA root instead of draining the gap
// event by event. Both knobs are output-neutral (property-tested): skipped
// events dispatch nowhere, and the coalesced merge stream is independent of
// leaf order.
func BuildIDsPlanned(ctx context.Context, t *nid.Table, lcas []nid.ID, sets [][]nid.ID, order []int, skip bool) ([]*IDRTF, error) {
	return buildIDs(ctx, t, lcas, sets, order, skip)
}

func buildIDs(ctx context.Context, t *nid.Table, lcas []nid.ID, sets [][]nid.ID, order []int, skip bool) ([]*IDRTF, error) {
	if len(lcas) == 0 {
		return nil, nil
	}
	full := lca.FullMask(len(sets))

	rtfs := make([]IDRTF, len(lcas))
	out := make([]*IDRTF, len(lcas))
	for i, a := range lcas {
		rtfs[i].Root = a
		out[i] = &rtfs[i]
	}

	// Two merge passes over the streamed events: the first counts each
	// root's partition, the second fills exact-size segments of one shared
	// event arena — integer merges are cheap enough that counting twice
	// beats growing len(lcas) slices append by append.
	counts := make([]int32, len(lcas))
	total, err := dispatch(ctx, t, lcas, sets, order, skip, func(i int, ev lca.IDEvent) {
		counts[i]++
	})
	if err != nil {
		return nil, err
	}
	arena := make([]lca.IDEvent, 0, total)
	for i := range out {
		n := int(counts[i])
		out[i].KeywordNodes = arena[len(arena) : len(arena) : len(arena)+n]
		arena = arena[:len(arena)+n]
	}
	if _, err := dispatch(ctx, t, lcas, sets, order, skip, func(i int, ev lca.IDEvent) {
		out[i].KeywordNodes = append(out[i].KeywordNodes, ev)
	}); err != nil {
		return nil, err
	}

	kept := out[:0]
	for _, r := range out {
		if r.Mask() == full {
			kept = append(kept, r)
		}
	}
	// One report per build, never per event: free when the request is
	// untraced (a single context read).
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.SetInt("dispatchedEvents", int64(total))
		sp.SetInt("coveringRTFs", int64(len(kept)))
		sp.SetInt("partialRTFs", int64(len(out)-len(kept)))
	}
	return kept, nil
}

// dispatch walks the streamed merge of the posting lists in pre-order,
// keeping the stack of LCA nodes whose subtree contains the current event;
// the stack top is the deepest, i.e. the dispatch target. It reports the
// number of dispatched events. A nil ctx disables cancellation checks.
func dispatch(ctx context.Context, t *nid.Table, lcas []nid.ID, sets [][]nid.ID, order []int, skip bool, emit func(int, lca.IDEvent)) (int, error) {
	m := lca.NewMergerOrdered(sets, order)
	var stackBuf [12]int32
	stack := stackBuf[:0] // indices into lcas
	j, total := 0, 0
	for n := 0; ; n++ {
		if ctx != nil && n%ctxCheckInterval == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return total, err
			}
		}
		ev, ok := m.Next()
		if !ok {
			break
		}
		for j < len(lcas) && lcas[j] <= ev.ID {
			for len(stack) > 0 && !t.IsAncestorOrSelf(lcas[stack[len(stack)-1]], lcas[j]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, int32(j))
			j++
		}
		for len(stack) > 0 && !t.IsAncestorOrSelf(lcas[stack[len(stack)-1]], ev.ID) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			// Keyword node outside every interesting LCA subtree. Safe to
			// skip ahead: every root pushed so far was popped, and a popped
			// root's contiguous pre-order subtree ends at or before the
			// event that popped it, so no event below the next unseen root
			// can dispatch anywhere.
			if skip {
				if j >= len(lcas) {
					break
				}
				m.SkipTo(lcas[j])
			}
			continue
		}
		emit(int(stack[len(stack)-1]), ev)
		total++
	}
	return total, nil
}
