package rtf

import (
	"math/rand"
	"testing"

	"xks/internal/dewey"
	"xks/internal/lca"
	"xks/internal/nid"
)

// TestBuildIDsMatchesBuild cross-checks the ID dispatch against the
// code-based Build over random posting sets: same roots, same partitions,
// same masks, in the same order.
func TestBuildIDsMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 1000; trial++ {
		k := 1 + rng.Intn(3)
		sets := randomSets(rng, k)

		var all []dewey.Code
		for _, s := range sets {
			all = append(all, s...)
		}
		tab := nid.FromCodes(all)
		idSets := make([][]nid.ID, len(sets))
		for i, s := range sets {
			for _, c := range s {
				id, ok := tab.Find(c)
				if !ok {
					t.Fatalf("code %s missing from table", c)
				}
				idSets[i] = append(idSets[i], id)
			}
		}

		roots := lca.ELCAStackMerge(sets)
		idRoots := lca.ELCAStackMergeIDs(tab, idSets)

		want := Build(roots, sets)
		got := BuildIDs(tab, idRoots, idSets)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d fragments vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if !dewey.Equal(tab.Code(got[i].Root), want[i].Root) {
				t.Fatalf("trial %d fragment %d: root %s vs %s",
					trial, i, tab.Code(got[i].Root), want[i].Root)
			}
			if len(got[i].KeywordNodes) != len(want[i].KeywordNodes) {
				t.Fatalf("trial %d fragment %d: %d keyword nodes vs %d",
					trial, i, len(got[i].KeywordNodes), len(want[i].KeywordNodes))
			}
			for j, ev := range got[i].KeywordNodes {
				ref := want[i].KeywordNodes[j]
				if !dewey.Equal(tab.Code(ev.ID), ref.Code) || ev.Mask != ref.Mask {
					t.Fatalf("trial %d fragment %d event %d: (%s, %b) vs (%s, %b)",
						trial, i, j, tab.Code(ev.ID), ev.Mask, ref.Code, ref.Mask)
				}
			}
			if got[i].Mask() != want[i].Mask() {
				t.Fatalf("trial %d fragment %d: mask %b vs %b", trial, i, got[i].Mask(), want[i].Mask())
			}
		}
	}
}
