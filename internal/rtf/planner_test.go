package rtf

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"xks/internal/dewey"
	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/rank"
)

// randomDispatchInput builds a random table, k skewed posting lists, and
// the interesting-LCA roots the dispatch runs over.
func randomDispatchInput(rng *rand.Rand, nodes, k int) (*nid.Table, [][]nid.ID, []nid.ID) {
	codes := make([]dewey.Code, 0, nodes)
	for i := 0; i < nodes; i++ {
		depth := 1 + rng.Intn(6)
		c := make(dewey.Code, depth)
		for d := range c {
			c[d] = uint32(rng.Intn(3) + 1)
		}
		codes = append(codes, c)
	}
	t := nid.FromCodes(codes)
	sets := make([][]nid.ID, k)
	for i := range sets {
		want := t.Len()/(2*i+1) + 1
		seen := map[nid.ID]bool{}
		for j := 0; j < want; j++ {
			id := nid.ID(rng.Intn(t.Len()))
			if !seen[id] {
				seen[id] = true
				sets[i] = append(sets[i], id)
			}
		}
	}
	for i := range sets {
		s := sets[i]
		for a := 1; a < len(s); a++ {
			for b := a; b > 0 && s[b-1] > s[b]; b-- {
				s[b-1], s[b] = s[b], s[b-1]
			}
		}
	}
	roots := lca.ELCAStackMergeIDs(t, sets)
	return t, sets, roots
}

func sameRTFs(a, b []*IDRTF) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Root != b[i].Root || len(a[i].KeywordNodes) != len(b[i].KeywordNodes) {
			return false
		}
		for j := range a[i].KeywordNodes {
			if a[i].KeywordNodes[j] != b[i].KeywordNodes[j] {
				return false
			}
		}
	}
	return true
}

// Planned dispatch (rarest-first order + subtree galloping) must emit
// exactly the partitions the plain dispatch emits.
func TestBuildIDsPlannedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(5)
		tab, sets, roots := randomDispatchInput(rng, 20+rng.Intn(250), k)
		want := BuildIDs(tab, roots, sets)
		for _, skip := range []bool{false, true} {
			got, err := BuildIDsPlanned(context.Background(), tab, roots, sets, rng.Perm(k), skip)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRTFs(got, want) {
				t.Fatalf("trial %d skip=%t: planned dispatch diverged", trial, skip)
			}
		}
	}
}

// The scored single-pass build must keep the same covering roots and give
// each the bitwise-identical score ScoreIDs gives its materialized events.
func TestBuildScoredIDsMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(5)
		tab, sets, roots := randomDispatchInput(rng, 20+rng.Intn(250), k)
		words := make([]string, k)
		idf := map[string]float64{}
		for i := range words {
			words[i] = string(rune('a' + i))
			idf[words[i]] = 0.5 + rng.Float64()*4
		}
		scorer := &rank.Scorer{Decay: 0.8, IDF: func(w string) float64 { return idf[w] }}

		want := BuildIDs(tab, roots, sets)
		got, err := BuildScoredIDsCtx(context.Background(), tab, roots, sets,
			scorer.Incremental(words), rng.Perm(k), rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d scored roots, want %d", trial, len(got), len(want))
		}
		for i, s := range got {
			if s.Root != want[i].Root {
				t.Fatalf("trial %d: root %d = %d, want %d", trial, i, s.Root, want[i].Root)
			}
			ref := scorer.ScoreIDs(tab, want[i].Root, want[i].KeywordNodes, words)
			if math.Float64bits(s.Score) != math.Float64bits(ref) {
				t.Fatalf("trial %d root %d: score %v != %v (bitwise)", trial, s.Root, s.Score, ref)
			}
		}
	}
}

// Lazy hydration must reconstruct exactly the event list the eager build
// dispatched to each covering root.
func TestEventsForMatchesBuildIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(5)
		tab, sets, roots := randomDispatchInput(rng, 20+rng.Intn(250), k)
		for _, r := range BuildIDs(tab, roots, sets) {
			got := EventsFor(tab, r.Root, roots, sets)
			if len(got) != len(r.KeywordNodes) {
				t.Fatalf("trial %d root %d: %d events, want %d", trial, r.Root, len(got), len(r.KeywordNodes))
			}
			for j := range got {
				if got[j] != r.KeywordNodes[j] {
					t.Fatalf("trial %d root %d: event %d = %+v, want %+v",
						trial, r.Root, j, got[j], r.KeywordNodes[j])
				}
			}
		}
	}
}
