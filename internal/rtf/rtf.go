// Package rtf constructs Relaxed Tightest Fragments (Definition 2 of the
// paper): one fragment per interesting LCA node, holding the keyword nodes
// dispatched to it and all path nodes between them and the root.
//
// The production path is Build (the paper's getRTF): every keyword node is
// dispatched to the deepest interesting LCA that is its ancestor-or-self
// ("the last RTF in the pre-order LCA list whose root is an ancestor of or
// the same as the node"); keyword nodes with no such ancestor do not join
// any fragment. Fragments whose keyword nodes fail to cover the whole query
// are discarded, mirroring the semantics of the Indexed Stack getLCA stage.
//
// BruteForce implements Definitions 1 and 2 literally (enumerating the
// extended keyword node combination set ECTQ and filtering it by the three
// RTF rules). It is exponential and exists to anchor Build to the formal
// semantics in tests on small instances, such as the paper's Examples 3–4.
package rtf

import (
	"xks/internal/dewey"
	"xks/internal/lca"
)

// RTF is one relaxed tightest fragment: its root (an interesting LCA node)
// and the keyword nodes dispatched to it, in pre-order, each carrying the
// bitmask of query keywords it matches.
type RTF struct {
	Root         dewey.Code
	KeywordNodes []lca.Event
}

// PathNodes returns all Dewey codes of the fragment: the root, the keyword
// nodes and every node on a path between them, pre-order sorted without
// duplicates.
func (r *RTF) PathNodes() []dewey.Code {
	seen := map[string]dewey.Code{}
	add := func(c dewey.Code) {
		k := c.Key()
		if _, ok := seen[k]; !ok {
			seen[k] = c
		}
	}
	add(r.Root)
	for _, ev := range r.KeywordNodes {
		for l := len(r.Root); l <= len(ev.Code); l++ {
			add(ev.Code[:l].Clone())
		}
	}
	out := make([]dewey.Code, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	dewey.Sort(out)
	return out
}

// KeepSet returns the fragment's node set keyed by dewey key, the form the
// serializers consume.
func (r *RTF) KeepSet() map[string]bool {
	out := map[string]bool{}
	for _, c := range r.PathNodes() {
		out[c.Key()] = true
	}
	return out
}

// Mask returns the union of the keyword masks of the fragment's keyword
// nodes.
func (r *RTF) Mask() uint64 {
	var m uint64
	for _, ev := range r.KeywordNodes {
		m |= ev.Mask
	}
	return m
}

// IsSLCA reports whether the fragment's root is a smallest LCA, i.e. has no
// interesting LCA below it among the given pre-order-sorted roots.
func (r *RTF) IsSLCA(allRoots []dewey.Code) bool {
	i := dewey.SearchGE(allRoots, r.Root)
	// r.Root itself is at position i; a descendant root, if any, follows it.
	if i+1 < len(allRoots) && r.Root.IsAncestorOf(allRoots[i+1]) {
		return false
	}
	return true
}

// Build runs the getRTF stage: given the pre-order-sorted interesting LCA
// nodes and the keyword posting lists D1..Dk, it dispatches every keyword
// node to the deepest LCA node that is its ancestor-or-self and returns one
// RTF per LCA node whose dispatched nodes cover the whole query, in
// pre-order of their roots.
func Build(lcas []dewey.Code, sets [][]dewey.Code) []*RTF {
	if len(lcas) == 0 {
		return nil
	}
	events := lca.MergeSets(sets)
	full := lca.FullMask(len(sets))

	byRoot := make(map[string]*RTF, len(lcas))
	out := make([]*RTF, 0, len(lcas))
	for _, a := range lcas {
		r := &RTF{Root: a}
		byRoot[a.Key()] = r
		out = append(out, r)
	}

	// Merge pass: walk events in pre-order keeping the stack of LCA nodes
	// whose subtree contains the current event; the stack top is the
	// deepest, i.e. the dispatch target.
	var stack []dewey.Code
	j := 0
	for _, ev := range events {
		for j < len(lcas) && dewey.Compare(lcas[j], ev.Code) <= 0 {
			for len(stack) > 0 && !stack[len(stack)-1].IsAncestorOrSelf(lcas[j]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, lcas[j])
			j++
		}
		for len(stack) > 0 && !stack[len(stack)-1].IsAncestorOrSelf(ev.Code) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			continue // keyword node outside every interesting LCA subtree
		}
		r := byRoot[stack[len(stack)-1].Key()]
		r.KeywordNodes = append(r.KeywordNodes, ev)
	}

	kept := out[:0]
	for _, r := range out {
		if r.Mask() == full {
			kept = append(kept, r)
		}
	}
	return kept
}

// BruteForce enumerates the extended keyword node combination set ECTQ
// (Definition 1) over the posting lists and filters it with the three rules
// of Definition 2, returning the surviving partitions as RTFs sorted by
// root. Exponential in the posting list sizes; test use only.
func BruteForce(sets [][]dewey.Code) []*RTF {
	k := len(sets)
	if k == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}

	combos := enumerateECTQ(sets)
	// Rules 1 and 3 are per-combination predicates. Rule 2 (completeness /
	// maximality) must be read relative to them: a combination is an RTF
	// when it is maximal, by node-set inclusion with the same LCA, among
	// the combinations satisfying rules 1 and 3. (Read literally, rule 2
	// would reject the paper's own Example 4 partition {n,t,a}, since
	// extending it with the ref node keeps the LCA — but that extension
	// itself violates rules 1 and 3, so it cannot disqualify {n,t,a}.)
	type cand struct {
		v   []dewey.Code
		lca dewey.Code
		set map[string]bool
	}
	var eligible []cand
	for _, v := range combos {
		if !passesRules1And3(v, sets) {
			continue
		}
		set := map[string]bool{}
		for _, c := range v {
			set[c.Key()] = true
		}
		eligible = append(eligible, cand{v: v, lca: dewey.LCAAll(v...), set: set})
	}
	var out []*RTF
	for i, c := range eligible {
		maximal := true
		for j, d := range eligible {
			if i == j || !dewey.Equal(c.lca, d.lca) || len(d.v) <= len(c.v) {
				continue
			}
			subset := true
			for _, x := range c.v {
				if !d.set[x.Key()] {
					subset = false
					break
				}
			}
			if subset {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, comboToRTF(c.v, sets))
		}
	}
	sortRTFs(out)
	return out
}

// EnumerateECTQ exposes the ECTQ enumeration of Definition 1 for tests:
// each element is a distinct union of per-keyword nonempty subsets,
// pre-order sorted.
func EnumerateECTQ(sets [][]dewey.Code) [][]dewey.Code {
	combos := enumerateECTQ(sets)
	out := make([][]dewey.Code, len(combos))
	for i, c := range combos {
		out[i] = c
	}
	return out
}

func enumerateECTQ(sets [][]dewey.Code) [][]dewey.Code {
	k := len(sets)
	seen := map[string][]dewey.Code{}
	var order []string

	choice := make([][]dewey.Code, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			var union []dewey.Code
			um := map[string]dewey.Code{}
			for _, sub := range choice {
				for _, c := range sub {
					um[c.Key()] = c
				}
			}
			for _, c := range um {
				union = append(union, c)
			}
			dewey.Sort(union)
			key := ""
			for _, c := range union {
				key += c.Key() + "|"
			}
			if _, dup := seen[key]; !dup {
				seen[key] = union
				order = append(order, key)
			}
			return
		}
		n := len(sets[i])
		for bits := 1; bits < (1 << uint(n)); bits++ {
			var sub []dewey.Code
			for b := 0; b < n; b++ {
				if bits&(1<<uint(b)) != 0 {
					sub = append(sub, sets[i][b])
				}
			}
			choice[i] = sub
			rec(i + 1)
		}
	}
	rec(0)

	out := make([][]dewey.Code, 0, len(order))
	for _, key := range order {
		out = append(out, seen[key])
	}
	return out
}

// projection returns V ∩ Di.
func projection(v []dewey.Code, di []dewey.Code) []dewey.Code {
	inDi := map[string]bool{}
	for _, c := range di {
		inDi[c.Key()] = true
	}
	var out []dewey.Code
	for _, c := range v {
		if inDi[c.Key()] {
			out = append(out, c)
		}
	}
	return out
}

// nonEmptySubsets enumerates the nonempty subsets of list.
func nonEmptySubsets(list []dewey.Code) [][]dewey.Code {
	n := len(list)
	out := make([][]dewey.Code, 0, (1<<uint(n))-1)
	for bits := 1; bits < (1 << uint(n)); bits++ {
		var sub []dewey.Code
		for b := 0; b < n; b++ {
			if bits&(1<<uint(b)) != 0 {
				sub = append(sub, list[b])
			}
		}
		out = append(out, sub)
	}
	return out
}

func lcaOfSubsets(subs ...[]dewey.Code) dewey.Code {
	var all []dewey.Code
	for _, s := range subs {
		all = append(all, s...)
	}
	return dewey.LCAAll(all...)
}

// passesRules1And3 checks conditions 1 and 3 of Definition 2 for the
// combination v (condition 2 is the relative maximality handled by
// BruteForce itself).
func passesRules1And3(v []dewey.Code, sets [][]dewey.Code) bool {
	k := len(sets)
	a := dewey.LCAAll(v...)
	if a == nil {
		return false
	}
	proj := make([][]dewey.Code, k)
	for i := range sets {
		proj[i] = projection(v, sets[i])
		if len(proj[i]) == 0 {
			return false // does not cover keyword i at all
		}
	}

	// Rule 1: every covering sub-combination of v has LCA a.
	subChoices := make([][][]dewey.Code, k)
	for i := range proj {
		subChoices[i] = nonEmptySubsets(proj[i])
	}
	ok := true
	forEachProduct(subChoices, func(pick [][]dewey.Code) bool {
		if !dewey.Equal(lcaOfSubsets(pick...), a) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return false
	}

	// Rule 3: no sub-projection of v can join arbitrary other keyword node
	// subsets to form a combination whose LCA is a proper descendant of a.
	allChoices := make([][][]dewey.Code, k)
	for i := range sets {
		allChoices[i] = nonEmptySubsets(sets[i])
	}
	for i := range sets {
		for _, vPrime := range nonEmptySubsets(proj[i]) {
			violated := false
			replaced := make([][][]dewey.Code, k)
			copy(replaced, allChoices)
			replaced[i] = [][]dewey.Code{vPrime}
			forEachProduct(replaced, func(pick [][]dewey.Code) bool {
				l := lcaOfSubsets(pick...)
				if l != nil && a.IsAncestorOf(l) {
					violated = true
					return false
				}
				return true
			})
			if violated {
				return false
			}
		}
	}
	return true
}

// forEachProduct invokes fn for every element of the cartesian product of
// the choice lists; fn returning false aborts the enumeration.
func forEachProduct(choices [][][]dewey.Code, fn func([][]dewey.Code) bool) {
	pick := make([][]dewey.Code, len(choices))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(choices) {
			return fn(pick)
		}
		for _, c := range choices[i] {
			pick[i] = c
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

func comboToRTF(v []dewey.Code, sets [][]dewey.Code) *RTF {
	root := dewey.LCAAll(v...)
	r := &RTF{Root: root}
	for _, c := range v {
		var mask uint64
		for i, s := range sets {
			for _, x := range s {
				if dewey.Equal(x, c) {
					mask |= 1 << uint(i)
					break
				}
			}
		}
		r.KeywordNodes = append(r.KeywordNodes, lca.Event{Code: c, Mask: mask})
	}
	return r
}

func sortRTFs(rs []*RTF) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && dewey.Compare(rs[j-1].Root, rs[j].Root) > 0; j-- {
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}
