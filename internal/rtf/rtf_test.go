package rtf

import (
	"math/rand"
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/paperdata"
)

func setsFor(t *testing.T, query string, pub bool) [][]dewey.Code {
	t.Helper()
	tree := paperdata.Publications()
	if !pub {
		tree = paperdata.Team()
	}
	ix := index.Build(tree, analysis.New())
	_, sets, err := ix.KeywordSets(query)
	if err != nil {
		t.Fatalf("KeywordSets(%q): %v", query, err)
	}
	return sets
}

func buildFor(t *testing.T, query string, pub bool) []*RTF {
	sets := setsFor(t, query, pub)
	return Build(lca.ELCAStackMerge(sets), sets)
}

func roots(rs []*RTF) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Root.String()
	}
	return out
}

func knodeStrings(r *RTF) []string {
	out := make([]string, len(r.KeywordNodes))
	for i, ev := range r.KeywordNodes {
		out[i] = ev.Code.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Paper, Example 4: for "Liu Keyword" on Figure 1(a) the two RTF partitions
// are {r} (rooted at the ref node) and {n, t, a} (rooted at article 0.2.0).
func TestExample4Partitions(t *testing.T) {
	rs := buildFor(t, paperdata.QLiuKeyword, true)
	if !equalStrings(roots(rs), []string{"0.2.0", "0.2.0.3.0"}) {
		t.Fatalf("roots = %v", roots(rs))
	}
	if !equalStrings(knodeStrings(rs[0]), []string{"0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"}) {
		t.Errorf("article partition = %v", knodeStrings(rs[0]))
	}
	if !equalStrings(knodeStrings(rs[1]), []string{"0.2.0.3.0"}) {
		t.Errorf("ref partition = %v", knodeStrings(rs[1]))
	}
}

// The brute-force Definition 1+2 enumeration agrees with getRTF on the
// paper's running example.
func TestExample4BruteForceAgrees(t *testing.T) {
	sets := setsFor(t, paperdata.QLiuKeyword, true)
	fast := Build(lca.ELCAStackMerge(sets), sets)
	slow := BruteForce(sets)
	if len(fast) != len(slow) {
		t.Fatalf("fast %v vs brute %v", roots(fast), roots(slow))
	}
	for i := range fast {
		if !dewey.Equal(fast[i].Root, slow[i].Root) {
			t.Fatalf("root %d: %s vs %s", i, fast[i].Root, slow[i].Root)
		}
		if !equalStrings(knodeStrings(fast[i]), knodeStrings(slow[i])) {
			t.Errorf("partition %d: %v vs %v", i, knodeStrings(fast[i]), knodeStrings(slow[i]))
		}
	}
}

// Paper, Example 3: ECTQ for "Liu Keyword" has 11 elements (not 21, because
// the ref node occurs in both posting lists).
func TestExample3ECTQCount(t *testing.T) {
	sets := setsFor(t, paperdata.QLiuKeyword, true)
	combos := EnumerateECTQ(sets)
	if len(combos) != 11 {
		t.Fatalf("|ECTQ| = %d, want 11", len(combos))
	}
	// Every combination covers both keywords.
	for _, v := range combos {
		if len(projection(v, sets[0])) == 0 || len(projection(v, sets[1])) == 0 {
			t.Errorf("combination %v misses a keyword", v)
		}
	}
}

// Paper, Example 6: the single RTF for Q3 holds all five keyword nodes.
func TestExample6RTF(t *testing.T) {
	rs := buildFor(t, paperdata.Q3, true)
	if !equalStrings(roots(rs), []string{"0"}) {
		t.Fatalf("roots = %v", roots(rs))
	}
	want := []string{"0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.2.1.1"}
	if !equalStrings(knodeStrings(rs[0]), want) {
		t.Errorf("knodes = %v, want %v", knodeStrings(rs[0]), want)
	}
	// Figure 2(c): the raw RTF node set.
	wantPaths := []string{"0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2", "0.2.0.3", "0.2.0.3.0", "0.2.1", "0.2.1.1"}
	var got []string
	for _, c := range rs[0].PathNodes() {
		got = append(got, c.String())
	}
	if !equalStrings(got, wantPaths) {
		t.Errorf("path nodes = %v, want %v", got, wantPaths)
	}
}

// Q2 yields the two fragments of Figures 2(a) and 2(b); only the ref one is
// SLCA-rooted.
func TestQ2SLCAFlag(t *testing.T) {
	rs := buildFor(t, paperdata.Q2, true)
	if !equalStrings(roots(rs), []string{"0.2.0", "0.2.0.3.0"}) {
		t.Fatalf("roots = %v", roots(rs))
	}
	all := []dewey.Code{rs[0].Root, rs[1].Root}
	if rs[0].IsSLCA(all) {
		t.Error("article fragment should not be SLCA-rooted")
	}
	if !rs[1].IsSLCA(all) {
		t.Error("ref fragment should be SLCA-rooted")
	}
}

// Q4 on the team: single RTF rooted at team with the Grizzlies name node and
// the three position nodes (Figure 3(d) raw content).
func TestQ4TeamRTF(t *testing.T) {
	rs := buildFor(t, paperdata.Q4, false)
	if !equalStrings(roots(rs), []string{"0"}) {
		t.Fatalf("roots = %v", roots(rs))
	}
	want := []string{"0.0", "0.1.0.1", "0.1.1.1", "0.1.2.1"}
	if !equalStrings(knodeStrings(rs[0]), want) {
		t.Errorf("knodes = %v, want %v", knodeStrings(rs[0]), want)
	}
}

func TestBuildEmpty(t *testing.T) {
	if got := Build(nil, nil); got != nil {
		t.Errorf("Build(nil,nil) = %v", got)
	}
	if got := BruteForce(nil); got != nil {
		t.Errorf("BruteForce(nil) = %v", got)
	}
	if got := BruteForce([][]dewey.Code{{}}); got != nil {
		t.Errorf("BruteForce with empty list = %v", got)
	}
}

func TestMask(t *testing.T) {
	r := &RTF{Root: dewey.MustParse("0"), KeywordNodes: []lca.Event{
		{Code: dewey.MustParse("0.1"), Mask: 1},
		{Code: dewey.MustParse("0.2"), Mask: 2},
	}}
	if r.Mask() != 3 {
		t.Errorf("Mask = %b", r.Mask())
	}
}

func TestKeepSet(t *testing.T) {
	r := &RTF{Root: dewey.MustParse("0"), KeywordNodes: []lca.Event{
		{Code: dewey.MustParse("0.2.1"), Mask: 1},
	}}
	keep := r.KeepSet()
	for _, c := range []string{"0", "0.2", "0.2.1"} {
		if !keep[dewey.MustParse(c).Key()] {
			t.Errorf("KeepSet missing %s", c)
		}
	}
	if len(keep) != 3 {
		t.Errorf("KeepSet size = %d", len(keep))
	}
}

func randomSets(rng *rand.Rand, k int) [][]dewey.Code {
	sets := make([][]dewey.Code, k)
	for i := range sets {
		n := 1 + rng.Intn(3)
		m := map[string]dewey.Code{}
		for j := 0; j < n; j++ {
			depth := 1 + rng.Intn(4)
			c := make(dewey.Code, depth+1)
			c[0] = 0
			for d := 1; d <= depth; d++ {
				c[d] = uint32(rng.Intn(3))
			}
			m[c.Key()] = c
		}
		for _, c := range m {
			sets[i] = append(sets[i], c)
		}
		dewey.Sort(sets[i])
	}
	return sets
}

// Invariants of the partition produced by Build (the paper's keyword /
// uniqueness / completeness requirements):
//  1. every RTF covers all keywords;
//  2. roots are unique, partitions disjoint;
//  3. each RTF's keyword node set has LCA equal to its root;
//  4. a keyword node is always dispatched to the deepest interesting LCA
//     that is its ancestor-or-self.
func TestBuildInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(3)
		sets := randomSets(rng, k)
		lcas := lca.ELCAStackMerge(sets)
		rs := Build(lcas, sets)
		full := lca.FullMask(k)

		seenRoot := map[string]bool{}
		seenNode := map[string]string{}
		for _, r := range rs {
			if r.Mask() != full {
				t.Fatalf("trial %d: RTF %s misses keywords: %b", trial, r.Root, r.Mask())
			}
			if seenRoot[r.Root.Key()] {
				t.Fatalf("trial %d: duplicate root %s", trial, r.Root)
			}
			seenRoot[r.Root.Key()] = true
			var all []dewey.Code
			for _, ev := range r.KeywordNodes {
				if prev, dup := seenNode[ev.Code.Key()]; dup {
					t.Fatalf("trial %d: node %s in partitions %s and %s", trial, ev.Code, prev, r.Root)
				}
				seenNode[ev.Code.Key()] = r.Root.String()
				all = append(all, ev.Code)
			}
			if got := dewey.LCAAll(all...); !dewey.Equal(got, r.Root) {
				t.Fatalf("trial %d: LCA of partition = %s, root = %s", trial, got, r.Root)
			}
		}

		// Dispatch depth check: every keyword node in a partition must have
		// its deepest interesting-LCA ancestor equal to that partition root.
		for _, r := range rs {
			for _, ev := range r.KeywordNodes {
				var deepest dewey.Code
				for _, a := range lcas {
					if a.IsAncestorOrSelf(ev.Code) && (deepest == nil || len(a) > len(deepest)) {
						deepest = a
					}
				}
				if !dewey.Equal(deepest, r.Root) {
					t.Fatalf("trial %d: node %s dispatched to %s, deepest LCA is %s", trial, ev.Code, r.Root, deepest)
				}
			}
		}
	}
}

// PathNodes always forms an ancestor-closed set rooted at the RTF root.
func TestPathNodesAncestorClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		sets := randomSets(rng, 1+rng.Intn(3))
		rs := Build(lca.ELCAStackMerge(sets), sets)
		for _, r := range rs {
			nodes := r.PathNodes()
			keep := map[string]bool{}
			for _, c := range nodes {
				keep[c.Key()] = true
			}
			if !keep[r.Root.Key()] {
				t.Fatalf("trial %d: root missing from PathNodes", trial)
			}
			for _, c := range nodes {
				if len(c) > len(r.Root) {
					if !keep[c.Parent().Key()] {
						t.Fatalf("trial %d: parent of %s missing", trial, c)
					}
				}
			}
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	sets := make([][]dewey.Code, 3)
	for i := range sets {
		m := map[string]dewey.Code{}
		for j := 0; j < 2000; j++ {
			depth := 2 + rng.Intn(8)
			c := make(dewey.Code, depth+1)
			for d := 1; d <= depth; d++ {
				c[d] = uint32(rng.Intn(10))
			}
			m[c.Key()] = c
		}
		for _, c := range m {
			sets[i] = append(sets[i], c)
		}
		dewey.Sort(sets[i])
	}
	lcas := lca.ELCAStackMerge(sets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(lcas, sets)
	}
}
