// Score-without-events dispatch: ranked searches that will materialize only
// a few selected candidates don't need each candidate's keyword-event list —
// only its score. BuildScoredIDsCtx folds every dispatched event straight
// into per-root score accumulators (bit-identical to scoring the
// materialized list, see rank.IncrementalScorer) and EventsFor reconstructs
// the event list lazily for the candidates that actually get materialized.

package rtf

import (
	"context"
	"sort"

	"xks/internal/lca"
	"xks/internal/nid"
	"xks/internal/rank"
	"xks/internal/trace"
)

// ScoredID is the no-events form of IDRTF: a covering root and its score.
type ScoredID struct {
	Root  nid.ID
	Score float64
}

// BuildScoredIDsCtx runs one planned dispatch pass over the posting lists
// and returns, in pre-order, every root whose dispatched nodes cover the
// whole query, scored as if its event list had been materialized and passed
// to Scorer.ScoreIDs (same floating-point operations in the same order).
// Compared to BuildIDsPlanned it performs one merge pass instead of two and
// allocates O(roots) accumulators instead of O(events) arenas.
func BuildScoredIDsCtx(ctx context.Context, t *nid.Table, lcas []nid.ID, sets [][]nid.ID, sc *rank.IncrementalScorer, order []int, skip bool) ([]ScoredID, error) {
	if len(lcas) == 0 {
		return nil, nil
	}
	full := lca.FullMask(len(sets))
	k := sc.K()
	masks := make([]uint64, len(lcas))
	acc := make([]float64, 2*k*len(lcas)) // per root: best[0:k], extra[k:2k]
	total, err := dispatch(ctx, t, lcas, sets, order, skip, func(i int, ev lca.IDEvent) {
		masks[i] |= ev.Mask
		off := 2 * k * i
		sc.Update(acc[off:off+k], acc[off+k:off+2*k], int(t.Depth(ev.ID)-t.Depth(lcas[i])), ev.Mask)
	})
	if err != nil {
		return nil, err
	}
	kept := make([]ScoredID, 0, len(lcas))
	for i, m := range masks {
		if m != full {
			continue
		}
		off := 2 * k * i
		kept = append(kept, ScoredID{
			Root:  lcas[i],
			Score: sc.Finish(acc[off:off+k], acc[off+k:off+2*k]),
		})
	}
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.SetInt("dispatchedEvents", int64(total))
		sp.SetInt("coveringRTFs", int64(len(kept)))
		sp.SetInt("partialRTFs", int64(len(lcas)-len(kept)))
	}
	return kept, nil
}

// EventsFor reconstructs the keyword-event list of the RTF rooted at root,
// exactly as buildIDs would have dispatched it: allRoots must be the full
// pre-order interesting-LCA list of the same query (including non-covering
// roots — deeper partial roots steal events from their ancestors), and sets
// the query's posting lists. Only the contiguous pre-order window of root's
// subtree is merged, so hydrating one selected candidate costs the subtree,
// not the document.
func EventsFor(t *nid.Table, root nid.ID, allRoots []nid.ID, sets [][]nid.ID) []lca.IDEvent {
	end := t.SubtreeEnd(root)
	lo := sort.Search(len(allRoots), func(i int) bool { return allRoots[i] >= root })
	if lo == len(allRoots) || allRoots[lo] != root {
		return nil
	}
	hi := lo + sort.Search(len(allRoots)-lo, func(i int) bool { return allRoots[lo+i] >= end })
	// Roots outside [root, end) can't be dispatch targets for events inside
	// it: any other ancestor-or-self of such an event is an ancestor of
	// root, hence shallower than root itself.
	sub := allRoots[lo:hi]
	windowed := make([][]nid.ID, len(sets))
	for i, s := range sets {
		a := sort.Search(len(s), func(j int) bool { return s[j] >= root })
		b := a + sort.Search(len(s)-a, func(j int) bool { return s[a+j] >= end })
		windowed[i] = s[a:b]
	}
	var events []lca.IDEvent
	dispatch(nil, t, sub, windowed, nil, false, func(i int, ev lca.IDEvent) {
		if i == 0 {
			events = append(events, ev)
		}
	})
	return events
}
