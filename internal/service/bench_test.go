package service_test

import (
	"context"
	"sync"
	"testing"

	"xks"
	"xks/internal/datagen"
	"xks/internal/service"
)

var (
	benchOnce     sync.Once
	benchSearcher service.Searcher
)

// benchQueries is a repeated-query workload: a small hot set hit over and
// over, the locality pattern the cache exists for.
var benchQueries = []string{
	"lca keyword",
	"ranking fragment",
	"lca fragment",
	"keyword ranking",
}

func benchSetup(b *testing.B) service.Searcher {
	benchOnce.Do(func() {
		specs := []datagen.KeywordSpec{
			{Word: "lca", Count: 120},
			{Word: "keyword", Count: 150},
			{Word: "fragment", Count: 90},
			{Word: "ranking", Count: 60},
		}
		tree := datagen.DBLP(datagen.DBLPConfig{Seed: 11, NumRecords: 800, Keywords: specs})
		benchSearcher = service.SingleDoc{Name: "dblp.xml", Engine: xks.FromTree(tree)}
	})
	return benchSearcher
}

func runRepeatedQueries(b *testing.B, sv *service.Service) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchQueries[i%len(benchQueries)]
		if _, _, err := sv.Search(context.Background(), xks.Request{Query: q}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeatedQueryUncached is the baseline: every request re-runs
// the LCA → RTF → prune pipeline.
func BenchmarkRepeatedQueryUncached(b *testing.B) {
	sv := service.New(benchSetup(b), service.Config{CacheSize: 0})
	runRepeatedQueries(b, sv)
}

// BenchmarkRepeatedQueryCached serves the same workload through the LRU
// cache; after one cold miss per distinct query, every request is a hit.
// The acceptance bar is a >= 10x speedup over the uncached baseline.
func BenchmarkRepeatedQueryCached(b *testing.B) {
	sv := service.New(benchSetup(b), service.Config{CacheSize: 1024})
	runRepeatedQueries(b, sv)
}

// BenchmarkRepeatedQueryCachedParallel adds goroutine contention: the
// sharded cache and singleflight keep concurrent identical queries cheap.
func BenchmarkRepeatedQueryCachedParallel(b *testing.B) {
	sv := service.New(benchSetup(b), service.Config{CacheSize: 1024})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := benchQueries[i%len(benchQueries)]
			i++
			if _, _, err := sv.Search(context.Background(), xks.Request{Query: q}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
