package service

// Tests for the context-aware serving pieces: the length-prefixed cache
// key (collision regression) and the singleflight group's detach/retry
// behavior under cancellation.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xks"
)

// TestCacheKeyNoConcatenationCollisions is the regression test for the
// separator-based key scheme: with plain concatenation, a separator
// embedded in the query could alias another request's document filter.
// Length-prefixing makes such pairs distinct.
func TestCacheKeyNoConcatenationCollisions(t *testing.T) {
	pairs := [][2]xks.Request{
		// The classic splice: query absorbs the old "\x00" separator and
		// the document's first byte.
		{{Query: "a\x00b"}, {Query: "a", Document: "b"}},
		{{Query: "a\x00b\x00c"}, {Query: "a", Document: "b\x00c"}},
		// Boundary shifts between the two variable-length fields.
		{{Query: "ab"}, {Query: "a", Document: "b"}},
		{{Query: "a", Document: "b0"}, {Query: "a", Document: "b", Limit: 0}},
	}
	for _, p := range pairs {
		if cacheKey(p[0], xks.Auto) == cacheKey(p[1], xks.Auto) {
			t.Errorf("cacheKey collision: %+v and %+v -> %q", p[0], p[1], cacheKey(p[0], xks.Auto))
		}
	}
	// Pagination fields are part of the key: pages are distinct entries.
	if cacheKey(xks.Request{Query: "q", Offset: 0}, xks.Auto) == cacheKey(xks.Request{Query: "q", Offset: 10}, xks.Auto) {
		t.Error("offset must be part of the cache key")
	}
	// Timeout is not: a result is the same however long it was allowed to
	// take.
	if cacheKey(xks.Request{Query: "q"}, xks.Auto) != cacheKey(xks.Request{Query: "q", Timeout: time.Second}, xks.Auto) {
		t.Error("timeout must not be part of the cache key")
	}
}

// TestGroupWaiterDetachesOnCancel: a waiter whose context ends while the
// leader computes returns its own ctx.Err() immediately; the leader's
// execution and result are unaffected.
func TestGroupWaiterDetachesOnCancel(t *testing.T) {
	var g group
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
			close(started)
			<-release
			return &xks.CorpusResult{Query: "q"}, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, shared, err := g.do(ctx, "k", func() (*xks.CorpusResult, error) {
		t.Error("waiter must not execute")
		return nil, nil
	})
	// A detached waiter received nothing, so it must not count as a
	// collapsed request (shared=false keeps the metric honest).
	if shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("detached waiter: shared=%t err=%v", shared, err)
	}
	if since := time.Since(begin); since > 2*time.Second {
		t.Fatalf("detach took %v; must not wait for the leader", since)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

// TestGroupRetriesAfterLeaderCancelled: when the leader dies of its own
// cancellation, a waiter with a live context does not inherit that error —
// it re-executes as a fresh leader.
func TestGroupRetriesAfterLeaderCancelled(t *testing.T) {
	var g group
	var execs atomic.Int64
	started := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	go func() {
		g.do(leaderCtx, "k", func() (*xks.CorpusResult, error) {
			execs.Add(1)
			close(started)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
	}()
	<-started

	done := make(chan struct{})
	go func() {
		defer close(done)
		val, _, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
			execs.Add(1)
			return &xks.CorpusResult{Query: "fresh"}, nil
		})
		if err != nil || val == nil || val.Query != "fresh" {
			t.Errorf("retrying waiter: val=%v err=%v", val, err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter join before the leader dies
	cancelLeader()
	<-done
	if got := execs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (cancelled leader + retry)", got)
	}
}

// blockingSearcher parks until its context ends, standing in for a slow
// pipeline.
type blockingSearcher struct{}

func (blockingSearcher) Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (blockingSearcher) Documents() []xks.DocumentInfo { return nil }
func (blockingSearcher) Generation() uint64            { return 0 }

// TestServiceSearchPropagatesDeadline: a deadline on the caller's context
// reaches the searcher and surfaces as context.DeadlineExceeded, counted as
// an error in the metrics.
func TestServiceSearchPropagatesDeadline(t *testing.T) {
	sv := New(blockingSearcher{}, Config{CacheSize: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, cached, err := sv.Search(ctx, xks.Request{Query: "q"})
	if cached || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cached=%t err=%v, want context.DeadlineExceeded", cached, err)
	}
	if s := sv.Metrics().Snapshot(); s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
	// A failed execution must not poison the cache.
	if sv.CacheLen() != 0 {
		t.Errorf("CacheLen = %d after a failed search", sv.CacheLen())
	}
}
