package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"xks"
	"xks/internal/concurrent"
)

// group collapses concurrent executions with the same key into one: the
// first caller (the leader) runs fn; callers arriving while it is in
// flight block and share the leader's result. A thundering herd of N
// identical queries therefore costs one pipeline execution, not N.
//
// The collapse is context-aware: a waiter whose own context ends while the
// leader is still computing detaches immediately with its ctx.Err() — the
// leader (and the other waiters) are unaffected. Conversely, when a leader
// dies of its *own* cancellation, surviving waiters do not inherit that
// error: they re-enter the group and one of them leads a fresh execution.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done chan struct{} // closed when val/err are settled
	val  *xks.CorpusResult
	err  error
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// notOurAnswer reports whether a finished call's outcome is specific to the
// leader's own request conditions rather than to the query: its context
// died, or its BestEffort deadline truncated the page. Neither may be
// handed to a joiner as the query's answer — a Strict waiter with a
// generous deadline must get full results, not the leader's partial page —
// so joiners re-enter and one of them leads a fresh execution.
func notOurAnswer(c *call) bool {
	if isCtxErr(c.err) {
		return true
	}
	return c.err == nil && c.val != nil && c.val.Truncated
}

// poll joins an in-flight execution of key when one exists, without ever
// leading one: ok=false means nothing was in flight (or the leader died of
// its own cancellation, which is not this caller's answer) and the caller
// should execute itself. A waiter whose own ctx ends while the leader is
// still computing detaches with ok=true and its ctx.Err(). The streaming
// path uses this so a streamed request can collapse onto an identical
// buffered query without forcing streams — which are consumer-paced — to
// lead flights themselves.
func (g *group) poll(ctx context.Context, key string) (val *xks.Results, err error, ok bool) {
	g.mu.Lock()
	c, inFlight := g.calls[key]
	g.mu.Unlock()
	if !inFlight {
		return nil, nil, false
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err(), true
	case <-c.done:
	}
	if notOurAnswer(c) && ctx.Err() == nil {
		return nil, nil, false
	}
	return c.val, c.err, true
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller received another execution's result (a join, or a retry
// after a cancelled leader); a waiter that detached on its own dead
// context received nothing and reports shared=false, so the serving
// layer's collapsed-request metric counts only real collapses.
func (g *group) do(ctx context.Context, key string, fn func() (*xks.CorpusResult, error)) (val *xks.CorpusResult, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = map[string]*call{}
		}
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-ctx.Done():
				// Detach: our caller is gone; the leader keeps computing
				// for whoever remains.
				return nil, false, ctx.Err()
			case <-c.done:
			}
			if notOurAnswer(c) && ctx.Err() == nil {
				// The leader was cancelled — or its best-effort deadline
				// truncated the page — but we were not; its outcome is not
				// our answer. Re-enter the group; the first waiter back
				// leads a fresh execution.
				shared = true
				continue
			}
			return c.val, true, c.err
		}
		c := &call{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		defer func() {
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		// Runs before the release defer above (LIFO): a panicking fn must
		// hand joiners an error, not a nil result with a nil error — and the
		// leader itself absorbs the panic into a structured ErrInternal
		// (stack captured in the PanicError) instead of re-raising it
		// through the HTTP handler and killing the connection goroutine.
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("xks: query execution panicked: %w", concurrent.Recovered(r))
				val, err = c.val, c.err
			}
		}()
		c.val, c.err = fn()
		return c.val, shared, c.err
	}
}
