package service

import (
	"fmt"
	"sync"

	"xks"
)

// group collapses concurrent executions with the same key into one: the
// first caller (the leader) runs fn; callers arriving while it is in
// flight block and share the leader's result. A thundering herd of N
// identical queries therefore costs one pipeline execution, not N.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	wg  sync.WaitGroup
	val *xks.CorpusResult
	err error
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller joined an in-flight execution instead of leading one.
func (g *group) do(key string, fn func() (*xks.CorpusResult, error)) (val *xks.CorpusResult, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*call{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := new(call)
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	// Runs before the release defer above (LIFO): a panicking fn must
	// hand joiners an error, not a nil result with a nil error.
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("xks: query execution panicked: %v", r)
			panic(r)
		}
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
