package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"xks"
)

// group collapses concurrent executions with the same key into one: the
// first caller (the leader) runs fn; callers arriving while it is in
// flight block and share the leader's result. A thundering herd of N
// identical queries therefore costs one pipeline execution, not N.
//
// The collapse is context-aware: a waiter whose own context ends while the
// leader is still computing detaches immediately with its ctx.Err() — the
// leader (and the other waiters) are unaffected. Conversely, when a leader
// dies of its *own* cancellation, surviving waiters do not inherit that
// error: they re-enter the group and one of them leads a fresh execution.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done chan struct{} // closed when val/err are settled
	val  *xks.CorpusResult
	err  error
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller received another execution's result (a join, or a retry
// after a cancelled leader); a waiter that detached on its own dead
// context received nothing and reports shared=false, so the serving
// layer's collapsed-request metric counts only real collapses.
func (g *group) do(ctx context.Context, key string, fn func() (*xks.CorpusResult, error)) (val *xks.CorpusResult, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = map[string]*call{}
		}
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-ctx.Done():
				// Detach: our caller is gone; the leader keeps computing
				// for whoever remains.
				return nil, false, ctx.Err()
			case <-c.done:
			}
			if isCtxErr(c.err) && ctx.Err() == nil {
				// The leader was cancelled but we were not — its
				// cancellation is not our answer. Re-enter the group; the
				// first waiter back leads a fresh execution.
				shared = true
				continue
			}
			return c.val, true, c.err
		}
		c := &call{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		defer func() {
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		// Runs before the release defer above (LIFO): a panicking fn must
		// hand joiners an error, not a nil result with a nil error.
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("xks: query execution panicked: %v", r)
				panic(r)
			}
		}()
		c.val, c.err = fn()
		return c.val, shared, c.err
	}
}
