package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xks"
)

func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	var g group
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	// Leader blocks inside fn until release closes, guaranteeing the
	// other callers arrive while the call is in flight.
	leaderDone := make(chan *xks.CorpusResult, 1)
	go func() {
		val, shared, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
			execs.Add(1)
			close(started)
			<-release
			return &xks.CorpusResult{Query: "q"}, nil
		})
		if shared || err != nil {
			t.Errorf("leader: shared=%t err=%v", shared, err)
		}
		leaderDone <- val
	}()
	<-started
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
				execs.Add(1)
				return &xks.CorpusResult{Query: "other"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			if val == nil || val.Query != "q" {
				t.Errorf("joiner got %+v", val)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let joiners reach Wait
	close(release)
	wg.Wait()
	<-leaderDone

	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	if got := sharedCount.Load(); got != n {
		t.Errorf("shared callers = %d, want %d", got, n)
	}
}

func TestGroupDistinctKeysRunIndependently(t *testing.T) {
	var g group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			if _, _, err := g.do(context.Background(), key, func() (*xks.CorpusResult, error) {
				execs.Add(1)
				return nil, nil
			}); err != nil {
				t.Error(err)
			}
		}(key)
	}
	wg.Wait()
	if execs.Load() != 3 {
		t.Errorf("executions = %d, want 3", execs.Load())
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g group
	boom := errors.New("boom")
	_, _, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	// The key is released after the call; the next call re-executes.
	val, shared, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
		return &xks.CorpusResult{}, nil
	})
	if val == nil || shared || err != nil {
		t.Errorf("retry: val=%v shared=%t err=%v", val, shared, err)
	}
}

func TestGroupLeaderPanicReleasesJoinersWithError(t *testing.T) {
	var g group
	started := make(chan struct{})
	joined := make(chan struct{})
	errs := make(chan error, 1)
	leaderErrs := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
			close(started)
			<-joined
			panic("boom")
		})
		leaderErrs <- err
	}()
	<-started
	go func() {
		val, shared, err := g.do(context.Background(), "k", func() (*xks.CorpusResult, error) {
			return &xks.CorpusResult{}, nil
		})
		if !shared || val != nil {
			t.Errorf("joiner: shared=%t val=%v", shared, val)
		}
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the joiner reach Wait
	close(joined)
	if err := <-errs; !errors.Is(err, xks.ErrInternal) {
		t.Fatalf("joiner err = %v, want ErrInternal when the leader panics", err)
	}
	// The leader absorbs its own panic into the same structured error (the
	// stack rides along in the PanicError) instead of re-raising it.
	lerr := <-leaderErrs
	if !errors.Is(lerr, xks.ErrInternal) {
		t.Fatalf("leader err = %v, want ErrInternal", lerr)
	}
	var pe *xks.PanicError
	if !errors.As(lerr, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("leader err %v does not carry a stack-bearing PanicError", lerr)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	base := cacheKey(xks.Request{Query: "xml keyword"}, xks.Auto)
	if cacheKey(xks.Request{Query: "  XML   Keyword "}, xks.Auto) != base {
		t.Error("whitespace/case folding should not change the key")
	}
	if cacheKey(xks.Request{Query: "keyword xml"}, xks.Auto) == base {
		t.Error("term order is part of the key")
	}
	if cacheKey(xks.Request{Query: "xml keyword", Document: "doc.xml"}, xks.Auto) == base {
		t.Error("document filter is part of the key")
	}
	if cacheKey(xks.Request{Query: "xml keyword", Rank: true}, xks.Auto) == base {
		t.Error("options are part of the key")
	}
	if cacheKey(xks.Request{Query: "xml keyword", Limit: 3}, xks.Auto) == base {
		t.Error("limit is part of the key")
	}
}

func TestCacheKeyStrategy(t *testing.T) {
	base := cacheKey(xks.Request{Query: "xml keyword"}, xks.ScanMerge)
	if cacheKey(xks.Request{Query: "xml keyword", Strategy: xks.ScanMerge}, xks.ScanMerge) == base {
		t.Error("the requested strategy is part of the key")
	}
	if cacheKey(xks.Request{Query: "xml keyword"}, xks.IndexedEager) == base {
		t.Error("the planner-resolved strategy is part of the key")
	}
}

func TestMetricsHistogramQuantiles(t *testing.T) {
	var m Metrics
	// 90 fast requests at ~80µs, 10 slow at ~40ms.
	for i := 0; i < 90; i++ {
		m.observe(80 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.observe(40 * time.Millisecond)
	}
	s := m.Snapshot()
	if s.P50LatencyMS <= 0 || s.P50LatencyMS > 0.1 {
		t.Errorf("p50 = %vms, want ~0.08ms", s.P50LatencyMS)
	}
	if s.P95LatencyMS < 25 || s.P95LatencyMS > 50 {
		t.Errorf("p95 = %vms, want within the 25–50ms bucket", s.P95LatencyMS)
	}
	if s.P99LatencyMS < s.P95LatencyMS {
		t.Errorf("p99 (%v) < p95 (%v)", s.P99LatencyMS, s.P95LatencyMS)
	}
	wantAvg := (90*0.08 + 10*40) / 100
	if s.AvgLatencyMS < wantAvg*0.9 || s.AvgLatencyMS > wantAvg*1.1 {
		t.Errorf("avg = %vms, want ~%vms", s.AvgLatencyMS, wantAvg)
	}
}

func TestMetricsEmptySnapshot(t *testing.T) {
	var m Metrics
	s := m.Snapshot()
	if s.Requests != 0 || s.AvgLatencyMS != 0 || s.P99LatencyMS != 0 || s.CacheHitRate != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestMetricsOverflowBucket(t *testing.T) {
	var m Metrics
	m.observe(30 * time.Second) // beyond the last bound
	s := m.Snapshot()
	if s.P50LatencyMS != 5000 {
		t.Errorf("overflow p50 = %v, want clamped to 5000ms", s.P50LatencyMS)
	}
}
