package service

import (
	"errors"
	"sync/atomic"
	"time"

	"xks"
)

// latencyBounds are the histogram bucket upper bounds in microseconds,
// roughly exponential from 50µs to 5s; a final implicit bucket catches
// everything slower. One bucket layout backs every histogram the service
// keeps — the request latency and the per-stage breakdowns — so the JSON
// snapshot and the Prometheus exposition read from the same atomics.
var latencyBounds = [...]uint64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

const numBuckets = len(latencyBounds) + 1

// histogram is a lock-free latency histogram over latencyBounds. The same
// struct backs the request-latency histogram and the four per-stage
// histograms; observations are independent per-bucket atomics, so reads
// are only approximately consistent across buckets (fine for monitoring —
// the Prometheus writer derives count from the bucket sum so each scrape
// is self-consistent).
type histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // microseconds
	buckets [numBuckets]atomic.Uint64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(us))
	i := 0
	for i < len(latencyBounds) && uint64(us) > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
}

// Stage indices of Metrics.stages; stageNames are the Prometheus label
// values, matching the span names the trace layer uses.
const (
	stagePlan = iota
	stageCandidates
	stageSelect
	stageMaterialize
	numStages
)

var stageNames = [numStages]string{"plan", "candidates", "select", "materialize"}

// Metrics holds the live server counters. All fields are atomics, so the
// hot path never takes a lock; Snapshot reads are lock-free and only
// approximately consistent across counters, which is fine for monitoring.
type Metrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	collapsed atomic.Uint64
	streamed  atomic.Uint64
	truncated atomic.Uint64
	// panics counts requests whose error wrapped xks.ErrInternal — a
	// recovered pipeline (or singleflight-leader) panic. A crash-free server
	// with a rising panic counter is the signal panic isolation is doing
	// its job and something underneath is broken.
	panics atomic.Uint64
	// partialResumes counts requests that resumed a truncated page from the
	// partial-page cache instead of recomputing the already-materialized
	// prefix.
	partialResumes atomic.Uint64

	latency histogram
	// stages breaks pipeline executions down by stage (indexed by the
	// stage constants). Only real executions observe here — cache hits and
	// collapsed joins never ran the stages, so they would dilute the
	// distributions with zeros.
	stages [numStages]histogram

	// storeOpen is the one-time cold-open observation a disk-backed server
	// records at startup (nil until SetStoreOpen): how long opening the
	// store file took, in which mode, and how its bytes are resident.
	storeOpen atomic.Pointer[StoreOpenInfo]
}

// StoreOpenInfo describes one store-file open: wall time, the resulting
// backing mode ("v3-mmap", "v3-heap" or "rows"), and the byte split
// between the read-only mapping (paged in on demand by the OS) and heap
// allocations.
type StoreOpenInfo struct {
	Seconds     float64
	Mode        string
	MappedBytes int64
	HeapBytes   int64
}

// SetStoreOpen records the store cold-open observation exposed on
// /metrics. Servers that build their engine from a tree or an in-memory
// store never call it, and the gauges stay absent.
func (m *Metrics) SetStoreOpen(info StoreOpenInfo) { m.storeOpen.Store(&info) }

// observe records one request latency in the histogram.
func (m *Metrics) observe(d time.Duration) { m.latency.observe(d) }

// observeError counts one failed request, classifying recovered panics
// (errors wrapping xks.ErrInternal) into their own counter.
func (m *Metrics) observeError(err error) {
	m.errors.Add(1)
	if errors.Is(err, xks.ErrInternal) {
		m.panics.Add(1)
	}
}

// observeStages records one pipeline execution's per-stage durations and
// its truncation outcome. Call only for executions that actually ran the
// pipeline (not cache hits or collapsed joins).
func (m *Metrics) observeStages(st xks.StageStats, truncated bool) {
	m.stages[stagePlan].observe(st.Plan)
	m.stages[stageCandidates].observe(st.Candidates)
	m.stages[stageSelect].observe(st.Select)
	m.stages[stageMaterialize].observe(st.Materialize)
	if truncated {
		m.truncated.Add(1)
	}
}

// Snapshot is a point-in-time JSON-friendly view of the metrics.
type Snapshot struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	// Collapsed counts requests that joined an in-flight identical query
	// (singleflight) instead of executing the pipeline themselves.
	Collapsed uint64 `json:"collapsedRequests"`
	// Streamed counts requests served through the streaming path
	// (Service.Stream), whether they replayed a cached page or drove the
	// pipeline's lazy materialization directly.
	Streamed uint64 `json:"streamedRequests"`
	// Truncated counts pipeline executions cut short by a BestEffort
	// deadline (partial or empty page served with Results.Truncated set).
	Truncated uint64 `json:"truncatedResults"`
	// PanicsRecovered counts requests that failed with a recovered panic
	// (xks.ErrInternal) instead of crashing the process.
	PanicsRecovered uint64 `json:"panicsRecovered"`
	// PartialResumes counts requests that resumed a truncated page from the
	// partial-page cache.
	PartialResumes uint64  `json:"partialPageResumes"`
	AvgLatencyMS   float64 `json:"avgLatencyMs"`
	P50LatencyMS   float64 `json:"p50LatencyMs"`
	P95LatencyMS   float64 `json:"p95LatencyMs"`
	P99LatencyMS   float64 `json:"p99LatencyMs"`
}

// Snapshot derives the aggregate view, estimating the latency percentiles
// from the histogram by linear interpolation within the matched bucket.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:        m.requests.Load(),
		Errors:          m.errors.Load(),
		CacheHits:       m.hits.Load(),
		CacheMisses:     m.misses.Load(),
		Collapsed:       m.collapsed.Load(),
		Streamed:        m.streamed.Load(),
		Truncated:       m.truncated.Load(),
		PanicsRecovered: m.panics.Load(),
		PartialResumes:  m.partialResumes.Load(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	count := m.latency.count.Load()
	if count == 0 {
		return s
	}
	s.AvgLatencyMS = float64(m.latency.sum.Load()) / float64(count) / 1000.0
	var counts [numBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = m.latency.buckets[i].Load()
		total += counts[i]
	}
	s.P50LatencyMS = quantile(counts[:], total, 0.50)
	s.P95LatencyMS = quantile(counts[:], total, 0.95)
	s.P99LatencyMS = quantile(counts[:], total, 0.99)
	return s
}

// quantile estimates the q-th latency quantile in milliseconds from the
// bucket counts.
func quantile(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(latencyBounds[i-1])
			}
			hi := lo
			if i < len(latencyBounds) {
				hi = float64(latencyBounds[i])
			}
			frac := (rank - cum) / float64(c)
			return (lo + (hi-lo)*frac) / 1000.0
		}
		cum = next
	}
	return float64(latencyBounds[len(latencyBounds)-1]) / 1000.0
}
