package service

import (
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in microseconds,
// roughly exponential from 50µs to 5s; a final implicit bucket catches
// everything slower.
var latencyBounds = [...]uint64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

const numBuckets = len(latencyBounds) + 1

// Metrics holds the live server counters. All fields are atomics, so the
// hot path never takes a lock; Snapshot reads are lock-free and only
// approximately consistent across counters, which is fine for monitoring.
type Metrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	collapsed atomic.Uint64
	streamed  atomic.Uint64

	latCount atomic.Uint64
	latSum   atomic.Uint64 // microseconds
	buckets  [numBuckets]atomic.Uint64
}

// observe records one request latency in the histogram.
func (m *Metrics) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	m.latCount.Add(1)
	m.latSum.Add(uint64(us))
	i := 0
	for i < len(latencyBounds) && uint64(us) > latencyBounds[i] {
		i++
	}
	m.buckets[i].Add(1)
}

// Snapshot is a point-in-time JSON-friendly view of the metrics.
type Snapshot struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	// Collapsed counts requests that joined an in-flight identical query
	// (singleflight) instead of executing the pipeline themselves.
	Collapsed uint64 `json:"collapsedRequests"`
	// Streamed counts requests served through the streaming path
	// (Service.Stream), whether they replayed a cached page or drove the
	// pipeline's lazy materialization directly.
	Streamed     uint64  `json:"streamedRequests"`
	AvgLatencyMS float64 `json:"avgLatencyMs"`
	P50LatencyMS float64 `json:"p50LatencyMs"`
	P95LatencyMS float64 `json:"p95LatencyMs"`
	P99LatencyMS float64 `json:"p99LatencyMs"`
}

// Snapshot derives the aggregate view, estimating the latency percentiles
// from the histogram by linear interpolation within the matched bucket.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:    m.requests.Load(),
		Errors:      m.errors.Load(),
		CacheHits:   m.hits.Load(),
		CacheMisses: m.misses.Load(),
		Collapsed:   m.collapsed.Load(),
		Streamed:    m.streamed.Load(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	count := m.latCount.Load()
	if count == 0 {
		return s
	}
	s.AvgLatencyMS = float64(m.latSum.Load()) / float64(count) / 1000.0
	var counts [numBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = m.buckets[i].Load()
		total += counts[i]
	}
	s.P50LatencyMS = quantile(counts[:], total, 0.50)
	s.P95LatencyMS = quantile(counts[:], total, 0.95)
	s.P99LatencyMS = quantile(counts[:], total, 0.99)
	return s
}

// quantile estimates the q-th latency quantile in milliseconds from the
// bucket counts.
func quantile(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(latencyBounds[i-1])
			}
			hi := lo
			if i < len(latencyBounds) {
				hi = float64(latencyBounds[i])
			}
			frac := (rank - cum) / float64(c)
			return (lo + (hi-lo)*frac) / 1000.0
		}
		cum = next
	}
	return float64(latencyBounds[len(latencyBounds)-1]) / 1000.0
}
