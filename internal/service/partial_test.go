package service_test

// Partial-page cache tests: a deadline-truncated (TruncMaterialize) page
// is remembered under its request key, an identical retry resumes
// materialization at the cursor instead of reassembling the finished
// prefix, a completed stitch is promoted to the main cache, and
// candidate-stage salvage pages — whose fragments are not a definitive
// prefix of the true order — are never cached. The fault-injection harness
// (internal/fault) makes the first request's truncation deterministic.

import (
	"context"
	"testing"
	"time"

	"xks"
	"xks/internal/fault"
	"xks/internal/paperdata"
	"xks/internal/service"
)

// partialCorpus builds a ten-copy corpus (one matching fragment each for
// the workload query) with serial materialization (Workers=1), so the
// BestEffort materialize loop runs in chunks of four and an injected
// deadline exhaustion on the fifth fragment leaves a four-fragment
// partial page.
func partialCorpus(t *testing.T) *xks.Corpus {
	t.Helper()
	c := xks.NewCorpus()
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		c.Add(n, xks.FromTree(paperdata.Publications()))
	}
	c.Workers = 1
	return c
}

// truncatedFirstPage runs one BestEffort search whose fifth fragment
// materialization burns the whole deadline, returning the service, the
// request, and the partial page it produced.
func truncatedFirstPage(t *testing.T, limit int) (*service.Service, xks.Request, *xks.Results) {
	t.Helper()
	sv := service.New(partialCorpus(t), service.Config{CacheSize: 32})

	req := xks.NewRequest(paperdata.Q1, xks.Options{Rank: true, Limit: limit})
	req.Budget = xks.BestEffort
	req.Timeout = 200 * time.Millisecond

	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointMaterialize,
		After:  4,
		Count:  1,
		Action: fault.Action{UntilDeadline: true},
	})
	part, cached, err := sv.Search(fault.NewContext(context.Background(), plan), req)
	if err != nil || cached {
		t.Fatalf("truncated search: cached=%t err=%v", cached, err)
	}
	if !part.Truncated || part.Truncation != xks.TruncMaterialize {
		t.Fatalf("truncation = (%v, %q), want (true, %q)", part.Truncated, part.Truncation, xks.TruncMaterialize)
	}
	if n := len(part.Fragments); n == 0 || n >= limit {
		t.Fatalf("partial page has %d fragments, want a non-empty strict prefix of %d", n, limit)
	}
	return sv, req, part
}

// TestPartialPageResumeStitchesAndPromotes pins the satellite end to end:
// the retry of a materialize-truncated page resumes at the cursor (the
// continuation runs with the prefix's length folded into Offset), the
// stitched page equals the fault-free page, the resume metric counts it,
// and the completed page is promoted so a third try is a plain cache hit.
func TestPartialPageResumeStitchesAndPromotes(t *testing.T) {
	const limit = 8
	// Fault-free baseline on an identical corpus: what the full page holds.
	baseline, err := partialCorpus(t).Search(context.Background(),
		xks.NewRequest(paperdata.Q1, xks.Options{Rank: true, Limit: limit}))
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Fragments) != limit {
		t.Fatalf("baseline page has %d fragments, want %d (corpus too small for the test)", len(baseline.Fragments), limit)
	}

	sv, req, part := truncatedFirstPage(t, limit)

	// Identical retry, no faults: resumes from the partial page.
	full, cached, err := sv.Search(context.Background(), req)
	if err != nil || cached {
		t.Fatalf("retry: cached=%t err=%v", cached, err)
	}
	if full.Truncated {
		t.Fatalf("retry still truncated (%q) without any fault installed", full.Truncation)
	}
	if len(full.Fragments) != limit {
		t.Fatalf("stitched page has %d fragments, want %d", len(full.Fragments), limit)
	}
	for i, f := range full.Fragments {
		want := baseline.Fragments[i]
		if f.Document != want.Document || f.Root != want.Root {
			t.Fatalf("stitched fragment %d = %s/%s, want %s/%s (prefix and tail disagree with the fault-free page)",
				i, f.Document, f.Root, want.Document, want.Root)
		}
	}
	// The prefix objects are reused, not re-materialized.
	for i, f := range part.Fragments {
		if full.Fragments[i].Fragment != f.Fragment {
			t.Errorf("stitched fragment %d was re-materialized instead of reusing the cached prefix", i)
		}
	}
	if s := sv.Metrics().Snapshot(); s.PartialResumes != 1 {
		t.Errorf("partialPageResumes = %d, want 1", s.PartialResumes)
	}

	// The stitched page was promoted to the main cache.
	again, cached, err := sv.Search(context.Background(), req)
	if err != nil || !cached {
		t.Fatalf("third search: cached=%t err=%v, want a main-cache hit", cached, err)
	}
	if len(again.Fragments) != limit {
		t.Fatalf("promoted page has %d fragments, want %d", len(again.Fragments), limit)
	}
	if s := sv.Metrics().Snapshot(); s.PartialResumes != 1 {
		t.Errorf("partialPageResumes after cache hit = %d, want still 1", s.PartialResumes)
	}
}

// TestPartialPageResumeServesStream pins the streaming side: a stream of
// the same request replays the stitched page fragment by fragment with an
// untruncated trailer.
func TestPartialPageResumeServesStream(t *testing.T) {
	const limit = 8
	sv, req, _ := truncatedFirstPage(t, limit)

	seq, trailer := sv.Stream(context.Background(), req)
	n := 0
	for f, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		if f.Fragment == nil {
			t.Fatal("stream yielded a nil fragment")
		}
		n++
	}
	if n != limit {
		t.Fatalf("stream yielded %d fragments, want the full stitched page of %d", n, limit)
	}
	if tr := trailer(); tr.Truncated {
		t.Fatalf("stream trailer still truncated (%q)", tr.Truncation)
	}
	if s := sv.Metrics().Snapshot(); s.PartialResumes != 1 {
		t.Errorf("partialPageResumes = %d, want 1", s.PartialResumes)
	}
}

// TestSalvagedPageNotCachedAsPartial pins the cache-exclusion rule:
// a candidate-stage salvage page (TruncCandidates) covers only the
// documents that finished, so it is not a definitive prefix and must not
// seed the partial-page cache — the retry runs the full pipeline.
func TestSalvagedPageNotCachedAsPartial(t *testing.T) {
	sv := service.New(partialCorpus(t), service.Config{CacheSize: 32})

	req := xks.NewRequest(paperdata.Q1, xks.Options{Rank: true, Limit: 6})
	req.Budget = xks.BestEffort
	req.Timeout = 150 * time.Millisecond

	plan := fault.NewPlan(fault.Rule{
		Point:  fault.PointCandidates,
		Label:  "j",
		Action: fault.Action{UntilDeadline: true},
	})
	part, _, err := sv.Search(fault.NewContext(context.Background(), plan), req)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Truncated || part.Truncation != xks.TruncCandidates {
		t.Fatalf("truncation = (%v, %q), want (true, %q)", part.Truncated, part.Truncation, xks.TruncCandidates)
	}

	full, cached, err := sv.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("retry of a salvaged page must not hit any cache")
	}
	if full.Truncated {
		t.Fatalf("fault-free retry still truncated (%q)", full.Truncation)
	}
	if len(full.Fragments) != 6 {
		t.Fatalf("retry page has %d fragments, want 6", len(full.Fragments))
	}
	if s := sv.Metrics().Snapshot(); s.PartialResumes != 0 {
		t.Errorf("partialPageResumes = %d, want 0: salvage pages must not seed the partial cache", s.PartialResumes)
	}
}
