package service

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus writes the service's live metrics in the Prometheus text
// exposition format (version 0.0.4): the request/error/cache counters, the
// request-latency histogram, the per-stage pipeline histograms, and gauges
// for the cache and corpus. The same atomics back the JSON snapshot
// (/stats) and this exposition, so the two surfaces can never disagree
// about what the server did.
//
// Within one scrape each histogram is self-consistent — the _count and the
// +Inf bucket are both derived from the same bucket reads — but concurrent
// observations may land between families, which Prometheus tolerates.
func (sv *Service) WritePrometheus(w io.Writer) {
	m := &sv.metrics
	writeCounter(w, "xks_requests_total",
		"Search requests received (buffered and streamed).", m.requests.Load())
	writeCounter(w, "xks_request_errors_total",
		"Search requests that ended in an error.", m.errors.Load())
	writeCounter(w, "xks_cache_hits_total",
		"Requests served from the query-result cache.", m.hits.Load())
	writeCounter(w, "xks_cache_misses_total",
		"Cache lookups that missed.", m.misses.Load())
	writeCounter(w, "xks_collapsed_requests_total",
		"Requests that joined an identical in-flight execution (singleflight).", m.collapsed.Load())
	writeCounter(w, "xks_streamed_requests_total",
		"Requests served through the streaming (NDJSON) path.", m.streamed.Load())
	writeCounter(w, "xks_truncated_results_total",
		"Pipeline executions cut short by a best-effort deadline.", m.truncated.Load())
	writeCounter(w, "xks_panic_recovered_total",
		"Requests that failed with a recovered pipeline panic instead of crashing the process.", m.panics.Load())
	writeCounter(w, "xks_partial_resumes_total",
		"Requests that resumed a truncated page from the partial-page cache.", m.partialResumes.Load())

	writeHistogram(w, "xks_request_duration_seconds",
		"End-to-end request latency, including cache hits.", "", &m.latency)
	fmt.Fprintf(w, "# HELP xks_stage_duration_seconds Pipeline stage latency of real executions (cache hits and collapsed joins excluded).\n")
	fmt.Fprintf(w, "# TYPE xks_stage_duration_seconds histogram\n")
	for i := range m.stages {
		writeHistogramSeries(w, "xks_stage_duration_seconds",
			`stage="`+stageNames[i]+`"`, &m.stages[i])
	}

	if so := m.storeOpen.Load(); so != nil {
		fmt.Fprintf(w, "# HELP xks_store_open_seconds Wall time the startup store-file open took.\n")
		fmt.Fprintf(w, "# TYPE xks_store_open_seconds gauge\n")
		fmt.Fprintf(w, "xks_store_open_seconds{mode=%q} %s\n", so.Mode, formatFloat(so.Seconds))
		writeGauge(w, "xks_store_mapped_bytes",
			"Store bytes served through the read-only mmap (resident on demand via the OS page cache).",
			float64(so.MappedBytes))
		writeGauge(w, "xks_store_heap_bytes",
			"Store file bytes materialized on the Go heap at open.", float64(so.HeapBytes))
	}

	if di, ok := sv.DeltaInfo(); ok {
		writeGauge(w, "xks_delta_segments",
			"Live write-side delta segments awaiting compaction, summed over documents.", float64(di.Segments))
		writeGauge(w, "xks_delta_postings",
			"Postings held in delta segments (not yet folded into the base index).", float64(di.Postings))
		writeGauge(w, "xks_snapshots_pinned",
			"Snapshots currently pinned by in-flight queries, cursors being resolved, or scripted leaks.", float64(di.PinnedSnapshots))
		writeCounter(w, "xks_compactions_total",
			"Delta-to-base compactions completed.", uint64(di.Compactions))
		writeGauge(w, "xks_compaction_seconds",
			"Total wall time spent folding delta segments into base indexes.", di.CompactionSeconds)
	}

	writeGauge(w, "xks_cache_entries",
		"Live entries in the query-result cache.", float64(sv.CacheLen()))
	writeGauge(w, "xks_corpus_generation",
		"Data mutation generation of the corpus (changes on every append or document add).", float64(sv.Generation()))
	docs := sv.Documents()
	words, nodes := 0, 0
	for _, d := range docs {
		words += d.Words
		nodes += d.Nodes
	}
	writeGauge(w, "xks_corpus_documents", "Searchable documents in the corpus.", float64(len(docs)))
	writeGauge(w, "xks_corpus_index_words", "Distinct indexed words, summed over documents.", float64(words))
	writeGauge(w, "xks_corpus_index_nodes", "Indexed element nodes, summed over documents.", float64(nodes))
}

func writeCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, formatFloat(v))
}

// writeHistogram writes one full histogram family (HELP/TYPE plus the
// series); labels is the extra label set ("" for none).
func writeHistogram(w io.Writer, name, help, labels string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeries(w, name, labels, h)
}

// writeHistogramSeries writes the _bucket/_sum/_count series of one
// histogram under an optional extra label set. Buckets are read once and
// accumulated, and the _count is the +Inf cumulative from that same read,
// so every scrape satisfies the histogram invariants (cumulative buckets,
// _count == +Inf) even under concurrent observation.
func writeHistogramSeries(w io.Writer, name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, bound := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, formatFloat(float64(bound)/1e6), cum)
	}
	cum += h.buckets[numBuckets-1].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	sum := float64(h.sum.Load()) / 1e6
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(sum), name, cum)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, formatFloat(sum), name, labels, cum)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
