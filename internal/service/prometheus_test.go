package service

import (
	"strings"
	"testing"

	"xks"
	"xks/internal/paperdata"
)

// TestStoreOpenGauges pins the store cold-open exposition: absent until
// SetStoreOpen, then one xks_store_open_seconds sample labelled with the
// backing mode plus the mapped/heap byte gauges.
func TestStoreOpenGauges(t *testing.T) {
	sv := New(SingleDoc{Name: "d", Engine: xks.FromTree(paperdata.Publications())},
		Config{CacheSize: 4})
	var before strings.Builder
	sv.WritePrometheus(&before)
	if strings.Contains(before.String(), "xks_store_open_seconds") {
		t.Fatal("store-open gauges exposed before SetStoreOpen")
	}
	sv.Metrics().SetStoreOpen(StoreOpenInfo{
		Seconds: 0.012, Mode: "v3-mmap", MappedBytes: 4096, HeapBytes: 0,
	})
	var after strings.Builder
	sv.WritePrometheus(&after)
	out := after.String()
	for _, want := range []string{
		`xks_store_open_seconds{mode="v3-mmap"} 0.012`,
		"xks_store_mapped_bytes 4096",
		"xks_store_heap_bytes 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
