// Package service is the serving layer between the xks algorithms and the
// HTTP API (internal/httpapi): the pieces a production search server needs
// around the per-document pipeline.
//
// It provides:
//
//   - Searcher, one search entrypoint unifying a single xks.Engine (via
//     the SingleDoc adapter) and a multi-document xks.Corpus — one method
//     taking a context.Context and an xks.Request (the request's Document
//     field carries the document filter);
//   - a sharded LRU query-result cache (internal/lru) keyed by the
//     canonicalized Request, invalidated by data generation:
//     Engine.AppendXML bumps the generation, so stale entries die on their
//     next lookup; the searches behind it run the staged pipeline
//     (internal/exec), so cached entries hold only the *selected*
//     candidates in materialized form — a ranked Limit=10 corpus query
//     caches 10 assembled fragments, each rendering (XML/ASCII) computed
//     once and shared across hits;
//   - singleflight collapsing of concurrent identical queries, so a
//     thundering herd of the same request costs one pipeline execution —
//     context-aware: a waiter whose own context ends detaches immediately
//     with its ctx.Err() while the leader keeps computing for the others;
//   - live server metrics (request/error/cache counters and a latency
//     histogram with p50/p95/p99) behind atomic counters.
//
// Cached *xks.CorpusResult values are shared between callers and must be
// treated as immutable.
package service

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"xks"
	"xks/internal/lru"
)

// Searcher is the search surface the service builds on. *xks.Corpus
// implements it directly; wrap a single *xks.Engine with SingleDoc.
type Searcher interface {
	// Search runs the request — over every document, or over the one named
	// by req.Document when non-empty; the error wraps
	// xks.ErrUnknownDocument for names the searcher does not hold.
	// Cancelling ctx (or req.Timeout) aborts the pipeline with ctx.Err().
	Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error)
	// Documents lists the searchable documents.
	Documents() []xks.DocumentInfo
	// Generation changes whenever the underlying data changes; the cache
	// tags entries with it to detect staleness.
	Generation() uint64
}

var _ Searcher = (*xks.Corpus)(nil)

// SingleDoc adapts one engine to the Searcher interface under a document
// name, so a single-file server and a corpus server share one serving path.
type SingleDoc struct {
	Name   string
	Engine *xks.Engine
}

func (s SingleDoc) Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error) {
	if req.Document != "" && req.Document != s.Name {
		return nil, fmt.Errorf("xks: %w: %q", xks.ErrUnknownDocument, req.Document)
	}
	res, err := s.Engine.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	return res.AsCorpus(s.Name), nil
}

func (s SingleDoc) Documents() []xks.DocumentInfo {
	ix := s.Engine.Index()
	return []xks.DocumentInfo{{Name: s.Name, Words: ix.NumWords(), Nodes: ix.NumNodes()}}
}

func (s SingleDoc) Generation() uint64 { return s.Engine.Generation() }

// Config sizes the service.
type Config struct {
	// CacheSize is the maximum number of cached query results; 0 disables
	// caching entirely (singleflight and metrics stay on).
	CacheSize int
	// CacheShards is the cache shard count (default 16, rounded to a
	// power of two).
	CacheShards int
}

// Service wraps a Searcher with caching, singleflight, and metrics.
type Service struct {
	searcher Searcher
	cache    *lru.Cache[*xks.CorpusResult]
	flight   group
	metrics  Metrics
}

// New builds the service over a searcher.
func New(s Searcher, cfg Config) *Service {
	sv := &Service{searcher: s}
	if cfg.CacheSize > 0 {
		sv.cache = lru.New[*xks.CorpusResult](cfg.CacheSize, cfg.CacheShards)
	}
	return sv
}

// Documents lists the searchable documents.
func (sv *Service) Documents() []xks.DocumentInfo { return sv.searcher.Documents() }

// Generation exposes the searcher's current data generation.
func (sv *Service) Generation() uint64 { return sv.searcher.Generation() }

// Metrics exposes the live counters (read with Metrics().Snapshot()).
func (sv *Service) Metrics() *Metrics { return &sv.metrics }

// CacheLen reports the number of live cache entries (0 when caching is
// disabled).
func (sv *Service) CacheLen() int {
	if sv.cache == nil {
		return 0
	}
	return sv.cache.Len()
}

// cacheKey derives the cache/singleflight key from the canonicalized
// request (xks.Request.Canonical: whitespace-normalized, case-folded query;
// clamped pagination; no timeout — deeper normalization such as stemming
// happens inside the engine). The variable-length fields are
// length-prefixed so no two distinct requests can concatenate to the same
// key — with plain separators, a separator embedded in the query could
// alias another request's document filter.
func cacheKey(req xks.Request) string {
	req = req.Canonical()
	var b []byte
	b = strconv.AppendInt(b, int64(len(req.Query)), 10)
	b = append(b, ':')
	b = append(b, req.Query...)
	b = strconv.AppendInt(b, int64(len(req.Document)), 10)
	b = append(b, ':')
	b = append(b, req.Document...)
	b = fmt.Appendf(b, "%d.%d.%t.%t.%d.%d",
		req.Algorithm, req.Semantics, req.ExactContent, req.Rank, req.Limit, req.Offset)
	return string(b)
}

// Search serves one request — over the whole corpus, or over the document
// named by req.Document when non-empty. cached reports whether the result
// came from the cache. The returned result is shared with other callers —
// do not mutate it.
//
// ctx cancellation (and req.Timeout) aborts the request with ctx.Err():
// a cancelled cache hit is still served, a cancelled pipeline execution is
// abandoned mid-stream, and a cancelled singleflight waiter detaches from
// its leader immediately.
func (sv *Service) Search(ctx context.Context, req xks.Request) (res *xks.CorpusResult, cached bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sv.metrics.requests.Add(1)
	defer func() {
		if err != nil {
			sv.metrics.errors.Add(1)
		}
		sv.metrics.observe(time.Since(start))
	}()

	key := cacheKey(req)
	// Capture the generation before searching: if the data mutates while
	// the pipeline runs, the entry is stored under the old generation and
	// dies on its next lookup instead of serving stale results forever.
	gen := sv.searcher.Generation()
	if sv.cache != nil {
		if hit, ok := sv.cache.Get(key, gen); ok {
			sv.metrics.hits.Add(1)
			return hit, true, nil
		}
		sv.metrics.misses.Add(1)
	}

	res, shared, err := sv.flight.do(ctx, key, func() (*xks.CorpusResult, error) {
		r, err := sv.searcher.Search(ctx, req)
		if err == nil && sv.cache != nil {
			sv.cache.Put(key, gen, r)
		}
		return r, err
	})
	if shared {
		sv.metrics.collapsed.Add(1)
	}
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}
