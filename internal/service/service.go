// Package service is the serving layer between the xks algorithms and the
// HTTP API (internal/httpapi): the pieces a production search server needs
// around the per-document pipeline.
//
// It provides:
//
//   - Searcher, one search entrypoint unifying a single xks.Engine (via
//     the SingleDoc adapter) and a multi-document xks.Corpus — one method
//     taking a context.Context and an xks.Request (the request's Document
//     field carries the document filter);
//   - a sharded LRU query-result cache (internal/lru) keyed by the
//     canonicalized Request, invalidated by data generation:
//     Engine.AppendXML bumps the generation, so stale entries die on their
//     next lookup; the searches behind it run the staged pipeline
//     (internal/exec), so cached entries hold only the *selected*
//     candidates in materialized form — a ranked Limit=10 corpus query
//     caches 10 assembled fragments, each rendering (XML/ASCII) computed
//     once and shared across hits;
//   - singleflight collapsing of concurrent identical queries, so a
//     thundering herd of the same request costs one pipeline execution —
//     context-aware: a waiter whose own context ends detaches immediately
//     with its ctx.Err() while the leader keeps computing for the others;
//   - live server metrics (request/error/cache counters and a latency
//     histogram with p50/p95/p99) behind atomic counters.
//
// Cached *xks.CorpusResult values are shared between callers and must be
// treated as immutable.
package service

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strconv"
	"time"

	"xks"
	"xks/internal/lru"
	"xks/internal/trace"
)

// Searcher is the search surface the service builds on. *xks.Corpus
// implements it directly; wrap a single *xks.Engine with SingleDoc.
type Searcher interface {
	// Search runs the request — over every document, or over the one named
	// by req.Document when non-empty; the error wraps
	// xks.ErrUnknownDocument for names the searcher does not hold.
	// Cancelling ctx (or req.Timeout) aborts the pipeline with ctx.Err().
	Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error)
	// Documents lists the searchable documents.
	Documents() []xks.DocumentInfo
	// Generation changes whenever the underlying data changes; the cache
	// tags entries with it to detect staleness.
	Generation() uint64
}

// Streamer is the optional streaming surface of a Searcher: a lazily
// materializing fragment iterator plus a trailer func that, once the loop
// ends, reports the envelope (cursor, stats, truncation) for the fragments
// actually yielded. *xks.Corpus implements it; SingleDoc adapts an engine.
// Service.Stream uses it to serve NDJSON responses without buffering a
// page, falling back to the buffered Search when the searcher does not
// stream.
type Streamer interface {
	Stream(ctx context.Context, req xks.Request) (iter.Seq2[xks.CorpusFragment, error], func() *xks.Results)
}

// Planner is the optional planning surface of a Searcher: it reports the
// strategy the cost-based query planner resolves a request to. The service
// folds the resolution into its cache keys, so two requests the planner
// would execute differently — say Strategy=Auto before and after a
// statistics change flips the plan — never share an entry, and an explicit
// Strategy=ScanMerge request never replays a page cached under an Auto
// resolution that happened to pick IndexedEager. Searchers without the
// method key on the requested strategy alone.
type Planner interface {
	ResolveStrategy(req xks.Request) xks.Strategy
}

// Versioner is the optional request-scoped versioning surface of a
// Searcher: the token caching layers should tag req's entries with. A
// snapshot-aware searcher narrows it — a document-filtered request gets a
// token covering only that document, so appends to other documents never
// evict its cached pages. Searchers without the method fall back to the
// global Generation.
type Versioner interface {
	VersionFor(req xks.Request) uint64
}

// Appender is the optional write surface of a Searcher: append a parsed
// XML snippet under the identified parent node of the named document.
type Appender interface {
	AppendXML(doc, parentDewey, snippet string) error
}

// Compactor is the optional maintenance surface of a Searcher: fold
// accumulated delta segments into the base index, returning how many were
// folded.
type Compactor interface {
	Compact(ctx context.Context) (int, error)
}

// DeltaReporter is the optional delta-index introspection surface of a
// Searcher; the Prometheus endpoint exports its counters as the
// xks_delta_* / xks_snapshots_pinned / xks_compactions_total /
// xks_compaction_seconds families.
type DeltaReporter interface {
	DeltaInfo() xks.DeltaInfo
}

var (
	_ Searcher      = (*xks.Corpus)(nil)
	_ Streamer      = (*xks.Corpus)(nil)
	_ Planner       = (*xks.Corpus)(nil)
	_ Versioner     = (*xks.Corpus)(nil)
	_ Appender      = (*xks.Corpus)(nil)
	_ Compactor     = (*xks.Corpus)(nil)
	_ DeltaReporter = (*xks.Corpus)(nil)
	_ Streamer      = SingleDoc{}
	_ Planner       = SingleDoc{}
	_ Versioner     = SingleDoc{}
	_ Appender      = SingleDoc{}
	_ Compactor     = SingleDoc{}
	_ DeltaReporter = SingleDoc{}
)

// SingleDoc adapts one engine to the Searcher interface under a document
// name, so a single-file server and a corpus server share one serving path.
type SingleDoc struct {
	Name   string
	Engine *xks.Engine
}

func (s SingleDoc) Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error) {
	if req.Document != "" && req.Document != s.Name {
		return nil, fmt.Errorf("xks: %w: %q", xks.ErrUnknownDocument, req.Document)
	}
	res, err := s.Engine.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	return res.AsCorpus(s.Name), nil
}

// Stream adapts the engine's fragment stream to the corpus shape, tagging
// fragments and the trailer with the document name.
func (s SingleDoc) Stream(ctx context.Context, req xks.Request) (iter.Seq2[xks.CorpusFragment, error], func() *xks.Results) {
	if req.Document != "" && req.Document != s.Name {
		err := fmt.Errorf("xks: %w: %q", xks.ErrUnknownDocument, req.Document)
		return func(yield func(xks.CorpusFragment, error) bool) {
			yield(xks.CorpusFragment{}, err)
		}, func() *xks.Results { return &xks.Results{Query: req.Query, NextOffset: -1} }
	}
	seq, trailer := s.Engine.Stream(ctx, req)
	wrapped := func(yield func(xks.CorpusFragment, error) bool) {
		for f, err := range seq {
			if err != nil {
				yield(xks.CorpusFragment{}, err)
				return
			}
			if !yield(xks.CorpusFragment{Document: s.Name, Fragment: f}, nil) {
				return
			}
		}
	}
	return wrapped, func() *xks.Results { return trailer().AsCorpus(s.Name) }
}

func (s SingleDoc) Documents() []xks.DocumentInfo {
	ix := s.Engine.Index()
	return []xks.DocumentInfo{{Name: s.Name, Words: ix.NumWords(), Nodes: ix.NumNodes()}}
}

func (s SingleDoc) Generation() uint64 { return s.Engine.Generation() }

// VersionFor reports the engine's snapshot version token — the single
// document is the whole corpus, so request scoping adds nothing.
func (s SingleDoc) VersionFor(req xks.Request) uint64 { return s.Engine.Generation() }

// AppendXML appends to the wrapped engine; doc must name it (or be empty).
func (s SingleDoc) AppendXML(doc, parentDewey, snippet string) error {
	if doc != "" && doc != s.Name {
		return fmt.Errorf("xks: %w: %q", xks.ErrUnknownDocument, doc)
	}
	return s.Engine.AppendXML(parentDewey, snippet)
}

// Compact folds the wrapped engine's delta segments.
func (s SingleDoc) Compact(ctx context.Context) (int, error) { return s.Engine.Compact(ctx) }

// DeltaInfo reports the wrapped engine's delta-subsystem state.
func (s SingleDoc) DeltaInfo() xks.DeltaInfo { return s.Engine.DeltaInfo() }

// ResolveStrategy delegates planning to the engine (Planner interface).
func (s SingleDoc) ResolveStrategy(req xks.Request) xks.Strategy {
	return s.Engine.ResolveStrategy(req)
}

// Config sizes the service.
type Config struct {
	// CacheSize is the maximum number of cached query results; 0 disables
	// caching entirely (singleflight and metrics stay on).
	CacheSize int
	// CacheShards is the cache shard count (default 16, rounded to a
	// power of two).
	CacheShards int
}

// Service wraps a Searcher with caching, singleflight, and metrics.
type Service struct {
	searcher Searcher
	cache    *lru.Cache[*xks.CorpusResult]
	// partials caches deadline-truncated pages (TruncMaterialize, bounded
	// Limit) under the same key space as cache, so an identical retry
	// resumes materialization at the cursor — re-entering the pipeline at
	// Offset+len(prefix) — instead of reassembling the fragments that
	// already finished. Entries are generation-tagged like the main cache;
	// full-page semantics are untouched (a completed page always lands in
	// cache, never here).
	partials *lru.Cache[*xks.CorpusResult]
	flight   group
	metrics  Metrics
}

// New builds the service over a searcher.
func New(s Searcher, cfg Config) *Service {
	sv := &Service{searcher: s}
	if cfg.CacheSize > 0 {
		sv.cache = lru.New[*xks.CorpusResult](cfg.CacheSize, cfg.CacheShards)
		sv.partials = lru.New[*xks.CorpusResult](cfg.CacheSize, cfg.CacheShards)
	}
	return sv
}

// Documents lists the searchable documents.
func (sv *Service) Documents() []xks.DocumentInfo { return sv.searcher.Documents() }

// Generation exposes the searcher's current data generation.
func (sv *Service) Generation() uint64 { return sv.searcher.Generation() }

// Metrics exposes the live counters (read with Metrics().Snapshot()).
func (sv *Service) Metrics() *Metrics { return &sv.metrics }

// Append forwards a document append to the searcher's write surface. The
// error reports searchers without one (Appender). Snapshot-pinned cursors
// and cached pages survive the append: cache entries are tagged with
// request-scoped version tokens, so only pages that could observe the
// appended document go stale.
func (sv *Service) Append(doc, parentDewey, snippet string) error {
	a, ok := sv.searcher.(Appender)
	if !ok {
		return fmt.Errorf("xks: this searcher does not support appends")
	}
	return a.AppendXML(doc, parentDewey, snippet)
}

// Compact forwards to the searcher's maintenance surface (Compactor),
// folding accumulated delta segments into the base. Version tokens do not
// change, so cached pages and outstanding cursors survive.
func (sv *Service) Compact(ctx context.Context) (int, error) {
	c, ok := sv.searcher.(Compactor)
	if !ok {
		return 0, fmt.Errorf("xks: this searcher does not support compaction")
	}
	return c.Compact(ctx)
}

// DeltaInfo reports the searcher's delta-index state; ok is false when the
// searcher does not expose one (DeltaReporter).
func (sv *Service) DeltaInfo() (xks.DeltaInfo, bool) {
	d, ok := sv.searcher.(DeltaReporter)
	if !ok {
		return xks.DeltaInfo{}, false
	}
	return d.DeltaInfo(), true
}

// generationFor is the version token req's cache entries are tagged with:
// the searcher's request-scoped token when it has one (Versioner), the
// global generation otherwise.
func (sv *Service) generationFor(req xks.Request) uint64 {
	if v, ok := sv.searcher.(Versioner); ok {
		return v.VersionFor(req)
	}
	return sv.searcher.Generation()
}

// CacheLen reports the number of live cache entries (0 when caching is
// disabled).
func (sv *Service) CacheLen() int {
	if sv.cache == nil {
		return 0
	}
	return sv.cache.Len()
}

// cacheKey derives the cache/singleflight key from the canonicalized
// request (xks.Request.Canonical: whitespace-normalized, case-folded query;
// clamped pagination; no timeout — deeper normalization such as stemming
// happens inside the engine). The variable-length fields are
// length-prefixed so no two distinct requests can concatenate to the same
// key — with plain separators, a separator embedded in the query could
// alias another request's document filter.
// resolved is the planner's resolution of req.Strategy, keyed alongside the
// requested strategy so a plan flip invalidates instead of aliasing.
func cacheKey(req xks.Request, resolved xks.Strategy) string {
	req = req.Canonical()
	var b []byte
	b = strconv.AppendInt(b, int64(len(req.Query)), 10)
	b = append(b, ':')
	b = append(b, req.Query...)
	b = strconv.AppendInt(b, int64(len(req.Document)), 10)
	b = append(b, ':')
	b = append(b, req.Document...)
	// Cursors are resolved to an Offset (and cleared) before keying; the
	// raw token is still mixed in defensively so an unresolved request can
	// never alias a resolved one.
	b = strconv.AppendInt(b, int64(len(req.Cursor)), 10)
	b = append(b, ':')
	b = append(b, req.Cursor...)
	b = fmt.Appendf(b, "%d.%d.%t.%t.%d.%d.%d.%d",
		req.Algorithm, req.Semantics, req.ExactContent, req.Rank, req.Limit, req.Offset,
		req.Strategy, resolved)
	return string(b)
}

// resolveStrategy asks the searcher's planner (when it has one) what req's
// Strategy resolves to; every strategy is output-identical, so this feeds
// cache keys only.
func (sv *Service) resolveStrategy(req xks.Request) xks.Strategy {
	if p, ok := sv.searcher.(Planner); ok {
		return p.ResolveStrategy(req)
	}
	return req.Strategy
}

// Search serves one request — over the whole corpus, or over the document
// named by req.Document when non-empty. cached reports whether the result
// came from the cache. The returned result is shared with other callers —
// do not mutate it.
//
// A request carrying a Cursor is validated here, against the same
// generation cache entries are tagged with, before any cache lookup: a
// stale token fails with xks.ErrStaleCursor (the data mutated since the
// page was issued), a replay against a different query shape with
// xks.ErrCursorMismatch, an undecodable one with xks.ErrBadCursor.
//
// ctx cancellation (and req.Timeout) aborts the request with ctx.Err():
// a cancelled cache hit is still served, a cancelled pipeline execution is
// abandoned mid-stream, and a cancelled singleflight waiter detaches from
// its leader immediately. Truncated results (a BestEffort deadline expired
// mid-page) are served but never cached — the next identical request runs
// the pipeline again rather than replaying a partial page.
func (sv *Service) Search(ctx context.Context, req xks.Request) (res *xks.Results, cached bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sv.metrics.requests.Add(1)
	defer func() {
		if err != nil {
			sv.metrics.observeError(err)
		}
		sv.metrics.observe(time.Since(start))
	}()

	// Capture the version token before searching: if the data mutates while
	// the pipeline runs, the entry is stored under the old token and dies
	// on its next lookup instead of serving stale results forever. The
	// token is request-scoped (generationFor): a document-filtered entry is
	// tagged with its own document's token, so appends elsewhere in the
	// corpus never evict it.
	gen := sv.generationFor(req)
	req, err = req.ResolveCursor(gen)
	if err != nil {
		if !errors.Is(err, xks.ErrStaleCursor) {
			return nil, false, err
		}
		// The cursor does not match the current token, but the searcher may
		// still resolve it: cursors pin the snapshot they were issued at
		// (delta truncation in the engine, the snapshot registry in the
		// corpus). Serve the pinned page directly, uncached — it belongs to
		// an old snapshot no current cache entry should replay. Only a
		// genuinely unresolvable snapshot surfaces ErrStaleCursor.
		res, err = sv.searcher.Search(ctx, req)
		if err != nil {
			return nil, false, err
		}
		sv.metrics.observeStages(res.Stats.Stages, res.Truncated)
		return res, false, nil
	}
	key := cacheKey(req, sv.resolveStrategy(req))
	// Annotate the request's trace (when one is attached) with the serving
	// decisions the pipeline itself cannot see; a nil span makes these
	// free no-ops.
	sp := trace.SpanFromContext(ctx)
	sp.SetInt("generation", int64(gen))
	if sv.cache != nil {
		if hit, ok := sv.cache.Get(key, gen); ok {
			sv.metrics.hits.Add(1)
			sp.SetStr("cache", "hit")
			return hit, true, nil
		}
		sv.metrics.misses.Add(1)
		sp.SetStr("cache", "miss")
		if r, ok, perr := sv.resumePartial(ctx, key, gen, req); ok {
			if perr != nil {
				return nil, false, perr
			}
			sp.SetStr("cache", "partial")
			return r, false, nil
		}
	} else {
		sp.SetStr("cache", "off")
	}

	res, shared, err := sv.flight.do(ctx, key, func() (*xks.Results, error) {
		r, err := sv.searcher.Search(ctx, req)
		if err == nil {
			// Only real executions feed the per-stage histograms; cache
			// hits and collapsed joins never ran the stages.
			sv.metrics.observeStages(r.Stats.Stages, r.Truncated)
			sv.store(key, gen, req, r)
		}
		return r, err
	})
	if shared {
		sv.metrics.collapsed.Add(1)
		sp.SetBool("collapsed", true)
	}
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}

// store routes one completed execution's page into the right cache: a full
// page into the main cache, a materialize-truncated bounded partial page
// into the partial-page cache (so an identical retry resumes at the
// cursor), and everything else — candidate-stage truncations, whose
// fragments were salvaged from a partial corpus and are not a definitive
// prefix, and unbounded pages — nowhere.
func (sv *Service) store(key string, gen uint64, req xks.Request, r *xks.Results) {
	if sv.cache == nil {
		return
	}
	if !r.Truncated {
		sv.cache.Put(key, gen, r)
		return
	}
	if r.Truncation == xks.TruncMaterialize && req.Limit > 0 &&
		len(r.Fragments) > 0 && len(r.Fragments) < req.Limit {
		sv.partials.Put(key, gen, r)
	}
}

// resumePartial serves a cache miss from the partial-page cache when an
// earlier identical request materialized a truncated prefix of this page:
// the pipeline re-enters at the cursor — Offset advanced past the prefix,
// Limit shrunk to the remainder, a derived singleflight key so concurrent
// retries still collapse — and the cached prefix is stitched onto whatever
// the continuation yields. A completed stitch is promoted to the main
// cache; a still-truncated one replaces the partial entry with the longer
// prefix. ok=false means no usable partial page exists and the caller runs
// the full pipeline; the combined envelope carries the continuation's
// cursor, truncation state, and stats (the prefix's cost was paid — and
// reported — by the request that assembled it).
func (sv *Service) resumePartial(ctx context.Context, key string, gen uint64, req xks.Request) (res *xks.Results, ok bool, err error) {
	if sv.partials == nil || req.Limit <= 0 {
		return nil, false, nil
	}
	part, found := sv.partials.Get(key, gen)
	if !found {
		return nil, false, nil
	}
	n := len(part.Fragments)
	if n == 0 || n >= req.Limit {
		return nil, false, nil
	}
	sv.metrics.partialResumes.Add(1)
	cont := req
	cont.Offset += n
	cont.Limit -= n
	ckey := fmt.Sprintf("%s|partial:%d", key, n)
	tail, _, err := sv.flight.do(ctx, ckey, func() (*xks.Results, error) {
		r, err := sv.searcher.Search(ctx, cont)
		if err == nil {
			sv.metrics.observeStages(r.Stats.Stages, r.Truncated)
		}
		return r, err
	})
	if err != nil {
		return nil, true, err
	}
	combined := *tail
	combined.Fragments = append(append(
		make([]xks.CorpusFragment, 0, n+len(tail.Fragments)), part.Fragments...), tail.Fragments...)
	sv.store(key, gen, req, &combined)
	return &combined, true, nil
}

// Stream serves one request as a fragment stream: the iterator yields
// materialized fragments as the pipeline produces them, and the trailer
// func — valid once the loop ends — carries the envelope (cursor, stats,
// truncation) for what was actually yielded; like the searcher streams
// underneath, the trailer never retains the fragments themselves. Sources,
// in order:
//
//   - a cache hit replays the cached page fragment by fragment;
//   - a miss with an identical buffered query already in flight joins it
//     (singleflight) and replays its page;
//   - otherwise the searcher's own stream runs (Streamer), lazily — a
//     consumer that breaks early leaves the remaining candidates
//     unmaterialized; searchers that cannot stream fall back to one
//     buffered Search.
//
// A consumer that abandons a replayed page early still gets an honest
// trailer: the cursor is re-pointed to resume after the last fragment it
// received (ResumePoint), not after the page it never saw.
//
// A live stream with a bounded page (Limit > 0) that drains completely
// (and was not truncated) caches its page under the generation snapshot,
// so the next identical request — buffered or streamed — hits. Unbounded
// scrolls are not collected for caching, keeping server-side memory O(1)
// however large the result set; abandoned or truncated streams cache
// nothing either way.
func (sv *Service) Stream(ctx context.Context, req xks.Request) (iter.Seq2[xks.CorpusFragment, error], func() *xks.Results) {
	res := &xks.Results{Query: req.Query, NextOffset: -1}
	seq := func(yield func(xks.CorpusFragment, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		start := time.Now()
		sv.metrics.requests.Add(1)
		sv.metrics.streamed.Add(1)
		var err error
		defer func() {
			if err != nil {
				sv.metrics.observeError(err)
			}
			sv.metrics.observe(time.Since(start))
		}()

		gen := sv.generationFor(req)
		req, err = req.ResolveCursor(gen)
		if err != nil {
			if !errors.Is(err, xks.ErrStaleCursor) {
				yield(xks.CorpusFragment{}, err)
				return
			}
			// Snapshot-pinned resume (see Search): the searcher can often
			// still resolve a cursor whose token predates the current
			// snapshot. Stream it directly, uncached.
			err = nil
			if st, ok := sv.searcher.(Streamer); ok {
				sseq, strailer := st.Stream(ctx, req)
				for f, ferr := range sseq {
					if ferr != nil {
						err = ferr
						yield(xks.CorpusFragment{}, ferr)
						return
					}
					if !yield(f, nil) {
						break
					}
				}
				t := strailer()
				*res = *t
				sv.metrics.observeStages(t.Stats.Stages, t.Truncated)
				return
			}
			r, serr := sv.searcher.Search(ctx, req)
			if serr != nil {
				err = serr
				yield(xks.CorpusFragment{}, serr)
				return
			}
			sv.metrics.observeStages(r.Stats.Stages, r.Truncated)
			*res = *replay(r, req, gen, yield)
			return
		}
		key := cacheKey(req, sv.resolveStrategy(req))
		sp := trace.SpanFromContext(ctx)
		sp.SetInt("generation", int64(gen))
		if sv.cache != nil {
			if hit, ok := sv.cache.Get(key, gen); ok {
				sv.metrics.hits.Add(1)
				sp.SetStr("cache", "hit")
				*res = *replay(hit, req, gen, yield)
				return
			}
			sv.metrics.misses.Add(1)
			sp.SetStr("cache", "miss")
		} else {
			sp.SetStr("cache", "off")
		}
		// Join an identical buffered execution already in flight instead
		// of running the pipeline a second time.
		if joined, jerr, ok := sv.flight.poll(ctx, key); ok {
			if jerr != nil {
				err = jerr
				yield(xks.CorpusFragment{}, jerr)
				return
			}
			sv.metrics.collapsed.Add(1)
			sp.SetBool("collapsed", true)
			*res = *replay(joined, req, gen, yield)
			return
		}
		// A truncated prefix of this exact page may be cached: resume at
		// the cursor (buffered, like a cache-hit replay) instead of
		// reassembling the fragments that already finished.
		if r, ok, perr := sv.resumePartial(ctx, key, gen, req); ok {
			if perr != nil {
				err = perr
				yield(xks.CorpusFragment{}, perr)
				return
			}
			sp.SetStr("cache", "partial")
			*res = *replay(r, req, gen, yield)
			return
		}

		st, ok := sv.searcher.(Streamer)
		if !ok {
			// Buffered fallback for searchers that cannot stream.
			r, serr := sv.searcher.Search(ctx, req)
			if serr != nil {
				err = serr
				yield(xks.CorpusFragment{}, serr)
				return
			}
			sv.metrics.observeStages(r.Stats.Stages, r.Truncated)
			sv.store(key, gen, req, r)
			*res = *replay(r, req, gen, yield)
			return
		}
		sseq, strailer := st.Stream(ctx, req)
		// Collect the page for caching only when it is bounded: an
		// unlimited scroll must not pin every streamed fragment in memory.
		collect := sv.cache != nil && req.Limit > 0
		var page []xks.CorpusFragment
		complete := true
		for f, ferr := range sseq {
			if ferr != nil {
				err = ferr
				complete = false
				break
			}
			if collect {
				page = append(page, f)
			}
			if !yield(f, nil) {
				complete = false
				break
			}
		}
		t := strailer()
		*res = *t
		if err != nil {
			yield(xks.CorpusFragment{}, err)
			return
		}
		sv.metrics.observeStages(t.Stats.Stages, t.Truncated)
		if complete && collect {
			full := *t
			full.Fragments = page
			sv.store(key, gen, req, &full)
		}
	}
	return seq, func() *xks.Results { return res }
}

// replay yields a buffered page fragment by fragment and returns the
// trailer envelope for what the consumer actually took: a full drain keeps
// the page's own cursor, an early break gets one re-pointed to resume
// after the last yielded fragment.
func replay(r *xks.Results, req xks.Request, gen uint64, yield func(xks.CorpusFragment, error) bool) *xks.Results {
	n := 0
	for _, f := range r.Fragments {
		// The fragment reaches the consumer even when it stops the loop —
		// yield delivered it before returning false — so it counts as
		// received either way.
		n++
		if !yield(f, nil) {
			break
		}
	}
	return r.ResumePoint(n, req, gen)
}
