// Package service is the serving layer between the xks algorithms and the
// HTTP API (internal/httpapi): the pieces a production search server needs
// around the per-document pipeline.
//
// It provides:
//
//   - Searcher, one search entrypoint unifying a single xks.Engine (via
//     the SingleDoc adapter) and a multi-document xks.Corpus;
//   - a sharded LRU query-result cache (internal/lru) keyed by normalized
//     query + options, invalidated by data generation: Engine.AppendXML
//     bumps the generation, so stale entries die on their next lookup;
//     the searches behind it run the staged pipeline (internal/exec), so
//     cached entries hold only the *selected* candidates in materialized
//     form — a ranked Limit=10 corpus query caches 10 assembled fragments,
//     each rendering (XML/ASCII) computed once and shared across hits;
//   - singleflight collapsing of concurrent identical queries, so a
//     thundering herd of the same request costs one pipeline execution;
//   - live server metrics (request/error/cache counters and a latency
//     histogram with p50/p95/p99) behind atomic counters.
//
// Cached *xks.CorpusResult values are shared between callers and must be
// treated as immutable.
package service

import (
	"fmt"
	"strings"
	"time"

	"xks"
	"xks/internal/lru"
)

// Searcher is the search surface the service builds on. *xks.Corpus
// implements it directly; wrap a single *xks.Engine with SingleDoc.
type Searcher interface {
	// Search runs the query over every document.
	Search(query string, opts xks.Options) (*xks.CorpusResult, error)
	// SearchDocument runs the query over one named document; the error
	// wraps xks.ErrUnknownDocument for names the searcher does not hold.
	SearchDocument(doc, query string, opts xks.Options) (*xks.CorpusResult, error)
	// Documents lists the searchable documents.
	Documents() []xks.DocumentInfo
	// Generation changes whenever the underlying data changes; the cache
	// tags entries with it to detect staleness.
	Generation() uint64
}

var _ Searcher = (*xks.Corpus)(nil)

// SingleDoc adapts one engine to the Searcher interface under a document
// name, so a single-file server and a corpus server share one serving path.
type SingleDoc struct {
	Name   string
	Engine *xks.Engine
}

func (s SingleDoc) Search(query string, opts xks.Options) (*xks.CorpusResult, error) {
	res, err := s.Engine.Search(query, opts)
	if err != nil {
		return nil, err
	}
	return res.AsCorpus(s.Name), nil
}

func (s SingleDoc) SearchDocument(doc, query string, opts xks.Options) (*xks.CorpusResult, error) {
	if doc != s.Name {
		return nil, fmt.Errorf("xks: %w: %q", xks.ErrUnknownDocument, doc)
	}
	return s.Search(query, opts)
}

func (s SingleDoc) Documents() []xks.DocumentInfo {
	ix := s.Engine.Index()
	return []xks.DocumentInfo{{Name: s.Name, Words: ix.NumWords(), Nodes: ix.NumNodes()}}
}

func (s SingleDoc) Generation() uint64 { return s.Engine.Generation() }

// Config sizes the service.
type Config struct {
	// CacheSize is the maximum number of cached query results; 0 disables
	// caching entirely (singleflight and metrics stay on).
	CacheSize int
	// CacheShards is the cache shard count (default 16, rounded to a
	// power of two).
	CacheShards int
}

// Service wraps a Searcher with caching, singleflight, and metrics.
type Service struct {
	searcher Searcher
	cache    *lru.Cache[*xks.CorpusResult]
	flight   group
	metrics  Metrics
}

// New builds the service over a searcher.
func New(s Searcher, cfg Config) *Service {
	sv := &Service{searcher: s}
	if cfg.CacheSize > 0 {
		sv.cache = lru.New[*xks.CorpusResult](cfg.CacheSize, cfg.CacheShards)
	}
	return sv
}

// Documents lists the searchable documents.
func (sv *Service) Documents() []xks.DocumentInfo { return sv.searcher.Documents() }

// Generation exposes the searcher's current data generation.
func (sv *Service) Generation() uint64 { return sv.searcher.Generation() }

// Metrics exposes the live counters (read with Metrics().Snapshot()).
func (sv *Service) Metrics() *Metrics { return &sv.metrics }

// CacheLen reports the number of live cache entries (0 when caching is
// disabled).
func (sv *Service) CacheLen() int {
	if sv.cache == nil {
		return 0
	}
	return sv.cache.Len()
}

// cacheKey derives the cache/singleflight key: the whitespace-normalized,
// case-folded query, the document filter, and every option that changes
// the result. Deeper normalization (stemming, stop words) happens inside
// the engine; folding here just catches the cheap equivalences.
func cacheKey(query, doc string, opts xks.Options) string {
	q := strings.Join(strings.Fields(strings.ToLower(query)), " ")
	return fmt.Sprintf("%s\x00%s\x00%d.%d.%t.%t.%d",
		q, doc, opts.Algorithm, opts.Semantics, opts.ExactContent, opts.Rank, opts.Limit)
}

// Search serves one query, over the whole corpus when doc is empty or over
// the named document otherwise. cached reports whether the result came
// from the cache. The returned result is shared with other callers — do
// not mutate it.
func (sv *Service) Search(query, doc string, opts xks.Options) (res *xks.CorpusResult, cached bool, err error) {
	start := time.Now()
	sv.metrics.requests.Add(1)
	defer func() {
		if err != nil {
			sv.metrics.errors.Add(1)
		}
		sv.metrics.observe(time.Since(start))
	}()

	key := cacheKey(query, doc, opts)
	// Capture the generation before searching: if the data mutates while
	// the pipeline runs, the entry is stored under the old generation and
	// dies on its next lookup instead of serving stale results forever.
	gen := sv.searcher.Generation()
	if sv.cache != nil {
		if hit, ok := sv.cache.Get(key, gen); ok {
			sv.metrics.hits.Add(1)
			return hit, true, nil
		}
		sv.metrics.misses.Add(1)
	}

	res, shared, err := sv.flight.do(key, func() (*xks.CorpusResult, error) {
		r, err := sv.doSearch(query, doc, opts)
		if err == nil && sv.cache != nil {
			sv.cache.Put(key, gen, r)
		}
		return r, err
	})
	if shared {
		sv.metrics.collapsed.Add(1)
	}
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}

func (sv *Service) doSearch(query, doc string, opts xks.Options) (*xks.CorpusResult, error) {
	if doc == "" {
		return sv.searcher.Search(query, opts)
	}
	return sv.searcher.SearchDocument(doc, query, opts)
}
