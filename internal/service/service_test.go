package service_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xks"
	"xks/internal/paperdata"
	"xks/internal/service"
)

func testCorpus(t *testing.T) *xks.Corpus {
	t.Helper()
	c := xks.NewCorpus()
	c.Add("publications", xks.FromTree(paperdata.Publications()))
	c.Add("team", xks.FromTree(paperdata.Team()))
	return c
}

func TestSearchCacheHit(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 64})
	res1, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	if err != nil || cached {
		t.Fatalf("first search: cached=%t err=%v", cached, err)
	}
	res2, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	if err != nil || !cached {
		t.Fatalf("second search: cached=%t err=%v", cached, err)
	}
	if res2 != res1 {
		t.Error("cache hit should return the same result object")
	}
	// Whitespace / case variants hit the same entry.
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "  Liu   KEYWORD "}); !cached {
		t.Error("normalized variant should be a cache hit")
	}
	// Different options are a different entry.
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "liu keyword", Rank: true}); cached {
		t.Error("different options must not share a cache entry")
	}
	s := sv.Metrics().Snapshot()
	if s.CacheHits != 2 || s.CacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", s.CacheHits, s.CacheMisses)
	}
	if s.Requests != 4 || s.Errors != 0 {
		t.Errorf("requests=%d errors=%d", s.Requests, s.Errors)
	}
}

func TestSearchDocumentFilter(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 64})
	res, _, err := sv.Search(context.Background(), xks.Request{Query: "name", Document: "team"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) == 0 {
		t.Fatal("no fragments from team")
	}
	for _, f := range res.Fragments {
		if f.Document != "team" {
			t.Errorf("fragment from %s", f.Document)
		}
	}
	// Corpus-wide and filtered results are distinct cache entries.
	all, _, err := sv.Search(context.Background(), xks.Request{Query: "name"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Fragments) <= len(res.Fragments) {
		t.Errorf("corpus-wide %d fragments, filtered %d", len(all.Fragments), len(res.Fragments))
	}

	_, _, err = sv.Search(context.Background(), xks.Request{Query: "name", Document: "absent"})
	if !errors.Is(err, xks.ErrUnknownDocument) {
		t.Errorf("unknown document error = %v", err)
	}
	if s := sv.Metrics().Snapshot(); s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
}

func TestSingleDocAdapter(t *testing.T) {
	e := xks.FromTree(paperdata.Publications())
	sv := service.New(service.SingleDoc{Name: "pubs.xml", Engine: e}, service.Config{CacheSize: 8})
	res, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 || res.Fragments[0].Document != "pubs.xml" {
		t.Fatalf("fragments = %+v", res.Fragments)
	}
	if res.Stats.NumLCAs != 2 {
		t.Errorf("NumLCAs = %d", res.Stats.NumLCAs)
	}
	if res.PerDocument["pubs.xml"] != 2 {
		t.Errorf("PerDocument = %v", res.PerDocument)
	}
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "liu", Document: "other.xml"}); !errors.Is(err, xks.ErrUnknownDocument) {
		t.Errorf("doc filter mismatch error = %v", err)
	}
	docs := sv.Documents()
	if len(docs) != 1 || docs[0].Name != "pubs.xml" || docs[0].Words == 0 || docs[0].Nodes == 0 {
		t.Errorf("Documents = %+v", docs)
	}
}

func TestAppendXMLInvalidatesCache(t *testing.T) {
	e, err := xks.LoadString(`<bib><paper><title>xml search</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	sv := service.New(service.SingleDoc{Name: "bib", Engine: e}, service.Config{CacheSize: 8})

	res, _, err := sv.Search(context.Background(), xks.Request{Query: "search"})
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Fragments)
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "search"}); !cached {
		t.Fatal("expected a cache hit before the append")
	}

	if err := e.AppendXML("0", `<paper><title>another search paper</title></paper>`); err != nil {
		t.Fatal(err)
	}
	res, cached, err := sv.Search(context.Background(), xks.Request{Query: "search"})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("AppendXML must invalidate the cached entry")
	}
	if len(res.Fragments) <= before {
		t.Errorf("fragments = %d, want more than %d after append", len(res.Fragments), before)
	}
	// The fresh result is cached under the new generation.
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "search"}); !cached {
		t.Error("post-append result should cache again")
	}
}

func TestCorpusAddInvalidatesCache(t *testing.T) {
	c := testCorpus(t)
	sv := service.New(c, service.Config{CacheSize: 8})
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "name"}); err != nil {
		t.Fatal(err)
	}
	c.Add("extra", xks.FromTree(paperdata.Publications()))
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "name"}); cached {
		t.Error("Add must invalidate corpus-wide cached results")
	}
}

// countingSearcher wraps a Searcher, counting and optionally slowing the
// underlying executions so singleflight collapsing is observable.
type countingSearcher struct {
	service.Searcher
	execs atomic.Int64
	delay time.Duration
}

func (cs *countingSearcher) Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error) {
	cs.execs.Add(1)
	if cs.delay > 0 {
		time.Sleep(cs.delay)
	}
	return cs.Searcher.Search(ctx, req)
}

func TestSingleflightCollapsesHerd(t *testing.T) {
	cs := &countingSearcher{Searcher: testCorpus(t), delay: 50 * time.Millisecond}
	// Cache disabled: every request would run the pipeline without
	// singleflight.
	sv := service.New(cs, service.Config{})

	const herd = 16
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
			if err != nil {
				t.Error(err)
			} else if len(res.Fragments) != 2 {
				t.Errorf("fragments = %d", len(res.Fragments))
			}
		}()
	}
	wg.Wait()

	// All goroutines start well within the 50ms window of the leader's
	// execution, so nearly all collapse; allow a little scheduling slack.
	if got := cs.execs.Load(); got > 3 {
		t.Errorf("underlying executions = %d, want <= 3 for a herd of %d", got, herd)
	}
	s := sv.Metrics().Snapshot()
	if s.Collapsed < herd-3 {
		t.Errorf("collapsed = %d, want >= %d", s.Collapsed, herd-3)
	}
	if s.Requests != herd {
		t.Errorf("requests = %d", s.Requests)
	}
}

// TestConcurrentHammer drives the cache + singleflight + metrics from many
// goroutines under -race.
func TestConcurrentHammer(t *testing.T) {
	c := testCorpus(t)
	sv := service.New(c, service.Config{CacheSize: 32, CacheShards: 4})
	queries := []string{"liu keyword", "name", "xml", "search liu", "title:xml"}
	docs := []string{"", "publications", "team"}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				d := docs[i%len(docs)]
				req := xks.Request{Query: q, Document: d, Rank: i%2 == 0, Limit: i % 3}
				if _, _, err := sv.Search(context.Background(), req); err != nil {
					t.Errorf("search %q: %v", q, err)
					return
				}
				if i%10 == 0 {
					sv.Metrics().Snapshot()
					sv.CacheLen()
				}
			}
		}(g)
	}
	// Hammer generation reads alongside the searches (AppendXML itself
	// may not run concurrently with Search, so mutation-under-load is
	// covered by TestAppendXMLInvalidatesCache instead).
	for i := 0; i < 100; i++ {
		_ = sv.Generation()
	}
	wg.Wait()

	s := sv.Metrics().Snapshot()
	if s.Requests != 16*50 {
		t.Errorf("requests = %d, want %d", s.Requests, 16*50)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d", s.Errors)
	}
	if s.CacheHits == 0 {
		t.Error("hammer produced no cache hits")
	}
}

func TestCacheDisabled(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 0})
	for i := 0; i < 3; i++ {
		if _, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"}); err != nil || cached {
			t.Fatalf("i=%d cached=%t err=%v", i, cached, err)
		}
	}
	if sv.CacheLen() != 0 {
		t.Errorf("CacheLen = %d", sv.CacheLen())
	}
	s := sv.Metrics().Snapshot()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("disabled cache counted hits/misses: %+v", s)
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 4, CacheShards: 1})
	for i := 0; i < 20; i++ {
		if _, _, err := sv.Search(context.Background(), xks.Request{Query: "name", Limit: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := sv.CacheLen(); n > 4 {
		t.Errorf("CacheLen = %d, want <= 4", n)
	}
}

func ExampleService_Search() {
	engine, _ := xks.LoadString(`<bib><paper><title>xml keyword search</title></paper></bib>`)
	sv := service.New(service.SingleDoc{Name: "bib.xml", Engine: engine}, service.Config{CacheSize: 128})
	res, cached, _ := sv.Search(context.Background(), xks.Request{Query: "keyword search"})
	fmt.Println(len(res.Fragments), cached)
	_, cached, _ = sv.Search(context.Background(), xks.Request{Query: "keyword search"})
	fmt.Println(cached)
	// Output:
	// 1 false
	// true
}
