package service_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xks"
	"xks/internal/paperdata"
	"xks/internal/service"
)

func testCorpus(t *testing.T) *xks.Corpus {
	t.Helper()
	c := xks.NewCorpus()
	c.Add("publications", xks.FromTree(paperdata.Publications()))
	c.Add("team", xks.FromTree(paperdata.Team()))
	return c
}

func TestSearchCacheHit(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 64})
	res1, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	if err != nil || cached {
		t.Fatalf("first search: cached=%t err=%v", cached, err)
	}
	res2, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	if err != nil || !cached {
		t.Fatalf("second search: cached=%t err=%v", cached, err)
	}
	if res2 != res1 {
		t.Error("cache hit should return the same result object")
	}
	// Whitespace / case variants hit the same entry.
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "  Liu   KEYWORD "}); !cached {
		t.Error("normalized variant should be a cache hit")
	}
	// Different options are a different entry.
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "liu keyword", Rank: true}); cached {
		t.Error("different options must not share a cache entry")
	}
	s := sv.Metrics().Snapshot()
	if s.CacheHits != 2 || s.CacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", s.CacheHits, s.CacheMisses)
	}
	if s.Requests != 4 || s.Errors != 0 {
		t.Errorf("requests=%d errors=%d", s.Requests, s.Errors)
	}
}

func TestSearchDocumentFilter(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 64})
	res, _, err := sv.Search(context.Background(), xks.Request{Query: "name", Document: "team"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) == 0 {
		t.Fatal("no fragments from team")
	}
	for _, f := range res.Fragments {
		if f.Document != "team" {
			t.Errorf("fragment from %s", f.Document)
		}
	}
	// Corpus-wide and filtered results are distinct cache entries.
	all, _, err := sv.Search(context.Background(), xks.Request{Query: "name"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Fragments) <= len(res.Fragments) {
		t.Errorf("corpus-wide %d fragments, filtered %d", len(all.Fragments), len(res.Fragments))
	}

	_, _, err = sv.Search(context.Background(), xks.Request{Query: "name", Document: "absent"})
	if !errors.Is(err, xks.ErrUnknownDocument) {
		t.Errorf("unknown document error = %v", err)
	}
	if s := sv.Metrics().Snapshot(); s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
}

func TestSingleDocAdapter(t *testing.T) {
	e := xks.FromTree(paperdata.Publications())
	sv := service.New(service.SingleDoc{Name: "pubs.xml", Engine: e}, service.Config{CacheSize: 8})
	res, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 2 || res.Fragments[0].Document != "pubs.xml" {
		t.Fatalf("fragments = %+v", res.Fragments)
	}
	if res.Stats.NumLCAs != 2 {
		t.Errorf("NumLCAs = %d", res.Stats.NumLCAs)
	}
	if res.PerDocument["pubs.xml"] != 2 {
		t.Errorf("PerDocument = %v", res.PerDocument)
	}
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "liu", Document: "other.xml"}); !errors.Is(err, xks.ErrUnknownDocument) {
		t.Errorf("doc filter mismatch error = %v", err)
	}
	docs := sv.Documents()
	if len(docs) != 1 || docs[0].Name != "pubs.xml" || docs[0].Words == 0 || docs[0].Nodes == 0 {
		t.Errorf("Documents = %+v", docs)
	}
}

func TestAppendXMLInvalidatesCache(t *testing.T) {
	e, err := xks.LoadString(`<bib><paper><title>xml search</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	sv := service.New(service.SingleDoc{Name: "bib", Engine: e}, service.Config{CacheSize: 8})

	res, _, err := sv.Search(context.Background(), xks.Request{Query: "search"})
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Fragments)
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "search"}); !cached {
		t.Fatal("expected a cache hit before the append")
	}

	if err := e.AppendXML("0", `<paper><title>another search paper</title></paper>`); err != nil {
		t.Fatal(err)
	}
	res, cached, err := sv.Search(context.Background(), xks.Request{Query: "search"})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("AppendXML must invalidate the cached entry")
	}
	if len(res.Fragments) <= before {
		t.Errorf("fragments = %d, want more than %d after append", len(res.Fragments), before)
	}
	// The fresh result is cached under the new generation.
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "search"}); !cached {
		t.Error("post-append result should cache again")
	}
}

func TestCorpusAddInvalidatesCache(t *testing.T) {
	c := testCorpus(t)
	sv := service.New(c, service.Config{CacheSize: 8})
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "name"}); err != nil {
		t.Fatal(err)
	}
	c.Add("extra", xks.FromTree(paperdata.Publications()))
	if _, cached, _ := sv.Search(context.Background(), xks.Request{Query: "name"}); cached {
		t.Error("Add must invalidate corpus-wide cached results")
	}
}

// countingSearcher wraps a Searcher, counting and optionally slowing the
// underlying executions so singleflight collapsing is observable.
type countingSearcher struct {
	service.Searcher
	execs atomic.Int64
	delay time.Duration
}

func (cs *countingSearcher) Search(ctx context.Context, req xks.Request) (*xks.CorpusResult, error) {
	cs.execs.Add(1)
	if cs.delay > 0 {
		time.Sleep(cs.delay)
	}
	return cs.Searcher.Search(ctx, req)
}

func TestSingleflightCollapsesHerd(t *testing.T) {
	cs := &countingSearcher{Searcher: testCorpus(t), delay: 50 * time.Millisecond}
	// Cache disabled: every request would run the pipeline without
	// singleflight.
	sv := service.New(cs, service.Config{})

	const herd = 16
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
			if err != nil {
				t.Error(err)
			} else if len(res.Fragments) != 2 {
				t.Errorf("fragments = %d", len(res.Fragments))
			}
		}()
	}
	wg.Wait()

	// All goroutines start well within the 50ms window of the leader's
	// execution, so nearly all collapse; allow a little scheduling slack.
	if got := cs.execs.Load(); got > 3 {
		t.Errorf("underlying executions = %d, want <= 3 for a herd of %d", got, herd)
	}
	s := sv.Metrics().Snapshot()
	if s.Collapsed < herd-3 {
		t.Errorf("collapsed = %d, want >= %d", s.Collapsed, herd-3)
	}
	if s.Requests != herd {
		t.Errorf("requests = %d", s.Requests)
	}
}

// TestConcurrentHammer drives the cache + singleflight + metrics from many
// goroutines under -race.
func TestConcurrentHammer(t *testing.T) {
	c := testCorpus(t)
	sv := service.New(c, service.Config{CacheSize: 32, CacheShards: 4})
	queries := []string{"liu keyword", "name", "xml", "search liu", "title:xml"}
	docs := []string{"", "publications", "team"}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				d := docs[i%len(docs)]
				req := xks.Request{Query: q, Document: d, Rank: i%2 == 0, Limit: i % 3}
				if _, _, err := sv.Search(context.Background(), req); err != nil {
					t.Errorf("search %q: %v", q, err)
					return
				}
				if i%10 == 0 {
					sv.Metrics().Snapshot()
					sv.CacheLen()
				}
			}
		}(g)
	}
	// Hammer generation reads alongside the searches (AppendXML itself
	// may not run concurrently with Search, so mutation-under-load is
	// covered by TestAppendXMLInvalidatesCache instead).
	for i := 0; i < 100; i++ {
		_ = sv.Generation()
	}
	wg.Wait()

	s := sv.Metrics().Snapshot()
	if s.Requests != 16*50 {
		t.Errorf("requests = %d, want %d", s.Requests, 16*50)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d", s.Errors)
	}
	if s.CacheHits == 0 {
		t.Error("hammer produced no cache hits")
	}
}

func TestCacheDisabled(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 0})
	for i := 0; i < 3; i++ {
		if _, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"}); err != nil || cached {
			t.Fatalf("i=%d cached=%t err=%v", i, cached, err)
		}
	}
	if sv.CacheLen() != 0 {
		t.Errorf("CacheLen = %d", sv.CacheLen())
	}
	s := sv.Metrics().Snapshot()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("disabled cache counted hits/misses: %+v", s)
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 4, CacheShards: 1})
	for i := 0; i < 20; i++ {
		if _, _, err := sv.Search(context.Background(), xks.Request{Query: "name", Limit: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := sv.CacheLen(); n > 4 {
		t.Errorf("CacheLen = %d, want <= 4", n)
	}
}

// TestCursorScrollStalenessAndMismatch covers the cursor lifecycle at the
// serving layer: scroll page 1 → page 2 by cursor; a tail AppendXML does
// NOT stale the cursor — it re-pins the snapshot it was issued at and
// serves the same page 2 — while a non-tail append (a renumbering rebuild)
// kills it with ErrStaleCursor; a cursor replayed under a different query
// fails with ErrCursorMismatch. Failures are counted as request errors.
func TestCursorScrollStalenessAndMismatch(t *testing.T) {
	e, err := xks.LoadString(`<bib><paper><title>xml search</title></paper><paper><title>search trees</title></paper><paper><title>search engines</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	sv := service.New(service.SingleDoc{Name: "bib", Engine: e}, service.Config{CacheSize: 16})

	page1, _, err := sv.Search(context.Background(), xks.Request{Query: "search", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Fragments) != 1 || page1.Cursor == "" {
		t.Fatalf("page 1: %d fragments, cursor %q", len(page1.Fragments), page1.Cursor)
	}
	page2, _, err := sv.Search(context.Background(), xks.Request{Query: "search", Limit: 1, Cursor: page1.Cursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Fragments) != 1 || page2.Fragments[0].Root == page1.Fragments[0].Root {
		t.Fatalf("page 2 did not advance: %+v", page2.Fragments)
	}

	// Fingerprint mismatch: the cursor belongs to a different query.
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "trees", Limit: 1, Cursor: page1.Cursor}); !errors.Is(err, xks.ErrCursorMismatch) {
		t.Fatalf("mismatched cursor: err = %v, want ErrCursorMismatch", err)
	}

	// A tail append lands in the delta index without renumbering: the old
	// cursor re-pins the snapshot it was issued at and serves the exact
	// same page 2, with the appended paper invisible to the pinned scroll.
	if err := e.AppendXML("0", `<paper><title>fresh search result</title></paper>`); err != nil {
		t.Fatal(err)
	}
	pinned, _, err := sv.Search(context.Background(), xks.Request{Query: "search", Limit: 1, Cursor: page1.Cursor})
	if err != nil {
		t.Fatalf("post-append cursor: err = %v, want snapshot-pinned resume", err)
	}
	if len(pinned.Fragments) != 1 || pinned.Fragments[0].Root != page2.Fragments[0].Root {
		t.Fatalf("pinned page 2 = %+v, want the pre-append page 2 (%s)", pinned.Fragments, page2.Fragments[0].Root)
	}

	// A non-tail append renumbers the whole document: the pinned snapshot
	// is gone and the old cursor is 410 material, deterministically.
	if err := e.AppendXML("0.0", `<note>search aside</note>`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "search", Limit: 1, Cursor: page1.Cursor}); !errors.Is(err, xks.ErrStaleCursor) {
		t.Fatalf("post-rebuild cursor: err = %v, want ErrStaleCursor", err)
	}
	// Restarting from the first page issues a fresh, working cursor.
	fresh, _, err := sv.Search(context.Background(), xks.Request{Query: "search", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cursor == "" {
		t.Fatal("restarted scroll issued no cursor")
	}
	if _, _, err := sv.Search(context.Background(), xks.Request{Query: "search", Limit: 1, Cursor: fresh.Cursor}); err != nil {
		t.Fatalf("fresh cursor: %v", err)
	}
	if s := sv.Metrics().Snapshot(); s.Errors != 2 {
		t.Errorf("errors = %d, want 2 (one mismatch, one stale)", s.Errors)
	}
}

// truncatingSearcher marks every result truncated, standing in for a
// pipeline whose best-effort deadline always expires mid-page.
type truncatingSearcher struct {
	service.Searcher
}

func (ts truncatingSearcher) Search(ctx context.Context, req xks.Request) (*xks.Results, error) {
	r, err := ts.Searcher.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	rr := *r
	rr.Truncated = true
	return &rr, nil
}

// TestTruncatedResultsNotCached: a partial (truncated) page must never be
// served from the cache as if it were the full answer.
func TestTruncatedResultsNotCached(t *testing.T) {
	sv := service.New(truncatingSearcher{Searcher: testCorpus(t)}, service.Config{CacheSize: 16})
	for i := 0; i < 3; i++ {
		res, cached, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword", Budget: xks.BestEffort})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Fatal("searcher stub should truncate")
		}
		if cached {
			t.Fatalf("request %d served a truncated page from the cache", i)
		}
	}
	if n := sv.CacheLen(); n != 0 {
		t.Errorf("CacheLen = %d, want 0 — truncated pages must not be cached", n)
	}
}

// truncateOnceSearcher truncates its first execution (after a delay long
// enough for joiners to pile up) and answers fully from then on.
type truncateOnceSearcher struct {
	service.Searcher
	calls atomic.Int64
	delay time.Duration
}

func (ts *truncateOnceSearcher) Search(ctx context.Context, req xks.Request) (*xks.Results, error) {
	n := ts.calls.Add(1)
	r, err := ts.Searcher.Search(ctx, req)
	if err != nil || n > 1 {
		return r, err
	}
	time.Sleep(ts.delay)
	rr := *r
	rr.Truncated = true
	rr.Fragments = rr.Fragments[:1]
	return &rr, nil
}

// TestFlightDoesNotShareTruncatedPage: a leader whose BestEffort deadline
// truncated its page must not hand that partial page to singleflight
// joiners — a Strict waiter with a generous deadline re-runs the pipeline
// and gets full results.
func TestFlightDoesNotShareTruncatedPage(t *testing.T) {
	ts := &truncateOnceSearcher{Searcher: testCorpus(t), delay: 50 * time.Millisecond}
	sv := service.New(ts, service.Config{}) // cache off: the flight is the only sharing path

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword", Budget: xks.BestEffort})
		if err != nil {
			t.Error(err)
		} else if !res.Truncated {
			t.Error("leader should have been truncated")
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the truncating leader take off

	res, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || len(res.Fragments) != 2 {
		t.Fatalf("strict joiner got truncated=%t with %d fragments; must re-execute for the full page",
			res.Truncated, len(res.Fragments))
	}
	if got := ts.calls.Load(); got != 2 {
		t.Errorf("underlying executions = %d, want 2 (truncated page not shared)", got)
	}
}

// TestStreamServesCachesAndReplays covers Service.Stream: a cold stream
// drives the pipeline lazily and caches its fully-drained page, a warm one
// replays the cached page, an abandoned one caches nothing, and the
// trailer always carries the envelope.
func TestStreamServesCachesAndReplays(t *testing.T) {
	sv := service.New(testCorpus(t), service.Config{CacheSize: 16})
	// Bounded page: only Limit > 0 streams are collected for caching (an
	// unbounded scroll must not pin its whole result set server-side).
	req := xks.Request{Query: "name", Rank: true, Limit: 10}

	// Cold: live stream, page cached at drain.
	var cold []xks.CorpusFragment
	seq, trailer := sv.Stream(context.Background(), req)
	for f, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		cold = append(cold, f)
	}
	if len(cold) == 0 {
		t.Fatal("stream yielded nothing")
	}
	ct := trailer()
	if ct.Stats.NumLCAs != len(cold) || ct.Cursor != "" {
		t.Fatalf("trailer: stats %+v cursor %q for a drained %d-fragment stream", ct.Stats, ct.Cursor, len(cold))
	}
	if sv.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d after a drained stream, want 1", sv.CacheLen())
	}

	// The buffered path hits the stream-populated entry, and vice versa.
	if _, cached, err := sv.Search(context.Background(), req); err != nil || !cached {
		t.Fatalf("buffered after stream: cached=%t err=%v", cached, err)
	}
	var warm []xks.CorpusFragment
	seq, _ = sv.Stream(context.Background(), req)
	for f, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, f)
	}
	if len(warm) != len(cold) {
		t.Fatalf("replayed %d fragments, want %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].Root != cold[i].Root {
			t.Fatalf("fragment %d: replay %s vs live %s", i, warm[i].Root, cold[i].Root)
		}
	}

	// An abandoned stream caches nothing (its page is incomplete), and the
	// trailer stays resumable from after the one fragment consumed.
	other := xks.Request{Query: "liu keyword", Limit: 10}
	seq, trailer = sv.Stream(context.Background(), other)
	for _, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if sv.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d after an abandoned stream, want still 1", sv.CacheLen())
	}
	if tr := trailer(); tr.Cursor == "" || tr.NextOffset != 1 {
		t.Fatalf("abandoned trailer: Cursor=%q NextOffset=%d, want resumable at 1", tr.Cursor, tr.NextOffset)
	}

	// Replaying the cached page to a consumer that breaks early re-points
	// the trailer cursor after the last yielded fragment — never past the
	// fragments it never received.
	p1req := xks.Request{Query: "name", Rank: true, Limit: 2}
	if _, _, err := sv.Search(context.Background(), p1req); err != nil { // prime the cache
		t.Fatal(err)
	}
	seq, trailer = sv.Stream(context.Background(), p1req)
	for _, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		break // take 1 of the cached page of 2
	}
	if tr := trailer(); tr.NextOffset != 1 || tr.Cursor == "" {
		t.Fatalf("replayed early break: Cursor=%q NextOffset=%d, want re-pointed to 1", tr.Cursor, tr.NextOffset)
	}
	// Resuming from that cursor yields the fragment the break skipped.
	res2, _, err := sv.Search(context.Background(), xks.Request{Query: "name", Rank: true, Limit: 2, Cursor: trailer().Cursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Fragments) == 0 {
		t.Fatal("resume from re-pointed cursor yielded nothing")
	}

	// Errors surface through the iterator (and count in metrics).
	seq, _ = sv.Stream(context.Background(), xks.Request{Query: "the of"})
	var got error
	for _, err := range seq {
		got = err
	}
	if !errors.Is(got, xks.ErrEmptyQuery) {
		t.Fatalf("unsearchable stream: err = %v, want ErrEmptyQuery", got)
	}

	s := sv.Metrics().Snapshot()
	if s.Streamed != 5 {
		t.Errorf("streamed = %d, want 5", s.Streamed)
	}
	if s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
	if s.CacheHits < 2 {
		t.Errorf("cache hits = %d, want >= 2 (one buffered, one replay)", s.CacheHits)
	}
}

// TestStreamJoinsInflightBufferedQuery: a stream arriving while an
// identical buffered query is mid-flight joins it (singleflight) and
// replays its page instead of running the pipeline twice.
func TestStreamJoinsInflightBufferedQuery(t *testing.T) {
	cs := &countingSearcher{Searcher: testCorpus(t), delay: 50 * time.Millisecond}
	sv := service.New(cs, service.Config{}) // cache off: only the flight can collapse

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword"}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the buffered leader take off

	n := 0
	seq, _ := sv.Stream(context.Background(), xks.Request{Query: "liu keyword"})
	for _, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	wg.Wait()
	if n == 0 {
		t.Fatal("joined stream yielded nothing")
	}
	if got := cs.execs.Load(); got != 1 {
		t.Errorf("underlying executions = %d, want 1 (stream joined the in-flight leader)", got)
	}
	if s := sv.Metrics().Snapshot(); s.Collapsed != 1 {
		t.Errorf("collapsed = %d, want 1", s.Collapsed)
	}
}

func ExampleService_Search() {
	engine, _ := xks.LoadString(`<bib><paper><title>xml keyword search</title></paper></bib>`)
	sv := service.New(service.SingleDoc{Name: "bib.xml", Engine: engine}, service.Config{CacheSize: 128})
	res, cached, _ := sv.Search(context.Background(), xks.Request{Query: "keyword search"})
	fmt.Println(len(res.Fragments), cached)
	_, cached, _ = sv.Search(context.Background(), xks.Request{Query: "keyword search"})
	fmt.Println(cached)
	// Output:
	// 1 false
	// true
}

// flippingPlanner wraps a searcher with a controllable strategy resolution,
// standing in for index statistics that change between requests.
type flippingPlanner struct {
	service.Searcher
	resolved atomic.Int64
}

func (f *flippingPlanner) ResolveStrategy(req xks.Request) xks.Strategy {
	return xks.Strategy(f.resolved.Load())
}

// TestPlanFlipInvalidatesCache: the cache key must incorporate the
// planner-resolved strategy, so a statistics refresh that flips an Auto
// plan cannot replay a page cached under the other algorithm.
func TestPlanFlipInvalidatesCache(t *testing.T) {
	fp := &flippingPlanner{Searcher: testCorpus(t)}
	fp.resolved.Store(int64(xks.ScanMerge))
	sv := service.New(fp, service.Config{CacheSize: 16})

	req := xks.Request{Query: "liu keyword", Semantics: xks.SLCAOnly}
	if _, cached, err := sv.Search(context.Background(), req); err != nil || cached {
		t.Fatalf("first search: cached=%t err=%v", cached, err)
	}
	if _, cached, err := sv.Search(context.Background(), req); err != nil || !cached {
		t.Fatalf("stable plan should hit: cached=%t err=%v", cached, err)
	}

	fp.resolved.Store(int64(xks.IndexedEager)) // the plan flips
	if _, cached, err := sv.Search(context.Background(), req); err != nil || cached {
		t.Fatalf("flipped plan must miss: cached=%t err=%v", cached, err)
	}
	// The corpus really does implement the Planner surface end to end: a
	// real service over it resolves strategies without the fake.
	real := service.New(testCorpus(t), service.Config{CacheSize: 16})
	if _, cached, err := real.Search(context.Background(), req); err != nil || cached {
		t.Fatalf("real corpus search: cached=%t err=%v", cached, err)
	}
	if _, cached, err := real.Search(context.Background(), req); err != nil || !cached {
		t.Fatalf("real corpus repeat should hit: cached=%t err=%v", cached, err)
	}
}

// TestAppendDoesNotEvictOtherDocuments pins the narrowed invalidation the
// snapshot-vector generation buys: doc-filtered cache entries are tagged
// with that document's own version, so appending to one document must not
// evict another document's cached pages or kill its cursors. Only the
// appended document's entries (and corpus-wide merges, which really did
// change) turn over.
func TestAppendDoesNotEvictOtherDocuments(t *testing.T) {
	a, err := xks.LoadString(`<bib><paper><title>alpha search</title></paper></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	c := xks.NewCorpus()
	c.Add("a.xml", a)
	c.Add("b.xml", xks.FromTree(paperdata.Publications()))
	sv := service.New(c, service.Config{CacheSize: 64})

	reqA := xks.Request{Query: "search", Document: "a.xml"}
	reqB := xks.Request{Query: "liu keyword", Document: "b.xml"}
	reqAll := xks.Request{Query: "name"}
	for _, req := range []xks.Request{reqA, reqB, reqAll} {
		if _, cached, err := sv.Search(context.Background(), req); err != nil || cached {
			t.Fatalf("warm-up %+v: cached=%t err=%v", req, cached, err)
		}
		if _, cached, err := sv.Search(context.Background(), req); err != nil || !cached {
			t.Fatalf("warm-up hit %+v: cached=%t err=%v", req, cached, err)
		}
	}
	// A live cursor over document B, issued before the append.
	pageB, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword", Document: "b.xml", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pageB.Cursor == "" {
		t.Fatal("doc-B page 1 issued no cursor")
	}

	if err := sv.Append("a.xml", "0", `<paper><title>fresh search paper</title></paper>`); err != nil {
		t.Fatal(err)
	}

	// Document B's entry survives the unrelated append...
	if _, cached, err := sv.Search(context.Background(), reqB); err != nil || !cached {
		t.Errorf("append to a.xml evicted b.xml's cache entry (cached=%t err=%v)", cached, err)
	}
	// ...and so does its cursor — no 410 for a document that never changed.
	resumed, _, err := sv.Search(context.Background(), xks.Request{Query: "liu keyword", Document: "b.xml", Limit: 1, Cursor: pageB.Cursor})
	if err != nil {
		t.Fatalf("doc-B cursor after unrelated append: %v", err)
	}
	for _, f := range resumed.Fragments {
		if f.Document != "b.xml" {
			t.Errorf("resumed fragment from %s", f.Document)
		}
	}

	// The appended document's own entry turned over and now sees the write.
	resA, cached, err := sv.Search(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("append must invalidate the appended document's entry")
	}
	if len(resA.Fragments) < 2 {
		t.Errorf("a.xml fragments = %d, want the appended paper visible", len(resA.Fragments))
	}
	// Corpus-wide merges span the appended document, so they turn over too.
	if _, cached, err := sv.Search(context.Background(), reqAll); err != nil || cached {
		if err != nil {
			t.Fatal(err)
		}
		t.Error("corpus-wide entry must not survive an append to a member")
	}
}
